package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// goldenParams is the small deterministic scenario the golden counter
// values below were captured from: quickstart on 6 procs, 2 masters × 3
// decisions × 60 work units over the 2 least-loaded slaves.
func goldenParams() (workload.Workload, core.Config, workload.Params) {
	w, err := workload.Get("quickstart")
	if err != nil {
		panic(err)
	}
	cfg := core.Config{Threshold: core.Load{core.Workload: 5}, NoMoreMasterOpt: true}
	p := workload.Params{Procs: 6, Masters: 2, Decisions: 3, Work: 60, Slaves: 2, Spin: time.Millisecond}
	return w, cfg, p
}

func runGolden(t *testing.T, mech core.Mech) *workload.Report {
	t.Helper()
	w, cfg, p := goldenParams()
	rep, err := NewWorkloadDriver().Run(w, mech, cfg, p)
	if err != nil {
		t.Fatalf("%s: %v", mech, err)
	}
	return rep
}

// kindGolden pins one state kind's exact message count and volume.
type kindGolden struct {
	kind  int
	msgs  int64
	bytes float64
}

// checkKinds asserts the per-kind tallies exactly, including that no
// unlisted kind appears.
func checkKinds(t *testing.T, mech core.Mech, c core.Counters, want []kindGolden) {
	t.Helper()
	if len(c.PerKind) != len(want) {
		t.Errorf("%s: %d state kinds on the wire, want %d (%v)", mech, len(c.PerKind), len(want), c.PerKind)
	}
	var msgs int64
	var bytes float64
	for _, g := range want {
		got := c.Kind(g.kind)
		if got.Msgs != g.msgs || got.Bytes != g.bytes {
			t.Errorf("%s %s: got %d msgs / %g bytes, want %d / %g",
				mech, core.KindName(g.kind), got.Msgs, got.Bytes, g.msgs, g.bytes)
		}
		msgs += g.msgs
		bytes += g.bytes
	}
	if c.StateMsgs != msgs || c.StateBytes != bytes {
		t.Errorf("%s: totals %d msgs / %g bytes do not equal per-kind sum %d / %g",
			mech, c.StateMsgs, c.StateBytes, msgs, bytes)
	}
}

// TestSimGoldenCountersNaive pins the naive mechanism's exact message
// accounting on the deterministic simulator: every decision's slave
// variations re-broadcast absolute loads, twice per executed item (load
// up, load down), to all 5 peers.
func TestSimGoldenCountersNaive(t *testing.T) {
	rep := runGolden(t, core.MechNaive)
	c := rep.Counters
	if rep.DecisionsTaken != 6 || rep.TotalExecuted() != 12 {
		t.Fatalf("decisions=%d executed=%d, want 6 and 12", rep.DecisionsTaken, rep.TotalExecuted())
	}
	checkKinds(t, core.MechNaive, c, []kindGolden{
		{core.KindUpdate, 120, 120 * core.BytesUpdate},
	})
	if st := rep.TotalStats(); st.UpdatesSent != 120 {
		t.Fatalf("updates sent = %d, want 120", st.UpdatesSent)
	}
	if c.DataMsgs != 12 || c.DataBytes != 12*core.BytesWorkItem {
		t.Fatalf("data = %d msgs / %g bytes, want 12 / %g", c.DataMsgs, c.DataBytes, 12*core.BytesWorkItem)
	}
	if c.SnapshotRounds != 0 || c.DecisionLatency != 0 || c.BusyTime != 0 {
		t.Fatalf("maintained mechanism has snapshot costs: %+v", c)
	}
}

// TestSimGoldenCountersIncrements pins the increments mechanism: the
// reservation broadcast makes decisions visible system-wide, so slaves
// skip the positive re-announcement and only the load decrements flush —
// half the naive scheme's updates, plus 5 master_to_all per decision.
func TestSimGoldenCountersIncrements(t *testing.T) {
	rep := runGolden(t, core.MechIncrements)
	c := rep.Counters
	if rep.DecisionsTaken != 6 || rep.TotalExecuted() != 12 {
		t.Fatalf("decisions=%d executed=%d, want 6 and 12", rep.DecisionsTaken, rep.TotalExecuted())
	}
	checkKinds(t, core.MechIncrements, c, []kindGolden{
		{core.KindUpdate, 60, 60 * core.BytesUpdate},
		{core.KindMasterToAll, 30, 30 * core.MasterToAllBytes(2)},
	})
	st := rep.TotalStats()
	if st.UpdatesSent != 60 || st.ReservationsSent != 6 {
		t.Fatalf("updates=%d reservations=%d, want 60 and 6", st.UpdatesSent, st.ReservationsSent)
	}
	if c.SnapshotRounds != 0 || c.DecisionLatency != 0 || c.BusyTime != 0 {
		t.Fatalf("maintained mechanism has snapshot costs: %+v", c)
	}
}

// TestSimGoldenCountersSnapshot pins the snapshot mechanism: 6
// demand-driven snapshots, one of which loses its election and restarts,
// so 7 start_snp rounds; every completed snapshot collects 5 replies
// and broadcasts 5 end_snp; each decision informs its 2 slaves.
func TestSimGoldenCountersSnapshot(t *testing.T) {
	rep := runGolden(t, core.MechSnapshot)
	c := rep.Counters
	if rep.DecisionsTaken != 6 || rep.TotalExecuted() != 12 {
		t.Fatalf("decisions=%d executed=%d, want 6 and 12", rep.DecisionsTaken, rep.TotalExecuted())
	}
	checkKinds(t, core.MechSnapshot, c, []kindGolden{
		{core.KindStartSnp, 35, 35 * core.BytesStartSnp},
		{core.KindSnp, 30, 30 * core.BytesSnp},
		{core.KindEndSnp, 30, 30 * core.BytesEndSnp},
		{core.KindMasterToSlave, 12, 12 * core.BytesMasterToSlave},
	})
	st := rep.TotalStats()
	if st.SnapshotsInitiated != 6 || st.SnapshotRestarts != 1 {
		t.Fatalf("initiated=%d restarts=%d, want 6 and 1", st.SnapshotsInitiated, st.SnapshotRestarts)
	}
	// Snapshot rounds = decisions + election-loss restarts, and each
	// round broadcast start_snp to all 5 peers.
	if c.SnapshotRounds != 7 {
		t.Fatalf("snapshot rounds = %d, want 7 (6 decisions + 1 restart)", c.SnapshotRounds)
	}
	if got := c.Kind(core.KindStartSnp).Msgs; got != c.SnapshotRounds*5 {
		t.Fatalf("start_snp msgs = %d, want rounds×5 = %d", got, c.SnapshotRounds*5)
	}
	// The demand-driven scheme pays for its exact views in time:
	// acquire latency and snapshot-blocked busy time are positive, in
	// deterministic virtual seconds.
	if c.Decisions != 6 || c.DecisionLatency <= 0 {
		t.Fatalf("decisions=%d latency=%g, want 6 with positive latency", c.Decisions, c.DecisionLatency)
	}
	if c.BusyTime <= c.DecisionLatency {
		t.Fatalf("busy time %g should exceed initiator latency %g (bystanders block too)",
			c.BusyTime, c.DecisionLatency)
	}
	if st.SnapshotTime != c.DecisionLatency {
		t.Fatalf("mechanism SnapshotTime %g != counters DecisionLatency %g (same quantity, two paths)",
			st.SnapshotTime, c.DecisionLatency)
	}
}

// TestSimDriverTraceHook checks the driver feeds the trace package: one
// EvDecision event per committed decision, none for the harness's final
// view acquisitions.
func TestSimDriverTraceHook(t *testing.T) {
	w, cfg, p := goldenParams()
	ctr := trace.NewCounter()
	d := NewWorkloadDriver()
	d.Trace = ctr
	rep, err := d.Run(w, core.MechSnapshot, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctr.Count(trace.EvDecision); got != uint64(rep.DecisionsTaken) {
		t.Fatalf("traced %d decision events, want %d", got, rep.DecisionsTaken)
	}
}

// TestSimCountersMechanismOrdering pins the paper's headline comparison
// on one deterministic workload: the increments scheme sends strictly
// fewer updates than the naive scheme, and the snapshot scheme sends no
// spontaneous updates at all but pays decision latency.
func TestSimCountersMechanismOrdering(t *testing.T) {
	naive := runGolden(t, core.MechNaive)
	incr := runGolden(t, core.MechIncrements)
	snap := runGolden(t, core.MechSnapshot)
	if n, i := naive.TotalStats().UpdatesSent, incr.TotalStats().UpdatesSent; n <= i {
		t.Fatalf("naive updates (%d) must exceed increments updates (%d)", n, i)
	}
	if u := snap.Counters.Kind(core.KindUpdate).Msgs; u != 0 {
		t.Fatalf("snapshot mechanism sent %d spontaneous updates, want 0", u)
	}
	if naive.Counters.DecisionLatency != 0 || incr.Counters.DecisionLatency != 0 {
		t.Fatal("maintained mechanisms must acquire views with zero latency")
	}
	if snap.Counters.DecisionLatency <= 0 {
		t.Fatal("snapshot mechanism must pay positive acquire latency")
	}
	// All three move the same application work.
	if naive.Counters.DataMsgs != incr.Counters.DataMsgs || incr.Counters.DataMsgs != snap.Counters.DataMsgs {
		t.Fatalf("data-channel item counts diverge: %d / %d / %d",
			naive.Counters.DataMsgs, incr.Counters.DataMsgs, snap.Counters.DataMsgs)
	}
}
