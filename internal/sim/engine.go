package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback in virtual time. Events at equal times fire
// in scheduling order (seq), which makes runs fully deterministic.
//
// Fired and canceled events are recycled through the engine's free list:
// at 4096 simulated procs a solver run schedules tens of millions of
// events, and pooling keeps the steady-state cost of At at zero
// allocations. A generation counter distinguishes a recycled event from
// the scheduling an outstanding EventHandle refers to, so a stale Cancel
// (e.g. of a compute completion that already fired) stays a no-op instead
// of killing an unrelated event that happens to reuse the same slot.
type event struct {
	at       Time
	seq      uint64
	gen      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventHandle identifies a scheduled event so it can be canceled.
// The zero value is invalid.
type EventHandle struct {
	e   *event
	gen uint64
}

// Valid reports whether the handle refers to an event scheduling that has
// neither fired nor been canceled.
func (h EventHandle) Valid() bool {
	return h.e != nil && h.e.gen == h.gen && !h.e.canceled && h.e.index != -1
}

// Engine is the discrete-event simulation core: a virtual clock and a
// priority queue of timed callbacks. Engine is not safe for concurrent use;
// all application code runs inside event callbacks on a single goroutine.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	steps    uint64
	free     []*event // recycled events, reused by At
	canceled int      // canceled events still resident in the heap

	// nowQ is the fast lane for events scheduled at the current instant
	// (wakeups, mostly — at 4096 procs they are the bulk of all events).
	// Any event scheduled during instant T for time T carries a larger
	// sequence number than every event already in the heap for T, so
	// firing heap events at T first and then nowQ in FIFO order is
	// exactly the (at, seq) order — without paying O(log n) heap
	// traffic for events that will fire before the clock moves.
	nowQ    []*event
	nowHead int

	// MaxSteps, when non-zero, bounds the number of events processed by Run
	// and RunUntil; exceeding it is reported as an error. It guards against
	// accidental livelock in protocol bugs.
	MaxSteps uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Seq returns the sequence number the next scheduled event will receive.
// Two events scheduled with no intervening At carry consecutive numbers —
// the property Network's same-tick delivery batching relies on.
func (e *Engine) Seq() uint64 { return e.seq }

// nowIndex marks an event resident in the nowQ fast lane rather than
// the heap.
const nowIndex = -2

// Pending returns the number of scheduled, non-canceled events.
func (e *Engine) Pending() int {
	n := len(e.events) - e.canceled
	for _, ev := range e.nowQ[e.nowHead:] {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// alloc returns a fresh or recycled event.
func (e *Engine) alloc(t Time, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn = t, fn
	} else {
		ev = &event{at: t, fn: fn}
	}
	ev.seq = e.seq
	e.seq++
	return ev
}

// release recycles a fired or canceled event. Bumping the generation
// invalidates every outstanding handle to the old scheduling.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.index = -1
	ev.gen++
	e.free = append(e.free, ev)
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would violate causality.
func (e *Engine) At(t Time, fn func()) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc(t, fn)
	if t == e.now {
		ev.index = nowIndex
		e.nowQ = append(e.nowQ, ev)
	} else {
		heap.Push(&e.events, ev)
	}
	return EventHandle{ev, ev.gen}
}

// After schedules fn to run d seconds of virtual time from now.
func (e *Engine) After(d Duration, fn func()) EventHandle {
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired (or was already canceled) is a no-op. Canceled events stay
// resident until popped or until they outnumber live ones, at which point
// the heap is compacted in place — mass cancellation (e.g. a chaos plan
// killing a rank with thousands of queued deliveries) cannot hold the
// heap's memory hostage.
func (e *Engine) Cancel(h EventHandle) {
	if h.e == nil || h.e.gen != h.gen || h.e.canceled || h.e.index == -1 {
		return
	}
	h.e.canceled = true
	if h.e.index == nowIndex {
		// nowQ events drain before the clock moves; no compaction needed.
		return
	}
	e.canceled++
	if e.canceled > len(e.events)/2 && e.canceled > 64 {
		e.compact()
	}
}

// compact rebuilds the heap without its canceled events.
func (e *Engine) compact() {
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.canceled {
			e.release(ev)
		} else {
			ev.index = len(live)
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.canceled = 0
	heap.Init(&e.events)
}

// Run processes events until none remain. It returns an error if MaxSteps
// is exceeded.
func (e *Engine) Run() error {
	return e.RunUntil(Time(maxFloat))
}

const maxFloat = 1.7976931348623157e308

// RunUntil processes events with timestamps <= deadline, advancing the
// clock. Events scheduled during processing are themselves processed if
// they fall within the deadline.
func (e *Engine) RunUntil(deadline Time) error {
	for {
		var ev *event
		switch {
		case len(e.events) > 0 && e.events[0].at == e.now:
			// Heap events due at the current instant were scheduled in an
			// earlier instant: they precede everything in the fast lane.
			if e.now > deadline {
				return nil
			}
			ev = heap.Pop(&e.events).(*event)
			if ev.canceled {
				e.canceled--
				e.release(ev)
				continue
			}
		case e.nowHead < len(e.nowQ):
			if e.now > deadline {
				return nil
			}
			ev = e.nowQ[e.nowHead]
			e.nowQ[e.nowHead] = nil
			e.nowHead++
			if e.nowHead == len(e.nowQ) {
				e.nowQ = e.nowQ[:0]
				e.nowHead = 0
			}
			if ev.canceled {
				e.release(ev)
				continue
			}
		case len(e.events) > 0:
			ev = e.events[0]
			if ev.at > deadline {
				return nil
			}
			heap.Pop(&e.events)
			if ev.canceled {
				e.canceled--
				e.release(ev)
				continue
			}
			if ev.at < e.now {
				panic("sim: event queue time went backwards")
			}
			e.now = ev.at
		default:
			return nil
		}
		e.steps++
		if e.MaxSteps > 0 && e.steps > e.MaxSteps {
			return fmt.Errorf("sim: exceeded MaxSteps=%d at t=%v (possible livelock)", e.MaxSteps, e.now)
		}
		fn := ev.fn
		e.release(ev)
		fn()
	}
}
