package core

import "time"

// KindTally counts the messages and payload bytes of one state-message
// kind.
type KindTally struct {
	Msgs  int64   `json:"msgs"`
	Bytes float64 `json:"bytes"`
}

// Counters is the uniform measurement accumulator every runtime fills
// while executing a workload: how many state and data messages were
// sent, how many bytes each message kind moved, how long dynamic
// decisions waited for a coherent view, how long processes were blocked
// by snapshots, and how many snapshot broadcast rounds ran. The paper's
// tables — messages sent, volume exchanged, time spent acquiring
// coherent views — are all derivable from one Counters value.
//
// Byte totals follow the core.Bytes* convention (frame-body sizes,
// excluding transport framing). The sim and live runtimes charge the
// constants at send time; the net runtime counts real encoded frame
// sizes, so a drift between the constants and the codec shows up as a
// cross-runtime byte disagreement (and is separately pinned by the
// codec tests).
type Counters struct {
	// StateMsgs / StateBytes total the state-channel traffic.
	StateMsgs  int64   `json:"state_msgs"`
	StateBytes float64 `json:"state_bytes"`
	// DataMsgs / DataBytes total the data-channel traffic (work items;
	// transport-level acknowledgments are not counted here).
	DataMsgs  int64   `json:"data_msgs"`
	DataBytes float64 `json:"data_bytes"`
	// CtrlMsgs / CtrlBytes total the termination-detection control
	// traffic (internal/termdet engagement acks, probe tokens and the
	// termination announcement) — the price of knowing the run is over,
	// reported beside the price of knowing the load (state traffic).
	CtrlMsgs  int64   `json:"ctrl_msgs,omitempty"`
	CtrlBytes float64 `json:"ctrl_bytes,omitempty"`
	// PerKind breaks the state traffic down by KindName.
	PerKind map[string]KindTally `json:"per_kind,omitempty"`
	// Decisions counts completed dynamic decisions; DecisionLatency is
	// the total seconds from Acquire to view-ready over all of them —
	// zero for the maintained mechanisms (the view is always ready),
	// the paper's "time spent to perform the snapshot operations" for
	// the snapshot mechanism.
	Decisions       int64   `json:"decisions"`
	DecisionLatency float64 `json:"decision_latency"`
	// BusyTime is the total seconds processes spent Busy (application
	// work suspended because a snapshot involving them was open).
	BusyTime float64 `json:"busy_time"`
	// SnapshotRounds counts start_snp broadcast rounds: one per
	// initiated snapshot plus one per election-loss restart.
	SnapshotRounds int64 `json:"snapshot_rounds"`
}

// AddState records one sent state message of the given kind.
func (c *Counters) AddState(kind int, bytes float64) {
	c.StateMsgs++
	c.StateBytes += bytes
	if c.PerKind == nil {
		c.PerKind = make(map[string]KindTally)
	}
	t := c.PerKind[KindName(kind)]
	t.Msgs++
	t.Bytes += bytes
	c.PerKind[KindName(kind)] = t
}

// AddData records one sent data-channel work item.
func (c *Counters) AddData(bytes float64) {
	c.DataMsgs++
	c.DataBytes += bytes
}

// AddCtrl records one sent termination-detection control frame.
func (c *Counters) AddCtrl(bytes float64) {
	c.CtrlMsgs++
	c.CtrlBytes += bytes
}

// AddDecision records one completed dynamic decision and its
// acquire-to-ready latency in seconds.
func (c *Counters) AddDecision(latency float64) {
	c.Decisions++
	c.DecisionLatency += latency
}

// Merge folds other into c (used to aggregate per-rank counters into a
// cluster total).
func (c *Counters) Merge(other Counters) {
	c.StateMsgs += other.StateMsgs
	c.StateBytes += other.StateBytes
	c.DataMsgs += other.DataMsgs
	c.DataBytes += other.DataBytes
	c.CtrlMsgs += other.CtrlMsgs
	c.CtrlBytes += other.CtrlBytes
	c.Decisions += other.Decisions
	c.DecisionLatency += other.DecisionLatency
	c.BusyTime += other.BusyTime
	c.SnapshotRounds += other.SnapshotRounds
	for name, t := range other.PerKind {
		if c.PerKind == nil {
			c.PerKind = make(map[string]KindTally)
		}
		ct := c.PerKind[name]
		ct.Msgs += t.Msgs
		ct.Bytes += t.Bytes
		c.PerKind[name] = ct
	}
}

// Clone returns a deep copy of c: the PerKind map is not shared, so the
// copy can cross goroutines while the original keeps accumulating.
func (c Counters) Clone() Counters {
	out := c
	if c.PerKind != nil {
		out.PerKind = make(map[string]KindTally, len(c.PerKind))
		for k, v := range c.PerKind {
			out.PerKind[k] = v
		}
	}
	return out
}

// Kind returns the tally for one state-message kind.
func (c *Counters) Kind(kind int) KindTally {
	return c.PerKind[KindName(kind)]
}

// BusyMeter accumulates the wall-clock time a process spends Busy
// (snapshot-blocked). Observe is called after every event that may flip
// the mechanism's Busy state; like the mechanism it watches, the meter
// belongs to a single goroutine. The wall-clock runtimes (live, net)
// share this one implementation; the simulator keeps its own
// virtual-clock variant.
type BusyMeter struct {
	since time.Time
	// Seconds is the busy time accumulated over closed intervals.
	Seconds float64
}

// Observe records the current Busy state, closing or opening an
// interval on a transition.
func (m *BusyMeter) Observe(busy bool) {
	if busy {
		if m.since.IsZero() {
			m.since = time.Now()
		}
	} else if !m.since.IsZero() {
		m.Seconds += time.Since(m.since).Seconds()
		m.since = time.Time{}
	}
}

// SnapshotRoundsOf derives the start_snp round count from mechanism
// stats: every initiated snapshot opens one round and every
// election-loss restart re-opens it.
func SnapshotRoundsOf(st Stats) int64 {
	return st.SnapshotsInitiated + st.SnapshotRestarts
}
