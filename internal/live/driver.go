package live

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Driver implements workload.Driver over the goroutine runtime: any
// registered scenario runs on real concurrency under the race detector
// with no sockets in the way.
type Driver struct {
	// Drive tunes DriveCluster (Spin is always taken from the run's
	// Params; the rest applies as given).
	Drive workload.DriveOptions
	// App tunes the application-port host used for application
	// scenarios (zero value = defaults).
	App AppRunner
}

// NewDriver returns the live runtime driver.
func NewDriver() Driver { return Driver{} }

// Runtime implements workload.Driver.
func (Driver) Runtime() string { return "live" }

// Run implements workload.Driver.
func (d Driver) Run(w workload.Workload, mech core.Mech, cfg core.Config, p workload.Params) (*workload.Report, error) {
	if as, ok := w.(workload.AppScenario); ok {
		// Application scenarios (the solver) are hosted through the
		// application port instead of compiled to rank programs.
		return workload.RunAppScenario(&d.App, as, mech, cfg, p)
	}
	progs, err := w.Programs(p)
	if err != nil {
		return nil, err
	}
	var setup ClusterSetup
	setup.Initial, setup.Speed = workload.Setup(progs)
	cl, err := NewClusterSetup(len(progs), mech, cfg, setup)
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	opts := d.Drive
	opts.Spin = p.Spin
	rep, err := workload.DriveCluster(cl, mech, progs, opts)
	if err != nil {
		return nil, err
	}
	rep.Scenario, rep.Runtime = w.Name(), "live"
	return rep, nil
}
