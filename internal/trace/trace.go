// Package trace provides structured event tracing for the simulator and
// the solver: what happened, when (virtual time) and on which process.
// Traces make the asynchronous runs debuggable — the exact interleaving
// behind a memory peak or a slow snapshot can be replayed and filtered —
// and power the verbose modes of the experiment harness.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Type classifies trace events.
type Type uint8

// Event types emitted by the solver and the mechanisms.
const (
	EvSend Type = iota
	EvReceive
	EvTaskStart
	EvTaskEnd
	EvDecision
	EvSnapshotStart
	EvSnapshotReady
	EvSnapshotEnd
	EvBlocked
	EvUnblocked
	EvMemory
	EvCustom
)

func (t Type) String() string {
	switch t {
	case EvSend:
		return "send"
	case EvReceive:
		return "recv"
	case EvTaskStart:
		return "task+"
	case EvTaskEnd:
		return "task-"
	case EvDecision:
		return "decide"
	case EvSnapshotStart:
		return "snap+"
	case EvSnapshotReady:
		return "snap="
	case EvSnapshotEnd:
		return "snap-"
	case EvBlocked:
		return "block"
	case EvUnblocked:
		return "unblock"
	case EvMemory:
		return "mem"
	case EvCustom:
		return "note"
	}
	return "?"
}

// Event is one trace record.
type Event struct {
	At   float64 // virtual seconds
	Proc int
	Type Type
	// Node is the assembly-tree node involved, -1 if not applicable.
	Node int32
	// Value carries a type-specific quantity (bytes, entries, duration).
	Value float64
	// Note is a short free-form annotation.
	Note string
}

// String formats the event for text dumps.
func (e Event) String() string {
	s := fmt.Sprintf("%12.6f P%-3d %-8s", e.At, e.Proc, e.Type)
	if e.Node >= 0 {
		s += fmt.Sprintf(" node=%-6d", e.Node)
	}
	if e.Value != 0 {
		s += fmt.Sprintf(" value=%g", e.Value)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Tracer receives events. Implementations must be cheap: the solver can
// emit millions of events per run.
type Tracer interface {
	Emit(Event)
}

// Ring is a fixed-capacity tracer keeping the most recent events. The
// zero value is unusable; use NewRing. Safe for concurrent use (the live
// runtime emits from several goroutines).
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	full  bool
}

// NewRing creates a ring tracer holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Total returns how many events were emitted overall (including evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in emission order.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events accepted by keep.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the retained events as text.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Counter is a tracer that only counts events per type; used when full
// retention would be too expensive.
type Counter struct {
	mu     sync.Mutex
	counts map[Type]uint64
}

// NewCounter creates a counting tracer.
func NewCounter() *Counter { return &Counter{counts: map[Type]uint64{}} }

// Emit implements Tracer.
func (c *Counter) Emit(e Event) {
	c.mu.Lock()
	c.counts[e.Type]++
	c.mu.Unlock()
}

// Count returns how many events of type t were seen.
func (c *Counter) Count(t Type) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[t]
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}
