package main

import (
	"math"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/workload"
)

// buildLoadex compiles the real loadex binary (the test binary cannot
// re-execute itself as `loadex node`).
func buildLoadex(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "loadex")
	cmd := exec.Command("go", "build", "-o", exe, "repro/cmd/loadex")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build loadex: %v\n%s", err, out)
	}
	return exe
}

// TestForkedSolverEquivalence is the fourth lane of the cross-runtime
// solver equivalence suite: the same application cell on forked
// multi-process nodes (one OS process per rank, real TCP, detector-
// driven termination) must conserve executed flops exactly against the
// deterministic sim reference and take the same structural number of
// dynamic decisions — one per Type 2 node — with no shared memory
// between the ranks.
func TestForkedSolverEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a multi-process TCP cluster")
	}
	exe := buildLoadex(t)

	const procs = 4
	for _, tc := range []struct{ mech, term string }{
		{"increments", "ds"},
		{"snapshot", "safra"},
	} {
		tc := tc
		t.Run(tc.mech+"_"+tc.term, func(t *testing.T) {
			// Sim reference for the same cell.
			w, err := workload.Get("solver-wl")
			if err != nil {
				t.Fatal(err)
			}
			ref, err := sim.NewWorkloadDriver().Run(w, core.Mech(tc.mech),
				core.Config{NoMoreMasterOpt: true}, workload.Params{Procs: procs})
			if err != nil {
				t.Fatal(err)
			}
			refRes := ref.AppResult.(*solver.Result)

			p := nodeParams{
				procs: procs, scenario: "solver-wl", mech: tc.mech, term: tc.term,
				threshold: 5, noMore: true, codec: "binary",
				masters: 1, decisions: 1, work: 60, slaves: 2,
				spin: time.Millisecond, settle: 10 * time.Millisecond,
			}
			stats, err := runClusterForkedWith(exe, &p)
			if err != nil {
				t.Fatal(err)
			}
			var flops float64
			var decisions int
			var ctrl int64
			for _, s := range stats {
				flops += s.Flops
				decisions += s.Decisions
				ctrl += s.Counters.CtrlMsgs
			}
			if decisions != refRes.Decisions {
				t.Errorf("forked decisions %d, sim %d", decisions, refRes.Decisions)
			}
			refFlops := refRes.TotalExecutedFlops()
			if den := math.Max(refFlops, 1); math.Abs(flops-refFlops)/den > 1e-9 {
				t.Errorf("forked executed flops %v, sim %v", flops, refFlops)
			}
			if ctrl == 0 {
				t.Error("no termination-detection control frames counted across the forked cluster")
			}
		})
	}
}
