// Package ordering provides fill-reducing orderings for sparse symmetric
// graphs: quotient-graph minimum degree (with element absorption,
// supervariables and dense-row handling), geometric nested dissection for
// mesh problems, and reverse Cuthill-McKee. It substitutes for the METIS
// package the paper uses (§4.3): what the experiments need is a realistic
// assembly-tree shape, which any good fill-reducing ordering provides.
package ordering

import (
	"fmt"

	"repro/internal/sparse"
)

// Perm is an elimination order: Perm[k] = v means vertex v is eliminated
// at step k. (This is the "order" convention; Inverse gives positions.)
type Perm []int32

// Identity returns the natural order on n vertices.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// Inverse returns inv with inv[v] = position of v in the order.
func (p Perm) Inverse() []int32 {
	inv := make([]int32, len(p))
	for k, v := range p {
		inv[v] = int32(k)
	}
	return inv
}

// Validate checks that p is a permutation of [0, n).
func (p Perm) Validate(n int) error {
	if len(p) != n {
		return fmt.Errorf("ordering: permutation length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("ordering: value %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("ordering: duplicate value %d", v)
		}
		seen[v] = true
	}
	return nil
}

// PermuteGraph relabels g by the order p: vertex v becomes inv[v]. The
// permuted graph is what symbolic analysis consumes (elimination proceeds
// in natural order on the permuted graph).
func PermuteGraph(g *sparse.Graph, p Perm) *sparse.Graph {
	inv := p.Inverse()
	ptr := make([]int32, g.N+1)
	for newV := 0; newV < g.N; newV++ {
		oldV := p[newV]
		ptr[newV+1] = ptr[newV] + int32(g.Degree(int(oldV)))
	}
	adj := make([]int32, len(g.Adj))
	for newV := 0; newV < g.N; newV++ {
		oldV := p[newV]
		w := ptr[newV]
		for _, u := range g.AdjOf(int(oldV)) {
			adj[w] = inv[u]
			w++
		}
		lst := adj[ptr[newV]:w]
		insertionSort(lst)
	}
	var coords [][3]float64
	if g.Coords != nil {
		coords = make([][3]float64, g.N)
		for newV := 0; newV < g.N; newV++ {
			coords[newV] = g.Coords[p[newV]]
		}
	}
	return &sparse.Graph{N: g.N, Ptr: ptr, Adj: adj, Coords: coords}
}

func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Method names an ordering algorithm.
type Method string

// Supported ordering methods.
const (
	MethodAuto    Method = "auto" // ND when coordinates exist, else MD
	MethodMinDeg  Method = "md"
	MethodND      Method = "nd"
	MethodRCM     Method = "rcm"
	MethodNatural Method = "natural"
)

// Order computes an elimination order for g with the given method.
func Order(g *sparse.Graph, m Method) (Perm, error) {
	switch m {
	case MethodAuto:
		if g.Coords != nil {
			return NestedDissection(g), nil
		}
		return MinimumDegree(g), nil
	case MethodMinDeg:
		return MinimumDegree(g), nil
	case MethodND:
		return NestedDissection(g), nil
	case MethodRCM:
		return RCM(g), nil
	case MethodNatural:
		return Identity(g.N), nil
	}
	return nil, fmt.Errorf("ordering: unknown method %q", m)
}
