package chaos

// RNG is a small deterministic pseudo-random generator (SplitMix64),
// the same construction as sim.RNG: fault decisions must be
// reproducible across Go releases and derivable per fault site without
// shared state (see Plan.RNGFor). Duplicated rather than imported so
// the dependency arrow stays runtime → chaos.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed; equal seeds produce
// identical streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
