package obs

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("m_total", "help", L("rank", "0")...)
	c2 := r.Counter("m_total", "help", L("rank", "0")...)
	if c1 != c2 {
		t.Fatalf("same (name, labels) returned distinct counters")
	}
	c3 := r.Counter("m_total", "help", L("rank", "1")...)
	if c1 == c3 {
		t.Fatalf("distinct labels returned the same counter")
	}
	c1.Add(5)
	c3.Add(7)
	samples := r.Gather()
	if len(samples) != 2 {
		t.Fatalf("gathered %d samples, want 2", len(samples))
	}
	if samples[0].Value != 5 || samples[1].Value != 7 {
		t.Fatalf("values %v %v, want 5 7", samples[0].Value, samples[1].Value)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("conflicting kind registration did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestSampledInstruments(t *testing.T) {
	r := NewRegistry()
	var tally atomic.Int64
	r.CounterFunc("sampled_total", "reads an existing atomic", func() float64 {
		return float64(tally.Load())
	})
	tally.Store(42)
	s := r.Gather()
	if len(s) != 1 || s[0].Value != 42 {
		t.Fatalf("sampled counter = %+v, want 42", s)
	}
	tally.Store(99)
	if got := r.Gather()[0].Value; got != 99 {
		t.Fatalf("sampled counter did not track the atomic: %g", got)
	}
}

// TestRegistryConcurrency is the -race acceptance check: concurrent
// writers on every instrument kind plus concurrent gathers must be
// race-free and lose no counts.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg, scrapers sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run throughout.
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					WriteProm(&strings.Builder{}, Merge(r.Gather()))
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers share one label set, half get their own —
			// exercises both same-instrument contention and concurrent
			// registration.
			rank := "0"
			if w%2 == 1 {
				rank = "1"
			}
			c := r.Counter("conc_total", "", L("rank", rank)...)
			g := r.Gauge("conc_gauge", "", L("rank", rank)...)
			h := r.Histogram("conc_hist", "", L("rank", rank)...)
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	var total float64
	var histN int64
	for _, s := range Merge(r.Gather()) {
		switch s.Name {
		case "conc_total":
			total = s.Value
		case "conc_hist":
			histN = s.Hist.Count()
		}
	}
	if want := float64(workers * perW); total != want {
		t.Fatalf("counter lost updates: %g, want %g", total, want)
	}
	if want := int64(workers * perW); histN != want {
		t.Fatalf("histogram lost samples: %d, want %d", histN, want)
	}
}

func TestHistogramStripesMergeExactly(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count() != 4000 {
		t.Fatalf("count %d, want 4000", snap.Count())
	}
	if math.Abs(snap.Sum()-4*500500) > 1e-6 {
		t.Fatalf("sum %g, want %g", snap.Sum(), 4.0*500500)
	}
	if snap.Min() != 1 || snap.Max() != 1000 {
		t.Fatalf("min/max %g/%g", snap.Min(), snap.Max())
	}
}

func TestMergeDropsRankLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", L("rank", "0", "mech", "snapshot")...).Add(3)
	r.Counter("m_total", "", L("rank", "1", "mech", "snapshot")...).Add(4)
	merged := Merge(r.Gather())
	if len(merged) != 1 {
		t.Fatalf("merged %d series, want 1", len(merged))
	}
	if merged[0].Value != 7 {
		t.Fatalf("merged value %g, want 7", merged[0].Value)
	}
	for _, l := range merged[0].Labels {
		if l.Name == "rank" {
			t.Fatalf("rank label survived merge: %+v", merged[0].Labels)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total", "messages sent", L("rank", "0")...).Add(12)
	r.Gauge("queue_depth", "").Set(3.5)
	h := r.Histogram("lat_seconds", "latency")
	for i := 0; i < 100; i++ {
		h.Observe(0.25)
	}
	var b strings.Builder
	if err := WriteProm(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE msgs_total counter",
		`msgs_total{rank="0"} 12`,
		"# TYPE queue_depth gauge",
		"queue_depth 3.5",
		"# TYPE lat_seconds summary",
		`lat_seconds{quantile="0.5"} 0.25`,
		"lat_seconds_sum 25",
		"lat_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCatalogCoversSpanTracks(t *testing.T) {
	for _, d := range SpanKinds() {
		if got := SpanTrack(d.Name); got != d.Track {
			t.Errorf("SpanTrack(%q) = %q, want %q (prefix rule and catalog must agree)", d.Name, got, d.Track)
		}
	}
	if len(Catalog()) == 0 {
		t.Fatal("empty metric catalog")
	}
	seen := map[string]bool{}
	for _, m := range Catalog() {
		if seen[m.Name] {
			t.Errorf("duplicate catalog metric %s", m.Name)
		}
		seen[m.Name] = true
		if !strings.HasPrefix(m.Name, "loadex_") {
			t.Errorf("catalog metric %s missing loadex_ prefix", m.Name)
		}
	}
}
