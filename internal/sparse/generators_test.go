package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestGridPerturbedStructure(t *testing.T) {
	rng := sim.NewRNG(4)
	p, g := GridPerturbed(20, 20, 0.05, rng, Unsym)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N != 400 {
		t.Fatalf("n = %d, want 400", p.N)
	}
	if g.Coords == nil {
		t.Fatal("perturbed grid must carry coordinates for geometric ND")
	}
	// Interior grid vertex keeps its 4 mesh neighbours (plus possibly
	// random extras).
	if d := g.Degree(20*10 + 10); d < 4 {
		t.Fatalf("interior degree %d < 4", d)
	}
	// The perturbation added at least one long-range edge somewhere.
	long := false
	for v := 0; v < g.N && !long; v++ {
		for _, u := range g.AdjOf(v) {
			dx := g.Coords[v][0] - g.Coords[u][0]
			dy := g.Coords[v][1] - g.Coords[u][1]
			if dx*dx+dy*dy > 4 {
				long = true
				break
			}
		}
	}
	if !long {
		t.Fatal("no long-range edges generated")
	}
}

func TestGridPerturbedZeroExtraIsPlanar(t *testing.T) {
	rng := sim.NewRNG(4)
	_, g := GridPerturbed(10, 10, 0, rng, Unsym)
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > 4 {
			t.Fatalf("vertex %d degree %d > 4 without perturbation", v, g.Degree(v))
		}
	}
}

func TestCliqueOverlayStructure(t *testing.T) {
	rng := sim.NewRNG(9)
	p := CliqueOverlay(500, 12, 30, 4, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := p.ToGraph()
	// Clique members have degree around cliqueSize; background-only
	// vertices sit near bgDeg. The max must clearly exceed the
	// background.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Fatalf("max degree %d, want clique-sized", maxDeg)
	}
}

func TestCliqueOverlayValidProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw, csRaw uint8) bool {
		n := int(nRaw)%400 + 50
		k := int(kRaw)%10 + 1
		cs := int(csRaw)%20 + 3
		p := CliqueOverlay(n, k, cs, 2, sim.NewRNG(seed))
		return p.Validate() == nil && p.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleHelpers(t *testing.T) {
	if scaleDim(100, 1) != 100 {
		t.Fatal("scaleDim identity")
	}
	if scaleDim(100, 0.125) != 50 {
		t.Fatalf("scaleDim(100, 1/8) = %d, want 50 (cbrt volume scaling)", scaleDim(100, 0.125))
	}
	if scaleDim(10, 1e-9) < 6 {
		t.Fatal("scaleDim floor violated")
	}
	if scaleN(10000, 0.25) != 2500 {
		t.Fatal("scaleN linear scaling")
	}
	if scaleN(1000, 1e-9) < 400 {
		t.Fatal("scaleN floor violated")
	}
	if intSqrt(49) != 7 || intSqrt(50) != 7 {
		t.Fatal("intSqrt wrong")
	}
	if intSqrt(1) != 4 {
		t.Fatal("intSqrt floor violated")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	for _, name := range []string{"GUPTA3", "PRE2", "TWOTONE"} {
		pr, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := pr.Generate(0.05, 7)
		b, _ := pr.Generate(0.05, 7)
		if a.N != b.N || a.Stored() != b.Stored() {
			t.Fatalf("%s: generation not deterministic", name)
		}
		for i := range a.RowIdx {
			if a.RowIdx[i] != b.RowIdx[i] {
				t.Fatalf("%s: pattern differs", name)
			}
		}
		c, _ := pr.Generate(0.05, 8)
		if c.Stored() == a.Stored() && name != "GUPTA3" {
			// Different seeds should (almost surely) differ for random
			// generators; allow coincidence only on tiny GUPTA3.
			same := true
			for i := range a.RowIdx {
				if i >= len(c.RowIdx) || a.RowIdx[i] != c.RowIdx[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: seed has no effect", name)
			}
		}
	}
}

func TestNNZMatchesShapeClassRoughly(t *testing.T) {
	// The analogues should have nnz/n within a factor ~4 of the paper's
	// ratio for mesh-type problems (structure class preserved).
	for _, name := range []string{"BMWCRA_1", "XENON2", "CONV3D64", "MSDOOR"} {
		pr, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := pr.Generate(0.1, 1)
		paperRatio := float64(pr.PaperNNZ) / float64(pr.PaperOrder)
		genRatio := float64(p.NNZ()) / float64(p.N)
		if genRatio < paperRatio/4 || genRatio > paperRatio*4 {
			t.Fatalf("%s: nnz/n = %.1f vs paper %.1f (shape class lost)", name, genRatio, paperRatio)
		}
	}
}
