package main

// loadex validate: replay recorded chaos traces offline and check the
// cross-rank invariants no single process can check online —
// conservation (every work item sent was received exactly once),
// compute completion (every started task finished, and each rank's
// final tally matches), coherent selections (each recorded decision
// picked the least-loaded ranks of its own view) and quiescence (every
// rank reported exactly one final event, i.e. termination detection
// never fired with a rank missing). Runs recorded with a sparse -topo
// additionally check that every state message travelled an edge of the
// named neighbor graph and every selection stayed in the master's
// neighborhood.
//
//	loadex cluster -scenario solver-wl -chaos delay -trace /tmp/traces
//	loadex validate -dir /tmp/traces
//
// Every directory under -dir that directly holds *.jsonl files is
// validated as one run (fan-out commands write one subdirectory per
// scenario × mechanism cell). The exit status is non-zero if any run
// violated an invariant.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/chaos"
)

func runValidate(args []string) error {
	fs := flag.NewFlagSet("loadex validate", flag.ExitOnError)
	dir := fs.String("dir", "", "root directory of recorded traces (each subdirectory holding *.jsonl files is one run)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" || fs.NArg() > 1 {
		return fmt.Errorf("usage: loadex validate -dir <trace-root>")
	}
	return validateTraceRoot(os.Stdout, *dir)
}

// validateTraceRoot validates every trace set under root and prints one
// report per run; it errors if any run violated an invariant (or no
// traces were found — a validation that checked nothing must not pass).
func validateTraceRoot(w io.Writer, root string) error {
	dirs, err := chaos.TraceDirs(root)
	if err != nil {
		return err
	}
	if len(dirs) == 0 {
		return fmt.Errorf("no *.jsonl trace files under %s", root)
	}
	bad := 0
	for _, d := range dirs {
		events, err := chaos.ReadDir(d)
		if err != nil {
			return err
		}
		rep := chaos.Validate(events)
		fmt.Fprintf(w, "== validate %s ==\n", d)
		rep.Format(w)
		if !rep.OK() {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d trace set(s) violated invariants", bad, len(dirs))
	}
	return nil
}
