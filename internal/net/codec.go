// Package net runs the load-exchange mechanisms over real TCP sockets:
// the same transport-agnostic state machines that the deterministic
// simulator (internal/sim) and the goroutine runtime (internal/live)
// drive, now facing a genuine wire — serialization, per-pair FIFO
// connections, backpressure and cross-process quiescence detection.
//
// The package has three layers:
//
//   - a length-prefixed wire codec (Codec; BinaryCodec is the default,
//     JSONCodec can be swapped in for debugging),
//   - Node, one OS process of the cluster: a TCP listener, one
//     connection per peer, a prioritized state-message channel and a
//     data channel, mirroring internal/live.Node,
//   - Cluster, an in-process harness that runs N Nodes over localhost
//     TCP with the same API as live.Cluster (used by tests and by
//     `loadex cluster -inproc`).
//
// Multi-process clusters are assembled by `loadex cluster`, which forks
// one `loadex node` per rank; the stdio handshake lives in cmd/loadex.
package net

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// MsgType tags a wire message. Hello identifies a connection; State
// carries a core state-channel message; Work/WorkDone are the data
// channel (a work item and its execution acknowledgment); Done is the
// cluster termination protocol (a master announcing all its work
// drained); Data carries one application-port data-channel message
// (workload.DataMsg: the solver's subtasks, contribution-block pieces
// and ship requests travel as these frames); Ctrl carries one
// termination-detection control frame (termdet.Ctrl: engagement acks,
// probe tokens, the termination announcement of the quiescence
// subsystem).
type MsgType uint8

// The wire message types.
const (
	TypeHello MsgType = 1 + iota
	TypeState
	TypeWork
	TypeWorkDone
	TypeDone
	TypeData
	TypeCtrl
	// The job-tagged variants multiplex many concurrent jobs over one
	// resident mesh (internal/service): same payloads as their base
	// types plus a job id the receiving node routes on. Legacy frames
	// stay byte-identical — a mesh serving jobs still speaks the exact
	// one-shot protocol for its own state channel.
	TypeJobState
	TypeJobData
	TypeJobCtrl
)

// String returns a short name for the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeState:
		return "state"
	case TypeWork:
		return "work"
	case TypeWorkDone:
		return "work_done"
	case TypeDone:
		return "done"
	case TypeData:
		return "data"
	case TypeCtrl:
		return "ctrl"
	case TypeJobState:
		return "job_state"
	case TypeJobData:
		return "job_data"
	case TypeJobCtrl:
		return "job_ctrl"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Message is the flattened wire representation of everything that
// travels between nodes. Only the fields relevant to Type (and, for
// TypeState, Kind) are encoded; the rest stay zero. A flattened struct —
// rather than an `any` payload — keeps both codecs trivial and makes
// decode(encode(m)) == m a meaningful property to fuzz.
type Message struct {
	Type MsgType `json:"type"`
	From int32   `json:"from"`
	// Job identifies the multiplexed job of a TypeJob* frame (zero for
	// every legacy type: job ids start at 1).
	Job int32 `json:"job,omitempty"`
	// Kind is the core state-message kind (TypeState/TypeJobState only).
	Kind int32 `json:"kind,omitempty"`
	// Req is the snapshot request id (start_snp, snp).
	Req int32 `json:"req,omitempty"`
	// Load carries the update/snp/master_to_slave load vector, or the
	// work item's load (TypeWork).
	Load core.Load `json:"load,omitempty"`
	// Assignments is the master_to_all reservation list.
	Assignments []core.Assignment `json:"assignments,omitempty"`
	// Origin, Seq and TTL identify a gossip rumor (kind gossip only):
	// the originating rank, its per-origin sequence number and the
	// remaining hop budget.
	Origin int32 `json:"origin,omitempty"`
	Seq    int32 `json:"seq,omitempty"`
	TTL    int32 `json:"ttl,omitempty"`
	// Loads is the diffusion view vector (kind diffuse only), one entry
	// per rank.
	Loads []core.Load `json:"loads,omitempty"`
	// Spin is the work item's execution duration in nanoseconds
	// (TypeWork only).
	Spin int64 `json:"spin,omitempty"`
	// Data is the application-port payload (TypeData only); its Kind
	// tag lives inside the struct, the transport does not interpret it.
	Data workload.DataMsg `json:"data,omitzero"`
	// Ctrl is the termination-detection payload (TypeCtrl only).
	Ctrl termdet.Ctrl `json:"ctrl,omitzero"`
}

// DataMessage builds the wire message for one application data-channel
// send.
func DataMessage(from int, m workload.DataMsg) Message {
	return Message{Type: TypeData, From: int32(from), Data: m}
}

// CtrlMessage builds the wire message for one termination-detection
// control frame.
func CtrlMessage(from int, c termdet.Ctrl) Message {
	return Message{Type: TypeCtrl, From: int32(from), Ctrl: c}
}

// JobDataMessage builds the job-tagged wire message for one data-channel
// send of a multiplexed job.
func JobDataMessage(job int32, from int, m workload.DataMsg) Message {
	return Message{Type: TypeJobData, Job: job, From: int32(from), Data: m}
}

// JobCtrlMessage builds the job-tagged wire message for one
// termination-detection control frame of a multiplexed job.
func JobCtrlMessage(job int32, from int, c termdet.Ctrl) Message {
	return Message{Type: TypeJobCtrl, Job: job, From: int32(from), Ctrl: c}
}

// JobStateMessage builds the job-tagged wire message for one
// state-channel send of a multiplexed job (a hosted application's own
// mechanism traffic, isolated from the mesh's shared state channel).
func JobStateMessage(job int32, from int, kind int, payload any) (Message, error) {
	m, err := StateMessage(from, kind, payload)
	if err != nil {
		return m, err
	}
	m.Type, m.Job = TypeJobState, job
	return m, nil
}

// jobBase maps a job-tagged type onto the base type whose payload
// layout it shares (and returns the input unchanged for non-job types).
func jobBase(t MsgType) MsgType {
	switch t {
	case TypeJobState:
		return TypeState
	case TypeJobData:
		return TypeData
	case TypeJobCtrl:
		return TypeCtrl
	}
	return t
}

// StateMessage builds the wire message for one core state-channel send.
// It returns an error for payloads no core mechanism emits, so an
// incompatible future payload fails loudly rather than silently dropping
// fields.
func StateMessage(from int, kind int, payload any) (Message, error) {
	m := Message{Type: TypeState, From: int32(from), Kind: int32(kind)}
	switch kind {
	case core.KindUpdate:
		p, ok := payload.(core.UpdatePayload)
		if !ok {
			return m, fmt.Errorf("net: update payload %T", payload)
		}
		m.Load = p.Load
	case core.KindMasterToAll:
		p, ok := payload.(core.MasterToAllPayload)
		if !ok {
			return m, fmt.Errorf("net: master_to_all payload %T", payload)
		}
		m.Assignments = p.Assignments
	case core.KindNoMoreMaster, core.KindEndSnp:
		if payload != nil {
			return m, fmt.Errorf("net: %s payload %T", core.KindName(kind), payload)
		}
	case core.KindStartSnp:
		p, ok := payload.(core.StartSnpPayload)
		if !ok {
			return m, fmt.Errorf("net: start_snp payload %T", payload)
		}
		m.Req = p.Req
	case core.KindSnp:
		p, ok := payload.(core.SnpPayload)
		if !ok {
			return m, fmt.Errorf("net: snp payload %T", payload)
		}
		m.Req, m.Load = p.Req, p.Load
	case core.KindMasterToSlave:
		p, ok := payload.(core.MasterToSlavePayload)
		if !ok {
			return m, fmt.Errorf("net: master_to_slave payload %T", payload)
		}
		m.Load = p.Delta
	case core.KindGossip:
		p, ok := payload.(core.GossipPayload)
		if !ok {
			return m, fmt.Errorf("net: gossip payload %T", payload)
		}
		m.Origin, m.Seq, m.TTL, m.Load = p.Origin, p.Seq, p.TTL, p.Load
	case core.KindDiffuse:
		p, ok := payload.(core.DiffusePayload)
		if !ok {
			return m, fmt.Errorf("net: diffuse payload %T", payload)
		}
		m.Loads = p.Loads
	default:
		return m, fmt.Errorf("net: unknown state kind %d", kind)
	}
	return m, nil
}

// StatePayload reconstructs the core payload value HandleMessage expects
// (the mechanisms type-assert concrete payload structs).
func (m *Message) StatePayload() any {
	switch int(m.Kind) {
	case core.KindUpdate:
		return core.UpdatePayload{Load: m.Load}
	case core.KindMasterToAll:
		return core.MasterToAllPayload{Assignments: m.Assignments}
	case core.KindStartSnp:
		return core.StartSnpPayload{Req: m.Req}
	case core.KindSnp:
		return core.SnpPayload{Req: m.Req, Load: m.Load}
	case core.KindMasterToSlave:
		return core.MasterToSlavePayload{Delta: m.Load}
	case core.KindGossip:
		return core.GossipPayload{Origin: m.Origin, Seq: m.Seq, TTL: m.TTL, Load: m.Load}
	case core.KindDiffuse:
		return core.DiffusePayload{Loads: m.Loads}
	}
	return nil // no_more_master, end_snp
}

// Codec turns Messages into frame bodies and back. Implementations must
// be safe for concurrent use (one encoder per peer writer, one decoder
// per peer reader share the codec value).
type Codec interface {
	// Name identifies the codec on the command line ("binary", "json").
	Name() string
	// Encode appends the wire form of m to dst and returns the extended
	// slice.
	Encode(dst []byte, m Message) ([]byte, error)
	// Decode parses one message from exactly b; trailing garbage is an
	// error. It must never panic, whatever b contains.
	Decode(b []byte) (Message, error)
	// DecodeInto is Decode into a caller-owned Message, reusing its
	// payload slice capacity — the zero-allocation read path. The
	// previous contents of m are discarded; on error m is undefined.
	DecodeInto(b []byte, m *Message) error
}

// NewCodec returns the codec registered under name.
func NewCodec(name string) (Codec, error) {
	switch name {
	case "", "binary":
		return BinaryCodec{}, nil
	case "json":
		return JSONCodec{}, nil
	}
	return nil, fmt.Errorf("net: unknown codec %q (available: %s)", name, "binary, json")
}

// CodecNames lists the available codec names for usage messages.
func CodecNames() []string { return []string{"binary", "json"} }

// ---- binary codec --------------------------------------------------------

// BinaryCodec is the default compact big-endian encoding. Layout:
//
//	type:u8 from:i32 [per-type fields]
//
// with loads as core.NumMetrics raw float64 bit patterns and the
// master_to_all assignment list length-prefixed by a u32.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

// assignmentSize is the encoded size of one core.Assignment.
const assignmentSize = 4 + 8*int(core.NumMetrics)

// Encode implements Codec.
func (BinaryCodec) Encode(dst []byte, m Message) ([]byte, error) {
	dst = append(dst, byte(m.Type))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	t := m.Type
	if base := jobBase(t); base != t {
		// Job-tagged frames carry the job id right after the sender,
		// then the exact payload layout of their base type.
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Job))
		t = base
	}
	switch t {
	case TypeHello, TypeWorkDone, TypeDone:
		// header only
	case TypeWork:
		dst = appendLoad(dst, m.Load)
		dst = binary.BigEndian.AppendUint64(dst, uint64(m.Spin))
	case TypeData:
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Data.Kind))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Data.Node))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Data.Peer))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Data.Count))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Data.Work))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Data.Size))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Data.Bytes))
	case TypeCtrl:
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Ctrl.Kind))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Ctrl.Count))
		black := byte(0)
		if m.Ctrl.Black {
			black = 1
		}
		dst = append(dst, black)
	case TypeState:
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Kind))
		switch int(m.Kind) {
		case core.KindUpdate, core.KindMasterToSlave:
			dst = appendLoad(dst, m.Load)
		case core.KindNoMoreMaster, core.KindEndSnp:
		case core.KindStartSnp:
			dst = binary.BigEndian.AppendUint32(dst, uint32(m.Req))
		case core.KindSnp:
			dst = binary.BigEndian.AppendUint32(dst, uint32(m.Req))
			dst = appendLoad(dst, m.Load)
		case core.KindMasterToAll:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Assignments)))
			for _, a := range m.Assignments {
				dst = binary.BigEndian.AppendUint32(dst, uint32(a.Proc))
				dst = appendLoad(dst, a.Delta)
			}
		case core.KindGossip:
			dst = binary.BigEndian.AppendUint32(dst, uint32(m.Origin))
			dst = binary.BigEndian.AppendUint32(dst, uint32(m.Seq))
			dst = binary.BigEndian.AppendUint32(dst, uint32(m.TTL))
			dst = appendLoad(dst, m.Load)
		case core.KindDiffuse:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Loads)))
			for _, l := range m.Loads {
				dst = appendLoad(dst, l)
			}
		default:
			return nil, fmt.Errorf("net: encode: unknown state kind %d", m.Kind)
		}
	default:
		return nil, fmt.Errorf("net: encode: unknown message type %d", m.Type)
	}
	return dst, nil
}

// Decode implements Codec. It is strict: unknown types/kinds, short
// buffers and trailing bytes are errors, and no input panics.
func (c BinaryCodec) Decode(b []byte) (Message, error) {
	var m Message
	err := c.DecodeInto(b, &m)
	return m, err
}

// DecodeInto implements Codec. Reusing one Message across calls makes
// the steady-state decode path allocation-free: the assignment and load
// vectors of master_to_all / diffuse frames land in the slices m
// already carries whenever their capacity suffices.
func (BinaryCodec) DecodeInto(b []byte, m *Message) error {
	*m = Message{Assignments: m.Assignments[:0], Loads: m.Loads[:0]}
	r := reader{buf: b}
	t, err := r.u8()
	if err != nil {
		return err
	}
	m.Type = MsgType(t)
	if m.From, err = r.i32(); err != nil {
		return err
	}
	base := m.Type
	if b := jobBase(base); b != base {
		if m.Job, err = r.i32(); err != nil {
			return err
		}
		base = b
	}
	switch base {
	case TypeHello, TypeWorkDone, TypeDone:
	case TypeWork:
		if m.Load, err = r.load(); err != nil {
			return err
		}
		var u uint64
		if u, err = r.u64(); err != nil {
			return err
		}
		m.Spin = int64(u)
	case TypeData:
		if m.Data.Kind, err = r.i32(); err != nil {
			return err
		}
		if m.Data.Node, err = r.i32(); err != nil {
			return err
		}
		if m.Data.Peer, err = r.i32(); err != nil {
			return err
		}
		if m.Data.Count, err = r.i32(); err != nil {
			return err
		}
		if m.Data.Work, err = r.f64(); err != nil {
			return err
		}
		if m.Data.Size, err = r.f64(); err != nil {
			return err
		}
		if m.Data.Bytes, err = r.f64(); err != nil {
			return err
		}
	case TypeCtrl:
		if m.Ctrl.Kind, err = r.i32(); err != nil {
			return err
		}
		if m.Ctrl.Count, err = r.i32(); err != nil {
			return err
		}
		var black byte
		if black, err = r.u8(); err != nil {
			return err
		}
		if black > 1 {
			return fmt.Errorf("net: decode: ctrl color byte %d", black)
		}
		m.Ctrl.Black = black == 1
	case TypeState:
		if m.Kind, err = r.i32(); err != nil {
			return err
		}
		switch int(m.Kind) {
		case core.KindUpdate, core.KindMasterToSlave:
			if m.Load, err = r.load(); err != nil {
				return err
			}
		case core.KindNoMoreMaster, core.KindEndSnp:
		case core.KindStartSnp:
			if m.Req, err = r.i32(); err != nil {
				return err
			}
		case core.KindSnp:
			if m.Req, err = r.i32(); err != nil {
				return err
			}
			if m.Load, err = r.load(); err != nil {
				return err
			}
		case core.KindMasterToAll:
			n, err := r.i32()
			if err != nil {
				return err
			}
			// Bound the allocation by what the buffer can actually
			// hold, so a hostile length prefix cannot balloon memory
			// (divide rather than multiply: n*assignmentSize could
			// overflow int on 32-bit platforms).
			if n < 0 || int(n) > (len(r.buf)-r.off)/assignmentSize {
				return fmt.Errorf("net: decode: assignment count %d exceeds frame", n)
			}
			if n > 0 {
				if cap(m.Assignments) >= int(n) {
					m.Assignments = m.Assignments[:n]
				} else {
					m.Assignments = make([]core.Assignment, n)
				}
				for i := range m.Assignments {
					if m.Assignments[i].Proc, err = r.i32(); err != nil {
						return err
					}
					if m.Assignments[i].Delta, err = r.load(); err != nil {
						return err
					}
				}
			}
		case core.KindGossip:
			if m.Origin, err = r.i32(); err != nil {
				return err
			}
			if m.Seq, err = r.i32(); err != nil {
				return err
			}
			if m.TTL, err = r.i32(); err != nil {
				return err
			}
			if m.Load, err = r.load(); err != nil {
				return err
			}
		case core.KindDiffuse:
			n, err := r.i32()
			if err != nil {
				return err
			}
			// Same hostile-length bound as master_to_all: the count must
			// fit the remaining frame bytes.
			if n < 0 || int(n) > (len(r.buf)-r.off)/(8*int(core.NumMetrics)) {
				return fmt.Errorf("net: decode: load vector count %d exceeds frame", n)
			}
			if n > 0 {
				if cap(m.Loads) >= int(n) {
					m.Loads = m.Loads[:n]
				} else {
					m.Loads = make([]core.Load, n)
				}
				for i := range m.Loads {
					if m.Loads[i], err = r.load(); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("net: decode: unknown state kind %d", m.Kind)
		}
	default:
		return fmt.Errorf("net: decode: unknown message type %d", t)
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("net: decode: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func appendLoad(dst []byte, l core.Load) []byte {
	for _, v := range l {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// reader is a bounds-checked cursor over a frame body.
type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if len(r.buf)-r.off < n {
		return nil, fmt.Errorf("net: decode: truncated frame (need %d bytes at offset %d of %d)", n, r.off, len(r.buf))
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) i32() (int32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(b)), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) f64() (float64, error) {
	u, err := r.u64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

func (r *reader) load() (core.Load, error) {
	var l core.Load
	for i := range l {
		u, err := r.u64()
		if err != nil {
			return l, err
		}
		l[i] = math.Float64frombits(u)
	}
	return l, nil
}

// ---- JSON codec ----------------------------------------------------------

// JSONCodec encodes messages as JSON objects, one per frame — 3-4x the
// bytes of BinaryCodec but readable in a packet capture; swap it in with
// `-codec json` when debugging the wire.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

// Encode implements Codec.
func (JSONCodec) Encode(dst []byte, m Message) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}

// Decode implements Codec.
func (JSONCodec) Decode(b []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(b, &m); err != nil {
		return Message{}, err
	}
	return m, nil
}

// DecodeInto implements Codec. JSON decoding allocates regardless; the
// method exists so the readers can hold one code path for both codecs.
func (JSONCodec) DecodeInto(b []byte, m *Message) error {
	*m = Message{}
	return json.Unmarshal(b, m)
}

// ---- framing -------------------------------------------------------------

// MaxFrame bounds a frame body; anything larger is a protocol error
// (the biggest legitimate message is a master_to_all over every rank).
const MaxFrame = 1 << 20

// FrameHeaderBytes is the length prefix WriteFrame puts before every
// frame body. The core.Bytes* constants measure frame bodies only; add
// this per message to get true on-wire volume.
const FrameHeaderBytes = 4

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("net: frame of %d bytes exceeds MaxFrame", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame body into buf (growing it as
// needed) and returns the body slice.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("net: incoming frame of %d bytes exceeds MaxFrame", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
