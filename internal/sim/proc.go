package sim

// ProcState is the execution state of a simulated process.
type ProcState uint8

const (
	// Idle: the process is in its main loop with nothing to do; the next
	// message arrival wakes it.
	Idle ProcState = iota
	// Computing: a task is running. In the single-threaded model no
	// message is treated until the task completes; in the threaded model
	// state-information messages are treated at poll ticks.
	Computing
	// Blocked: the application refuses to treat data messages or start
	// tasks (e.g. the process participates in an ongoing distributed
	// snapshot). State-information messages are still treated.
	Blocked
)

func (s ProcState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Computing:
		return "computing"
	case Blocked:
		return "blocked"
	}
	return "invalid"
}

// Proc is one simulated process. All fields are managed by the Runtime.
type Proc struct {
	ID    int
	state ProcState

	stateQ queue // state-information messages, treated in priority
	dataQ  queue // task/data messages
	ctrlQ  queue // termination-detection control frames, highest priority

	// Compute bookkeeping.
	busy        bool // a task is running or paused
	paused      bool // threaded model: compute paused during a snapshot
	remaining   Duration
	startedAt   Time
	completion  EventHandle
	onDone      func()
	pausedTotal Duration // cumulative paused time (reporting)

	// wakePending coalesces arrival-triggered wakeups so at most one step
	// event is scheduled at a time.
	wakePending bool
	// pollPending coalesces poll-tick events (threaded model).
	pollPending bool

	// Reusable engine callbacks, built once by NewRuntime so the hot
	// scheduling paths (wake, poll tick, compute completion) do not
	// allocate a fresh closure per event.
	wakeFn     func()
	pollFn     func()
	completeFn func()

	// Stats.
	computeTime Duration
	idleSince   Time
	idleTime    Duration
}

// State returns the current execution state.
func (p *Proc) State() ProcState { return p.state }

// ComputeTime returns the cumulative virtual time this process spent
// computing tasks.
func (p *Proc) ComputeTime() Duration { return p.computeTime }

// PausedTime returns the cumulative virtual time this process spent with a
// task paused by the state-message thread (threaded model only).
func (p *Proc) PausedTime() Duration { return p.pausedTotal }

// QueuedState returns the number of untreated state-information messages.
func (p *Proc) QueuedState() int { return p.stateQ.len() }

// QueuedData returns the number of untreated data messages.
func (p *Proc) QueuedData() int { return p.dataQ.len() }

// queue is a simple FIFO of messages with an amortized O(1) pop.
type queue struct {
	items []*Message
	head  int
}

func (q *queue) push(m *Message) { q.items = append(q.items, m) }

func (q *queue) pop() *Message {
	if q.head >= len(q.items) {
		return nil
	}
	m := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return m
}

func (q *queue) len() int { return len(q.items) - q.head }
