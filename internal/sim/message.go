package sim

// Channel distinguishes the two logical channels of the paper's model
// (§1): state-information messages travel on a dedicated channel and are
// treated with priority over all other messages (Algorithm 1, line (1)).
type Channel uint8

const (
	// StateChannel carries load/state-information messages: Update,
	// Master_To_All, No_more_master, start_snp, snp, end_snp.
	StateChannel Channel = iota
	// DataChannel carries application messages: tasks, contribution
	// blocks, factors.
	DataChannel
)

// String returns "state" or "data".
func (c Channel) String() string {
	if c == StateChannel {
		return "state"
	}
	return "data"
}

// Message is a unit of communication between two processes. Kind is an
// application- or mechanism-defined tag; Payload carries the typed body.
type Message struct {
	From    int
	To      int
	Channel Channel
	Kind    int
	Payload any
	// Bytes is the on-wire size used for bandwidth accounting.
	Bytes float64
	// Sent and Arrived are stamped by the network.
	Sent    Time
	Arrived Time
}
