package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func viewWith(loads ...float64) *core.View {
	v := core.NewView(len(loads))
	for p, l := range loads {
		v.Set(p, core.Load{core.Workload: l, core.Memory: l})
	}
	return v
}

func TestSelectCoversAllRows(t *testing.T) {
	s := Workload()
	v := viewWith(0, 10, 20, 30)
	shares := s.SelectSlaves(v, 0, 500, 100, false)
	if err := ValidateShares(shares, 500, 100, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSelectPrefersLeastLoaded(t *testing.T) {
	s := Workload()
	s.MinRows = 1
	v := viewWith(0, 1e12, 0, 1e12) // procs 1 and 3 are overloaded
	shares := s.SelectSlaves(v, 0, 200, 100, false)
	if err := ValidateShares(shares, 200, 100, 0); err != nil {
		t.Fatal(err)
	}
	got := map[int32]int32{}
	for _, sh := range shares {
		got[sh.Proc] = sh.Rows
	}
	if got[2] != 100 {
		t.Fatalf("rows to idle proc 2 = %d, want all 100 (others overloaded): %v", got[2], shares)
	}
}

func TestSelectBalancesUnequalLoads(t *testing.T) {
	// Proc 1 has a head start of load; water-filling must give it fewer
	// rows than idle proc 2.
	s := Workload()
	s.MinRows = 1
	rc := s.rowCost(400, 200, false)
	v := viewWith(0, rc*120, 0)
	shares := s.SelectSlaves(v, 0, 400, 200, false)
	if err := ValidateShares(shares, 400, 200, 0); err != nil {
		t.Fatal(err)
	}
	rows := map[int32]int32{}
	for _, sh := range shares {
		rows[sh.Proc] = sh.Rows
	}
	// Ideal: proc2 gets (200+120)/2 = 160, proc1 gets 40.
	if !(rows[2] > rows[1]) {
		t.Fatalf("balance wrong: %v", shares)
	}
	if rows[1] < 30 || rows[1] > 50 {
		t.Fatalf("proc1 rows = %d, want ≈40", rows[1])
	}
}

func TestSelectRespectsMaxRows(t *testing.T) {
	s := Workload()
	s.MaxRows = 50
	s.MinRows = 1
	v := viewWith(0, 0, 0, 0, 0)
	shares := s.SelectSlaves(v, 0, 300, 100, false)
	if err := ValidateShares(shares, 300, 100, 0); err != nil {
		t.Fatal(err)
	}
	for _, sh := range shares {
		if sh.Rows > 50 {
			t.Fatalf("share %v exceeds MaxRows", sh)
		}
	}
	if len(shares) != 4 {
		t.Fatalf("want 4 slaves for 200 rows at 50 max, got %d", len(shares))
	}
}

func TestSelectRespectsMinRows(t *testing.T) {
	s := Workload()
	s.MinRows = 40
	v := viewWith(0, 0, 0, 0, 0, 0, 0, 0, 0)
	shares := s.SelectSlaves(v, 0, 180, 100, false) // 80 rows: at most 2 slaves
	if err := ValidateShares(shares, 180, 100, 0); err != nil {
		t.Fatal(err)
	}
	if len(shares) > 2 {
		t.Fatalf("granularity violated: %d slaves for 80 rows at MinRows 40", len(shares))
	}
	for _, sh := range shares {
		if sh.Rows < 40 {
			t.Fatalf("share %v below MinRows", sh)
		}
	}
}

func TestSelectMaxSlavesCap(t *testing.T) {
	s := Workload()
	s.MinRows = 1
	s.MaxSlaves = 3
	v := viewWith(0, 0, 0, 0, 0, 0, 0, 0)
	shares := s.SelectSlaves(v, 0, 1000, 200, false)
	if err := ValidateShares(shares, 1000, 200, 0); err != nil {
		t.Fatal(err)
	}
	if len(shares) > 3 {
		t.Fatalf("MaxSlaves violated: %d", len(shares))
	}
}

func TestSelectNeverPicksMaster(t *testing.T) {
	f := func(seed uint64, nRaw, nfRaw uint8) bool {
		n := int(nRaw)%10 + 2
		nf := int32(nfRaw)%400 + 60
		np := nf / 3
		loads := make([]float64, n)
		x := seed
		for i := range loads {
			x = x*6364136223846793005 + 1
			loads[i] = float64(x % 1000)
		}
		v := viewWith(loads...)
		master := int(seed % uint64(n))
		s := Workload()
		shares := s.SelectSlaves(v, master, nf, np, false)
		return ValidateShares(shares, nf, np, master) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectDeterministic(t *testing.T) {
	v := viewWith(5, 5, 5, 5) // all ties: must break by rank
	s := Workload()
	a := s.SelectSlaves(v, 0, 300, 100, false)
	b := s.SelectSlaves(v, 0, 300, 100, false)
	if len(a) != len(b) {
		t.Fatal("nondeterministic share count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic selection")
		}
	}
}

func TestMemoryStrategyUsesMemoryMetric(t *testing.T) {
	s := Memory()
	s.MinRows = 1
	v := core.NewView(3)
	// Proc 1: high memory, low workload. Proc 2: low memory, high work.
	v.Set(1, core.Load{core.Workload: 0, core.Memory: 1e12})
	v.Set(2, core.Load{core.Workload: 1e12, core.Memory: 0})
	shares := s.SelectSlaves(v, 0, 200, 100, true)
	if err := ValidateShares(shares, 200, 100, 0); err != nil {
		t.Fatal(err)
	}
	rows := map[int32]int32{}
	for _, sh := range shares {
		rows[sh.Proc] = sh.Rows
	}
	if rows[2] != 100 {
		t.Fatalf("memory strategy must pick the memory-idle proc 2: %v", shares)
	}
}

func TestCanActivateMemoryConstraint(t *testing.T) {
	s := Memory()
	v := core.NewView(4)
	for p := 0; p < 4; p++ {
		v.Set(p, core.Load{core.Memory: 1000})
	}
	// Small front: fine.
	if !s.CanActivate(v, 0, 100) {
		t.Fatal("small activation refused")
	}
	// Huge front on an already-average proc: postponed.
	if s.CanActivate(v, 0, 1e7) {
		t.Fatal("huge activation accepted despite memory balance")
	}
	// Workload strategy has no such constraint.
	if !Workload().CanActivate(v, 0, 1e12) {
		t.Fatal("workload strategy must not constrain activation")
	}
	// Empty system (mean 0) must not deadlock.
	if !s.CanActivate(core.NewView(4), 0, 1e7) {
		t.Fatal("activation refused on an idle system")
	}
}

func TestValidateSharesErrors(t *testing.T) {
	if ValidateShares([]Share{{Proc: 0, Rows: 10}}, 110, 100, 0) == nil {
		t.Fatal("master-as-slave accepted")
	}
	if ValidateShares([]Share{{Proc: 1, Rows: 5}, {Proc: 1, Rows: 5}}, 110, 100, 0) == nil {
		t.Fatal("duplicate slave accepted")
	}
	if ValidateShares([]Share{{Proc: 1, Rows: 3}}, 110, 100, 0) == nil {
		t.Fatal("row shortfall accepted")
	}
	if ValidateShares([]Share{{Proc: 1, Rows: 0}}, 100, 100, 0) == nil {
		t.Fatal("empty share accepted")
	}
}

func TestSelectZeroSchur(t *testing.T) {
	s := Workload()
	if shares := s.SelectSlaves(viewWith(0, 0), 0, 100, 100, false); shares != nil {
		t.Fatal("full-pivot front needs no slaves")
	}
}

func TestStrategyNames(t *testing.T) {
	if Workload().Name() != "workload" || Memory().Name() != "memory" {
		t.Fatal("strategy names wrong")
	}
}
