package workload

import "repro/internal/core"

// scenario implements Workload from a name, a description and a program
// builder that may assume normalized, validated params.
type scenario struct {
	name     string
	describe string
	build    func(p Params) []Program
}

func (s scenario) Name() string     { return s.name }
func (s scenario) Describe() string { return s.describe }

func (s scenario) Programs(p Params) ([]Program, error) {
	p.Normalize()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return s.build(p), nil
}

// blank returns one zero-load, nominal-speed program per rank.
func blank(p Params) []Program {
	progs := make([]Program, p.Procs)
	for r := range progs {
		progs[r].Speed = 1
	}
	return progs
}

// decide appends one OpDecide step to rank r.
func decide(progs []Program, r int, work float64, slaves int) {
	progs[r].Steps = append(progs[r].Steps, Step{Op: OpDecide, Work: work, Slaves: slaves})
}

func init() {
	Register(scenario{
		name:     "quickstart",
		describe: "the paper's base workload: the first Masters ranks each take Decisions concurrent dynamic decisions",
		build: func(p Params) []Program {
			progs := blank(p)
			for m := 0; m < p.Masters; m++ {
				for i := 0; i < p.Decisions; i++ {
					decide(progs, m, p.Work, p.Slaves)
				}
			}
			return progs
		},
	})

	Register(scenario{
		name:     "burst",
		describe: "synchronized decision storm: every rank is a master and all fire their decisions concurrently",
		build: func(p Params) []Program {
			progs := blank(p)
			for r := 0; r < p.Procs; r++ {
				for i := 0; i < p.Decisions; i++ {
					decide(progs, r, p.Work, p.Slaves)
				}
			}
			return progs
		},
	})

	Register(scenario{
		name:     "ramp",
		describe: "monotone drain: shrinking decisions, every rank drains its initial load and declares No_more_master",
		build: func(p Params) []Program {
			progs := blank(p)
			for r := range progs {
				progs[r].Initial = core.Load{core.Workload: p.Work}
			}
			for m := 0; m < p.Masters; m++ {
				for i := 0; i < p.Decisions; i++ {
					frac := float64(p.Decisions-i) / float64(p.Decisions)
					decide(progs, m, p.Work*frac, p.Slaves)
				}
			}
			// Everyone drains its initial load, then announces it will
			// never decide again — exercising the §2.3 recipient pruning
			// when NoMoreMasterOpt is on.
			for r := range progs {
				drain := progs[r].Initial
				for i := range drain {
					drain[i] = -drain[i]
				}
				progs[r].Steps = append(progs[r].Steps,
					Step{Op: OpLocalChange, Delta: drain},
					Step{Op: OpNoMoreMaster})
			}
			return progs
		},
	})

	Register(scenario{
		name:     "hetero",
		describe: "heterogeneous cluster: linearly skewed initial loads and per-rank execution speeds",
		build: func(p Params) []Program {
			progs := blank(p)
			for r := range progs {
				progs[r].Initial = core.Load{core.Workload: p.Work * float64(r) / float64(p.Procs)}
				progs[r].Speed = 1 + float64(r)/float64(p.Procs)
			}
			for m := 0; m < p.Masters; m++ {
				for i := 0; i < p.Decisions; i++ {
					decide(progs, m, p.Work, p.Slaves)
				}
			}
			return progs
		},
	})

	Register(scenario{
		name:     "straggler",
		describe: "one rank executes 6x slower, delaying its snapshot replies and stressing concurrent elections",
		build: func(p Params) []Program {
			progs := blank(p)
			progs[p.Procs-1].Speed = 6
			for m := 0; m < p.Masters; m++ {
				for i := 0; i < p.Decisions; i++ {
					decide(progs, m, p.Work, p.Slaves)
				}
			}
			return progs
		},
	})
}
