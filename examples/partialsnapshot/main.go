// Partialsnapshot demonstrates the paper's §5 perspective, implemented in
// this repository: demand-driven snapshots scoped to the master's
// candidate slaves instead of all processes. It runs the same
// factorization with full and partial snapshots and prints both run
// reports — fewer messages, weaker synchronization, same decisions.
//
//	go run ./examples/partialsnapshot [matrix] [procs]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/solver"
)

func main() {
	name := "ULTRASOUND80"
	procs := 64
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		p, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad processor count %q", os.Args[2])
		}
		procs = p
	}

	lab := experiments.NewLab(experiments.DefaultConfig())
	for _, partial := range []bool{false, true} {
		label := "full snapshots (§3)"
		if partial {
			label = "partial snapshots (§5 extension)"
		}
		res, err := lab.RunOne(name, procs, core.MechSnapshot, sched.Workload(), func(p *solver.Params) {
			p.PartialSnapshots = partial
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s on %s over %d processes ===\n", label, name, procs)
		res.WriteReport(os.Stdout)
		fmt.Println()
	}
}
