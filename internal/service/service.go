// Package service is the multi-tenant scheduler service: one resident
// TCP rank mesh (internal/net) stays up across a stream of jobs, so the
// cost of a load-information mechanism is amortized the way it is in a
// long-lived cluster rather than re-paid per run as in the paper's
// one-shot harness.
//
// The sharing model follows the paper's split between load information
// and work:
//
//   - The load-exchange mechanism (naive / increments / snapshot) runs
//     ONCE per mesh: every node keeps its classic Algorithm 1 loop and
//     the mechanism's state traffic flows continuously on the shared
//     state channel. Synthetic jobs take their dynamic decisions
//     against that shared view, and the work they execute feeds back
//     into it through LocalChange — concurrent jobs genuinely observe
//     each other's load, which is the measurement the one-shot harness
//     cannot express.
//   - Everything job-scoped is isolated per job: each admitted job gets
//     its own termdet.Protocol instance per rank, its own core.Counters
//     and its own data/ctrl (and, for hosted applications, state)
//     streams as job-id-tagged frames multiplexed over the existing
//     per-peer connections (net.JobPort).
//
// Admission is a bounded queue drained by a scheduler goroutine up to a
// concurrency cap; a graceful drain (SIGTERM in `loadex serve`) stops
// admission, lets in-flight and queued jobs finish, then tears the mesh
// down.
package service

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	xnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// Config tunes a Server.
type Config struct {
	// Procs is the resident mesh size (number of ranks).
	Procs int
	// Mech is the mesh's load-exchange mechanism — one per mesh, shared
	// by every job for the mesh's lifetime.
	Mech core.Mech
	// Cfg is the mechanism configuration (periods, thresholds).
	Cfg core.Config
	// Term names the termination-detection protocol instantiated per
	// job and rank (empty = termdet.Default).
	Term string
	// Opts is the node option template (codec, timeouts, logging).
	Opts xnet.Options
	// MaxConcurrent caps simultaneously running jobs (default 4).
	MaxConcurrent int
	// QueueCap bounds the admission queue (default 64); Submit fails
	// once it is full.
	QueueCap int
	// TimeScale is the wall-clock duration of one application second of
	// hosted-app compute (default 1).
	TimeScale float64
	// Rec, when non-nil, receives job lifecycle spans (job.queued from
	// admission to start, job.run from start to terminal state) in the
	// chaos trace schema.
	Rec *chaos.Recorder
}

func (c *Config) normalize() error {
	if c.Procs < 2 {
		return fmt.Errorf("service: mesh needs at least 2 ranks, got %d", c.Procs)
	}
	if !termdet.Valid(c.Term) {
		return fmt.Errorf("service: unknown termination protocol %q", c.Term)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	return nil
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobSpec describes one submitted job. Kind selects the payload:
// "synthetic" runs the paper's master/slave load program against the
// mesh's shared view; "app" hosts a registered application scenario
// (e.g. solver-wl) with job-scoped state traffic.
type JobSpec struct {
	Kind string `json:"kind"`

	// Synthetic jobs: Decisions dynamic decisions of Work flops each,
	// split over Slaves least-loaded ranks per the shared view, taken
	// round-robin by the first Masters ranks; each work share spins
	// Spin seconds of wall clock on its executing rank.
	Decisions int     `json:"decisions,omitempty"`
	Work      float64 `json:"work,omitempty"`
	Slaves    int     `json:"slaves,omitempty"`
	Masters   int     `json:"masters,omitempty"`
	Spin      float64 `json:"spin,omitempty"`

	// App jobs: the registered application scenario to host, with its
	// workload parameters (Procs is forced to the mesh size).
	Scenario string `json:"scenario,omitempty"`
}

func (sp *JobSpec) normalize(procs int) error {
	switch sp.Kind {
	case "", "synthetic":
		sp.Kind = "synthetic"
		if sp.Decisions <= 0 {
			sp.Decisions = 4
		}
		if sp.Work <= 0 {
			sp.Work = 100
		}
		if sp.Slaves <= 0 {
			sp.Slaves = 2
		}
		if sp.Slaves >= procs {
			sp.Slaves = procs - 1
		}
		if sp.Masters <= 0 || sp.Masters > procs {
			sp.Masters = min(3, procs)
		}
		if sp.Spin < 0 {
			sp.Spin = 0
		}
	case "app":
		if sp.Scenario == "" {
			return fmt.Errorf("service: app job needs a scenario name")
		}
		if !workload.IsAppScenario(sp.Scenario) {
			return fmt.Errorf("service: %q is not a registered application scenario", sp.Scenario)
		}
	default:
		return fmt.Errorf("service: unknown job kind %q (synthetic, app)", sp.Kind)
	}
	return nil
}

// JobStatus is the externally visible state of one job.
type JobStatus struct {
	ID    int32  `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
	// Submitted/Started/Finished are seconds since the server started
	// (zero when the phase has not been reached).
	Submitted float64 `json:"submitted"`
	Started   float64 `json:"started,omitempty"`
	Finished  float64 `json:"finished,omitempty"`
	// Makespan is Finished-Started for finished jobs, in seconds.
	Makespan float64 `json:"makespan,omitempty"`
	// Executed counts completed work units across ranks.
	Executed int64 `json:"executed,omitempty"`
	// Counters is the job's own (mesh-wide, merged over ranks)
	// measurement share: job data/ctrl/state messages, decisions,
	// acquire latencies.
	Counters core.Counters `json:"counters"`
}

// Metrics is the service-level measurement surface.
type Metrics struct {
	Mech   string  `json:"mech"`
	Term   string  `json:"term"`
	Procs  int     `json:"procs"`
	Uptime float64 `json:"uptime_sec"`

	Admitted  int64 `json:"jobs_admitted"`
	Completed int64 `json:"jobs_completed"`
	Failed    int64 `json:"jobs_failed"`
	Canceled  int64 `json:"jobs_canceled"`
	Running   int   `json:"jobs_running"`
	Queue     int   `json:"queue_depth"`
	Draining  bool  `json:"draining"`

	// JobsPerSec is completed jobs over uptime.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// MakespanP50/P99 are percentiles over finished jobs' makespans,
	// seconds.
	MakespanP50 float64 `json:"makespan_p50_s"`
	MakespanP99 float64 `json:"makespan_p99_s"`

	// Makespan / QueueWait are streaming-histogram digests (count, min,
	// max, mean, p50/p95/p99) over finished jobs' makespans and over
	// admission-to-start queue waits, in seconds.
	Makespan  stats.HistSummary `json:"makespan"`
	QueueWait stats.HistSummary `json:"queue_wait"`

	// Mesh is the resident mesh's own counter total (the shared
	// mechanism's state traffic plus wire-tallied job frames), merged
	// over ranks; Jobs is the per-job counter total merged over every
	// finished job.
	Mesh core.Counters `json:"mesh"`
	Jobs core.Counters `json:"jobs"`
}

// job is the server-side record of one admitted job.
type job struct {
	id   int32
	spec JobSpec

	state     string
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time

	executed int64
	counters core.Counters

	// cancel is closed by Cancel; synthetic masters stop issuing
	// decisions at the next check, app jobs fail their run.
	cancel     chan struct{}
	cancelOnce sync.Once
	// doneCh closes when the job reaches a terminal state.
	doneCh chan struct{}

	// queuedSid/runSid are the job's open trace spans (0 = none; only
	// set when the server records).
	queuedSid, runSid int64
}

// Server is the scheduler service: a resident mesh plus a job table.
type Server struct {
	cfg   Config
	nodes []*xnet.Node
	start time.Time
	// decMu serializes dynamic decisions per rank (mechanism contract:
	// decisions on one node must not overlap; across nodes they may).
	decMu []sync.Mutex

	mu       sync.Mutex
	nextID   int32
	jobs     map[int32]*job
	queue    []*job
	running  int
	draining bool
	closed   bool
	// admitCh nudges the scheduler loop.
	admitCh chan struct{}
	// idleCh is closed when draining and no job is queued or running.
	idleCh   chan struct{}
	idleOnce sync.Once

	admitted, completed, failed, canceled int64
	makespans                             []float64
	jobCounters                           core.Counters

	// reg is the server's observability registry: the mesh nodes'
	// per-rank tallies plus the service-level job metrics below. It is
	// what an opt-in /metrics endpoint scrapes.
	reg        *obs.Registry
	makespanH  *obs.Histogram
	queueWaitH *obs.Histogram

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds the resident mesh and starts the scheduler. The mesh nodes
// run the classic Algorithm 1 loop with the configured mechanism — the
// shared state channel is live from this moment until Close.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	nodeOpts := cfg.Opts
	nodeOpts.Initial, nodeOpts.Speed = nil, nil

	s := &Server{
		cfg:     cfg,
		decMu:   make([]sync.Mutex, cfg.Procs),
		start:   time.Now(),
		jobs:    make(map[int32]*job),
		admitCh: make(chan struct{}, 1),
		idleCh:  make(chan struct{}),
		quit:    make(chan struct{}),
	}
	nodes := make([]*xnet.Node, 0, cfg.Procs)
	stop := func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *xnet.Node) {
				defer wg.Done()
				nd.Close()
			}(nd)
		}
		wg.Wait()
	}
	addrs := make([]string, cfg.Procs)
	for rank := 0; rank < cfg.Procs; rank++ {
		nd, err := xnet.NewNode(rank, cfg.Procs, cfg.Mech, cfg.Cfg, nodeOpts)
		if err != nil {
			stop()
			return nil, err
		}
		nodes = append(nodes, nd)
		if addrs[rank], err = nd.Listen("127.0.0.1:0"); err != nil {
			stop()
			return nil, err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Procs)
	for rank := 0; rank < cfg.Procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = nodes[rank].Start(addrs)
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			stop()
			return nil, err
		}
	}
	s.nodes = nodes
	s.registerObs()
	s.wg.Add(1)
	go s.schedule()
	return s, nil
}

// registerObs builds the server's observability registry: every mesh
// node registers its per-rank tallies, and the service adds its
// job-stream metrics (sampled funcs over the job table plus owned
// streaming histograms for makespan and queue wait).
func (s *Server) registerObs() {
	s.reg = obs.NewRegistry()
	for _, nd := range s.nodes {
		nd.RegisterObs(s.reg)
	}
	locked := func(read func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	s.reg.CounterFunc("loadex_jobs_admitted_total", "jobs admitted to the queue", locked(func() float64 { return float64(s.admitted) }))
	s.reg.CounterFunc("loadex_jobs_completed_total", "jobs finished successfully", locked(func() float64 { return float64(s.completed) }))
	s.reg.CounterFunc("loadex_jobs_failed_total", "jobs finished with an error", locked(func() float64 { return float64(s.failed) }))
	s.reg.CounterFunc("loadex_jobs_canceled_total", "jobs canceled before completion", locked(func() float64 { return float64(s.canceled) }))
	s.reg.GaugeFunc("loadex_jobs_running", "jobs currently running", locked(func() float64 { return float64(s.running) }))
	s.reg.GaugeFunc("loadex_jobs_queued", "jobs waiting in the admission queue", locked(func() float64 { return float64(len(s.queue)) }))
	s.makespanH = s.reg.Histogram("loadex_job_makespan_seconds", "finished jobs' start-to-finish wall time")
	s.queueWaitH = s.reg.Histogram("loadex_job_queue_wait_seconds", "jobs' admission-to-start wait")
}

// Registry exposes the server's observability registry (per-rank node
// tallies plus service job metrics) for an opt-in /metrics endpoint.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Health reports the mesh's /healthz document: one entry per resident
// rank with its peer link states.
func (s *Server) Health() obs.Health {
	h := obs.Health{Procs: s.cfg.Procs, Mech: string(s.cfg.Mech), Term: termName(s.cfg.Term), UptimeS: time.Since(s.start).Seconds()}
	h.Rank = -1 // service-level document, not one rank's
	for _, nd := range s.nodes {
		nh := nd.Health()
		for _, l := range nh.Links {
			if l.State != "up" {
				h.Links = append(h.Links, obs.Link{Peer: l.Peer, State: "down from rank " + strconv.Itoa(nh.Rank)})
			}
		}
	}
	return h
}

// Top samples every resident rank's telemetry snapshot, rank order.
func (s *Server) Top() []xnet.Telemetry {
	out := make([]xnet.Telemetry, 0, len(s.nodes))
	for _, nd := range s.nodes {
		out = append(out, nd.Telemetry())
	}
	return out
}

// Submit admits one job to the queue and returns its id.
func (s *Server) Submit(spec JobSpec) (int32, error) {
	if err := spec.normalize(s.cfg.Procs); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("service: server closed")
	}
	if s.draining {
		return 0, fmt.Errorf("service: draining, not admitting jobs")
	}
	if len(s.queue) >= s.cfg.QueueCap {
		return 0, fmt.Errorf("service: admission queue full (%d jobs)", len(s.queue))
	}
	s.nextID++
	j := &job{
		id:        s.nextID,
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		cancel:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	s.admitted++
	if rec := s.cfg.Rec; rec != nil {
		j.queuedSid = rec.SpanBegin(0, "job.queued", s.sinceStart())
	}
	s.nudge()
	return j.id, nil
}

// sinceStart is the span timestamp base: seconds since the server came
// up, matching JobStatus's Submitted/Started/Finished epoch.
func (s *Server) sinceStart() float64 { return time.Since(s.start).Seconds() }

// nudge wakes the scheduler loop (caller holds mu or doesn't care).
func (s *Server) nudge() {
	select {
	case s.admitCh <- struct{}{}:
	default:
	}
}

// schedule drains the queue up to the concurrency cap.
func (s *Server) schedule() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.running < s.cfg.MaxConcurrent && len(s.queue) > 0 {
			j := s.queue[0]
			s.queue = s.queue[1:]
			if j.state == StateCanceled {
				continue // canceled while queued; already terminal
			}
			j.state = StateRunning
			j.started = time.Now()
			s.queueWaitH.Observe(j.started.Sub(j.submitted).Seconds())
			if rec := s.cfg.Rec; rec != nil {
				now := s.sinceStart()
				rec.SpanEnd(0, "job.queued", j.queuedSid, now)
				j.queuedSid = 0
				j.runSid = rec.SpanBegin(0, "job.run", now)
			}
			s.running++
			s.wg.Add(1)
			go s.runJob(j)
		}
		idle := s.draining && s.running == 0 && len(s.queue) == 0
		s.mu.Unlock()
		if idle {
			s.idleOnce.Do(func() { close(s.idleCh) })
		}
		select {
		case <-s.admitCh:
		case <-s.quit:
			return
		}
	}
}

// runJob executes one admitted job to a terminal state.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	var err error
	switch j.spec.Kind {
	case "synthetic":
		err = s.runSynthetic(j)
	case "app":
		err = s.runApp(j)
	default:
		err = fmt.Errorf("service: unknown job kind %q", j.spec.Kind)
	}
	s.mu.Lock()
	j.finished = time.Now()
	canceled := false
	select {
	case <-j.cancel:
		canceled = true
	default:
	}
	switch {
	case err != nil:
		j.state, j.err = StateFailed, err
		s.failed++
	case canceled:
		j.state = StateCanceled
		s.canceled++
	default:
		j.state = StateDone
		s.completed++
		makespan := j.finished.Sub(j.started).Seconds()
		s.makespans = append(s.makespans, makespan)
		s.makespanH.Observe(makespan)
	}
	if rec := s.cfg.Rec; rec != nil && j.runSid != 0 {
		rec.SpanEnd(0, "job.run", j.runSid, s.sinceStart())
		j.runSid = 0
	}
	s.jobCounters.Merge(j.counters)
	s.running--
	s.mu.Unlock()
	close(j.doneCh)
	s.nudge()
}

// Status returns the job's current externally visible state.
func (s *Server) Status(id int32) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, fmt.Errorf("service: no job %d", id)
	}
	return s.statusLocked(j), nil
}

func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		Kind:      j.spec.Kind,
		State:     j.state,
		Submitted: j.submitted.Sub(s.start).Seconds(),
		Executed:  j.executed,
		Counters:  j.counters.Clone(),
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	if !j.started.IsZero() {
		st.Started = j.started.Sub(s.start).Seconds()
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.Sub(s.start).Seconds()
		st.Makespan = j.finished.Sub(j.started).Seconds()
	}
	return st
}

// Result blocks until the job reaches a terminal state, then returns
// it. The wait is bounded by timeout (0 = no bound beyond server
// shutdown).
func (s *Server) Result(id int32, timeout time.Duration) (JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, fmt.Errorf("service: no job %d", id)
	}
	var bound <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		bound = t.C
	}
	select {
	case <-j.doneCh:
	case <-bound:
		return JobStatus{}, fmt.Errorf("service: job %d not finished after %s", id, timeout)
	case <-s.quit:
		return JobStatus{}, fmt.Errorf("service: server closing")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j), nil
}

// Cancel requests job cancellation: a queued job goes terminal
// immediately, a running synthetic job stops issuing decisions at its
// next check (in-flight work still drains so the shared view stays
// conserved).
func (s *Server) Cancel(id int32) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return fmt.Errorf("service: no job %d", id)
	}
	j.cancelOnce.Do(func() { close(j.cancel) })
	if j.state == StateQueued {
		j.state = StateCanceled
		j.finished = time.Now()
		s.canceled++
		if rec := s.cfg.Rec; rec != nil && j.queuedSid != 0 {
			rec.SpanEnd(0, "job.queued", j.queuedSid, s.sinceStart())
			j.queuedSid = 0
		}
		s.mu.Unlock()
		close(j.doneCh)
		s.nudge()
		return nil
	}
	s.mu.Unlock()
	return nil
}

// Metrics samples the service-level measurement surface.
func (s *Server) Metrics() Metrics {
	mesh := core.Counters{}
	for _, nd := range s.nodes {
		mesh.Merge(nd.Counters())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Mech:      string(s.cfg.Mech),
		Term:      termName(s.cfg.Term),
		Procs:     s.cfg.Procs,
		Uptime:    time.Since(s.start).Seconds(),
		Admitted:  s.admitted,
		Completed: s.completed,
		Failed:    s.failed,
		Canceled:  s.canceled,
		Running:   s.running,
		Queue:     len(s.queue),
		Draining:  s.draining,
		Mesh:      mesh,
		Jobs:      s.jobCounters.Clone(),
	}
	if m.Uptime > 0 {
		m.JobsPerSec = float64(s.completed) / m.Uptime
	}
	if len(s.makespans) > 0 {
		sorted := append([]float64(nil), s.makespans...)
		sort.Float64s(sorted)
		m.MakespanP50 = stats.Percentile(sorted, 0.50)
		m.MakespanP99 = stats.Percentile(sorted, 0.99)
	}
	m.Makespan = s.makespanH.Snapshot().Summary()
	m.QueueWait = s.queueWaitH.Snapshot().Summary()
	return m
}

func termName(t string) string {
	if t == "" {
		return termdet.Default
	}
	return t
}

// Drain stops admission, waits (bounded by timeout) for queued and
// running jobs to finish, then tears the mesh down. It is the SIGTERM
// path of `loadex serve`.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	idle := s.running == 0 && len(s.queue) == 0
	s.mu.Unlock()
	if idle {
		s.idleOnce.Do(func() { close(s.idleCh) })
	}
	s.nudge()
	var bound <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		bound = t.C
	}
	select {
	case <-s.idleCh:
	case <-bound:
		s.Close()
		return fmt.Errorf("service: drain incomplete after %s", timeout)
	}
	return s.Close()
}

// Close tears the service down: the scheduler stops, running job
// drivers observe the mesh quit channel, the mesh closes gracefully.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	var wg sync.WaitGroup
	for _, nd := range s.nodes {
		wg.Add(1)
		go func(nd *xnet.Node) {
			defer wg.Done()
			nd.Close()
		}(nd)
	}
	wg.Wait()
	s.wg.Wait()
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
