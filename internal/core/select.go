package core

// LeastLoaded returns the ranks of the k processes with the smallest
// estimate of metric m in the view, excluding rank `exclude` (pass -1 to
// exclude nobody). Ties break toward the lower rank, so the selection is
// a deterministic function of the view — every runtime (sim, live, net)
// uses this one function, which is what lets the cross-runtime
// equivalence tests re-derive a master's selection from its recorded
// view.
func LeastLoaded(v *View, m Metric, exclude, k int) []int {
	type cand struct {
		p int
		l float64
	}
	cands := make([]cand, 0, v.N())
	for p := 0; p < v.N(); p++ {
		if p != exclude {
			cands = append(cands, cand{p, v.Metric(p, m)})
		}
	}
	// Insertion-style selection sort: n is small (the paper's clusters
	// top out at 64-128 processes).
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].l < cands[i].l || (cands[j].l == cands[i].l && cands[j].p < cands[i].p) {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].p
	}
	return out
}

// ViewOf wraps a load slice in a read-only View, so selection helpers
// can run over a recorded snapshot.
func ViewOf(loads []Load) *View { return &View{loads: loads} }

// Decision records one dynamic decision for invariant checking: the
// view the master consulted at acquire-ready time and the assignments
// it committed. The live and net runtimes both return it from their
// observed-decision APIs, so cross-runtime tests compare like with
// like.
type Decision struct {
	Master      int
	View        []Load
	Assignments []Assignment
}

// PlanDecision takes the dynamic scheduling decision every runtime
// driver shares: record the master's view, select the `slaves`
// least-workload peers per that view, and split totalWork into equal
// shares. Keeping the plan in one function is what makes the
// cross-runtime equivalence tests meaningful — sim, live and net
// cannot drift apart on tie-breaking, share rounding or counter
// ordering. The caller commits the returned assignments and ships the
// work.
func PlanDecision(view *View, master, slaves int, totalWork float64) Decision {
	d := Decision{Master: master, View: view.Snapshot()}
	sel := LeastLoaded(view, Workload, master, slaves)
	share := totalWork / float64(len(sel))
	for _, p := range sel {
		d.Assignments = append(d.Assignments, Assignment{Proc: int32(p), Delta: Load{Workload: share}})
	}
	return d
}
