package solver_test

// The chaos × validator suite: every mechanism/term-protocol cell of
// the real solver workload, recorded and replayed through the offline
// validator. Clean runs must validate clean; delivery faults that only
// stretch or reorder time (delay, reorder, slow) must preserve the
// cross-rank invariants; a crash fault must surface as a detected
// failure — either the run itself errors or the trace fails
// validation — never as a silently absorbed clean run.

import (
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

const chaosProcs = 6

// runTraced runs solver-wl once on the simulator under the given
// mechanism, termination protocol and chaos plan, recording the run
// into a fresh trace directory, and returns the offline validation
// report alongside the run error.
func runTraced(t *testing.T, mech core.Mech, term string, plan *chaos.Plan) (*chaos.Report, error) {
	t.Helper()
	dir := t.TempDir()
	rec, err := chaos.OpenRecorder(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatalf("OpenRecorder: %v", err)
	}
	planName := ""
	if plan != nil {
		planName = plan.Name
	}
	rec.Record(chaos.Event{Ev: chaos.EvMeta, N: chaosProcs, Scenario: "solver-wl",
		Mech: string(mech), Term: term, Plan: planName})
	w, err := workload.Get("solver-wl")
	if err != nil {
		t.Fatalf("Get(solver-wl): %v", err)
	}
	d := sim.NewWorkloadDriver()
	d.Network.Chaos = plan
	_, runErr := d.Run(w, mech, core.Config{}, workload.Params{
		Procs: chaosProcs, Term: term, Record: rec,
	})
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder Close: %v", err)
	}
	events, err := chaos.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	return chaos.Validate(events), runErr
}

func TestChaosCleanRunsValidate(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		for _, term := range []string{"ds", "safra"} {
			mech, term := mech, term
			t.Run(string(mech)+"/"+term, func(t *testing.T) {
				rep, err := runTraced(t, mech, term, nil)
				if err != nil {
					t.Fatalf("clean run failed: %v", err)
				}
				if !rep.OK() {
					t.Fatalf("clean run flagged: %v", rep.Violations)
				}
				if rep.Finals != chaosProcs {
					t.Fatalf("got %d finals, want %d", rep.Finals, chaosProcs)
				}
				if rep.Sends == 0 || rep.Starts == 0 {
					t.Fatalf("trace missing traffic: %d sends, %d starts", rep.Sends, rep.Starts)
				}
			})
		}
	}
}

// TestChaosTimingFaultsPreserveInvariants: faults that stretch, jitter
// or reorder delivery lose nothing, so the runs must still quiesce with
// fully conserved traces. FIFO-preserving plans (delay, slow) pair with
// the snapshot mechanism — the strictest consumer of channel order —
// while the reorder plan pairs with the order-tolerant mechanisms (the
// snapshot protocol's rounds assume FIFO channels, so reordering may
// legitimately wedge it; see TestChaosReorderBreaksSnapshotDetected).
func TestChaosTimingFaultsPreserveInvariants(t *testing.T) {
	cases := []struct {
		plan string
		mech core.Mech
	}{
		{"delay", core.MechSnapshot},
		{"slow", core.MechSnapshot},
		{"reorder", core.MechNaive},
		{"reorder", core.MechIncrements},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.plan+"/"+string(tc.mech), func(t *testing.T) {
			plan, err := chaos.Get(tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			rep, runErr := runTraced(t, tc.mech, "ds", plan)
			if runErr != nil {
				t.Fatalf("run under %s plan failed: %v", tc.plan, runErr)
			}
			if !rep.OK() {
				t.Fatalf("%s plan violated invariants: %v", tc.plan, rep.Violations)
			}
		})
	}
}

// TestChaosReorderBreaksSnapshotDetected documents (and pins) the FIFO
// assumption: the snapshot mechanism's rounds rely on per-link order,
// so the reorder plan may wedge them — and when it does, the harness
// must report the deadlock, never a false termination. Either outcome
// (clean conserved run, or a detected deadlock) is correct; a clean
// termination with a violated trace is the one forbidden result.
func TestChaosReorderBreaksSnapshotDetected(t *testing.T) {
	plan, err := chaos.Get("reorder")
	if err != nil {
		t.Fatal(err)
	}
	rep, runErr := runTraced(t, core.MechSnapshot, "ds", plan)
	if runErr == nil && !rep.OK() {
		t.Fatalf("run terminated cleanly over a violated trace: %v", rep.Violations)
	}
}

// TestChaosCrashDetected: a crashed rank must never be absorbed into a
// clean result. On the simulator a mid-run crash starves the
// termination detector (messages to and from the dead rank vanish), so
// the run errors out — and the partial trace independently fails
// validation with missing finals.
func TestChaosCrashDetected(t *testing.T) {
	// Registry crash plans fire at wall-scale times; the solver's
	// virtual makespan is milliseconds, so the test pins a virtual-time
	// literal that lands mid-run.
	plan := &chaos.Plan{Name: "crash-early", Seed: 1, SlowRank: -1, CrashRank: 1, CrashAfter: 0.002}
	rep, runErr := runTraced(t, core.MechNaive, "ds", plan)
	if runErr == nil {
		t.Fatalf("crash plan ran to clean completion: fault silently absorbed")
	}
	if rep.OK() {
		t.Fatalf("crash run trace passed validation")
	}
	if !hasViolation(rep, "quiescence") {
		t.Fatalf("want a quiescence violation for the crashed rank, got %v", rep.Violations)
	}
}

// TestChaosLossNoFalseTermination: dropping mechanism state messages
// must never fool the termination detector into firing early. The
// naive mechanism tolerates loss outright (updates are absolute, the
// next one repairs the view) and must still validate clean; the
// snapshot mechanism deadlocks without its lost round messages, and
// the run must report that deadlock rather than a bogus termination.
func TestChaosLossNoFalseTermination(t *testing.T) {
	plan, err := chaos.Get("loss")
	if err != nil {
		t.Fatal(err)
	}
	t.Run("naive-tolerates", func(t *testing.T) {
		rep, runErr := runTraced(t, core.MechNaive, "ds", plan)
		if runErr != nil {
			t.Fatalf("naive under loss failed: %v", runErr)
		}
		if !rep.OK() {
			t.Fatalf("naive under loss violated invariants: %v", rep.Violations)
		}
	})
	t.Run("snapshot-deadlock-detected", func(t *testing.T) {
		rep, runErr := runTraced(t, core.MechSnapshot, "ds", plan)
		if runErr == nil && rep.OK() {
			// Loss draws are probabilistic per site but the plan seed is
			// fixed, so with 5% of state messages dropped the snapshot
			// rounds reliably wedge; a clean pass would mean the faults
			// never actually applied.
			t.Fatalf("snapshot under loss completed cleanly: loss plan not applied")
		}
	})
}

func hasViolation(r *chaos.Report, check string) bool {
	for _, v := range r.Violations {
		if v.Check == check {
			return true
		}
	}
	return false
}
