package core

// Naive is the mechanism of §2.1 (Algorithm 2): every process knows its
// own load; whenever it drifted by more than the threshold since the last
// broadcast, the absolute value is re-broadcast. Nothing anticipates the
// effect of a dynamic decision, so two masters selecting slaves in a
// short window can both count a victim as idle (Figure 1) — the
// limitation the experiments of §4.4 expose.
type Naive struct {
	n, rank  int
	cfg      Config
	my       Load
	lastSent Load
	view     *View
	nbrs     []int  // broadcast recipients: cfg.Topo's neighbors (all peers on full)
	noMore   []bool // ranks that declared No_more_master
	stats    Stats
}

// NewNaive constructs the naive mechanism.
func NewNaive(n, rank int, cfg Config) *Naive {
	return &Naive{n: n, rank: rank, cfg: cfg, view: NewView(n),
		nbrs: neighborRanks(cfg.Topo, n, rank), noMore: make([]bool, n)}
}

// Name implements Exchanger.
func (x *Naive) Name() string { return string(MechNaive) }

// Init implements Exchanger. The initial load derives from the static
// mapping, which every process knows, so nothing is broadcast.
func (x *Naive) Init(ctx Context, initial Load) {
	x.my = initial
	x.lastSent = initial
	x.view.Set(x.rank, initial)
}

// LocalChange implements Exchanger. The naive scheme has no reservation
// mechanism, so every variation — slave work included — is applied
// locally and re-broadcast when large enough.
func (x *Naive) LocalChange(ctx Context, delta Load, asSlave bool) {
	x.my = x.my.Add(delta)
	x.view.Set(x.rank, x.my)
	x.maybeBroadcast(ctx)
}

func (x *Naive) maybeBroadcast(ctx Context) {
	if !x.my.Sub(x.lastSent).ExceedsAny(x.cfg.Threshold) {
		return
	}
	payload := UpdatePayload{Load: x.my}
	for _, to := range x.nbrs {
		if x.cfg.NoMoreMasterOpt && x.noMore[to] {
			continue
		}
		ctx.Send(to, KindUpdate, payload, BytesUpdate)
		x.stats.UpdatesSent++
	}
	x.lastSent = x.my
}

// Local implements Exchanger.
func (x *Naive) Local() Load { return x.my }

// View implements Exchanger.
func (x *Naive) View() *View { return x.view }

// Acquire implements Exchanger: the maintained view is always "ready".
func (x *Naive) Acquire(ctx Context, ready func()) { ready() }

// Commit implements Exchanger. The naive mechanism publishes nothing at
// decision time; the master only updates its own estimates so that its
// *own* next decision does not double-book the same slaves. Other
// processes stay uninformed until the slaves themselves broadcast — the
// coherence weakness of Figure 1.
func (x *Naive) Commit(ctx Context, assignments []Assignment) {
	for _, a := range assignments {
		if int(a.Proc) == x.rank {
			x.my = x.my.Add(a.Delta)
			x.view.Set(x.rank, x.my)
			continue
		}
		x.view.AddTo(int(a.Proc), a.Delta)
	}
}

// NoMoreMaster implements Exchanger (§2.3 applies to any maintaining
// mechanism).
func (x *Naive) NoMoreMaster(ctx Context) {
	if !x.cfg.NoMoreMasterOpt {
		return
	}
	// Only neighbors ever send us updates, so only they need pruning.
	// On the full topology this is exactly the old broadcast: every
	// runtime implements Broadcast as the same ascending Send loop.
	for _, to := range x.nbrs {
		ctx.Send(to, KindNoMoreMaster, nil, BytesNoMoreMaster)
	}
}

// HandleMessage implements Exchanger.
func (x *Naive) HandleMessage(ctx Context, from int, kind int, payload any) {
	switch kind {
	case KindUpdate:
		p := payload.(UpdatePayload)
		x.view.Set(from, p.Load)
	case KindNoMoreMaster:
		x.noMore[from] = true
	}
}

// Busy implements Exchanger: the naive mechanism never blocks the
// application.
func (x *Naive) Busy() bool { return false }

// Stats implements Exchanger.
func (x *Naive) Stats() Stats { return x.stats }
