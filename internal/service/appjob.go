package service

// Hosted-application jobs: a registered workload.AppScenario (the
// multifrontal solver) runs unchanged on the resident mesh. The app's
// own per-rank mechanisms, data messages and detector control frames
// all travel as job-tagged frames through the job's ports, so several
// solver instances (and synthetic jobs) coexist on the same sockets
// without seeing each other's traffic. The per-rank driver loop is the
// same Algorithm 1 ordering as net.Node.runApp, re-expressed over a
// JobPort instead of the node's own channels.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	xnet "repro/internal/net"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// appJob is the hosting state of one application job: the binding
// (callback mutex, app, options), per-rank ports, detectors and pending
// computes.
type appJob struct {
	s    *Server
	id   int32
	app  workload.App
	opts workload.AppRunOptions

	// mu serializes every application callback across ranks (the
	// in-process hosting contract).
	mu    sync.Mutex
	ready chan struct{}

	ports []*xnet.JobPort
	dets  []termdet.Protocol
	// pend is each rank's deferred compute, owned by that rank's driver
	// goroutine (set under mu by Compute, consumed by the driver).
	pend []*appPend
	// wake buffers cross-rank wakeups per rank.
	start time.Time

	doneCh   chan struct{}
	doneOnce sync.Once
}

type appPend struct {
	seconds float64
	done    func()
}

func (a *appJob) signalDone() {
	a.doneOnce.Do(func() { close(a.doneCh) })
}

// appJobDetCtx routes a rank's detector frames through its job port.
type appJobDetCtx struct {
	a    *appJob
	rank int
}

func (c appJobDetCtx) Rank() int { return c.rank }
func (c appJobDetCtx) N() int    { return len(c.a.ports) }
func (c appJobDetCtx) SendCtrl(to int, ct termdet.Ctrl) {
	c.a.ports[c.rank].SendCtrl(to, ct)
}

// appJobCtx is one rank's core.Context for the application's OWN
// mechanisms: state messages travel as job-tagged state frames, so a
// hosted app's load-information traffic is isolated from the mesh's
// shared channel (the mesh mechanism keeps running beneath it).
type appJobCtx struct {
	a    *appJob
	rank int
}

func (c appJobCtx) Rank() int    { return c.rank }
func (c appJobCtx) N() int       { return len(c.a.ports) }
func (c appJobCtx) Now() float64 { return time.Since(c.a.start).Seconds() }

func (c appJobCtx) Send(to int, kind int, payload any, bytes float64) {
	if err := c.a.ports[c.rank].SendState(to, kind, payload, bytes); err != nil {
		panic(err) // a core payload the codec cannot carry is a programming error
	}
}

func (c appJobCtx) Broadcast(kind int, payload any, bytes float64) {
	for to := 0; to < len(c.a.ports); to++ {
		if to != c.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

// appJobHost implements workload.AppHost over the job's ports.
type appJobHost struct{ a *appJob }

func (h appJobHost) N() int         { return len(h.a.ports) }
func (h appJobHost) Local(int) bool { return true }
func (h appJobHost) Now() float64   { return time.Since(h.a.start).Seconds() }
func (h appJobHost) Context(rank int) core.Context {
	return appJobCtx{h.a, rank}
}

func (h appJobHost) SendData(from, to int, m workload.DataMsg) {
	h.a.dets[from].OnSend(appJobDetCtx{h.a, from}, to)
	h.a.ports[from].SendData(to, m)
}

func (h appJobHost) Compute(rank int, seconds float64, done func()) {
	if h.a.pend[rank] != nil {
		panic(fmt.Sprintf("service: job %d rank %d started a task while busy", h.a.id, rank))
	}
	h.a.pend[rank] = &appPend{seconds: seconds * h.a.opts.SpeedOf(rank), done: done}
}

func (h appJobHost) Wake(rank int) { h.a.ports[rank].Wake() }

// runApp hosts one application job to detector-announced quiescence.
func (s *Server) runApp(j *job) error {
	w, err := workload.Get(j.spec.Scenario)
	if err != nil {
		return err
	}
	as, ok := w.(workload.AppScenario)
	if !ok {
		return fmt.Errorf("service: %q is not an application scenario", j.spec.Scenario)
	}
	p := workload.DefaultParams()
	p.Procs = s.cfg.Procs
	p.Normalize()
	app, opts, err := as.NewApp(s.cfg.Mech, s.cfg.Cfg, p)
	if err != nil {
		return err
	}
	if s.cfg.Term != "" {
		opts.Term = s.cfg.Term
	}

	n := s.cfg.Procs
	ports, err := s.registerPorts(j.id, 256)
	if err != nil {
		return err
	}
	defer s.unregisterPorts(j.id)

	a := &appJob{
		s: s, id: j.id, app: app, opts: opts,
		ready:  make(chan struct{}),
		ports:  ports,
		dets:   make([]termdet.Protocol, n),
		pend:   make([]*appPend, n),
		start:  time.Now(),
		doneCh: make(chan struct{}),
	}
	for r := 0; r < n; r++ {
		if a.dets[r], err = termdet.New(opts.Term, n, r); err != nil {
			return err
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a.rankLoop(r, j)
		}(r)
	}

	a.mu.Lock()
	err = app.Attach(appJobHost{a})
	a.mu.Unlock()
	if err != nil {
		a.signalDone() // release the rank loops
		wg.Wait()
		return err
	}
	close(a.ready)

	timeout := 2 * time.Minute
	var runErr error
	select {
	case <-a.doneCh:
	case <-s.quit:
		runErr = fmt.Errorf("service: mesh closed during job %d", j.id)
	case <-time.After(timeout):
		runErr = fmt.Errorf("service: job %d: no termination detected after %s (%s)", j.id, timeout, a.dets[0].Name())
	}
	elapsed := time.Since(a.start).Seconds()
	a.signalDone()
	wg.Wait()
	if runErr != nil {
		return runErr
	}

	hr := &workload.AppReport{Time: elapsed}
	for _, jp := range ports {
		hr.Counters.Merge(jp.Counters())
	}
	out := app.Outcome(hr)
	if out.Err != nil {
		return out.Err
	}
	j.counters = workload.CountersFromApp(hr, out)
	for _, e := range out.Executed {
		j.executed += e
	}
	return nil
}

// rankLoop is one rank's Algorithm 1 driver over the job's port,
// mirroring net.Node.runApp's priority order: pending compute, detector
// control, state, Blocked gating, data, TryStart, passivity.
func (a *appJob) rankLoop(rank int, j *job) {
	jp := a.ports[rank]
	det := a.dets[rank]
	ctx := appJobDetCtx{a, rank}
	select {
	case <-a.ready:
	case <-a.doneCh:
		return
	case <-jp.Quit():
		return
	}
	handleCtrl := func(c xnet.JobCtrl) {
		det.OnCtrl(ctx, c.From, c.Ctrl)
		if det.Terminated() {
			a.signalDone()
		}
	}
	handleState := func(m xnet.JobState) {
		a.mu.Lock()
		a.app.HandleState(rank, m.From, m.Kind, m.Payload)
		a.mu.Unlock()
	}
	handleData := func(d xnet.JobData) {
		det.OnReceive(ctx, d.From)
		a.mu.Lock()
		a.app.HandleData(rank, d.From, d.Msg)
		a.mu.Unlock()
	}
	for {
		select {
		case <-a.doneCh:
			// Some rank observed global termination; trailing control
			// frames for this job are dropped by the mux after
			// unregistration, which is fine — the computation is over.
			return
		case <-jp.Quit():
			return
		default:
		}
		if det.Terminated() {
			a.signalDone()
			return
		}
		if p := a.pend[rank]; p != nil {
			a.pend[rank] = nil
			a.sleep(p.seconds, jp)
			a.mu.Lock()
			p.done()
			a.mu.Unlock()
			continue
		}
		select {
		case c := <-jp.CtrlCh:
			handleCtrl(c)
			continue
		default:
		}
		select {
		case m := <-jp.StateCh:
			handleState(m)
			continue
		default:
		}
		a.mu.Lock()
		blocked := a.app.Blocked(rank)
		a.mu.Unlock()
		if blocked {
			select {
			case c := <-jp.CtrlCh:
				handleCtrl(c)
			case m := <-jp.StateCh:
				handleState(m)
			case <-jp.Quit():
				return
			case <-a.doneCh:
				return
			}
			continue
		}
		select {
		case d := <-jp.DataCh:
			handleData(d)
			continue
		default:
		}
		a.mu.Lock()
		started := a.app.TryStart(rank)
		stillBlocked := a.app.Blocked(rank)
		a.mu.Unlock()
		if started {
			continue
		}
		if !stillBlocked {
			det.Passive(ctx)
			if det.Terminated() {
				a.signalDone()
				return
			}
		}
		select {
		case c := <-jp.CtrlCh:
			handleCtrl(c)
		case m := <-jp.StateCh:
			handleState(m)
		case d := <-jp.DataCh:
			handleData(d)
		case <-jp.WakeCh:
		case <-a.doneCh:
			return
		case <-jp.Quit():
			return
		}
	}
}

// sleep spends one compute interval of wall clock, scaled by the
// service's time scale and bounded by mesh shutdown.
func (a *appJob) sleep(seconds float64, jp *xnet.JobPort) {
	d := time.Duration(seconds * a.s.cfg.TimeScale * float64(time.Second))
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-jp.Quit():
	}
}
