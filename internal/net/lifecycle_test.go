package net

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// waitGoroutines waits for the goroutine count to come back down to
// (about) base: transport goroutines may legitimately take a moment to
// observe closed sockets, but they must all terminate.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestRepeatedStartCloseNoLeak cycles whole clusters up and down and
// checks every transport goroutine (readers, writers, node loops,
// accept helpers) terminates — the regression test for accept-loop and
// shutdown leaks.
func TestRepeatedStartCloseNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cl, err := NewCluster(3, core.MechIncrements, core.Config{}, Options{})
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := cl.Decide(0, 30, 2, 0); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := cl.Drain(5 * time.Second); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		cl.Stop()
	}
	waitGoroutines(t, base)
}

// TestCloseRacesStart closes nodes while Start is still connecting the
// mesh. Before the lifecycle gate, this interleaving double-closed the
// node's done channel (Close saw started=false and closed it; Start
// then launched the run loop, which closed it again on exit) and could
// tear down connections Start was still installing. The test's only
// assertions are "no panic, no deadlock, no goroutine leak" — exactly
// what the race violated.
func TestCloseRacesStart(t *testing.T) {
	base := runtime.NumGoroutine()
	// Single-rank mesh: Start completes almost instantly, maximizing the
	// chance Close lands exactly around Start's final gate.
	for i := 0; i < 200; i++ {
		nd, err := NewNode(0, 1, core.MechNaive, core.Config{}, Options{DialTimeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := nd.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			nd.Start([]string{addr}) // may fail if Close wins; must not panic
		}()
		go func() {
			defer wg.Done()
			nd.Close()
		}()
		wg.Wait()
		nd.Close()
	}
	waitGoroutines(t, base)
}

// TestCloseWithHelloParked pins the double-close interleaving
// deterministically: a raw peer connects but withholds its hello, so
// Start parks in the accept wait; Close fires while Start is parked;
// the hello lands afterwards. Without the lifecycle gate, Close
// observed started=false and closed done itself, then Start completed
// the mesh and launched the run loop — whose exit closed done a second
// time (panic: close of closed channel).
func TestCloseWithHelloParked(t *testing.T) {
	base := runtime.NumGoroutine()
	nd, err := NewNode(0, 2, core.MechNaive, core.Config{}, Options{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := nd.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	startErr := make(chan error, 1)
	go func() { startErr <- nd.Start([]string{addr, "unused"}) }()
	// Deliver the hello only after Close has been requested: Close must
	// either finish the teardown after Start aborts, or make Start abort
	// — in neither case may the run loop outlive Close.
	go func() {
		time.Sleep(50 * time.Millisecond)
		codec := BinaryCodec{}
		body, err := codec.Encode(nil, Message{Type: TypeHello, From: 1})
		if err != nil {
			t.Error(err)
			return
		}
		WriteFrame(conn, body)
	}()
	time.Sleep(10 * time.Millisecond) // let Start park in the accept wait
	if err := nd.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-startErr; err == nil {
		t.Fatal("Start succeeded although the node was closed while it was parked")
	}
	nd.Close()
	waitGoroutines(t, base)
}

// TestCloseRacesInboundHello closes a node while a peer's hello is
// mid-flight through its accept loop, covering the error path after
// ln.Close(): the accept goroutine must neither leak nor surface its
// failure as anything but a clean Start error.
func TestCloseRacesInboundHello(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		// Rank 0 of a 2-node mesh accepts one hello from rank 1.
		nd0, err := NewNode(0, 2, core.MechNaive, core.Config{}, Options{DialTimeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		addr0, err := nd0.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nd1, err := NewNode(1, 2, core.MechNaive, core.Config{}, Options{DialTimeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		addr1, err := nd1.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs := []string{addr0, addr1}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); nd0.Start(addrs) }()
		go func() { defer wg.Done(); nd1.Start(addrs) }()
		go func() {
			defer wg.Done()
			// Land the close somewhere inside the handshake window.
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			nd0.Close()
		}()
		wg.Wait()
		nd0.Close()
		nd1.Close()
	}
	waitGoroutines(t, base)
}
