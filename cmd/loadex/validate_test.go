package main

// Error-path coverage for `loadex validate`: a missing trace root, a
// truncated JSONL line and a directory mixing traces of two different
// runs must each surface as a named error (non-zero exit through main),
// never a panic or a silent pass.

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrace writes one JSONL trace file verbatim.
func writeTrace(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMissingDir(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-recorded")
	err := runValidate([]string{"-dir", missing})
	if err == nil {
		t.Fatalf("validate of missing dir %s succeeded", missing)
	}
	if !strings.Contains(err.Error(), "never-recorded") {
		t.Errorf("error %q does not name the missing directory", err)
	}
}

func TestValidateEmptyDir(t *testing.T) {
	dir := t.TempDir()
	err := validateTraceRoot(io.Discard, dir)
	if err == nil {
		t.Fatalf("validate of traceless dir succeeded — a validation that checked nothing must not pass")
	}
	if !strings.Contains(err.Error(), "no *.jsonl trace files") {
		t.Errorf("error %q does not say no traces were found", err)
	}
}

func TestValidateTruncatedLine(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-write leaves a partial last line: valid meta line,
	// then JSON cut off mid-object.
	writeTrace(t, dir, "rank-0.jsonl",
		`{"ev":"meta","rank":0,"n":2,"scenario":"burst","mech":"naive"}
{"ev":"send","rank":0,"peer":1,`+"\n")
	err := validateTraceRoot(io.Discard, dir)
	if err == nil {
		t.Fatalf("validate of truncated trace succeeded")
	}
	if !strings.Contains(err.Error(), "rank-0.jsonl:2:") {
		t.Errorf("error %q does not name file and line of the truncated record", err)
	}
}

func TestValidateMixedRunsInOneDir(t *testing.T) {
	dir := t.TempDir()
	// Two per-rank traces whose meta lines disagree on the mechanism:
	// someone pointed -trace of a second run at an already-used
	// directory. Both traces are individually clean (quiescent, no
	// traffic), so only the meta check can catch the mix.
	writeTrace(t, dir, "rank-0.jsonl",
		`{"ev":"meta","rank":0,"n":1,"scenario":"burst","mech":"naive"}
{"ev":"final","rank":0,"executed":0}
`)
	writeTrace(t, dir, "rank-0b.jsonl",
		`{"ev":"meta","rank":0,"n":1,"scenario":"burst","mech":"snapshot"}
{"ev":"final","rank":0,"executed":0}
`)
	var out strings.Builder
	err := validateTraceRoot(&out, dir)
	if err == nil {
		t.Fatalf("validate of mixed-run dir succeeded:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "violated invariants") {
		t.Errorf("error %q is not an invariant-violation error", err)
	}
	if !strings.Contains(out.String(), "conflicting mechanism") {
		t.Errorf("report does not name the meta conflict:\n%s", out.String())
	}
}
