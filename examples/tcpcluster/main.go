// TCP cluster demo: the same registered scenarios as
// examples/quickstart — but instead of goroutines and channels, the
// eight nodes talk over real localhost TCP sockets with the
// length-prefixed binary codec: the same core state machines, now
// facing serialization, per-pair FIFO connections and
// acknowledgment-based quiescence. Because both runtimes implement
// workload.Driver, the only difference from quickstart is the driver
// constructed below.
//
//	go run ./examples/tcpcluster
//
// For a cluster of separate OS processes, see `go run ./cmd/loadex
// cluster` (this demo keeps the nodes in-process so it is one binary).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/net"
	"repro/internal/workload"
)

func main() {
	// The straggler scenario makes rank 7 execute its work 6x slower,
	// which delays its snapshot replies — watch the restart counter.
	w, err := workload.Get("straggler")
	if err != nil {
		log.Fatal(err)
	}
	params := workload.Params{
		Procs: 8, Masters: 3, Decisions: 4, Work: 120, Slaves: 3,
		Spin: 2 * time.Millisecond,
	}
	cfg := core.Config{
		Threshold:       core.Load{core.Workload: 5},
		NoMoreMasterOpt: true,
	}
	// Threshold-based mechanisms leave views slightly stale by design;
	// don't wait long for them to settle before reading the report.
	drv := net.Driver{Drive: workload.DriveOptions{Settle: 50 * time.Millisecond}}
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		fmt.Printf("=== mechanism: %s (localhost TCP, binary codec, scenario %s) ===\n", mech, w.Name())
		rep, err := drv.Run(w, mech, cfg, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("work items executed per node:")
		for r, n := range rep.Executed {
			fmt.Printf("  node %d: %d\n", r, n)
		}
		fmt.Printf("wire traffic: %d messages, %d bytes\n", rep.WireMsgs, rep.WireBytes)
		if mech == core.MechSnapshot {
			st := rep.TotalStats()
			fmt.Printf("snapshot stats: initiated=%d restarts=%d\n",
				st.SnapshotsInitiated, st.SnapshotRestarts)
		}
	}
	fmt.Println("done — `go run ./cmd/loadex run -scenario all -mech all -runtime net` runs the full matrix as forked OS processes")
}
