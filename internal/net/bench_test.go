package net

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// benchMessages is a representative traffic mix: a threshold update, a
// reservation broadcast with three assignments, a snapshot reply and a
// work item.
func benchMessages() []Message {
	return []Message{
		{Type: TypeState, From: 3, Kind: int32(core.KindUpdate),
			Load: core.Load{core.Workload: 42.5, core.Memory: 7}},
		{Type: TypeState, From: 1, Kind: int32(core.KindMasterToAll),
			Assignments: []core.Assignment{
				{Proc: 2, Delta: core.Load{core.Workload: 30}},
				{Proc: 4, Delta: core.Load{core.Workload: 30}},
				{Proc: 5, Delta: core.Load{core.Workload: 30}},
			}},
		{Type: TypeState, From: 6, Kind: int32(core.KindSnp), Req: 9,
			Load: core.Load{core.Workload: 13.25, core.Memory: 2}},
		{Type: TypeWork, From: 0, Load: core.Load{core.Workload: 30}, Spin: 1_000_000},
	}
}

func benchCodecs(b *testing.B) []Codec {
	b.Helper()
	return []Codec{BinaryCodec{}, JSONCodec{}}
}

func BenchmarkEncode(b *testing.B) {
	msgs := benchMessages()
	for _, codec := range benchCodecs(b) {
		// Report throughput as the average encoded size of the mix, a
		// constant per iteration.
		var mixBytes int64
		for _, m := range msgs {
			body, err := codec.Encode(nil, m)
			if err != nil {
				b.Fatal(err)
			}
			mixBytes += int64(len(body))
		}
		b.Run(codec.Name(), func(b *testing.B) {
			var buf []byte
			var err error
			b.ReportAllocs()
			b.SetBytes(mixBytes / int64(len(msgs)))
			for i := 0; i < b.N; i++ {
				m := msgs[i%len(msgs)]
				buf, err = codec.Encode(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
			}
			_ = buf
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	msgs := benchMessages()
	for _, codec := range benchCodecs(b) {
		encoded := make([][]byte, len(msgs))
		for i, m := range msgs {
			body, err := codec.Encode(nil, m)
			if err != nil {
				b.Fatal(err)
			}
			encoded[i] = body
		}
		b.Run(codec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(encoded[i%len(encoded)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeInto measures the reused-Message decode path the node
// reader actually runs: payload slice capacity is recycled across
// frames, so the binary codec's steady state is allocation-free.
func BenchmarkDecodeInto(b *testing.B) {
	msgs := benchMessages()
	for _, codec := range benchCodecs(b) {
		encoded := make([][]byte, len(msgs))
		for i, m := range msgs {
			body, err := codec.Encode(nil, m)
			if err != nil {
				b.Fatal(err)
			}
			encoded[i] = body
		}
		b.Run(codec.Name(), func(b *testing.B) {
			var m Message
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := codec.DecodeInto(encoded[i%len(encoded)], &m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRoundTrip measures one full encode+decode of the whole mix,
// the per-message cost a node's reader/writer pair pays. The plain
// variant goes through value-returning Decode; the into variant reuses
// one Message the way the reader loop does.
func BenchmarkRoundTrip(b *testing.B) {
	msgs := benchMessages()
	for _, codec := range benchCodecs(b) {
		b.Run(fmt.Sprintf("%s/mix=%d", codec.Name(), len(msgs)), func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, m := range msgs {
					body, err := codec.Encode(buf[:0], m)
					if err != nil {
						b.Fatal(err)
					}
					buf = body
					if _, err := codec.Decode(body); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("%s/mix=%d/into", codec.Name(), len(msgs)), func(b *testing.B) {
			var buf []byte
			var dec Message
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, m := range msgs {
					body, err := codec.Encode(buf[:0], m)
					if err != nil {
						b.Fatal(err)
					}
					buf = body
					if err := codec.DecodeInto(body, &dec); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
