package net

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// The cross-runtime equivalence suite lives in internal/workload
// (TestScenarioMatrixEquivalence): every registered scenario runs under
// every mechanism on sim, live and this package's TCP runtime through
// the shared workload.Driver seam, asserting selection coherence,
// snapshot load conservation and count equivalence. This file keeps the
// net-specific heavier confidence pass.

// TestCrossRuntimeEquivalenceScale is a heavier selection-coherence
// pass over the in-process TCP runtime only; skipped in -short mode.
func TestCrossRuntimeEquivalenceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy TCP workload")
	}
	for _, mech := range core.Mechanisms() {
		cl, err := NewCluster(8, mech, core.Config{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 4)
		for master := 0; master < 4; master++ {
			go func(m int) {
				for i := 0; i < 5; i++ {
					dec, err := cl.DecideObserved(m, 120, 4, 100*time.Microsecond)
					if err == nil {
						sel := core.LeastLoaded(core.ViewOf(dec.View), core.Workload, m, 4)
						for j, a := range dec.Assignments {
							if int(a.Proc) != sel[j] {
								err = fmt.Errorf("mech %s master %d: selection %v diverges from view", mech, m, dec.Assignments)
								break
							}
						}
					}
					if err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}(master)
		}
		for i := 0; i < 4; i++ {
			if err := <-errCh; err != nil {
				t.Error(err)
			}
		}
		if err := cl.Drain(20 * time.Second); err != nil {
			t.Error(err)
		}
		cl.Stop()
	}
}
