package tree

// Cost model for the partial factorization of a frontal matrix of order
// nfront with npiv pivots. With s = nfront - npiv:
//
//	total flops (LU)   = 2·(npiv²·s + npiv·s² + npiv³/3)
//	master share       = 2·(npiv³/3 + npiv²·s)   (pivot block + row panel)
//	slave share        = 2·npiv·s²               (Schur update, split by rows)
//
// Symmetric (LDLᵀ) factorization costs half of each term. These are the
// classical dense partial-factorization counts; only the relative
// proportions matter to the experiments.

// FrontFlops returns the total flop count of a front.
func FrontFlops(nfront, npiv int32, sym bool) float64 {
	np := float64(npiv)
	s := float64(nfront - npiv)
	fl := 2 * (np*np*s + np*s*s + np*np*np/3)
	if sym {
		fl /= 2
	}
	return fl
}

// MasterFlops returns the master share of a Type 2 front: factorization of
// the npiv pivot rows.
func MasterFlops(nfront, npiv int32, sym bool) float64 {
	np := float64(npiv)
	s := float64(nfront - npiv)
	fl := 2 * (np*np*np/3 + np*np*s)
	if sym {
		fl /= 2
	}
	return fl
}

// SlaveFlops returns the flop count for a slave updating `rows` rows of
// the Schur complement of the front.
func SlaveFlops(nfront, npiv, rows int32, sym bool) float64 {
	np := float64(npiv)
	s := float64(nfront - npiv)
	fl := 2 * np * s * float64(rows)
	if sym {
		fl /= 2
	}
	return fl
}

// FrontEntries returns the storage of a full frontal matrix, in matrix
// entries (the unit of Table 4: "millions of real entries").
func FrontEntries(nfront int32, sym bool) float64 {
	nf := float64(nfront)
	if sym {
		return nf * (nf + 1) / 2
	}
	return nf * nf
}

// CBEntries returns the storage of the contribution block passed to the
// parent.
func CBEntries(nfront, npiv int32, sym bool) float64 {
	s := float64(nfront - npiv)
	if sym {
		return s * (s + 1) / 2
	}
	return s * s
}

// FactorEntries returns the storage of the factors produced by the node
// (front minus contribution block).
func FactorEntries(nfront, npiv int32, sym bool) float64 {
	return FrontEntries(nfront, sym) - CBEntries(nfront, npiv, sym)
}

// MasterBlockEntries returns the master's storage for a Type 2 front: the
// npiv pivot rows.
func MasterBlockEntries(nfront, npiv int32, sym bool) float64 {
	if sym {
		// LDLᵀ: the master holds the lower triangle of the pivot block;
		// the column panel below it belongs to the slaves' rows.
		return float64(npiv) * (float64(npiv) + 1) / 2
	}
	return float64(npiv) * float64(nfront)
}

// SlaveBlockEntries returns a slave's storage for `rows` rows of the Schur
// part of a Type 2 front.
func SlaveBlockEntries(nfront, npiv, rows int32, sym bool) float64 {
	e := float64(rows) * float64(nfront)
	if sym {
		e /= 2
	}
	return e
}

// SlaveCBEntries returns the part of the contribution block a slave keeps
// until the parent consumes it (`rows` of the Schur complement).
func SlaveCBEntries(nfront, npiv, rows int32, sym bool) float64 {
	s := float64(nfront - npiv)
	e := float64(rows) * s
	if sym {
		e /= 2
	}
	return e
}

// ComputeSeconds converts a flop count to virtual seconds given a
// processor speed in flops/second. The paper's platform is 1.3-1.7 GHz
// Power4; an effective rate of ~1 Gflop/s for dense kernels is the default
// used by the solver.
func ComputeSeconds(flops, flopsPerSecond float64) float64 {
	if flopsPerSecond <= 0 {
		return 0
	}
	return flops / flopsPerSecond
}
