package core

// Snapshot is the demand-driven "exact" algorithm of §3: a distributed
// snapshot in the style of Chandy-Lamport, coupled with a distributed
// leader election that sequentializes concurrent snapshots so that each
// dynamic decision observes the effect of all previous ones.
//
// Protocol sketch (faithful to the paper's pseudo-code):
//
//   - An initiator broadcasts start_snp with a request id and collects
//     one snp reply from every other process.
//   - A process receiving start_snp answers with its state unless it
//     believes a better leader exists (election by Elector, rank by
//     default) or it already answered this snapshot — then the reply is
//     delayed until the current leader's end_snp arrives.
//   - An initiator that loses the election answers the better leader,
//     then immediately re-broadcasts with a fresh request id; stale snp
//     replies are discarded by the id check.
//   - After collecting N-1 replies, the initiator takes its scheduling
//     decision, informs the selected slaves (master_to_slave, on the
//     state channel so it overtakes any later snapshot), broadcasts
//     end_snp and waits for all other ongoing snapshots to finish.
//   - Every process involved in any ongoing snapshot is Busy: the
//     application must not start tasks (or, in the threaded model, must
//     pause the running one) until all snapshots terminate.
type Snapshot struct {
	n, rank int
	cfg     Config
	elect   Elector
	my      Load
	view    *View

	// Protocol state (names follow the paper's pseudo-code).
	leader    int32  // current leader, -1 = undefined
	nbSnp     int    // concurrent snapshots except my own
	duringSnp bool   // I believe I am the current leader
	snapshot  bool   // an active snapshot is led by someone else
	snp       []bool // snp[i]: process i has an open snapshot
	delayed   []bool // delayed[i]: I owe process i a postponed reply
	request   []int32

	initiating bool // Acquire in progress (from start to Commit)
	collecting bool // still gathering snp replies
	finalizing bool // end_snp sent, waiting for other snapshots
	nbMsgs     int
	ready      func()

	// scope restricts the current snapshot to a subset of processes
	// (§5 perspective: "snapshot algorithms involving only part of the
	// processes"). nil means all processes. Only members receive
	// start_snp/end_snp; non-members are neither consulted nor blocked.
	scope []int32
	// topoScope is the standing scope a sparse topology imposes: plain
	// Acquire consults the initiator's neighbors only (its selection
	// pool). nil on the full topology, preserving the paper's global
	// snapshot exactly. Protocol replies already stay on graph edges:
	// every send outside Acquire targets a rank that messaged us first.
	topoScope []int32

	acquireAt float64
	stats     Stats
}

// NewSnapshot constructs the snapshot mechanism.
func NewSnapshot(n, rank int, cfg Config) *Snapshot {
	el := cfg.Elect
	if el == nil {
		el = ElectMinRank
	}
	var topoScope []int32
	if !cfg.Topo.IsFull() {
		nbrs := cfg.Topo.Neighbors(rank)
		topoScope = make([]int32, len(nbrs))
		for i, p := range nbrs {
			topoScope[i] = int32(p)
		}
	}
	return &Snapshot{
		n: n, rank: rank, cfg: cfg, elect: el,
		view:      NewView(n),
		leader:    -1,
		snp:       make([]bool, n),
		delayed:   make([]bool, n),
		request:   make([]int32, n),
		topoScope: topoScope,
	}
}

// Name implements Exchanger.
func (x *Snapshot) Name() string { return string(MechSnapshot) }

// Init implements Exchanger.
func (x *Snapshot) Init(ctx Context, initial Load) {
	x.my = initial
	x.view.Set(x.rank, initial)
}

// LocalChange implements Exchanger. The snapshot scheme never broadcasts
// spontaneous updates: each process just keeps its own load current
// ("a processor is responsible for updating its own load information
// regularly", §3). Positive slave variations were already credited by the
// master's master_to_slave message.
func (x *Snapshot) LocalChange(ctx Context, delta Load, asSlave bool) {
	if asSlave && isNonNegative(delta) {
		return
	}
	x.my = x.my.Add(delta)
	x.view.Set(x.rank, x.my)
}

// Local implements Exchanger.
func (x *Snapshot) Local() Load { return x.my }

// View implements Exchanger.
func (x *Snapshot) View() *View { return x.view }

// Acquire implements Exchanger: initiate a snapshot (§3, "Initiate a
// snapshot"). ready fires once all N-1 states arrived for the current
// request id. On a sparse topology the snapshot consults the
// initiator's neighbors only (§5 partial snapshot over the standing
// topoScope).
func (x *Snapshot) Acquire(ctx Context, ready func()) {
	x.AcquireScoped(ctx, x.topoScope, ready)
}

// AcquireScoped initiates a snapshot restricted to the given processes
// (the §5 partial-snapshot extension). scope lists the peers to consult;
// the initiator itself is implicit and nil means everyone. Peers outside
// the scope never learn of the snapshot: fewer messages, and only scope
// members synchronize.
func (x *Snapshot) AcquireScoped(ctx Context, scope []int32, ready func()) {
	x.scope = normalizeScope(scope, x.rank, x.n)
	if x.n == 1 || (x.scope != nil && len(x.scope) == 0) {
		ready()
		return
	}
	if x.initiating {
		panic("core: nested snapshot Acquire on one process")
	}
	x.initiating = true
	x.collecting = true
	x.ready = ready
	x.acquireAt = ctx.Now()
	x.stats.SnapshotsInitiated++
	x.leader = x.elect(int32(x.rank), x.leader, x.view)
	x.snp[x.rank] = true
	x.duringSnp = true
	x.startRound(ctx)
}

// normalizeScope drops the initiator and out-of-range ranks; nil stays
// nil ("all").
func normalizeScope(scope []int32, rank, n int) []int32 {
	if scope == nil {
		return nil
	}
	out := make([]int32, 0, len(scope))
	for _, p := range scope {
		if int(p) != rank && p >= 0 && int(p) < n {
			out = append(out, p)
		}
	}
	return out
}

// expected returns how many snp replies complete the collection.
func (x *Snapshot) expected() int {
	if x.scope == nil {
		return x.n - 1
	}
	return len(x.scope)
}

// sendScoped sends a protocol message to every scope member (or
// broadcasts when the scope is all).
func (x *Snapshot) sendScoped(ctx Context, kind int, payload any, bytes float64) {
	if x.scope == nil {
		ctx.Broadcast(kind, payload, bytes)
		return
	}
	for _, p := range x.scope {
		ctx.Send(int(p), kind, payload, bytes)
	}
}

// startRound opens a round with a fresh request id.
func (x *Snapshot) startRound(ctx Context) {
	x.request[x.rank]++
	x.nbMsgs = 0
	x.sendScoped(ctx, KindStartSnp, StartSnpPayload{Req: x.request[x.rank]}, BytesStartSnp)
}

// Commit implements Exchanger: the decision is taken; inform the selected
// slaves and finalize the snapshot (Algorithm 4 + "Finalize the
// snapshot").
func (x *Snapshot) Commit(ctx Context, assignments []Assignment) {
	// master_to_slave on the state channel: FIFO links guarantee each
	// slave credits its load before any later start_snp or this end_snp
	// overtakes it.
	for _, a := range assignments {
		if int(a.Proc) == x.rank {
			x.my = x.my.Add(a.Delta)
			x.view.Set(x.rank, x.my)
			continue
		}
		ctx.Send(int(a.Proc), KindMasterToSlave, MasterToSlavePayload{Delta: a.Delta}, BytesMasterToSlave)
		x.view.AddTo(int(a.Proc), a.Delta)
	}
	if !x.initiating {
		return // n == 1 or empty scope: nothing was gathered
	}
	if x.collecting {
		panic("core: Commit without completed Acquire")
	}
	// Finalize.
	x.sendScoped(ctx, KindEndSnp, nil, BytesEndSnp)
	x.initiating = false
	x.snp[x.rank] = false
	x.duringSnp = false
	x.leader = -1
	if x.nbSnp != 0 {
		x.snapshot = true
		x.electAmongOpen()
		x.answerDelayedLeader(ctx)
		x.finalizing = true
	} else {
		x.snapshot = false
		x.finalizing = false
	}
}

// electAmongOpen recomputes the leader among processes with open
// snapshots.
func (x *Snapshot) electAmongOpen() {
	x.leader = -1
	for i := 0; i < x.n; i++ {
		if x.snp[i] {
			x.leader = x.elect(int32(i), x.leader, x.view)
		}
	}
}

// answerDelayedLeader sends the postponed reply to the (new) leader if
// one is owed.
func (x *Snapshot) answerDelayedLeader(ctx Context) {
	if x.leader < 0 || int(x.leader) == x.rank {
		return
	}
	if x.delayed[x.leader] {
		ctx.Send(int(x.leader), KindSnp,
			SnpPayload{Req: x.request[x.leader], Load: x.my}, BytesSnp)
		x.delayed[x.leader] = false
	}
}

// NoMoreMaster implements Exchanger: the demand-driven scheme sends
// nothing unsolicited, so there is nothing to prune.
func (x *Snapshot) NoMoreMaster(ctx Context) {}

// HandleMessage implements Exchanger.
func (x *Snapshot) HandleMessage(ctx Context, from int, kind int, payload any) {
	switch kind {
	case KindStartSnp:
		x.onStartSnp(ctx, from, payload.(StartSnpPayload).Req)
	case KindSnp:
		p := payload.(SnpPayload)
		x.onSnp(ctx, from, p)
	case KindEndSnp:
		x.onEndSnp(ctx, from)
	case KindMasterToSlave:
		p := payload.(MasterToSlavePayload)
		x.my = x.my.Add(p.Delta)
		x.view.Set(x.rank, x.my)
	}
}

// onStartSnp follows "At the reception of a message start_snp from Pi".
func (x *Snapshot) onStartSnp(ctx Context, from int, req int32) {
	x.leader = x.elect(int32(from), x.leader, x.view)
	x.request[from] = req
	if !x.snp[from] {
		x.nbSnp++
		x.snp[from] = true
		if x.nbSnp > x.stats.MaxConcurrentSnapshots {
			x.stats.MaxConcurrentSnapshots = x.nbSnp
		}
	}
	if int(x.leader) == x.rank {
		// I am the leader: delay the answer until my snapshot ends.
		x.delayed[from] = true
		return
	}
	if !x.snapshot {
		x.snapshot = true
		x.leader = int32(from)
		ctx.Send(from, KindSnp, SnpPayload{Req: req, Load: x.my}, BytesSnp)
	} else {
		if int(x.leader) != from || x.delayed[from] {
			// Not the leader I believe in (or already answered): delay.
			// No restart — only an actual answer invalidates my round.
			x.delayed[from] = true
			return
		}
		ctx.Send(from, KindSnp, SnpPayload{Req: req, Load: x.my}, BytesSnp)
	}
	// I answered a foreign leader: my own round (if any) is superseded by
	// that snapshot — reopen it with a fresh request id so the states I
	// collect reflect the foreign decision (pseudo-code: during_snp was
	// reset, the initiate loop re-broadcasts). Stale replies to the old
	// id are discarded.
	x.maybeRestart(ctx)
}

// maybeRestart re-opens the initiator's round after it answered a better
// leader.
func (x *Snapshot) maybeRestart(ctx Context) {
	if !x.initiating || !x.collecting {
		return
	}
	x.duringSnp = true
	x.stats.SnapshotRestarts++
	x.startRound(ctx)
}

// onSnp follows "At the reception of a message of type snp from Pi".
func (x *Snapshot) onSnp(ctx Context, from int, p SnpPayload) {
	if !x.initiating || !x.collecting || p.Req != x.request[x.rank] {
		return // stale reply: no validity guarantee, ignore (§3)
	}
	x.nbMsgs++
	x.view.Set(from, p.Load)
	if x.nbMsgs == x.expected() {
		x.collecting = false
		x.stats.SnapshotTime += ctx.Now() - x.acquireAt
		cb := x.ready
		x.ready = nil
		if cb != nil {
			cb()
		}
	}
}

// onEndSnp follows "At the reception of a message of type end_snp".
func (x *Snapshot) onEndSnp(ctx Context, from int) {
	x.leader = -1
	if x.snp[from] {
		x.nbSnp--
		x.snp[from] = false
	}
	if x.nbSnp == 0 && !x.initiating {
		x.snapshot = false
		x.finalizing = false
		return
	}
	if x.nbSnp == 0 {
		// Only my own snapshot remains.
		x.snapshot = false
		x.leader = int32(x.rank)
		return
	}
	x.electAmongOpen()
	if x.initiating {
		x.leader = x.elect(int32(x.rank), x.leader, x.view)
	}
	if int(x.leader) == x.rank {
		// I am the next leader; peers will answer my (re-)broadcast.
		return
	}
	x.answerDelayedLeader(ctx)
}

// Busy implements Exchanger: true while any snapshot involving this
// process is open (§3: after the first start_snp a process loops on
// receptions until all snapshots terminate).
func (x *Snapshot) Busy() bool {
	return x.initiating || x.finalizing || x.snapshot || x.nbSnp > 0
}

// Stats implements Exchanger.
func (x *Snapshot) Stats() Stats { return x.stats }
