package net

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// Cluster runs N nodes over localhost TCP inside one process — the same
// mesh, codec and node loops a multi-process deployment uses, minus the
// fork. Tests and `loadex cluster -inproc` use it; its API mirrors
// live.Cluster so the cross-runtime equivalence tests can drive both
// through one harness.
type Cluster struct {
	nodes []*Node
}

// NewCluster starts n nodes on ephemeral localhost ports running mech.
func NewCluster(n int, mech core.Mech, cfg core.Config, opts Options) (*Cluster, error) {
	cl := &Cluster{}
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		nd, err := NewNode(r, n, mech, cfg, opts)
		if err != nil {
			cl.Stop()
			return nil, err
		}
		cl.nodes = append(cl.nodes, nd)
		if addrs[r], err = nd.Listen("127.0.0.1:0"); err != nil {
			cl.Stop()
			return nil, err
		}
	}
	// Start the whole mesh concurrently: rank r's Start blocks until
	// every higher rank has dialed it, so sequential starts would
	// deadlock.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = cl.nodes[r].Start(addrs)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			cl.Stop()
			return nil, err
		}
	}
	return cl, nil
}

// N returns the number of nodes.
func (cl *Cluster) N() int { return len(cl.nodes) }

// Node returns rank r's node.
func (cl *Cluster) Node(r int) *Node { return cl.nodes[r] }

// Decide performs one dynamic decision on the master node: acquire a
// coherent view, select the `slaves` least-loaded peers, commit the
// reservation and ship the work over TCP. It blocks until the decision
// completed (for the snapshot mechanism, until the snapshot finished).
func (cl *Cluster) Decide(master int, totalWork float64, slaves int, spin time.Duration) error {
	_, err := cl.DecideObserved(master, totalWork, slaves, spin)
	return err
}

// DecideObserved is Decide plus the record the equivalence tests check:
// the view consulted at ready time and the assignments taken.
func (cl *Cluster) DecideObserved(master int, totalWork float64, slaves int, spin time.Duration) (core.Decision, error) {
	if master < 0 || master >= len(cl.nodes) {
		return core.Decision{}, fmt.Errorf("net: bad master %d", master)
	}
	return cl.nodes[master].Decide(totalWork, slaves, spin)
}

// AcquireView runs one full view acquisition on rank r, committing no
// assignment, and returns the coherent view.
func (cl *Cluster) AcquireView(r int) ([]core.Load, error) {
	if r < 0 || r >= len(cl.nodes) {
		return nil, fmt.Errorf("net: bad rank %d", r)
	}
	return cl.nodes[r].AcquireView()
}

// LocalChange applies a spontaneous local load variation on rank r.
func (cl *Cluster) LocalChange(r int, delta core.Load) { cl.nodes[r].LocalChange(delta) }

// NoMoreMaster announces rank r will never take a decision again.
func (cl *Cluster) NoMoreMaster(r int) { cl.nodes[r].NoMoreMaster() }

// AssignedItems returns how many work items were ever assigned across
// the cluster.
func (cl *Cluster) AssignedItems() int64 {
	var total int64
	for _, nd := range cl.nodes {
		total += nd.Assigned()
	}
	return total
}

// ExecutedItems returns how many work items were executed across the
// cluster.
func (cl *Cluster) ExecutedItems() int64 {
	var total int64
	for _, nd := range cl.nodes {
		total += nd.Executed()
	}
	return total
}

// Drain waits until every assigned work item across the cluster has
// been executed and acknowledged, or the timeout expires.
func (cl *Cluster) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var out int64
		for _, nd := range cl.nodes {
			out += nd.Outstanding()
		}
		if out == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("net: %d work items still outstanding", out)
		}
		time.Sleep(time.Millisecond)
	}
}

// Executed returns how many work items node r completed.
func (cl *Cluster) Executed(r int) int64 { return cl.nodes[r].Executed() }

// View returns a copy of node r's current estimates.
func (cl *Cluster) View(r int) []core.Load { return cl.nodes[r].ViewSnapshot() }

// Stats returns node r's mechanism counters.
func (cl *Cluster) Stats(r int) core.Stats { return cl.nodes[r].MechStats() }

// Counters returns node r's measurement accumulator (real wire sizes).
func (cl *Cluster) Counters(r int) core.Counters { return cl.nodes[r].Counters() }

// Transport returns node r's wire-level counters.
func (cl *Cluster) Transport(r int) TransportStats { return cl.nodes[r].Transport() }

// Stop closes every node. Closes run concurrently: each node's
// graceful shutdown waits for its peers' half-closes.
func (cl *Cluster) Stop() {
	var wg sync.WaitGroup
	for _, nd := range cl.nodes {
		if nd != nil {
			wg.Add(1)
			go func(nd *Node) {
				defer wg.Done()
				nd.Close()
			}(nd)
		}
	}
	wg.Wait()
}
