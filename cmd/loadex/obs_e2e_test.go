package main

import (
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestReportReconcilesDecisionLatency is the observability acceptance
// check end to end: fork a traced TCP cluster, render the trace with
// the real `loadex report` binary, and reconcile two independent
// measurement paths — the summed durations of the decision.acquire
// spans in the Chrome timeline against the run's decision-latency
// counter from the STATS lines. The span ends are pinned to exactly
// begin+latency at the emit site, so the two must agree to well within
// 5% (the budget covers float µs rounding, not clock skew).
func TestReportReconcilesDecisionLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a multi-process TCP cluster")
	}
	exe := buildLoadex(t)
	traceDir := t.TempDir()

	p := nodeParams{
		procs: 4, scenario: "quickstart", mech: "snapshot", term: "ds",
		threshold: 5, noMore: true, codec: "binary",
		masters: 2, decisions: 3, work: 60, slaves: 2,
		spin: time.Millisecond, settle: 20 * time.Millisecond,
		traceDir: traceDir,
	}
	stats, err := runClusterForkedWith(exe, &p)
	if err != nil {
		t.Fatal(err)
	}
	var wantLat float64
	for _, s := range stats {
		wantLat += s.Counters.DecisionLatency
	}
	if wantLat <= 0 {
		t.Fatal("snapshot run reported zero decision latency; nothing to reconcile")
	}

	out, err := exec.Command(exe, "report", traceDir).CombinedOutput()
	if err != nil {
		t.Fatalf("loadex report: %v\n%s", err, out)
	}

	data, err := os.ReadFile(filepath.Join(traceDir, "timeline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("timeline.json is not loadable trace_event JSON: %v", err)
	}

	var gotLat float64
	acquires, metas := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			if e.Dur < 0 {
				t.Errorf("span %s has negative duration %g", e.Name, e.Dur)
			}
			if e.Name == "decision.acquire" {
				gotLat += e.Dur / 1e6 // µs → s
				acquires++
			}
		}
	}
	if metas == 0 {
		t.Error("timeline has no viewer metadata (process/thread names)")
	}
	wantDecisions := p.masters * p.decisions
	if acquires != wantDecisions {
		t.Errorf("timeline holds %d decision.acquire spans, want %d (masters × decisions)",
			acquires, wantDecisions)
	}
	if rel := math.Abs(gotLat-wantLat) / wantLat; rel > 0.05 {
		t.Errorf("summed decision.acquire span durations %.6fs vs decision-latency counter %.6fs (rel err %.3f > 0.05)",
			gotLat, wantLat, rel)
	}
}

// TestObsValidateAddrUX: -obs shares the listing-error UX of
// -mech/-chaos — a malformed address is rejected up front, naming the
// accepted forms.
func TestObsValidateAddrUX(t *testing.T) {
	p := nodeParams{
		procs: 2, scenario: "quickstart", mech: "snapshot",
		threshold: 5, codec: "binary", term: "ds",
		masters: 1, decisions: 1, work: 10, slaves: 1,
		obsAddr: "not-an-address",
	}
	err := p.validate(false)
	if err == nil {
		t.Fatal("validate accepted -obs \"not-an-address\"")
	}
	for _, want := range []string{"not-an-address", "accepted forms"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	p.obsAddr = "127.0.0.1:0"
	if err := p.validate(false); err != nil {
		t.Fatalf("validate rejected a well-formed -obs address: %v", err)
	}
}
