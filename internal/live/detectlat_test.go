package live

import (
	"testing"
	"time"
)

// TestDetectLatencyLatchedAgainstStragglers pins the race fix: the
// detection latency is latched when the termination broadcast wins its
// CAS, so a straggling compute completion stored AFTER termination
// (the old report-time sampling raced with exactly this) can neither
// zero nor change the measurement.
func TestDetectLatencyLatchedAgainstStragglers(t *testing.T) {
	h := &liveAppHost{start: time.Now()}
	done := time.Now().Add(-50 * time.Millisecond).UnixNano()
	h.lastDoneNS.Store(done)
	h.markTerm()
	lat := h.detectLatNS.Load()
	if lat <= 0 {
		t.Fatalf("latched latency %d, want > 0", lat)
	}
	if got := float64(lat) / float64(time.Second); got < 0.045 {
		t.Fatalf("latched latency %.3fs, want >= ~0.05s", got)
	}

	// The race: a rank finishes a compute after the broadcast. Under
	// the old report-time diff (term >= done guard) this zeroed the
	// reported latency; the latch must be unaffected.
	h.lastDoneNS.Store(time.Now().Add(time.Hour).UnixNano())
	if got := h.detectLatNS.Load(); got != lat {
		t.Fatalf("straggler changed latched latency: %d -> %d", lat, got)
	}
	rep := h.report()
	if want := float64(lat) / float64(time.Second); rep.DetectLatency != want {
		t.Fatalf("report latency %.6fs, want %.6fs", rep.DetectLatency, want)
	}

	// A second termination broadcast must not re-latch.
	h.markTerm()
	if got := h.detectLatNS.Load(); got != lat {
		t.Fatalf("second markTerm re-latched: %d -> %d", lat, got)
	}
}

// TestDetectLatencyUnobserved: no compute ever completed — the latency
// must stay zero rather than going negative or garbage.
func TestDetectLatencyUnobserved(t *testing.T) {
	h := &liveAppHost{start: time.Now()}
	h.markTerm()
	if got := h.detectLatNS.Load(); got != 0 {
		t.Fatalf("latency latched with no compute observed: %d", got)
	}
	if rep := h.report(); rep.DetectLatency != 0 {
		t.Fatalf("report latency %.6f, want 0", rep.DetectLatency)
	}
}
