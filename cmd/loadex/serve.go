package main

// loadex serve / submit / job: the service mode. `serve` keeps one
// resident rank mesh up and admits a stream of jobs over a framed JSON
// API; `submit` and `job` are the matching clients.
//
//	loadex serve -procs 4 -mech increments -addr 127.0.0.1:7070
//	loadex submit -addr 127.0.0.1:7070 -decisions 4 -work 120 -wait
//	loadex submit -addr 127.0.0.1:7070 -kind app -scenario solver-wl -wait
//	loadex job metrics -addr 127.0.0.1:7070
//
// On SIGTERM/SIGINT, serve drains: admission stops, queued and running
// jobs finish, the mesh tears down, exit status 0.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/termdet"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("loadex serve", flag.ExitOnError)
	procs := fs.Int("procs", 4, "resident mesh size (ranks)")
	mech := fs.String("mech", "increments", "load-exchange mechanism, one per mesh: "+strings.Join(mechNames(), ", "))
	term := fs.String("term", "", "termination-detection protocol per job ("+strings.Join(termdet.Names(), ", ")+"; default "+termdet.Default+")")
	addr := fs.String("addr", "127.0.0.1:0", "client API listen address")
	conc := fs.Int("conc", 4, "max concurrently running jobs")
	queue := fs.Int("queue", 64, "admission queue capacity")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "bound on the SIGTERM drain")
	obsAddr := fs.String("obs", "", "serve Prometheus /metrics, /healthz and /debug/pprof on this address (e.g. :9090; empty = off)")
	traceDir := fs.String("trace", "", "record job lifecycle spans under this directory for `loadex report`")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := core.New(core.Mech(*mech), 2, 0, core.Config{}); err != nil {
		return fmt.Errorf("unknown mechanism %q (available: %s)", *mech, strings.Join(mechNames(), ", "))
	}
	if *obsAddr != "" {
		if err := obs.ValidateAddr(*obsAddr); err != nil {
			return err
		}
	}
	var rec *chaos.Recorder
	if *traceDir != "" {
		var err error
		rec, err = chaos.OpenRecorder(filepath.Join(*traceDir, "serve.jsonl"))
		if err != nil {
			return err
		}
		rec.Record(chaos.Event{Ev: chaos.EvMeta, N: *procs, Scenario: "serve", Mech: *mech, Term: termNameOf(*term)})
		defer rec.Close()
	}
	s, err := service.New(service.Config{
		Procs:         *procs,
		Mech:          core.Mech(*mech),
		Term:          *term,
		MaxConcurrent: *conc,
		QueueCap:      *queue,
		Rec:           rec,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		return err
	}
	// The SERVE line is the machine-readable handshake (CI and scripts
	// read the bound address from it, like the forked nodes' ADDR line).
	fmt.Printf("SERVE %s procs=%d mech=%s term=%s\n", ln.Addr(), *procs, *mech, termNameOf(*term))
	if *obsAddr != "" {
		srv, err := obs.ServeHTTP(*obsAddr, func() []obs.Sample { return s.Registry().Gather() }, s.Health)
		if err != nil {
			s.Close()
			ln.Close()
			return err
		}
		fmt.Printf("OBS %s\n", srv.Addr())
		defer srv.Close()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Printf("DRAIN signal=%s\n", sig)
		err := s.Drain(*drainTimeout)
		ln.Close()
		if err != nil {
			return err
		}
		m := s.Metrics()
		fmt.Printf("DRAINED jobs_completed=%d jobs_failed=%d jobs_canceled=%d\n",
			m.Completed, m.Failed, m.Canceled)
		return nil
	case err := <-serveErr:
		s.Close()
		return err
	}
}

func termNameOf(t string) string {
	if t == "" {
		return termdet.Default
	}
	return t
}

func runSubmit(args []string) error {
	fs := flag.NewFlagSet("loadex submit", flag.ExitOnError)
	addr := fs.String("addr", "", "serving instance address (from the SERVE line)")
	kind := fs.String("kind", "synthetic", "job kind: synthetic or app")
	scenario := fs.String("scenario", "", "application scenario for -kind app (e.g. solver-wl)")
	decisions := fs.Int("decisions", 4, "synthetic: dynamic decisions")
	work := fs.Float64("work", 120, "synthetic: flops per decision")
	slaves := fs.Int("slaves", 2, "synthetic: slaves per decision")
	masters := fs.Int("masters", 0, "synthetic: master ranks (0 = default)")
	spin := fs.Duration("spin", 0, "synthetic: wall-clock spin per work share")
	wait := fs.Bool("wait", false, "block until the job finishes and print its final status")
	timeout := fs.Duration("timeout", 2*time.Minute, "bound on a -wait")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("usage: loadex submit -addr host:port [flags]")
	}
	c, err := service.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	spec := service.JobSpec{
		Kind:      *kind,
		Scenario:  *scenario,
		Decisions: *decisions,
		Work:      *work,
		Slaves:    *slaves,
		Masters:   *masters,
		Spin:      spin.Seconds(),
	}
	id, err := c.Submit(spec)
	if err != nil {
		return err
	}
	if !*wait {
		fmt.Printf("JOB %d\n", id)
		return nil
	}
	st, err := c.Result(id, *timeout)
	if err != nil {
		return err
	}
	printJob(st)
	if st.State != service.StateDone {
		return fmt.Errorf("job %d finished %s: %s", id, st.State, st.Err)
	}
	return nil
}

// runJobCmd is the `loadex job <status|result|cancel|metrics>` client.
func runJobCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: loadex job <status|result|cancel|metrics> -addr a [-id n]")
	}
	op := args[0]
	fs := flag.NewFlagSet("loadex job "+op, flag.ExitOnError)
	addr := fs.String("addr", "", "serving instance address")
	id := fs.Int("id", 0, "job id")
	timeout := fs.Duration("timeout", 2*time.Minute, "bound on a result wait")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("usage: loadex job %s -addr host:port [-id n]", op)
	}
	c, err := service.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	needID := func() error {
		if *id <= 0 {
			return fmt.Errorf("loadex job %s needs -id", op)
		}
		return nil
	}
	switch op {
	case "status":
		if err := needID(); err != nil {
			return err
		}
		st, err := c.Status(int32(*id))
		if err != nil {
			return err
		}
		printJob(st)
	case "result":
		if err := needID(); err != nil {
			return err
		}
		st, err := c.Result(int32(*id), *timeout)
		if err != nil {
			return err
		}
		printJob(st)
		if st.State != service.StateDone {
			return fmt.Errorf("job %d finished %s: %s", st.ID, st.State, st.Err)
		}
	case "cancel":
		if err := needID(); err != nil {
			return err
		}
		if err := c.Cancel(int32(*id)); err != nil {
			return err
		}
		fmt.Printf("CANCEL %d\n", *id)
	case "metrics":
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	default:
		return fmt.Errorf("unknown job op %q (status, result, cancel, metrics)", op)
	}
	return nil
}

// printJob prints one job status as a stable single-record form.
func printJob(st *service.JobStatus) {
	fmt.Printf("JOB %d state=%s kind=%s makespan=%.3fs executed=%d decisions=%d data=%d ctrl=%d state_msgs=%d",
		st.ID, st.State, st.Kind, st.Makespan, st.Executed,
		st.Counters.Decisions, st.Counters.DataMsgs, st.Counters.CtrlMsgs, st.Counters.StateMsgs)
	if st.Err != "" {
		fmt.Printf(" err=%q", st.Err)
	}
	fmt.Println()
}
