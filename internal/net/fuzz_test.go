package net

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the binary decoder with arbitrary bytes. Properties:
//
//  1. Decode never panics, whatever the input.
//  2. Anything that decodes re-encodes, and the re-encoding is a fixed
//     point: decode(encode(decode(b))) produces identical bytes
//     (canonical form), which subsumes decode(encode(m)) == m for every
//     well-formed message — the seed corpus checks in one encoding of
//     every message kind.
//
// Run with `go test -fuzz=FuzzDecode ./internal/net`.
func FuzzDecode(f *testing.F) {
	codec := BinaryCodec{}
	for _, m := range sampleMessages() {
		b, err := codec.Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// A few malformed seeds steer the fuzzer toward the error paths.
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{byte(TypeState), 0, 0, 0, 1, 0, 0, 0, byte(2), 0x7f, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := codec.Decode(b)
		if err != nil {
			return
		}
		enc, err := codec.Encode(nil, m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %+v: %v", m, err)
		}
		m2, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding failed to decode: %x: %v", enc, err)
		}
		enc2, err := codec.Encode(nil, m2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		// Byte-level comparison sidesteps NaN != NaN in struct equality
		// while still proving the codec is a bijection on its image.
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical:\n first %x\nsecond %x", enc, enc2)
		}
		// The binary codec is strict, so a successful decode consumes
		// exactly the canonical encoding.
		if !bytes.Equal(enc, b) {
			t.Fatalf("accepted non-canonical input:\n in  %x\n out %x", b, enc)
		}
	})
}
