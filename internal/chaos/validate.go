package chaos

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
)

// Violation is one failed cross-rank invariant.
type Violation struct {
	// Check names the invariant ("conservation", "compute",
	// "quiescence", "selection", "topology").
	Check string
	// Detail explains the specific failure.
	Detail string
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// Report is the outcome of validating one recorded run.
type Report struct {
	// N is the cluster size from the meta events (0 if none recorded).
	N int
	// Scenario/Mech/Term/Plan/Topo describe the run, from the meta events.
	Scenario, Mech, Term, Plan, Topo string
	// Event tallies.
	Events, Sends, Recvs, Starts, Dones, Decides, States int
	// SpanBegins/SpanEnds tally span events; SpanKinds counts
	// completed spans per kind.
	SpanBegins, SpanEnds int
	SpanKinds            map[string]int
	// Finals is how many ranks closed their trace with a final event.
	Finals int
	// Violations is every failed invariant, empty for a clean run.
	Violations []Violation
}

// OK reports whether the run passed every check.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Format writes the human-readable validation summary.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "run: n=%d scenario=%s mech=%s term=%s plan=%s topo=%s\n",
		r.N, orDash(r.Scenario), orDash(r.Mech), orDash(r.Term), orDash(r.Plan), orDash(r.Topo))
	fmt.Fprintf(w, "events: %d (%d send, %d recv, %d state, %d start, %d done, %d decide, %d/%d final)\n",
		r.Events, r.Sends, r.Recvs, r.States, r.Starts, r.Dones, r.Decides, r.Finals, r.N)
	if r.SpanBegins > 0 || r.SpanEnds > 0 {
		fmt.Fprintf(w, "spans: %d begin, %d end", r.SpanBegins, r.SpanEnds)
		for _, k := range sortedStrs(r.SpanKinds) {
			fmt.Fprintf(w, ", %d %s", r.SpanKinds[k], k)
		}
		fmt.Fprintln(w)
	}
	if r.OK() {
		fmt.Fprintf(w, "OK: all invariants hold\n")
		return
	}
	fmt.Fprintf(w, "FAIL: %d violation(s)\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func (r *Report) violate(check, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// maxViolationsPerCheck bounds the detail spam from a badly broken run;
// the overflow is summarized.
const maxViolationsPerCheck = 16

// Validate checks one recorded run's cross-rank invariants:
//
//   - conservation: per directed rank pair, the multiset of sent
//     message payloads equals the multiset of received ones. A surplus
//     send is a lost (or still in-flight at termination) message; a
//     surplus receive is a duplicated or forged one. Because every rank
//     records its final event only after local termination, a clean
//     conservation check also means the termination detector never
//     fired with messages in flight.
//   - compute: per rank, every started compute interval completed
//     (starts == dones), and a rank's final executed count matches its
//     recorded completions.
//   - quiescence: every rank of the cluster closed its trace with
//     exactly one final event — a missing final is a crashed rank or a
//     truncated trace.
//   - selection: every recorded decision selected exactly the
//     least-loaded ranks of the view it was taken on (master excluded,
//     lower rank on ties) — the policy of core.PlanDecision. When the
//     run's meta names a sparse topology, candidates are restricted to
//     the master's neighbors (core.PlanDecisionOn).
//   - topology: every recorded state-channel message travels an edge of
//     the run's topology — the seam's end-to-end guarantee that no
//     mechanism leaks traffic across a non-edge.
//
// pair is one directed rank pair for conservation bookkeeping.
type pair struct{ from, to int }

func Validate(events []Event) *Report {
	r := &Report{Events: len(events)}

	sent := map[pair]map[string]int{}
	recv := map[pair]map[string]int{}
	starts := map[int]int{}
	dones := map[int]int{}
	finals := map[int]int{}
	executed := map[int]int64{}

	add := func(m map[pair]map[string]int, p pair, k string) {
		if m[p] == nil {
			m[p] = map[string]int{}
		}
		m[p][k]++
	}

	// Span bookkeeping: begins awaiting their end (per rank, per span
	// id) and the LIFO stack per (rank, track). Nesting is only
	// enforced within a track — spans of different subsystems
	// (decision vs snapshot-round busy intervals) legitimately
	// interleave on one rank, but within a track (decision.acquire
	// inside decision) strict containment is the contract.
	type spanBegin struct {
		span  string
		track string
		t     float64
	}
	type trackKey struct {
		rank  int
		track string
	}
	openSpans := map[int]map[int64]spanBegin{}
	spanStacks := map[trackKey][]int64{}
	spanViol := 0
	spanBad := func(format string, args ...any) {
		if spanViol++; spanViol <= maxViolationsPerCheck {
			r.violate("span", format, args...)
		}
	}

	var decides, states []Event
	selViol, consViol := 0, 0
	for _, e := range events {
		switch e.Ev {
		case EvMeta:
			if e.N > 0 {
				if r.N != 0 && r.N != e.N {
					r.violate("quiescence", "conflicting cluster sizes in meta events: %d vs %d", r.N, e.N)
				}
				r.N = e.N
			}
			r.setMeta("scenario", &r.Scenario, e.Scenario)
			r.setMeta("mechanism", &r.Mech, e.Mech)
			r.setMeta("term protocol", &r.Term, e.Term)
			r.setMeta("chaos plan", &r.Plan, e.Plan)
			r.setMeta("topology", &r.Topo, e.Topo)
		case EvSend:
			r.Sends++
			add(sent, pair{e.Rank, e.Peer}, e.key())
		case EvRecv:
			r.Recvs++
			add(recv, pair{e.Peer, e.Rank}, e.key())
		case EvStart:
			r.Starts++
			starts[e.Rank]++
		case EvDone:
			r.Dones++
			dones[e.Rank]++
		case EvDecide:
			r.Decides++
			decides = append(decides, e)
		case EvState:
			r.States++
			states = append(states, e)
		case EvFinal:
			r.Finals++
			finals[e.Rank]++
			executed[e.Rank] = e.Executed
		case EvSpanBegin:
			r.SpanBegins++
			if e.Span == "" || e.Sid == 0 {
				spanBad("rank %d began a span without a kind or id", e.Rank)
				continue
			}
			if openSpans[e.Rank] == nil {
				openSpans[e.Rank] = map[int64]spanBegin{}
			}
			if _, dup := openSpans[e.Rank][e.Sid]; dup {
				spanBad("rank %d reused span id %d while it was still open", e.Rank, e.Sid)
				continue
			}
			track := spanTrack(e.Span)
			openSpans[e.Rank][e.Sid] = spanBegin{span: e.Span, track: track, t: e.T}
			tk := trackKey{e.Rank, track}
			spanStacks[tk] = append(spanStacks[tk], e.Sid)
		case EvSpanEnd:
			r.SpanEnds++
			b, ok := openSpans[e.Rank][e.Sid]
			if !ok {
				spanBad("rank %d ended span %q (id %d) that never began", e.Rank, e.Span, e.Sid)
				continue
			}
			delete(openSpans[e.Rank], e.Sid)
			if e.Span != "" && e.Span != b.span {
				spanBad("rank %d span id %d began as %q but ended as %q", e.Rank, e.Sid, b.span, e.Span)
			}
			if e.T < b.t {
				spanBad("rank %d span %q (id %d) ended at t=%.9g before it began at t=%.9g", e.Rank, b.span, e.Sid, e.T, b.t)
			}
			tk := trackKey{e.Rank, b.track}
			st := spanStacks[tk]
			if len(st) > 0 && st[len(st)-1] == e.Sid {
				spanStacks[tk] = st[:len(st)-1]
			} else {
				spanBad("rank %d span %q (id %d) ended out of LIFO order within track %q", e.Rank, b.span, e.Sid, b.track)
				for i := len(st) - 1; i >= 0; i-- {
					if st[i] == e.Sid {
						spanStacks[tk] = append(st[:i], st[i+1:]...)
						break
					}
				}
			}
			if r.SpanKinds == nil {
				r.SpanKinds = map[string]int{}
			}
			r.SpanKinds[b.span]++
		default:
			r.violate("quiescence", "rank %d recorded unknown event kind %q", e.Rank, e.Ev)
		}
	}

	// Span balance: every begin must have closed by end of trace — an
	// open span at quiescence is a truncated trace or an emitter bug.
	for _, rk := range sortedIntKeys(openSpans) {
		for _, sid := range sortedInt64Keys(openSpans[rk]) {
			b := openSpans[rk][sid]
			spanBad("rank %d span %q (id %d, began t=%.9g) never ended", rk, b.span, sid, b.t)
		}
	}
	if spanViol > maxViolationsPerCheck {
		r.violate("span", "... and %d more span violations", spanViol-maxViolationsPerCheck)
	}

	// Topology-dependent checks run after the whole soup is read: the
	// meta event naming the topology may sit in a later rank file than
	// the first decision or state send it governs.
	topo := r.topology()
	for _, e := range decides {
		if v := checkSelection(e, topo); v != "" {
			if selViol++; selViol <= maxViolationsPerCheck {
				r.violate("selection", "%s", v)
			}
		}
	}
	if topo != nil && !topo.IsFull() {
		topoViol := 0
		for _, e := range states {
			if e.Rank == e.Peer || topo.Edge(e.Rank, e.Peer) {
				continue
			}
			if topoViol++; topoViol <= maxViolationsPerCheck {
				r.violate("topology", "rank %d sent a %s state message to %d, not a neighbor on %s",
					e.Rank, core.KindName(int(e.Kind)), e.Peer, topo.Name())
			}
		}
		if topoViol > maxViolationsPerCheck {
			r.violate("topology", "... and %d more topology violations", topoViol-maxViolationsPerCheck)
		}
	}

	// Conservation: diff the send/recv multisets per directed pair.
	for _, p := range sortedPairs(sent, recv) {
		for _, k := range sortedKeys(sent[p], recv[p]) {
			d := sent[p][k] - recv[p][k]
			if d == 0 {
				continue
			}
			if consViol++; consViol > maxViolationsPerCheck {
				continue
			}
			if d > 0 {
				r.violate("conservation", "%d message(s) %d->%d lost or in flight at termination (payload %s)", d, p.from, p.to, k)
			} else {
				r.violate("conservation", "%d message(s) %d->%d received but never sent (duplicated?) (payload %s)", -d, p.from, p.to, k)
			}
		}
	}
	if selViol > maxViolationsPerCheck {
		r.violate("selection", "... and %d more selection violations", selViol-maxViolationsPerCheck)
	}
	if consViol > maxViolationsPerCheck {
		r.violate("conservation", "... and %d more conservation violations", consViol-maxViolationsPerCheck)
	}

	// Compute intervals and per-rank quiescence.
	ranks := map[int]bool{}
	for rk := range starts {
		ranks[rk] = true
	}
	for rk := range dones {
		ranks[rk] = true
	}
	for _, rk := range sortedInts(ranks) {
		if starts[rk] != dones[rk] {
			r.violate("compute", "rank %d started %d compute interval(s) but completed %d", rk, starts[rk], dones[rk])
		}
	}
	n := r.N
	for rk := 0; rk < n; rk++ {
		switch finals[rk] {
		case 0:
			r.violate("quiescence", "rank %d never reached quiescence (no final event: crashed rank or truncated trace)", rk)
		case 1:
			if ex := executed[rk]; ex != int64(dones[rk]) {
				r.violate("compute", "rank %d reports %d executed item(s) but recorded %d completion(s)", rk, ex, dones[rk])
			}
		default:
			r.violate("quiescence", "rank %d recorded %d final events", rk, finals[rk])
		}
	}
	if n == 0 && r.Events > 0 {
		r.violate("quiescence", "no meta event: cluster size unknown, per-rank quiescence unchecked")
	}
	for rk := range finals {
		if rk < 0 || (n > 0 && rk >= n) {
			r.violate("quiescence", "final event from out-of-range rank %d (n=%d)", rk, n)
		}
	}
	return r
}

// topology reconstructs the run's neighbor graph from the meta fields.
// A nil result means full semantics (no topology named, or one the
// validator cannot rebuild — the latter is its own violation).
func (r *Report) topology() *core.Topology {
	if r.Topo == "" || r.N <= 0 {
		return nil
	}
	topo, err := core.NewTopology(r.Topo, r.N)
	if err != nil {
		r.violate("meta", "meta names topology %q the validator cannot reconstruct for n=%d: %v", r.Topo, r.N, err)
		return nil
	}
	return topo
}

// checkSelection recomputes the least-loaded selection for one recorded
// decision and returns a violation detail, or "" if coherent. On a
// sparse topology candidates are the master's neighbors, mirroring
// core.PlanDecisionOn.
func checkSelection(e Event, topo *core.Topology) string {
	if len(e.View) == 0 || len(e.Sel) == 0 {
		return fmt.Sprintf("rank %d recorded a decision without view or selection", e.Rank)
	}
	sparse := topo != nil && !topo.IsFull()
	for _, s := range e.Sel {
		if s == e.Rank {
			return fmt.Sprintf("rank %d selected itself as a slave (sel %v)", e.Rank, e.Sel)
		}
		if s < 0 || s >= len(e.View) {
			return fmt.Sprintf("rank %d selected out-of-range rank %d (view has %d ranks)", e.Rank, s, len(e.View))
		}
		if sparse && !topo.Edge(e.Rank, s) {
			return fmt.Sprintf("rank %d selected %d, not a neighbor on %s (sel %v)", e.Rank, s, topo.Name(), e.Sel)
		}
	}
	var want []int
	if sparse {
		want = leastLoadedAmong(e.View, e.Rank, len(e.Sel), topo.Neighbors(e.Rank))
	} else {
		want = LeastLoaded(e.View, e.Rank, len(e.Sel))
	}
	got := append([]int(nil), e.Sel...)
	sort.Ints(got)
	if !equalSelection(e.View, got, want) {
		return fmt.Sprintf("rank %d selected %v but the least-loaded ranks of its view %v are %v", e.Rank, got, e.View, want)
	}
	return ""
}

// leastLoadedAmong is LeastLoaded restricted to a candidate list (the
// master's neighbors on a sparse topology).
func leastLoadedAmong(view []float64, exclude, k int, candidates []int) []int {
	type cand struct {
		rank int
		load float64
	}
	var cands []cand
	for _, r := range candidates {
		if r != exclude && r >= 0 && r < len(view) {
			cands = append(cands, cand{r, view[r]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].rank < cands[j].rank
	})
	if k > len(cands) {
		k = len(cands)
	}
	if k < 0 {
		k = 0
	}
	sel := make([]int, 0, k)
	for _, c := range cands[:k] {
		sel = append(sel, c.rank)
	}
	sort.Ints(sel)
	return sel
}

// equalSelection accepts any selection whose per-slot loads match the
// canonical least-loaded one: equal-load ranks are interchangeable, so
// only load-profile deviations count as incoherent.
func equalSelection(view []float64, got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	const eps = 1e-9
	for i := range got {
		if got[i] == want[i] {
			continue
		}
		if math.Abs(view[got[i]]-view[want[i]]) > eps {
			return false
		}
	}
	return true
}

// setMeta records one run-level meta field. Two different non-empty
// values inside one validation unit mean the directory mixes traces of
// two different runs — a "meta" violation, not a silent first-wins:
// every downstream invariant (conservation, quiescence) would otherwise
// be checked against an incoherent event soup.
func (r *Report) setMeta(name string, dst *string, v string) {
	if v == "" {
		return
	}
	if *dst != "" && *dst != v {
		r.violate("meta", "conflicting %s in meta events: %q vs %q (traces from different runs mixed in one directory?)",
			name, *dst, v)
		return
	}
	*dst = v
}

func sortedPairs(ms ...map[pair]map[string]int) []pair {
	set := map[pair]bool{}
	for _, m := range ms {
		for p := range m {
			set[p] = true
		}
	}
	var pairs []pair
	for p := range set {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	return pairs
}

func sortedKeys(ms ...map[string]int) []string {
	set := map[string]bool{}
	for _, m := range ms {
		for k := range m {
			set[k] = true
		}
	}
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// spanTrack groups span kinds into nesting tracks: the prefix before
// the first dot ("decision.acquire" → "decision"). LIFO nesting is
// enforced per (rank, track); cross-track interleaving is legitimate.
func spanTrack(kind string) string {
	for i := 0; i < len(kind); i++ {
		if kind[i] == '.' {
			return kind[:i]
		}
	}
	return kind
}

func sortedStrs(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedInt64Keys[V any](m map[int64]V) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedInts(set map[int]bool) []int {
	var out []int
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
