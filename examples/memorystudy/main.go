// Memorystudy reproduces a slice of the paper's Table 4 on one matrix:
// the peak of active memory reached by the memory-based dynamic
// scheduling strategy under each load-exchange mechanism, on the
// simulated multifrontal solver.
//
//	go run ./examples/memorystudy [matrix] [procs]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

func main() {
	name := "ULTRASOUND3"
	procs := 32
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		p, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad processor count %q", os.Args[2])
		}
		procs = p
	}

	lab := experiments.NewLab(experiments.DefaultConfig())
	fmt.Printf("memory-based scheduling on %s over %d processes\n", name, procs)
	fmt.Printf("%-12s %16s %14s %12s\n", "mechanism", "peak(10^6 entr.)", "time(s)", "state msgs")
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		res, err := lab.RunOne(name, procs, mech, sched.Memory(), nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %16.3f %14.2f %12d\n",
			mech, res.MaxPeakMem/1e6, res.Time, res.StateMsgs)
	}
	fmt.Println("\nthe naive mechanism's stale views generally give the worst peak (§4.4)")
}
