package solver_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/solver"
)

// TestSimGoldens pins the deterministic simulator results. The values
// were re-derived for the quiescence subsystem (PR 5): the solver's
// completion tracking is now message-driven (KindSlaveDone /
// KindType3Done notifications add data traffic) and every run carries
// termination-detection control frames (default Dijkstra–Scholten: one
// ack per data message plus the termination announcement), so data
// messages, control messages, steps and — through the added network
// occupancy — virtual times all moved against the PR 4 goldens. Peak
// memory and decision counts are bit-identical to PR 4 across all 12
// cells: the distribution refactor changed who tracks progress, not
// what the application computes. Any drift here means the event
// sequence changed, not just the plumbing.
//
// The steps column was re-derived once more for the engine-throughput
// work (PR 9): the network now coalesces same-instant deliveries into
// one engine event (provably order-preserving — consecutive sequence
// numbers, same timestamp), so fewer events are popped for the same
// delivery sequence. Time, peak memory, decisions and all message
// counts are bit-identical to the pre-batching goldens; only the
// event-pop count shrank.
func TestSimGoldens(t *testing.T) {
	type golden struct {
		mech      core.Mech
		strat     string
		time      float64
		peak      float64
		decisions int
		stateMsgs int64
		dataMsgs  int64
		ctrlMsgs  int64
		steps     uint64
	}
	strategies := map[string]func() *sched.Strategy{
		"workload": sched.Workload,
		"memory":   sched.Memory,
	}
	cases := map[string][]golden{
		// buildMapping(8, 8, 8, 8)
		"8x8x8@8p": {
			{"increments", "workload", 0.006046, 3110.500000, 9, 718, 121, 135, 971},
			{"increments", "memory", 0.006505, 2451.500000, 9, 711, 103, 117, 979},
			{"snapshot", "workload", 0.007346, 3555.000000, 9, 217, 117, 131, 764},
			{"snapshot", "memory", 0.008415, 2153.500000, 9, 216, 92, 106, 718},
			{"naive", "workload", 0.006046, 3110.500000, 9, 738, 121, 135, 955},
			{"naive", "memory", 0.006505, 2451.500000, 9, 722, 103, 117, 970},
		},
		// buildMapping(10, 10, 10, 16)
		"10x10x10@16p": {
			{"increments", "workload", 0.013745, 4950.000000, 29, 3355, 459, 489, 3669},
			{"increments", "memory", 0.018574, 5376.000000, 29, 3187, 371, 401, 3218},
			{"snapshot", "workload", 0.023794, 4950.000000, 29, 1600, 484, 514, 3820},
			{"snapshot", "memory", 0.033843, 7323.500000, 29, 1577, 368, 398, 3675},
			{"naive", "workload", 0.014155, 4950.000000, 29, 3717, 465, 495, 3849},
			{"naive", "memory", 0.020804, 5776.500000, 29, 3494, 405, 435, 3658},
		},
	}
	build := map[string]func() [4]int{
		"8x8x8@8p":     func() [4]int { return [4]int{8, 8, 8, 8} },
		"10x10x10@16p": func() [4]int { return [4]int{10, 10, 10, 16} },
	}
	for grid, goldens := range cases {
		dims := build[grid]()
		for _, g := range goldens {
			m := buildMapping(t, dims[0], dims[1], dims[2], dims[3])
			res, err := solver.Run(m, solver.DefaultParams(g.mech, strategies[g.strat]()), onSim())
			if err != nil {
				t.Fatalf("%s %s/%s: %v", grid, g.mech, g.strat, err)
			}
			// Time was recorded at 1e-6 precision; everything else exact.
			if diff := res.Time - g.time; diff > 5e-7 || diff < -5e-7 {
				t.Errorf("%s %s/%s: time %v, golden %v", grid, g.mech, g.strat, res.Time, g.time)
			}
			if res.MaxPeakMem != g.peak {
				t.Errorf("%s %s/%s: peak %v, golden %v", grid, g.mech, g.strat, res.MaxPeakMem, g.peak)
			}
			if res.Decisions != g.decisions {
				t.Errorf("%s %s/%s: decisions %d, golden %d", grid, g.mech, g.strat, res.Decisions, g.decisions)
			}
			if res.StateMsgs != g.stateMsgs {
				t.Errorf("%s %s/%s: state msgs %d, golden %d", grid, g.mech, g.strat, res.StateMsgs, g.stateMsgs)
			}
			if res.DataMsgs != g.dataMsgs {
				t.Errorf("%s %s/%s: data msgs %d, golden %d", grid, g.mech, g.strat, res.DataMsgs, g.dataMsgs)
			}
			if res.CtrlMsgs != g.ctrlMsgs {
				t.Errorf("%s %s/%s: ctrl msgs %d, golden %d", grid, g.mech, g.strat, res.CtrlMsgs, g.ctrlMsgs)
			}
			if res.Steps != g.steps {
				t.Errorf("%s %s/%s: steps %d, golden %d", grid, g.mech, g.strat, res.Steps, g.steps)
			}
		}
	}
}

// TestSimGoldenCtrlBudget pins the Dijkstra–Scholten detection cost
// identity on the reference runtime: every cross-rank data message is
// acknowledged exactly once (immediately, or deferred as a detachment
// ack), every rank's virtual initial engagement costs one detachment
// ack, and detection broadcasts n-1 termination announcements —
// CtrlMsgs == DataMsgs + 2(n-1), since the solver never self-sends.
func TestSimGoldenCtrlBudget(t *testing.T) {
	const n = 8
	m := buildMapping(t, 8, 8, 8, n)
	res, err := solver.Run(m, solver.DefaultParams(core.MechIncrements, sched.Workload()), onSim())
	if err != nil {
		t.Fatal(err)
	}
	if want := res.DataMsgs + 2*(n-1); res.CtrlMsgs != want {
		t.Fatalf("ctrl msgs %d, want data msgs %d + 2(n-1) = %d",
			res.CtrlMsgs, res.DataMsgs, want)
	}
}
