package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/chaos"
	"repro/internal/stats"
)

// The trace→timeline reporter behind `loadex report`: pairs span
// begin/end events (and start/done compute events) from one recorded
// run into Chrome trace_event JSON — loadable in chrome://tracing or
// Perfetto — plus a markdown latency-breakdown table.

// TraceEvent is one Chrome trace_event record. Complete spans use
// Ph "X" with Ts/Dur in microseconds; metadata rows use Ph "M".
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// SpanStat is one row of the latency breakdown: all completed spans of
// one kind across the run.
type SpanStat struct {
	Kind    string            `json:"kind"`
	Count   int64             `json:"count"`
	TotalS  float64           `json:"total_s"`
	Summary stats.HistSummary `json:"summary"`
}

// Timeline is a rendered run.
type Timeline struct {
	Events    []TraceEvent `json:"traceEvents"`
	Breakdown []SpanStat   `json:"-"`
	// Spans counts completed (begin+end matched) spans; Unmatched
	// counts begins that never ended — nonzero means a truncated
	// trace or an emitter bug (`loadex validate` pinpoints which).
	Spans     int `json:"-"`
	Unmatched int `json:"-"`
}

type openSpan struct {
	span string
	t    float64
}

// BuildTimeline pairs one run's trace events into a timeline.
// Timestamps are per-rank seconds since that rank's run start; forked
// ranks therefore skew by fork spread, which the viewer shows as
// slightly offset track origins (spans stay internally exact).
func BuildTimeline(events []chaos.Event) *Timeline {
	tl := &Timeline{}
	byKind := map[string]*stats.StreamHist{}
	open := map[int]map[int64]openSpan{} // rank → sid → begin
	computeOpen := map[int][]float64{}   // rank → stack of start times
	ranks := map[int]bool{}
	tracks := map[string]bool{}

	emit := func(rank int, kind string, begin, end float64) {
		if end < begin {
			end = begin
		}
		track := SpanTrack(kind)
		tracks[track] = true
		ranks[rank] = true
		tl.Events = append(tl.Events, TraceEvent{
			Name: kind, Ph: "X", Cat: track,
			Ts: begin * 1e6, Dur: (end - begin) * 1e6,
			Pid: rank, Tid: 0, // tid assigned per track below
		})
		h := byKind[kind]
		if h == nil {
			h = &stats.StreamHist{}
			byKind[kind] = h
		}
		h.Add(end - begin)
		tl.Spans++
	}

	for _, e := range events {
		switch e.Ev {
		case chaos.EvSpanBegin:
			if open[e.Rank] == nil {
				open[e.Rank] = map[int64]openSpan{}
			}
			open[e.Rank][e.Sid] = openSpan{span: e.Span, t: e.T}
		case chaos.EvSpanEnd:
			if b, ok := open[e.Rank][e.Sid]; ok {
				delete(open[e.Rank], e.Sid)
				emit(e.Rank, b.span, b.t, e.T)
			} else {
				tl.Unmatched++
			}
		case chaos.EvStart:
			if e.T > 0 {
				computeOpen[e.Rank] = append(computeOpen[e.Rank], e.T)
			}
		case chaos.EvDone:
			if st := computeOpen[e.Rank]; len(st) > 0 {
				begin := st[len(st)-1]
				computeOpen[e.Rank] = st[:len(st)-1]
				emit(e.Rank, "compute", begin, e.T)
			}
		}
	}
	for _, m := range open {
		tl.Unmatched += len(m)
	}

	// Stable thread ids per track, plus viewer metadata naming every
	// rank's process and every track's thread row.
	trackNames := sortedStrings(tracks)
	tid := map[string]int{}
	for i, t := range trackNames {
		tid[t] = i
	}
	for i := range tl.Events {
		tl.Events[i].Tid = tid[tl.Events[i].Cat]
	}
	var meta []TraceEvent
	for _, rk := range sortedIntKeys(ranks) {
		meta = append(meta, TraceEvent{
			Name: "process_name", Ph: "M", Pid: rk,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rk)},
		})
		for _, t := range trackNames {
			meta = append(meta, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: rk, Tid: tid[t],
				Args: map[string]any{"name": t},
			})
		}
	}
	tl.Events = append(meta, tl.Events...)

	for _, kind := range sortedStringKeys(byKind) {
		h := byKind[kind]
		tl.Breakdown = append(tl.Breakdown, SpanStat{
			Kind: kind, Count: h.Count(), TotalS: h.Sum(), Summary: h.Summary(),
		})
	}
	return tl
}

// SpanTotal returns the summed duration of all completed spans of one
// kind — the quantity the end-to-end acceptance test compares against
// the run's decision-latency counter.
func (tl *Timeline) SpanTotal(kind string) float64 {
	for _, s := range tl.Breakdown {
		if s.Kind == kind {
			return s.TotalS
		}
	}
	return 0
}

// WriteChrome writes the Chrome trace_event JSON object form.
func (tl *Timeline) WriteChrome(w io.Writer) error {
	doc := struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{tl.Events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteMarkdown writes the latency-breakdown table.
func (tl *Timeline) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "| span | count | total (s) | mean (s) | p50 (s) | p95 (s) | p99 (s) | max (s) |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, s := range tl.Breakdown {
		fmt.Fprintf(w, "| %s | %d | %.6f | %.6f | %.6f | %.6f | %.6f | %.6f |\n",
			s.Kind, s.Count, s.TotalS, s.Summary.Mean, s.Summary.P50, s.Summary.P95, s.Summary.P99, s.Summary.Max)
	}
	if tl.Unmatched > 0 {
		fmt.Fprintf(w, "\n%d span(s) never closed (truncated trace?)\n", tl.Unmatched)
	}
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStringKeys(m map[string]*stats.StreamHist) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
