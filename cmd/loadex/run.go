package main

// loadex run: the scenario × mechanism × runtime matrix. Every
// registered workload scenario runs unchanged on any runtime with any
// mechanism:
//
//	loadex run -scenario burst -mech snapshot -runtime sim
//	loadex run -scenario all -mech all -runtime net -inproc
//	loadex run -scenario all -mech all -runtime all
//
// Each cell prints one row of message/selection statistics. The sim
// runtime is the deterministic discrete-event simulator, live is
// goroutines+channels, net is localhost TCP (forked OS processes by
// default, -inproc for goroutine-hosted sockets).

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/live"
	xnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runtimeNames lists the runtimes `loadex run` can target.
func runtimeNames() []string { return []string{"sim", "live", "net"} }

func runRun(args []string) (retErr error) {
	fs := flag.NewFlagSet("loadex run", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	var prof profileFlags
	prof.register(fs)
	procs := fs.Int("procs", 0, "number of processes (alias for -n)")
	runtime := fs.String("runtime", "sim", "runtime: "+strings.Join(runtimeNames(), "|")+"|all")
	inproc := fs.Bool("inproc", false, "net runtime: run the nodes in-process (same TCP sockets, no fork)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		p.procs = *procs
	}
	if p.masters > p.procs {
		p.masters = p.procs
	}
	if err := p.validate(true); err != nil {
		return err
	}
	if err := p.singleTerm("loadex run"); err != nil {
		return err
	}
	if err := p.singleChaos("loadex run"); err != nil {
		return err
	}
	if err := p.singleTopo("loadex run"); err != nil {
		return err
	}
	runtimes, scenarios, mechs, err := expandAxes(*runtime, &p)
	if err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	// -obs on the matrix runner serves /healthz and live /debug/pprof for
	// the sweep's duration (per-rank /metrics live on `loadex node` and
	// `loadex serve`, which own long-lived nodes to register).
	if p.obsAddr != "" {
		reg := obs.NewRegistry()
		srv, err := obs.ServeHTTP(p.obsAddr, reg.Gather, func() obs.Health {
			return obs.Health{Rank: -1, Procs: p.procs}
		})
		if err != nil {
			return err
		}
		fmt.Printf("OBS %s\n", srv.Addr())
		defer srv.Close()
	}

	// Visit every cell even when one fails: an `all` sweep must report
	// which cells broke, not abort on (or worse, report only) the last
	// one, and must exit non-zero if any did.
	var failed []experiments.CellError
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tmech\truntime\tprocs\tdecisions\texecuted\tupdates\treservations\tsnapshots\trestarts\twire_msgs\twire_bytes\telapsed")
	for _, scenario := range scenarios {
		for _, mech := range mechs {
			for _, rt := range runtimes {
				rep, err := runCell(scenario, mech, rt, *inproc, &p)
				if err != nil {
					cell := experiments.Cell{Scenario: scenario, Mech: string(mech), Runtime: rt}
					failed = append(failed, experiments.CellError{Cell: cell, Err: err})
					fmt.Fprintf(tw, "%s\t%s\t%s\tFAILED: %v\n", scenario, mech, rt, err)
					continue
				}
				writeRunRow(tw, rep)
			}
		}
	}
	tw.Flush()
	return failedCellsError(failed)
}

func isRuntime(name string) bool {
	for _, r := range runtimeNames() {
		if r == name {
			return true
		}
	}
	return false
}

// runCell executes one scenario × mechanism × runtime cell, wiring the
// cell's chaos plan into whichever fault layer the runtime carries (the
// simulated network, the live host, the TCP fault writer) and — when
// tracing — recording the run for `loadex validate`.
func runCell(scenario string, mech core.Mech, rt string, inproc bool, p *nodeParams) (*workload.Report, error) {
	w, err := workload.Get(scenario)
	if err != nil {
		return nil, err
	}
	plan := p.chaosPlan()
	isApp := workload.IsAppScenario(scenario)
	params := p.params()
	drive := p.driveOptions()

	// Recording surface per cell kind: application scenarios trace
	// through the workload.Recorded wrapper on every runtime; program
	// scenarios only on the net runtime (its transport carries the
	// hooks). Program cells on sim/live have no trace hooks — recording
	// just finals there would be indistinguishable from a run that lost
	// every event, so they stay untraced.
	var rec *chaos.Recorder
	if p.traceDir != "" && (isApp || rt == "net") && !(rt == "net" && !inproc) {
		q := *p
		q.traceDir = filepath.Join(p.traceDir, cellDirName(scenario, string(mech), rt, p.term))
		rec, err = q.openInProcRecorder()
		if err != nil {
			return nil, err
		}
		defer rec.Close()
		if isApp {
			params.Record = rec
		}
	}
	switch rt {
	case "sim":
		d := sim.NewWorkloadDriver()
		d.Network.Chaos = plan
		return d.Run(w, mech, p.config(), params)
	case "live":
		if plan != nil && !isApp {
			return nil, fmt.Errorf("chaos plans only apply to application scenarios on the live runtime (program cells: use sim or net)")
		}
		d := live.Driver{Drive: drive}
		d.App.Chaos = plan
		return d.Run(w, mech, p.config(), params)
	case "net":
		if inproc {
			codec, err := xnet.NewCodec(p.codec)
			if err != nil {
				return nil, err
			}
			opts := xnet.Options{Codec: codec, Chaos: plan}
			if !isApp {
				opts.Rec = rec
			}
			rep, err := xnet.Driver{Opts: opts, Drive: drive}.Run(w, mech, p.config(), params)
			if err == nil && !isApp {
				for r, ex := range rep.Executed {
					rec.Record(chaos.Event{Ev: chaos.EvFinal, Rank: r, Executed: ex})
				}
			}
			return rep, err
		}
		// Forked: one OS process per rank — program scenarios walk their
		// compiled programs, application scenarios host one rank of the
		// app each with detector-driven quiescence.
		return runCellForked(scenario, mech, p)
	}
	return nil, fmt.Errorf("unknown runtime %q", rt)
}

// cellDirName names one cell's trace subdirectory (the validator
// treats each directory holding *.jsonl files as one run).
func cellDirName(scenario, mech, rt, term string) string {
	name := scenario + "-" + mech + "-" + rt
	if term != "" && term != "all" {
		name += "-" + term
	}
	return name
}

// runCellForked runs one net cell as forked OS processes, folding the
// per-rank STATS reports into a matrix report.
func runCellForked(scenario string, mech core.Mech, p *nodeParams) (*workload.Report, error) {
	q := *p
	q.scenario, q.mech = scenario, string(mech)
	if p.traceDir != "" {
		q.traceDir = filepath.Join(p.traceDir, cellDirName(scenario, string(mech), "net", p.term))
	}
	start := time.Now()
	stats, err := runClusterForked(&q)
	if err != nil {
		return nil, err
	}
	rep := &workload.Report{
		Scenario: scenario,
		Runtime:  "net",
		Mech:     mech,
		Procs:    q.procs,
		Elapsed:  time.Since(start),
	}
	for _, s := range stats {
		rep.DecisionsTaken += s.Decisions
		rep.Executed = append(rep.Executed, s.Executed)
		rep.Stats = append(rep.Stats, s.Mech)
		rep.Counters.Merge(s.Counters)
		rep.WireMsgs += s.Transport.MsgsIn
		rep.WireBytes += s.Transport.BytesIn
	}
	return rep, nil
}

// writeRunRow prints one matrix cell.
func writeRunRow(tw *tabwriter.Writer, rep *workload.Report) {
	st := rep.TotalStats()
	fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
		rep.Scenario, rep.Mech, rep.Runtime, rep.Procs,
		rep.DecisionsTaken, rep.TotalExecuted(),
		st.UpdatesSent, st.ReservationsSent,
		st.SnapshotsInitiated, st.SnapshotRestarts,
		rep.WireMsgs, rep.WireBytes,
		rep.Elapsed.Round(time.Millisecond))
}
