package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// AppRunner implements workload.AppRunner over real goroutines and
// channels: the live side of the application port. Each rank runs one
// Algorithm 1 loop on its own goroutine — prioritized state channel,
// data channel, Blocked gating, deferred compute as real (scaled)
// sleeps — while application callbacks are serialized by one lock, per
// the port's execution model. Quiescence is detected by outstanding-
// work tracking: the run ends once the application reports Done and
// every data message sent has been handled.
type AppRunner struct {
	// TimeScale is the wall-clock duration of one application second of
	// compute (default 1: application seconds are wall seconds; the
	// solver's virtual makespans are milliseconds, so default runs stay
	// fast). Lower it to compress long virtual runs into short wall
	// clock.
	TimeScale float64
	// Timeout bounds the whole run (default 120s).
	Timeout time.Duration
}

// Runtime implements workload.AppRunner.
func (*AppRunner) Runtime() string { return "live" }

// RunApp implements workload.AppRunner.
func (r *AppRunner) RunApp(n int, app workload.App, opts workload.AppRunOptions) (*workload.AppReport, error) {
	scale := r.TimeScale
	if scale <= 0 {
		scale = 1
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	h := &liveAppHost{
		app:      app,
		opts:     opts,
		scale:    scale,
		start:    time.Now(),
		ranks:    make([]liveAppRank, n),
		counters: make([]core.Counters, n),
		busy:     make([]core.BusyMeter, n),
		doneCh:   make(chan struct{}),
		quit:     make(chan struct{}),
	}
	for i := range h.ranks {
		h.ranks[i] = liveAppRank{
			stateCh: make(chan liveStateMsg, 1<<16),
			dataCh:  make(chan liveDataMsg, 1<<14),
			wakeCh:  make(chan struct{}, 1),
		}
	}
	h.mu.Lock()
	err := app.Attach(h)
	if err == nil {
		h.checkQuiet()
	}
	h.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			h.runRank(rank)
		}(rank)
	}
	var runErr error
	select {
	case <-h.doneCh:
	case <-time.After(timeout):
		// Diagnose from the atomics only: a wedged callback may hold
		// h.mu forever, and the timeout guard must still report.
		runErr = fmt.Errorf("live: application not quiescent after %s (data %d sent / %d handled)",
			timeout, h.dataSent.Load(), h.dataDone.Load())
	}
	// Sample the makespan at quiescence, before loop teardown.
	elapsed := time.Since(h.start).Seconds()
	close(h.quit)
	wg.Wait()
	rep := h.report()
	rep.Time = elapsed
	return rep, runErr
}

// liveStateMsg is one state-channel item; liveDataMsg one data-channel
// item.
type liveStateMsg struct {
	from, kind int
	payload    any
}

type liveDataMsg struct {
	from int
	m    workload.DataMsg
}

// liveAppRank is one rank's hosting state. pending is only touched by
// the rank's own goroutine (Compute is called from the rank's own
// callbacks, per the port's callback discipline).
type liveAppRank struct {
	stateCh chan liveStateMsg
	dataCh  chan liveDataMsg
	wakeCh  chan struct{}
	pending *liveCompute
}

type liveCompute struct {
	seconds float64
	done    func()
}

// liveAppHost hosts one App over goroutines.
type liveAppHost struct {
	app   workload.App
	opts  workload.AppRunOptions
	scale float64
	start time.Time

	// mu serializes every application callback (and the send tallies,
	// since sends only happen inside callbacks).
	mu       sync.Mutex
	ranks    []liveAppRank
	counters []core.Counters
	busy     []core.BusyMeter

	dataSent, dataDone atomic.Int64
	doneCh             chan struct{}
	doneOnce           sync.Once
	quit               chan struct{}
}

// ---- workload.AppHost ---------------------------------------------------

func (h *liveAppHost) N() int                        { return len(h.ranks) }
func (h *liveAppHost) Now() float64                  { return time.Since(h.start).Seconds() }
func (h *liveAppHost) Context(rank int) core.Context { return liveAppCtx{h, rank} }

func (h *liveAppHost) SendData(from, to int, m workload.DataMsg) {
	h.counters[from].AddData(m.Bytes)
	h.dataSent.Add(1)
	// The send runs under the callback mutex; the receiver's buffer
	// (16k messages) is the deadlock guard, as in live.Cluster. In-
	// process application scale keeps traffic orders of magnitude
	// below it; revisit before hosting much larger task graphs.
	h.ranks[to].dataCh <- liveDataMsg{from: from, m: m}
}

func (h *liveAppHost) Compute(rank int, seconds float64, done func()) {
	rk := &h.ranks[rank]
	if rk.pending != nil {
		panic(fmt.Sprintf("live: rank %d started a task while busy", rank))
	}
	rk.pending = &liveCompute{seconds: seconds * h.opts.SpeedOf(rank), done: done}
}

func (h *liveAppHost) Wake(rank int) {
	select {
	case h.ranks[rank].wakeCh <- struct{}{}:
	default:
	}
}

// liveAppCtx is one rank's core.Context: mechanism sends on the
// prioritized state channel, charged at the modeled byte sizes.
type liveAppCtx struct {
	h    *liveAppHost
	rank int
}

func (c liveAppCtx) Rank() int    { return c.rank }
func (c liveAppCtx) N() int       { return c.h.N() }
func (c liveAppCtx) Now() float64 { return c.h.Now() }

func (c liveAppCtx) Send(to int, kind int, payload any, bytes float64) {
	c.h.counters[c.rank].AddState(kind, bytes)
	c.h.ranks[to].stateCh <- liveStateMsg{from: c.rank, kind: kind, payload: payload}
}

func (c liveAppCtx) Broadcast(kind int, payload any, bytes float64) {
	for to := range c.h.ranks {
		if to != c.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

// ---- rank main loop -----------------------------------------------------

// runRank is rank's Algorithm 1 loop: pending compute first (a task the
// application just started runs immediately, as on the simulator), then
// the prioritized state channel, Blocked gating, data messages, and
// finally TryStart; it blocks when nothing is available.
func (h *liveAppHost) runRank(rank int) {
	rk := &h.ranks[rank]
	for {
		select {
		case <-h.quit:
			return
		default:
		}
		if p := rk.pending; p != nil {
			rk.pending = nil
			h.sleep(p.seconds)
			h.mu.Lock()
			p.done()
			h.checkQuiet()
			h.mu.Unlock()
			continue
		}
		// Priority 1: drain state-information messages.
		if m, ok := h.pollState(rk); ok {
			h.handleState(rank, m)
			continue
		}
		h.mu.Lock()
		blocked := h.app.Blocked(rank)
		h.mu.Unlock()
		if blocked {
			// Snapshot in progress: treat only state messages.
			select {
			case m := <-rk.stateCh:
				h.handleState(rank, m)
			case <-h.quit:
				return
			}
			continue
		}
		// Priority 2: data messages.
		select {
		case m := <-rk.dataCh:
			h.handleData(rank, m)
			continue
		default:
		}
		// Priority 3: local ready tasks. TryStart can open a snapshot
		// (Acquire broadcast → Blocked), so the busy meter observes
		// here too — otherwise the request-to-first-reply interval
		// would be dropped from BusyTime (the simulator host meters
		// this transition as well).
		h.mu.Lock()
		started := h.app.TryStart(rank)
		h.busy[rank].Observe(h.app.Blocked(rank))
		h.mu.Unlock()
		if started {
			continue
		}
		select {
		case m := <-rk.stateCh:
			h.handleState(rank, m)
		case m := <-rk.dataCh:
			h.handleData(rank, m)
		case <-rk.wakeCh:
		case <-h.quit:
			return
		}
	}
}

func (h *liveAppHost) pollState(rk *liveAppRank) (liveStateMsg, bool) {
	select {
	case m := <-rk.stateCh:
		return m, true
	default:
		return liveStateMsg{}, false
	}
}

func (h *liveAppHost) handleState(rank int, m liveStateMsg) {
	h.mu.Lock()
	h.app.HandleState(rank, m.from, m.kind, m.payload)
	h.busy[rank].Observe(h.app.Blocked(rank))
	h.checkQuiet()
	h.mu.Unlock()
}

func (h *liveAppHost) handleData(rank int, m liveDataMsg) {
	h.mu.Lock()
	h.app.HandleData(rank, m.from, m.m)
	h.dataDone.Add(1)
	h.checkQuiet()
	h.mu.Unlock()
}

// sleep spends one compute interval of wall clock, bounded by quit so
// shutdown is prompt.
func (h *liveAppHost) sleep(seconds float64) {
	d := time.Duration(seconds * h.scale * float64(time.Second))
	if d <= 0 {
		return
	}
	select {
	case <-time.After(d):
	case <-h.quit:
	}
}

// checkQuiet closes doneCh once the application is Done and every data
// message has been handled (outstanding-work quiescence). Callers hold
// mu.
func (h *liveAppHost) checkQuiet() {
	if h.app.Done() && h.dataSent.Load() == h.dataDone.Load() {
		h.doneOnce.Do(func() { close(h.doneCh) })
	}
}

// report aggregates the per-rank transport tallies.
func (h *liveAppHost) report() *workload.AppReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := &workload.AppReport{Time: time.Since(h.start).Seconds()}
	for r := range h.counters {
		c := h.counters[r].Clone()
		c.BusyTime = h.busy[r].Seconds
		rep.Counters.Merge(c)
	}
	return rep
}
