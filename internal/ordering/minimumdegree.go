package ordering

import (
	"math"
	"sort"

	"repro/internal/sparse"
)

// MinimumDegree computes a fill-reducing elimination order using a
// quotient-graph multiple-minimum-degree algorithm with element
// absorption, outmatched-element absorption, supervariable merging
// (indistinguishable-node detection by hashing) and dense-row postponement
// — the standard ingredients of AMD-family codes. Degrees are weighted by
// supervariable sizes and computed with the AMD bound
//
//	d(v) = |A_v \ Lp| + |Lp \ v| + Σ_{e ∈ E_v} |L_e \ Lp|
//
// which is exact when v touches at most two elements.
func MinimumDegree(g *sparse.Graph) Perm {
	n := g.N
	if n == 0 {
		return Perm{}
	}

	const (
		stLive int8 = iota
		stElem      // eliminated: the vertex now names an element
		stMerged
		stDense
	)
	state := make([]int8, n)
	size := make([]int32, n) // supervariable weights
	// adjVar[v]: explicit variable adjacency (may contain stale entries,
	// filtered by state on read). For an element e, adjVar[e] is L_e.
	adjVar := make([][]int32, n)
	adjEl := make([][]int32, n)
	deg := make([]int32, n)
	absorbed := make([]bool, n) // element absorbed into a newer element

	// Supervariable member chains: firstMember/nextMember form a linked
	// list of original vertices represented by a live head.
	nextMember := make([]int32, n)
	lastMember := make([]int32, n)
	for v := range nextMember {
		nextMember[v] = -1
		lastMember[v] = int32(v)
		size[v] = 1
	}

	for v := 0; v < n; v++ {
		a := g.AdjOf(v)
		adjVar[v] = append([]int32(nil), a...)
		deg[v] = int32(len(a))
	}

	// Degree buckets (doubly linked lists).
	head := make([]int32, n+1)
	next := make([]int32, n)
	prev := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	inBucket := make([]bool, n)
	insert := func(v int32) {
		d := deg[v]
		next[v] = head[d]
		prev[v] = -1
		if head[d] >= 0 {
			prev[head[d]] = v
		}
		head[d] = v
		inBucket[v] = true
	}
	remove := func(v int32) {
		if !inBucket[v] {
			return
		}
		if prev[v] >= 0 {
			next[prev[v]] = next[v]
		} else {
			head[deg[v]] = next[v]
		}
		if next[v] >= 0 {
			prev[next[v]] = prev[v]
		}
		inBucket[v] = false
	}

	// Dense-row postponement: rows denser than the AMD-style threshold
	// are ordered last; they would otherwise dominate the quotient graph.
	densTh := int32(math.Max(16, 10*math.Sqrt(float64(n))))
	var dense []int32
	liveOrig := 0
	for v := int32(0); v < int32(n); v++ {
		if deg[v] > densTh {
			state[v] = stDense
			dense = append(dense, v)
			continue
		}
		insert(v)
		liveOrig++
	}

	mark := make([]int32, n)
	var stamp int32 = 1
	w := make([]int32, n) // |L_e \ Lp| counters, -1 = untouched
	for i := range w {
		w[i] = -1
	}

	order := make(Perm, 0, n)
	emit := func(v int32) {
		for m := v; m >= 0; m = nextMember[m] {
			order = append(order, m)
		}
	}

	curMin := int32(0)
	var lp []int32
	var touched []int32

	for liveOrig > 0 {
		// Pop the minimum-degree live variable.
		var p int32 = -1
		for curMin <= int32(n) {
			if h := head[curMin]; h >= 0 {
				p = h
				break
			}
			curMin++
		}
		if p < 0 {
			break // only dense vertices remain
		}
		remove(p)

		// Build Lp = reachable live variables through A_p and adjacent
		// elements.
		stamp++
		mark[p] = stamp
		lp = lp[:0]
		lpWeight := int32(0)
		for _, u := range adjVar[p] {
			if state[u] == stLive && mark[u] != stamp {
				mark[u] = stamp
				lp = append(lp, u)
				lpWeight += size[u]
			}
		}
		for _, e := range adjEl[p] {
			if state[e] != stElem || absorbed[e] {
				continue
			}
			for _, u := range adjVar[e] {
				if state[u] == stLive && mark[u] != stamp {
					mark[u] = stamp
					lp = append(lp, u)
					lpWeight += size[u]
				}
			}
			absorbed[e] = true // element absorption
		}

		// p becomes an element with variable list Lp.
		state[p] = stElem
		adjVar[p] = append(adjVar[p][:0], lp...)
		adjEl[p] = nil
		emit(p)
		liveOrig -= int(size[p])

		// First pass: w[e] = |L_e \ Lp| (weighted) for every element
		// touching Lp; compact stale entries out of L_e on first touch.
		touched = touched[:0]
		for _, v := range lp {
			for _, e := range adjEl[v] {
				if state[e] != stElem || absorbed[e] || e == p {
					continue
				}
				if w[e] < 0 {
					le := adjVar[e][:0]
					var wl int32
					for _, u := range adjVar[e] {
						if state[u] == stLive {
							le = append(le, u)
							wl += size[u]
						}
					}
					adjVar[e] = le
					w[e] = wl
					touched = append(touched, e)
				}
				w[e] -= size[v]
			}
		}
		// Outmatched elements: L_e ⊆ Lp ⇒ absorb into p.
		for _, e := range touched {
			if w[e] == 0 {
				absorbed[e] = true
			}
		}

		// Second pass: prune lists and recompute degrees of Lp members.
		for _, v := range lp {
			av := adjVar[v][:0]
			var avW int32
			for _, u := range adjVar[v] {
				if state[u] == stLive && mark[u] != stamp { // drops Lp members and p
					av = append(av, u)
					avW += size[u]
				}
			}
			adjVar[v] = av
			ev := adjEl[v][:0]
			var elW int32
			for _, e := range adjEl[v] {
				if state[e] == stElem && !absorbed[e] && e != p {
					ev = append(ev, e)
					if w[e] > 0 {
						elW += w[e]
					}
				}
			}
			ev = append(ev, p)
			adjEl[v] = ev

			d := avW + (lpWeight - size[v]) + elW
			if max := int32(liveOrig) - size[v]; d > max {
				d = max
			}
			if d < 0 {
				d = 0
			}
			remove(v)
			deg[v] = d
			insert(v)
			if d < curMin {
				curMin = d
			}
		}

		// Supervariable detection: group Lp members by a cheap adjacency
		// hash, then confirm by exact comparison and merge.
		if len(lp) > 1 {
			type hv struct {
				h uint64
				v int32
			}
			hs := make([]hv, 0, len(lp))
			for _, v := range lp {
				if state[v] != stLive {
					continue
				}
				var h uint64 = 1469598103934665603
				for _, u := range adjVar[v] {
					h = (h ^ uint64(u)) * 1099511628211
				}
				var eh uint64
				for _, e := range adjEl[v] {
					eh += uint64(e)*2654435761 + 0x9e37
				}
				hs = append(hs, hv{h + eh, v})
			}
			sort.Slice(hs, func(i, j int) bool { return hs[i].h < hs[j].h })
			for i := 0; i < len(hs); {
				j := i + 1
				for j < len(hs) && hs[j].h == hs[i].h {
					j++
				}
				for a := i; a < j; a++ {
					va := hs[a].v
					if state[va] != stLive {
						continue
					}
					for b := a + 1; b < j; b++ {
						vb := hs[b].v
						if state[vb] != stLive {
							continue
						}
						if sameAdjacency(adjVar[va], adjVar[vb], adjEl[va], adjEl[vb]) {
							// Merge vb into va.
							remove(vb)
							state[vb] = stMerged
							nextMember[lastMember[va]] = vb
							lastMember[va] = lastMember[vb]
							size[va] += size[vb]
							d := deg[va] - size[vb]
							if d < 0 {
								d = 0
							}
							remove(va)
							deg[va] = d
							insert(va)
							if d < curMin {
								curMin = d
							}
						}
					}
				}
				i = j
			}
		}

		// Reset w for the touched elements.
		for _, e := range touched {
			w[e] = -1
		}
	}

	// Dense vertices last, lowest original degree first.
	sort.Slice(dense, func(i, j int) bool {
		return g.Degree(int(dense[i])) < g.Degree(int(dense[j]))
	})
	for _, v := range dense {
		order = append(order, v)
	}
	return order
}

// sameAdjacency reports whether two variables have identical pruned
// adjacency (both variable and element lists). Lists are small; sorting
// in place is fine because order within them is not semantically
// significant.
func sameAdjacency(avA, avB, elA, elB []int32) bool {
	if len(avA) != len(avB) || len(elA) != len(elB) {
		return false
	}
	sortInt32(avA)
	sortInt32(avB)
	for i := range avA {
		if avA[i] != avB[i] {
			return false
		}
	}
	sortInt32(elA)
	sortInt32(elB)
	for i := range elA {
		if elA[i] != elB[i] {
			return false
		}
	}
	return true
}

func sortInt32(a []int32) {
	if len(a) < 2 {
		return
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
