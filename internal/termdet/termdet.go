// Package termdet implements distributed termination detection — the
// quiescence subsystem behind the paper's Algorithm 1, which runs
// "while global termination not detected". MUMPS relies on a real
// termination detector to know when the last task and the last
// in-flight message are gone; the hosts of the application port
// (sim.AppRunner, live.AppRunner, net.AppRunner) use the protocols here
// instead of host-side outstanding-work counters, so the same
// quiescence decision is taken whether the ranks share a process, a
// machine, or only a network.
//
// Like the load-exchange mechanisms in internal/core, detection
// protocols are transport-agnostic state machines selectable by name:
// they interact with the world only through the Context interface
// (small control frames: engagement acknowledgments, probe tokens, the
// termination announcement) and never block, so one implementation runs
// unchanged over the deterministic simulator, the goroutine runtime and
// real TCP sockets.
//
// Two protocols ship:
//
//   - "ds" (Dijkstra–Scholten, default): an engagement tree rooted at
//     rank 0. Every application message carries an implicit engagement
//     and must eventually be acknowledged; a process detaches (acks its
//     parent) only when passive with no unacknowledged sends. One ack
//     per application message.
//   - "safra": Safra's probe (EWD 998): a token circulates the ring
//     accumulating per-process send/receive counters and a
//     white/black color; rank 0 concludes termination from a clean
//     white round with a zero global count. O(n) control messages per
//     probe round, none per application message.
//
// Both support computations that start active on every rank (the
// port's Attach seeds work everywhere): DS engages all ranks under the
// root from the start, Safra is insensitive to the initial activity
// pattern. On detection the detecting rank (always rank 0) broadcasts a
// CtrlTerm frame so every process — in particular forked `loadex node`
// processes that share nothing but sockets — observes termination
// locally through Terminated.
package termdet

import (
	"fmt"
	"strings"
)

// Control-frame kinds. They travel a dedicated control channel (a
// third channel class beside state and data) so they bypass the
// application's Blocked gating: a snapshot-blocked process still
// acknowledges and forwards.
const (
	// CtrlAck is a Dijkstra–Scholten acknowledgment: one per
	// application message (deferred on the engagement edge).
	CtrlAck = 1 + iota
	// CtrlToken is Safra's probe token (Count accumulates the
	// send/receive balance, Black the round's taint).
	CtrlToken
	// CtrlTerm announces global termination, broadcast by the
	// detecting rank so every process unblocks locally.
	CtrlTerm
)

// CtrlName returns a short name for a control-frame kind.
func CtrlName(kind int32) string {
	switch kind {
	case CtrlAck:
		return "ack"
	case CtrlToken:
		return "token"
	case CtrlTerm:
		return "term"
	}
	return fmt.Sprintf("ctrl(%d)", kind)
}

// Ctrl is one flattened control frame, codec-encodable like
// workload.DataMsg: a kind tag plus the token fields (zero for acks and
// the termination announcement).
type Ctrl struct {
	// Kind is the control-frame kind (CtrlAck, CtrlToken, CtrlTerm).
	Kind int32 `json:"kind"`
	// Count is the Safra token's accumulated message-count balance.
	Count int32 `json:"count,omitempty"`
	// Black is the Safra token's color (a receive happened since the
	// holder was last whitened).
	Black bool `json:"black,omitempty"`
}

// Context is the protocol's window on the transport: SendCtrl must
// deliver a control frame to the peer's protocol instance,
// asynchronously and (per ordered pair) in FIFO order. Implementations
// exist in every runtime host.
type Context interface {
	// Rank is the owning process.
	Rank() int
	// N is the cluster size.
	N() int
	// SendCtrl ships one control frame to rank `to`.
	SendCtrl(to int, c Ctrl)
}

// Protocol is a per-process termination-detection state machine. All
// methods must be called from the owning process only (its hosting
// goroutine or event context); protocols never block.
//
// The host's obligations:
//
//   - call OnSend for every application (data-channel) message sent,
//     before it can be received, and OnReceive for every one received,
//     before processing it — including self-sends (tracked internally,
//     no control traffic);
//   - call OnCtrl for every inbound control frame, even while the
//     application is Blocked;
//   - call Passive exactly when the process has nothing left to do: no
//     task running or pending, no queued messages, not blocked on a
//     snapshot, and the application's TryStart declined. Passive may be
//     called repeatedly while nothing changes (idempotent), and a later
//     OnReceive makes the process active again;
//   - stop the rank loop once Terminated reports true.
type Protocol interface {
	// Name identifies the protocol on the command line.
	Name() string
	// OnSend records one application message sent to `to`.
	OnSend(ctx Context, to int)
	// OnReceive records one application message received from `from`,
	// marking the process active.
	OnReceive(ctx Context, from int)
	// OnCtrl processes one inbound control frame.
	OnCtrl(ctx Context, from int, c Ctrl)
	// Passive declares local quiescence (see the host obligations).
	Passive(ctx Context)
	// Terminated reports whether global termination is known at this
	// process: detected here (rank 0) or announced by a CtrlTerm frame.
	Terminated() bool
}

// The registered protocol names.
const (
	// ProtocolDS is the Dijkstra–Scholten engagement tree (default).
	ProtocolDS = "ds"
	// ProtocolSafra is Safra's token probe.
	ProtocolSafra = "safra"
)

// Default is the protocol used when none is named.
const Default = ProtocolDS

// Names lists the registered protocol names for usage messages and
// sweeps, detection-cost order (per-message ack protocol first).
func Names() []string { return []string{ProtocolDS, ProtocolSafra} }

// Describe returns a one-line description of a registered protocol for
// catalogues (`loadex list` prints every name through this, so a new
// protocol is discoverable the moment it is registered).
func Describe(name string) string {
	switch name {
	case ProtocolDS:
		return "Dijkstra–Scholten engagement tree: one ack per data message, fastest detection (default)"
	case ProtocolSafra:
		return "Safra's probe: a counting token circles the ring, nothing per message"
	}
	return ""
}

// Valid reports whether name is a registered protocol name (or empty,
// selecting Default) — flag validation without instantiating a
// protocol.
func Valid(name string) bool {
	if name == "" {
		return true
	}
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New constructs the named protocol for a process of rank within n.
// An empty name selects Default.
func New(name string, n, rank int) (Protocol, error) {
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("termdet: rank %d out of range [0,%d)", rank, n)
	}
	switch name {
	case "", ProtocolDS:
		return newDS(n, rank), nil
	case ProtocolSafra:
		return newSafra(n, rank), nil
	}
	return nil, fmt.Errorf("termdet: unknown protocol %q (available: %s)",
		name, strings.Join(Names(), ", "))
}

// announce broadcasts the termination announcement to every other rank.
// Both protocols call it exactly once, from rank 0, at detection.
func announce(ctx Context) {
	for to := 0; to < ctx.N(); to++ {
		if to != ctx.Rank() {
			ctx.SendCtrl(to, Ctrl{Kind: CtrlTerm})
		}
	}
}
