package chaos

import (
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestGetRegistry(t *testing.T) {
	for _, name := range []string{"", "none"} {
		p, err := Get(name)
		if p != nil || err != nil {
			t.Fatalf("Get(%q) = %v, %v; want nil, nil", name, p, err)
		}
	}
	if !(*Plan)(nil).Active() {
		// nil plan must read as inactive everywhere.
	} else {
		t.Fatalf("nil plan reports Active")
	}
	names := Names()
	if len(names) == 0 {
		t.Fatalf("empty plan registry")
	}
	for _, name := range names {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if !p.Active() {
			t.Errorf("registry plan %q injects nothing", name)
		}
		if Describe(name) == "" {
			t.Errorf("registry plan %q has no description", name)
		}
		// Get hands out copies: mutating one must not leak into the next.
		p.Delay = 42
		q, _ := Get(name)
		if q.Delay == 42 {
			t.Errorf("Get(%q) aliases registry storage", name)
		}
	}
	if _, err := Get("bogus"); err == nil || !strings.Contains(err.Error(), "delay") {
		t.Fatalf("Get(bogus) = %v; want an error listing the registry", err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	p := &Plan{Seed: 7}
	a, b := p.RNGFor(3, 5), p.RNGFor(3, 5)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same site diverges at draw %d: %d vs %d", i, x, y)
		}
	}
	if p.RNGFor(3, 5).Uint64() == p.RNGFor(5, 3).Uint64() {
		t.Fatalf("site coordinates (3,5) and (5,3) derive the same stream")
	}
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestPlanPredicates(t *testing.T) {
	p := &Plan{Seed: 1, SlowRank: 2, SlowDelay: 0.001, CrashRank: 1, CrashAfter: 0.5, Loss: 1, Delay: 0.002}
	if !p.Crashes(1) || p.Crashes(0) {
		t.Fatalf("Crashes selects the wrong rank")
	}
	if p.CrashedAt(0.4, 1, 3) {
		t.Fatalf("link died before CrashAfter")
	}
	if !p.CrashedAt(0.6, 1, 3) || !p.CrashedAt(0.6, 3, 1) {
		t.Fatalf("links touching the crashed rank must die after CrashAfter")
	}
	if p.CrashedAt(0.6, 0, 3) {
		t.Fatalf("link not touching the crashed rank died")
	}
	if !p.SlowsLink(2, 0) || !p.SlowsLink(0, 2) || p.SlowsLink(0, 1) {
		t.Fatalf("SlowsLink selects the wrong links")
	}
	rng := NewRNG(1)
	if !p.Drops(ClassState, rng) {
		t.Fatalf("Loss=1 must drop every state message")
	}
	if p.Drops(ClassData, rng) || p.Drops(ClassCtrl, rng) || p.Drops(ClassOther, rng) {
		t.Fatalf("without LossData only state-class traffic may drop")
	}
	p.LossData = true
	if !p.Drops(ClassData, rng) {
		t.Fatalf("LossData must extend loss to data-class traffic")
	}
	if p.Drops(ClassCtrl, rng) {
		t.Fatalf("control traffic is never droppable")
	}
	for i := 0; i < 100; i++ {
		if d := p.DelayFor(rng); d < 0 || d >= p.Delay {
			t.Fatalf("DelayFor out of [0, Delay): %v", d)
		}
	}
	var nilPlan *Plan
	if nilPlan.Drops(ClassState, rng) || nilPlan.DelayFor(rng) != 0 {
		t.Fatalf("nil plan must inject nothing")
	}
}

func TestRecorderRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := []Event{
		{Ev: EvMeta, Rank: 0, N: 2, Scenario: "s", Mech: "m", Term: "ds", Plan: "delay"},
		{Ev: EvSend, Rank: 0, Peer: 1, Kind: 3, Node: 7, Count: 2, Work: 1.5, Size: 64},
		{Ev: EvRecv, Rank: 1, Peer: 0, Kind: 3, Node: 7, Count: 2, Work: 1.5, Size: 64},
		{Ev: EvStart, Rank: 1, Spin: 0.25},
		{Ev: EvDone, Rank: 1},
		{Ev: EvDecide, Rank: 0, View: []float64{3, 1}, Sel: []int{1}, Slaves: 1},
		{Ev: EvFinal, Rank: 1, Executed: 1},
	}
	path := filepath.Join(dir, "run", "rank-0.jsonl")
	rec, err := OpenRecorder(path)
	if err != nil {
		t.Fatalf("OpenRecorder: %v", err)
	}
	for _, e := range want {
		rec.Record(e)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got, err := ReadDir(filepath.Dir(path)); err != nil || len(got) != len(want) {
		t.Fatalf("ReadDir = %d events, %v; want %d, nil", len(got), err, len(want))
	}
	dirs, err := TraceDirs(dir)
	if err != nil || !reflect.DeepEqual(dirs, []string{filepath.Dir(path)}) {
		t.Fatalf("TraceDirs = %v, %v; want [%s]", dirs, err, filepath.Dir(path))
	}
	// A nil recorder must be a safe sink.
	var nilRec *Recorder
	nilRec.Record(want[0])
	if err := nilRec.Close(); err != nil {
		t.Fatalf("nil recorder Close: %v", err)
	}
}

// cleanRun is a minimal 2-rank trace satisfying every invariant.
func cleanRun() []Event {
	return []Event{
		{Ev: EvMeta, N: 2, Scenario: "s", Mech: "m"},
		{Ev: EvSend, Rank: 0, Peer: 1, Kind: 1, Work: 2},
		{Ev: EvRecv, Rank: 1, Peer: 0, Kind: 1, Work: 2},
		{Ev: EvStart, Rank: 1, Spin: 0.5},
		{Ev: EvDone, Rank: 1},
		{Ev: EvDecide, Rank: 0, View: []float64{5, 1}, Sel: []int{1}},
		{Ev: EvFinal, Rank: 0, Executed: 0},
		{Ev: EvFinal, Rank: 1, Executed: 1},
	}
}

func violated(r *Report, check string) bool {
	for _, v := range r.Violations {
		if v.Check == check {
			return true
		}
	}
	return false
}

func TestValidateClean(t *testing.T) {
	r := Validate(cleanRun())
	if !r.OK() {
		t.Fatalf("clean run flagged: %v", r.Violations)
	}
	if r.N != 2 || r.Sends != 1 || r.Recvs != 1 || r.Starts != 1 || r.Dones != 1 || r.Decides != 1 || r.Finals != 2 {
		t.Fatalf("bad tallies: %+v", r)
	}
}

func TestValidateViolations(t *testing.T) {
	cases := []struct {
		name, check string
		mutate      func([]Event) []Event
	}{
		{"lost message", "conservation", func(e []Event) []Event {
			return append(e, Event{Ev: EvSend, Rank: 0, Peer: 1, Kind: 9})
		}},
		{"duplicated message", "conservation", func(e []Event) []Event {
			return append(e, Event{Ev: EvRecv, Rank: 1, Peer: 0, Kind: 1, Work: 2})
		}},
		{"forged payload", "conservation", func(e []Event) []Event {
			e[2].Work = 3 // received payload differs from the sent one
			return e
		}},
		{"unfinished compute", "compute", func(e []Event) []Event {
			return append(e, Event{Ev: EvStart, Rank: 0, Spin: 1})
		}},
		{"executed mismatch", "compute", func(e []Event) []Event {
			e[7].Executed = 5
			return e
		}},
		{"missing final", "quiescence", func(e []Event) []Event {
			return e[:7] // drop rank 1's final: a crashed rank
		}},
		{"double final", "quiescence", func(e []Event) []Event {
			return append(e, Event{Ev: EvFinal, Rank: 1, Executed: 1})
		}},
		{"unknown event", "quiescence", func(e []Event) []Event {
			return append(e, Event{Ev: "bogus", Rank: 0})
		}},
		{"wrong selection", "selection", func(e []Event) []Event {
			e[5].View = []float64{1, 9, 5}
			e[5].Sel = []int{1} // rank 1 carries the heaviest load
			return e
		}},
		{"self selection", "selection", func(e []Event) []Event {
			e[5].Sel = []int{0}
			return e
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Validate(tc.mutate(cleanRun()))
			if r.OK() {
				t.Fatalf("violation not detected")
			}
			if !violated(r, tc.check) {
				t.Fatalf("want a %q violation, got %v", tc.check, r.Violations)
			}
		})
	}
}

func TestValidateEqualLoadInterchange(t *testing.T) {
	// Equal-load ranks are interchangeable: selecting rank 2 over the
	// canonical rank 1 is coherent when both carry the same load.
	e := cleanRun()
	e[5].View = []float64{9, 1, 1}
	e[5].Sel = []int{2}
	if r := Validate(e); !r.OK() {
		t.Fatalf("equal-load interchange flagged: %v", r.Violations)
	}
}

func TestLeastLoaded(t *testing.T) {
	view := []float64{5, 1, 3, 1, 4}
	if got := LeastLoaded(view, -1, 2); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("ties must break toward the lower rank: got %v", got)
	}
	if got := LeastLoaded(view, 1, 2); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("exclusion ignored: got %v", got)
	}
	if got := LeastLoaded(view, 0, 10); len(got) != 4 {
		t.Fatalf("k beyond the view must clamp: got %v", got)
	}
}

// TestLeastLoadedMatchesPlanDecision pins the validator's selection
// policy to the one the runtimes execute: if core.PlanDecision ever
// changes its tie-breaking or metric, this drift-detector fails.
func TestLeastLoadedMatchesPlanDecision(t *testing.T) {
	rng := NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		n := 2 + int(rng.Uint64()%14)
		master := int(rng.Uint64()) % n
		if master < 0 {
			master = -master
		}
		k := 1 + int(rng.Uint64()%uint64(n))
		view := make([]float64, n)
		loads := make([]core.Load, n)
		for i := range view {
			// Coarse grid so load ties actually occur.
			view[i] = float64(rng.Uint64() % 8)
			loads[i] = core.Load{view[i]}
		}
		d := core.PlanDecision(core.ViewOf(loads), master, k, 100)
		var got []int
		for _, a := range d.Assignments {
			got = append(got, int(a.Proc))
		}
		sort.Ints(got)
		want := LeastLoaded(view, master, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d master=%d k=%d view=%v: PlanDecision selected %v, chaos.LeastLoaded %v",
				n, master, k, view, got, want)
		}
	}
}
