package service

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestJobCountersMatchRegistry is the per-job accounting cross-check:
// over a multi-job run, the sum of each finished job's own counters
// (the JobPort view) must equal the service's merged job total, and the
// observability registry's service-level series must agree with the
// Metrics surface — two independent paths over the same run.
func TestJobCountersMatchRegistry(t *testing.T) {
	const jobs = 8
	s := newTestServer(t, core.MechIncrements, 4)
	ids := make([]int32, 0, jobs)
	for i := 0; i < jobs; i++ {
		id, err := s.Submit(JobSpec{Decisions: 2, Work: 50, Slaves: 2, Masters: 2})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	var perJob core.Counters
	for _, id := range ids {
		st, err := s.Result(id, time.Minute)
		if err != nil {
			t.Fatalf("result %d: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d state %s (err %q)", id, st.State, st.Err)
		}
		perJob.Merge(st.Counters)
	}
	m := s.Metrics()
	if m.Jobs.DataMsgs != perJob.DataMsgs || m.Jobs.DataBytes != perJob.DataBytes {
		t.Errorf("merged job data traffic %d msgs/%g bytes, per-job sum %d/%g",
			m.Jobs.DataMsgs, m.Jobs.DataBytes, perJob.DataMsgs, perJob.DataBytes)
	}
	if m.Jobs.CtrlMsgs != perJob.CtrlMsgs || m.Jobs.Decisions != perJob.Decisions {
		t.Errorf("merged job ctrl/decisions %d/%d, per-job sum %d/%d",
			m.Jobs.CtrlMsgs, m.Jobs.Decisions, perJob.CtrlMsgs, perJob.Decisions)
	}

	// Registry view: the same totals through the scrape path.
	vals := map[string]float64{}
	var makespanCount, queueWaitCount int64
	for _, smp := range obs.Merge(s.Registry().Gather()) {
		switch smp.Name {
		case "loadex_jobs_admitted_total", "loadex_jobs_completed_total",
			"loadex_jobs_failed_total", "loadex_jobs_running", "loadex_jobs_queued":
			vals[smp.Name] = smp.Value
		case "loadex_job_makespan_seconds":
			makespanCount = smp.Hist.Count()
		case "loadex_job_queue_wait_seconds":
			queueWaitCount = smp.Hist.Count()
		}
	}
	if vals["loadex_jobs_admitted_total"] != jobs || vals["loadex_jobs_completed_total"] != float64(m.Completed) {
		t.Errorf("registry admitted/completed %g/%g, metrics %d/%d",
			vals["loadex_jobs_admitted_total"], vals["loadex_jobs_completed_total"], m.Admitted, m.Completed)
	}
	if vals["loadex_jobs_running"] != 0 || vals["loadex_jobs_queued"] != 0 {
		t.Errorf("registry shows %g running / %g queued after all results collected",
			vals["loadex_jobs_running"], vals["loadex_jobs_queued"])
	}
	if makespanCount != int64(m.Completed) {
		t.Errorf("makespan histogram holds %d samples, %d jobs completed", makespanCount, m.Completed)
	}
	if queueWaitCount != jobs {
		t.Errorf("queue-wait histogram holds %d samples, %d jobs started", queueWaitCount, jobs)
	}

	// The histogram digest surfaced by the metrics API matches the raw
	// makespan samples (same count; quantiles within bucket resolution).
	if m.Makespan.Count != int64(m.Completed) {
		t.Errorf("metrics makespan digest count %d, want %d", m.Makespan.Count, m.Completed)
	}
	if m.QueueWait.Count != jobs {
		t.Errorf("metrics queue-wait digest count %d, want %d", m.QueueWait.Count, jobs)
	}
	if m.Makespan.P50 <= 0 || m.Makespan.P99 < m.Makespan.P50 {
		t.Errorf("makespan digest inconsistent: %+v", m.Makespan)
	}
	// The digest and the legacy exact percentiles interpolate
	// differently (log-linear buckets vs sorted-sample rank), which
	// matters at these tiny sample counts — only pin the same order of
	// magnitude and the digest's own envelope.
	if m.Makespan.P50 < m.MakespanP50/2 || m.Makespan.P50 > m.MakespanP50*2 {
		t.Errorf("digest p50 %.6f not within 2x of exact %.6f", m.Makespan.P50, m.MakespanP50)
	}
	if m.Makespan.P50 < m.Makespan.Min || m.Makespan.P99 > m.Makespan.Max+1e-12 {
		t.Errorf("digest quantiles escape [min,max]: %+v", m.Makespan)
	}
}

// TestServiceJobSpans: with a recorder configured, every job leaves a
// balanced job.queued -> job.run span pair that the trace validator
// accepts.
func TestServiceJobSpans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svc.jsonl")
	rec, err := chaos.OpenRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Procs: 4, Mech: core.MechIncrements, MaxConcurrent: 2, Rec: rec})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	const jobs = 4
	for i := 0; i < jobs; i++ {
		id, err := s.Submit(JobSpec{Decisions: 2, Work: 40, Slaves: 2, Masters: 2})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if st, err := s.Result(id, time.Minute); err != nil || st.State != StateDone {
			t.Fatalf("result: %v (state %v)", err, st.State)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := chaos.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var begins, ends, queued, run int
	for _, ev := range evs {
		switch ev.Ev {
		case chaos.EvSpanBegin:
			begins++
			if ev.Span == "job.queued" {
				queued++
			}
		case chaos.EvSpanEnd:
			ends++
			if ev.Span == "job.run" {
				run++
			}
		}
	}
	if begins != ends || queued != jobs || run != jobs {
		t.Fatalf("spans unbalanced: %d begins / %d ends, %d queued / %d run (want %d each)",
			begins, ends, queued, run, jobs)
	}
}
