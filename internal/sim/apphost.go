package sim

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// AppRunner implements workload.AppRunner on the deterministic
// discrete-event simulator: the sim side of the application port. It
// reproduces exactly the runtime surface the solver used before the
// port existed — state sends become StateChannel messages, SendData
// becomes DataChannel messages carrying the flattened workload.DataMsg,
// Compute schedules a simulated task — so a hosted application behaves
// bit-for-bit like the old sim-wired code.
type AppRunner struct {
	// Network configures the simulated interconnect. The zero value
	// means DefaultNetwork().
	Network NetworkConfig
}

// Runtime implements workload.AppRunner.
func (*AppRunner) Runtime() string { return "sim" }

// RunApp implements workload.AppRunner: it drives the application's
// Algorithm 1 loops through the engine until the event queue drains.
func (r *AppRunner) RunApp(n int, app workload.App, opts workload.AppRunOptions) (*workload.AppReport, error) {
	net := r.Network
	if net == (NetworkConfig{}) {
		net = DefaultNetwork()
	}
	eng := NewEngine()
	eng.MaxSteps = opts.MaxSteps
	h := &appHost{app: app, opts: opts, busySince: make([]float64, n)}
	for i := range h.busySince {
		h.busySince[i] = -1
	}
	h.rt = NewRuntime(eng, n, net, h)
	h.rt.Threaded = opts.Threaded
	if opts.PollPeriod > 0 {
		h.rt.PollPeriod = Duration(opts.PollPeriod)
	}
	if err := app.Attach(h); err != nil {
		return nil, err
	}
	h.rt.Start()
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return h.report(), nil
}

// appHost adapts the simulator to workload.AppHost and the hosted
// application to sim.App.
type appHost struct {
	rt   *Runtime
	app  workload.App
	opts workload.AppRunOptions

	// busySince[r] is the virtual time rank r became Blocked, -1 when
	// it is not; busyTime accumulates the closed intervals.
	busySince []float64
	busyTime  float64
}

// ---- workload.AppHost ---------------------------------------------------

func (h *appHost) N() int                        { return len(h.rt.Procs) }
func (h *appHost) Now() float64                  { return float64(h.rt.Now()) }
func (h *appHost) Context(rank int) core.Context { return appCtx{h, rank} }
func (h *appHost) Wake(rank int)                 { h.rt.Wake(rank) }

func (h *appHost) SendData(from, to int, m workload.DataMsg) {
	h.rt.Send(&Message{
		From: from, To: to, Channel: DataChannel,
		Kind: int(m.Kind), Payload: m, Bytes: m.Bytes,
	})
}

func (h *appHost) Compute(rank int, seconds float64, done func()) {
	h.rt.Compute(h.rt.Procs[rank], Duration(seconds*h.opts.SpeedOf(rank)), done)
}

// appCtx is one rank's core.Context: mechanism sends on the prioritized
// state channel, exactly as the pre-port solver wired them.
type appCtx struct {
	h    *appHost
	rank int
}

func (c appCtx) Rank() int    { return c.rank }
func (c appCtx) N() int       { return c.h.N() }
func (c appCtx) Now() float64 { return c.h.Now() }

func (c appCtx) Send(to int, kind int, payload any, bytes float64) {
	c.h.rt.Send(&Message{
		From: c.rank, To: to, Channel: StateChannel,
		Kind: kind, Payload: payload, Bytes: bytes,
	})
}

func (c appCtx) Broadcast(kind int, payload any, bytes float64) {
	c.h.rt.Broadcast(c.rank, Message{
		Channel: StateChannel, Kind: kind, Payload: payload, Bytes: bytes,
	})
}

// ---- sim.App ------------------------------------------------------------

func (h *appHost) HandleState(p *Proc, m *Message) {
	h.app.HandleState(p.ID, m.From, m.Kind, m.Payload)
	h.busyCheck(p.ID)
}

func (h *appHost) HandleData(p *Proc, m *Message) {
	h.app.HandleData(p.ID, m.From, m.Payload.(workload.DataMsg))
}

func (h *appHost) TryStart(p *Proc) bool {
	started := h.app.TryStart(p.ID)
	h.busyCheck(p.ID)
	return started
}

func (h *appHost) Blocked(p *Proc) bool { return h.app.Blocked(p.ID) }

// busyCheck accumulates Blocked (snapshot-participation) time across
// state transitions, in virtual seconds. It schedules no event, so it
// never perturbs the simulation.
func (h *appHost) busyCheck(r int) {
	blocked := h.app.Blocked(r)
	if blocked && h.busySince[r] < 0 {
		h.busySince[r] = float64(h.rt.Now())
	} else if !blocked && h.busySince[r] >= 0 {
		h.busyTime += float64(h.rt.Now()) - h.busySince[r]
		h.busySince[r] = -1
	}
}

// report samples the network's exact per-kind tallies into the uniform
// counters, plus the engine and threading metrics only the simulator
// has.
func (h *appHost) report() *workload.AppReport {
	rep := &workload.AppReport{
		Time:  float64(h.rt.Now()),
		Steps: h.rt.Eng.Steps(),
	}
	for _, p := range h.rt.Procs {
		rep.PausedTime += float64(p.PausedTime())
	}
	c := &rep.Counters
	state := h.rt.Net.Count(StateChannel)
	data := h.rt.Net.Count(DataChannel)
	c.StateMsgs, c.StateBytes = state.Messages, state.Bytes
	c.DataMsgs, c.DataBytes = data.Messages, data.Bytes
	c.BusyTime = h.busyTime
	for _, kind := range h.rt.Net.Kinds(StateChannel) {
		t := h.rt.Net.KindTally(StateChannel, kind)
		if c.PerKind == nil {
			c.PerKind = make(map[string]core.KindTally)
		}
		c.PerKind[core.KindName(kind)] = core.KindTally{Msgs: t.Messages, Bytes: t.Bytes}
	}
	return rep
}
