package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	eng := NewEngine()
	var got []Time
	for _, at := range []Time{3, 1, 2, 0.5, 2.5} {
		at := at
		eng.At(at, func() { got = append(got, at) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestEngineTiesFireInSchedulingOrder(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(1, func() { got = append(got, i) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated insertion order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var trace []string
	eng.At(1, func() {
		trace = append(trace, "a")
		eng.After(1, func() { trace = append(trace, "c") })
		eng.After(0, func() { trace = append(trace, "b") })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if eng.Now() != 2 {
		t.Fatalf("final time %v, want 2", eng.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	h := eng.At(1, func() { fired = true })
	eng.Cancel(h)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	// Cancel of zero handle and double-cancel are no-ops.
	eng.Cancel(EventHandle{})
	eng.Cancel(h)
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(1, func() {})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	if err := eng.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if eng.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", eng.Pending())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
}

func TestEngineMaxStepsGuard(t *testing.T) {
	eng := NewEngine()
	eng.MaxSteps = 100
	var loop func()
	loop = func() { eng.After(1, loop) }
	eng.At(0, loop)
	if err := eng.Run(); err == nil {
		t.Fatal("livelock not detected")
	}
}

func TestEngineEventOrderProperty(t *testing.T) {
	// Property: for any set of delays, events fire in nondecreasing time
	// order and the clock never goes backwards.
	f := func(raw []uint16) bool {
		eng := NewEngine()
		prev := Time(-1)
		ok := true
		for _, r := range raw {
			at := Time(r) / 100
			eng.At(at, func() {
				if eng.Now() < prev {
					ok = false
				}
				prev = eng.Now()
				if eng.Now() != at {
					ok = false
				}
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminismAndUniformity(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(42)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := c.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn badly skewed: value %d appeared %d/10000 times", v, c)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	if mean := sum / n; math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("Exp(3) mean = %v", mean)
	}
}
