package net

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/termdet"
)

// Options tunes a Node.
type Options struct {
	// Codec is the wire codec; nil means BinaryCodec.
	Codec Codec
	// DialTimeout bounds the whole mesh-connection phase (default 10s).
	DialTimeout time.Duration
	// Logf, when set, receives transport diagnostics (dropped frames,
	// connection errors during shutdown).
	Logf func(format string, args ...any)
	// CloseGrace bounds how long Close waits for peers to half-close
	// their side before forcing connections shut (default 5s).
	CloseGrace time.Duration
	// Initial is the per-rank initial load vector (nil means all zero).
	// Every process knows the full vector — the paper's static-mapping
	// convention — so each node seeds every peer's entry into its view
	// at Init time instead of broadcasting.
	Initial []core.Load
	// Speed is the per-rank execution-time multiplier (nil or 0 entries
	// mean nominal speed); a node scales the spin of work items it
	// executes by its own factor.
	Speed []float64
	// Chaos, when active, degrades this node's outbound links per the
	// plan: a fault writer between each writer goroutine and its socket
	// delays, drops, reorders or severs individual frames (wall time).
	// Give every node of a cluster the same plan so each directed link
	// is faulted exactly once, on its sending side.
	Chaos *chaos.Plan
	// Rec, when non-nil, receives the trace events `loadex validate`
	// checks: one send per assigned work item, one recv/start/done per
	// executed one, one decide per committed decision.
	Rec *chaos.Recorder
}

// inMsg is one item of the prioritized state channel: either a decoded
// state message or a control closure to run on the node goroutine.
type inMsg struct {
	from    int
	kind    int
	payload any
	ctl     func()
}

// workMsg is one item of the data channel.
type workMsg struct {
	from int
	load core.Load
	spin time.Duration
}

// ctrlMsg is one inbound termination-detection control frame.
type ctrlMsg struct {
	from int
	c    termdet.Ctrl
}

// peer is one TCP link. The node with the higher rank dials the lower
// one, so every unordered pair shares exactly one connection; a reader
// goroutine decodes inbound frames and a writer goroutine owns the
// outbound half (per-pair FIFO order, which the snapshot protocol
// relies on, is therefore preserved end to end).
type peer struct {
	rank int
	conn net.Conn
	out  chan Message
}

// TransportStats counts wire-level traffic of one node.
type TransportStats struct {
	MsgsIn, MsgsOut   int64
	BytesIn, BytesOut int64
	// StateIn counts inbound state-channel messages, WorkIn inbound
	// work items; the remainder is acks and control traffic.
	StateIn, WorkIn int64
}

// Node is one process of a TCP cluster. It mirrors internal/live.Node:
// a single goroutine owns the mechanism and drains a prioritized
// state-message channel before touching the data channel; the transport
// goroutines (one reader and one writer per peer) never call into the
// mechanism.
type Node struct {
	rank, n int
	mech    core.Mech
	exch    core.Exchanger
	codec   Codec
	opts    Options
	speed   float64
	start   time.Time
	// topo is the neighbor graph; nil means the complete graph. The
	// mesh only ever dials/accepts topology edges — a non-neighbor pair
	// shares no socket at all.
	topo *core.Topology

	ln        net.Listener
	peers     []*peer
	stateCh   chan inMsg
	dataCh    chan workMsg
	appCh     chan appMsg   // inbound application-port data messages
	ctrlCh    chan ctrlMsg  // inbound termination-detection control frames
	wakeCh    chan struct{} // cross-rank main-loop wakeups (app mode)
	appB      *appBinding   // non-nil when the node hosts a workload.App rank
	appDet    termdet.Protocol
	appPend   *appCompute // deferred compute, owned by the node goroutine
	quit      chan struct{}
	done      chan struct{} // main loop exited
	wgReaders sync.WaitGroup
	wgWriters sync.WaitGroup
	started   atomic.Bool
	closing   atomic.Bool
	// lifeMu serializes Start against Close's teardown: Close sets
	// closing, then waits for an in-flight Start to finish (Start aborts
	// at its final gate when it observes closing), so the run loop is
	// never launched after Close decided nobody would close done.
	lifeMu sync.Mutex

	// executed counts completed work items; outstanding counts work
	// items this node assigned that have not been acknowledged yet;
	// assigned counts work items ever assigned by this node;
	// donesReceived counts TypeDone announcements from peers.
	executed      atomic.Int64
	outstanding   atomic.Int64
	assigned      atomic.Int64
	donesReceived atomic.Int64

	msgsIn, msgsOut   atomic.Int64
	bytesIn, bytesOut atomic.Int64
	stateIn, workIn   atomic.Int64

	// Real wire tallies by state kind, in encoded frame-body bytes
	// (excluding the FrameHeaderBytes length prefix), updated by the
	// writer goroutines at encode time — the ground truth the
	// core.Bytes* estimates are checked against.
	stateKindMsgs  [core.KindMax + 1]atomic.Int64
	stateKindBytes [core.KindMax + 1]atomic.Int64
	workMsgsOut    atomic.Int64
	workBytesOut   atomic.Int64
	ctrlMsgsOut    atomic.Int64
	ctrlBytesOut   atomic.Int64

	// Measurement state owned by the node goroutine (read elsewhere only
	// through Invoke, or after Close when everything is quiesced).
	est     core.Counters  // state/data tallies from the core byte hints
	busy    core.BusyMeter // snapshot-blocked wall-clock time
	busySid int64          // open snapshot.round span, 0 when idle
	// decisions and the float-bits decLatency/busySec mirrors are
	// written only by the node goroutine but read by the obs scrape
	// path at any time, so they live in atomics.
	decisions      atomic.Int64
	decLatencyBits atomic.Uint64 // seconds, Acquire → view-ready, summed
	busySecBits    atomic.Uint64 // busy.Seconds mirror for scrapes

	// idleSid is the open termdet.idle trace span (app mode, node
	// goroutine only).
	idleSid int64

	// sleepTimer is appSleep's reused compute timer (node goroutine
	// only): short intervals over a long run would otherwise allocate
	// one uncollected runtime timer per interval.
	sleepTimer *time.Timer

	// jobMu guards jobs, the registry of multiplexed job ports
	// (internal/service): readLoop routes TypeJob* frames to the port
	// registered under the frame's job id. Frames for a job id with no
	// registered port are dropped — the job already finished here, or
	// was never admitted on this rank.
	jobMu sync.RWMutex
	jobs  map[int32]*JobPort
}

// NewNode creates a node of rank within n processes running mech. The
// node is inert until Listen and Start are called.
func NewNode(rank, n int, mech core.Mech, cfg core.Config, opts Options) (*Node, error) {
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("net: rank %d out of range [0,%d)", rank, n)
	}
	exch, err := core.New(mech, n, rank, cfg)
	if err != nil {
		return nil, err
	}
	if opts.Codec == nil {
		opts.Codec = BinaryCodec{}
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.CloseGrace <= 0 {
		opts.CloseGrace = 5 * time.Second
	}
	if opts.Initial != nil && len(opts.Initial) != n {
		return nil, fmt.Errorf("net: %d initial loads for %d ranks", len(opts.Initial), n)
	}
	if opts.Speed != nil && len(opts.Speed) != n {
		return nil, fmt.Errorf("net: %d speed factors for %d ranks", len(opts.Speed), n)
	}
	speed := 1.0
	if opts.Speed != nil && opts.Speed[rank] > 0 {
		speed = opts.Speed[rank]
	}
	return &Node{
		rank: rank, n: n,
		mech:    mech,
		exch:    exch,
		codec:   opts.Codec,
		opts:    opts,
		speed:   speed,
		start:   time.Now(),
		topo:    cfg.Topo,
		peers:   make([]*peer, n),
		stateCh: make(chan inMsg, 1<<16),
		dataCh:  make(chan workMsg, 1<<12),
		appCh:   make(chan appMsg, 1<<14),
		ctrlCh:  make(chan ctrlMsg, 1<<14),
		wakeCh:  make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Rank returns the node's rank.
func (nd *Node) Rank() int { return nd.rank }

// edge reports whether (rank, r) is a topology edge — a pair the mesh
// connects. A nil topology is the complete graph.
func (nd *Node) edge(r int) bool { return nd.topo.Edge(nd.rank, r) }

// Links counts the node's live peer connections — its topology degree
// once Start has built the mesh.
func (nd *Node) Links() int {
	links := 0
	for _, p := range nd.peers {
		if p != nil {
			links++
		}
	}
	return links
}

// Listen binds the node's listener and returns the concrete address
// (resolve ephemeral ports by passing "127.0.0.1:0").
func (nd *Node) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	nd.ln = ln
	return ln.Addr().String(), nil
}

// Start connects the mesh and launches the node goroutines. addrs lists
// every rank's listen address (the entry for this rank is ignored). The
// node dials every lower rank and accepts a connection from every
// higher rank, identified by a Hello frame, so each pair ends up with
// exactly one connection.
func (nd *Node) Start(addrs []string) error {
	nd.lifeMu.Lock()
	defer nd.lifeMu.Unlock()
	if nd.closing.Load() {
		return fmt.Errorf("net: rank %d: Start after Close", nd.rank)
	}
	if nd.ln == nil {
		return fmt.Errorf("net: Start before Listen")
	}
	if len(addrs) != nd.n {
		return fmt.Errorf("net: %d addresses for %d ranks", len(addrs), nd.n)
	}
	deadline := time.Now().Add(nd.opts.DialTimeout)

	type accepted struct {
		rank int
		conn net.Conn
		err  error
	}
	// Mesh links follow the topology: this node dials its lower-rank
	// neighbors and accepts its higher-rank ones. A non-neighbor pair
	// shares no socket at all — on a sparse graph the link count scales
	// with the degree, not with n.
	var dials []int
	expect := 0
	for s := 0; s < nd.n; s++ {
		switch {
		case s == nd.rank || !nd.edge(s):
		case s < nd.rank:
			dials = append(dials, s)
		default:
			expect++
		}
	}
	acceptCh := make(chan accepted, expect)
	for i := 0; i < expect; i++ {
		go func() {
			conn, err := nd.ln.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			conn.SetReadDeadline(deadline)
			// Read the hello frame straight off the conn: ReadFrame uses
			// io.ReadFull, so it cannot over-read into the peer's next
			// frame (a buffered reader here would swallow those bytes —
			// the peer may already be streaming state messages).
			body, err := ReadFrame(conn, nil)
			if err == nil {
				var m Message
				m, err = nd.codec.Decode(body)
				if err == nil && m.Type != TypeHello {
					err = fmt.Errorf("net: expected hello, got %s", m.Type)
				}
				if err == nil {
					conn.SetReadDeadline(time.Time{})
					acceptCh <- accepted{rank: int(m.From), conn: conn}
					return
				}
			}
			conn.Close()
			acceptCh <- accepted{err: err}
		}()
	}

	consumed := 0
	fail := func(err error) error {
		for _, p := range nd.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		nd.ln.Close()
		// The accept goroutines post exactly expect results; close any
		// connection still parked (or about to land) in the buffer.
		go func(pending int) {
			for i := 0; i < pending; i++ {
				if a := <-acceptCh; a.conn != nil {
					a.conn.Close()
				}
			}
		}(expect - consumed)
		return err
	}

	// Dial every lower-rank neighbor, retrying with jittered exponential
	// backoff: with the loadex stdio handshake everyone is already
	// listening, but a raw deployment may start ranks in any order. Each
	// peer gets a fair share of the remaining budget — its share of the
	// overall deadline divided by the dials still to make — so one dead
	// address cannot starve every later dial, and the jitter keeps a
	// large cluster's retries from herding onto a recovering listener.
	for i, s := range dials {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fail(fmt.Errorf("net: rank %d dialing rank %d: mesh dial budget exhausted", nd.rank, s))
		}
		peerDeadline := time.Now().Add(remaining / time.Duration(len(dials)-i))
		var conn net.Conn
		var err error
		backoff := 2 * time.Millisecond
		for {
			d := net.Dialer{Deadline: peerDeadline}
			conn, err = d.Dial("tcp", addrs[s])
			if err == nil || time.Now().After(peerDeadline) {
				break
			}
			time.Sleep(backoff/2 + rand.N(backoff))
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
		}
		if err != nil {
			return fail(fmt.Errorf("net: rank %d dialing rank %d: %w", nd.rank, s, err))
		}
		hello, err := nd.codec.Encode(nil, Message{Type: TypeHello, From: int32(nd.rank)})
		if err != nil {
			conn.Close()
			return fail(err)
		}
		if err := WriteFrame(conn, hello); err != nil {
			conn.Close()
			return fail(fmt.Errorf("net: rank %d hello to rank %d: %w", nd.rank, s, err))
		}
		nd.peers[s] = &peer{rank: s, conn: conn, out: make(chan Message, 1<<14)}
	}

	for i := 0; i < expect; i++ {
		a := <-acceptCh
		consumed++
		if a.err != nil {
			return fail(fmt.Errorf("net: rank %d accepting: %w", nd.rank, a.err))
		}
		if a.rank <= nd.rank || a.rank >= nd.n || !nd.edge(a.rank) || nd.peers[a.rank] != nil {
			a.conn.Close()
			return fail(fmt.Errorf("net: rank %d got hello from unexpected rank %d", nd.rank, a.rank))
		}
		nd.peers[a.rank] = &peer{rank: a.rank, conn: a.conn, out: make(chan Message, 1<<14)}
	}

	if nd.appB == nil {
		// App mode leaves the node's own exchanger untouched: the hosted
		// application owns its mechanisms and initializes them at Attach.
		initial := core.Load{}
		if nd.opts.Initial != nil {
			initial = nd.opts.Initial[nd.rank]
		}
		nd.exch.Init(nodeCtx{nd}, initial)
		core.SeedView(nd.exch, nd.rank, nd.opts.Initial)
	}
	for _, p := range nd.peers {
		if p == nil {
			continue
		}
		nd.wgReaders.Add(1)
		nd.wgWriters.Add(1)
		go nd.readLoop(p)
		go nd.writeLoop(p)
	}
	// Final gate: a Close that raced this Start set closing and is now
	// blocked on lifeMu; do not launch the run loop it will not stop —
	// Close will see started=false and close done itself. The readers
	// and writers just launched exit through the closed conns and quit.
	if nd.closing.Load() {
		return fail(fmt.Errorf("net: rank %d: node closed during start", nd.rank))
	}
	nd.started.Store(true)
	if nd.appB != nil {
		go nd.runApp()
	} else {
		go nd.run()
	}
	return nil
}

// readLoop decodes inbound frames from one peer and routes them. After
// Close begins it keeps draining (and discarding) until the peer's EOF:
// closing the socket with unread inbound data would RST the connection
// and could destroy our own final frames — a Done announcement — in the
// peer's receive buffer.
func (nd *Node) readLoop(p *peer) {
	defer nd.wgReaders.Done()
	br := bufio.NewReaderSize(p.conn, 1<<16)
	var buf []byte
	// m is reused across frames: DecodeInto recycles its payload slice
	// capacity, so the steady-state read path decodes without
	// allocating. Payloads that escape to another goroutine with a
	// reference into m (assignment lists, diffusion vectors) hand the
	// slice over by niling the field below, so the next decode allocates
	// fresh instead of scribbling on a published slice.
	var m Message
	for {
		body, err := ReadFrame(br, buf)
		if err != nil {
			// EOF is a peer's orderly shutdown, not a fault; anything
			// else severs the link, so the peer fails fast instead of
			// blocking on a socket nobody reads.
			if !nd.closing.Load() && err != io.EOF {
				nd.logf("net: rank %d read from %d: %v", nd.rank, p.rank, err)
				p.conn.Close()
			}
			return
		}
		buf = body
		if err := nd.codec.DecodeInto(body, &m); err != nil {
			nd.logf("net: rank %d bad frame from %d: %v", nd.rank, p.rank, err)
			p.conn.Close()
			return
		}
		if nd.closing.Load() {
			continue // draining toward EOF; the node is gone
		}
		nd.msgsIn.Add(1)
		nd.bytesIn.Add(int64(len(body)) + FrameHeaderBytes)
		// Rank fields index views and peer tables downstream; a frame
		// that decodes but carries an out-of-range rank is as hostile
		// as one that does not decode.
		if !nd.validRanks(&m) {
			nd.logf("net: rank %d frame with out-of-range rank from %d: %+v", nd.rank, p.rank, m)
			p.conn.Close()
			return
		}
		switch m.Type {
		case TypeState:
			nd.stateIn.Add(1)
			select {
			case nd.stateCh <- inMsg{from: int(m.From), kind: int(m.Kind), payload: m.StatePayload()}:
			case <-nd.quit:
				return
			}
			// The payload just posted may reference m's slices
			// (master_to_all assignments, diffuse load vectors);
			// transfer ownership so the next DecodeInto can't overwrite
			// a slice another goroutine is reading.
			if len(m.Assignments) > 0 {
				m.Assignments = nil
			}
			if len(m.Loads) > 0 {
				m.Loads = nil
			}
		case TypeWork:
			nd.workIn.Add(1)
			select {
			case nd.dataCh <- workMsg{from: int(m.From), load: m.Load, spin: time.Duration(m.Spin)}:
			case <-nd.quit:
				return
			}
		case TypeData:
			nd.workIn.Add(1)
			select {
			case nd.appCh <- appMsg{from: int(m.From), m: m.Data}:
			case <-nd.quit:
				return
			}
		case TypeCtrl:
			select {
			case nd.ctrlCh <- ctrlMsg{from: int(m.From), c: m.Ctrl}:
			case <-nd.quit:
				return
			}
		case TypeJobState, TypeJobData, TypeJobCtrl:
			if !nd.routeJob(m) {
				nd.logf("net: rank %d dropped %s for unknown job %d from %d", nd.rank, m.Type, m.Job, p.rank)
			}
			// Same ownership transfer as TypeState: a routed job-state
			// payload may alias m's slices.
			if len(m.Assignments) > 0 {
				m.Assignments = nil
			}
			if len(m.Loads) > 0 {
				m.Loads = nil
			}
		case TypeWorkDone:
			nd.outstanding.Add(-1)
		case TypeDone:
			nd.donesReceived.Add(1)
		default:
			nd.logf("net: rank %d unexpected %s from %d", nd.rank, m.Type, p.rank)
		}
	}
}

// validRanks reports whether every rank a message carries is a usable
// process index.
func (nd *Node) validRanks(m *Message) bool {
	if m.From < 0 || int(m.From) >= nd.n || int(m.From) == nd.rank {
		return false
	}
	for _, a := range m.Assignments {
		if a.Proc < 0 || int(a.Proc) >= nd.n {
			return false
		}
	}
	return true
}

// encodeBufs pools encode scratch buffers across every writer
// goroutine of every node in the process: a writer holds a buffer only
// for the duration of one encode+write, so a cluster of n nodes with
// n-1 writers each retains O(active writers) buffers instead of one
// grown buffer per (node, peer) pair for the node's whole lifetime.
var encodeBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// writeLoop encodes and writes one peer's outbound messages. A drained
// queue leaves as one vectored write: each frame is encoded
// length-prefix-first into a pooled buffer, the batch is collected into
// a net.Buffers, and WriteTo hands the whole thing to the kernel in a
// single writev on a TCP connection — one syscall per drained queue
// instead of copying every frame through a bufio buffer.
func (nd *Node) writeLoop(p *peer) {
	defer nd.wgWriters.Done()
	// The fault writer (if any) sits between the batch and the socket:
	// p.conn itself stays raw so Close can still half-close the TCP
	// connection. net.Buffers falls back to one Write per frame on a
	// non-TCP writer, which keeps the fault writer's frame accumulator
	// fed exactly as before.
	var out io.Writer = p.conn
	if nd.opts.Chaos.Active() {
		out = newFaultWriter(p.conn, nd.opts.Chaos, nd.rank, p.rank, nd.start, nd.quit)
	}
	// Batch bounds: keep a burst from pinning unbounded memory while
	// still amortizing far more than one frame per syscall.
	const maxBatchFrames = 256
	const maxBatchBytes = 256 << 10
	var (
		frames  []*[]byte // pooled backing buffers of the open batch
		bufs    net.Buffers
		pending int // bytes in the open batch
	)
	recycle := func() {
		for _, bp := range frames {
			encodeBufs.Put(bp)
		}
		frames = frames[:0]
		bufs = bufs[:0]
		pending = 0
	}
	defer recycle()
	encode := func(m Message) bool {
		bp := encodeBufs.Get().(*[]byte)
		b := append((*bp)[:0], 0, 0, 0, 0) // length prefix, patched below
		b, err := nd.codec.Encode(b, m)
		if err != nil {
			*bp = b[:0]
			encodeBufs.Put(bp)
			nd.logf("net: rank %d encode for %d: %v", nd.rank, p.rank, err)
			return false
		}
		body := b[FrameHeaderBytes:]
		if len(body) > MaxFrame {
			*bp = b[:0]
			encodeBufs.Put(bp)
			nd.logf("net: rank %d encode for %d: frame of %d bytes exceeds MaxFrame", nd.rank, p.rank, len(body))
			return false
		}
		binary.BigEndian.PutUint32(b[:FrameHeaderBytes], uint32(len(body)))
		*bp = b
		frames = append(frames, bp)
		bufs = append(bufs, b)
		pending += len(b)
		nd.msgsOut.Add(1)
		nd.bytesOut.Add(int64(len(b)))
		switch m.Type {
		case TypeState, TypeJobState:
			if k := int(m.Kind); k >= 0 && k < len(nd.stateKindMsgs) {
				nd.stateKindMsgs[k].Add(1)
				nd.stateKindBytes[k].Add(int64(len(body)))
			}
		case TypeWork, TypeData, TypeJobData:
			nd.workMsgsOut.Add(1)
			nd.workBytesOut.Add(int64(len(body)))
		case TypeCtrl, TypeJobCtrl:
			nd.ctrlMsgsOut.Add(1)
			nd.ctrlBytesOut.Add(int64(len(body)))
		}
		return true
	}
	flush := func() bool {
		if len(bufs) == 0 {
			return true
		}
		vb := bufs
		_, err := vb.WriteTo(out)
		recycle()
		if err != nil {
			if !nd.closing.Load() {
				nd.logf("net: rank %d write to %d: %v", nd.rank, p.rank, err)
			}
			return false
		}
		return true
	}
	for {
		select {
		case m := <-p.out:
			if !encode(m) {
				return
			}
			// Drain without writing while more is queued and the batch
			// bounds allow.
			for {
				if len(frames) >= maxBatchFrames || pending >= maxBatchBytes {
					if !flush() {
						return
					}
				}
				select {
				case m := <-p.out:
					if !encode(m) {
						return
					}
					continue
				default:
				}
				break
			}
			if !flush() {
				return
			}
		case <-nd.quit:
			// Write what was queued before shutdown (a master's final
			// Done announcement, trailing acks); post() stops producing
			// once quit is closed, so this drain is bounded.
			for {
				select {
				case m := <-p.out:
					if !encode(m) {
						return
					}
					continue
				default:
				}
				break
			}
			flush()
			return
		}
	}
}

// post enqueues a message for one peer, blocking (with shutdown escape)
// if the peer's queue is full — backpressure rather than unbounded
// buffering.
func (nd *Node) post(to int, m Message) {
	p := nd.peers[to]
	if p == nil {
		nd.logf("net: rank %d send to unconnected rank %d", nd.rank, to)
		return
	}
	select {
	case p.out <- m:
	case <-nd.quit:
	}
}

// nodeCtx adapts the node to core.Context. Only the node goroutine uses
// it.
type nodeCtx struct{ nd *Node }

func (c nodeCtx) Rank() int    { return c.nd.rank }
func (c nodeCtx) N() int       { return c.nd.n }
func (c nodeCtx) Now() float64 { return time.Since(c.nd.start).Seconds() }

func (c nodeCtx) Send(to int, kind int, payload any, bytes float64) {
	if to == c.nd.rank {
		// Mechanisms never self-send; deliver locally just in case.
		c.nd.stateCh <- inMsg{from: to, kind: kind, payload: payload}
		return
	}
	// Tally what the core constants claim this message weighs; the
	// writer goroutine tallies what the codec actually emits. The codec
	// tests assert the two never drift apart.
	c.nd.est.AddState(kind, bytes)
	// One send-only trace event per state message: `loadex validate`
	// checks every one travels a topology edge.
	c.nd.opts.Rec.Record(chaos.Event{Ev: chaos.EvState, Rank: c.nd.rank, Peer: to, Kind: int32(kind)})
	m, err := StateMessage(c.nd.rank, kind, payload)
	if err != nil {
		panic(err) // a core payload the codec cannot carry is a programming error
	}
	c.nd.post(to, m)
}

func (c nodeCtx) Broadcast(kind int, payload any, bytes float64) {
	for to := 0; to < c.nd.n; to++ {
		if to != c.nd.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

// run is the node main loop — Algorithm 1 with a prioritized state
// channel, identical in structure to internal/live.
func (nd *Node) run() {
	defer func() {
		// A snapshot round still in flight at shutdown would leave its
		// span unbalanced in the trace.
		if nd.busySid != 0 {
			nd.opts.Rec.SpanEnd(nd.rank, "snapshot.round", nd.busySid, nodeCtx{nd}.Now())
			nd.busySid = 0
		}
		close(nd.done)
	}()
	for {
		// Priority 1: drain state-information messages.
		for {
			select {
			case m := <-nd.stateCh:
				nd.handle(m)
				continue
			default:
			}
			break
		}
		if nd.exch.Busy() {
			// Snapshot in progress: treat only state messages.
			select {
			case m := <-nd.stateCh:
				nd.handle(m)
			case <-nd.quit:
				return
			}
			continue
		}
		select {
		case m := <-nd.stateCh:
			nd.handle(m)
		case w := <-nd.dataCh:
			nd.execute(w)
		case <-nd.quit:
			return
		}
	}
}

// handle treats one state-channel item. Both branches can flip the
// mechanism's Busy state (control closures run Acquire and Commit), so
// both are followed by a busy-time check.
func (nd *Node) handle(m inMsg) {
	if m.ctl != nil {
		m.ctl()
		nd.observeBusy()
		return
	}
	nd.exch.HandleMessage(nodeCtx{nd}, m.from, m.kind, m.payload)
	nd.observeBusy()
}

// observeBusy feeds the busy meter and brackets each busy interval —
// one snapshot round in flight — with a snapshot.round trace span.
// Node goroutine only.
func (nd *Node) observeBusy() {
	busy := nd.exch.Busy()
	nd.busy.Observe(busy)
	nd.busySecBits.Store(floatBits(nd.busy.Seconds))
	if rec := nd.opts.Rec; rec != nil {
		if busy && nd.busySid == 0 {
			nd.busySid = rec.SpanBegin(nd.rank, "snapshot.round", nodeCtx{nd}.Now())
		} else if !busy && nd.busySid != 0 {
			rec.SpanEnd(nd.rank, "snapshot.round", nd.busySid, nodeCtx{nd}.Now())
			nd.busySid = 0
		}
	}
}

// execute performs one work item (spin scaled by this node's speed
// factor) and acknowledges it to the assigner.
func (nd *Node) execute(w workMsg) {
	if rec := nd.opts.Rec; rec != nil {
		now := nodeCtx{nd}.Now()
		rec.Record(chaos.Event{Ev: chaos.EvRecv, Rank: nd.rank, Peer: w.from,
			Kind: int32(TypeWork), Work: w.load[core.Workload], Spin: w.spin.Seconds(), T: now})
		rec.Record(chaos.Event{Ev: chaos.EvStart, Rank: nd.rank, T: now})
	}
	c := nodeCtx{nd}
	nd.exch.LocalChange(c, w.load, true)
	if w.spin > 0 {
		spin := w.spin
		if nd.speed != 1 {
			spin = time.Duration(float64(spin) * nd.speed)
		}
		time.Sleep(spin)
	}
	neg := w.load
	for i := range neg {
		neg[i] = -neg[i]
	}
	nd.exch.LocalChange(c, neg, true)
	nd.executed.Add(1)
	if rec := nd.opts.Rec; rec != nil {
		rec.Record(chaos.Event{Ev: chaos.EvDone, Rank: nd.rank, T: nodeCtx{nd}.Now()})
	}
	nd.post(w.from, Message{Type: TypeWorkDone, From: int32(nd.rank)})
}

// Invoke runs fn on the node goroutine (where the mechanism may be
// touched) and waits for it to finish.
func (nd *Node) Invoke(fn func(ctx core.Context, exch core.Exchanger)) {
	done := make(chan struct{})
	select {
	case nd.stateCh <- inMsg{ctl: func() {
		fn(nodeCtx{nd}, nd.exch)
		close(done)
	}}:
	case <-nd.done:
		return // node already stopped
	}
	select {
	case <-done:
	case <-nd.done:
	}
}

// AssignWork ships one work item to rank `to` and counts it
// outstanding until the execution acknowledgment returns. Must be
// called from the node goroutine (inside Invoke).
func (nd *Node) AssignWork(to int, load core.Load, spin time.Duration) {
	nd.outstanding.Add(1)
	nd.est.AddData(core.BytesWorkItem)
	if rec := nd.opts.Rec; rec != nil {
		rec.Record(chaos.Event{Ev: chaos.EvSend, Rank: nd.rank, Peer: to,
			Kind: int32(TypeWork), Work: load[core.Workload], Spin: spin.Seconds(), T: nodeCtx{nd}.Now()})
	}
	nd.post(to, Message{Type: TypeWork, From: int32(nd.rank), Load: load, Spin: int64(spin)})
}

// Decide performs one dynamic decision on this node: acquire a coherent
// view, select the `slaves` least-loaded peers per that view, commit
// the reservation and ship equal work shares over TCP. It blocks until
// the decision completed (for the snapshot mechanism, until the
// snapshot finished) and returns the record the equivalence tests
// check. Decisions on one node must not overlap; concurrent decisions
// on different nodes are the point.
func (nd *Node) Decide(totalWork float64, slaves int, spin time.Duration) (core.Decision, error) {
	dec := core.Decision{Master: nd.rank}
	done := make(chan struct{})
	nd.Invoke(func(ctx core.Context, exch core.Exchanger) {
		rec := nd.opts.Rec
		beginT := nodeCtx{nd}.Now()
		sidDec := rec.SpanBegin(nd.rank, "decision", beginT)
		sidAcq := rec.SpanBegin(nd.rank, "decision.acquire", beginT)
		acquireAt := time.Now()
		exch.Acquire(ctx, func() {
			lat := time.Since(acquireAt).Seconds()
			nd.decisions.Add(1)
			nd.decLatencyBits.Store(floatBits(floatFromBits(nd.decLatencyBits.Load()) + lat))
			// The acquire span closes at exactly beginT+lat: its traced
			// duration IS the latency added to the counter, so summed
			// decision.acquire spans reconcile with decision_latency to
			// float rounding (the `loadex report` acceptance check).
			acqEnd := beginT + lat
			rec.SpanEnd(nd.rank, "decision.acquire", sidAcq, acqEnd)
			sidPlan := rec.SpanBegin(nd.rank, "decision.plan", acqEnd)
			dec = core.PlanDecisionOn(nd.topo, exch.View(), nd.rank, slaves, totalWork)
			if rec != nil {
				ev := chaos.Event{Ev: chaos.EvDecide, Rank: nd.rank,
					Work: totalWork, Slaves: slaves}
				for _, l := range dec.View {
					ev.View = append(ev.View, l[core.Workload])
				}
				for _, a := range dec.Assignments {
					ev.Sel = append(ev.Sel, int(a.Proc))
				}
				rec.Record(ev)
			}
			// The cumulative counter leads Commit: any snapshot cut that
			// observed this decision's credits is covered by a later
			// read of Assigned() (the conservation tests rely on it).
			nd.assigned.Add(int64(len(dec.Assignments)))
			exch.Commit(ctx, dec.Assignments)
			planEnd := nodeCtx{nd}.Now()
			if planEnd < acqEnd {
				planEnd = acqEnd
			}
			rec.SpanEnd(nd.rank, "decision.plan", sidPlan, planEnd)
			sidXfer := rec.SpanBegin(nd.rank, "decision.transfer", planEnd)
			for _, a := range dec.Assignments {
				nd.AssignWork(int(a.Proc), a.Delta, spin)
			}
			endT := nodeCtx{nd}.Now()
			if endT < planEnd {
				endT = planEnd
			}
			rec.SpanEnd(nd.rank, "decision.transfer", sidXfer, endT)
			rec.SpanEnd(nd.rank, "decision", sidDec, endT)
			close(done)
		})
	})
	select {
	case <-done:
	case <-nd.done:
		return dec, fmt.Errorf("net: node %d stopped during decision", nd.rank)
	}
	return dec, nil
}

// AcquireView runs one full view acquisition — a snapshot, for the
// snapshot mechanism — committing no assignment, and returns the
// coherent view.
func (nd *Node) AcquireView() ([]core.Load, error) {
	var view []core.Load
	done := make(chan struct{})
	nd.Invoke(func(ctx core.Context, exch core.Exchanger) {
		exch.Acquire(ctx, func() {
			view = exch.View().Snapshot()
			exch.Commit(ctx, nil)
			close(done)
		})
	})
	select {
	case <-done:
	case <-nd.done:
		return nil, fmt.Errorf("net: node %d stopped during acquire", nd.rank)
	}
	return view, nil
}

// LocalChange applies a spontaneous local load variation (not slave
// work) on the node goroutine and returns once it is applied.
func (nd *Node) LocalChange(delta core.Load) {
	nd.Invoke(func(ctx core.Context, exch core.Exchanger) {
		exch.LocalChange(ctx, delta, false)
	})
}

// NoMoreMaster announces this node will never take a dynamic decision
// again (§2.3), on the node goroutine.
func (nd *Node) NoMoreMaster() {
	nd.Invoke(func(ctx core.Context, exch core.Exchanger) {
		exch.NoMoreMaster(ctx)
	})
}

// DrainOwn waits until every work item this node assigned has been
// acknowledged — the node's share of cluster quiescence.
func (nd *Node) DrainOwn(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for nd.outstanding.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("net: rank %d: %d work items still outstanding", nd.rank, nd.outstanding.Load())
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// AnnounceDone announces this node's Done (its decisions are taken and
// drained) to every connected peer — its topology neighbors; peers
// observe it through DonesReceived. On a sparse mesh a rank therefore
// waits for Links() announcements, not n-1 (work can only ever arrive
// over a link, so neighbor quiescence is rank quiescence).
func (nd *Node) AnnounceDone() {
	for to, p := range nd.peers {
		if p != nil {
			nd.post(to, Message{Type: TypeDone, From: int32(nd.rank)})
		}
	}
}

// DonesReceived returns how many Done announcements arrived.
func (nd *Node) DonesReceived() int64 { return nd.donesReceived.Load() }

// Executed returns how many work items this node completed.
func (nd *Node) Executed() int64 { return nd.executed.Load() }

// Assigned returns how many work items this node ever assigned.
func (nd *Node) Assigned() int64 { return nd.assigned.Load() }

// Outstanding returns how many work items assigned by this node are
// still unacknowledged.
func (nd *Node) Outstanding() int64 { return nd.outstanding.Load() }

// ViewSnapshot returns a copy of the node's current estimates, obtained
// on the node goroutine (safe at any time after Start).
func (nd *Node) ViewSnapshot() []core.Load {
	var out []core.Load
	nd.Invoke(func(_ core.Context, exch core.Exchanger) {
		out = exch.View().Snapshot()
	})
	return out
}

// MechStats returns the mechanism counters (on the node goroutine).
func (nd *Node) MechStats() core.Stats {
	var st core.Stats
	nd.Invoke(func(_ core.Context, exch core.Exchanger) {
		st = exch.Stats()
	})
	return st
}

// sampleCounters builds the canonical counters from the real wire
// tallies plus the node-goroutine measurement state. Callers must be on
// the node goroutine, or the node must be stopped.
func (nd *Node) sampleCounters() core.Counters {
	c := core.Counters{
		Decisions:       nd.decisions.Load(),
		DecisionLatency: floatFromBits(nd.decLatencyBits.Load()),
		BusyTime:        nd.busy.Seconds,
		SnapshotRounds:  core.SnapshotRoundsOf(nd.exch.Stats()),
		DataMsgs:        nd.workMsgsOut.Load(),
		DataBytes:       float64(nd.workBytesOut.Load()),
		CtrlMsgs:        nd.ctrlMsgsOut.Load(),
		CtrlBytes:       float64(nd.ctrlBytesOut.Load()),
	}
	for k := core.KindUpdate; k <= core.KindMax; k++ {
		msgs := nd.stateKindMsgs[k].Load()
		if msgs == 0 {
			continue
		}
		bytes := float64(nd.stateKindBytes[k].Load())
		c.StateMsgs += msgs
		c.StateBytes += bytes
		if c.PerKind == nil {
			c.PerKind = make(map[string]core.KindTally)
		}
		c.PerKind[core.KindName(k)] = core.KindTally{Msgs: msgs, Bytes: bytes}
	}
	return c
}

// Counters returns the node's measurement accumulator. State and data
// tallies are real encoded frame-body sizes (add FrameHeaderBytes per
// message for on-wire volume); decision latency and busy time are wall
// clock. While the node runs the sample is taken on the node goroutine;
// after Close everything is quiesced and read directly.
func (nd *Node) Counters() core.Counters {
	var c core.Counters
	ran := false
	nd.Invoke(func(_ core.Context, _ core.Exchanger) {
		c = nd.sampleCounters()
		ran = true
	})
	if !ran {
		c = nd.sampleCounters() // node stopped: goroutines quiesced
	}
	return c
}

// EstimatedCounters returns the state/data tallies accumulated from the
// core.Bytes* hints at send time — what a runtime without a real wire
// charges for the same traffic. The codec coherence test asserts these
// match Counters' wire-derived tallies exactly.
func (nd *Node) EstimatedCounters() core.Counters {
	var c core.Counters
	ran := false
	nd.Invoke(func(_ core.Context, _ core.Exchanger) {
		c = nd.est.Clone()
		ran = true
	})
	if !ran {
		c = nd.est.Clone()
	}
	return c
}

// Transport returns the wire-level counters.
func (nd *Node) Transport() TransportStats {
	return TransportStats{
		MsgsIn:   nd.msgsIn.Load(),
		MsgsOut:  nd.msgsOut.Load(),
		BytesIn:  nd.bytesIn.Load(),
		BytesOut: nd.bytesOut.Load(),
		StateIn:  nd.stateIn.Load(),
		WorkIn:   nd.workIn.Load(),
	}
}

// Close shuts the node down gracefully: the main loop stops, writers
// flush everything queued (including a final Done announcement), the
// write side of every connection is half-closed (FIN), and readers
// drain until the peer's own FIN — so nothing this node sent can be
// destroyed by a reset. A peer that never half-closes is forced shut
// after CloseGrace. Nodes of a cluster must close concurrently, not
// sequentially: each waits for the others' FINs.
func (nd *Node) Close() error {
	if !nd.closing.CompareAndSwap(false, true) {
		return nil
	}
	close(nd.quit)
	// Wait for an in-flight Start to finish (it aborts at its final gate
	// once closing is set), so started, peers and done are settled
	// before teardown — without this, Close racing Start could close
	// done twice or close connections Start is still installing.
	nd.lifeMu.Lock()
	defer nd.lifeMu.Unlock()
	if nd.started.Load() {
		<-nd.done
	} else {
		// The run loop never started, so nothing else will close done;
		// close it here so a late Invoke returns instead of blocking.
		close(nd.done)
	}
	if nd.ln != nil {
		nd.ln.Close()
	}
	nd.wgWriters.Wait() // writers have drained their queues and flushed
	for _, p := range nd.peers {
		if p != nil {
			if tc, ok := p.conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}
	}
	drained := make(chan struct{})
	go func() { nd.wgReaders.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(nd.opts.CloseGrace):
		nd.logf("net: rank %d forcing connections shut after %s", nd.rank, nd.opts.CloseGrace)
	}
	for _, p := range nd.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	nd.wgReaders.Wait()
	return nil
}

func (nd *Node) logf(format string, args ...any) {
	if nd.opts.Logf != nil {
		nd.opts.Logf(format, args...)
	}
}
