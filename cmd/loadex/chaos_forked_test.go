package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// chaosForkedParams is the forked solver cell the chaos tests reuse.
func chaosForkedParams(procs int) nodeParams {
	return nodeParams{
		procs: procs, scenario: "solver-wl", mech: "naive", term: "ds",
		threshold: 5, noMore: true, codec: "binary",
		masters: 1, decisions: 1, work: 60, slaves: 2,
		spin: time.Millisecond, settle: 10 * time.Millisecond,
	}
}

// TestForkedChaosCrashWatchdog: under the crash plan a `loadex node`
// process exits mid-run, and the collection watchdog must name the dead
// rank and its exit status instead of hanging on the vanished STATS
// line (the bug this PR's watchdog rewrite fixed: collection used to
// read children sequentially with no deadline).
func TestForkedChaosCrashWatchdog(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a multi-process TCP cluster")
	}
	exe := buildLoadex(t)
	p := chaosForkedParams(8)
	p.chaos = "crash"
	start := time.Now()
	_, err := runClusterForkedWith(exe, &p)
	if err == nil {
		t.Fatalf("crash plan completed cleanly: fault silently absorbed")
	}
	if !strings.Contains(err.Error(), "node 1") || !strings.Contains(err.Error(), "died") {
		t.Fatalf("watchdog did not name the dead rank: %v", err)
	}
	// The watchdog must report promptly — well inside the stats
	// deadline, nowhere near a hang.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("crash took %s to surface", elapsed)
	}
}

// TestForkedChaosDelayValidates: the delay plan on the forked runtime
// must quiesce and leave per-rank traces that pass the offline
// validator — the acceptance path of `loadex cluster -chaos delay`.
func TestForkedChaosDelayValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a multi-process TCP cluster")
	}
	exe := buildLoadex(t)
	p := chaosForkedParams(4)
	p.chaos = "delay"
	p.traceDir = t.TempDir()
	if _, err := runClusterForkedWith(exe, &p); err != nil {
		t.Fatalf("delay plan run failed: %v", err)
	}
	var out bytes.Buffer
	if err := validateTraceRoot(&out, p.traceDir); err != nil {
		t.Fatalf("validator flagged the delay run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: all invariants hold") {
		t.Fatalf("validator produced no OK verdict:\n%s", out.String())
	}
}
