package sim

import "fmt"

// Channel distinguishes the logical channels of the paper's model
// (§1): state-information messages travel on a dedicated channel and are
// treated with priority over all other messages (Algorithm 1, line (1)).
// The termination-detection control frames of the quiescence subsystem
// (internal/termdet) travel a third channel treated with the highest
// priority and exempt from the application's Blocked gating.
type Channel uint8

const (
	// StateChannel carries load/state-information messages: Update,
	// Master_To_All, No_more_master, start_snp, snp, end_snp.
	StateChannel Channel = iota
	// DataChannel carries application messages: tasks, contribution
	// blocks, factors.
	DataChannel
	// CtrlChannel carries termination-detection control frames
	// (engagement acks, probe tokens, the termination announcement).
	CtrlChannel
	// NumChannels is the channel count (for per-channel tallies).
	NumChannels
)

// String returns "state", "data" or "ctrl".
func (c Channel) String() string {
	switch c {
	case StateChannel:
		return "state"
	case DataChannel:
		return "data"
	case CtrlChannel:
		return "ctrl"
	}
	return fmt.Sprintf("channel(%d)", uint8(c))
}

// Message is a unit of communication between two processes. Kind is an
// application- or mechanism-defined tag; Payload carries the typed body.
type Message struct {
	From    int
	To      int
	Channel Channel
	Kind    int
	Payload any
	// Bytes is the on-wire size used for bandwidth accounting.
	Bytes float64
	// Sent and Arrived are stamped by the network.
	Sent    Time
	Arrived Time
}
