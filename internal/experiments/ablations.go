package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solver"
)

// AblationNoMoreMaster quantifies the §2.3 optimization: increments with
// and without No_more_master pruning. The paper observed the message
// count roughly halving on MUMPS.
type AblationNoMoreMasterRow struct {
	Name            string
	Procs           int
	MsgsWith        int64
	MsgsWithout     int64
	ReductionFactor float64
}

// AblationNoMoreMaster runs the comparison on the large problem set.
func (l *Lab) AblationNoMoreMaster(procs int) ([]AblationNoMoreMasterRow, error) {
	var rows []AblationNoMoreMasterRow
	for _, name := range set2Names() {
		with, err := l.RunOne(name, procs, core.MechIncrements, sched.Workload(), nil)
		if err != nil {
			return nil, err
		}
		without, err := l.RunOne(name, procs, core.MechIncrements, sched.Workload(), func(p *solver.Params) {
			p.MechConfig.NoMoreMasterOpt = false
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationNoMoreMasterRow{
			Name: name, Procs: procs,
			MsgsWith: with.StateMsgs, MsgsWithout: without.StateMsgs,
			ReductionFactor: float64(without.StateMsgs) / float64(with.StateMsgs),
		})
	}
	return rows, nil
}

// WriteAblationNoMoreMaster prints the §2.3 comparison.
func WriteAblationNoMoreMaster(w io.Writer, rows []AblationNoMoreMasterRow) {
	fmt.Fprintf(w, "%-13s %5s %12s %12s %10s\n", "Matrix", "procs", "with §2.3", "without", "factor")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %5d %12d %12d %9.2fx\n", r.Name, r.Procs, r.MsgsWith, r.MsgsWithout, r.ReductionFactor)
	}
}

// AblationElectionRow compares leader-election criteria for the snapshot
// algorithm (the paper's conclusion flags the criterion as a lever worth
// studying).
type AblationElectionRow struct {
	Name      string
	Procs     int
	MinRank   float64 // factorization time, seconds
	MaxRank   float64
	ByLoadKey float64
}

// AblationLeaderElection runs the snapshot mechanism under three
// consistent election orders: lowest rank (the paper's), highest rank,
// and lowest static initial load.
func (l *Lab) AblationLeaderElection(procs int) ([]AblationElectionRow, error) {
	var rows []AblationElectionRow
	for _, name := range set2Names() {
		row := AblationElectionRow{Name: name, Procs: procs}
		run := func(elect core.Elector) (float64, error) {
			res, err := l.RunOne(name, procs, core.MechSnapshot, sched.Workload(), func(p *solver.Params) {
				p.MechConfig.Elect = elect
			})
			if err != nil {
				return 0, err
			}
			return res.Time, nil
		}
		var err error
		if row.MinRank, err = run(core.ElectMinRank); err != nil {
			return nil, err
		}
		if row.MaxRank, err = run(core.ElectMaxRank); err != nil {
			return nil, err
		}
		m, err := l.Mapping(name, procs)
		if err != nil {
			return nil, err
		}
		if row.ByLoadKey, err = run(core.ElectByKey(m.InitialLoad)); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAblationLeaderElection prints the election comparison.
func WriteAblationLeaderElection(w io.Writer, rows []AblationElectionRow) {
	fmt.Fprintf(w, "%-13s %5s %12s %12s %12s\n", "Matrix", "procs", "min-rank(s)", "max-rank(s)", "by-load(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %5d %12.2f %12.2f %12.2f\n", r.Name, r.Procs, r.MinRank, r.MaxRank, r.ByLoadKey)
	}
}

// AblationPartialRow compares full snapshots against the §5 partial
// snapshots (scoped to the master's candidate slaves): the paper
// conjectures partial snapshots reduce messages and weaken the
// synchronization.
type AblationPartialRow struct {
	Name         string
	Procs        int
	FullTime     float64
	PartialTime  float64
	FullMsgs     int64
	PartialMsgs  int64
	FullPeakM    float64
	PartialPeakM float64
}

// AblationPartialSnapshot runs the comparison on the large set.
func (l *Lab) AblationPartialSnapshot(procs int) ([]AblationPartialRow, error) {
	var rows []AblationPartialRow
	for _, name := range set2Names() {
		full, err := l.RunOne(name, procs, core.MechSnapshot, sched.Workload(), nil)
		if err != nil {
			return nil, err
		}
		part, err := l.RunOne(name, procs, core.MechSnapshot, sched.Workload(), func(p *solver.Params) {
			p.PartialSnapshots = true
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationPartialRow{
			Name: name, Procs: procs,
			FullTime: full.Time, PartialTime: part.Time,
			FullMsgs: full.StateMsgs, PartialMsgs: part.StateMsgs,
			FullPeakM: full.MaxPeakMem / 1e6, PartialPeakM: part.MaxPeakMem / 1e6,
		})
	}
	return rows, nil
}

// WriteAblationPartialSnapshot prints the §5 partial-snapshot comparison.
func WriteAblationPartialSnapshot(w io.Writer, rows []AblationPartialRow) {
	fmt.Fprintf(w, "%-13s %5s | %10s %10s | %10s %10s | %10s %10s\n",
		"Matrix", "procs", "full t(s)", "part t(s)", "full msgs", "part msgs", "full peak", "part peak")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %5d | %10.2f %10.2f | %10d %10d | %10.3f %10.3f\n",
			r.Name, r.Procs, r.FullTime, r.PartialTime, r.FullMsgs, r.PartialMsgs,
			r.FullPeakM, r.PartialPeakM)
	}
}

// AblationNetworkRow compares the mechanisms on the default (fast) and a
// high-latency/low-bandwidth interconnect — the paper's closing remark
// that snapshots "could still be well adapted" to such systems.
type AblationNetworkRow struct {
	Name          string
	Procs         int
	FastIncr      float64
	FastSnap      float64
	SlowIncr      float64
	SlowSnap      float64
	SlowIncrBytes float64
	SlowSnapBytes float64
}

// AblationNetwork runs the interconnect comparison.
func (l *Lab) AblationNetwork(procs int) ([]AblationNetworkRow, error) {
	var rows []AblationNetworkRow
	for _, name := range set2Names() {
		row := AblationNetworkRow{Name: name, Procs: procs}
		for _, mech := range []core.Mech{core.MechIncrements, core.MechSnapshot} {
			fast, err := l.RunOne(name, procs, mech, sched.Workload(), nil)
			if err != nil {
				return nil, err
			}
			slow, err := l.RunOneOn(name, procs, mech, sched.Workload(),
				&sim.AppRunner{Network: sim.HighLatencyNetwork()}, nil)
			if err != nil {
				return nil, err
			}
			if mech == core.MechIncrements {
				row.FastIncr, row.SlowIncr, row.SlowIncrBytes = fast.Time, slow.Time, slow.StateBytes
			} else {
				row.FastSnap, row.SlowSnap, row.SlowSnapBytes = fast.Time, slow.Time, slow.StateBytes
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAblationNetwork prints the interconnect comparison.
func WriteAblationNetwork(w io.Writer, rows []AblationNetworkRow) {
	fmt.Fprintf(w, "%-13s %5s | %10s %10s | %10s %10s | %12s %12s\n",
		"Matrix", "procs", "fast incr", "fast snap", "slow incr", "slow snap", "incr MB", "snap MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %5d | %10.2f %10.2f | %10.2f %10.2f | %12.2f %12.2f\n",
			r.Name, r.Procs, r.FastIncr, r.FastSnap, r.SlowIncr, r.SlowSnap,
			r.SlowIncrBytes/1e6, r.SlowSnapBytes/1e6)
	}
}

// AblationThresholdRow sweeps the broadcast threshold of the increments
// mechanism (§2.3: "the threshold should be chosen adequately").
type AblationThresholdRow struct {
	Name     string
	Procs    int
	Factor   float64 // multiplier on the default threshold
	Msgs     int64
	Time     float64
	PeakMemM float64
}

// AblationThreshold sweeps threshold multipliers on one problem.
func (l *Lab) AblationThreshold(name string, procs int, factors []float64) ([]AblationThresholdRow, error) {
	if len(factors) == 0 {
		factors = []float64{0.1, 0.5, 1, 4, 16}
	}
	var rows []AblationThresholdRow
	for _, f := range factors {
		f := f
		res, err := l.RunOne(name, procs, core.MechIncrements, sched.Memory(), func(p *solver.Params) {
			p.ThresholdScale = f
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationThresholdRow{
			Name: name, Procs: procs, Factor: f,
			Msgs: res.StateMsgs, Time: res.Time, PeakMemM: res.MaxPeakMem / 1e6,
		})
	}
	return rows, nil
}

// WriteAblationThreshold prints the threshold sweep.
func WriteAblationThreshold(w io.Writer, rows []AblationThresholdRow) {
	fmt.Fprintf(w, "%-13s %5s %8s %10s %10s %12s\n", "Matrix", "procs", "thr×", "msgs", "time(s)", "peak(10^6)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %5d %8.1f %10d %10.2f %12.3f\n", r.Name, r.Procs, r.Factor, r.Msgs, r.Time, r.PeakMemM)
	}
}
