// Package live runs the load-exchange mechanisms over real goroutines and
// channels — the same transport-agnostic state machines that the
// deterministic simulator drives, now exercised with true concurrency.
//
// Each node is one goroutine owning its mechanism instance and two
// channels: a prioritized state-information channel and a data channel,
// mirroring the paper's model (§1). The package exists for two purposes:
// validating the mechanisms under the race detector, and the quickstart
// example (a self-contained miniature of the paper's application).
package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// message travels between nodes.
type message struct {
	from    int
	kind    int
	payload any
}

// workItem is a unit of application work sent master → slave.
type workItem struct {
	Load core.Load
	Spin time.Duration
}

// Node is one process of the live cluster.
type Node struct {
	rank    int
	cluster *Cluster
	exch    core.Exchanger
	stateCh chan message
	dataCh  chan workItem
	quit    chan struct{}
	// speed multiplies the execution time of work items this node
	// executes (1 = nominal).
	speed float64

	// executed counts completed work items.
	executed int64

	// counters is the node's measurement accumulator. Only the node's
	// own goroutine touches it (sends, decisions and busy transitions
	// all happen there); other goroutines read it via a control
	// closure, so no lock is needed.
	counters core.Counters
	// busy meters snapshot-blocked wall-clock time, observed after
	// every handled state message.
	busy core.BusyMeter
}

// Cluster is a set of live nodes.
type Cluster struct {
	nodes []*Node
	start time.Time
	wg    sync.WaitGroup
	// topo is the neighbor graph decisions are restricted to; nil means
	// the complete graph. The mechanisms themselves carry the same
	// topology via core.Config and never send across a non-edge.
	topo *core.Topology

	// outstanding counts work items in flight (assigned, not executed);
	// used for quiescence detection by Drain.
	outstanding int64
	// assigned counts work items ever assigned; it is incremented
	// before the mechanism's Commit so that any snapshot cut that
	// observed a decision's credits is covered by a later read of this
	// counter (the conservation tests rely on that ordering).
	assigned int64
}

// ctx adapts a node to core.Context. State channels are buffered deeply
// enough that sends practically never block for demo-scale workloads; a
// blocking send (rather than a spawned goroutine) preserves the per-pair
// FIFO order the snapshot protocol requires.
type ctx struct{ n *Node }

func (c ctx) Rank() int    { return c.n.rank }
func (c ctx) N() int       { return len(c.n.cluster.nodes) }
func (c ctx) Now() float64 { return time.Since(c.n.cluster.start).Seconds() }
func (c ctx) Send(to int, kind int, payload any, bytes float64) {
	c.n.counters.AddState(kind, bytes)
	c.n.cluster.nodes[to].stateCh <- message{from: c.n.rank, kind: kind, payload: payload}
}
func (c ctx) Broadcast(kind int, payload any, bytes float64) {
	for to := range c.n.cluster.nodes {
		if to != c.n.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

// ClusterSetup seeds per-rank state at construction time. Initial loads
// follow the paper's static-mapping convention — every process knows
// everyone's starting load, so they are seeded into all views rather
// than broadcast.
type ClusterSetup struct {
	// Initial is the per-rank initial load (nil means all zero).
	Initial []core.Load
	// Speed is the per-rank execution-time multiplier (nil or 0 entries
	// mean nominal speed).
	Speed []float64
}

// NewCluster starts n nodes running the given mechanism with zero
// initial loads and nominal speeds.
func NewCluster(n int, mech core.Mech, cfg core.Config) (*Cluster, error) {
	return NewClusterSetup(n, mech, cfg, ClusterSetup{})
}

// NewClusterSetup starts n nodes running the given mechanism with the
// given per-rank initial loads and speed factors.
func NewClusterSetup(n int, mech core.Mech, cfg core.Config, setup ClusterSetup) (*Cluster, error) {
	if setup.Initial != nil && len(setup.Initial) != n {
		return nil, fmt.Errorf("live: %d initial loads for %d ranks", len(setup.Initial), n)
	}
	if setup.Speed != nil && len(setup.Speed) != n {
		return nil, fmt.Errorf("live: %d speed factors for %d ranks", len(setup.Speed), n)
	}
	cl := &Cluster{start: time.Now(), topo: cfg.Topo}
	for r := 0; r < n; r++ {
		exch, err := core.New(mech, n, r, cfg)
		if err != nil {
			return nil, err
		}
		speed := 1.0
		if setup.Speed != nil && setup.Speed[r] > 0 {
			speed = setup.Speed[r]
		}
		node := &Node{
			rank:    r,
			cluster: cl,
			exch:    exch,
			stateCh: make(chan message, 1<<16),
			dataCh:  make(chan workItem, 1<<12),
			quit:    make(chan struct{}),
			speed:   speed,
		}
		cl.nodes = append(cl.nodes, node)
	}
	for r, node := range cl.nodes {
		initial := core.Load{}
		if setup.Initial != nil {
			initial = setup.Initial[r]
		}
		node.exch.Init(ctx{node}, initial)
		core.SeedView(node.exch, r, setup.Initial)
	}
	for _, node := range cl.nodes {
		cl.wg.Add(1)
		go node.run()
	}
	return cl, nil
}

// run is the node main loop: Algorithm 1 with a prioritized state channel.
func (n *Node) run() {
	defer n.cluster.wg.Done()
	for {
		// Priority 1: drain state-information messages.
		for {
			select {
			case m := <-n.stateCh:
				n.handle(m)
				continue
			default:
			}
			break
		}
		if n.exch.Busy() {
			// Snapshot in progress: treat only state messages.
			select {
			case m := <-n.stateCh:
				n.handle(m)
			case <-n.quit:
				return
			}
			continue
		}
		select {
		case m := <-n.stateCh:
			n.handle(m)
		case w := <-n.dataCh:
			n.execute(w)
		case <-n.quit:
			return
		}
	}
}

// execute performs one work item: account it, spin (scaled by the
// node's speed factor), release it.
func (n *Node) execute(w workItem) {
	c := ctx{n}
	n.exch.LocalChange(c, w.Load, true)
	if w.Spin > 0 {
		spin := w.Spin
		if n.speed != 1 {
			spin = time.Duration(float64(spin) * n.speed)
		}
		time.Sleep(spin)
	}
	neg := w.Load
	for i := range neg {
		neg[i] = -neg[i]
	}
	n.exch.LocalChange(c, neg, true)
	atomic.AddInt64(&n.executed, 1)
	atomic.AddInt64(&n.cluster.outstanding, -1)
}

// Decide performs one dynamic decision on the master node: acquire a view,
// pick the least-loaded peers, reserve load on them and ship the work. It
// blocks until the decision completed (for the snapshot mechanism, until
// the snapshot finished). The distribution function returns the share for
// each selected slave.
func (cl *Cluster) Decide(master int, totalWork float64, slaves int, spin time.Duration) error {
	_, err := cl.DecideObserved(master, totalWork, slaves, spin)
	return err
}

// DecideObserved is Decide plus the record the cross-runtime equivalence
// tests check: the view consulted at ready time and the assignments
// taken.
func (cl *Cluster) DecideObserved(master int, totalWork float64, slaves int, spin time.Duration) (core.Decision, error) {
	if master < 0 || master >= len(cl.nodes) {
		return core.Decision{}, fmt.Errorf("live: bad master %d", master)
	}
	n := cl.nodes[master]
	dec := core.Decision{Master: master}
	done := make(chan struct{})
	// The decision must run on the master's goroutine; mechanisms are
	// single-goroutine objects, so the decision is delivered as a
	// closure via a dedicated control message.
	var acquireAt time.Time
	sel := func() {
		n.counters.AddDecision(time.Since(acquireAt).Seconds())
		dec = core.PlanDecisionOn(cl.topo, n.exch.View(), master, slaves, totalWork)
		atomic.AddInt64(&cl.assigned, int64(len(dec.Assignments)))
		n.exch.Commit(ctx{n}, dec.Assignments)
		for _, a := range dec.Assignments {
			atomic.AddInt64(&cl.outstanding, 1)
			n.counters.AddData(core.BytesWorkItem)
			cl.nodes[a.Proc].dataCh <- workItem{Load: a.Delta, Spin: spin}
		}
		close(done)
	}
	n.stateCh <- message{from: master, kind: kindControl, payload: controlPayload{run: func() {
		acquireAt = time.Now()
		n.exch.Acquire(ctx{n}, sel)
	}}}
	<-done
	return dec, nil
}

// kindControl is an internal message kind carrying a closure to run on
// the node's goroutine; it is never given to mechanisms.
const kindControl = -1

type controlPayload struct{ run func() }

// handleControl intercepts control messages before the mechanism sees
// them. Wired into the loop via HandleMessage dispatch below. Both paths
// can flip the mechanism's Busy state (control closures run Acquire and
// Commit), so both are followed by a busy-time check.
func (n *Node) handle(m message) {
	if m.kind == kindControl {
		m.payload.(controlPayload).run()
		n.busy.Observe(n.exch.Busy())
		return
	}
	n.exch.HandleMessage(ctx{n}, m.from, m.kind, m.payload)
	n.busy.Observe(n.exch.Busy())
}

// LocalChange applies a spontaneous local load variation (not slave
// work) on rank r's own goroutine and returns once it is applied.
func (cl *Cluster) LocalChange(r int, delta core.Load) {
	n := cl.nodes[r]
	done := make(chan struct{})
	n.stateCh <- message{from: r, kind: kindControl, payload: controlPayload{run: func() {
		n.exch.LocalChange(ctx{n}, delta, false)
		close(done)
	}}}
	<-done
}

// NoMoreMaster announces on rank r's own goroutine that r will never
// take a dynamic decision again (§2.3) and returns once announced.
func (cl *Cluster) NoMoreMaster(r int) {
	n := cl.nodes[r]
	done := make(chan struct{})
	n.stateCh <- message{from: r, kind: kindControl, payload: controlPayload{run: func() {
		n.exch.NoMoreMaster(ctx{n})
		close(done)
	}}}
	<-done
}

// Drain waits until all assigned work has executed or the timeout expires.
func (cl *Cluster) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for atomic.LoadInt64(&cl.outstanding) > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("live: %d work items still outstanding", atomic.LoadInt64(&cl.outstanding))
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Stop terminates all node goroutines.
func (cl *Cluster) Stop() {
	for _, n := range cl.nodes {
		close(n.quit)
	}
	cl.wg.Wait()
}

// Executed returns how many work items node r completed.
func (cl *Cluster) Executed(r int) int64 {
	return atomic.LoadInt64(&cl.nodes[r].executed)
}

// AssignedItems returns how many work items were ever assigned across
// the cluster (counted just before each decision's Commit).
func (cl *Cluster) AssignedItems() int64 { return atomic.LoadInt64(&cl.assigned) }

// ExecutedItems returns how many work items were executed across the
// cluster.
func (cl *Cluster) ExecutedItems() int64 {
	var total int64
	for r := range cl.nodes {
		total += cl.Executed(r)
	}
	return total
}

// AcquireView runs one full view acquisition on rank r — a snapshot,
// for the snapshot mechanism — committing no assignment, and returns
// the coherent view.
func (cl *Cluster) AcquireView(r int) ([]core.Load, error) {
	if r < 0 || r >= len(cl.nodes) {
		return nil, fmt.Errorf("live: bad rank %d", r)
	}
	n := cl.nodes[r]
	var view []core.Load
	done := make(chan struct{})
	n.stateCh <- message{from: r, kind: kindControl, payload: controlPayload{run: func() {
		n.exch.Acquire(ctx{n}, func() {
			view = n.exch.View().Snapshot()
			n.exch.Commit(ctx{n}, nil)
			close(done)
		})
	}}}
	<-done
	return view, nil
}

// View returns a copy of node r's current estimates, obtained on the
// node's own goroutine (safe at any time).
func (cl *Cluster) View(r int) []core.Load {
	n := cl.nodes[r]
	out := make(chan []core.Load, 1)
	n.stateCh <- message{from: r, kind: kindControl, payload: controlPayload{run: func() {
		out <- n.exch.View().Snapshot()
	}}}
	return <-out
}

// Stats returns node r's mechanism counters (on its own goroutine).
func (cl *Cluster) Stats(r int) core.Stats {
	n := cl.nodes[r]
	out := make(chan core.Stats, 1)
	n.stateCh <- message{from: r, kind: kindControl, payload: controlPayload{run: func() {
		out <- n.exch.Stats()
	}}}
	return <-out
}

// Counters returns node r's measurement accumulator (on its own
// goroutine). Snapshot rounds derive from the mechanism stats at read
// time.
func (cl *Cluster) Counters(r int) core.Counters {
	n := cl.nodes[r]
	out := make(chan core.Counters, 1)
	n.stateCh <- message{from: r, kind: kindControl, payload: controlPayload{run: func() {
		c := n.counters.Clone()
		c.BusyTime = n.busy.Seconds
		c.SnapshotRounds = core.SnapshotRoundsOf(n.exch.Stats())
		out <- c
	}}}
	return <-out
}
