package experiments

// The sustained-throughput bench of the scheduler service: a stream of
// identical synthetic jobs over one resident mesh, per mechanism. The
// one-shot matrix measures one run's cost; this measures the amortized
// regime the ROADMAP north-star cares about — jobs per second and tail
// makespan at a fixed offered load, with the load-information mechanism
// shared across concurrent tenants.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/stats"
)

// Service-bench metric names (beside the shared counter metrics).
const (
	MetricJobs        = "jobs"
	MetricJobsPerSec  = "jobs_per_sec"
	MetricMakespanP50 = "makespan_p50_s"
	MetricMakespanP99 = "makespan_p99_s"
)

// ServiceBenchConfig shapes one sustained-throughput sweep.
type ServiceBenchConfig struct {
	// Procs is the resident mesh size.
	Procs int
	// Jobs is the number of jobs streamed per mechanism.
	Jobs int
	// Conc is the service's concurrency cap (offered load).
	Conc int
	// Decisions/Work/Slaves/Spin shape each synthetic job.
	Decisions int
	Work      float64
	Slaves    int
	Spin      time.Duration
	// Term is the per-job termination protocol.
	Term string
	// Mechs lists the mechanisms to bench (nil = all three).
	Mechs []core.Mech
}

func (c *ServiceBenchConfig) normalize() {
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Jobs <= 0 {
		c.Jobs = 24
	}
	if c.Conc <= 0 {
		c.Conc = 4
	}
	if c.Decisions <= 0 {
		c.Decisions = 3
	}
	if c.Work <= 0 {
		c.Work = 90
	}
	if c.Slaves <= 0 {
		c.Slaves = 2
	}
	if len(c.Mechs) == 0 {
		c.Mechs = core.Mechanisms()
	}
}

// ServiceSweep streams cfg.Jobs jobs through one resident mesh per
// mechanism and reports each mesh as one cell (Runtime "net", Scenario
// "service-stream"): throughput and tail makespan from the service
// metrics, counter totals from the mesh and the per-job shares.
func ServiceSweep(cfg ServiceBenchConfig, progress func(core.Mech)) ([]CellResult, []CellError) {
	cfg.normalize()
	var results []CellResult
	var failed []CellError
	for _, mech := range cfg.Mechs {
		cell := Cell{Scenario: "service-stream", Mech: string(mech), Runtime: "net", Term: cfg.Term}
		if progress != nil {
			progress(mech)
		}
		res, err := serviceCell(cfg, mech)
		if err != nil {
			failed = append(failed, CellError{Cell: cell, Err: err})
			continue
		}
		res.Cell = cell
		results = append(results, res)
	}
	return results, failed
}

// serviceCell runs one mechanism's stream and flattens the service
// metrics into a cell result (single-run summaries).
func serviceCell(cfg ServiceBenchConfig, mech core.Mech) (CellResult, error) {
	s, err := service.New(service.Config{
		Procs:         cfg.Procs,
		Mech:          mech,
		Term:          cfg.Term,
		MaxConcurrent: cfg.Conc,
		QueueCap:      cfg.Jobs + cfg.Conc,
	})
	if err != nil {
		return CellResult{}, err
	}
	defer s.Close()

	spec := service.JobSpec{
		Decisions: cfg.Decisions,
		Work:      cfg.Work,
		Slaves:    cfg.Slaves,
		Spin:      cfg.Spin.Seconds(),
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.Submit(spec)
			if err != nil {
				errs[i] = err
				return
			}
			st, err := s.Result(id, 2*time.Minute)
			if err != nil {
				errs[i] = err
				return
			}
			if st.State != service.StateDone {
				errs[i] = fmt.Errorf("job %d finished %s: %s", id, st.State, st.Err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return CellResult{}, err
		}
	}

	m := s.Metrics()
	one := func(v float64) stats.Summary { return stats.Summarize([]float64{v}) }
	res := CellResult{
		Procs:   cfg.Procs,
		Repeats: 1,
		Metrics: map[string]stats.Summary{
			MetricJobs:            one(float64(m.Completed)),
			MetricJobsPerSec:      one(m.JobsPerSec),
			MetricMakespanP50:     one(m.MakespanP50),
			MetricMakespanP99:     one(m.MakespanP99),
			MetricStateMsgs:       one(float64(m.Mesh.StateMsgs)),
			MetricStateBytes:      one(m.Mesh.StateBytes),
			MetricDataMsgs:        one(float64(m.Jobs.DataMsgs)),
			MetricDataBytes:       one(m.Jobs.DataBytes),
			MetricCtrlMsgs:        one(float64(m.Jobs.CtrlMsgs)),
			MetricCtrlBytes:       one(m.Jobs.CtrlBytes),
			MetricDecisions:       one(float64(m.Jobs.Decisions)),
			MetricDecisionLatency: one(m.Jobs.DecisionLatency),
			MetricSnapshotRounds:  one(float64(m.Mesh.SnapshotRounds)),
		},
	}
	return res, nil
}
