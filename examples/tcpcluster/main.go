// TCP cluster demo: the quickstart scenario — three masters take
// concurrent dynamic scheduling decisions under each load-information
// exchange mechanism of Guermouche & L'Excellent (RR-5478, 2005) — but
// instead of goroutines and channels (examples/quickstart), the eight
// nodes talk over real localhost TCP sockets with the length-prefixed
// binary codec: the same core state machines, now facing serialization,
// per-pair FIFO connections and acknowledgment-based quiescence.
//
//	go run ./examples/tcpcluster
//
// For a cluster of separate OS processes, see `go run ./cmd/loadex
// cluster` (this demo keeps the nodes in-process so it is one binary).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/net"
)

func main() {
	const nodes = 8
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		fmt.Printf("=== mechanism: %s (localhost TCP, binary codec) ===\n", mech)
		cl, err := net.NewCluster(nodes, mech, core.Config{
			Threshold:       core.Load{core.Workload: 5},
			NoMoreMasterOpt: true,
		}, net.Options{})
		if err != nil {
			log.Fatal(err)
		}

		// Three masters decide concurrently: each distributes 120 units
		// of work over its 3 least-loaded peers (as it sees them).
		errs := make(chan error, 3)
		for _, master := range []int{0, 1, 2} {
			go func(m int) { errs <- cl.Decide(m, 120, 3, 2*time.Millisecond) }(master)
		}
		for i := 0; i < 3; i++ {
			if err := <-errs; err != nil {
				log.Fatal(err)
			}
		}
		if err := cl.Drain(5 * time.Second); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond) // let trailing updates settle

		fmt.Println("work items executed per node:")
		for r := 0; r < nodes; r++ {
			fmt.Printf("  node %d: %d\n", r, cl.Executed(r))
		}
		var bytesIn, msgsIn int64
		for r := 0; r < nodes; r++ {
			tr := cl.Transport(r)
			bytesIn += tr.BytesIn
			msgsIn += tr.MsgsIn
		}
		fmt.Printf("wire traffic: %d messages, %d bytes\n", msgsIn, bytesIn)
		if mech == core.MechSnapshot {
			st := cl.Stats(0)
			fmt.Printf("node 0 snapshot stats: initiated=%d restarts=%d\n",
				st.SnapshotsInitiated, st.SnapshotRestarts)
		}
		cl.Stop()
	}
	fmt.Println("done — `go run ./cmd/loadex cluster` forks the same workload as separate OS processes")
}
