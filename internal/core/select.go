package core

// LeastLoaded returns the ranks of the k processes with the smallest
// estimate of metric m in the view, excluding rank `exclude` (pass -1 to
// exclude nobody). Ties break toward the lower rank, so the selection is
// a deterministic function of the view — every runtime (sim, live, net)
// uses this one function, which is what lets the cross-runtime
// equivalence tests re-derive a master's selection from its recorded
// view.
//
// The selection is a bounded max-heap partial sort: O(n log k) instead
// of scanning candidates quadratically, so the hot decision path scales
// past the paper's 128 processes (see BenchmarkLeastLoaded).
func LeastLoaded(v *View, m Metric, exclude, k int) []int {
	n := v.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return []int{}
	}
	if k == 1 {
		// The common PlanDecision case: one least-loaded slave. The view
		// tracks its minimum incrementally, so this is O(1) when the
		// cache is warm and a plain scan (which re-warms it) otherwise.
		if best := v.minRank(m, exclude); best >= 0 {
			return []int{best}
		}
		return []int{}
	}
	// heap is a max-heap of the k best candidates seen so far, ordered
	// by (load, rank): the root is the worst kept candidate, evicted
	// when a strictly better one arrives. Ranks are visited in
	// ascending order, so an incoming candidate that ties the root on
	// load necessarily has the higher rank and loses the tie-break —
	// strict comparison preserves the exact lower-rank-wins semantics.
	type cand struct {
		p int
		l float64
	}
	worse := func(a, b cand) bool {
		return a.l > b.l || (a.l == b.l && a.p > b.p)
	}
	heap := make([]cand, 0, k)
	siftDown := func(i int) {
		for {
			left, right := 2*i+1, 2*i+2
			top := i
			if left < len(heap) && worse(heap[left], heap[top]) {
				top = left
			}
			if right < len(heap) && worse(heap[right], heap[top]) {
				top = right
			}
			if top == i {
				return
			}
			heap[i], heap[top] = heap[top], heap[i]
			i = top
		}
	}
	for p := 0; p < n; p++ {
		if p == exclude {
			continue
		}
		c := cand{p, v.Metric(p, m)}
		if len(heap) < k {
			heap = append(heap, c)
			// Sift up.
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !worse(heap[i], heap[parent]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
		} else if worse(heap[0], c) {
			heap[0] = c
			siftDown(0)
		}
	}
	// Drain the heap worst-first into the output, best-first.
	out := make([]int, len(heap))
	for len(heap) > 0 {
		last := len(heap) - 1
		out[last] = heap[0].p
		heap[0] = heap[last]
		heap = heap[:last]
		siftDown(0)
	}
	return out
}

// LeastLoadedAmong is LeastLoaded restricted to the given candidate
// ranks (deduplicated by the caller; self/exclude entries are
// skipped). Ties break toward the lower rank when candidates are
// ascending — the topology's neighbor lists are. Selection on a
// sparse topology uses it so masters only select slaves they share an
// edge with.
func LeastLoadedAmong(v *View, m Metric, exclude, k int, candidates []int) []int {
	if k > len(candidates) {
		k = len(candidates)
	}
	if k <= 0 {
		return []int{}
	}
	sub := make([]Load, 0, len(candidates))
	ranks := make([]int, 0, len(candidates))
	for _, p := range candidates {
		if p == exclude || p < 0 || p >= v.N() {
			continue
		}
		sub = append(sub, v.Load(p))
		ranks = append(ranks, p)
	}
	sel := LeastLoaded(ViewOf(sub), m, -1, k)
	out := make([]int, len(sel))
	for i, s := range sel {
		out[i] = ranks[s]
	}
	return out
}

// ViewOf wraps a load slice in a read-only View, so selection helpers
// can run over a recorded snapshot.
func ViewOf(loads []Load) *View { return &View{loads: loads} }

// Decision records one dynamic decision for invariant checking: the
// view the master consulted at acquire-ready time and the assignments
// it committed. The live and net runtimes both return it from their
// observed-decision APIs, so cross-runtime tests compare like with
// like.
type Decision struct {
	Master      int
	View        []Load
	Assignments []Assignment
}

// PlanDecision takes the dynamic scheduling decision every runtime
// driver shares: record the master's view, select the `slaves`
// least-workload peers per that view, and split totalWork into equal
// shares. Keeping the plan in one function is what makes the
// cross-runtime equivalence tests meaningful — sim, live and net
// cannot drift apart on tie-breaking, share rounding or counter
// ordering. The caller commits the returned assignments and ships the
// work.
func PlanDecision(view *View, master, slaves int, totalWork float64) Decision {
	d := Decision{Master: master, View: view.Snapshot()}
	sel := LeastLoaded(view, Workload, master, slaves)
	share := totalWork / float64(len(sel))
	for _, p := range sel {
		d.Assignments = append(d.Assignments, Assignment{Proc: int32(p), Delta: Load{Workload: share}})
	}
	return d
}

// PlanDecisionOn is PlanDecision restricted to a topology: on a sparse
// graph the master selects slaves among its neighbors only (the only
// ranks whose load it hears about and the only links it can ship work
// over). On the complete graph (nil or full) it is exactly
// PlanDecision — same code path, same tie-breaking.
func PlanDecisionOn(topo *Topology, view *View, master, slaves int, totalWork float64) Decision {
	if topo.IsFull() {
		return PlanDecision(view, master, slaves, totalWork)
	}
	d := Decision{Master: master, View: view.Snapshot()}
	sel := LeastLoadedAmong(view, Workload, master, slaves, topo.Neighbors(master))
	if len(sel) == 0 {
		return d
	}
	share := totalWork / float64(len(sel))
	for _, p := range sel {
		d.Assignments = append(d.Assignments, Assignment{Proc: int32(p), Delta: Load{Workload: share}})
	}
	return d
}
