package solver_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/solver"
)

// TestSimGoldens pins the deterministic simulator results to the values
// recorded immediately before the application-port refactor (PR 4): the
// port's sim adapter must reproduce the pre-refactor behaviour
// bit-for-bit — same virtual makespan, same peak memory, same message
// and event counts. Any drift here means the adapter changed the event
// sequence, not just the plumbing.
func TestSimGoldens(t *testing.T) {
	type golden struct {
		mech      core.Mech
		strat     string
		time      float64
		peak      float64
		decisions int
		stateMsgs int64
		dataMsgs  int64
		steps     uint64
	}
	strategies := map[string]func() *sched.Strategy{
		"workload": sched.Workload,
		"memory":   sched.Memory,
	}
	cases := map[string][]golden{
		// buildMapping(8, 8, 8, 8)
		"8x8x8@8p": {
			{"increments", "workload", 0.006037, 3110.500000, 9, 718, 101, 1131},
			{"increments", "memory", 0.006493, 2451.500000, 9, 711, 87, 1149},
			{"snapshot", "workload", 0.007340, 3555.000000, 9, 217, 96, 629},
			{"snapshot", "memory", 0.008396, 2153.500000, 9, 216, 79, 610},
			{"naive", "workload", 0.006037, 3110.500000, 9, 738, 101, 1137},
			{"naive", "memory", 0.006493, 2451.500000, 9, 722, 87, 1156},
		},
		// buildMapping(10, 10, 10, 16)
		"10x10x10@16p": {
			{"increments", "workload", 0.013727, 4950.000000, 29, 3355, 380, 4818},
			{"increments", "memory", 0.018562, 5376.000000, 29, 3187, 311, 4473},
			{"snapshot", "workload", 0.023779, 4950.000000, 29, 1600, 399, 3711},
			{"snapshot", "memory", 0.033822, 7323.500000, 29, 1577, 306, 3651},
			{"naive", "workload", 0.013790, 4950.000000, 29, 3723, 394, 5218},
			{"naive", "memory", 0.020786, 5776.500000, 29, 3494, 337, 5064},
		},
	}
	build := map[string]func() [4]int{
		"8x8x8@8p":     func() [4]int { return [4]int{8, 8, 8, 8} },
		"10x10x10@16p": func() [4]int { return [4]int{10, 10, 10, 16} },
	}
	for grid, goldens := range cases {
		dims := build[grid]()
		for _, g := range goldens {
			m := buildMapping(t, dims[0], dims[1], dims[2], dims[3])
			res, err := solver.Run(m, solver.DefaultParams(g.mech, strategies[g.strat]()), onSim())
			if err != nil {
				t.Fatalf("%s %s/%s: %v", grid, g.mech, g.strat, err)
			}
			// Time was recorded at 1e-6 precision; everything else exact.
			if diff := res.Time - g.time; diff > 5e-7 || diff < -5e-7 {
				t.Errorf("%s %s/%s: time %v, golden %v", grid, g.mech, g.strat, res.Time, g.time)
			}
			if res.MaxPeakMem != g.peak {
				t.Errorf("%s %s/%s: peak %v, golden %v", grid, g.mech, g.strat, res.MaxPeakMem, g.peak)
			}
			if res.Decisions != g.decisions {
				t.Errorf("%s %s/%s: decisions %d, golden %d", grid, g.mech, g.strat, res.Decisions, g.decisions)
			}
			if res.StateMsgs != g.stateMsgs {
				t.Errorf("%s %s/%s: state msgs %d, golden %d", grid, g.mech, g.strat, res.StateMsgs, g.stateMsgs)
			}
			if res.DataMsgs != g.dataMsgs {
				t.Errorf("%s %s/%s: data msgs %d, golden %d", grid, g.mech, g.strat, res.DataMsgs, g.dataMsgs)
			}
			if res.Steps != g.steps {
				t.Errorf("%s %s/%s: steps %d, golden %d", grid, g.mech, g.strat, res.Steps, g.steps)
			}
		}
	}
}
