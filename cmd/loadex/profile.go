package main

// Shared -cpuprofile/-memprofile support for the measurement commands
// (`loadex run`, `loadex experiment`): plain runtime/pprof around the
// command body, so a hot cell can be profiled exactly as it runs in a
// sweep, e.g.
//
//	loadex run -scenario solver-wl -n 4096 -runtime sim -cpuprofile cpu.out
//	go tool pprof cpu.out

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags carries the profiling flags of one command invocation.
type profileFlags struct {
	cpu string
	mem string
}

func (p *profileFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of the whole command to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile (taken at exit, after a GC) to this file")
}

// start begins CPU profiling when requested and returns the stop
// function that finishes both profiles. Call it once after flag
// parsing; the returned function is safe to defer and reports the
// first write error.
func (p *profileFlags) start() (func() error, error) {
	var cpuF *os.File
	if p.cpu != "" {
		f, err := os.Create(p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() error {
		var first error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				first = err
			}
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			// A forced GC first, so the profile shows live retention
			// rather than whatever garbage the last cell left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
