package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a scenario to the registry. It panics on an empty or
// duplicate name — scenario registration is a program-initialization
// concern, not a runtime one.
func Register(w Workload) {
	name := w.Name()
	if name == "" || name == "all" {
		panic(fmt.Sprintf("workload: invalid scenario name %q", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: scenario %q registered twice", name))
	}
	registry[name] = w
}

// Get returns the scenario registered under name; the error for an
// unknown name lists every registered scenario.
func Get(name string) (Workload, error) {
	regMu.RLock()
	w, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return w, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario in Names order.
func All() []Workload {
	names := Names()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Workload, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}
