// Package sparse provides sparse matrix patterns, generators for the
// paper's test problems, and the adjacency structures consumed by the
// ordering and symbolic-analysis substrates.
//
// Only the pattern (structure) of matrices matters for this study: the
// load-exchange experiments depend on the shape of the multifrontal
// assembly tree and on per-front sizes, never on numerical values, so no
// numerical values are stored.
package sparse

import (
	"fmt"
	"sort"
)

// Kind distinguishes symmetric from unsymmetric problems (the "Type"
// column of Tables 1-2). For unsymmetric matrices the analysis works on
// the pattern of A+Aᵀ, as MUMPS does.
type Kind uint8

const (
	// Sym marks a matrix with symmetric pattern stored as lower triangle.
	Sym Kind = iota
	// Unsym marks a general pattern.
	Unsym
)

func (k Kind) String() string {
	if k == Sym {
		return "SYM"
	}
	return "UNS"
}

// Pattern is a sparse matrix pattern in compressed sparse column form.
// For Kind == Sym only entries with row >= col are stored and NNZ counts
// the stored lower triangle plus the implicit upper mirror minus the
// diagonal once, matching how collections usually report symmetric nnz.
type Pattern struct {
	N      int
	Kind   Kind
	ColPtr []int32
	RowIdx []int32
}

// Stored returns the number of explicitly stored entries.
func (p *Pattern) Stored() int { return len(p.RowIdx) }

// NNZ returns the logical number of nonzeros (mirroring the lower triangle
// for symmetric patterns, diagonal counted once).
func (p *Pattern) NNZ() int {
	if p.Kind == Unsym {
		return p.Stored()
	}
	diag := 0
	for j := 0; j < p.N; j++ {
		for q := p.ColPtr[j]; q < p.ColPtr[j+1]; q++ {
			if p.RowIdx[q] == int32(j) {
				diag++
			}
		}
	}
	return 2*p.Stored() - diag
}

// Validate checks structural invariants: monotone ColPtr, in-range sorted
// unique row indices, and (for Sym) lower-triangular storage.
func (p *Pattern) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("sparse: negative dimension %d", p.N)
	}
	if len(p.ColPtr) != p.N+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(p.ColPtr), p.N+1)
	}
	if p.ColPtr[0] != 0 || int(p.ColPtr[p.N]) != len(p.RowIdx) {
		return fmt.Errorf("sparse: ColPtr endpoints invalid")
	}
	for j := 0; j < p.N; j++ {
		if p.ColPtr[j] > p.ColPtr[j+1] {
			return fmt.Errorf("sparse: ColPtr not monotone at column %d", j)
		}
		prev := int32(-1)
		for q := p.ColPtr[j]; q < p.ColPtr[j+1]; q++ {
			r := p.RowIdx[q]
			if r < 0 || r >= int32(p.N) {
				return fmt.Errorf("sparse: row %d out of range in column %d", r, j)
			}
			if r <= prev {
				return fmt.Errorf("sparse: rows not sorted/unique in column %d", j)
			}
			if p.Kind == Sym && r < int32(j) {
				return fmt.Errorf("sparse: upper entry (%d,%d) in symmetric pattern", r, j)
			}
			prev = r
		}
	}
	return nil
}

// Builder accumulates coordinate-form entries and produces a Pattern.
// Duplicate entries are merged; for symmetric kinds upper-triangle entries
// are mirrored to the lower triangle.
type Builder struct {
	n    int
	kind Kind
	rows []int32
	cols []int32
}

// NewBuilder returns a builder for an n×n pattern of the given kind.
func NewBuilder(n int, kind Kind) *Builder {
	return &Builder{n: n, kind: kind}
}

// Add records entry (i, j). Out-of-range entries panic: generators are
// internal and must be correct.
func (b *Builder) Add(i, j int) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for n=%d", i, j, b.n))
	}
	if b.kind == Sym && i < j {
		i, j = j, i
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
}

// AddSym records both (i,j) and (j,i) for unsymmetric kinds; for symmetric
// kinds it is equivalent to Add.
func (b *Builder) AddSym(i, j int) {
	b.Add(i, j)
	if b.kind == Unsym && i != j {
		b.Add(j, i)
	}
}

// Build sorts, deduplicates and compresses the entries.
func (b *Builder) Build() *Pattern {
	type entry struct{ r, c int32 }
	es := make([]entry, len(b.rows))
	for k := range b.rows {
		es[k] = entry{b.rows[k], b.cols[k]}
	}
	sort.Slice(es, func(x, y int) bool {
		if es[x].c != es[y].c {
			return es[x].c < es[y].c
		}
		return es[x].r < es[y].r
	})
	p := &Pattern{N: b.n, Kind: b.kind, ColPtr: make([]int32, b.n+1)}
	var last entry = entry{-1, -1}
	for _, e := range es {
		if e == last {
			continue
		}
		last = e
		p.RowIdx = append(p.RowIdx, e.r)
		p.ColPtr[e.c+1]++
	}
	for j := 0; j < b.n; j++ {
		p.ColPtr[j+1] += p.ColPtr[j]
	}
	return p
}

// Graph is the undirected adjacency structure of A+Aᵀ without the
// diagonal: the input consumed by orderings and by the elimination tree.
type Graph struct {
	N   int
	Ptr []int32
	Adj []int32
	// Coords optionally carries vertex coordinates (filled by mesh
	// generators) enabling geometric nested dissection.
	Coords [][3]float64
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.Ptr[v+1] - g.Ptr[v]) }

// AdjOf returns the adjacency list of v (shared storage; do not modify).
func (g *Graph) AdjOf(v int) []int32 { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return len(g.Adj) / 2 }

// ToGraph builds the adjacency graph of pattern+patternᵀ, dropping the
// diagonal and merging duplicates.
func (p *Pattern) ToGraph() *Graph {
	deg := make([]int32, p.N)
	// First pass: count (both directions), ignoring diagonal.
	for j := 0; j < p.N; j++ {
		for q := p.ColPtr[j]; q < p.ColPtr[j+1]; q++ {
			i := p.RowIdx[q]
			if int(i) == j {
				continue
			}
			deg[i]++
			deg[j]++
		}
	}
	ptr := make([]int32, p.N+1)
	for v := 0; v < p.N; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj := make([]int32, ptr[p.N])
	next := make([]int32, p.N)
	copy(next, ptr[:p.N])
	for j := 0; j < p.N; j++ {
		for q := p.ColPtr[j]; q < p.ColPtr[j+1]; q++ {
			i := p.RowIdx[q]
			if int(i) == j {
				continue
			}
			adj[next[i]] = int32(j)
			next[i]++
			adj[next[j]] = i
			next[j]++
		}
	}
	// Sort and dedupe each adjacency list (unsymmetric patterns may
	// contain both (i,j) and (j,i)).
	outPtr := make([]int32, p.N+1)
	out := adj[:0]
	w := int32(0)
	for v := 0; v < p.N; v++ {
		lo, hi := ptr[v], ptr[v+1]
		lst := adj[lo:hi]
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		start := w
		var lastv int32 = -1
		for _, u := range lst {
			if u != lastv {
				out = append(out[:w], u)
				w++
				lastv = u
			}
		}
		_ = start
		outPtr[v+1] = w
	}
	return &Graph{N: p.N, Ptr: outPtr, Adj: out[:w]}
}
