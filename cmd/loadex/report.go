package main

// loadex report: render recorded traces into per-run timelines — a
// Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev)
// and a markdown latency-breakdown table, written next to the traces.
//
//	loadex cluster -scenario solver-wl -trace /tmp/traces
//	loadex report /tmp/traces
//
// Like `loadex validate`, every directory under the root that directly
// holds *.jsonl files renders as one run.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/obs"
)

func runReport(args []string) error {
	fs := flag.NewFlagSet("loadex report", flag.ExitOnError)
	dir := fs.String("dir", "", "root directory of recorded traces (each subdirectory holding *.jsonl files is one run)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" || fs.NArg() > 1 {
		return fmt.Errorf("usage: loadex report -dir <trace-root>")
	}
	return reportTraceRoot(os.Stdout, *dir)
}

// reportTraceRoot renders every trace set under root, writing
// timeline.json and report.md into each run directory.
func reportTraceRoot(w io.Writer, root string) error {
	dirs, err := chaos.TraceDirs(root)
	if err != nil {
		return err
	}
	if len(dirs) == 0 {
		return fmt.Errorf("no *.jsonl trace files under %s", root)
	}
	for _, d := range dirs {
		events, err := chaos.ReadDir(d)
		if err != nil {
			return err
		}
		tl := obs.BuildTimeline(events)
		jsonPath := filepath.Join(d, "timeline.json")
		mdPath := filepath.Join(d, "report.md")
		if err := writeTimelineJSON(jsonPath, tl); err != nil {
			return err
		}
		if err := writeTimelineMarkdown(mdPath, tl); err != nil {
			return err
		}
		fmt.Fprintf(w, "== report %s ==\n", d)
		fmt.Fprintf(w, "%d span(s) rendered", tl.Spans)
		if tl.Unmatched > 0 {
			fmt.Fprintf(w, " (%d unmatched — truncated trace?)", tl.Unmatched)
		}
		fmt.Fprintf(w, "\ntimeline: %s\nbreakdown: %s\n", jsonPath, mdPath)
		tl.WriteMarkdown(w)
		fmt.Fprintln(w)
	}
	return nil
}

func writeTimelineJSON(path string, tl *obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTimelineMarkdown(path string, tl *obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tl.WriteMarkdown(f)
	return f.Close()
}
