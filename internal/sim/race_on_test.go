//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build;
// allocation-count regression tests skip under it (instrumentation adds
// allocations the production build does not make).
const raceEnabled = true
