package chaos

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Event kinds recorded in trace files. One JSONL line per event.
const (
	// EvMeta opens a trace: run shape (cluster size, scenario,
	// mechanism, term protocol, chaos plan) for the validator's context.
	EvMeta = "meta"
	// EvSend / EvRecv bracket one application-level message: the sender
	// records EvSend before handing the message to the transport, the
	// receiver records EvRecv before processing it. The payload fields
	// (Kind, Node, Count, Work, Size, Spin) identify the message for
	// conservation matching.
	EvSend = "send"
	EvRecv = "recv"
	// EvStart / EvDone bracket one compute interval on a rank.
	EvStart = "start"
	EvDone  = "done"
	// EvDecide is one committed dynamic decision: the view it was taken
	// on (workload metric per rank), the selected slaves, the work
	// distributed.
	EvDecide = "decide"
	// EvState is one outbound state-channel message (sender side only —
	// state traffic has no receive-side record, so it stays out of the
	// send/recv conservation multisets). The validator checks every one
	// travels an edge of the run's topology.
	EvState = "state"
	// EvFinal closes a rank's trace: the rank reached quiescence and
	// reports its completed-item count. A rank with no final crashed or
	// lost its trace.
	EvFinal = "final"
	// EvSpanBegin / EvSpanEnd bracket one named duration on a rank
	// (decision acquire→plan→transfer, snapshot round, termdet idle,
	// job admit→complete). Span names the kind, Sid pairs the two
	// events, T stamps them; `loadex report` renders the pairs as a
	// timeline and `loadex validate` checks balance and per-track
	// nesting.
	EvSpanBegin = "sb"
	EvSpanEnd   = "se"
)

// Event is one trace record. Only the fields meaningful for its Ev kind
// are set; everything else stays at its JSON-omitted zero value.
type Event struct {
	Ev   string `json:"ev"`
	Rank int    `json:"rank"`

	// T is the event's timestamp in seconds since the recording
	// rank's run start (virtual time on the sim runtime). Span events
	// always carry it; compute start/done events carry it when the
	// emitting host has a clock. Forked ranks start their clocks at
	// fork, so cross-rank comparison skews by the fork spread.
	T float64 `json:"t,omitempty"`
	// Span names the span kind and Sid pairs a begin with its end
	// within one rank's trace (EvSpanBegin/EvSpanEnd).
	Span string `json:"span,omitempty"`
	Sid  int64  `json:"sid,omitempty"`

	// Peer is the destination (EvSend) or source (EvRecv) rank.
	Peer int `json:"peer,omitempty"`
	// Message payload identity (EvSend/EvRecv).
	Kind  int32   `json:"kind,omitempty"`
	Node  int32   `json:"node,omitempty"`
	Count int32   `json:"count,omitempty"`
	Work  float64 `json:"work,omitempty"`
	Size  float64 `json:"size,omitempty"`
	Spin  float64 `json:"spin,omitempty"`

	// Decision fields (EvDecide).
	View   []float64 `json:"view,omitempty"`
	Sel    []int     `json:"sel,omitempty"`
	Slaves int       `json:"slaves,omitempty"`

	// Run shape (EvMeta) and quiescence summary (EvFinal).
	N        int    `json:"n,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Mech     string `json:"mech,omitempty"`
	Term     string `json:"term,omitempty"`
	Plan     string `json:"plan,omitempty"`
	Topo     string `json:"topo,omitempty"`
	Executed int64  `json:"executed,omitempty"`
}

// key is the payload identity used for send/recv conservation matching:
// two events describe the same message iff their keys are equal.
func (e Event) key() string {
	return fmt.Sprintf("k%d/n%d/c%d/w%.9g/s%.9g/sp%.9g",
		e.Kind, e.Node, e.Count, e.Work, e.Size, e.Spin)
}

// Recorder appends events to one JSONL trace file. Safe for concurrent
// use; a nil *Recorder discards everything, so call sites need no
// tracing-enabled branches.
type Recorder struct {
	mu  sync.Mutex
	f   *os.File
	buf *bufio.Writer
	enc *json.Encoder
	sid atomic.Int64
}

// OpenRecorder creates (or truncates) a JSONL trace file, creating the
// parent directory as needed.
func OpenRecorder(path string) (*Recorder, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	buf := bufio.NewWriter(f)
	return &Recorder{f: f, buf: buf, enc: json.NewEncoder(buf)}, nil
}

// Record appends one event. Encoding errors surface at Close.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.enc.Encode(e)
	r.mu.Unlock()
}

// SpanBegin records the start of one named duration at local time t
// (seconds since the rank's run start) and returns the span id to
// close it with. A nil recorder returns 0, which SpanEnd ignores — so
// span emission needs no tracing-enabled branches either.
func (r *Recorder) SpanBegin(rank int, span string, t float64) int64 {
	if r == nil {
		return 0
	}
	sid := r.sid.Add(1)
	r.Record(Event{Ev: EvSpanBegin, Rank: rank, Span: span, Sid: sid, T: t})
	return sid
}

// SpanEnd closes a span opened by SpanBegin at local time t.
func (r *Recorder) SpanEnd(rank int, span string, sid int64, t float64) {
	if r == nil || sid == 0 {
		return
	}
	r.Record(Event{Ev: EvSpanEnd, Rank: rank, Span: span, Sid: sid, T: t})
}

// Close flushes and closes the trace file.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ferr := r.buf.Flush()
	if err := r.f.Close(); err != nil {
		return err
	}
	return ferr
}

// ReadFile parses one JSONL trace file.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// ReadDir parses every *.jsonl trace file directly inside dir (one
// run's worth — per-rank files), in sorted name order. Runs in
// subdirectories are separate validation units; find them with
// TraceDirs.
func ReadDir(dir string) ([]Event, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("chaos: no *.jsonl trace files in %s", dir)
	}
	sort.Strings(matches)
	var events []Event
	for _, p := range matches {
		evs, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
	}
	return events, nil
}

// TraceDirs walks root and returns every directory that directly
// contains at least one *.jsonl trace file — one entry per recorded
// run, sorted. A fan-out cluster run records each scenario×mechanism
// cell into its own subdirectory; each is validated on its own.
func TraceDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".jsonl" {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var dirs []string
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
