package workload

// The application port: the seam between a real distributed application
// (the paper's multifrontal solver, internal/solver) and the runtime
// that hosts it. A workload.App is the application side — the Algorithm
// 1 behaviours of every process, expressed against the small AppHost
// surface — and each runtime package (internal/sim, internal/live,
// internal/net) provides one AppRunner that hosts any App: the
// deterministic simulator drives it through its event loop, the live
// and TCP runtimes run one Algorithm 1 loop per rank over channels or
// sockets. The port is what lets the scenario × mechanism × runtime
// matrix sweep a genuine application, not just synthetic load programs.
//
// Execution model. An App is one logical application covering every
// rank of the cluster, but a host may run all of its ranks or just one:
// AppHost.Local tells the application which ranks this host instance
// executes. In-process hosts (the simulator, the live runtime, the net
// runtime's one-mesh-per-run mode) run every rank and SERIALIZE all App
// callbacks (the simulator is single-threaded by construction; the
// concurrent runtimes hold one application lock around every callback),
// so implementations need no internal synchronization. Forked
// deployments (`loadex cluster` over app scenarios) build one App
// instance per OS process, each hosting a single local rank; every
// cross-rank effect must then travel as an explicit DataMsg — the
// application may keep NO cross-rank shared bookkeeping, which
// internal/solver satisfies by distributing its assembly-tree progress
// and slave-done tracking behind completion-notification messages.
//
// Quiescence is detector-driven: every host runs one
// internal/termdet.Protocol per rank (selected by AppRunOptions.Term)
// over a dedicated control channel, and the run ends when the detector
// announces global termination — there is no host-side outstanding-work
// counting, so the same quiescence decision is taken whether the ranks
// share memory or only sockets.
//
// Callback discipline: a callback for rank r runs on rank r's hosting
// context and may only Send/SendData with from == r, call Compute for
// rank r, and touch rank r's mechanism through Context(r). Wake is the
// one cross-rank call in in-process hosting (it only nudges another
// rank's main loop); in forked hosting Wake may only target local
// ranks.

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// DataMsg is one application data-channel message in flattened,
// transport-encodable form: a kind tag plus a handful of generic fields
// the application maps its payloads onto (the TCP codec carries them
// verbatim, so an App crosses the wire without the transport knowing
// its payload types). Unused fields stay zero.
type DataMsg struct {
	// Kind is the application-defined message kind (disjoint from the
	// core state kinds only by channel).
	Kind int32
	// Node identifies an application object (e.g. an assembly-tree
	// node).
	Node int32
	// Peer is a rank the message refers to (producer, consumer, …).
	Peer int32
	// Count is a small cardinality (rows, pieces, …).
	Count int32
	// Work is a floating-point work amount (flops).
	Work float64
	// Size is a floating-point storage amount (matrix entries).
	Size float64
	// Bytes is the modeled on-wire size of the message the application
	// simulates (e.g. a contribution block's entries × 8), used for
	// bandwidth accounting on hosts without a real wire and charged by
	// the simulated network. The real TCP frame is the flattened struct
	// above — the data travels as metadata, not as payload bytes.
	Bytes float64
}

// AppHost is the runtime surface an App targets: state-channel contexts
// for the mechanisms, a data channel for application messages, deferred
// compute, and main-loop wakeups. Implementations exist in
// internal/sim, internal/live and internal/net.
type AppHost interface {
	// N returns the number of processes.
	N() int
	// Local reports whether this host instance executes rank's
	// callbacks. In-process hosts run every rank; a forked `loadex
	// node` hosts exactly one. The application must initialize and
	// touch per-rank state only for local ranks.
	Local(rank int) bool
	// Now returns seconds since the start of the run (virtual on the
	// simulator, wall clock elsewhere).
	Now() float64
	// Context returns rank's core.Context: mechanism sends issued
	// through it travel the host's prioritized state channel.
	Context(rank int) core.Context
	// SendData ships one application message on the data channel. It is
	// asynchronous; the message is delivered to HandleData on `to`.
	SendData(from, to int, m DataMsg)
	// Compute defers done by `seconds` of application time on rank: the
	// rank is busy (treating no message) until the host calls done. The
	// host scales the duration by the rank's speed factor, and the
	// wall-clock runtimes additionally by their time scale. At most one
	// compute may be outstanding per rank.
	Compute(rank int, seconds float64, done func())
	// Wake requests a main-loop iteration for rank: the application
	// calls it when an internal state change (not tied to a message)
	// may have made work available there.
	Wake(rank int)
}

// App is a transport-neutral distributed application: the Algorithm 1
// behaviours of every process. Hosts serialize all callbacks (see the
// package comment), drive the per-rank main loop — state messages
// first, then data messages, then TryStart — and gate data handling and
// task starts on Blocked (snapshot participation, §3).
type App interface {
	// Attach hands the application its host. It runs before any rank
	// loop starts; the application initializes its mechanisms here and
	// may already send state messages and request wakeups.
	Attach(host AppHost) error
	// HandleState treats one state-information message for rank
	// (Algorithm 1, line 3), typically by forwarding it to the rank's
	// mechanism.
	HandleState(rank, from, kind int, payload any)
	// HandleData treats one application message for rank (Algorithm 1,
	// line 5).
	HandleData(rank, from int, m DataMsg)
	// TryStart attempts to start one local ready task on rank
	// (Algorithm 1, line 7), typically by calling AppHost.Compute. It
	// returns false if no task can start.
	TryStart(rank int) bool
	// Blocked reports whether rank must not treat data messages or
	// start tasks (it is participating in a snapshot). State messages
	// are still delivered while blocked.
	Blocked(rank int) bool
	// Done reports whether all completions this host instance tracks
	// have been observed (every completion for in-process hosting, the
	// local ranks' share under forked hosting). Hosts no longer poll it
	// for quiescence — the termination detector owns that — but may
	// assert it once the detector fires, and the application verifies
	// it in Outcome.
	Done() bool
	// Outcome returns the application-level results after the run. hr
	// is the host's report, so the application can fold transport
	// metrics into its own result; the application also verifies its
	// post-run invariants here (completion, conservation) and reports
	// violations through AppOutcome.Err.
	Outcome(hr *AppReport) AppOutcome
}

// AppOutcome is what an App itself measured: the application-level
// counterpart of the host's AppReport.
type AppOutcome struct {
	// Executed is the per-rank count of completed work units (tasks).
	Executed []int64
	// Stats is the per-rank mechanism counters.
	Stats []core.Stats
	// FinalViews is each rank's view at completion (no fresh
	// acquisition: the rank's own entry is exact, remote entries are as
	// stale as the mechanism leaves them).
	FinalViews [][]core.Load
	// Decisions counts committed dynamic decisions.
	Decisions int
	// Counters carries the application-side measurement share —
	// decision counts and acquire-to-ready latencies; the host merges
	// it with its transport-side tallies.
	Counters core.Counters
	// Result is the application-specific result value (e.g.
	// *solver.Result).
	Result any
	// Err reports a post-run invariant violation (incomplete work,
	// broken conservation): the run must be treated as failed even
	// though the host quiesced.
	Err error
}

// AppRunOptions tunes one hosted run. Hosts ignore the knobs they do
// not support.
type AppRunOptions struct {
	// Threaded enables the §4.5 helper-thread state-message model where
	// the host supports one (the simulator).
	Threaded bool
	// PollPeriod is the helper thread's period in application seconds
	// (0 = host default).
	PollPeriod float64
	// MaxSteps bounds host scheduling steps as a livelock guard where
	// the host counts steps (the simulator).
	MaxSteps uint64
	// Speed is the per-rank execution-speed factor applied to Compute
	// durations (nil or 0 entries = nominal; 2 = twice as slow).
	Speed []float64
	// Term names the termination-detection protocol every host runs
	// per rank (internal/termdet; empty = termdet.Default).
	Term string
	// Rec, when non-nil, receives host-level span events (termdet.idle,
	// snapshot.round) in the same trace the Recorded wrapper writes
	// application events to. Hosts that do not trace ignore it.
	Rec *chaos.Recorder
}

// SpeedOf returns the rank's speed factor, defaulting to 1.
func (o AppRunOptions) SpeedOf(rank int) float64 {
	if rank < len(o.Speed) && o.Speed[rank] > 0 {
		return o.Speed[rank]
	}
	return 1
}

// AppReport is what a host measured while running an App.
type AppReport struct {
	// Time is the run's end time in application seconds (virtual on the
	// simulator, wall clock elsewhere).
	Time float64
	// Steps counts host scheduling steps (simulator only).
	Steps uint64
	// PausedTime is the total compute-pause time of the threaded model
	// (simulator only).
	PausedTime float64
	// Counters is the transport-side measurement accumulator: state and
	// data messages/bytes (per kind) and snapshot-blocked busy time.
	// The simulator and the live runtime charge the modeled byte sizes;
	// the net runtime counts real encoded frame sizes.
	Counters core.Counters
	// WireMsgs / WireBytes are inbound transport totals (net hosts
	// only).
	WireMsgs, WireBytes int64
	// DetectLatency is the gap between the last compute completion and
	// the detector's termination broadcast, in application seconds
	// (virtual on the simulator, wall clock elsewhere): how long the
	// finished cluster waited for the detector to say so. Zero when the
	// host could not observe both endpoints.
	DetectLatency float64
}

// AppRunner hosts an App to completion on one runtime.
type AppRunner interface {
	// Runtime names the runtime ("sim", "live", "net").
	Runtime() string
	// RunApp executes app on n processes and returns the host-side
	// report. It returns once the application is Done and the transport
	// has quiesced (all data messages delivered).
	RunApp(n int, app App, opts AppRunOptions) (*AppReport, error)
}

// AppScenario is a registered scenario backed by a real application
// instead of compiled per-rank programs. Drivers detect it with a type
// assertion and host it through their AppRunner; Programs returns an
// error for such scenarios.
type AppScenario interface {
	Workload
	// NewApp builds the application instance for one run. The
	// mechanism and its configuration come from the run's cell; the
	// scenario derives everything else (problem, tree, static mapping)
	// deterministically from p.
	NewApp(mech core.Mech, cfg core.Config, p Params) (App, AppRunOptions, error)
}

// IsAppScenario reports whether the named registered scenario is an
// application scenario (and therefore runs in-process on every
// runtime).
func IsAppScenario(name string) bool {
	w, err := Get(name)
	if err != nil {
		return false
	}
	_, ok := w.(AppScenario)
	return ok
}

// AppPrograms is the Programs implementation application scenarios
// share: they have no per-rank program form.
func AppPrograms(name string) ([]Program, error) {
	return nil, fmt.Errorf("workload: %s is an application scenario; it is hosted through an AppRunner, not compiled to rank programs", name)
}

// CountersFromApp folds one host report's transport tallies with the
// application-side measurement share (decision counts, acquire
// latencies) plus the snapshot rounds derivable from the mechanism
// stats. ReportFromApp and the forked `loadex node` STATS path share
// it, so in-process and forked runs compose counters identically —
// under fork, out.Stats is zero for ranks other processes ran, so the
// sum is the local share.
func CountersFromApp(hr *AppReport, out AppOutcome) core.Counters {
	c := hr.Counters.Clone()
	c.Merge(out.Counters)
	for _, st := range out.Stats {
		c.SnapshotRounds += core.SnapshotRoundsOf(st)
	}
	return c
}

// ReportFromApp composes the matrix report of one hosted application
// run from the host's report and the application's outcome, so the
// three runtime drivers fill core.Counters identically: transport
// tallies (messages, bytes, busy time) from the host, decisions and
// acquire latencies from the application, snapshot rounds from the
// mechanism stats.
func ReportFromApp(scenario, runtime string, mech core.Mech, n int, hr *AppReport, out AppOutcome) *Report {
	rep := &Report{
		Scenario:       scenario,
		Runtime:        runtime,
		Mech:           mech,
		Procs:          n,
		DecisionsTaken: out.Decisions,
		Executed:       out.Executed,
		Stats:          out.Stats,
		FinalViews:     out.FinalViews,
		Counters:       CountersFromApp(hr, out),
		AppResult:      out.Result,
	}
	rep.WireMsgs, rep.WireBytes = hr.WireMsgs, hr.WireBytes
	rep.SimEvents = hr.Steps
	rep.DetectLatency = hr.DetectLatency
	return rep
}

// RunAppScenario hosts one application-scenario cell on the given
// runner: build the application for the cell's mechanism, run it to
// quiescence, verify the application's own invariants and compose the
// matrix report. All three runtime drivers share this path, so
// core.Counters is filled identically across runtimes.
func RunAppScenario(runner AppRunner, as AppScenario, mech core.Mech, cfg core.Config, p Params) (*Report, error) {
	app, opts, err := as.NewApp(mech, cfg, p)
	if err != nil {
		return nil, err
	}
	if p.Record != nil {
		app = Recorded(app, p.Record)
		opts.Rec = p.Record
	}
	if p.Term != "" {
		opts.Term = p.Term
	}
	p.Normalize()
	start := time.Now()
	hr, err := runner.RunApp(p.Procs, app, opts)
	if err != nil {
		return nil, err
	}
	out := app.Outcome(hr)
	if out.Err != nil {
		return nil, out.Err
	}
	rep := ReportFromApp(as.Name(), runner.Runtime(), mech, p.Procs, hr, out)
	rep.Elapsed = time.Since(start)
	return rep, nil
}
