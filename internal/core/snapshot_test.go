package core

import (
	"testing"
	"testing/quick"
)

func mkSnapshot(t *testing.T, n int, elect Elector) (*fakeNet, []*Snapshot) {
	t.Helper()
	net := newFakeNet(n)
	exs := make([]*Snapshot, n)
	for r := 0; r < n; r++ {
		x := NewSnapshot(n, r, Config{Elect: elect})
		net.exs[r] = x
		exs[r] = x
		x.Init(net.ctx(r), Load{Workload: float64(10 * r)})
	}
	return net, exs
}

func TestSnapshotSingleInitiator(t *testing.T) {
	net, exs := mkSnapshot(t, 4, nil)
	completed := false
	exs[0].Acquire(net.ctx(0), func() {
		completed = true
		// At readiness the view holds everyone's exact state.
		for p := 1; p < 4; p++ {
			if got := exs[0].View().Metric(p, Workload); got != float64(10*p) {
				t.Fatalf("view[%d] = %v, want %v", p, got, 10*p)
			}
		}
		exs[0].Commit(net.ctx(0), []Assignment{{Proc: 2, Delta: Load{Workload: 5}}})
	})
	if !exs[0].Busy() {
		t.Fatal("initiator not busy during snapshot")
	}
	net.drain(1000)
	if !completed {
		t.Fatal("snapshot never completed")
	}
	for r := 0; r < 4; r++ {
		if exs[r].Busy() {
			t.Fatalf("proc %d still busy after end_snp", r)
		}
	}
	// The selected slave credited its state from master_to_slave.
	if got := exs[2].Local()[Workload]; got != 25 {
		t.Fatalf("slave load = %v, want 25", got)
	}
	st := exs[0].Stats()
	if st.SnapshotsInitiated != 1 || st.SnapshotTime <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotSingleProcessFastPath(t *testing.T) {
	net, exs := mkSnapshot(t, 1, nil)
	done := false
	exs[0].Acquire(net.ctx(0), func() { done = true })
	if !done {
		t.Fatal("n=1 Acquire must be synchronous")
	}
	exs[0].Commit(net.ctx(0), nil)
	if exs[0].Busy() {
		t.Fatal("n=1 never busy")
	}
}

func TestSnapshotBystandersBlockDuringSnapshot(t *testing.T) {
	net, exs := mkSnapshot(t, 3, nil)
	exs[0].Acquire(net.ctx(0), func() { exs[0].Commit(net.ctx(0), nil) })
	// Deliver only the start_snp messages.
	net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.to == 1 })
	if !exs[1].Busy() {
		t.Fatal("bystander must block after start_snp (it answered and waits)")
	}
	net.drain(1000)
	if exs[1].Busy() || exs[2].Busy() {
		t.Fatal("bystanders still busy after completion")
	}
}

func TestSnapshotConcurrentInitiatorsSequentialize(t *testing.T) {
	// Two simultaneous snapshots: the lower rank completes first, the
	// higher-rank initiator restarts with a new request id and completes
	// second, observing the first decision.
	net, exs := mkSnapshot(t, 4, nil)
	var order []int
	exs[0].Acquire(net.ctx(0), func() {
		order = append(order, 0)
		exs[0].Commit(net.ctx(0), []Assignment{{Proc: 3, Delta: Load{Workload: 100}}})
	})
	exs[1].Acquire(net.ctx(1), func() {
		order = append(order, 1)
		// P1's snapshot must observe P0's assignment to P3.
		if got := exs[1].View().Metric(3, Workload); got != 130 {
			t.Fatalf("second snapshot sees %v for P3, want 130 (30 + 100)", got)
		}
		exs[1].Commit(net.ctx(1), nil)
	})
	net.drain(5000)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("completion order = %v, want [0 1]", order)
	}
	if exs[1].Stats().SnapshotRestarts == 0 {
		t.Fatal("loser must have restarted its round")
	}
	for r := 0; r < 4; r++ {
		if exs[r].Busy() {
			t.Fatalf("proc %d busy after both snapshots", r)
		}
	}
}

func TestSnapshotMaxRankElection(t *testing.T) {
	net, exs := mkSnapshot(t, 3, ElectMaxRank)
	var order []int
	for _, r := range []int{0, 2} {
		r := r
		exs[r].Acquire(net.ctx(r), func() {
			order = append(order, r)
			exs[r].Commit(net.ctx(r), nil)
		})
	}
	net.drain(5000)
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("order = %v, want rank 2 to win under max-rank election", order)
	}
}

func TestSnapshotElectByKey(t *testing.T) {
	// Rank 2 has the smallest key, so it must win the election.
	key := []float64{5, 4, 1}
	net, exs := mkSnapshot(t, 3, ElectByKey(key))
	var order []int
	for _, r := range []int{0, 2} {
		r := r
		exs[r].Acquire(net.ctx(r), func() {
			order = append(order, r)
			exs[r].Commit(net.ctx(r), nil)
		})
	}
	net.drain(5000)
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("order = %v, want rank 2 first (smallest key)", order)
	}
}

func TestSnapshotStaleRepliesIgnored(t *testing.T) {
	net, exs := mkSnapshot(t, 3, nil)
	done := false
	exs[1].Acquire(net.ctx(1), func() { done = true })
	// Inject a stale reply with a wrong request id: must be ignored.
	exs[1].HandleMessage(net.ctx(1), 0, KindSnp, SnpPayload{Req: 999, Load: Load{Workload: 77}})
	if done {
		t.Fatal("stale reply advanced the collection")
	}
	if got := exs[1].View().Metric(0, Workload); got == 77 {
		t.Fatal("stale reply stored")
	}
	net.drain(1000)
	if !done {
		t.Fatal("snapshot did not complete")
	}
	exs[1].Commit(net.ctx(1), nil)
	net.drain(1000)
}

func TestSnapshotPaperAsynchronismExample(t *testing.T) {
	// The §3 worked example, adapted to ranks {1,2,3}→{0,1,2} (leader =
	// lowest rank): P1(=idx0) is slower to receive. P3(=idx2) and
	// P2(=idx1) initiate; P1 answers P3 first, then P2 which is the
	// leader. When P2 completes, P3 reinitiates; P1 must NOT answer P3's
	// new round before it has processed P2's end_snp — the request-id and
	// delay machinery guarantees P3 eventually gets a coherent answer.
	net, exs := mkSnapshot(t, 3, nil)
	doneP2 := false
	doneP3 := false
	sawP0 := -1.0
	exs[2].Acquire(net.ctx(2), func() {
		doneP3 = true
		sawP0 = exs[2].View().Metric(0, Workload)
		exs[2].Commit(net.ctx(2), []Assignment{{Proc: 0, Delta: Load{Workload: 7}}})
	})
	exs[1].Acquire(net.ctx(1), func() {
		doneP2 = true
		exs[1].Commit(net.ctx(1), []Assignment{{Proc: 0, Delta: Load{Workload: 50}}})
	})
	// P0 receives P3's start first, then P2's (the paper's "in that
	// order").
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 2 && m.to == 0 }) {
		t.Fatal("missing start_snp from P3")
	}
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 1 && m.to == 0 }) {
		t.Fatal("missing start_snp from P2")
	}
	net.drain(5000)
	if !doneP2 || !doneP3 {
		t.Fatalf("snapshots incomplete: P2=%v P3=%v", doneP2, doneP3)
	}
	// P3's snapshot ran after P2's, so at collection time P3 observed
	// P2's assignment of 50 to P0.
	if sawP0 != 50 {
		t.Fatalf("P3's snapshot saw %v for P0, want 50 (post-P2 state)", sawP0)
	}
	for r := 0; r < 3; r++ {
		if exs[r].Busy() {
			t.Fatalf("proc %d busy at end", r)
		}
	}
}

func TestSnapshotQuiescenceProperty(t *testing.T) {
	// Property: any set of simultaneous initiators completes — every
	// ready fires exactly once, nobody stays busy, and each snapshot
	// observes all previously committed assignments.
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%6 + 2
		k := int(kRaw)%n + 1
		net := newFakeNet(n)
		exs := make([]*Snapshot, n)
		for r := 0; r < n; r++ {
			x := NewSnapshot(n, r, Config{})
			net.exs[r] = x
			exs[r] = x
			x.Init(net.ctx(r), Load{})
		}
		completions := 0
		totalAssigned := 0.0
		for i := 0; i < k; i++ {
			r := (int(seed%1000) + i*7) % n
			if exs[r].initiating || exs[r].Busy() {
				continue
			}
			exs[r].Acquire(net.ctx(r), func() {
				completions++
				// Observed total load must equal everything committed
				// so far (sequentialization).
				var seen float64
				for p := 0; p < n; p++ {
					seen += exs[r].View().Metric(p, Workload)
				}
				if seen != totalAssigned {
					t.Fatalf("snapshot saw %v total, want %v", seen, totalAssigned)
				}
				slave := (r + 1) % n
				exs[r].Commit(net.ctx(r), []Assignment{{Proc: int32(slave), Delta: Load{Workload: 10}}})
				totalAssigned += 10
			})
		}
		net.drain(200000)
		for r := 0; r < n; r++ {
			if exs[r].Busy() {
				return false
			}
		}
		return completions > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMessageCountPerDecision(t *testing.T) {
	// An uncontended snapshot costs exactly 3(N-1) messages: start_snp,
	// snp replies, end_snp (Table 6's economy vs increments).
	n := 8
	net, exs := mkSnapshot(t, n, nil)
	exs[0].Acquire(net.ctx(0), func() { exs[0].Commit(net.ctx(0), nil) })
	net.drain(10000)
	total := net.sent[KindStartSnp] + net.sent[KindSnp] + net.sent[KindEndSnp]
	if total != 3*(n-1) {
		t.Fatalf("snapshot used %d messages, want %d", total, 3*(n-1))
	}
}
