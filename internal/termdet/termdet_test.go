package termdet

import (
	"strings"
	"testing"
	"testing/quick"
)

// fabric is a deterministic in-memory transport for protocol tests: a
// multi-source application whose processes forward work messages, with
// application and control frames interleaved in random (seeded) order
// under per-ordered-pair FIFO — the weakest delivery guarantee any of
// the real runtimes provides.
type fabric struct {
	n    int
	dets []Protocol
	// queues[from][to] is the FIFO of in-flight frames on one ordered
	// pair (application and control frames share it, as they share a
	// TCP connection in internal/net).
	queues [][][]frame
	// inflight counts undelivered application messages.
	inflight int
	rng      uint64
}

type frame struct {
	app  bool
	ctrl Ctrl
}

type fctx struct {
	f    *fabric
	rank int
}

func (c fctx) Rank() int { return c.rank }
func (c fctx) N() int    { return c.f.n }
func (c fctx) SendCtrl(to int, ct Ctrl) {
	c.f.queues[c.rank][to] = append(c.f.queues[c.rank][to], frame{ctrl: ct})
}

func newFabric(proto string, n int, seed uint64) *fabric {
	f := &fabric{n: n, rng: seed | 1}
	f.queues = make([][][]frame, n)
	for r := 0; r < n; r++ {
		f.queues[r] = make([][]frame, n)
		det, err := New(proto, n, r)
		if err != nil {
			panic(err)
		}
		f.dets = append(f.dets, det)
	}
	return f
}

func (f *fabric) next() uint64 {
	f.rng = f.rng*6364136223846793005 + 1442695040888963407
	return f.rng >> 32
}

// send issues an application message from -> to (self-sends allowed).
func (f *fabric) send(from, to int) {
	f.dets[from].OnSend(fctx{f, from}, to)
	f.queues[from][to] = append(f.queues[from][to], frame{app: true})
	f.inflight++
}

// terminated reports whether any process observed global termination.
func (f *fabric) terminated() bool {
	for _, d := range f.dets {
		if d.Terminated() {
			return true
		}
	}
	return false
}

// step delivers the head frame of one randomly chosen nonempty pair.
// onWork runs the receiving process's application reaction (it may send
// more work); the process declares Passive afterwards. Returns false
// when nothing is in flight.
func (f *fabric) step(onWork func(to int)) bool {
	type pair struct{ from, to int }
	var ready []pair
	for from := 0; from < f.n; from++ {
		for to := 0; to < f.n; to++ {
			if len(f.queues[from][to]) > 0 {
				ready = append(ready, pair{from, to})
			}
		}
	}
	if len(ready) == 0 {
		return false
	}
	p := ready[f.next()%uint64(len(ready))]
	fr := f.queues[p.from][p.to][0]
	f.queues[p.from][p.to] = f.queues[p.from][p.to][1:]
	ctx := fctx{f, p.to}
	if fr.app {
		f.inflight--
		f.dets[p.to].OnReceive(ctx, p.from)
		if onWork != nil {
			onWork(p.to)
		}
		f.dets[p.to].Passive(ctx)
		return true
	}
	f.dets[p.to].OnCtrl(ctx, p.from, fr.ctrl)
	return true
}

// stepCtrlOnly delivers the head frame of one randomly chosen pair
// whose head is a control frame, leaving application messages parked.
// Returns false when no control frame is deliverable.
func (f *fabric) stepCtrlOnly() bool {
	type pair struct{ from, to int }
	var ready []pair
	for from := 0; from < f.n; from++ {
		for to := 0; to < f.n; to++ {
			if q := f.queues[from][to]; len(q) > 0 && !q[0].app {
				ready = append(ready, pair{from, to})
			}
		}
	}
	if len(ready) == 0 {
		return false
	}
	p := ready[f.next()%uint64(len(ready))]
	fr := f.queues[p.from][p.to][0]
	f.queues[p.from][p.to] = f.queues[p.from][p.to][1:]
	f.dets[p.to].OnCtrl(fctx{f, p.to}, p.from, fr.ctrl)
	return true
}

// start runs the initial multi-source burst: every rank seeds `fan`
// messages to random targets (modeling Attach seeding ready work
// everywhere), then declares Passive.
func (f *fabric) start(fan int) {
	for r := 0; r < f.n; r++ {
		for i := 0; i < fan; i++ {
			f.send(r, int(f.next()%uint64(f.n)))
		}
	}
	for r := 0; r < f.n; r++ {
		f.dets[r].Passive(fctx{f, r})
	}
}

// drain delivers frames until quiescence, failing on livelock.
func (f *fabric) drain(t testing.TB, onWork func(to int)) {
	t.Helper()
	for i := 0; i < 5_000_000; i++ {
		if !f.step(onWork) {
			return
		}
	}
	t.Fatal("termdet fabric: livelock")
}

func forEachProtocol(t *testing.T, run func(t *testing.T, proto string)) {
	for _, proto := range Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) { run(t, proto) })
	}
}

func TestAllPassiveNoTraffic(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		f := newFabric(proto, 4, 7)
		for r := 0; r < f.n; r++ {
			f.dets[r].Passive(fctx{f, r})
		}
		f.drain(t, nil)
		if !f.terminated() {
			t.Fatal("no work at all: termination must be detected")
		}
	})
}

func TestSingleRank(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		f := newFabric(proto, 1, 3)
		f.dets[0].Passive(fctx{f, 0})
		if !f.dets[0].Terminated() {
			t.Fatal("single passive rank must terminate at once")
		}
	})
}

func TestNoFalseTerminationWithInflight(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		f := newFabric(proto, 3, 11)
		f.send(0, 1)
		for r := 0; r < f.n; r++ {
			f.dets[r].Passive(fctx{f, r})
		}
		// The message to 1 is still in flight: deliver only control
		// frames (probe rounds, acks) and verify no detection.
		for i := 0; i < 10_000 && f.stepCtrlOnly(); i++ {
		}
		if f.terminated() {
			t.Fatal("terminated with an application message in flight")
		}
		f.drain(t, nil)
		if !f.terminated() {
			t.Fatal("termination missed after delivery")
		}
	})
}

func TestForwardingChain(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		f := newFabric(proto, 4, 13)
		f.send(0, 1)
		for r := 0; r < f.n; r++ {
			f.dets[r].Passive(fctx{f, r})
		}
		hops := map[int]int{1: 2, 2: 3}
		f.drain(t, func(to int) {
			if next, ok := hops[to]; ok {
				f.send(to, next)
				delete(hops, to)
			}
		})
		if !f.terminated() {
			t.Fatal("chain termination not detected")
		}
	})
}

func TestSelfSendsTracked(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		f := newFabric(proto, 3, 17)
		f.send(1, 1) // self-send while active
		for r := 0; r < f.n; r++ {
			f.dets[r].Passive(fctx{f, r})
		}
		if f.terminated() && f.inflight > 0 {
			t.Fatal("terminated with a self message in flight")
		}
		f.drain(t, nil)
		if !f.terminated() {
			t.Fatal("termination missed with self-sends")
		}
	})
}

func TestDSPanicsOnProtocolViolation(t *testing.T) {
	f := newFabric(ProtocolDS, 2, 1)
	// Detach rank 1 (passive, no deficit): it acks the root.
	f.dets[1].Passive(fctx{f, 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("send while passive+disengaged accepted")
			}
		}()
		f.dets[1].OnSend(fctx{f, 1}, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ack with zero deficit accepted")
			}
		}()
		f.dets[1].OnCtrl(fctx{f, 1}, 0, Ctrl{Kind: CtrlAck})
	}()
}

// TestRandomInterleavingProperty is the detector's core safety/liveness
// property, over random multi-source workloads, random forwarding and
// random frame interleavings (FIFO per pair only): the detector never
// reports termination while an application message is in flight or a
// process still has work, and always reports it once the computation is
// globally passive and drained.
func TestRandomInterleavingProperty(t *testing.T) {
	for _, proto := range Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			prop := func(seed uint64, nRaw, fanRaw uint8) bool {
				n := int(nRaw)%7 + 1
				fan := int(fanRaw) % 3
				f := newFabric(proto, n, seed)
				budget := 60
				f.start(fan)
				// Safety is checked inside the drain: any termination
				// observed with in-flight application work is a bug.
				safe := true
				for i := 0; ; i++ {
					if i > 5_000_000 {
						t.Fatal("livelock")
					}
					if f.terminated() && f.inflight > 0 {
						safe = false
					}
					if !f.step(func(to int) {
						if budget <= 0 {
							return
						}
						if f.next()%4 == 0 { // 25%: forward more work
							budget--
							f.send(to, int(f.next()%uint64(f.n)))
						}
					}) {
						break
					}
				}
				return safe && f.terminated()
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDSDeficitConservation pins DS's bookkeeping: after a full run
// every deficit returns to zero (every application message — and the
// root's virtual initial diffusion — was acknowledged exactly once).
func TestDSDeficitConservation(t *testing.T) {
	n := 5
	f := newFabric(ProtocolDS, n, 23)
	for r := 0; r < n; r++ {
		f.send(r, (r+1)%n)
	}
	for r := 0; r < n; r++ {
		f.dets[r].Passive(fctx{f, r})
	}
	f.drain(t, nil)
	if !f.terminated() {
		t.Fatal("termination missed")
	}
	for r, d := range f.dets {
		if dd := d.(*ds); dd.deficit != 0 {
			t.Fatalf("rank %d ends with deficit %d", r, dd.deficit)
		}
	}
}

func TestUnknownProtocol(t *testing.T) {
	_, err := New("gossip", 4, 0)
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %v does not list %q", err, name)
		}
	}
	if _, err := New("", 4, 1); err != nil {
		t.Fatalf("empty name must select the default: %v", err)
	}
}
