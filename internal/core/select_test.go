package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// leastLoadedRef is the original O(n²) selection-sort implementation,
// kept as the oracle for the heap-based partial selection.
func leastLoadedRef(v *View, m Metric, exclude, k int) []int {
	type cand struct {
		p int
		l float64
	}
	cands := make([]cand, 0, v.N())
	for p := 0; p < v.N(); p++ {
		if p != exclude {
			cands = append(cands, cand{p, v.Metric(p, m)})
		}
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].l < cands[i].l || (cands[j].l == cands[i].l && cands[j].p < cands[i].p) {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].p
	}
	return out
}

func TestLeastLoadedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		v := NewView(n)
		for p := 0; p < n; p++ {
			// Quantized loads force plenty of ties, exercising the
			// lower-rank-wins tie-break.
			v.Set(p, Load{Workload: float64(rng.Intn(5)), Memory: rng.Float64()})
		}
		k := rng.Intn(n + 2)
		exclude := rng.Intn(n+1) - 1 // -1 .. n-1
		metric := Metric(rng.Intn(int(NumMetrics)))
		got := LeastLoaded(v, metric, exclude, k)
		want := leastLoadedRef(v, metric, exclude, k)
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d exclude=%d: got %v, want %v", n, k, exclude, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d exclude=%d metric=%v: got %v, want %v", n, k, exclude, metric, got, want)
			}
		}
	}
}

func TestLeastLoadedEdgeCases(t *testing.T) {
	v := NewView(4)
	for p := 0; p < 4; p++ {
		v.Set(p, Load{Workload: float64(p)})
	}
	if got := LeastLoaded(v, Workload, -1, 0); len(got) != 0 {
		t.Errorf("k=0: got %v, want empty", got)
	}
	if got := LeastLoaded(v, Workload, -1, -3); len(got) != 0 {
		t.Errorf("k<0: got %v, want empty", got)
	}
	if got, want := LeastLoaded(v, Workload, 0, 10), []int{1, 2, 3}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("k>n: got %v, want %v", got, want)
	}
	// All-equal loads: pure rank tie-break.
	for p := 0; p < 4; p++ {
		v.Set(p, Load{Workload: 7})
	}
	if got, want := LeastLoaded(v, Workload, 2, 2), []int{0, 1}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ties: got %v, want %v", got, want)
	}
}

// BenchmarkLeastLoaded covers the dynamic-decision hot path at and far
// beyond the paper's 128-process scale.
func BenchmarkLeastLoaded(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		v := NewView(n)
		rng := rand.New(rand.NewSource(1))
		for p := 0; p < n; p++ {
			v.Set(p, Load{Workload: rng.Float64() * 1000})
		}
		for _, k := range []int{3, 16} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sel := LeastLoaded(v, Workload, 0, k)
					if len(sel) != k {
						b.Fatalf("selected %d, want %d", len(sel), k)
					}
				}
			})
		}
	}
}
