package live

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestLiveDriverCounters checks the goroutine runtime fills the uniform
// counters coherently under real concurrency: totals equal the per-kind
// sum, the mechanism stats and the transport-agnostic tallies agree on
// the quantities they both see, and every decision is accounted.
func TestLiveDriverCounters(t *testing.T) {
	p := workload.Params{Procs: 5, Masters: 2, Decisions: 3, Work: 60, Slaves: 2, Spin: 200 * time.Microsecond}
	cfg := core.Config{Threshold: core.Load{core.Workload: 5}, NoMoreMasterOpt: true}
	w, err := workload.Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			rep, err := NewDriver().Run(w, mech, cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			c := rep.Counters
			var msgs int64
			var bytes float64
			for _, tally := range c.PerKind {
				msgs += tally.Msgs
				bytes += tally.Bytes
			}
			if c.StateMsgs != msgs || c.StateBytes != bytes {
				t.Fatalf("totals (%d, %g) != per-kind sum (%d, %g)", c.StateMsgs, c.StateBytes, msgs, bytes)
			}
			if c.Decisions != int64(rep.DecisionsTaken) {
				t.Fatalf("counters saw %d decisions, report %d", c.Decisions, rep.DecisionsTaken)
			}
			if c.DataMsgs != rep.TotalExecuted() {
				t.Fatalf("data items %d != executed %d", c.DataMsgs, rep.TotalExecuted())
			}
			if c.DataBytes != float64(c.DataMsgs)*core.BytesWorkItem {
				t.Fatalf("data bytes %g != items × BytesWorkItem", c.DataBytes)
			}
			st := rep.TotalStats()
			if got := c.Kind(core.KindUpdate).Msgs; got != st.UpdatesSent {
				t.Fatalf("update tally %d != mechanism UpdatesSent %d", got, st.UpdatesSent)
			}
			if c.SnapshotRounds != core.SnapshotRoundsOf(st) {
				t.Fatalf("snapshot rounds %d != initiated+restarts %d", c.SnapshotRounds, core.SnapshotRoundsOf(st))
			}
			if mech == core.MechSnapshot {
				if c.DecisionLatency <= 0 || c.BusyTime <= 0 {
					t.Fatalf("snapshot runtime costs missing: latency=%g busy=%g", c.DecisionLatency, c.BusyTime)
				}
				if got, want := c.Kind(core.KindMasterToSlave).Msgs, int64(rep.DecisionsTaken*p.Slaves); got != want {
					t.Fatalf("master_to_slave %d, want decisions×slaves = %d", got, want)
				}
			} else if c.SnapshotRounds != 0 {
				t.Fatalf("maintained mechanism ran %d snapshot rounds", c.SnapshotRounds)
			}
		})
	}
}
