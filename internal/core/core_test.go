package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadArithmetic(t *testing.T) {
	a := Load{Workload: 3, Memory: 5}
	b := Load{Workload: 1, Memory: 2}
	if got := a.Add(b); got[Workload] != 4 || got[Memory] != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got[Workload] != 2 || got[Memory] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	// Value semantics: a unchanged.
	if a[Workload] != 3 {
		t.Fatal("Load mutated by Add/Sub")
	}
}

func TestLoadAddSubInverseProperty(t *testing.T) {
	f := func(aw, am, bw, bm float64) bool {
		a := Load{Workload: aw, Memory: am}
		b := Load{Workload: bw, Memory: bm}
		r := a.Add(b).Sub(b)
		return r[Workload] == aw+bw-bw && r[Memory] == am+bm-bm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExceedsAny(t *testing.T) {
	thr := Load{Workload: 10, Memory: 100}
	if (Load{Workload: 5, Memory: 50}).ExceedsAny(thr) {
		t.Fatal("below thresholds must not trigger")
	}
	if !(Load{Workload: -11, Memory: 0}).ExceedsAny(thr) {
		t.Fatal("negative variation must trigger on magnitude")
	}
	if !(Load{Workload: 0, Memory: 101}).ExceedsAny(thr) {
		t.Fatal("second metric must trigger independently")
	}
	// Zero threshold: any nonzero triggers.
	if !(Load{Workload: 0.001}).ExceedsAny(Load{}) {
		t.Fatal("zero threshold must trigger on any change")
	}
	if (Load{}).ExceedsAny(Load{}) {
		t.Fatal("zero change must not trigger")
	}
}

func TestKindNamesAndMetricNames(t *testing.T) {
	for kind := KindUpdate; kind <= KindMasterToSlave; kind++ {
		if strings.HasPrefix(KindName(kind), "kind(") {
			t.Fatalf("kind %d has no name", kind)
		}
	}
	if !strings.HasPrefix(KindName(999), "kind(") {
		t.Fatal("unknown kind not flagged")
	}
	if Workload.String() != "workload" || Memory.String() != "memory" {
		t.Fatal("metric names wrong")
	}
	if !strings.HasPrefix(Metric(9).String(), "metric(") {
		t.Fatal("unknown metric not flagged")
	}
}

func TestMasterToAllBytesGrowsWithAssignments(t *testing.T) {
	if MasterToAllBytes(0) >= MasterToAllBytes(5) {
		t.Fatal("size must grow with assignment count")
	}
}

func TestViewOperations(t *testing.T) {
	v := NewView(3)
	if v.N() != 3 {
		t.Fatal("N wrong")
	}
	v.Set(1, Load{Workload: 7})
	v.AddTo(1, Load{Workload: 3, Memory: 2})
	if v.Metric(1, Workload) != 10 || v.Metric(1, Memory) != 2 {
		t.Fatalf("view = %v", v.Load(1))
	}
	snap := v.Snapshot()
	v.Set(1, Load{})
	if snap[1][Workload] != 10 {
		t.Fatal("snapshot not a copy")
	}
}

func TestElectorsAreConsistentTotalOrders(t *testing.T) {
	// For liveness the election must be associative/commutative over
	// candidate sets: folding in any order yields the same leader.
	electors := map[string]Elector{
		"min": ElectMinRank,
		"max": ElectMaxRank,
		"key": ElectByKey([]float64{5, 3, 3, 9, 1, 2, 7, 8}),
	}
	for name, el := range electors {
		f := func(raw []uint8) bool {
			var cands []int32
			for _, r := range raw {
				cands = append(cands, int32(r%8))
			}
			if len(cands) == 0 {
				return true
			}
			fold := func(order []int32) int32 {
				leader := int32(-1)
				for _, c := range order {
					leader = el(c, leader, nil)
				}
				return leader
			}
			a := fold(cands)
			rev := make([]int32, len(cands))
			for i, c := range cands {
				rev[len(cands)-1-i] = c
			}
			return a == fold(rev)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestElectByKeyPrefersSmallestKey(t *testing.T) {
	el := ElectByKey([]float64{9, 1, 5})
	if got := el(0, 1, nil); got != 1 {
		t.Fatalf("elect(0, 1) = %d, want 1 (smaller key)", got)
	}
	if got := el(2, -1, nil); got != 2 {
		t.Fatal("undefined leader must yield candidate")
	}
	// Equal keys tie-break by rank.
	el2 := ElectByKey([]float64{4, 4})
	if got := el2(1, 0, nil); got != 0 {
		t.Fatal("tie must break by min rank")
	}
}

// drainRandom delivers queued messages in pseudo-random order while
// preserving per-ordered-pair FIFO (the only guarantee real links give).
func (f *fakeNet) drainRandom(seed uint64, limit int) int {
	steps := 0
	for len(f.queue) > 0 {
		steps++
		if steps > limit {
			panic("fakeNet: message storm under random delivery")
		}
		// Pick a random message whose (from,to) pair has no earlier
		// queued message.
		seed = seed*6364136223846793005 + 1442695040888963407
		idx := int(seed>>33) % len(f.queue)
		m := f.queue[idx]
		ok := true
		for _, e := range f.queue[:idx] {
			if e.from == m.from && e.to == m.to {
				ok = false
				break
			}
		}
		if !ok {
			continue // retry with the next random draw
		}
		f.queue = append(f.queue[:idx], f.queue[idx+1:]...)
		f.now += 0.001
		f.exs[m.to].HandleMessage(f.ctx(m.to), m.from, m.kind, m.payload)
	}
	return steps
}

func TestIncrementsConvergesUnderRandomDelivery(t *testing.T) {
	// Increments compose: whatever FIFO-per-pair delivery order the
	// network chooses, quiescent views agree with the true loads.
	f := func(seed uint64, nRaw uint8, opsRaw uint8) bool {
		n := int(nRaw)%5 + 2
		ops := int(opsRaw)%20 + 1
		net := newFakeNet(n)
		for r := 0; r < n; r++ {
			x := NewIncrements(n, r, Config{})
			net.exs[r] = x
			x.Init(net.ctx(r), Load{})
		}
		truth := make([]float64, n)
		rng := seed
		for i := 0; i < ops; i++ {
			rng = rng*6364136223846793005 + 1
			r := int(rng>>33) % n
			rng = rng*6364136223846793005 + 1
			d := float64(int(rng>>40)%200 - 100)
			net.exs[r].LocalChange(net.ctx(r), Load{Workload: d}, false)
			truth[r] += d
		}
		net.drainRandom(seed^0xabcdef, 1_000_000)
		for viewer := 0; viewer < n; viewer++ {
			for p := 0; p < n; p++ {
				if net.exs[viewer].View().Metric(p, Workload) != truth[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotQuiescenceUnderRandomDelivery(t *testing.T) {
	// The snapshot protocol terminates under any FIFO-per-pair delivery
	// order, not just the global-FIFO one.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%5 + 3
		net := newFakeNet(n)
		exs := make([]*Snapshot, n)
		for r := 0; r < n; r++ {
			x := NewSnapshot(n, r, Config{})
			net.exs[r] = x
			exs[r] = x
			x.Init(net.ctx(r), Load{})
		}
		completions := 0
		for _, r := range []int{0, n - 1} {
			r := r
			exs[r].Acquire(net.ctx(r), func() {
				completions++
				exs[r].Commit(net.ctx(r), nil)
			})
		}
		net.drainRandom(seed, 1_000_000)
		for r := 0; r < n; r++ {
			if exs[r].Busy() {
				return false
			}
		}
		return completions == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
