// Package symbolic performs the symbolic analysis of the multifrontal
// method: elimination tree, postordering, factor column counts and relaxed
// supernode amalgamation. Its output — an assembly tree with per-front
// sizes — is exactly what MUMPS's analysis phase hands to the factorization
// (paper §4.1), and what the mapping and solver substrates consume.
package symbolic

import "repro/internal/sparse"

// Etree computes the elimination tree of the (symmetric) graph g in
// natural order, using Liu's algorithm with path compression. parent[v] is
// the etree parent of v, or -1 for roots. Only edges (u, v) with u < v
// matter; g supplies both directions.
func Etree(g *sparse.Graph) []int32 {
	n := g.N
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	for v := 0; v < n; v++ {
		for _, u := range g.AdjOf(v) {
			if u >= int32(v) {
				continue
			}
			// Walk from u to the root of its current subtree, compressing
			// the ancestor path onto v.
			j := u
			for ancestor[j] != -1 && ancestor[j] != int32(v) {
				nextJ := ancestor[j]
				ancestor[j] = int32(v)
				j = nextJ
			}
			if ancestor[j] == -1 {
				ancestor[j] = int32(v)
				parent[j] = int32(v)
			}
		}
	}
	return parent
}

// Children builds child lists from a parent vector; roots are collected
// separately. Children appear in increasing vertex order.
func Children(parent []int32) (children [][]int32, roots []int32) {
	n := len(parent)
	counts := make([]int32, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			counts[parent[v]]++
		}
	}
	children = make([][]int32, n)
	for v := 0; v < n; v++ {
		if counts[v] > 0 {
			children[v] = make([]int32, 0, counts[v])
		}
	}
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			children[p] = append(children[p], int32(v))
		} else {
			roots = append(roots, int32(v))
		}
	}
	return children, roots
}

// Postorder returns a postorder permutation of the forest: post[k] = v
// means v is the k-th vertex in postorder. Children are visited in
// increasing order, keeping the result deterministic.
func Postorder(parent []int32) []int32 {
	n := len(parent)
	children, roots := Children(parent)
	post := make([]int32, 0, n)
	// Iterative DFS with explicit child cursors.
	stack := make([]int32, 0, 64)
	cursor := make([]int32, n)
	for _, r := range roots {
		stack = append(stack, r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if int(cursor[v]) < len(children[v]) {
				c := children[v][cursor[v]]
				cursor[v]++
				stack = append(stack, c)
				continue
			}
			post = append(post, v)
			stack = stack[:len(stack)-1]
		}
	}
	return post
}

// RelabelParent maps a parent vector through a postorder: the returned
// vector newParent satisfies newParent[inv[v]] = inv[parent[v]] (with -1
// preserved). Postordering preserves the etree, so no recomputation is
// needed.
func RelabelParent(parent, post []int32) []int32 {
	n := len(parent)
	inv := make([]int32, n)
	for k, v := range post {
		inv[v] = int32(k)
	}
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		if parent[v] < 0 {
			out[inv[v]] = -1
		} else {
			out[inv[v]] = inv[parent[v]]
		}
	}
	return out
}

// ColCounts computes the number of nonzeros of each factor column
// (diagonal included) for the Cholesky factor of the graph in natural
// order, by row-subtree traversal: entry L(i,j) exists iff j lies on the
// etree path from some k ∈ adj(i), k < i, up to i. Complexity O(|L|).
func ColCounts(g *sparse.Graph, parent []int32) []int32 {
	n := g.N
	count := make([]int32, n)
	mark := make([]int32, n)
	for i := range count {
		count[i] = 1 // diagonal
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = int32(i)
		for _, k := range g.AdjOf(i) {
			if k >= int32(i) {
				continue
			}
			for j := k; mark[j] != int32(i); j = parent[j] {
				count[j]++
				mark[j] = int32(i)
				if parent[j] < 0 {
					break
				}
			}
		}
	}
	return count
}

// FactorNNZ sums the column counts (total factor entries of one triangle).
func FactorNNZ(counts []int32) int64 {
	var s int64
	for _, c := range counts {
		s += int64(c)
	}
	return s
}
