package workload_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	xnet "repro/internal/net"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The topology cells of the equivalence suite: the same scenario runs on
// sparse neighbor graphs under the neighbor-restricted mechanisms — the
// paper's maintained pair plus the two dissemination tenants — on all
// three runtimes. Views no longer converge to the global finals (state
// only travels edges), so the invariants weaken deliberately:
//
//  1. selection coherence, restricted: every assignment targets a
//     neighbor of the master, and exactly the least-loaded neighbors per
//     the recorded view (re-derived with core.LeastLoadedAmong), with
//     equal positive shares;
//  2. conservation, unchanged: every assigned work item is executed —
//     executed totals equal the sum of assignment counts, and they are
//     identical across the three runtimes.
func TestTopologyMatrixEquivalence(t *testing.T) {
	w, err := workload.Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := w.Programs(matrixParams)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse views never settle onto the global finals; skip the wait.
	drive := workload.DriveOptions{Settle: -1}
	for _, topoName := range []string{"ring", "grid2d"} {
		topo, err := core.NewTopology(topoName, matrixParams.Procs)
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechGossip, core.MechDiffusion} {
			topo, mech := topo, mech
			t.Run(topoName+"/"+string(mech), func(t *testing.T) {
				cfg := core.Config{Topo: topo}
				drivers := []workload.Driver{sim.NewWorkloadDriver(), live.Driver{Drive: drive}}
				if !testing.Short() {
					drivers = append(drivers, xnet.Driver{Drive: drive})
				}
				reports := map[string]*workload.Report{}
				for _, d := range drivers {
					rep, err := d.Run(w, mech, cfg, matrixParams)
					if err != nil {
						t.Fatalf("%s: %v", d.Runtime(), err)
					}
					reports[d.Runtime()] = rep
					checkTopologyInvariants(t, rep, topo, progs)
				}
				want := reports["sim"]
				for name, got := range reports {
					if name == "sim" {
						continue
					}
					if a, b := got.TotalExecuted(), want.TotalExecuted(); a != b {
						t.Errorf("%s executed %d items, sim executed %d", name, a, b)
					}
				}
			})
		}
	}
}

// checkTopologyInvariants asserts the sparse-graph invariants on one
// runtime's report.
func checkTopologyInvariants(t *testing.T, rep *workload.Report, topo *core.Topology, progs []workload.Program) {
	t.Helper()
	const eps = 1e-9
	name := rep.Runtime
	if got, want := len(rep.Records), workload.DecisionCount(progs); got != want {
		t.Fatalf("%s: recorded %d decisions, want %d", name, got, want)
	}
	var assigned int64
	for i, rec := range rep.Records {
		assigned += int64(len(rec.Assignments))
		sel := core.LeastLoadedAmong(core.ViewOf(rec.View), core.Workload,
			rec.Master, len(rec.Assignments), topo.Neighbors(rec.Master))
		if len(sel) != len(rec.Assignments) {
			t.Fatalf("%s decision %d: %d assignments, %d least-loaded neighbors", name, i, len(rec.Assignments), len(sel))
		}
		var firstShare float64
		for j, a := range rec.Assignments {
			if !topo.Edge(rec.Master, int(a.Proc)) {
				t.Errorf("%s decision %d: master %d assigned to non-neighbor %d on %s",
					name, i, rec.Master, a.Proc, topo.Name())
			}
			if int(a.Proc) != sel[j] {
				t.Errorf("%s decision %d (master %d): assignment %d targets %d, least-loaded neighbor per view is %d",
					name, i, rec.Master, j, a.Proc, sel[j])
			}
			if j == 0 {
				firstShare = a.Delta[core.Workload]
				if firstShare <= 0 {
					t.Errorf("%s decision %d: non-positive share %v", name, i, firstShare)
				}
			} else if math.Abs(a.Delta[core.Workload]-firstShare) > eps {
				t.Errorf("%s decision %d: unequal shares %v vs %v", name, i, a.Delta[core.Workload], firstShare)
			}
		}
	}
	if got := rep.TotalExecuted(); got != assigned {
		t.Errorf("%s: executed %d work items, assigned %d — work leaked or duplicated", name, got, assigned)
	}
}
