package live

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestLiveClusterBasicWorkflow(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			cl, err := NewCluster(4, mech, core.Config{Threshold: core.Load{core.Workload: 1}})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			if err := cl.Decide(0, 300, 3, 0); err != nil {
				t.Fatal(err)
			}
			if err := cl.Drain(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			var executed int64
			for r := 0; r < 4; r++ {
				executed += cl.Executed(r)
			}
			if executed != 3 {
				t.Fatalf("executed %d work items, want 3", executed)
			}
		})
	}
}

func TestLiveConcurrentDecisions(t *testing.T) {
	// Multiple masters decide simultaneously under every mechanism; with
	// the race detector this validates the mechanisms' single-goroutine
	// discipline and the snapshot sequentialization over real channels.
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			const n = 6
			cl, err := NewCluster(n, mech, core.Config{Threshold: core.Load{core.Workload: 10}})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			var wg sync.WaitGroup
			for master := 0; master < 3; master++ {
				wg.Add(1)
				go func(m int) {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						if err := cl.Decide(m, 100, 2, time.Millisecond); err != nil {
							t.Error(err)
							return
						}
					}
				}(master)
			}
			wg.Wait()
			if err := cl.Drain(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			var executed int64
			for r := 0; r < n; r++ {
				executed += cl.Executed(r)
			}
			if executed != 30 {
				t.Fatalf("executed %d work items, want 30", executed)
			}
		})
	}
}

func TestLiveViewsConvergeAfterQuiescence(t *testing.T) {
	cl, err := NewCluster(4, core.MechIncrements, core.Config{}) // zero threshold: every change broadcast
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for i := 0; i < 4; i++ {
		if err := cl.Decide(i, 40, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Give the trailing Update broadcasts a moment, then all views must
	// agree that all work is done (loads back to 0).
	time.Sleep(50 * time.Millisecond)
	for r := 0; r < 4; r++ {
		for p, l := range cl.View(r) {
			if l[core.Workload] != 0 {
				t.Fatalf("node %d sees residual load %v on %d", r, l[core.Workload], p)
			}
		}
	}
}

func TestLiveSnapshotStats(t *testing.T) {
	cl, err := NewCluster(4, core.MechSnapshot, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.Decide(2, 90, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats(2)
	if st.SnapshotsInitiated != 1 {
		t.Fatalf("snapshots initiated = %d, want 1", st.SnapshotsInitiated)
	}
}

func TestLiveDecideRejectsBadMaster(t *testing.T) {
	cl, err := NewCluster(2, core.MechNaive, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.Decide(9, 10, 1, 0); err == nil {
		t.Fatal("bad master accepted")
	}
}
