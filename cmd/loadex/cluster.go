package main

// loadex cluster: run a registered workload scenario over a real
// localhost TCP cluster and report per-rank message and selection
// statistics.
//
// By default the command forks one `loadex node` process per rank (the
// binary re-executes itself), wires them through the ADDR/PEERS stdio
// handshake and aggregates each node's STATS line. With -inproc the
// same nodes run as goroutines inside this process — same sockets, no
// fork — which is what CI uses. Application scenarios (the solver) fork
// too: each process hosts one rank of the application and quiescence is
// decided by the distributed termination detector (-term). The scenario
// × mechanism × runtime matrix lives in `loadex run`; cluster is the
// per-rank TCP view of one scenario.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	xnet "repro/internal/net"
	"repro/internal/workload"
)

func runCluster(args []string) error {
	fs := flag.NewFlagSet("loadex cluster", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	procs := fs.Int("procs", 0, "number of processes (alias for -n)")
	inproc := fs.Bool("inproc", false, "run the nodes in-process (same TCP sockets, no fork)")
	fs.DurationVar(&p.statsTimeout, "stats-timeout", defaultStatsTimeout,
		"forked clusters: watchdog slack for stats collection — the ADDR-phase deadline, and the padding added to -timeout + -settle for the STATS phase (raise on heavily loaded machines)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		p.procs = *procs
	}
	if p.masters > p.procs {
		p.masters = p.procs
	}
	if err := p.validate(true); err != nil {
		return err
	}
	if err := p.singleTerm("loadex cluster"); err != nil {
		return err
	}
	if err := p.singleChaos("loadex cluster"); err != nil {
		return err
	}
	if err := p.singleTopo("loadex cluster"); err != nil {
		return err
	}
	mechs := []string{p.mech}
	if p.mech == "all" {
		mechs = mechNames()
	}
	scenarios := []string{p.scenario}
	if p.scenario == "all" {
		scenarios = scenarios[:0]
		for _, name := range workload.Names() {
			// Application scenarios run forked like any other (one app
			// instance per OS process, detector-driven quiescence), but
			// have no per-rank program for the in-process driver here;
			// `loadex run -runtime net -inproc` hosts those.
			if *inproc && workload.IsAppScenario(name) {
				continue
			}
			scenarios = append(scenarios, name)
		}
	} else if *inproc && workload.IsAppScenario(p.scenario) {
		return fmt.Errorf("scenario %q is an application scenario; drop -inproc to fork it (one process per rank, detector-driven quiescence) or host it in-process with `loadex run -scenario %s -runtime net -inproc`", p.scenario, p.scenario)
	}
	// A chaos run without -trace still validates: record into a
	// temporary directory so the post-run invariant check (conservation,
	// compute completion, quiescence) has traces to replay.
	validateAfter := p.traceDir != ""
	if p.chaos != "" && p.chaos != "none" && p.traceDir == "" {
		dir, err := os.MkdirTemp("", "loadex-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		p.traceDir = dir
		validateAfter = true
	}
	for _, scenario := range scenarios {
		for _, mech := range mechs {
			q := p
			q.scenario, q.mech = scenario, mech
			if p.traceDir != "" {
				// One subdirectory per cell: the validator treats each
				// directory holding *.jsonl files as one run.
				q.traceDir = filepath.Join(p.traceDir, scenario+"-"+mech)
			}
			var (
				stats []nodeStats
				err   error
			)
			if *inproc {
				stats, err = runClusterInProc(&q)
			} else {
				stats, err = runClusterForked(&q)
			}
			if err != nil {
				return fmt.Errorf("scenario %s, mechanism %s: %w", scenario, mech, err)
			}
			writeClusterReport(os.Stdout, &q, *inproc, stats)
		}
	}
	if validateAfter {
		return validateTraceRoot(os.Stdout, p.traceDir)
	}
	return nil
}

// runClusterInProc compiles the scenario and drives it on an in-process
// TCP cluster, keeping the per-rank transport counters the report
// needs.
func runClusterInProc(p *nodeParams) ([]nodeStats, error) {
	progs, err := p.programs()
	if err != nil {
		return nil, err
	}
	codec, err := xnet.NewCodec(p.codec)
	if err != nil {
		return nil, err
	}
	rec, err := p.openInProcRecorder()
	if err != nil {
		return nil, err
	}
	defer rec.Close()
	mech := core.Mech(p.mech)
	cl, err := xnet.NewCluster(len(progs), mech, p.config(),
		xnet.ProgramOptions(xnet.Options{Codec: codec, Chaos: p.chaosPlan(), Rec: rec}, progs))
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	rep, err := workload.DriveCluster(cl, mech, progs, p.driveOptions())
	if err != nil {
		return nil, err
	}
	for r, ex := range rep.Executed {
		rec.Record(chaos.Event{Ev: chaos.EvFinal, Rank: r, Executed: ex})
	}
	stats := make([]nodeStats, len(progs))
	for r := range stats {
		stats[r] = nodeStats{
			Rank:      r,
			Executed:  rep.Executed[r],
			Mech:      rep.Stats[r],
			Transport: cl.Transport(r),
		}
	}
	for _, rec := range rep.Records {
		stats[rec.Master].Decisions++
	}
	return stats, nil
}

// runClusterForked forks one `loadex node` per rank (re-executing this
// binary) and shepherds the stdio handshake.
func runClusterForked(p *nodeParams) ([]nodeStats, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	return runClusterForkedWith(exe, p)
}

// childEvent is one observation a forked node's reader goroutine posts
// to the parent: a protocol line (ADDR/STATS payload) or the process's
// exit.
type childEvent struct {
	rank    int
	kind    string // "addr", "stats", "exit"
	payload string
	err     error // exit status, for "exit" events
}

// defaultStatsTimeout is the watchdog slack when -stats-timeout is
// unset: it bounds the fork-to-ADDR phase on its own (every child only
// has to bind one localhost socket and print a line, so a child silent
// for this long is wedged, not slow) and pads the STATS deadline on top
// of the quiescence and settle budgets.
const defaultStatsTimeout = 30 * time.Second

// runClusterForkedWith is runClusterForked against an explicit loadex
// binary (tests build one: the test binary cannot re-execute itself as
// `loadex node`).
//
// The parent acts as a watchdog: one reader goroutine per child feeds
// ADDR/STATS lines and the child's exit into a shared event channel,
// and each collection phase selects against a deadline. A child that
// dies early (a chaos crash plan, an OOM kill, a panic) is therefore
// reported by rank with its exit status instead of deadlocking the
// parent on a pipe that will never produce the next line.
func runClusterForkedWith(exe string, p *nodeParams) ([]nodeStats, error) {
	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
	}
	children := make([]*child, p.procs)
	defer func() {
		for _, c := range children {
			if c != nil {
				c.stdin.Close()
				c.cmd.Process.Kill()
				// The reader goroutine owns cmd.Wait; killing the process
				// ends its stdout stream and unblocks it.
			}
		}
	}()
	events := make(chan childEvent, 4*p.procs)
	for r := 0; r < p.procs; r++ {
		args := []string{"node",
			"-rank", strconv.Itoa(r),
			"-n", strconv.Itoa(p.procs),
			"-scenario", p.scenario,
			"-mech", p.mech,
			"-threshold", fmt.Sprint(p.threshold),
			"-nomore=" + strconv.FormatBool(p.noMore),
			"-codec", p.codec,
			"-term", p.term,
			"-masters", strconv.Itoa(p.masters),
			"-decisions", strconv.Itoa(p.decisions),
			"-work", fmt.Sprint(p.work),
			"-slaves", strconv.Itoa(p.slaves),
			"-spin", p.spin.String(),
			"-settle", p.settle.String(),
			"-timeout", p.quiesceTimeout().String(),
		}
		if p.chaos != "" {
			args = append(args, "-chaos", p.chaos)
		}
		if p.topo != "" {
			args = append(args, "-topo", p.topo)
		}
		if p.traceDir != "" {
			args = append(args, "-trace", p.traceDir)
		}
		if p.tele > 0 {
			args = append(args, "-tele", p.tele.String())
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("forking node %d: %w", r, err)
		}
		children[r] = &child{cmd: cmd, stdin: stdin}
		go readChild(r, cmd, stdout, events)
	}

	// Phase 1: collect every node's bound address. A node that dies
	// here — before the mesh even exists — is fatal regardless of its
	// exit status: the cluster can never complete one rank short.
	addrs := make([]string, p.procs)
	gotAddr := make([]bool, p.procs)
	addrDeadline := time.Now().Add(p.watchdogSlack())
	for have := 0; have < p.procs; {
		ev, err := nextEvent(events, addrDeadline, "ADDR", missing(gotAddr))
		if err != nil {
			return nil, err
		}
		switch ev.kind {
		case "addr":
			fields := strings.Fields(ev.payload)
			if len(fields) != 2 || fields[0] != strconv.Itoa(ev.rank) {
				return nil, fmt.Errorf("node %d: malformed address line %q", ev.rank, ev.payload)
			}
			addrs[ev.rank] = fields[1]
			if !gotAddr[ev.rank] {
				gotAddr[ev.rank] = true
				have++
			}
		case "exit":
			return nil, fmt.Errorf("node %d died before binding (%s); %d/%d ranks bound",
				ev.rank, exitStatus(ev.err), have, p.procs)
		}
	}
	// Phase 2: broadcast the full list.
	peers := "PEERS " + strings.Join(addrs, ",") + "\n"
	for r, c := range children {
		if _, err := io.WriteString(c.stdin, peers); err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
	}
	// Phase 3: gather each node's report and reap its exit. The
	// deadline covers the per-node quiescence budget plus handshake and
	// settle slack. A rank exiting cleanly after its STATS is the normal
	// shutdown; exiting with an error, or before its STATS line, kills
	// the run naming the rank — one dead process means the survivors
	// would wait out their full quiescence timeout for a detector that
	// can never conclude.
	stats := make([]nodeStats, p.procs)
	gotStats := make([]bool, p.procs)
	deadline := time.Now().Add(p.quiesceTimeout() + p.settle + p.watchdogSlack())
	for have, exited := 0, 0; have < p.procs || exited < p.procs; {
		ev, err := nextEvent(events, deadline, "STATS", missing(gotStats))
		if err != nil {
			return nil, err
		}
		switch ev.kind {
		case "stats":
			if err := json.Unmarshal([]byte(ev.payload), &stats[ev.rank]); err != nil {
				return nil, fmt.Errorf("node %d: bad stats line: %w", ev.rank, err)
			}
			if !gotStats[ev.rank] {
				gotStats[ev.rank] = true
				have++
			}
		case "exit":
			if ev.err != nil {
				return nil, fmt.Errorf("node %d died before quiescence (%s); %d/%d ranks reported stats",
					ev.rank, exitStatus(ev.err), have, p.procs)
			}
			if !gotStats[ev.rank] {
				return nil, fmt.Errorf("node %d exited without reporting stats; %d/%d ranks reported",
					ev.rank, have, p.procs)
			}
			children[ev.rank] = nil // reaped by its reader goroutine
			exited++
		}
	}
	return stats, nil
}

// missing lists the ranks whose report is still outstanding.
func missing(got []bool) []int {
	var m []int
	for r, ok := range got {
		if !ok {
			m = append(m, r)
		}
	}
	return m
}

// exitStatus renders a child's exit for the watchdog messages.
func exitStatus(err error) string {
	if err == nil {
		return "exited cleanly"
	}
	return err.Error()
}

// readChild is the per-child reader goroutine: protocol lines become
// events, everything else passes through to stderr (node diagnostics),
// and the child's exit — expected or not — is always posted so the
// parent's phase loops can attribute a dead pipe to its rank.
func readChild(rank int, cmd *exec.Cmd, stdout io.Reader, events chan<- childEvent) {
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "ADDR "); ok {
			events <- childEvent{rank: rank, kind: "addr", payload: rest}
		} else if rest, ok := strings.CutPrefix(line, "STATS "); ok {
			events <- childEvent{rank: rank, kind: "stats", payload: rest}
		} else if rest, ok := strings.CutPrefix(line, "TELE "); ok {
			printTele(rank, rest)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	events <- childEvent{rank: rank, kind: "exit", err: cmd.Wait()}
}

// nextEvent waits for one child event or the phase deadline, whichever
// comes first.
func nextEvent(events <-chan childEvent, deadline time.Time, want string, missing []int) (childEvent, error) {
	wait := time.Until(deadline)
	if wait <= 0 {
		wait = 0
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case ev := <-events:
		return ev, nil
	case <-t.C:
		return childEvent{}, fmt.Errorf("timed out waiting for %s from rank(s) %v", want, missing)
	}
}

// writeClusterReport prints the per-rank table the paper-style
// experiments report: selections, mechanism messages, wire traffic.
func writeClusterReport(w io.Writer, p *nodeParams, inproc bool, stats []nodeStats) {
	mode := "forked processes"
	if inproc {
		mode = "in-process"
	}
	topo := p.topo
	if topo == "" {
		topo = core.TopoFull
	}
	fmt.Fprintf(w, "== scenario %s × mechanism %s — %d procs over localhost TCP, topology %s (%s, codec %s) ==\n",
		p.scenario, p.mech, p.procs, topo, mode, p.codec)
	fmt.Fprintf(w, "base workload: %d masters × %d decisions × %g work units over %d least-loaded slaves (spin %s)\n",
		p.masters, p.decisions, p.work, p.slaves, p.spin)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\texecuted\tdecisions\tupdates\treservations\tsnapshots\trestarts\tstate_in\tmsgs_in\tmsgs_out\tbytes_in\tbytes_out")
	var tot nodeStats
	for _, s := range stats {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Rank, s.Executed, s.Decisions,
			s.Mech.UpdatesSent, s.Mech.ReservationsSent,
			s.Mech.SnapshotsInitiated, s.Mech.SnapshotRestarts,
			s.Transport.StateIn, s.Transport.MsgsIn, s.Transport.MsgsOut,
			s.Transport.BytesIn, s.Transport.BytesOut)
		tot.Executed += s.Executed
		tot.Decisions += s.Decisions
		tot.Mech.UpdatesSent += s.Mech.UpdatesSent
		tot.Mech.ReservationsSent += s.Mech.ReservationsSent
		tot.Mech.SnapshotsInitiated += s.Mech.SnapshotsInitiated
		tot.Mech.SnapshotRestarts += s.Mech.SnapshotRestarts
		tot.Transport.StateIn += s.Transport.StateIn
		tot.Transport.MsgsIn += s.Transport.MsgsIn
		tot.Transport.MsgsOut += s.Transport.MsgsOut
		tot.Transport.BytesIn += s.Transport.BytesIn
		tot.Transport.BytesOut += s.Transport.BytesOut
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		tot.Executed, tot.Decisions,
		tot.Mech.UpdatesSent, tot.Mech.ReservationsSent,
		tot.Mech.SnapshotsInitiated, tot.Mech.SnapshotRestarts,
		tot.Transport.StateIn, tot.Transport.MsgsIn, tot.Transport.MsgsOut,
		tot.Transport.BytesIn, tot.Transport.BytesOut)
	tw.Flush()
	if workload.IsAppScenario(p.scenario) {
		fmt.Fprintf(w, "quiescent: %d tasks executed, termination detected by the %s protocol\n\n", tot.Executed, p.term)
		return
	}
	fmt.Fprintf(w, "quiescent: all %d work items executed and acknowledged\n\n", tot.Executed)
}
