package experiments

// The paper's reported values, transcribed from RR-5478 for side-by-side
// comparison in the regenerated tables.

// PaperTable3 maps matrix → procs → number of dynamic decisions.
var PaperTable3 = map[string]map[int]int{
	"BMWCRA_1":     {32: 41, 64: 96},
	"GUPTA3":       {32: 8, 64: 8},
	"MSDOOR":       {32: 38, 64: 81},
	"SHIP_003":     {32: 70, 64: 152},
	"PRE2":         {32: 92, 64: 125},
	"TWOTONE":      {32: 55, 64: 57},
	"ULTRASOUND3":  {32: 49, 64: 116},
	"XENON2":       {32: 50, 64: 65},
	"AUDIKW_1":     {64: 119, 128: 199},
	"CONV3D64":     {64: 169, 128: 274},
	"ULTRASOUND80": {64: 122, 128: 218},
}

// PeakRow is one Table 4 row (millions of real entries).
type PeakRow struct{ Increments, Snapshot, Naive float64 }

// PaperTable4 maps procs → matrix → peak active memory.
var PaperTable4 = map[int]map[string]PeakRow{
	32: {
		"BMWCRA_1":    {3.71, 3.71, 3.71},
		"GUPTA3":      {3.88, 4.35, 3.88},
		"MSDOOR":      {1.51, 1.51, 1.51},
		"SHIP_003":    {5.52, 5.52, 5.52},
		"PRE2":        {7.88, 7.83, 8.04},
		"TWOTONE":     {1.94, 1.89, 1.99},
		"ULTRASOUND3": {7.17, 6.02, 10.69},
		"XENON2":      {2.83, 2.86, 2.93},
	},
	64: {
		"BMWCRA_1":    {2.30, 2.30, 3.55},
		"GUPTA3":      {2.70, 2.70, 2.70},
		"MSDOOR":      {1.01, 0.84, 0.84},
		"SHIP_003":    {2.19, 2.19, 2.19},
		"PRE2":        {7.66, 7.87, 7.72},
		"TWOTONE":     {1.86, 1.86, 1.88},
		"ULTRASOUND3": {3.59, 3.40, 5.24},
		"XENON2":      {2.45, 2.41, 3.61},
	},
}

// TimeRow is one Table 5/7 row (seconds).
type TimeRow struct{ Increments, Snapshot float64 }

// PaperTable5 maps procs → matrix → factorization time (single-threaded).
var PaperTable5 = map[int]map[string]TimeRow{
	64: {
		"AUDIKW_1":     {94.74, 141.62},
		"CONV3D64":     {381.27, 688.39},
		"ULTRASOUND80": {48.69, 85.68},
	},
	128: {
		"AUDIKW_1":     {53.51, 87.70},
		"CONV3D64":     {178.88, 315.63},
		"ULTRASOUND80": {35.12, 66.53},
	},
}

// MsgRow is one Table 6 row (total mechanism messages).
type MsgRow struct{ Increments, Snapshot int64 }

// PaperTable6 maps procs → matrix → message counts.
var PaperTable6 = map[int]map[string]MsgRow{
	64: {
		"AUDIKW_1":     {302715, 11388},
		"CONV3D64":     {386196, 16471},
		"ULTRASOUND80": {208024, 12400},
	},
	128: {
		"AUDIKW_1":     {1386165, 39832},
		"CONV3D64":     {1401373, 57089},
		"ULTRASOUND80": {746731, 50324},
	},
}

// PaperTable7 maps procs → matrix → factorization time (threaded, §4.5).
var PaperTable7 = map[int]map[string]TimeRow{
	64: {
		"AUDIKW_1":     {79.54, 114.96},
		"CONV3D64":     {367.28, 432.71},
		"ULTRASOUND80": {49.56, 69.60},
	},
	128: {
		"AUDIKW_1":     {41.00, 59.19},
		"CONV3D64":     {189.47, 237.69},
		"ULTRASOUND80": {35.91, 52.00},
	},
}
