package core

// Increments is the mechanism of §2.2 (Algorithm 3), the default in MUMPS
// since version 4.3. Two ideas fix the naive scheme's incoherence:
//
//  1. Loads travel as increments: small variations accumulate locally in
//     Δload and are broadcast once they exceed the threshold, so
//     concurrent updates compose instead of overwriting each other.
//  2. Every slave selection is announced to all processes in a
//     Master_To_All message carrying the per-slave reserved load: the
//     decision is visible system-wide before the slaves have even
//     received their work. A slave therefore skips re-announcing the
//     (positive) variation when its subtask arrives — the master already
//     did (step (1) of Algorithm 3).
//
// The §2.3 No_more_master optimization prunes Update recipients.
type Increments struct {
	n, rank int
	cfg     Config
	my      Load
	acc     Load // Δload accumulator
	view    *View
	nbrs    []int // broadcast recipients: cfg.Topo's neighbors (all peers on full)
	noMore  []bool
	stats   Stats
}

// NewIncrements constructs the increments mechanism.
func NewIncrements(n, rank int, cfg Config) *Increments {
	return &Increments{n: n, rank: rank, cfg: cfg, view: NewView(n),
		nbrs: neighborRanks(cfg.Topo, n, rank), noMore: make([]bool, n)}
}

// Name implements Exchanger.
func (x *Increments) Name() string { return string(MechIncrements) }

// Init implements Exchanger.
func (x *Increments) Init(ctx Context, initial Load) {
	x.my = initial
	x.view.Set(x.rank, initial)
}

// LocalChange implements Exchanger (Algorithm 3, "when my load varies").
func (x *Increments) LocalChange(ctx Context, delta Load, asSlave bool) {
	if asSlave && isNonNegative(delta) {
		// (1): the master's Master_To_All already accounted this.
		return
	}
	x.my = x.my.Add(delta)
	x.view.Set(x.rank, x.my)
	x.acc = x.acc.Add(delta)
	if x.acc.ExceedsAny(x.cfg.Threshold) {
		x.flush(ctx)
	}
}

func isNonNegative(d Load) bool {
	for _, v := range d {
		if v < 0 {
			return false
		}
	}
	return true
}

// flush broadcasts the accumulated increment.
func (x *Increments) flush(ctx Context) {
	payload := UpdatePayload{Load: x.acc}
	for _, to := range x.nbrs {
		if x.cfg.NoMoreMasterOpt && x.noMore[to] {
			continue
		}
		ctx.Send(to, KindUpdate, payload, BytesUpdate)
		x.stats.UpdatesSent++
	}
	x.acc = Load{}
}

// Local implements Exchanger.
func (x *Increments) Local() Load { return x.my }

// View implements Exchanger.
func (x *Increments) View() *View { return x.view }

// Acquire implements Exchanger: the maintained view is always ready. The
// coherence condition of §1 — all pending state messages are treated
// before a decision — is guaranteed by the runtime's Algorithm 1 loop.
func (x *Increments) Acquire(ctx Context, ready func()) { ready() }

// Commit implements Exchanger: broadcast the reservation (Algorithm 3,
// "at each slave selection on the master side"). Every process —
// including the selected slaves, which credit their own load on reception
// — learns the decision. Recipients pruned by No_more_master still
// receive it if they are selected slaves (they need the self-credit).
func (x *Increments) Commit(ctx Context, assignments []Assignment) {
	if len(assignments) == 0 {
		return
	}
	payload := MasterToAllPayload{Assignments: assignments}
	selected := make(map[int32]bool, len(assignments))
	for _, a := range assignments {
		selected[a.Proc] = true
	}
	bytes := MasterToAllBytes(len(assignments))
	for _, to := range x.nbrs {
		if x.cfg.NoMoreMasterOpt && x.noMore[to] && !selected[int32(to)] {
			continue
		}
		ctx.Send(to, KindMasterToAll, payload, bytes)
	}
	x.stats.ReservationsSent++
	// Update the master's own view immediately.
	for _, a := range assignments {
		if int(a.Proc) == x.rank {
			x.my = x.my.Add(a.Delta)
			x.view.Set(x.rank, x.my)
		} else {
			x.view.AddTo(int(a.Proc), a.Delta)
		}
	}
}

// NoMoreMaster implements Exchanger (§2.3).
func (x *Increments) NoMoreMaster(ctx Context) {
	if !x.cfg.NoMoreMasterOpt {
		return
	}
	// Only neighbors ever send us updates, so only they need pruning.
	// On the full topology this is exactly the old broadcast: every
	// runtime implements Broadcast as the same ascending Send loop.
	for _, to := range x.nbrs {
		ctx.Send(to, KindNoMoreMaster, nil, BytesNoMoreMaster)
	}
}

// HandleMessage implements Exchanger.
func (x *Increments) HandleMessage(ctx Context, from int, kind int, payload any) {
	switch kind {
	case KindUpdate:
		p := payload.(UpdatePayload)
		x.view.AddTo(from, p.Load)
	case KindMasterToAll:
		p := payload.(MasterToAllPayload)
		for _, a := range p.Assignments {
			if int(a.Proc) == x.rank {
				// My own reservation: credit my load (Algorithm 3,
				// line 21) without re-broadcasting.
				x.my = x.my.Add(a.Delta)
				x.view.Set(x.rank, x.my)
			} else {
				x.view.AddTo(int(a.Proc), a.Delta)
			}
		}
	case KindNoMoreMaster:
		x.noMore[from] = true
	}
}

// Busy implements Exchanger: never blocks the application.
func (x *Increments) Busy() bool { return false }

// Stats implements Exchanger.
func (x *Increments) Stats() Stats { return x.stats }
