package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// tinyLab runs the suite at a very small scale: fast enough for unit
// tests, large enough to exercise every code path.
func tinyLab() *Lab {
	cfg := DefaultConfig()
	cfg.ScalePerProcs = map[int]float64{
		4:   0.02,
		32:  0.03,
		64:  0.05,
		128: 0.08,
	}
	return NewLab(cfg)
}

func TestMatricesListsAllProblems(t *testing.T) {
	lab := tinyLab()
	rows, err := lab.Matrices(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if r.GenOrder <= 0 || r.GenNNZ <= 0 {
			t.Fatalf("%s: empty generated matrix", r.Name)
		}
		if r.PaperOrder <= 0 {
			t.Fatalf("%s: missing paper order", r.Name)
		}
	}
	var buf bytes.Buffer
	WriteMatrices(&buf, rows)
	if !strings.Contains(buf.String(), "GUPTA3") {
		t.Fatal("rendering misses a matrix")
	}
}

func TestTable3Coverage(t *testing.T) {
	lab := tinyLab()
	rows, err := lab.Table3()
	if err != nil {
		t.Fatal(err)
	}
	// 8 set-1 matrices × {32, 64} + 3 set-2 × {64, 128}.
	if len(rows) != 8*2+3*2 {
		t.Fatalf("got %d rows, want 22", len(rows))
	}
	withPaper := 0
	for _, r := range rows {
		if r.Measured <= 0 {
			t.Fatalf("%s@%d: no decisions", r.Name, r.Procs)
		}
		if r.Paper > 0 {
			withPaper++
		}
	}
	if withPaper != len(rows) {
		t.Fatalf("paper values missing for %d rows", len(rows)-withPaper)
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "AUDIKW_1") {
		t.Fatal("rendering misses a matrix")
	}
}

func TestTable4SingleProcsRuns(t *testing.T) {
	lab := tinyLab()
	rows, err := lab.Table4([]int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Measured.Increments <= 0 || r.Measured.Snapshot <= 0 || r.Measured.Naive <= 0 {
			t.Fatalf("%s: missing measurement: %+v", r.Name, r.Measured)
		}
		if r.Paper.Increments <= 0 {
			t.Fatalf("%s: missing paper row", r.Name)
		}
	}
	var buf bytes.Buffer
	WriteTable4(&buf, rows)
	if !strings.Contains(buf.String(), "ULTRASOUND3") {
		t.Fatal("rendering incomplete")
	}
}

func TestTable567SingleProcs(t *testing.T) {
	lab := tinyLab()
	rows, err := lab.Table567([]int{64}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Time.Increments <= 0 || r.Time.Snapshot <= 0 {
			t.Fatalf("%s: missing times", r.Name)
		}
		if r.Msgs.Increments <= r.Msgs.Snapshot {
			t.Fatalf("%s: increments should use more messages (got %d vs %d)",
				r.Name, r.Msgs.Increments, r.Msgs.Snapshot)
		}
		if r.ThreadedTime.Increments <= 0 || r.ThreadedTime.Snapshot <= 0 {
			t.Fatalf("%s: missing threaded times", r.Name)
		}
	}
	for _, render := range []func(*bytes.Buffer){
		func(b *bytes.Buffer) { WriteTable5(b, rows) },
		func(b *bytes.Buffer) { WriteTable6(b, rows) },
		func(b *bytes.Buffer) { WriteTable7(b, rows) },
	} {
		var buf bytes.Buffer
		render(&buf)
		if !strings.Contains(buf.String(), "CONV3D64") {
			t.Fatal("rendering incomplete")
		}
	}
}

func TestFigure1AllMechanisms(t *testing.T) {
	var buf bytes.Buffer
	for _, mech := range core.Mechanisms() {
		if err := Figure1(&buf, mech); err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "STALE") {
		t.Fatal("naive run did not exhibit the stale view")
	}
	if strings.Count(out, "COHERENT") != 2 {
		t.Fatal("increments and snapshot must both be coherent")
	}
}

func TestFigure2Renders(t *testing.T) {
	lab := tinyLab()
	var buf bytes.Buffer
	if err := lab.Figure2(&buf, "BMWCRA_1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"subtree", "T1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationNoMoreMasterReduces(t *testing.T) {
	lab := tinyLab()
	rows, err := lab.AblationNoMoreMaster(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ReductionFactor < 1 {
			t.Fatalf("%s: No_more_master increased messages (%v)", r.Name, r.ReductionFactor)
		}
	}
	var buf bytes.Buffer
	WriteAblationNoMoreMaster(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestAblationLeaderElectionRuns(t *testing.T) {
	lab := tinyLab()
	rows, err := lab.AblationLeaderElection(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MinRank <= 0 || r.MaxRank <= 0 || r.ByLoadKey <= 0 {
			t.Fatalf("%s: missing results: %+v", r.Name, r)
		}
	}
	var buf bytes.Buffer
	WriteAblationLeaderElection(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestAblationThresholdMonotoneMessages(t *testing.T) {
	lab := tinyLab()
	rows, err := lab.AblationThreshold("ULTRASOUND80", 64, []float64{0.25, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Msgs <= rows[1].Msgs {
		t.Fatalf("lower threshold must send more messages: %+v", rows)
	}
	var buf bytes.Buffer
	WriteAblationThreshold(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestRunOneUnknownProblem(t *testing.T) {
	lab := tinyLab()
	if _, err := lab.RunOne("NOPE", 4, core.MechNaive, sched.Workload(), nil); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestLabCachesAnalyses(t *testing.T) {
	lab := tinyLab()
	if _, err := lab.Mapping("GUPTA3", 32); err != nil {
		t.Fatal(err)
	}
	lab.mu.Lock()
	n := len(lab.cache)
	lab.mu.Unlock()
	if n != 1 {
		t.Fatalf("cache has %d entries, want 1", n)
	}
	if _, err := lab.Mapping("GUPTA3", 32); err != nil {
		t.Fatal(err)
	}
	lab.mu.Lock()
	n = len(lab.cache)
	lab.mu.Unlock()
	if n != 1 {
		t.Fatal("analysis not reused")
	}
}
