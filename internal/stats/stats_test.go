package stats

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %v, want √2", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if p := Percentile(sorted, 0.5); p != 5 {
		t.Fatalf("P50 of {0,10} = %v, want 5", p)
	}
	if p := Percentile(sorted, 0); p != 0 {
		t.Fatal("P0 wrong")
	}
	if p := Percentile(sorted, 1); p != 10 {
		t.Fatal("P100 wrong")
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatal("empty percentile")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.P50 || s.P50 > s.P90+1e-9 || s.P90 > s.P99+1e-9 || s.P99 > s.Max+1e-9 {
			return false
		}
		return s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMatchesSortRank(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sort.Float64s(xs)
		// P0 and P100 are the extremes.
		return Percentile(xs, 0) == xs[0] && Percentile(xs, 1) == xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImbalance(t *testing.T) {
	if v := Imbalance([]float64{1, 1, 1, 1}); v != 1 {
		t.Fatalf("balanced imbalance = %v, want 1", v)
	}
	if v := Imbalance([]float64{0, 0, 4}); math.Abs(v-3) > 1e-12 {
		t.Fatalf("imbalance = %v, want 3", v)
	}
	if v := Imbalance(nil); v != 0 {
		t.Fatal("empty imbalance")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 9.9, 10, -1, 5} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	var buf bytes.Buffer
	h.Render(&buf, 20)
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("histogram render empty")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bounds accepted")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
	if err := CSV(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "n=3") {
		t.Fatal("summary string missing n")
	}
}
