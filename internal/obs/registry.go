// Package obs is the runtime-agnostic observability layer: a typed
// metrics registry that the runtimes, the net mesh, and the service
// register into; Prometheus text exposition plus pprof over an opt-in
// HTTP endpoint; and the trace→timeline reporter behind
// `loadex report`.
//
// The registry is built for hot paths: owned counters and gauges are
// single atomics, histograms are atomic log-linear bucket arrays with
// striped sums, and sampled instruments (CounterFunc/GaugeFunc) read
// existing atomic tallies at scrape time so instrumented code pays
// nothing between scrapes.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Kind classifies an instrument for exposition.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name=value dimension of an instrument.
type Label struct {
	Name, Value string
}

// L builds a label list from alternating name, value pairs:
// obs.L("rank", "3", "mech", "snapshot").
func L(pairs ...string) []Label {
	if len(pairs)%2 != 0 {
		panic("obs.L: odd number of label arguments")
	}
	ls := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return ls
}

// labelKey is the canonical (sorted) identity of a label set.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	s := append([]Label(nil), ls...)
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	var b strings.Builder
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing owned instrument. Integer
// valued: message counts, bytes, events.
type Counter struct {
	v atomic.Int64
}

func (c *Counter) Add(n int64)  { c.v.Add(n) }
func (c *Counter) Inc()         { c.v.Add(1) }
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an owned instantaneous value (float-valued: queue depth,
// busy fraction).
type Gauge struct {
	bits atomic.Uint64
}

func (g *Gauge) Set(v float64)  { g.bits.Store(floatBits(v)) }
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// series is one registered instrument.
type series struct {
	name   string
	help   string
	kind   Kind
	labels []Label
	// Exactly one of the following is set.
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // sampled counter/gauge
}

// Registry holds instruments keyed by name + label set. Registration
// is idempotent: asking for an existing (name, labels) instrument
// returns the registered one, so every layer can register without
// coordinating.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	order  []*series // registration order, for stable exposition
	frozen map[string]Kind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*series{}, frozen: map[string]Kind{}}
}

func (r *Registry) register(name, help string, kind Kind, labels []Label) *series {
	key := name + "{" + labelKey(labels) + "}"
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	if k, ok := r.frozen[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric %s registered with conflicting kinds %s and %s", name, k, kind))
	}
	r.frozen[name] = kind
	s := &series{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...)}
	r.byKey[key] = s
	r.order = append(r.order, s)
	return s
}

// Counter registers (or fetches) an owned counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindCounter, labels)
	if s.counter == nil && s.fn == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or fetches) an owned gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindGauge, labels)
	if s.gauge == nil && s.fn == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or fetches) an owned streaming histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindHistogram, labels)
	if s.hist == nil {
		s.hist = NewHistogram()
	}
	return s.hist
}

// CounterFunc registers a sampled counter: fn is called at scrape time
// and must be monotonic (typically a closure over an existing atomic
// tally — that is how core.Counters, node frame counts and service
// totals register into the layer without restructuring).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindCounter, labels)
	s.fn = fn
	s.counter = nil
}

// GaugeFunc registers a sampled gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindGauge, labels)
	s.fn = fn
	s.gauge = nil
}

// Sample is one scraped time-series value. Histograms carry the digest
// instead of Value.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	Value  float64
	Hist   *stats.StreamHist // histogram samples only
}

// Gather snapshots every instrument. Sampled funcs run at gather time;
// the registry lock is held, so funcs must not re-enter the registry.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.order))
	for _, s := range r.order {
		smp := Sample{Name: s.name, Help: s.help, Kind: s.kind, Labels: s.labels}
		switch {
		case s.fn != nil:
			smp.Value = s.fn()
		case s.counter != nil:
			smp.Value = float64(s.counter.Value())
		case s.gauge != nil:
			smp.Value = s.gauge.Value()
		case s.hist != nil:
			smp.Hist = s.hist.Snapshot()
		}
		out = append(out, smp)
	}
	return out
}

// Merge folds per-rank samples into mesh-level totals: counters and
// histogram buckets add across identical (name, labels-minus-"rank")
// series, gauges keep the last value per merged key. The rank label is
// dropped from the merged identity so a mesh of per-rank registries
// exposes one combined series per metric.
func Merge(samples []Sample) []Sample {
	type agg struct {
		s    Sample
		hist *stats.StreamHist
	}
	byKey := map[string]*agg{}
	var order []string
	for _, s := range samples {
		var kept []Label
		for _, l := range s.Labels {
			if l.Name != "rank" {
				kept = append(kept, l)
			}
		}
		key := s.Name + "{" + labelKey(kept) + "}"
		a, ok := byKey[key]
		if !ok {
			a = &agg{s: Sample{Name: s.Name, Help: s.Help, Kind: s.Kind, Labels: kept}}
			byKey[key] = a
			order = append(order, key)
		}
		switch s.Kind {
		case KindHistogram:
			if s.Hist != nil {
				if a.hist == nil {
					a.hist = &stats.StreamHist{}
				}
				a.hist.Merge(s.Hist)
			}
		case KindCounter:
			a.s.Value += s.Value
		default:
			a.s.Value = s.Value
		}
	}
	out := make([]Sample, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		a.s.Hist = a.hist
		out = append(out, a.s)
	}
	return out
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
