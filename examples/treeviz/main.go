// Treeviz renders the multifrontal assembly tree of a test problem
// distributed over four processes, in the spirit of the paper's Figure 2:
// sequential leaf subtrees, Type 1 nodes, Type 2 nodes (1D parallel,
// dynamic slave selection) and the Type 3 root (2D static).
//
//	go run ./examples/treeviz [matrix]        # ASCII to stdout
//	go run ./examples/treeviz -dot [matrix]   # Graphviz DOT to stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of ASCII")
	flag.Parse()
	name := "BMWCRA_1"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}

	cfg := experiments.DefaultConfig()
	cfg.ScalePerProcs = map[int]float64{4: 0.03}
	lab := experiments.NewLab(cfg)
	m, err := lab.Mapping(name, 4)
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		m.Tree.RenderDOT(os.Stdout, func(id int32) string {
			n := &m.Tree.Nodes[id]
			if n.Subtree >= 0 {
				return fmt.Sprintf("P%d", m.Master[id])
			}
			return fmt.Sprintf("master P%d", m.Master[id])
		})
		return
	}
	if err := lab.Figure2(os.Stdout, name); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlegend: T1 sequential, T2 = 1D parallel (dynamic slaves), T3 = 2D static root\n")
	fmt.Printf("dynamic decisions (Table 3 for this mapping): %d\n", m.Decisions())
}
