package symbolic

import (
	"testing"
	"testing/quick"

	"repro/internal/ordering"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// buildGraph makes the adjacency graph of a small explicit edge list.
func buildGraph(n int, edges [][2]int) *sparse.Graph {
	b := sparse.NewBuilder(n, sparse.Unsym)
	for i := 0; i < n; i++ {
		b.Add(i, i)
	}
	for _, e := range edges {
		b.AddSym(e[0], e[1])
	}
	return b.Build().ToGraph()
}

func TestEtreeKnownExample(t *testing.T) {
	// Chain 0-1-2-3: etree is the chain itself.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	parent := Etree(g)
	want := []int32{1, 2, 3, -1}
	for i := range want {
		if parent[i] != want[i] {
			t.Fatalf("parent = %v, want %v", parent, want)
		}
	}
}

func TestEtreeStarGraph(t *testing.T) {
	// Star with center 4 (highest label): every leaf's parent is 4.
	g := buildGraph(5, [][2]int{{0, 4}, {1, 4}, {2, 4}, {3, 4}})
	parent := Etree(g)
	for v := 0; v < 4; v++ {
		if parent[v] != 4 {
			t.Fatalf("parent[%d] = %d, want 4", v, parent[v])
		}
	}
	if parent[4] != -1 {
		t.Fatal("root must have parent -1")
	}
}

func TestEtreeFillPath(t *testing.T) {
	// 0-1, 0-2: eliminating 0 creates fill (1,2), so parent[1] = 2.
	g := buildGraph(3, [][2]int{{0, 1}, {0, 2}})
	parent := Etree(g)
	if parent[0] != 1 || parent[1] != 2 || parent[2] != -1 {
		t.Fatalf("parent = %v, want [1 2 -1]", parent)
	}
}

// etreeBrute recomputes the etree via explicit symbolic elimination:
// parent[v] = min{u > v : L(u,v) != 0}.
func etreeBrute(g *sparse.Graph) []int32 {
	n := g.N
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
		for _, u := range g.AdjOf(v) {
			adj[v][int(u)] = true
		}
	}
	parent := make([]int32, n)
	for v := 0; v < n; v++ {
		parent[v] = -1
		var higher []int
		for u := range adj[v] {
			if u > v {
				higher = append(higher, u)
			}
		}
		min := -1
		for _, u := range higher {
			if min < 0 || u < min {
				min = u
			}
		}
		if min >= 0 {
			parent[v] = int32(min)
			for _, u := range higher {
				for _, w := range higher {
					if u != w {
						adj[u][w] = true
					}
				}
			}
		}
	}
	return parent
}

func TestEtreeMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 3
		p := sparse.RandomSym(n, 3, 0.5, sim.NewRNG(seed), sparse.Sym)
		g := p.ToGraph()
		fast := Etree(g)
		slow := etreeBrute(g)
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPostorderIsValidAndChildrenFirst(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%80 + 3
		p := sparse.RandomSym(n, 3, 0.5, sim.NewRNG(seed), sparse.Sym)
		parent := Etree(p.ToGraph())
		post := Postorder(parent)
		if err := ordering.Perm(post).Validate(n); err != nil {
			return false
		}
		pos := make([]int32, n)
		for k, v := range post {
			pos[v] = int32(k)
		}
		for v := 0; v < n; v++ {
			if parent[v] >= 0 && pos[v] >= pos[parent[v]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// colCountsBrute computes column counts by explicit symbolic elimination.
func colCountsBrute(g *sparse.Graph) []int32 {
	n := g.N
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
		for _, u := range g.AdjOf(v) {
			adj[v][int(u)] = true
		}
	}
	counts := make([]int32, n)
	for v := 0; v < n; v++ {
		var higher []int
		for u := range adj[v] {
			if u > v {
				higher = append(higher, u)
			}
		}
		counts[v] = int32(len(higher)) + 1
		for _, u := range higher {
			for _, w := range higher {
				if u != w {
					adj[u][w] = true
				}
			}
		}
	}
	return counts
}

func TestColCountsMatchBruteForceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 3
		p := sparse.RandomSym(n, 3, 0.4, sim.NewRNG(seed), sparse.Sym)
		g := p.ToGraph()
		parent := Etree(g)
		// ColCounts requires a postordered input? No: row-subtree
		// traversal works in any consistent order; verify directly.
		fast := ColCounts(g, parent)
		slow := colCountsBrute(g)
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSupernodesPartitionPivots(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%150 + 5
		p := sparse.RandomSym(n, 4, 0.6, sim.NewRNG(seed), sparse.Sym)
		a, err := Analyze(p, DefaultOptions())
		if err != nil {
			return false
		}
		return a.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSupernodesChainCollapses(t *testing.T) {
	// A chain graph has a chain etree with counts n, n-1, ..., wait:
	// chain counts are all 2 except the root. Fundamental merging cannot
	// collapse it fully, but relaxed amalgamation with SmallPiv >= n
	// should give very few nodes.
	g := buildGraph(20, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9},
		{9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14}, {14, 15}, {15, 16},
		{16, 17}, {17, 18}, {18, 19},
	})
	parent := Etree(g)
	counts := ColCounts(g, parent)
	nodes := Supernodes(parent, counts, AmalgParams{SmallPiv: 64, FillTol: 0})
	if len(nodes) != 1 {
		t.Fatalf("chain amalgamated into %d nodes, want 1", len(nodes))
	}
	if nodes[0].Npiv != 20 {
		t.Fatalf("npiv = %d, want 20", nodes[0].Npiv)
	}
}

func TestSupernodesNoAmalgamationKeepsFundamental(t *testing.T) {
	// Dense 4x4 clique: one fundamental supernode of 4 pivots.
	g := buildGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	parent := Etree(g)
	counts := ColCounts(g, parent)
	nodes := Supernodes(parent, counts, AmalgParams{SmallPiv: 0, FillTol: 0})
	if len(nodes) != 1 || nodes[0].Npiv != 4 || nodes[0].Nfront != 4 {
		t.Fatalf("clique nodes = %+v, want single 4x4 node", nodes)
	}
}

func TestAnalyzeGridShapes(t *testing.T) {
	p, _ := sparse.Grid3D(6, 6, 6, 1, sparse.Star, sparse.Sym)
	a, err := Analyze(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Roots) != 1 {
		t.Fatalf("connected grid should have one root, got %d", len(a.Roots))
	}
	root := a.Nodes[len(a.Nodes)-1]
	if root.Parent != -1 {
		t.Fatal("last topological node must be a root")
	}
	// The root front of a 3D grid under ND is the top separator: it must
	// be clearly larger than typical leaf fronts.
	minFront := root.Nfront
	for i := range a.Nodes {
		if a.Nodes[i].Nfront < minFront {
			minFront = a.Nodes[i].Nfront
		}
	}
	if root.Nfront <= minFront {
		t.Fatal("root front not larger than leaf fronts")
	}
	if a.FactorEntries <= int64(a.N) {
		t.Fatal("factor has no fill?")
	}
}

func TestAnalyzeUnsymmetricProblem(t *testing.T) {
	pr, err := sparse.ByName("TWOTONE")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pr.Generate(0.01, 42)
	a, err := Analyze(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Sym {
		t.Fatal("TWOTONE should be unsymmetric")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRejectsBadPerm(t *testing.T) {
	p, _ := sparse.Grid2D(4, 4, 1, sparse.Star, sparse.Sym)
	g := p.ToGraph()
	if _, err := AnalyzeGraph(g, ordering.Perm{0, 0}, true, DefaultAmalg()); err == nil {
		t.Fatal("bad permutation accepted")
	}
}
