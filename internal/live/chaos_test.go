package live_test

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/live"
	_ "repro/internal/solver" // registers the solver-wl scenario
	"repro/internal/workload"
)

// TestChaosDelayFIFORegression pins the fix for a real hang: the live
// host once delivered delayed messages through independent timers,
// which let jittered deliveries overtake each other on a link. The
// snapshot mechanism's rounds assume FIFO channels, so roughly one run
// in three wedged until the two-minute timeout. Delayed deliveries now
// drain through per-link FIFO queues; this test replays the failing
// configuration (solver-wl × snapshot × live × delay) a few times with
// a short timeout — a reintroduced reorder shows up as a timeout error
// here, not as a flaky two-minute CI stall.
func TestChaosDelayFIFORegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run live solver cell")
	}
	plan, err := chaos.Get("delay")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Get("solver-wl")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d := live.Driver{App: live.AppRunner{Chaos: plan, Timeout: 30 * time.Second}}
		rep, err := d.Run(w, core.MechSnapshot, core.Config{}, workload.Params{Procs: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if rep.TotalExecuted() == 0 {
			t.Fatalf("run %d executed nothing", i)
		}
	}
}
