package symbolic

import (
	"fmt"

	"repro/internal/ordering"
	"repro/internal/sparse"
)

// Analysis is the result of the symbolic phase: everything the mapping and
// factorization phases need, and nothing numerical.
type Analysis struct {
	N int
	// Perm is the complete fill-reducing elimination order (fill ordering
	// composed with the etree postorder).
	Perm ordering.Perm
	// Parent is the elimination tree on postordered labels.
	Parent []int32
	// Counts are factor column counts on postordered labels.
	Counts []int32
	// Nodes is the amalgamated assembly tree in topological order.
	Nodes []SNode
	// Roots lists tree roots (usually one per connected component).
	Roots []int32
	// FactorEntries is nnz(L) (one triangle, diagonal included).
	FactorEntries int64
	// Sym records whether the problem is symmetric (halves costs).
	Sym bool
}

// Options configures the analysis.
type Options struct {
	Method ordering.Method
	Amalg  AmalgParams
}

// DefaultOptions returns the analysis configuration used by the
// experiments: automatic ordering choice and default amalgamation.
func DefaultOptions() Options {
	return Options{Method: ordering.MethodAuto, Amalg: DefaultAmalg()}
}

// Analyze runs the full symbolic pipeline on a pattern: adjacency graph,
// fill-reducing ordering, elimination tree, postorder, column counts and
// amalgamation.
func Analyze(p *sparse.Pattern, opt Options) (*Analysis, error) {
	if opt.Method == "" {
		opt.Method = ordering.MethodAuto
	}
	if opt.Amalg == (AmalgParams{}) {
		opt.Amalg = DefaultAmalg()
	}
	g := p.ToGraph()
	perm, err := ordering.Order(g, opt.Method)
	if err != nil {
		return nil, err
	}
	return AnalyzeGraph(g, perm, p.Kind == sparse.Sym, opt.Amalg)
}

// AnalyzeGraph runs the pipeline on a pre-built graph and ordering.
func AnalyzeGraph(g *sparse.Graph, perm ordering.Perm, sym bool, amalg AmalgParams) (*Analysis, error) {
	if err := perm.Validate(g.N); err != nil {
		return nil, fmt.Errorf("symbolic: invalid ordering: %w", err)
	}
	gp := ordering.PermuteGraph(g, perm)
	parent := Etree(gp)
	post := Postorder(parent)
	// Compose the overall order and relabel everything to postorder.
	full := make(ordering.Perm, g.N)
	for k, v := range post {
		full[k] = perm[v]
	}
	gpp := ordering.PermuteGraph(gp, ordering.Perm(post))
	parentPost := RelabelParent(parent, post)
	counts := ColCounts(gpp, parentPost)
	nodes := Supernodes(parentPost, counts, amalg)
	var roots []int32
	for i := range nodes {
		if nodes[i].Parent < 0 {
			roots = append(roots, nodes[i].ID)
		}
	}
	return &Analysis{
		N:             g.N,
		Perm:          full,
		Parent:        parentPost,
		Counts:        counts,
		Nodes:         nodes,
		Roots:         roots,
		FactorEntries: FactorNNZ(counts),
		Sym:           sym,
	}, nil
}

// Validate checks the structural invariants of the analysis: the pivot
// ranges of the nodes partition [0, n), parent links are topological, and
// front sizes are consistent (Nfront >= Npiv, child Schur fits in parent).
func (a *Analysis) Validate() error {
	var piv int64
	for i := range a.Nodes {
		nd := &a.Nodes[i]
		piv += int64(nd.Npiv)
		if nd.Npiv <= 0 {
			return fmt.Errorf("symbolic: node %d has no pivots", nd.ID)
		}
		if nd.Nfront < nd.Npiv {
			return fmt.Errorf("symbolic: node %d front %d < npiv %d", nd.ID, nd.Nfront, nd.Npiv)
		}
		if nd.Parent >= 0 {
			if nd.Parent <= nd.ID || int(nd.Parent) >= len(a.Nodes) {
				return fmt.Errorf("symbolic: node %d has bad parent %d", nd.ID, nd.Parent)
			}
		}
		for _, c := range nd.Children {
			if a.Nodes[c].Parent != nd.ID {
				return fmt.Errorf("symbolic: child link mismatch at node %d", nd.ID)
			}
		}
	}
	if piv != int64(a.N) {
		return fmt.Errorf("symbolic: pivots %d != n %d", piv, a.N)
	}
	return nil
}
