// Package solver executes a MUMPS-like asynchronous multifrontal
// factorization on the discrete-event simulator: the distributed
// application of the paper's Algorithm 1, §4. Each simulated process runs
// the main loop (state messages first, then data messages, then local
// ready tasks); Type 2 masters take dynamic scheduling decisions through a
// pluggable load-exchange mechanism (internal/core) and a slave-selection
// strategy (internal/sched).
//
// The solver performs no numerical work: tasks are compute intervals whose
// durations come from the cost model, and memory is tracked in matrix
// entries — exactly the quantities the paper's tables report.
package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

// Data-channel message kinds (disjoint from core's state kinds only by
// channel, but kept numerically distinct for readable traces).
const (
	// KindSubtask carries a Type 2 slave's share of a front.
	KindSubtask = 101 + iota
	// KindCB carries a contribution-block piece to a Type 1 parent's
	// owner (full data), or announces one to a parallel parent's master
	// (notification only: the data stays stacked on the producer until
	// the parent's slaves are chosen).
	KindCB
	// KindType3Start starts a process's share of the 2D root.
	KindType3Start
	// KindShipReq asks a producer to ship a stacked contribution piece
	// to the consumer chosen by the parent's selection.
	KindShipReq
	// KindCBData is the shipped piece; the consumer's storage was
	// already counted with its block, so reception is bandwidth only.
	KindCBData
)

type subtaskPayload struct {
	Node int32
	Rows int32
}

type cbPayload struct {
	Node     int32 // completed child
	Pieces   int32 // total pieces the child produces
	Entries  float64
	Producer int32
}

type shipReqPayload struct {
	Entries  float64
	Consumer int32
}

type type3Payload struct {
	Node    int32
	Flops   float64
	Entries float64
}

// Params configures one factorization run.
type Params struct {
	// Mech selects the load-exchange mechanism.
	Mech core.Mech
	// MechConfig tunes it; a zero Threshold is replaced by a default
	// derived from the tree's task granularity (§2.3's recommendation).
	MechConfig core.Config
	// Strategy is the dynamic scheduling strategy (workload or memory).
	Strategy *sched.Strategy
	// Net is the interconnect model.
	Net sim.NetworkConfig
	// Threaded enables the §4.5 model: a helper thread treats state
	// messages every PollPeriod even while a task computes.
	Threaded bool
	// PollPeriod is the helper thread's *effective* responsiveness. The
	// paper's thread sleeps 50 µs between checks, but its own
	// measurements show each snapshot still costs ~50 ms even threaded
	// (14 s of snapshot operations for 274 decisions on CONV3D64/128p):
	// lock contention around MPI calls and OS scheduling dominate the
	// nominal sleep. The default (0.8 s of virtual time, ≈ an eighth of a
	// compute panel) is calibrated to that observed per-decision cost and
	// to the paper's 7× threaded/single-threaded snapshot-time ratio.
	PollPeriod sim.Duration
	// FlopsPerSecond is the per-process effective speed (default 1e9).
	FlopsPerSecond float64
	// ThresholdScale multiplies the broadcast threshold (derived or
	// explicit); used by the §2.3 threshold-sensitivity ablation.
	ThresholdScale float64
	// MaxChunkSeconds bounds one uninterrupted compute interval: dense
	// kernels proceed panel by panel and the process polls its message
	// queues between panels, so a long front never makes a process deaf
	// for its whole duration (default 6 s of virtual time, calibrated so
	// the snapshot synchronization overhead matches the paper's Table 5
	// ratios).
	MaxChunkSeconds float64
	// PartialSnapshots enables the §5 extension: a master's demand-driven
	// snapshot consults only its candidate slaves (from the static
	// mapping) instead of every process, and the selection is restricted
	// to those candidates. Only meaningful with MechSnapshot.
	PartialSnapshots bool
	// Tracer, when non-nil, receives structured events (task start/end,
	// decisions, snapshot phases) for debugging and verbose reporting.
	Tracer trace.Tracer
	// MaxSteps guards against protocol livelock (default 200M events).
	MaxSteps uint64
}

// DefaultParams returns the configuration used by the experiments.
//
// FlopsPerSecond is deliberately below hardware rates: the experiments run
// scaled-down matrices (sparse.Problem.Generate), and slowing the virtual
// processors keeps task durations — and therefore the ratio between
// compute, network latency and the 50 µs poll period — in the same regime
// as the paper's full-size runs.
func DefaultParams(mech core.Mech, strat *sched.Strategy) Params {
	return Params{
		Mech:            mech,
		MechConfig:      core.Config{NoMoreMasterOpt: true},
		Strategy:        strat,
		Net:             sim.DefaultNetwork(),
		FlopsPerSecond:  5e7,
		PollPeriod:      800 * sim.Millisecond,
		MaxChunkSeconds: 6,
	}
}

// Result aggregates everything the paper's tables report.
type Result struct {
	// Time is the factorization makespan in virtual seconds (Table 5/7).
	Time float64
	// PeakMem[p] is the peak active memory of process p in entries;
	// MaxPeakMem is the maximum over processes (Table 4, in entries —
	// divide by 1e6 for the paper's "millions of real entries").
	PeakMem    []float64
	MaxPeakMem float64
	// StateMsgs counts messages of the load-exchange mechanism (Table 6);
	// StateBytes is their volume.
	StateMsgs  int64
	StateBytes float64
	// DataMsgs counts application messages (subtasks, contribution
	// blocks).
	DataMsgs int64
	// Decisions is the number of dynamic slave selections (Table 3).
	Decisions int
	// SnapshotTime is the total time spent performing snapshots, summed
	// over initiators (the §4.5 "100 seconds" quantity).
	SnapshotTime float64
	// SnapshotCount / SnapshotRestarts / MaxConcurrentSnapshots describe
	// snapshot activity.
	SnapshotCount          int64
	SnapshotRestarts       int64
	MaxConcurrentSnapshots int
	// PausedTime is the total compute-pause time (threaded model).
	PausedTime float64
	// Steps is the number of simulation events processed.
	Steps uint64
	// MsgsByKind counts state-channel messages by protocol kind name.
	MsgsByKind map[string]int64
}

// Run executes the factorization described by the mapping under the given
// parameters and returns the measured metrics.
func Run(m *mapping.Mapping, prm Params) (*Result, error) {
	if prm.Strategy == nil {
		return nil, fmt.Errorf("solver: nil strategy")
	}
	if prm.FlopsPerSecond <= 0 {
		prm.FlopsPerSecond = 1e9
	}
	if prm.MaxSteps == 0 {
		prm.MaxSteps = 200_000_000
	}
	if prm.MechConfig.Threshold == (core.Load{}) {
		prm.MechConfig.Threshold = defaultThreshold(m)
	}
	if prm.ThresholdScale > 0 {
		for i := range prm.MechConfig.Threshold {
			prm.MechConfig.Threshold[i] *= prm.ThresholdScale
		}
	}

	eng := sim.NewEngine()
	eng.MaxSteps = prm.MaxSteps
	app := &app{m: m, prm: prm}
	rt := sim.NewRuntime(eng, m.Config.NProcs, prm.Net, app)
	rt.Threaded = prm.Threaded
	if prm.PollPeriod > 0 {
		rt.PollPeriod = prm.PollPeriod
	}
	app.rt = rt
	if err := app.init(); err != nil {
		return nil, err
	}
	rt.Start()
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("solver: %w (done %d/%d nodes)", err, app.doneCount, len(m.Tree.Nodes))
	}
	if app.doneCount != len(m.Tree.Nodes) {
		return nil, fmt.Errorf("solver: deadlock, only %d/%d nodes completed", app.doneCount, len(m.Tree.Nodes))
	}
	// Conservation check: every allocation was released.
	for p, ps := range app.procs {
		if ps.activeMem > 1e-3 || ps.activeMem < -1e-3 {
			return nil, fmt.Errorf("solver: process %d ends with active memory %v (accounting bug)", p, ps.activeMem)
		}
	}
	return app.result(), nil
}

// defaultThreshold derives the broadcast threshold from the granularity
// of the tasks appearing in slave selections (§2.3): the mean Type 2
// slave share.
func defaultThreshold(m *mapping.Mapping) core.Load {
	t := m.Tree
	var flops, entries float64
	var cnt int
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Type != tree.Type2 {
			continue
		}
		rows := n.SchurSize()
		flops += tree.SlaveFlops(n.Nfront, n.Npiv, rows, t.Sym)
		entries += tree.SlaveBlockEntries(n.Nfront, n.Npiv, rows, t.Sym)
		cnt++
	}
	if cnt == 0 {
		return core.Load{core.Workload: 1e7, core.Memory: 1e4}
	}
	// Per-decision totals divided by a typical slave count, scaled down
	// so several updates flow per slave task (the paper's guidance is a
	// threshold "of the same order as the granularity of the tasks";
	// the /8 keeps the view fresh within a task, calibrated against the
	// paper's Table 6 increments volumes).
	k := float64(cnt) * 8
	return core.Load{
		core.Workload: flops / k / 8,
		core.Memory:   entries / k / 8,
	}
}
