// Package chaos is the fault-injection and run-validation subsystem.
//
// A Plan describes how a run's message delivery should degrade: extra
// per-message delay jitter, per-link reordering, probabilistic loss, a
// slow rank, a rank that crashes at a given time. The same Plan drives
// every runtime — the simulator applies it inside sim.Network.Send (in
// virtual time), the TCP runtime applies it through a fault writer
// wrapped around each peer connection (in wall time), and the live
// runtime applies it at the in-process delivery seam. Plans are
// selected by name from a small registry (`loadex run/cluster/
// experiment -chaos <name>`).
//
// The other half of the package is the offline validator: runs record
// per-rank JSONL trace files (Recorder, one Event per application-level
// send/receive/compute/decision), and Validate checks cross-rank
// invariants after the fact — every message received exactly as sent
// (no loss, no duplication, nothing in flight when termination was
// declared), every started compute completed, and every recorded
// decision's slave selection coherent with the least-loaded policy over
// the view it was taken on. `loadex validate -dir <trace>` replays the
// checks from the files alone, so a chaos run is a checked experiment
// rather than a smoke test.
//
// The package depends only on the standard library; every runtime and
// the command layer import it, never the other way around.
package chaos

import (
	"fmt"
	"sort"
	"strings"
)

// Class partitions traffic for fault purposes the way the runtimes
// partition channels: mechanism state, application data, control
// frames, and everything else (handshakes, quiescence bookkeeping).
// Loss only ever applies to state and (optionally) data traffic —
// dropping control or handshake frames would fault the harness, not the
// algorithms under test.
type Class uint8

// Traffic classes.
const (
	ClassState Class = iota
	ClassData
	ClassCtrl
	ClassOther
)

func (c Class) String() string {
	switch c {
	case ClassState:
		return "state"
	case ClassData:
		return "data"
	case ClassCtrl:
		return "ctrl"
	}
	return "other"
}

// Plan is one named fault-injection specification, interpreted by every
// runtime. The zero value injects nothing. Times are seconds — virtual
// seconds on the simulator, wall-clock seconds elsewhere.
type Plan struct {
	// Name is the registry name, Description the one-line catalogue
	// entry.
	Name        string
	Description string
	// Seed roots the plan's deterministic random streams (see RNGFor).
	Seed uint64
	// Delay adds a uniform random extra delay in [0, Delay) seconds to
	// every message/frame.
	Delay float64
	// Reorder permits per-link reordering: the simulator lifts the FIFO
	// clamp on jittered deliveries, the TCP fault writer swaps adjacent
	// frames within a write batch. Without it, Delay preserves FIFO.
	Reorder bool
	// Loss is the drop probability for state-class messages; LossData
	// extends it to data-class messages. Control and handshake traffic
	// is never dropped.
	Loss     float64
	LossData bool
	// SlowRank (when ≥ 0) degrades every link touching that rank:
	// the simulator multiplies latency and transfer time by SlowFactor,
	// the real runtimes stall each frame an extra SlowDelay seconds.
	SlowRank   int
	SlowFactor float64
	SlowDelay  float64
	// CrashRank (when ≥ 0 with CrashAfter > 0) fails that rank
	// CrashAfter seconds into the run: the simulator drops all its
	// traffic from then on, a forked `loadex node` process exits, the
	// TCP fault writer severs its connections, the live host stops
	// delivering to and from it.
	CrashRank  int
	CrashAfter float64
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Delay > 0 || p.Reorder || p.Loss > 0 || p.slows() || p.crashes()
}

func (p *Plan) slows() bool {
	return p != nil && p.SlowRank >= 0 && (p.SlowFactor > 1 || p.SlowDelay > 0)
}

func (p *Plan) crashes() bool {
	return p != nil && p.CrashRank >= 0 && p.CrashAfter > 0
}

// Crashes reports whether the plan crashes the given rank at all.
func (p *Plan) Crashes(rank int) bool {
	return p.crashes() && p.CrashRank == rank
}

// CrashedAt reports whether a link touching rank is dead at `elapsed`
// seconds into the run because one of its endpoints has crashed.
func (p *Plan) CrashedAt(elapsed float64, from, to int) bool {
	return p.crashes() && elapsed >= p.CrashAfter &&
		(from == p.CrashRank || to == p.CrashRank)
}

// SlowsLink reports whether a link touching rank SlowRank is degraded.
func (p *Plan) SlowsLink(from, to int) bool {
	return p.slows() && (from == p.SlowRank || to == p.SlowRank)
}

// Drops decides (by drawing from rng) whether one message of the given
// class is lost. Control and handshake traffic is exempt by
// construction.
func (p *Plan) Drops(c Class, rng *RNG) bool {
	if p == nil || p.Loss <= 0 {
		return false
	}
	if c != ClassState && !(c == ClassData && p.LossData) {
		return false
	}
	return rng.Float64() < p.Loss
}

// DelayFor draws one extra delivery delay in [0, Delay) seconds.
func (p *Plan) DelayFor(rng *RNG) float64 {
	if p == nil || p.Delay <= 0 {
		return 0
	}
	return rng.Float64() * p.Delay
}

// RNGFor derives the deterministic random stream for one fault site
// (e.g. one directed link) from the plan seed and the site coordinates.
// The same coordinates always yield the same stream, so simulator runs
// stay reproducible and forked processes need no shared state.
func (p *Plan) RNGFor(parts ...int) *RNG {
	seed := uint64(1)
	if p != nil {
		seed = p.Seed
	}
	r := NewRNG(seed)
	for _, part := range parts {
		r.state ^= uint64(int64(part)) * 0x9e3779b97f4a7c15
		r.Uint64()
	}
	return r
}

// noFaults returns a plan skeleton with the rank selectors disabled, so
// registry entries only name what they inject.
func noFaults(name, desc string) Plan {
	return Plan{Name: name, Description: desc, Seed: 1, SlowRank: -1, CrashRank: -1}
}

// plans builds the registry. Fresh copies per call: callers may adjust
// (e.g. re-seed) without aliasing.
func plans() []Plan {
	delay := noFaults("delay", "uniform 0–2 ms extra delivery delay on every message, FIFO preserved")
	delay.Delay = 0.002

	reorder := noFaults("reorder", "0–2 ms delay jitter with per-link reordering allowed (breaks the FIFO assumption)")
	reorder.Delay = 0.002
	reorder.Reorder = true

	loss := noFaults("loss", "drops 5% of state-channel messages (mechanism updates); data and control intact")
	loss.Loss = 0.05

	flaky := noFaults("flaky", "1 ms delay jitter plus 2% state-message loss — a congested, lossy network")
	flaky.Delay = 0.001
	flaky.Loss = 0.02

	slow := noFaults("slow", "rank 1 is slow: 8x link latency/transfer on sim, +1 ms per frame on real transports")
	slow.SlowRank = 1
	slow.SlowFactor = 8
	slow.SlowDelay = 0.001

	// 50 ms lands mid-run for the default workloads: long after the mesh
	// is up, well before quiescence. (A crash time past the run's end
	// simply never fires — the run quiesces first.)
	crash := noFaults("crash", "rank 1 crashes 50 ms into the run (process exit on forked runs, severed links otherwise)")
	crash.CrashRank = 1
	crash.CrashAfter = 0.05

	return []Plan{delay, reorder, loss, flaky, slow, crash}
}

// Names lists the registered plan names, registry order.
func Names() []string {
	var names []string
	for _, p := range plans() {
		names = append(names, p.Name)
	}
	return names
}

// Describe returns the one-line description of a registered plan, or ""
// for an unknown name.
func Describe(name string) string {
	for _, p := range plans() {
		if p.Name == name {
			return p.Description
		}
	}
	return ""
}

// Get resolves a plan name. "" and "none" resolve to nil (no faults);
// unknown names list the registry in the error.
func Get(name string) (*Plan, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	for _, p := range plans() {
		if p.Name == name {
			cp := p
			return &cp, nil
		}
	}
	return nil, fmt.Errorf("chaos: unknown plan %q (available: %s)",
		name, strings.Join(append([]string{"none"}, Names()...), ", "))
}

// LeastLoaded returns the k smallest-load ranks of view (excluding
// `exclude`), ties broken toward the lower rank — the selection policy
// core.PlanDecision applies (least-loaded by the workload metric). The
// validator recomputes selections with it from recorded views; a test
// cross-checks it against core.PlanDecision so the two cannot drift.
func LeastLoaded(view []float64, exclude, k int) []int {
	type cand struct {
		rank int
		load float64
	}
	var cands []cand
	for r, l := range view {
		if r != exclude {
			cands = append(cands, cand{r, l})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].rank < cands[j].rank
	})
	if k > len(cands) {
		k = len(cands)
	}
	if k < 0 {
		k = 0
	}
	sel := make([]int, 0, k)
	for _, c := range cands[:k] {
		sel = append(sel, c.rank)
	}
	sort.Ints(sel)
	return sel
}
