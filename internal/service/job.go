package service

// Synthetic jobs: the paper's master/slave load program, re-expressed
// against a shared mesh. Decisions are taken on the mesh's resident
// exchanger (Acquire → PlanDecision → Commit on the node goroutine, so
// concurrent jobs contend for the same view — the measurement this
// service exists for), while the work itself ships as job-tagged data
// frames executed by per-job rank drivers, with one termdet.Protocol
// instance per (job, rank) deciding the job's own quiescence.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	xnet "repro/internal/net"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// jobKindWork tags a synthetic job's work-share data message.
const jobKindWork = 1

// jobDetCtx is a (job, rank) detector's termdet.Context: control frames
// travel as job-tagged ctrl frames through the rank's port.
type jobDetCtx struct{ jp *xnet.JobPort }

func (c jobDetCtx) Rank() int { return c.jp.Rank() }
func (c jobDetCtx) N() int    { return c.jp.N() }

func (c jobDetCtx) SendCtrl(to int, ct termdet.Ctrl) {
	c.jp.SendCtrl(to, ct)
}

// registerPorts creates the job's port on every rank. buf sizes the
// inbound channels from the job's worst-case burst.
func (s *Server) registerPorts(id int32, buf int) ([]*xnet.JobPort, error) {
	ports := make([]*xnet.JobPort, len(s.nodes))
	for r, nd := range s.nodes {
		jp, err := nd.RegisterJob(id, buf)
		if err != nil {
			for i := 0; i < r; i++ {
				s.nodes[i].UnregisterJob(id)
			}
			return nil, err
		}
		ports[r] = jp
	}
	return ports, nil
}

func (s *Server) unregisterPorts(id int32) {
	for _, nd := range s.nodes {
		nd.UnregisterJob(id)
	}
}

// runSynthetic executes one synthetic job to quiescence on the resident
// mesh.
func (s *Server) runSynthetic(j *job) error {
	n := s.cfg.Procs
	sp := j.spec
	// Worst-case burst per rank: every decision's shares could target
	// the same rank, plus one ack per sent message and the termination
	// announcement.
	buf := sp.Decisions*sp.Slaves + n + 4
	ports, err := s.registerPorts(j.id, buf)
	if err != nil {
		return err
	}
	defer s.unregisterPorts(j.id)

	// Round-robin the decisions over the master ranks.
	quota := make([]int, n)
	for d := 0; d < sp.Decisions; d++ {
		quota[d%sp.Masters]++
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	execCount := make([]int64, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			execCount[r], errs[r] = s.syntheticRank(j, r, ports[r], quota[r])
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	for r := 0; r < n; r++ {
		j.executed += execCount[r]
		j.counters.Merge(ports[r].Counters())
	}
	return nil
}

// syntheticRank is one rank's driver loop for one synthetic job:
// Algorithm 1 with the decisions as the local task source and the
// job's detector deciding quiescence. All detector calls happen on
// this goroutine (the protocol's single-owner contract).
func (s *Server) syntheticRank(j *job, rank int, jp *xnet.JobPort, quota int) (int64, error) {
	det, err := termdet.New(s.cfg.Term, s.cfg.Procs, rank)
	if err != nil {
		return 0, err
	}
	ctx := jobDetCtx{jp}
	nd := s.nodes[rank]
	var executed int64
	deadline := time.NewTimer(2 * time.Minute)
	defer deadline.Stop()
	for {
		// Priority 0: the job's detector control frames.
		select {
		case c := <-jp.CtrlCh:
			det.OnCtrl(ctx, c.From, c.Ctrl)
			if det.Terminated() {
				return executed, nil
			}
			continue
		default:
		}
		// Priority 1: local task source — one dynamic decision against
		// the mesh's shared view. OnSend precedes SendData so no ack can
		// outrun its engagement.
		if quota > 0 {
			select {
			case <-j.cancel:
				quota = 0 // stop deciding; drain what is in flight
				continue
			default:
			}
			dec, err := s.decide(j, rank, jp)
			if err != nil {
				return executed, err
			}
			quota--
			for _, a := range dec.Assignments {
				det.OnSend(ctx, int(a.Proc))
				jp.SendData(int(a.Proc), workload.DataMsg{
					Kind: jobKindWork,
					Work: a.Delta[core.Workload],
					Size: sSpin(j.spec.Spin),
				})
			}
			continue
		}
		// Priority 2: execute one received work share.
		select {
		case d := <-jp.DataCh:
			det.OnReceive(ctx, d.From)
			s.executeShare(nd, d.Msg)
			executed++
			continue
		default:
		}
		// Idle: declare passivity; detection (rank 0) or the CtrlTerm
		// announcement ends the loop.
		det.Passive(ctx)
		if det.Terminated() {
			return executed, nil
		}
		select {
		case c := <-jp.CtrlCh:
			det.OnCtrl(ctx, c.From, c.Ctrl)
			if det.Terminated() {
				return executed, nil
			}
		case d := <-jp.DataCh:
			det.OnReceive(ctx, d.From)
			s.executeShare(nd, d.Msg)
			executed++
		case <-jp.Quit():
			return executed, fmt.Errorf("service: mesh closed during job %d", j.id)
		case <-deadline.C:
			return executed, fmt.Errorf("service: job %d rank %d: no termination after 2m (%s)", j.id, rank, det.Name())
		}
	}
}

// sSpin round-trips the spin seconds through the DataMsg Size field.
func sSpin(sec float64) float64 { return sec }

// decide takes one dynamic decision for the job on rank's node: acquire
// a coherent view of the SHARED mesh exchanger, plan, commit. The
// decision latency and count are charged to the job's counters, not the
// mesh's (the mesh only sees the state traffic the acquisition cost).
// Decisions on one node must not overlap (a mechanism contract), so
// concurrent jobs with masters on the same rank serialize here — that
// queueing delay is part of the sharing cost the latency metric
// measures.
func (s *Server) decide(j *job, rank int, jp *xnet.JobPort) (core.Decision, error) {
	s.decMu[rank].Lock()
	defer s.decMu[rank].Unlock()
	nd := s.nodes[rank]
	sp := j.spec
	var dec core.Decision
	done := make(chan struct{})
	nd.Invoke(func(ctx core.Context, exch core.Exchanger) {
		acquireAt := time.Now()
		exch.Acquire(ctx, func() {
			jp.AddDecision(time.Since(acquireAt).Seconds())
			dec = core.PlanDecision(exch.View(), rank, sp.Slaves, sp.Work)
			exch.Commit(ctx, dec.Assignments)
			close(done)
		})
	})
	select {
	case <-done:
	case <-jp.Quit():
		return dec, fmt.Errorf("service: mesh closed during job %d decision", j.id)
	}
	return dec, nil
}

// executeShare runs one received work share: the load lands on the
// SHARED view (asSlave — concurrent jobs observe it), the spin burns
// wall clock off the node goroutine, then the load is removed.
func (s *Server) executeShare(nd *xnet.Node, m workload.DataMsg) {
	var delta core.Load
	delta[core.Workload] = m.Work
	nd.Invoke(func(ctx core.Context, exch core.Exchanger) {
		exch.LocalChange(ctx, delta, true)
	})
	if spin := time.Duration(m.Size * float64(time.Second)); spin > 0 {
		time.Sleep(spin)
	}
	for i := range delta {
		delta[i] = -delta[i]
	}
	nd.Invoke(func(ctx core.Context, exch core.Exchanger) {
		exch.LocalChange(ctx, delta, true)
	})
}
