package obs

import (
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// histStripes spreads concurrent Observe calls over independent
// sub-histograms so the hot path never contends on one lock. Snapshot
// merges the stripes (exact: StreamHist merge adds bucket counts).
const histStripes = 8

// Histogram is the registry's concurrent streaming histogram: striped
// stats.StreamHist shards, each behind its own mutex with a
// nanoseconds-long critical section. Writers round-robin across
// stripes; on collision they trylock-cascade to the next free one.
type Histogram struct {
	next    atomic.Uint64
	stripes [histStripes]histStripe
}

type histStripe struct {
	mu sync.Mutex
	h  stats.StreamHist
	// Pad stripes apart so the mutexes don't share a cache line.
	_ [64]byte
}

// NewHistogram returns an empty concurrent histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	start := h.next.Add(1)
	for i := uint64(0); i < histStripes; i++ {
		s := &h.stripes[(start+i)%histStripes]
		if s.mu.TryLock() {
			s.h.Add(v)
			s.mu.Unlock()
			return
		}
	}
	// Every stripe busy: wait on the home stripe.
	s := &h.stripes[start%histStripes]
	s.mu.Lock()
	s.h.Add(v)
	s.mu.Unlock()
}

// Snapshot merges the stripes into one point-in-time StreamHist.
func (h *Histogram) Snapshot() *stats.StreamHist {
	out := &stats.StreamHist{}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		shard := s.h // copy under the lock, merge outside
		s.mu.Unlock()
		out.Merge(&shard)
	}
	return out
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		n += s.h.Count()
		s.mu.Unlock()
	}
	return n
}
