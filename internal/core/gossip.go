package core

// Gossip is an epidemic load-dissemination mechanism, the first
// topology-native tenant of the neighbor-graph seam. Instead of
// broadcasting to all peers (naive) it originates a *rumor* — the
// origin's absolute load, versioned by a per-origin sequence number —
// and forwards it to a small fanout of neighbors; receivers apply the
// rumor if it is fresh and re-forward it until its TTL expires. On the
// complete graph this degenerates to a probabilistic subset of the
// naive broadcast; on sparse graphs it is the classic rumor-mongering
// scheme (cf. the VAA rumor exercise in the related repos) whose cost
// scales with fanout × TTL instead of n.
//
// Like the naive mechanism it has no reservation step: rumors carry
// absolute loads, so duplicates and reordering are idempotent per
// sequence number, and decisions rely on possibly-stale views.
type Gossip struct {
	n, rank  int
	cfg      Config
	my       Load
	lastSent Load
	view     *View
	nbrs     []int
	fanout   int
	ttl      int32
	seq      int32   // my own rumor sequence, monotone
	seen     []int32 // highest sequence applied, per origin
	rng      splitmix64
	stats    Stats
}

// Gossip knob defaults: forward each rumor to 2 neighbors for
// ⌈log2 n⌉+2 hops — the standard epidemic budget that reaches every
// rank of a connected graph with high probability.
const defaultGossipFanout = 2

func defaultGossipTTL(n int) int32 {
	ttl := int32(2)
	for v := 1; v < n; v <<= 1 {
		ttl++
	}
	return ttl
}

// NewGossip constructs the gossip mechanism.
func NewGossip(n, rank int, cfg Config) *Gossip {
	fanout := cfg.GossipFanout
	if fanout <= 0 {
		fanout = defaultGossipFanout
	}
	ttl := int32(cfg.GossipTTL)
	if ttl <= 0 {
		ttl = defaultGossipTTL(n)
	}
	return &Gossip{
		n: n, rank: rank, cfg: cfg,
		view:   NewView(n),
		nbrs:   neighborRanks(cfg.Topo, n, rank),
		fanout: fanout,
		ttl:    ttl,
		seen:   make([]int32, n),
		// The stream is a pure function of (rank, n): forwarding picks
		// the same neighbors in every runtime and every forked process.
		rng: splitmix64(uint64(rank)*0x9e3779b9 + uint64(n)),
	}
}

// Name implements Exchanger.
func (x *Gossip) Name() string { return string(MechGossip) }

// Init implements Exchanger.
func (x *Gossip) Init(ctx Context, initial Load) {
	x.my = initial
	x.lastSent = initial
	x.view.Set(x.rank, initial)
}

// LocalChange implements Exchanger: like the naive scheme every
// variation counts (no reservations to anticipate it), and a drift
// past the threshold originates a fresh rumor instead of a broadcast.
func (x *Gossip) LocalChange(ctx Context, delta Load, asSlave bool) {
	x.my = x.my.Add(delta)
	x.view.Set(x.rank, x.my)
	if !x.my.Sub(x.lastSent).ExceedsAny(x.cfg.Threshold) {
		return
	}
	x.seq++
	x.seen[x.rank] = x.seq
	x.lastSent = x.my
	x.forward(ctx, GossipPayload{Origin: int32(x.rank), Seq: x.seq, TTL: x.ttl, Load: x.my}, -1)
}

// forward sends the rumor to up to fanout neighbors, skipping the rank
// it arrived from. Neighbor choice is pseudo-random but deterministic
// (per-rank splitmix stream), so sim runs reproduce exactly.
func (x *Gossip) forward(ctx Context, p GossipPayload, from int) {
	cands := make([]int, 0, len(x.nbrs))
	for _, to := range x.nbrs {
		if to != from && to != int(p.Origin) {
			cands = append(cands, to)
		}
	}
	k := x.fanout
	if k > len(cands) {
		k = len(cands)
	}
	// Partial Fisher-Yates over the candidate list: the first k slots
	// are a uniform sample without replacement.
	for i := 0; i < k; i++ {
		j := i + int(x.rng.next()%uint64(len(cands)-i))
		cands[i], cands[j] = cands[j], cands[i]
		ctx.Send(cands[i], KindGossip, p, BytesGossip)
		x.stats.UpdatesSent++
	}
}

// Local implements Exchanger.
func (x *Gossip) Local() Load { return x.my }

// View implements Exchanger.
func (x *Gossip) View() *View { return x.view }

// Acquire implements Exchanger: gossip maintains its (epidemic,
// eventually-consistent) view, so it is always ready.
func (x *Gossip) Acquire(ctx Context, ready func()) { ready() }

// Commit implements Exchanger: like the naive scheme, nothing is
// published at decision time; only the master's own estimates move.
func (x *Gossip) Commit(ctx Context, assignments []Assignment) {
	for _, a := range assignments {
		if int(a.Proc) == x.rank {
			x.my = x.my.Add(a.Delta)
			x.view.Set(x.rank, x.my)
			continue
		}
		x.view.AddTo(int(a.Proc), a.Delta)
	}
}

// NoMoreMaster implements Exchanger: a no-op. Epidemic dissemination
// needs every rank as a relay, so a rank that will never decide again
// still forwards rumors — pruning it would partition the rumor flow.
func (x *Gossip) NoMoreMaster(ctx Context) {}

// HandleMessage implements Exchanger.
func (x *Gossip) HandleMessage(ctx Context, from int, kind int, payload any) {
	if kind != KindGossip {
		return
	}
	p := payload.(GossipPayload)
	o := int(p.Origin)
	if o < 0 || o >= x.n || o == x.rank {
		return
	}
	if p.Seq <= x.seen[o] {
		return // stale or duplicate rumor: already applied
	}
	x.seen[o] = p.Seq
	x.view.Set(o, p.Load)
	if p.TTL > 1 {
		p.TTL--
		x.forward(ctx, p, from)
	}
}

// Busy implements Exchanger: never blocks the application.
func (x *Gossip) Busy() bool { return false }

// Stats implements Exchanger.
func (x *Gossip) Stats() Stats { return x.stats }
