// Package tree models the multifrontal assembly tree of MUMPS (paper
// §4.1): a task-dependency tree processed from the leaves to the root,
// where each node is the partial factorization of a dense frontal matrix.
// It carries the cost model (flops, memory) used by both the static
// mapping and the dynamic schedulers.
package tree

import (
	"fmt"

	"repro/internal/symbolic"
)

// NodeType is the parallelism type of an assembly-tree node (Figure 2).
type NodeType uint8

const (
	// Type1 is a sequential task on one processor, activated when all
	// children have delivered their contribution blocks.
	Type1 NodeType = iota
	// Type2 is a 1D-parallel task: a statically mapped master eliminates
	// the pivot rows and dynamically selects slaves that update the Schur
	// complement (the dynamic decision this paper studies).
	Type2
	// Type3 is the 2D-parallel root (ScaLAPACK in MUMPS), with a static
	// block-cyclic distribution and no dynamic decision.
	Type3
)

func (t NodeType) String() string {
	switch t {
	case Type1:
		return "T1"
	case Type2:
		return "T2"
	case Type3:
		return "T3"
	}
	return "?"
}

// Node is one assembly-tree task.
type Node struct {
	ID       int32
	Parent   int32 // -1 for roots
	Children []int32
	Npiv     int32
	Nfront   int32
	Type     NodeType
	// Subtree is the sequential leaf-subtree id this node belongs to, or
	// -1 for nodes above the Geist-Ng layer.
	Subtree int32
	// Cost is the total flop count of the node's partial factorization.
	Cost float64
	// SubtreeCost is Cost summed over the whole subtree rooted here.
	SubtreeCost float64
}

// SchurSize is the order of the contribution block (Nfront - Npiv).
func (n *Node) SchurSize() int32 { return n.Nfront - n.Npiv }

// Tree is an assembly tree in topological order (children before parents).
type Tree struct {
	Nodes     []Node
	Roots     []int32
	Sym       bool
	TotalCost float64
	N         int // matrix order
}

// Build constructs the assembly tree from a symbolic analysis, computing
// all costs.
func Build(a *symbolic.Analysis) *Tree {
	t := &Tree{Sym: a.Sym, N: a.N}
	t.Nodes = make([]Node, len(a.Nodes))
	for i := range a.Nodes {
		s := &a.Nodes[i]
		n := &t.Nodes[i]
		n.ID = s.ID
		n.Parent = s.Parent
		n.Children = append([]int32(nil), s.Children...)
		n.Npiv = s.Npiv
		n.Nfront = s.Nfront
		n.Subtree = -1
		n.Cost = FrontFlops(s.Nfront, s.Npiv, a.Sym)
		t.TotalCost += n.Cost
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		n.SubtreeCost += n.Cost
		if n.Parent >= 0 {
			t.Nodes[n.Parent].SubtreeCost += n.SubtreeCost
		} else {
			t.Roots = append(t.Roots, n.ID)
		}
	}
	return t
}

// Validate checks tree invariants.
func (t *Tree) Validate() error {
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Parent >= 0 && n.Parent <= n.ID {
			return fmt.Errorf("tree: node %d not topological", n.ID)
		}
		for _, c := range n.Children {
			if t.Nodes[c].Parent != n.ID {
				return fmt.Errorf("tree: broken child link at %d", n.ID)
			}
		}
		if n.Nfront < n.Npiv || n.Npiv <= 0 {
			return fmt.Errorf("tree: bad sizes at node %d", n.ID)
		}
	}
	return nil
}

// Leaves returns the IDs of all leaf nodes.
func (t *Tree) Leaves() []int32 {
	var out []int32
	for i := range t.Nodes {
		if len(t.Nodes[i].Children) == 0 {
			out = append(out, t.Nodes[i].ID)
		}
	}
	return out
}
