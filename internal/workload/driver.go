package workload

import (
	"math"
	"sync"
	"time"

	"repro/internal/core"
)

// Driver runs any workload on one runtime with one mechanism. Each
// runtime package (internal/sim, internal/live, internal/net)
// implements it once; `loadex run` and the scenario-matrix equivalence
// suite then cover every scenario × mechanism × runtime cell through
// this single seam.
type Driver interface {
	// Runtime names the runtime ("sim", "live", "net").
	Runtime() string
	// Run executes w under mech and returns the observed report.
	Run(w Workload, mech core.Mech, cfg core.Config, p Params) (*Report, error)
}

// DecisionRecord is one observed dynamic decision plus the conservation
// window samples: the cluster-wide (assigned, executed) work-item
// counts at acquire time and at view-ready time. Assigned counters lead
// the mechanism's Commit and executed counters trail the load
// decrement, so for a constant per-item share the load total a snapshot
// cut reports is bounded by
//
//	TotalInitial + (AssignedAtAcquire-ExecutedAtReady)·share
//	  ≤ Σ view ≤
//	TotalInitial + (AssignedAtReady-ExecutedAtAcquire)·share
type DecisionRecord struct {
	core.Decision
	AssignedAtAcquire, ExecutedAtAcquire int64
	AssignedAtReady, ExecutedAtReady     int64
}

// Report is everything one runtime observed while executing a workload.
type Report struct {
	Scenario string
	Runtime  string
	Mech     core.Mech
	Procs    int
	// DecisionsTaken counts committed decisions. It equals len(Records)
	// except for multi-process deployments, which count without
	// recording views.
	DecisionsTaken int
	// Records holds one entry per decision, in completion order.
	Records []DecisionRecord
	// Executed is the per-rank count of completed work items.
	Executed []int64
	// Stats is the per-rank mechanism counters, sampled after drain and
	// before the final view acquisitions.
	Stats []core.Stats
	// Counters is the cluster-wide measurement accumulator (messages,
	// bytes per kind, decision latency, busy time, snapshot rounds),
	// sampled at the same point as Stats so the final view acquisitions
	// do not pollute the workload's numbers. The sim and live runtimes
	// charge the core.Bytes* constants; the net runtime counts real
	// encoded frame sizes.
	Counters core.Counters
	// FinalViews is one coherent post-quiescence view per rank.
	FinalViews [][]core.Load
	// AppResult is the application-specific result of an application
	// scenario (e.g. *solver.Result); nil for program scenarios.
	AppResult any `json:"-"`
	// WireMsgs/WireBytes are inbound transport totals (net runtime only).
	WireMsgs, WireBytes int64
	// SimEvents is the engine's fired-event count (sim runtime only):
	// with Elapsed it yields the simulator's events/second throughput.
	SimEvents uint64
	// DetectLatency is the gap between the last work completion and the
	// termination detector's broadcast, in application seconds (virtual
	// on sim, wall clock on live/net); zero when unobserved.
	DetectLatency float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// TotalExecuted sums the per-rank executed counts.
func (r *Report) TotalExecuted() int64 {
	var total int64
	for _, v := range r.Executed {
		total += v
	}
	return total
}

// TotalStats sums the per-rank mechanism counters.
func (r *Report) TotalStats() core.Stats {
	var total core.Stats
	for _, st := range r.Stats {
		total.UpdatesSent += st.UpdatesSent
		total.ReservationsSent += st.ReservationsSent
		total.SnapshotsInitiated += st.SnapshotsInitiated
		total.SnapshotRestarts += st.SnapshotRestarts
		total.SnapshotTime += st.SnapshotTime
		if st.MaxConcurrentSnapshots > total.MaxConcurrentSnapshots {
			total.MaxConcurrentSnapshots = st.MaxConcurrentSnapshots
		}
	}
	return total
}

// Cluster is the runtime surface DriveCluster needs. live.Cluster and
// net.Cluster both satisfy it; per-rank operations run on the rank's
// own goroutine and return once applied.
type Cluster interface {
	DecideObserved(master int, totalWork float64, slaves int, spin time.Duration) (core.Decision, error)
	LocalChange(r int, delta core.Load)
	NoMoreMaster(r int)
	AssignedItems() int64
	ExecutedItems() int64
	Executed(r int) int64
	View(r int) []core.Load
	AcquireView(r int) ([]core.Load, error)
	Stats(r int) core.Stats
	Counters(r int) core.Counters
	Drain(timeout time.Duration) error
}

// DriveOptions tunes DriveCluster.
type DriveOptions struct {
	// Spin is the nominal per-item execution time (the cluster scales it
	// by the executing rank's speed factor).
	Spin time.Duration
	// DrainTimeout bounds the post-program quiescence wait (default 60s).
	DrainTimeout time.Duration
	// Settle bounds how long the maintained mechanisms may take to
	// converge their views onto the expected finals before the report is
	// read; the poll exits early on convergence. Zero means the 2s
	// default; negative skips the wait entirely.
	Settle time.Duration
}

// DriveCluster executes a compiled program set on a concurrent cluster
// runtime: one walker goroutine per non-empty rank program, decisions
// recorded with their conservation window samples, then drain, stats
// collection and one final coherent view per rank (an acquired snapshot
// for the snapshot mechanism; the settled maintained view otherwise).
func DriveCluster(cl Cluster, mech core.Mech, progs []Program, opts DriveOptions) (*Report, error) {
	n := len(progs)
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 60 * time.Second
	}
	if opts.Settle == 0 {
		opts.Settle = 2 * time.Second
	}
	rep := &Report{Mech: mech, Procs: n}
	start := time.Now()

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	errs := make([]error, n)
	for r := range progs {
		if len(progs[r].Steps) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int, steps []Step) {
			defer wg.Done()
			for _, st := range steps {
				switch st.Op {
				case OpDecide:
					rec := DecisionRecord{
						AssignedAtAcquire: cl.AssignedItems(),
						ExecutedAtAcquire: cl.ExecutedItems(),
					}
					dec, err := cl.DecideObserved(r, st.Work, st.Slaves, opts.Spin)
					if err != nil {
						errs[r] = err
						return
					}
					rec.Decision = dec
					rec.AssignedAtReady = cl.AssignedItems()
					rec.ExecutedAtReady = cl.ExecutedItems()
					mu.Lock()
					rep.Records = append(rep.Records, rec)
					mu.Unlock()
				case OpLocalChange:
					cl.LocalChange(r, st.Delta)
				case OpNoMoreMaster:
					cl.NoMoreMaster(r)
				}
			}
		}(r, progs[r].Steps)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := cl.Drain(opts.DrainTimeout); err != nil {
		return nil, err
	}
	rep.DecisionsTaken = len(rep.Records)
	for r := 0; r < n; r++ {
		rep.Executed = append(rep.Executed, cl.Executed(r))
		rep.Stats = append(rep.Stats, cl.Stats(r))
		rep.Counters.Merge(cl.Counters(r))
	}
	if mech == core.MechSnapshot {
		// Snapshot views are only refreshed inside a snapshot: acquire
		// one per rank.
		for r := 0; r < n; r++ {
			view, err := cl.AcquireView(r)
			if err != nil {
				return nil, err
			}
			rep.FinalViews = append(rep.FinalViews, view)
		}
	} else {
		// Maintained views converge once the trailing updates land; poll
		// toward the expected finals, then read whatever settled.
		want := ExpectedFinals(progs)
		deadline := time.Now().Add(opts.Settle)
		for !viewsSettled(cl, want) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		for r := 0; r < n; r++ {
			rep.FinalViews = append(rep.FinalViews, cl.View(r))
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// viewsSettled reports whether every rank's view matches the expected
// final loads.
func viewsSettled(cl Cluster, want []core.Load) bool {
	const eps = 1e-9
	for r := range want {
		view := cl.View(r)
		for p, l := range view {
			for m := range l {
				if math.Abs(l[m]-want[p][m]) > eps {
					return false
				}
			}
		}
	}
	return true
}

// NodeRunner is one rank of a multi-process deployment: the subset of a
// node's operations a rank program needs. net.Node implements it.
type NodeRunner interface {
	Decide(totalWork float64, slaves int, spin time.Duration) (core.Decision, error)
	LocalChange(delta core.Load)
	NoMoreMaster()
}

// RunRank walks one rank's program on a multi-process node and returns
// the number of decisions taken. Quiescence (drain, Done announcements)
// stays with the caller — it is a deployment concern, not a workload
// one.
func RunRank(nr NodeRunner, prog Program, spin time.Duration) (int, error) {
	decisions := 0
	for _, st := range prog.Steps {
		switch st.Op {
		case OpDecide:
			if _, err := nr.Decide(st.Work, st.Slaves, spin); err != nil {
				return decisions, err
			}
			decisions++
		case OpLocalChange:
			nr.LocalChange(st.Delta)
		case OpNoMoreMaster:
			nr.NoMoreMaster()
		}
	}
	return decisions, nil
}
