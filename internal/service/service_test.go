package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	_ "repro/internal/solver" // register solver-* scenarios
)

func newTestServer(t *testing.T, mech core.Mech, procs int) *Server {
	t.Helper()
	s, err := New(Config{Procs: procs, Mech: mech, MaxConcurrent: 4})
	if err != nil {
		t.Fatalf("New(%s): %v", mech, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSustainedStream is the acceptance criterion: a resident mesh
// serves >= 20 concurrent/back-to-back jobs per mechanism without a
// restart, each job's quiescence decided by its own detector.
func TestSustainedStream(t *testing.T) {
	const jobs = 20
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		t.Run(string(mech), func(t *testing.T) {
			s := newTestServer(t, mech, 4)
			ids := make([]int32, 0, jobs)
			for i := 0; i < jobs; i++ {
				id, err := s.Submit(JobSpec{Decisions: 3, Work: 60, Slaves: 2, Masters: 2})
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				ids = append(ids, id)
			}
			for _, id := range ids {
				st, err := s.Result(id, time.Minute)
				if err != nil {
					t.Fatalf("result %d: %v", id, err)
				}
				if st.State != StateDone {
					t.Fatalf("job %d state %s (err %q), want done", id, st.State, st.Err)
				}
				// 3 decisions x 2 slaves: every share executed somewhere.
				if st.Executed != 6 {
					t.Errorf("job %d executed %d shares, want 6", id, st.Executed)
				}
				if st.Counters.DataMsgs != 6 {
					t.Errorf("job %d data messages %d, want 6", id, st.Counters.DataMsgs)
				}
				if st.Makespan <= 0 {
					t.Errorf("job %d makespan %v, want > 0", id, st.Makespan)
				}
			}
			m := s.Metrics()
			if m.Completed != jobs || m.Failed != 0 {
				t.Fatalf("metrics: completed %d failed %d, want %d/0", m.Completed, m.Failed, jobs)
			}
			if m.JobsPerSec <= 0 || m.MakespanP99 <= 0 || m.MakespanP99 < m.MakespanP50 {
				t.Errorf("metrics percentiles inconsistent: jobs/s %v p50 %v p99 %v",
					m.JobsPerSec, m.MakespanP50, m.MakespanP99)
			}
			if m.Mesh.StateMsgs == 0 {
				t.Errorf("mesh exchanged no state messages under %s", mech)
			}
		})
	}
}

// TestAppJob hosts the real solver as a service job: its state, data
// and control traffic all travel job-tagged over the resident mesh.
func TestAppJob(t *testing.T) {
	s := newTestServer(t, core.MechIncrements, 4)
	id, err := s.Submit(JobSpec{Kind: "app", Scenario: "solver-wl"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := s.Result(id, time.Minute)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Err)
	}
	if st.Executed == 0 {
		t.Errorf("solver job executed 0 tasks")
	}
	if st.Counters.StateMsgs == 0 {
		t.Errorf("solver job exchanged no job-scoped state messages")
	}
	if st.Counters.DataMsgs == 0 {
		t.Errorf("solver job sent no data messages")
	}
}

// TestMixedConcurrent runs synthetic and solver jobs simultaneously on
// one mesh.
func TestMixedConcurrent(t *testing.T) {
	s := newTestServer(t, core.MechNaive, 4)
	specs := []JobSpec{
		{Decisions: 4, Work: 80, Slaves: 3},
		{Kind: "app", Scenario: "solver-wl"},
		{Decisions: 2, Work: 40, Slaves: 2},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp JobSpec) {
			defer wg.Done()
			id, err := s.Submit(sp)
			if err != nil {
				errs[i] = err
				return
			}
			st, err := s.Result(id, time.Minute)
			if err != nil {
				errs[i] = err
				return
			}
			if st.State != StateDone {
				errs[i] = fmt.Errorf("job %d state %s: %s", id, st.State, st.Err)
			}
		}(i, sp)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

// TestCancel cancels a long job mid-flight: it stops issuing decisions
// and goes terminal as canceled, with in-flight work drained (the
// shared view stays conserved for later jobs).
func TestCancel(t *testing.T) {
	s := newTestServer(t, core.MechNaive, 4)
	id, err := s.Submit(JobSpec{Decisions: 200, Work: 50, Slaves: 2, Spin: 0.02})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := s.Cancel(id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st, err := s.Result(id, time.Minute)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	// The mesh still serves jobs after the cancellation.
	id2, err := s.Submit(JobSpec{Decisions: 2, Work: 30, Slaves: 2})
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	if st, err = s.Result(id2, time.Minute); err != nil || st.State != StateDone {
		t.Fatalf("job after cancel: %v (state %s)", err, st.State)
	}
}

// TestDrain verifies the SIGTERM path: admission stops, queued and
// running jobs finish, the mesh tears down.
func TestDrain(t *testing.T) {
	s := newTestServer(t, core.MechIncrements, 4)
	ids := make([]int32, 0, 6)
	for i := 0; i < 6; i++ {
		id, err := s.Submit(JobSpec{Decisions: 2, Work: 40, Slaves: 2, Spin: 0.005})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	done := make(chan error, 1)
	go func() { done <- s.Drain(time.Minute) }()
	// Admission must fail while draining or after close.
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Submit(JobSpec{}); err == nil {
		t.Errorf("submit during drain succeeded, want refusal")
	}
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("status %d: %v", id, err)
		}
		if st.State != StateDone {
			t.Errorf("job %d state %s after drain, want done", id, st.State)
		}
	}
}

// TestQueueBackpressure fills the admission queue past its cap.
func TestQueueBackpressure(t *testing.T) {
	s, err := New(Config{Procs: 2, Mech: core.MechNaive, MaxConcurrent: 1, QueueCap: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	// With one slow job runnable at a time and a queue cap of 2, a
	// burst of 8 submissions cannot all be admitted — where exactly the
	// cap bites depends on scheduler timing, but bite it must.
	admitted, refused := 0, 0
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(JobSpec{Decisions: 4, Work: 40, Slaves: 1, Spin: 0.05}); err != nil {
			refused++
		} else {
			admitted++
		}
	}
	if refused == 0 {
		t.Errorf("queue cap 2 never refused admission across 8 burst submissions")
	}
	if admitted < 2 {
		t.Errorf("only %d of 8 submissions admitted, want at least the queue capacity", admitted)
	}
}
