// Package core implements the paper's contribution: mechanisms giving
// every process of a distributed asynchronous message-passing application
// a coherent view of the load (workload, memory) of all other processes,
// so that dynamic scheduling decisions ("slave selections") can be taken.
//
// Three mechanisms are provided:
//
//   - Naive (§2.1, Algorithm 2): broadcast the absolute load whenever it
//     drifted by more than a threshold since the last broadcast.
//   - Increments (§2.2-2.3, Algorithm 3): broadcast accumulated load
//     deltas above a threshold, announce every slave selection to all
//     processes in a Master_To_All reservation message, and optionally
//     stop informing processes that declared No_more_master.
//   - Snapshot (§3): demand-driven Chandy-Lamport-style snapshot with a
//     distributed leader election that sequentializes concurrent
//     snapshots.
//
// Mechanisms are transport-agnostic state machines: they interact with
// the world only through the Context interface and never block, so the
// same code runs under the deterministic simulator (internal/sim) and the
// live goroutine runtime (internal/live).
package core

import "fmt"

// Metric indexes the load quantities a view tracks. The paper's
// application exchanges both the remaining floating-point work and the
// active memory (§4).
type Metric int

// The tracked metrics.
const (
	Workload Metric = iota
	Memory
	NumMetrics
)

func (m Metric) String() string {
	switch m {
	case Workload:
		return "workload"
	case Memory:
		return "memory"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// Load is a vector of load values, one per metric.
type Load [NumMetrics]float64

// Add returns l + d.
func (l Load) Add(d Load) Load {
	for i := range l {
		l[i] += d[i]
	}
	return l
}

// Sub returns l - d.
func (l Load) Sub(d Load) Load {
	for i := range l {
		l[i] -= d[i]
	}
	return l
}

// ExceedsAny reports whether |l[m]| > thr[m] for any metric m with a
// positive threshold, or — when all thresholds are zero — whether any
// component is nonzero.
func (l Load) ExceedsAny(thr Load) bool {
	for i := range l {
		v := l[i]
		if v < 0 {
			v = -v
		}
		if v > thr[i] {
			return true
		}
	}
	return false
}

// Message kinds on the state-information channel. They live in core (not
// the transport) because they are protocol constants shared by all
// mechanisms and counted by the experiments.
const (
	// KindUpdate carries an absolute load (naive) or a load delta
	// (increments).
	KindUpdate = 1 + iota
	// KindMasterToAll is the increments reservation broadcast announcing
	// a slave selection (Algorithm 3).
	KindMasterToAll
	// KindNoMoreMaster announces the sender will never select slaves
	// again (§2.3).
	KindNoMoreMaster
	// KindStartSnp / KindSnp / KindEndSnp are the snapshot protocol (§3).
	KindStartSnp
	KindSnp
	KindEndSnp
	// KindMasterToSlave is the snapshot scheme's state update sent to
	// each selected slave before the snapshot is finalized (Algorithm 4),
	// so the next snapshot observes the decision.
	KindMasterToSlave
	// KindGossip is an epidemic rumor: an origin's absolute load with a
	// sequence number and a remaining hop budget, re-forwarded to a
	// fanout of neighbors until the TTL expires.
	KindGossip
	// KindDiffuse is one diffusion exchange: the sender's full view
	// vector, averaged entry-wise into the receiver's view (Demirel &
	// Sbalzarini neighbor-wise load averaging).
	KindDiffuse

	// KindMax is the highest state kind; per-kind tally arrays size
	// themselves KindMax+1.
	KindMax = KindDiffuse
)

// KindName returns a short name for a state-message kind.
func KindName(kind int) string {
	switch kind {
	case KindUpdate:
		return "update"
	case KindMasterToAll:
		return "master_to_all"
	case KindNoMoreMaster:
		return "no_more_master"
	case KindStartSnp:
		return "start_snp"
	case KindSnp:
		return "snp"
	case KindEndSnp:
		return "end_snp"
	case KindMasterToSlave:
		return "master_to_slave"
	case KindGossip:
		return "gossip"
	case KindDiffuse:
		return "diffuse"
	}
	return fmt.Sprintf("kind(%d)", kind)
}

// On-wire sizes in bytes of the state-channel messages, used for
// bandwidth accounting everywhere a real wire is absent (sim, live) and
// checked against the real wire where one exists. Each constant is the
// exact frame-body length produced by internal/net's BinaryCodec — the
// reference encoding — for that kind; the TCP transport adds a 4-byte
// length prefix per frame (net.FrameHeaderBytes), which is transport
// framing, not message payload, and is therefore excluded here. A
// snapshot reply carries every metric at once (the paper notes snapshot
// messages are larger, §4.5). internal/net's codec tests assert that
// these constants and BinaryCodec.Encode never drift apart.
const (
	// BytesStateHeader is the header every state message carries:
	// type (u8) + sender rank (i32) + state kind (i32).
	BytesStateHeader = 1 + 4 + 4
	// BytesLoad is one Load vector: NumMetrics raw float64s.
	BytesLoad = 8 * float64(NumMetrics)
	// BytesAssignment is one Assignment of a Master_To_All list:
	// processor rank (i32) + reserved load delta.
	BytesAssignment = 4 + BytesLoad

	BytesUpdate        = BytesStateHeader + BytesLoad
	BytesMasterToAll   = BytesStateHeader + 4 // + assignment list, see MasterToAllBytes
	BytesNoMoreMaster  = BytesStateHeader
	BytesStartSnp      = BytesStateHeader + 4 // + request id
	BytesSnp           = BytesStateHeader + 4 + BytesLoad
	BytesEndSnp        = BytesStateHeader
	BytesMasterToSlave = BytesStateHeader + BytesLoad
	// BytesGossip is a rumor frame: origin rank (i32) + sequence (i32)
	// + TTL (i32) + the origin's absolute load.
	BytesGossip = BytesStateHeader + 4 + 4 + 4 + BytesLoad
	// BytesDiffuseBase is a diffusion frame before its view vector:
	// entry count (u32); see DiffuseBytes.
	BytesDiffuseBase = BytesStateHeader + 4

	// BytesWorkItem is a data-channel work item: type (u8) + sender
	// rank (i32) + load + spin duration (u64). The runtimes without a
	// real wire charge this for each shipped work item so data-channel
	// volume is comparable across runtimes.
	BytesWorkItem = 1 + 4 + BytesLoad + 8

	// BytesCtrl is a termination-detection control frame
	// (internal/termdet): type (u8) + sender rank (i32) + ctrl kind
	// (i32) + token count (i32) + token color (u8). Acks and the
	// termination announcement carry the same fixed frame; the runtimes
	// without a real wire charge this per control frame, and the net
	// codec tests pin it to BinaryCodec's encoding.
	BytesCtrl = 1 + 4 + 4 + 4 + 1
)

// MasterToAllBytes returns the size of a Master_To_All message with k
// assignments.
func MasterToAllBytes(k int) float64 { return BytesMasterToAll + BytesAssignment*float64(k) }

// DiffuseBytes returns the size of a diffusion message carrying an
// n-entry view vector.
func DiffuseBytes(n int) float64 { return BytesDiffuseBase + BytesLoad*float64(n) }

// Assignment is one slave's share in a dynamic decision: the load delta
// the master reserves on processor Proc.
type Assignment struct {
	Proc  int32
	Delta Load
}

// Payload types for the state-channel messages.
type (
	// UpdatePayload carries an absolute load (naive) or delta
	// (increments).
	UpdatePayload struct{ Load Load }
	// MasterToAllPayload announces a selection to everyone.
	MasterToAllPayload struct{ Assignments []Assignment }
	// StartSnpPayload opens a snapshot round.
	StartSnpPayload struct{ Req int32 }
	// SnpPayload answers a snapshot round with the sender's state.
	SnpPayload struct {
		Req  int32
		Load Load
	}
	// MasterToSlavePayload updates a selected slave's state (snapshot
	// scheme).
	MasterToSlavePayload struct{ Delta Load }
	// GossipPayload is one epidemic rumor: Origin's absolute load,
	// versioned by Seq (per-origin, monotone), with TTL hops remaining.
	GossipPayload struct {
		Origin int32
		Seq    int32
		TTL    int32
		Load   Load
	}
	// DiffusePayload carries the sender's full view vector (one Load
	// per rank) for neighbor-wise averaging.
	DiffusePayload struct{ Loads []Load }
)

// Context is the mechanism's window on the transport. Send and Broadcast
// are asynchronous and must deliver on the prioritized state channel;
// Now returns virtual (or wall-clock) seconds for statistics.
type Context interface {
	Rank() int
	N() int
	Now() float64
	Send(to int, kind int, payload any, bytes float64)
	Broadcast(kind int, payload any, bytes float64)
}

// Exchanger is a load-information exchange mechanism. Implementations
// must be used from a single goroutine (the owning process); they never
// block — waiting states are exposed through Busy.
type Exchanger interface {
	// Name identifies the mechanism ("naive", "increments", "snapshot").
	Name() string
	// Init sets the initial local load (e.g. the cost of the subtrees
	// mapped to this process) and prepares the view.
	Init(ctx Context, initial Load)
	// LocalChange records a local load variation. asSlave must be true
	// when the variation concerns a task this process received as a
	// slave: positive such variations were already accounted by the
	// master's reservation and are skipped (Algorithm 3, step (1)).
	LocalChange(ctx Context, delta Load, asSlave bool)
	// Local returns the process's own current load.
	Local() Load
	// View returns the current estimates of everyone's load. The entry
	// for the local rank is always exact.
	View() *View
	// Acquire prepares a coherent view for a dynamic decision and calls
	// ready when it is usable. Maintained mechanisms call ready
	// synchronously; the snapshot mechanism calls it after the snapshot
	// completes.
	Acquire(ctx Context, ready func())
	// Commit publishes the decision taken after Acquire: the load the
	// master assigned to each selected slave. For the snapshot mechanism
	// this also finalizes the snapshot.
	Commit(ctx Context, assignments []Assignment)
	// NoMoreMaster announces that this process will never take a dynamic
	// decision again (§2.3); peers may stop sending it load information.
	NoMoreMaster(ctx Context)
	// HandleMessage processes one state-channel message addressed to
	// this process.
	HandleMessage(ctx Context, from int, kind int, payload any)
	// Busy reports whether the process must pause application work
	// because a snapshot involving it is in progress.
	Busy() bool
	// Stats returns mechanism counters.
	Stats() Stats
}

// Stats aggregates mechanism-level counters (network-level message counts
// live in the transport).
type Stats struct {
	// UpdatesSent counts Update unicasts (after No_more_master pruning).
	UpdatesSent int64
	// ReservationsSent counts Master_To_All broadcasts.
	ReservationsSent int64
	// SnapshotsInitiated counts Acquire calls that ran a snapshot.
	SnapshotsInitiated int64
	// SnapshotRestarts counts re-broadcast rounds forced by losing a
	// leader election.
	SnapshotRestarts int64
	// SnapshotTime is the total time from Acquire to view-ready over all
	// snapshots initiated by this process (the paper's "time spent to
	// perform the snapshot operations").
	SnapshotTime float64
	// MaxConcurrentSnapshots is the largest number of simultaneously
	// active snapshots observed by this process (paper: "at most 5").
	MaxConcurrentSnapshots int
}

// View stores per-process load estimates.
//
// The view tracks the minimum of each metric incrementally: minCache[m]
// holds 1+rank of the current minimum (lowest rank among ties), or 0
// when unknown. The cache starts unknown and is filled lazily by the
// first k=1 selection, after which Set keeps it fresh in O(1) except
// when the minimum itself worsens (then it goes unknown again until the
// next query's scan). This makes the common PlanDecision case — pick
// the single least-loaded slave — O(1) on views that mostly receive
// updates for non-minimal ranks.
type View struct {
	loads    []Load
	minCache [NumMetrics]int32
}

// NewView returns a view over n processes with zero estimates.
func NewView(n int) *View { return &View{loads: make([]Load, n)} }

// N returns the number of processes.
func (v *View) N() int { return len(v.loads) }

// Load returns the estimate for process p.
func (v *View) Load(p int) Load { return v.loads[p] }

// Metric returns the estimate of one metric for process p.
func (v *View) Metric(p int, m Metric) float64 { return v.loads[p][m] }

// Set overwrites the estimate for p.
func (v *View) Set(p int, l Load) {
	old := v.loads[p]
	v.loads[p] = l
	for m := range v.minCache {
		c := v.minCache[m]
		if c == 0 {
			continue
		}
		cr := int(c) - 1
		if p == cr {
			if l[m] > old[m] {
				// The minimum worsened; some other rank may now hold it.
				v.minCache[m] = 0
			}
		} else if l[m] < v.loads[cr][m] || (l[m] == v.loads[cr][m] && p < cr) {
			v.minCache[m] = int32(p) + 1
		}
	}
}

// AddTo adds a delta to the estimate for p.
func (v *View) AddTo(p int, d Load) { v.Set(p, v.loads[p].Add(d)) }

// minRank returns the rank with the smallest estimate of metric m,
// excluding rank exclude (-1 excludes nobody), lowest rank among ties;
// -1 when no rank qualifies. It answers from the incremental cache when
// possible and refreshes it on the scan path whenever the result is
// also the unexcluded minimum.
func (v *View) minRank(m Metric, exclude int) int {
	if c := v.minCache[m]; c != 0 && int(c)-1 != exclude {
		return int(c) - 1
	}
	best, bl := -1, 0.0
	for p := range v.loads {
		if p == exclude {
			continue
		}
		if l := v.loads[p][m]; best < 0 || l < bl {
			best, bl = p, l
		}
	}
	if best >= 0 {
		if exclude < 0 || exclude >= len(v.loads) || v.loads[exclude][m] > bl ||
			(v.loads[exclude][m] == bl && exclude > best) {
			v.minCache[m] = int32(best) + 1
		}
	}
	return best
}

// SeedView installs the statically-known initial loads of every peer
// into a freshly initialized mechanism's view — the paper's convention
// that the static mapping, and hence everyone's starting load, is known
// to all processes, so nothing needs to be broadcast. The owning rank's
// entry is Init's job and is left untouched. Every runtime seeds
// through this one helper so they cannot diverge.
func SeedView(exch Exchanger, rank int, initial []Load) {
	v := exch.View()
	for p, l := range initial {
		if p != rank {
			v.Set(p, l)
		}
	}
}

// Snapshot returns a copy of all estimates.
func (v *View) Snapshot() []Load {
	out := make([]Load, len(v.loads))
	copy(out, v.loads)
	return out
}

// ScopedExchanger is implemented by mechanisms that can restrict a
// demand-driven view acquisition to a subset of processes — the paper's
// §5 perspective of partial snapshots, with the "double objective of
// reducing the amount of messages and having a weaker synchronization".
type ScopedExchanger interface {
	Exchanger
	// AcquireScoped behaves like Acquire but consults only the listed
	// peers; everyone else is neither messaged nor blocked.
	AcquireScoped(ctx Context, scope []int32, ready func())
}

// Mech names a mechanism for construction and reporting.
type Mech string

// The available mechanisms.
const (
	MechNaive      Mech = "naive"
	MechIncrements Mech = "increments"
	MechSnapshot   Mech = "snapshot"
	MechGossip     Mech = "gossip"
	MechDiffusion  Mech = "diffusion"
)

// Mechanisms lists the paper's three mechanisms in the order its
// tables use. The goldens and the cross-runtime equivalence suite
// iterate this set; topology-native additions live in AllMechanisms.
func Mechanisms() []Mech { return []Mech{MechIncrements, MechSnapshot, MechNaive} }

// AllMechanisms lists every registered mechanism: the paper's three
// followed by the topology-native dissemination schemes. CLI "-mech
// all" sweeps expand to this set.
func AllMechanisms() []Mech {
	return append(Mechanisms(), MechGossip, MechDiffusion)
}

// Config tunes mechanism construction.
type Config struct {
	// Threshold is the per-metric broadcast threshold of the maintained
	// mechanisms (Algorithm 2 line 3, Algorithm 3 line 8). The paper
	// recommends "a threshold of the same order as the granularity of
	// the tasks appearing in the slave selections" (§2.3).
	Threshold Load
	// NoMoreMasterOpt enables the §2.3 optimization (the paper's
	// experiments use it).
	NoMoreMasterOpt bool
	// Elect is the snapshot leader-election criterion; nil means lowest
	// rank (the paper's choice).
	Elect Elector
	// Topo is the neighbor graph state exchange is restricted to; nil
	// means the complete graph (the paper's implicit assumption).
	Topo *Topology
	// GossipFanout is how many neighbors a gossip rumor is forwarded
	// to per hop; 0 means the default (2).
	GossipFanout int
	// GossipTTL is a rumor's hop budget; 0 means the default
	// (⌈log2 n⌉ + 2, enough hops to cover the graph w.h.p.).
	GossipTTL int
}

// New constructs a mechanism for a process of rank within n processes.
// A non-nil cfg.Topo must have been generated for exactly n ranks.
func New(m Mech, n, rank int, cfg Config) (Exchanger, error) {
	if cfg.Topo != nil && cfg.Topo.N() != n {
		return nil, fmt.Errorf("core: topology %q generated for %d ranks, mechanism built for %d",
			cfg.Topo.Name(), cfg.Topo.N(), n)
	}
	switch m {
	case MechNaive:
		return NewNaive(n, rank, cfg), nil
	case MechIncrements:
		return NewIncrements(n, rank, cfg), nil
	case MechSnapshot:
		return NewSnapshot(n, rank, cfg), nil
	case MechGossip:
		return NewGossip(n, rank, cfg), nil
	case MechDiffusion:
		return NewDiffusion(n, rank, cfg), nil
	}
	return nil, fmt.Errorf("core: unknown mechanism %q", m)
}
