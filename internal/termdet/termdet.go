// Package termdet implements Dijkstra-Scholten termination detection for
// diffusing computations. The paper's main loop (Algorithm 1) runs "while
// global termination not detected": MUMPS uses such a detector to know
// when the last task and the last in-flight message are gone. The
// detector is a transport-agnostic state machine in the same style as the
// load-exchange mechanisms, so it runs over the simulator, the live
// goroutine runtime or the test fabric.
//
// Protocol: the computation diffuses from a root. Every application
// message carries an implicit engagement: the first message a passive
// process receives engages it under its sender (its parent in the
// engagement tree); every message must eventually be acknowledged. A
// process sends its parent acknowledgment (detaching itself) only when it
// is passive and all messages it ever sent were acknowledged. When the
// root is passive with no outstanding acknowledgments, the computation
// has terminated globally.
package termdet

import "fmt"

// Context is the detector's window on the transport: SendAck must deliver
// an acknowledgment to a peer's detector (a small control message).
type Context interface {
	Rank() int
	SendAck(to int)
}

// Detector is the per-process Dijkstra-Scholten state. All methods must
// be called from the owning process only.
type Detector struct {
	rank int
	// root is the process where the computation starts; it is always
	// engaged and detects global termination.
	root bool
	// parent is the engagement parent, -1 when not engaged.
	parent int
	// deficit counts messages this process sent that are unacknowledged.
	deficit int
	// active reports whether the application is currently processing.
	active bool
	// terminated is set on the root when global termination is detected.
	terminated bool
	// onTerminate fires exactly once on the root at detection.
	onTerminate func()
}

// New creates a detector. The root starts engaged and active (it owns the
// initial work); everyone else starts passive and disengaged.
func New(rank int, isRoot bool, onTerminate func()) *Detector {
	d := &Detector{rank: rank, root: isRoot, parent: -1, onTerminate: onTerminate}
	if isRoot {
		d.active = true
	}
	return d
}

// Engaged reports whether the process is part of the engagement tree.
func (d *Detector) Engaged() bool { return d.root || d.parent >= 0 }

// Deficit returns the number of unacknowledged messages this process has
// sent.
func (d *Detector) Deficit() int { return d.deficit }

// Terminated reports whether the root has detected global termination.
func (d *Detector) Terminated() bool { return d.terminated }

// OnSend must be called for every application message sent.
func (d *Detector) OnSend(ctx Context, to int) {
	if !d.active && !d.Engaged() {
		panic(fmt.Sprintf("termdet: process %d sent while passive and disengaged", d.rank))
	}
	d.deficit++
}

// OnReceive must be called for every application message received,
// before processing it. It engages a disengaged process under the sender
// and acknowledges immediately otherwise.
func (d *Detector) OnReceive(ctx Context, from int) {
	d.active = true
	if !d.Engaged() {
		d.parent = from
		return
	}
	// Already engaged: acknowledge at once.
	ctx.SendAck(from)
}

// OnAck must be called when an acknowledgment arrives.
func (d *Detector) OnAck(ctx Context) {
	if d.deficit <= 0 {
		panic(fmt.Sprintf("termdet: process %d received ack with zero deficit", d.rank))
	}
	d.deficit--
	d.maybeDetach(ctx)
}

// Passive must be called when the application finishes its local work
// (no task running, no pending local work).
func (d *Detector) Passive(ctx Context) {
	d.active = false
	d.maybeDetach(ctx)
}

// maybeDetach sends the deferred acknowledgment to the parent (or
// declares termination on the root) once passive with zero deficit.
func (d *Detector) maybeDetach(ctx Context) {
	if d.active || d.deficit != 0 {
		return
	}
	if d.root {
		if !d.terminated {
			d.terminated = true
			if d.onTerminate != nil {
				d.onTerminate()
			}
		}
		return
	}
	if d.parent >= 0 {
		p := d.parent
		d.parent = -1
		ctx.SendAck(p)
	}
}
