package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestFailedCellsErrorNamesEveryCell(t *testing.T) {
	if err := failedCellsError(nil); err != nil {
		t.Fatalf("no failures must mean nil error, got %v", err)
	}
	failed := []experiments.CellError{
		{Cell: experiments.Cell{Scenario: "burst", Mech: "naive", Runtime: "net"}, Err: errors.New("dial refused")},
		{Cell: experiments.Cell{Scenario: "ramp", Mech: "snapshot", Runtime: "sim"}, Err: errors.New("stalled")},
	}
	err := failedCellsError(failed)
	if err == nil {
		t.Fatal("failures must produce a non-nil error (non-zero exit)")
	}
	for _, want := range []string{"2 cell(s) failed", "burst × naive × net", "dial refused", "ramp × snapshot × sim", "stalled"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

// TestExperimentCommandSimSweep runs the real subcommand over the full
// scenario × mechanism matrix on the sim runtime and checks the
// benchmark JSON holds aggregates for every cell — the acceptance shape
// of `loadex experiment -scenario all -mech all -runtime sim`.
func TestExperimentCommandSimSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	// Divert the markdown tables away from the test output.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	err = runExperiment([]string{
		"-scenario", "all", "-mech", "all", "-runtime", "sim",
		"-repeat", "2", "-json", path, "-procs", "5",
		"-masters", "2", "-decisions", "2", "-work", "40", "-slaves", "2",
		"-spin", "200us",
	})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bench, err := experiments.ReadBenchJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	// scenarios (5 program + 3 solver app) × mechanisms (the paper's
	// three plus gossip and diffusion) on one runtime
	wantCells := 8 * 5
	if len(bench.Cells) != wantCells {
		t.Fatalf("bench holds %d cells, want %d", len(bench.Cells), wantCells)
	}
	if len(bench.Failed) != 0 {
		t.Fatalf("failed cells recorded: %v", bench.Failed)
	}
	for _, cell := range bench.Cells {
		if cell.Repeats != 2 {
			t.Fatalf("%s: repeats = %d, want 2", cell.Cell, cell.Repeats)
		}
		for _, name := range []string{
			experiments.MetricStateMsgs, experiments.MetricStateBytes,
			experiments.MetricDecisions, experiments.MetricDecisionLatency,
		} {
			if s := cell.Metric(name); s.N != 2 {
				t.Fatalf("%s: metric %s missing (%+v)", cell.Cell, name, s)
			}
		}
		if cell.Metric(experiments.MetricStateMsgs).Mean <= 0 {
			t.Fatalf("%s: no state traffic measured", cell.Cell)
		}
	}
}
