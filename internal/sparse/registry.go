package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Problem is one of the paper's test matrices (Tables 1 and 2) together
// with the synthetic generator that stands in for it.
//
// The real matrices come from the PARASOL and University-of-Florida
// collections, which are not redistributable inside this repository; each
// analogue reproduces the structural class that drives the experiments:
// dimensionality (3D solid / thin shell / irregular circuit / dense LP),
// unknowns per node and stencil density. Scale < 1 shrinks the problem
// while preserving that class.
type Problem struct {
	Name string
	// PaperOrder and PaperNNZ are the values reported in Tables 1-2.
	PaperOrder int
	PaperNNZ   int
	Kind       Kind
	Desc       string
	// Set is 1 for Table 1 problems, 2 for Table 2 (larger) problems.
	Set int
	gen func(scale float64, seed uint64) (*Pattern, *Graph)
}

// Generate materializes the synthetic analogue at the given scale.
// Scale 1 approximates the paper's order; the experiments default to a
// smaller scale so the whole suite runs on a laptop.
func (pr *Problem) Generate(scale float64, seed uint64) (*Pattern, *Graph) {
	if scale <= 0 {
		scale = 1
	}
	p, g := pr.gen(scale, seed)
	if g == nil {
		g = p.ToGraph()
	}
	return p, g
}

// scaleDim shrinks a linear grid dimension by scale^(1/3) (volume scaling).
func scaleDim(d int, scale float64) int {
	s := int(math.Round(float64(d) * math.Cbrt(scale)))
	if s < 6 {
		s = 6
	}
	return s
}

// intSqrt returns ⌊√n⌋.
func intSqrt(n int) int {
	s := int(math.Sqrt(float64(n)))
	if s < 4 {
		s = 4
	}
	return s
}

// scaleN shrinks a vertex count linearly.
func scaleN(n int, scale float64) int {
	s := int(math.Round(float64(n) * scale))
	if s < 400 {
		s = 400
	}
	return s
}

func grid3(nx, ny, nz, dof int, st Stencil, kind Kind) func(float64, uint64) (*Pattern, *Graph) {
	return func(scale float64, _ uint64) (*Pattern, *Graph) {
		return Grid3D(scaleDim(nx, scale), scaleDim(ny, scale), scaleDim(nz, scale), dof, st, kind)
	}
}

// shell3 scales only the two in-plane dimensions (thin structures keep
// their thickness).
func shell3(nx, ny, nz, dof int, st Stencil, kind Kind) func(float64, uint64) (*Pattern, *Graph) {
	return func(scale float64, _ uint64) (*Pattern, *Graph) {
		f := math.Sqrt(scale)
		sx := int(math.Round(float64(nx) * f))
		sy := int(math.Round(float64(ny) * f))
		if sx < 8 {
			sx = 8
		}
		if sy < 8 {
			sy = 8
		}
		return Grid3D(sx, sy, nz, dof, st, kind)
	}
}

// Registry lists the paper's test problems in table order.
var Registry = []*Problem{
	{
		Name: "BMWCRA_1", PaperOrder: 148770, PaperNNZ: 5396386, Kind: Sym, Set: 1,
		Desc: "Automotive crankshaft model (PARASOL)",
		gen:  grid3(37, 37, 37, 3, Star, Sym),
	},
	{
		Name: "GUPTA3", PaperOrder: 16783, PaperNNZ: 4670105, Kind: Sym, Set: 1,
		Desc: "Linear programming matrix A*A' (Tim Davis)",
		gen: func(scale float64, seed uint64) (*Pattern, *Graph) {
			n := scaleN(16783, scale)
			rng := sim.NewRNG(seed ^ 0x67757074)
			return CliqueOverlay(n, n/45+8, 64, 4, rng), nil
		},
	},
	{
		Name: "MSDOOR", PaperOrder: 415863, PaperNNZ: 10328399, Kind: Sym, Set: 1,
		Desc: "Medium size door (PARASOL)",
		gen:  shell3(215, 215, 3, 3, Star, Sym),
	},
	{
		Name: "SHIP_003", PaperOrder: 121728, PaperNNZ: 4103881, Kind: Sym, Set: 1,
		Desc: "Ship structure (PARASOL)",
		gen:  shell3(101, 101, 4, 3, Star, Sym),
	},
	{
		Name: "PRE2", PaperOrder: 659033, PaperNNZ: 5959282, Kind: Unsym, Set: 1,
		Desc: "AT&T, harmonic balance method (Tim Davis)",
		gen: func(scale float64, seed uint64) (*Pattern, *Graph) {
			n := scaleN(659033, scale)
			w := intSqrt(n)
			rng := sim.NewRNG(seed ^ 0x70726532)
			return GridPerturbed(w, (n+w-1)/w, 0.04, rng, Unsym)
		},
	},
	{
		Name: "TWOTONE", PaperOrder: 120750, PaperNNZ: 1224224, Kind: Unsym, Set: 1,
		Desc: "AT&T, harmonic balance method (Tim Davis)",
		gen: func(scale float64, seed uint64) (*Pattern, *Graph) {
			n := scaleN(120750, scale)
			w := intSqrt(n)
			rng := sim.NewRNG(seed ^ 0x74776f74)
			return GridPerturbed(w, (n+w-1)/w, 0.06, rng, Unsym)
		},
	},
	{
		Name: "ULTRASOUND3", PaperOrder: 185193, PaperNNZ: 11390625, Kind: Unsym, Set: 1,
		Desc: "Propagation of 3D ultrasound waves (X. Cai, Simula)",
		gen:  grid3(57, 57, 57, 1, Box, Unsym),
	},
	{
		Name: "XENON2", PaperOrder: 157464, PaperNNZ: 3866688, Kind: Unsym, Set: 1,
		Desc: "Complex zeolite, sodalite crystals (Tim Davis)",
		gen:  grid3(54, 54, 54, 1, Box, Unsym),
	},
	{
		Name: "AUDIKW_1", PaperOrder: 943695, PaperNNZ: 39297771, Kind: Sym, Set: 2,
		Desc: "Automotive crankshaft model, large (PARASOL)",
		gen:  grid3(68, 68, 68, 3, Star, Sym),
	},
	{
		Name: "CONV3D64", PaperOrder: 836550, PaperNNZ: 12548250, Kind: Unsym, Set: 2,
		Desc: "CFD, provided by CEA-CESTA, generated with AQUILON",
		gen:  grid3(94, 94, 94, 1, Star, Unsym),
	},
	{
		Name: "ULTRASOUND80", PaperOrder: 531441, PaperNNZ: 330761161, Kind: Unsym, Set: 2,
		Desc: "Propagation of 3D ultrasound waves, large (M. Sosonkina)",
		gen:  grid3(81, 81, 81, 1, Box, Unsym),
	},
}

// ByName returns the registered problem with the given name.
func ByName(name string) (*Problem, error) {
	for _, pr := range Registry {
		if pr.Name == name {
			return pr, nil
		}
	}
	return nil, fmt.Errorf("sparse: unknown problem %q", name)
}

// Set1 returns the Table 1 problems; Set2 the Table 2 problems.
func Set1() []*Problem { return bySet(1) }

// Set2 returns the Table 2 (larger) problems.
func Set2() []*Problem { return bySet(2) }

func bySet(s int) []*Problem {
	var out []*Problem
	for _, pr := range Registry {
		if pr.Set == s {
			out = append(out, pr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
