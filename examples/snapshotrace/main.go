// Snapshotrace replays the paper's Figure 1 race: two masters take
// dynamic decisions in quick succession while the selected slave is busy
// computing. It prints, for each mechanism, what the second master
// believed about the slave — the coherence problem that motivates the
// increment (Master_To_All) and snapshot mechanisms.
//
//	go run ./examples/snapshotrace
package main

import (
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		if err := experiments.Figure1(os.Stdout, mech); err != nil {
			log.Fatal(err)
		}
	}
}
