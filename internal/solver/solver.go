// Package solver executes a MUMPS-like asynchronous multifrontal
// factorization: the distributed application of the paper's Algorithm 1,
// §4. Each process runs the main loop (state messages first, then data
// messages, then local ready tasks); Type 2 masters take dynamic
// scheduling decisions through a pluggable load-exchange mechanism
// (internal/core) and a slave-selection strategy (internal/sched).
//
// The application is transport-neutral: it implements workload.App and
// targets only the workload.AppHost port, so any runtime's AppRunner
// can host it — the deterministic simulator (sim.AppRunner, the
// reference for the paper's tables), real goroutines (live.AppRunner)
// or localhost TCP sockets (net.AppRunner). The solver is also
// registered as the `solver-wl` / `solver-mem` workload scenarios (see
// scenario.go), so `loadex run` and `loadex experiment` sweep it across
// the scenario × mechanism × runtime matrix like any synthetic program.
//
// The solver performs no numerical work: tasks are compute intervals whose
// durations come from the cost model, and memory is tracked in matrix
// entries — exactly the quantities the paper's tables report.
package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/workload"
)

// Data-channel message kinds (disjoint from core's state kinds only by
// channel, but kept numerically distinct for readable traces). Payloads
// travel as workload.DataMsg; the comment on each kind documents its
// field mapping.
const (
	// KindSubtask carries a Type 2 slave's share of a front
	// (Node = tree node, Count = rows).
	KindSubtask = 101 + iota
	// KindCB carries a contribution-block piece to a Type 1 parent's
	// owner (full data), or announces one to a parallel parent's master
	// (notification only: the data stays stacked on the producer until
	// the parent's slaves are chosen). Node = completed child, Count =
	// total pieces the child produces, Size = entries, Peer = producer.
	KindCB
	// KindType3Start starts a process's share of the 2D root
	// (Node = root, Work = flops, Size = entries).
	KindType3Start
	// KindShipReq asks a producer to ship a stacked contribution piece
	// to the consumer chosen by the parent's selection
	// (Size = entries, Peer = consumer).
	KindShipReq
	// KindCBData is the shipped piece; the consumer's storage was
	// already counted with its block, so reception is bandwidth only.
	KindCBData
	// KindSlaveDone notifies a Type 2 node's master that one slave
	// share completed (Node = tree node). With this, slave-done
	// tracking is message-driven instead of shared bookkeeping, so the
	// application runs forked/multi-host.
	KindSlaveDone
	// KindType3Done notifies the 2D root's master that one process's
	// share completed (Node = root).
	KindType3Done
)

// NotifyBytes is the modeled on-wire size of a completion notification
// (KindSlaveDone, KindType3Done): a header plus a node id.
const NotifyBytes = 16

// Params configures one factorization run. Runtime-specific knobs (the
// simulated interconnect model, in particular) live on the AppRunner,
// not here: the same Params run unchanged on every runtime.
type Params struct {
	// Mech selects the load-exchange mechanism.
	Mech core.Mech
	// MechConfig tunes it; a zero Threshold is replaced by a default
	// derived from the tree's task granularity (§2.3's recommendation).
	MechConfig core.Config
	// Strategy is the dynamic scheduling strategy (workload or memory).
	Strategy *sched.Strategy
	// Threaded enables the §4.5 model on hosts that support it (the
	// simulator): a helper thread treats state messages every
	// PollPeriod even while a task computes.
	Threaded bool
	// PollPeriod is the helper thread's *effective* responsiveness in
	// seconds of application time. The paper's thread sleeps 50 µs
	// between checks, but its own measurements show each snapshot still
	// costs ~50 ms even threaded (14 s of snapshot operations for 274
	// decisions on CONV3D64/128p): lock contention around MPI calls and
	// OS scheduling dominate the nominal sleep. The default (0.8 s,
	// ≈ an eighth of a compute panel) is calibrated to that observed
	// per-decision cost and to the paper's 7× threaded/single-threaded
	// snapshot-time ratio.
	PollPeriod float64
	// FlopsPerSecond is the per-process effective speed (default 1e9).
	FlopsPerSecond float64
	// ThresholdScale multiplies the broadcast threshold (derived or
	// explicit); used by the §2.3 threshold-sensitivity ablation.
	ThresholdScale float64
	// MaxChunkSeconds bounds one uninterrupted compute interval: dense
	// kernels proceed panel by panel and the process polls its message
	// queues between panels, so a long front never makes a process deaf
	// for its whole duration (default 6 s of application time,
	// calibrated so the snapshot synchronization overhead matches the
	// paper's Table 5 ratios).
	MaxChunkSeconds float64
	// PartialSnapshots enables the §5 extension: a master's demand-driven
	// snapshot consults only its candidate slaves (from the static
	// mapping) instead of every process, and the selection is restricted
	// to those candidates. Only meaningful with MechSnapshot.
	PartialSnapshots bool
	// Tracer, when non-nil, receives structured events (task start/end,
	// decisions, snapshot phases) for debugging and verbose reporting.
	Tracer trace.Tracer
	// MaxSteps guards against protocol livelock on hosts that count
	// scheduling steps (default 200M events on the simulator).
	MaxSteps uint64
}

// DefaultParams returns the configuration used by the experiments.
//
// FlopsPerSecond is deliberately below hardware rates: the experiments run
// scaled-down matrices (sparse.Problem.Generate), and slowing the virtual
// processors keeps task durations — and therefore the ratio between
// compute, network latency and the 50 µs poll period — in the same regime
// as the paper's full-size runs.
func DefaultParams(mech core.Mech, strat *sched.Strategy) Params {
	return Params{
		Mech:            mech,
		MechConfig:      core.Config{NoMoreMasterOpt: true},
		Strategy:        strat,
		FlopsPerSecond:  5e7,
		PollPeriod:      0.8,
		MaxChunkSeconds: 6,
	}
}

// runOptions maps the runtime-relevant params onto the port's options.
func (p Params) runOptions() workload.AppRunOptions {
	return workload.AppRunOptions{
		Threaded:   p.Threaded,
		PollPeriod: p.PollPeriod,
		MaxSteps:   p.MaxSteps,
	}
}

// Result aggregates everything the paper's tables report.
type Result struct {
	// Time is the factorization makespan in application seconds
	// (virtual on the simulator, wall clock elsewhere; Table 5/7).
	Time float64
	// PeakMem[p] is the peak active memory of process p in entries;
	// MaxPeakMem is the maximum over processes (Table 4, in entries —
	// divide by 1e6 for the paper's "millions of real entries").
	PeakMem    []float64
	MaxPeakMem float64
	// ExecutedFlops[p] is the floating-point work process p executed.
	// The total is structure-determined (slave flops are linear in the
	// rows split), so it is conserved across runtimes — the
	// cross-runtime equivalence tests pin it.
	ExecutedFlops []float64
	// StateMsgs counts messages of the load-exchange mechanism (Table 6);
	// StateBytes is their volume.
	StateMsgs  int64
	StateBytes float64
	// DataMsgs counts application messages (subtasks, contribution
	// blocks, completion notifications).
	DataMsgs int64
	// CtrlMsgs / CtrlBytes count the termination-detection control
	// frames (internal/termdet) — the quiescence subsystem's overhead,
	// reported per mechanism × protocol by `loadex experiment`.
	CtrlMsgs  int64
	CtrlBytes float64
	// Decisions is the number of dynamic slave selections (Table 3):
	// structure-determined (one per Type 2 node), so identical across
	// runtimes. Assignments is the total number of slave shares those
	// selections committed; the count per decision is bounded by the
	// front's rows and the granularity limits but can shift by a share
	// or two with view timing on the concurrent runtimes.
	Decisions   int
	Assignments int
	// SnapshotTime is the total time spent performing snapshots, summed
	// over initiators (the §4.5 "100 seconds" quantity).
	SnapshotTime float64
	// SnapshotCount / SnapshotRestarts / MaxConcurrentSnapshots describe
	// snapshot activity.
	SnapshotCount          int64
	SnapshotRestarts       int64
	MaxConcurrentSnapshots int
	// PausedTime is the total compute-pause time (threaded model).
	PausedTime float64
	// Steps is the number of simulation events processed (simulator
	// hosts only).
	Steps uint64
	// MsgsByKind counts state-channel messages by protocol kind name.
	MsgsByKind map[string]int64
}

// TotalExecutedFlops sums the per-process executed work.
func (r *Result) TotalExecutedFlops() float64 {
	var total float64
	for _, f := range r.ExecutedFlops {
		total += f
	}
	return total
}

// Run executes the factorization described by the mapping under the
// given parameters on the given runtime, and returns the measured
// metrics. The runner decides where the application actually executes:
// sim.AppRunner reproduces the paper's deterministic measurements,
// live.AppRunner and net.AppRunner run the same application over real
// concurrency and real sockets.
func Run(m *mapping.Mapping, prm Params, rt workload.AppRunner) (*Result, error) {
	a, err := prepare(m, prm)
	if err != nil {
		return nil, err
	}
	hr, err := rt.RunApp(m.Config.NProcs, a, a.prm.runOptions())
	if err != nil {
		return nil, fmt.Errorf("solver: %w (done %d/%d nodes)", err, a.doneCount, a.expectedDone)
	}
	out := a.Outcome(hr)
	if out.Err != nil {
		return nil, out.Err
	}
	return out.Result.(*Result), nil
}

// NewApp builds the solver as a hostable application: the
// workload.App any runtime's AppRunner accepts, plus the run options
// derived from the parameters. Run wraps it; use NewApp directly when
// driving the host yourself (e.g. to inspect the AppOutcome).
func NewApp(m *mapping.Mapping, prm Params) (workload.App, workload.AppRunOptions, error) {
	a, err := prepare(m, prm)
	if err != nil {
		return nil, workload.AppRunOptions{}, err
	}
	return a, a.prm.runOptions(), nil
}

// prepare validates and normalizes the parameters and builds the
// application. The workload scenarios (scenario.go) use prepare
// directly; everyone else calls Run.
func prepare(m *mapping.Mapping, prm Params) (*app, error) {
	if prm.Strategy == nil {
		return nil, fmt.Errorf("solver: nil strategy")
	}
	if prm.FlopsPerSecond <= 0 {
		prm.FlopsPerSecond = 1e9
	}
	if prm.MaxSteps == 0 {
		prm.MaxSteps = 200_000_000
	}
	if prm.MechConfig.Threshold == (core.Load{}) {
		prm.MechConfig.Threshold = defaultThreshold(m)
	}
	if prm.ThresholdScale > 0 {
		for i := range prm.MechConfig.Threshold {
			prm.MechConfig.Threshold[i] *= prm.ThresholdScale
		}
	}
	return newApp(m, prm), nil
}

// defaultThreshold derives the broadcast threshold from the granularity
// of the tasks appearing in slave selections (§2.3): the mean Type 2
// slave share.
func defaultThreshold(m *mapping.Mapping) core.Load {
	t := m.Tree
	var flops, entries float64
	var cnt int
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Type != tree.Type2 {
			continue
		}
		rows := n.SchurSize()
		flops += tree.SlaveFlops(n.Nfront, n.Npiv, rows, t.Sym)
		entries += tree.SlaveBlockEntries(n.Nfront, n.Npiv, rows, t.Sym)
		cnt++
	}
	if cnt == 0 {
		return core.Load{core.Workload: 1e7, core.Memory: 1e4}
	}
	// Per-decision totals divided by a typical slave count, scaled down
	// so several updates flow per slave task (the paper's guidance is a
	// threshold "of the same order as the granularity of the tasks";
	// the /8 keeps the view fresh within a task, calibrated against the
	// paper's Table 6 increments volumes).
	k := float64(cnt) * 8
	return core.Load{
		core.Workload: flops / k / 8,
		core.Memory:   entries / k / 8,
	}
}
