package workload

import (
	"sync"

	"repro/internal/chaos"
)

// Recorded wraps an application so every cross-rank effect lands in a
// chaos trace: SendData emits a send event, HandleData a recv event,
// each Compute a start/done pair, and Outcome one final event per
// local rank carrying that rank's completed-compute count. The
// resulting JSONL stream is what `loadex validate` replays to check
// cross-run invariants (conservation, compute completion, quiescence).
//
// The wrapper interposes on both sides of the port — it hands the
// application a recording AppHost on Attach — so it works identically
// under every runtime and under forked hosting, where each process
// records only its local rank's half of each exchange.
func Recorded(app App, rec *chaos.Recorder) App {
	if rec == nil {
		return app
	}
	return &recordedApp{app: app, rec: rec}
}

type recordedApp struct {
	app  App
	rec  *chaos.Recorder
	host AppHost

	mu    sync.Mutex
	dones map[int]int64
}

// countDone tallies one completed compute for rank.
func (r *recordedApp) countDone(rank int) {
	r.mu.Lock()
	if r.dones == nil {
		r.dones = make(map[int]int64)
	}
	r.dones[rank]++
	r.mu.Unlock()
}

func (r *recordedApp) doneCount(rank int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dones[rank]
}

func (r *recordedApp) Attach(host AppHost) error {
	r.host = host
	return r.app.Attach(&recordedHost{AppHost: host, r: r})
}

func (r *recordedApp) HandleState(rank, from, kind int, payload any) {
	r.app.HandleState(rank, from, kind, payload)
}

// now stamps events with the host clock; before Attach it reads 0.
func (r *recordedApp) now() float64 {
	if r.host == nil {
		return 0
	}
	return r.host.Now()
}

func (r *recordedApp) HandleData(rank, from int, m DataMsg) {
	r.rec.Record(chaos.Event{
		Ev: chaos.EvRecv, Rank: rank, Peer: from,
		Kind: m.Kind, Node: m.Node, Count: m.Count,
		Work: m.Work, Size: m.Size, T: r.now(),
	})
	r.app.HandleData(rank, from, m)
}

func (r *recordedApp) TryStart(rank int) bool { return r.app.TryStart(rank) }
func (r *recordedApp) Blocked(rank int) bool  { return r.app.Blocked(rank) }
func (r *recordedApp) Done() bool             { return r.app.Done() }

func (r *recordedApp) Outcome(hr *AppReport) AppOutcome {
	out := r.app.Outcome(hr)
	if r.host != nil {
		for rank := 0; rank < r.host.N(); rank++ {
			if !r.host.Local(rank) {
				continue
			}
			r.rec.Record(chaos.Event{
				Ev: chaos.EvFinal, Rank: rank,
				Executed: r.doneCount(rank),
			})
		}
	}
	return out
}

// recordedHost interposes on the host surface the application sees:
// sends and computes are traced, everything else passes through.
type recordedHost struct {
	AppHost
	r *recordedApp
}

func (h *recordedHost) SendData(from, to int, m DataMsg) {
	h.r.rec.Record(chaos.Event{
		Ev: chaos.EvSend, Rank: from, Peer: to,
		Kind: m.Kind, Node: m.Node, Count: m.Count,
		Work: m.Work, Size: m.Size, T: h.r.now(),
	})
	h.AppHost.SendData(from, to, m)
}

func (h *recordedHost) Compute(rank int, seconds float64, done func()) {
	h.r.rec.Record(chaos.Event{Ev: chaos.EvStart, Rank: rank, Spin: seconds, T: h.r.now()})
	h.AppHost.Compute(rank, seconds, func() {
		h.r.rec.Record(chaos.Event{Ev: chaos.EvDone, Rank: rank, Spin: seconds, T: h.r.now()})
		h.r.countDone(rank)
		done()
	})
}
