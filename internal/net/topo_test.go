package net

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestSparseMeshDialsOnlyNeighborLinks is the mesh-construction check of
// the topology seam: a cluster on a sparse graph must open exactly one
// TCP connection per topology edge — non-neighbor pairs share no socket
// at all, so the link count scales with the degree, not with n.
func TestSparseMeshDialsOnlyNeighborLinks(t *testing.T) {
	for _, tc := range []struct {
		name  string
		edges int // expected total undirected links for n=8
	}{
		{"ring", 8},
		{"hypercube", 12},
		{"full", 28},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := core.NewTopology(tc.name, 8)
			if err != nil {
				t.Fatal(err)
			}
			cl, err := NewCluster(8, core.MechNaive, core.Config{Topo: topo, Threshold: core.Load{core.Workload: 1}}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			total := 0
			for r := 0; r < 8; r++ {
				got := cl.Node(r).Links()
				if want := topo.Degree(r); got != want {
					t.Errorf("rank %d holds %d links, topology degree is %d", r, got, want)
				}
				total += got
			}
			if total != 2*tc.edges {
				t.Errorf("cluster holds %d link endpoints, want %d (2 per edge)", total, 2*tc.edges)
			}
		})
	}
}

// TestSparseMeshRunsDecisions drives load changes and a decision over a
// ring mesh end to end: updates stay deliverable (no posts to missing
// peers) and assignments land only on the master's neighbors.
func TestSparseMeshRunsDecisions(t *testing.T) {
	topo, err := core.NewTopology("ring", 5)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	cl, err := NewCluster(5, core.MechNaive,
		core.Config{Topo: topo, Threshold: core.Load{core.Workload: 1}},
		Options{Logf: func(format string, args ...any) { missing = append(missing, format) }})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for r := 0; r < 5; r++ {
		cl.LocalChange(r, core.Load{core.Workload: float64(10 * (r + 1))})
	}
	dec, err := cl.DecideObserved(0, 40, 2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Assignments) != 2 {
		t.Fatalf("decision took %d assignments, want 2", len(dec.Assignments))
	}
	for _, a := range dec.Assignments {
		if p := int(a.Proc); p != 1 && p != 4 {
			t.Fatalf("master 0 assigned to non-neighbor %d on a 5-ring", p)
		}
	}
	if err := cl.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := cl.ExecutedItems(); got != 2 {
		t.Fatalf("executed %d items, want 2", got)
	}
	if len(missing) > 0 {
		t.Fatalf("transport logged diagnostics on a healthy sparse mesh: %v", missing)
	}
}
