package net

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// TestJobFrameRoundTrip pushes job-tagged frames through both codecs:
// the job id and the base-type payload must survive unchanged.
func TestJobFrameRoundTrip(t *testing.T) {
	stateMsg, err := JobStateMessage(7, 2, core.KindUpdate, core.UpdatePayload{Load: core.Load{42, -1}})
	if err != nil {
		t.Fatalf("JobStateMessage: %v", err)
	}
	msgs := []Message{
		JobDataMessage(1, 3, workload.DataMsg{Kind: 2, Node: 9, Peer: 1, Count: 4, Work: 12.5, Size: 80, Bytes: 640}),
		JobCtrlMessage(300, 0, termdet.Ctrl{Kind: termdet.CtrlToken, Count: -3, Black: true}),
		stateMsg,
	}
	for _, codec := range []Codec{BinaryCodec{}, JSONCodec{}} {
		for _, m := range msgs {
			body, err := codec.Encode(nil, m)
			if err != nil {
				t.Fatalf("%T encode %s: %v", codec, m.Type, err)
			}
			got, err := codec.Decode(body)
			if err != nil {
				t.Fatalf("%T decode %s: %v", codec, m.Type, err)
			}
			if got.Job != m.Job {
				t.Errorf("%T %s: job id %d, want %d", codec, m.Type, got.Job, m.Job)
			}
			// Compare the fields the base type carries.
			if got.Type != m.Type || got.From != m.From ||
				!reflect.DeepEqual(got.Data, m.Data) || got.Ctrl != m.Ctrl ||
				got.Kind != m.Kind {
				t.Errorf("%T %s roundtrip drift:\n got %+v\nwant %+v", codec, m.Type, got, m)
			}
		}
	}
}

// TestJobFrameClass asserts the chaos fault injector buckets job-tagged
// frames like their base types for both codecs — including the JSON
// path, where the type number is now multi-digit.
func TestJobFrameClass(t *testing.T) {
	cases := []struct {
		m    Message
		want chaos.Class
	}{
		{JobDataMessage(1, 0, workload.DataMsg{Kind: 1}), chaos.ClassData},
		{JobCtrlMessage(2, 0, termdet.Ctrl{Kind: termdet.CtrlAck}), chaos.ClassCtrl},
	}
	st, err := JobStateMessage(3, 0, core.KindUpdate, core.UpdatePayload{})
	if err != nil {
		t.Fatalf("JobStateMessage: %v", err)
	}
	cases = append(cases, struct {
		m    Message
		want chaos.Class
	}{st, chaos.ClassState})
	for _, codec := range []Codec{BinaryCodec{}, JSONCodec{}} {
		for _, c := range cases {
			body, err := codec.Encode(nil, c.m)
			if err != nil {
				t.Fatalf("%T encode: %v", codec, err)
			}
			if got := frameClass(body); got != c.want {
				t.Errorf("%T frameClass(%s) = %v, want %v", codec, c.m.Type, got, c.want)
			}
		}
	}
}

// TestJobMuxRouting wires a 2-rank mesh and checks that frames of two
// concurrent jobs land on their own ports only, and that frames for an
// unregistered job id are dropped without disturbing the mesh.
func TestJobMuxRouting(t *testing.T) {
	nodes, addrs := make([]*Node, 2), make([]string, 2)
	for r := 0; r < 2; r++ {
		nd, err := NewNode(r, 2, core.MechNaive, core.Config{}, Options{})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", r, err)
		}
		nodes[r] = nd
		if addrs[r], err = nd.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("Listen(%d): %v", r, err)
		}
	}
	defer func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *Node) {
				defer wg.Done()
				nd.Close()
			}(nd)
		}
		wg.Wait()
	}()
	errc := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) { errc <- nodes[r].Start(addrs) }(r)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("Start: %v", err)
		}
	}

	portA0, err := nodes[0].RegisterJob(1, 8)
	if err != nil {
		t.Fatalf("RegisterJob A0: %v", err)
	}
	portA1, err := nodes[1].RegisterJob(1, 8)
	if err != nil {
		t.Fatalf("RegisterJob A1: %v", err)
	}
	portB1, err := nodes[1].RegisterJob(2, 8)
	if err != nil {
		t.Fatalf("RegisterJob B1: %v", err)
	}
	if _, err := nodes[0].RegisterJob(1, 8); err == nil {
		t.Errorf("duplicate RegisterJob succeeded")
	}
	if _, err := nodes[0].RegisterJob(0, 8); err == nil {
		t.Errorf("RegisterJob(0) succeeded; ids start at 1")
	}

	// Job 1 data from rank 0 must reach job 1's port on rank 1 only.
	portA0.SendData(1, workload.DataMsg{Kind: 5, Work: 7})
	select {
	case d := <-portA1.DataCh:
		if d.From != 0 || d.Msg.Kind != 5 || d.Msg.Work != 7 {
			t.Errorf("job 1 data drifted: %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("job 1 data never arrived")
	}
	select {
	case d := <-portB1.DataCh:
		t.Errorf("job 2 port received job 1 data: %+v", d)
	default:
	}

	// Ctrl frames of job 2 reach job 2's port.
	jp, err := nodes[0].RegisterJob(2, 8)
	if err != nil {
		t.Fatalf("RegisterJob B0: %v", err)
	}
	jp.SendCtrl(1, termdet.Ctrl{Kind: termdet.CtrlAck})
	select {
	case c := <-portB1.CtrlCh:
		if c.From != 0 || c.Ctrl.Kind != termdet.CtrlAck {
			t.Errorf("job 2 ctrl drifted: %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("job 2 ctrl never arrived")
	}

	// Self-delivery stays local and in order.
	portA0.SendData(0, workload.DataMsg{Kind: 9})
	select {
	case d := <-portA0.DataCh:
		if d.From != 0 || d.Msg.Kind != 9 {
			t.Errorf("self-delivery drifted: %+v", d)
		}
	case <-time.After(time.Second):
		t.Fatalf("self-delivery never arrived")
	}

	// A frame for an unregistered job is dropped; the mesh stays alive.
	nodes[1].UnregisterJob(2)
	jp.SendCtrl(1, termdet.Ctrl{Kind: termdet.CtrlAck})
	portA0.SendData(1, workload.DataMsg{Kind: 6})
	select {
	case d := <-portA1.DataCh:
		if d.Msg.Kind != 6 {
			t.Errorf("post-drop data drifted: %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("mesh wedged after unknown-job frame")
	}

	// Per-port counters tally the job's own sends only.
	if c := portA0.Counters(); c.DataMsgs != 3 {
		t.Errorf("port A0 data msgs %d, want 3", c.DataMsgs)
	}
	if c := portB1.Counters(); c.DataMsgs != 0 || c.CtrlMsgs != 0 {
		t.Errorf("port B1 tallied traffic it never sent: %+v", c)
	}
}
