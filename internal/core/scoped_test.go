package core

import (
	"testing"
	"testing/quick"
)

func TestScopedSnapshotConsultsOnlyScope(t *testing.T) {
	net, exs := mkSnapshot(t, 6, nil)
	done := false
	// Rank 0 snapshots only {1, 2}.
	exs[0].AcquireScoped(net.ctx(0), []int32{1, 2}, func() {
		done = true
		exs[0].Commit(net.ctx(0), nil)
	})
	net.drain(1000)
	if !done {
		t.Fatal("scoped snapshot never completed")
	}
	// Ranks 3-5 never saw a protocol message and were never busy.
	for r := 3; r < 6; r++ {
		if exs[r].Busy() {
			t.Fatalf("out-of-scope rank %d is busy", r)
		}
		if exs[r].Stats().MaxConcurrentSnapshots != 0 {
			t.Fatalf("out-of-scope rank %d observed a snapshot", r)
		}
	}
	// Message economy: one round over a scope of 2 costs 3*2 messages.
	total := net.sent[KindStartSnp] + net.sent[KindSnp] + net.sent[KindEndSnp]
	if total != 6 {
		t.Fatalf("scoped snapshot used %d messages, want 6", total)
	}
}

func TestScopedSnapshotViewFreshness(t *testing.T) {
	net, exs := mkSnapshot(t, 5, nil)
	// Give rank 3 some load that rank 0 cannot know yet.
	exs[3].LocalChange(net.ctx(3), Load{Workload: 55}, false)
	saw := -1.0
	exs[0].AcquireScoped(net.ctx(0), []int32{3}, func() {
		saw = exs[0].View().Metric(3, Workload)
		exs[0].Commit(net.ctx(0), nil)
	})
	net.drain(1000)
	if saw != 30+55 {
		t.Fatalf("scoped snapshot saw %v for rank 3, want 85 (init 30 + 55)", saw)
	}
}

func TestScopedSnapshotEmptyAndSelfScope(t *testing.T) {
	net, exs := mkSnapshot(t, 3, nil)
	ran := false
	exs[1].AcquireScoped(net.ctx(1), []int32{}, func() { ran = true })
	if !ran {
		t.Fatal("empty scope must complete synchronously")
	}
	exs[1].Commit(net.ctx(1), nil)
	ran = false
	// Scope containing only the initiator normalizes to empty.
	exs[1].AcquireScoped(net.ctx(1), []int32{1}, func() { ran = true })
	if !ran {
		t.Fatal("self-only scope must complete synchronously")
	}
	exs[1].Commit(net.ctx(1), nil)
	if exs[1].Busy() {
		t.Fatal("degenerate scope left the process busy")
	}
	net.drain(100)
}

func TestScopedDisjointSnapshotsRunConcurrently(t *testing.T) {
	// Disjoint scopes must not serialize: this is the "weaker
	// synchronization" the paper's §5 asks for.
	net, exs := mkSnapshot(t, 6, nil)
	var order []int
	exs[0].AcquireScoped(net.ctx(0), []int32{1, 2}, func() {
		order = append(order, 0)
		exs[0].Commit(net.ctx(0), nil)
	})
	exs[3].AcquireScoped(net.ctx(3), []int32{4, 5}, func() {
		order = append(order, 3)
		exs[3].Commit(net.ctx(3), nil)
	})
	// Deliver rank 3's snapshot completely before rank 0's: with full
	// snapshots the rank-0 leader election would delay rank 3.
	for net.deliverNext(func(m fakeMsg) bool { return m.from >= 3 || m.to >= 3 }) {
	}
	if len(order) != 1 || order[0] != 3 {
		t.Fatalf("disjoint snapshot was serialized: order=%v", order)
	}
	net.drain(1000)
	if len(order) != 2 {
		t.Fatalf("snapshots incomplete: %v", order)
	}
	if exs[3].Stats().SnapshotRestarts != 0 {
		t.Fatal("disjoint scope should never restart")
	}
}

func TestScopedOverlappingSnapshotsSequentialize(t *testing.T) {
	// Overlapping scopes share rank 2: the election must serialize them
	// and the later one must observe the earlier commit.
	net, exs := mkSnapshot(t, 5, nil)
	var order []int
	exs[0].AcquireScoped(net.ctx(0), []int32{2, 3}, func() {
		order = append(order, 0)
		exs[0].Commit(net.ctx(0), []Assignment{{Proc: 2, Delta: Load{Workload: 40}}})
	})
	saw := -1.0
	exs[1].AcquireScoped(net.ctx(1), []int32{2, 4}, func() {
		order = append(order, 1)
		saw = exs[1].View().Metric(2, Workload)
		exs[1].Commit(net.ctx(1), nil)
	})
	net.drain(5000)
	if len(order) != 2 {
		t.Fatalf("snapshots incomplete: %v", order)
	}
	if order[0] != 0 {
		t.Fatalf("rank 0 should win the election: %v", order)
	}
	if saw != 20+40 {
		t.Fatalf("overlapping snapshot saw %v for rank 2, want 60 (init 20 + 40)", saw)
	}
}

func TestScopedSnapshotQuiescenceProperty(t *testing.T) {
	// Random scoped initiations always terminate with nobody busy.
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%6 + 3
		k := int(kRaw)%4 + 1
		net := newFakeNet(n)
		exs := make([]*Snapshot, n)
		for r := 0; r < n; r++ {
			x := NewSnapshot(n, r, Config{})
			net.exs[r] = x
			exs[r] = x
			x.Init(net.ctx(r), Load{})
		}
		completions := 0
		rng := seed
		for i := 0; i < k; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			r := int(rng>>33) % n
			if exs[r].initiating || exs[r].Busy() {
				continue
			}
			// Random scope of 1..n-1 members.
			var scope []int32
			for p := 0; p < n; p++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				if p != r && rng>>62 != 0 {
					scope = append(scope, int32(p))
				}
			}
			if scope == nil {
				scope = []int32{int32((r + 1) % n)}
			}
			exs[r].AcquireScoped(net.ctx(r), scope, func() {
				completions++
				exs[r].Commit(net.ctx(r), nil)
			})
		}
		net.drain(100000)
		for r := 0; r < n; r++ {
			if exs[r].Busy() {
				return false
			}
		}
		return completions > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
