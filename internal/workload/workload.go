// Package workload makes the application driven on top of the
// load-exchange mechanisms a first-class, transport-agnostic value.
//
// The paper compares exchange mechanisms under one application workload;
// this package is where that workload lives. A Workload compiles a set
// of Params into one Program per rank — a small event script of local
// load changes, dynamic-decision points (slave counts and work sizes)
// and No_more_master announcements — plus the rank's initial load and an
// execution-speed factor. Every runtime (internal/sim, internal/live,
// internal/net) implements the Driver interface once and can then run
// any registered scenario with any mechanism, so the cross-runtime
// equivalence suite extends to new scenarios for free.
//
// Scenarios are registered by name (see scenarios.go): quickstart,
// burst, ramp, hetero and straggler ship built in; `loadex run` exposes
// the scenario × mechanism × runtime matrix on the command line.
package workload

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// Params shapes a scenario instance. Scenarios interpret the base
// values freely (burst promotes every rank to master, ramp shrinks the
// per-decision work monotonically, …) but always derive their programs
// deterministically from Params alone, so separately started processes
// of one cluster compute identical programs.
type Params struct {
	// Procs is the cluster size (≥ 2).
	Procs int
	// Masters is the base master count: ranks [0,Masters) take dynamic
	// decisions (scenarios may widen this, e.g. burst).
	Masters int
	// Decisions is the base number of decisions per master.
	Decisions int
	// Work is the base work-unit total distributed per decision.
	Work float64
	// Slaves is the number of least-loaded slaves selected per decision.
	Slaves int
	// Spin is the nominal wall-clock execution time per work item; the
	// executing rank scales it by its Program.Speed factor.
	Spin time.Duration
	// Term names the termination-detection protocol for application
	// scenarios (internal/termdet; empty = termdet.Default). Program
	// scenarios quiesce through their own Done announcements and ignore
	// it.
	Term string
	// Record, when non-nil, streams per-rank trace events (sends,
	// receives, computes, finals) for `loadex validate`. Only
	// application scenarios honour it here — RunAppScenario wraps the
	// application with Recorded; program scenarios trace through their
	// runtime hosts instead. It never travels to forked processes:
	// each `loadex node` opens its own recorder.
	Record *chaos.Recorder
}

// DefaultParams returns the quickstart-sized defaults.
func DefaultParams() Params {
	return Params{Procs: 8, Masters: 3, Decisions: 4, Work: 120, Slaves: 3, Spin: time.Millisecond}
}

// Normalize fills zero structural fields from DefaultParams and clamps
// Masters to Procs. Spin is never touched: zero spin (instant work
// items) is a meaningful request, not an omission. It is idempotent.
func (p *Params) Normalize() {
	d := DefaultParams()
	if p.Procs == 0 {
		p.Procs = d.Procs
	}
	if p.Masters == 0 {
		p.Masters = d.Masters
	}
	if p.Decisions == 0 {
		p.Decisions = d.Decisions
	}
	if p.Work == 0 {
		p.Work = d.Work
	}
	if p.Slaves == 0 {
		p.Slaves = d.Slaves
	}
	if p.Masters > p.Procs {
		p.Masters = p.Procs
	}
}

// Validate reports whether the params describe a runnable cluster.
func (p Params) Validate() error {
	if p.Procs < 2 {
		return fmt.Errorf("workload: need at least 2 processes, got %d", p.Procs)
	}
	if p.Masters < 1 || p.Masters > p.Procs {
		return fmt.Errorf("workload: masters %d out of range [1,%d]", p.Masters, p.Procs)
	}
	if p.Decisions < 1 {
		return fmt.Errorf("workload: need at least 1 decision per master, got %d", p.Decisions)
	}
	if p.Slaves < 1 {
		return fmt.Errorf("workload: need at least 1 slave per decision, got %d", p.Slaves)
	}
	if p.Work <= 0 {
		return fmt.Errorf("workload: work per decision must be positive, got %g", p.Work)
	}
	if p.Spin < 0 {
		return fmt.Errorf("workload: negative spin %s", p.Spin)
	}
	return nil
}

// Op is the kind of one program step.
type Op int

// The program step kinds.
const (
	// OpDecide takes one dynamic decision: acquire a coherent view,
	// distribute Work units over the Slaves least-loaded peers, commit
	// the reservation and ship the work.
	OpDecide Op = iota
	// OpLocalChange applies Delta to the rank's own load (a spontaneous
	// variation, not slave work).
	OpLocalChange
	// OpNoMoreMaster announces the rank will never decide again (§2.3).
	OpNoMoreMaster
)

func (o Op) String() string {
	switch o {
	case OpDecide:
		return "decide"
	case OpLocalChange:
		return "local_change"
	case OpNoMoreMaster:
		return "no_more_master"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Step is one event of a rank's program. Only the fields relevant to Op
// are used.
type Step struct {
	Op Op
	// Work and Slaves shape an OpDecide step.
	Work   float64
	Slaves int
	// Delta is the OpLocalChange load variation.
	Delta core.Load
}

// Program is one rank's share of a scenario: its initial load (known to
// every process, per the paper's static-mapping convention), an
// execution-speed factor and the ordered event script. Ranks execute
// their programs concurrently; steps within one program are sequential.
type Program struct {
	// Initial is the rank's load at Init time.
	Initial core.Load
	// Speed multiplies the execution time of work items this rank
	// executes (1 = nominal, 2 = twice as slow; 0 is treated as 1).
	Speed float64
	// Steps is the rank's event script.
	Steps []Step
}

// Workload is a named scenario: a deterministic compiler from Params to
// per-rank programs.
type Workload interface {
	// Name is the registry key ("quickstart", "burst", …).
	Name() string
	// Describe returns a one-line description for catalogues and usage
	// messages.
	Describe() string
	// Programs compiles the scenario for p (normalized first), returning
	// one program per rank.
	Programs(p Params) ([]Program, error)
}

// DecisionCount returns the total number of OpDecide steps across all
// programs.
func DecisionCount(progs []Program) int {
	total := 0
	for _, prog := range progs {
		for _, st := range prog.Steps {
			if st.Op == OpDecide {
				total++
			}
		}
	}
	return total
}

// TotalInitial sums the initial loads of all ranks.
func TotalInitial(progs []Program) core.Load {
	var total core.Load
	for _, prog := range progs {
		total = total.Add(prog.Initial)
	}
	return total
}

// ExpectedFinals returns the true final load of every rank once the
// cluster quiesces: initial plus the rank's own OpLocalChange deltas
// (work items add and then subtract the same load, so they cancel).
func ExpectedFinals(progs []Program) []core.Load {
	finals := make([]core.Load, len(progs))
	for r, prog := range progs {
		finals[r] = prog.Initial
		for _, st := range prog.Steps {
			if st.Op == OpLocalChange {
				finals[r] = finals[r].Add(st.Delta)
			}
		}
	}
	return finals
}

// HasLocalChanges reports whether any program contains an OpLocalChange
// step (such scenarios void the simple item-count conservation window).
func HasLocalChanges(progs []Program) bool {
	for _, prog := range progs {
		for _, st := range prog.Steps {
			if st.Op == OpLocalChange {
				return true
			}
		}
	}
	return false
}

// ConstantShare returns the per-item work share if every decision in the
// program set distributes the same share, and whether one exists. The
// snapshot conservation window is only expressible in work-item counts
// when the share is constant.
func ConstantShare(progs []Program) (float64, bool) {
	n := len(progs)
	share, found := 0.0, false
	for _, prog := range progs {
		for _, st := range prog.Steps {
			if st.Op != OpDecide {
				continue
			}
			k := st.Slaves
			if k > n-1 {
				k = n - 1
			}
			if k < 1 {
				continue
			}
			s := st.Work / float64(k)
			if !found {
				share, found = s, true
			} else if s != share {
				return 0, false
			}
		}
	}
	return share, found
}

// SpeedFactor returns the program's execution-speed factor, defaulting
// to 1.
func (prog Program) SpeedFactor() float64 {
	if prog.Speed <= 0 {
		return 1
	}
	return prog.Speed
}

// Setup splits a program set into the per-rank initial-load and
// speed-factor vectors the runtimes seed at cluster construction time.
func Setup(progs []Program) (initial []core.Load, speed []float64) {
	initial = make([]core.Load, len(progs))
	speed = make([]float64, len(progs))
	for r, prog := range progs {
		initial[r] = prog.Initial
		speed[r] = prog.SpeedFactor()
	}
	return initial, speed
}

// InitExchanger initializes one rank's mechanism for a program set: its
// own initial load via Init, plus every peer's initial load seeded
// directly into the view (core.SeedView).
func InitExchanger(ctx core.Context, exch core.Exchanger, rank int, progs []Program) {
	initial, _ := Setup(progs)
	exch.Init(ctx, initial[rank])
	core.SeedView(exch, rank, initial)
}
