package core

// Diffusion is iterative neighbor-wise load averaging in the style of
// Demirel & Sbalzarini's diffusion balancing on arbitrary graph
// topologies — the second topology-native tenant of the neighbor
// seam. Whenever a rank's own load drifts past the threshold it sends
// its whole view vector to every neighbor; a receiver takes the
// sender's own entry verbatim (the sender knows it exactly) and
// averages every third-party entry with its own estimate. Repeated
// exchanges diffuse load information across the graph like heat: each
// hop halves the estimation error contributed by remote ranks, so the
// view quality degrades gracefully with graph distance instead of
// falling off a cliff.
//
// Like naive and gossip it has no reservation step; unlike them its
// messages grow with n (a full view per frame), trading bandwidth for
// per-hop convergence — the dissemination-cost trade-off BENCH_pr8
// curves record.
type Diffusion struct {
	n, rank  int
	cfg      Config
	my       Load
	lastSent Load
	view     *View
	nbrs     []int
	stats    Stats
}

// NewDiffusion constructs the diffusion mechanism.
func NewDiffusion(n, rank int, cfg Config) *Diffusion {
	return &Diffusion{n: n, rank: rank, cfg: cfg, view: NewView(n),
		nbrs: neighborRanks(cfg.Topo, n, rank)}
}

// Name implements Exchanger.
func (x *Diffusion) Name() string { return string(MechDiffusion) }

// Init implements Exchanger.
func (x *Diffusion) Init(ctx Context, initial Load) {
	x.my = initial
	x.lastSent = initial
	x.view.Set(x.rank, initial)
}

// LocalChange implements Exchanger: every variation counts (no
// reservation mechanism), and a drift past the threshold triggers one
// diffusion exchange with all neighbors.
func (x *Diffusion) LocalChange(ctx Context, delta Load, asSlave bool) {
	x.my = x.my.Add(delta)
	x.view.Set(x.rank, x.my)
	if !x.my.Sub(x.lastSent).ExceedsAny(x.cfg.Threshold) {
		return
	}
	x.lastSent = x.my
	payload := DiffusePayload{Loads: x.view.Snapshot()}
	bytes := DiffuseBytes(x.n)
	for _, to := range x.nbrs {
		ctx.Send(to, KindDiffuse, payload, bytes)
		x.stats.UpdatesSent++
	}
}

// Local implements Exchanger.
func (x *Diffusion) Local() Load { return x.my }

// View implements Exchanger.
func (x *Diffusion) View() *View { return x.view }

// Acquire implements Exchanger: the diffused view is always ready.
func (x *Diffusion) Acquire(ctx Context, ready func()) { ready() }

// Commit implements Exchanger: like the naive scheme, nothing is
// published at decision time; only the master's own estimates move.
func (x *Diffusion) Commit(ctx Context, assignments []Assignment) {
	for _, a := range assignments {
		if int(a.Proc) == x.rank {
			x.my = x.my.Add(a.Delta)
			x.view.Set(x.rank, x.my)
			continue
		}
		x.view.AddTo(int(a.Proc), a.Delta)
	}
}

// NoMoreMaster implements Exchanger: a no-op — diffusion needs every
// rank as an averaging relay, so nothing can be pruned.
func (x *Diffusion) NoMoreMaster(ctx Context) {}

// HandleMessage implements Exchanger.
func (x *Diffusion) HandleMessage(ctx Context, from int, kind int, payload any) {
	if kind != KindDiffuse {
		return
	}
	p := payload.(DiffusePayload)
	if len(p.Loads) != x.n {
		return // malformed vector (hostile wire input): ignore
	}
	for r := 0; r < x.n; r++ {
		switch r {
		case x.rank:
			// Never let a neighbor's estimate of *me* overwrite my
			// exact local value.
		case from:
			// The sender knows its own load exactly.
			x.view.Set(from, p.Loads[from])
		default:
			mine := x.view.Load(r)
			theirs := p.Loads[r]
			var avg Load
			for m := range avg {
				avg[m] = (mine[m] + theirs[m]) / 2
			}
			x.view.Set(r, avg)
		}
	}
}

// Busy implements Exchanger: never blocks the application.
func (x *Diffusion) Busy() bool { return false }

// Stats implements Exchanger.
func (x *Diffusion) Stats() Stats { return x.stats }
