package net

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sim"
)

// The cross-runtime equivalence suite runs one seeded workload — three
// masters each taking several dynamic decisions of 90 work units over
// their 3 least-loaded peers — under all three drivers of the core
// state machines:
//
//   - internal/sim: the deterministic discrete-event simulator,
//   - internal/live: goroutines and channels,
//   - internal/net: real TCP sockets on localhost (this package),
//
// and asserts the mechanism-level invariants agree:
//
//  1. selection coherence — every slave selection targets exactly the
//     processes the master believed least-loaded per its recorded view
//     (re-derived independently with core.LeastLoaded);
//  2. snapshot conservation — the total load a snapshot view reports
//     lies within the committed-minus-completed window spanned by the
//     acquire..ready interval, and the final snapshot after quiescence
//     sees exactly zero everywhere (the cut conserves total load);
//  3. count equivalence — executed work items, reservations and
//     snapshots initiated are identical across the three runtimes.
const (
	eqProcs     = 6
	eqMasters   = 3
	eqDecisions = 3
	eqWork      = 90.0
	eqSlaves    = 3
	eqShare     = eqWork / eqSlaves
)

// eqDecision is one recorded decision plus the conservation window
// samples: assigned/executed item counts at acquire time and at ready
// time.
type eqDecision struct {
	core.Decision
	c0, d0, c1, d1 int64
}

// eqResult is everything one runtime reports for the workload.
type eqResult struct {
	decisions  []eqDecision
	executed   []int64
	finalViews [][]core.Load // one coherent view per rank, post-quiescence
	reserved   int64         // Master_To_All broadcasts (increments)
	snapshots  int64         // snapshots initiated (snapshot)
}

func TestCrossRuntimeEquivalence(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			results := map[string]*eqResult{
				"sim":  runEqSim(t, mech),
				"live": runEqLive(t, mech),
				"net":  runEqNet(t, mech),
			}
			for name, res := range results {
				checkEqInvariants(t, name, mech, res)
			}
			// Count equivalence across runtimes.
			want := results["sim"]
			for _, name := range []string{"live", "net"} {
				got := results[name]
				if a, b := totalItems(got.executed), totalItems(want.executed); a != b {
					t.Errorf("%s executed %d items, sim executed %d", name, a, b)
				}
				if got.reserved != want.reserved {
					t.Errorf("%s sent %d reservations, sim sent %d", name, got.reserved, want.reserved)
				}
				if got.snapshots != want.snapshots {
					t.Errorf("%s initiated %d snapshots, sim initiated %d", name, got.snapshots, want.snapshots)
				}
			}
		})
	}
}

func totalItems(per []int64) int64 {
	var s int64
	for _, v := range per {
		s += v
	}
	return s
}

// checkEqInvariants asserts the per-runtime invariants on one result.
func checkEqInvariants(t *testing.T, name string, mech core.Mech, res *eqResult) {
	t.Helper()
	if got, want := len(res.decisions), eqMasters*eqDecisions; got != want {
		t.Fatalf("%s: recorded %d decisions, want %d", name, got, want)
	}
	if got, want := totalItems(res.executed), int64(eqMasters*eqDecisions*eqSlaves); got != want {
		t.Errorf("%s: executed %d work items, want %d", name, got, want)
	}
	const eps = 1e-9
	for i, dec := range res.decisions {
		// Invariant 1: the assignment targets re-derive from the view.
		sel := core.LeastLoaded(core.ViewOf(dec.View), core.Workload, dec.Master, eqSlaves)
		if len(sel) != len(dec.Assignments) {
			t.Fatalf("%s decision %d: %d assignments, want %d", name, i, len(dec.Assignments), len(sel))
		}
		for j, a := range dec.Assignments {
			if int(a.Proc) != sel[j] {
				t.Errorf("%s decision %d (master %d): assignment %d targets %d, least-loaded per view is %d (view %v)",
					name, i, dec.Master, j, a.Proc, sel[j], workloads(dec.View))
			}
			if math.Abs(a.Delta[core.Workload]-eqShare) > eps {
				t.Errorf("%s decision %d: share %v, want %v", name, i, a.Delta[core.Workload], eqShare)
			}
		}
		// Invariant 2 (snapshot only): the view total lies in the
		// committed-minus-completed window of the acquire..ready
		// interval. Counter placement (assigned leads Commit, executed
		// trails the load decrement) makes these bounds sound even
		// under live concurrency.
		if mech == core.MechSnapshot {
			var sum float64
			for _, l := range dec.View {
				sum += l[core.Workload]
			}
			lo := float64(dec.c0-dec.d1) * eqShare
			hi := float64(dec.c1-dec.d0) * eqShare
			if sum < lo-eps || sum > hi+eps {
				t.Errorf("%s decision %d (master %d): snapshot total %v outside conservation window [%v, %v] (c0=%d d0=%d c1=%d d1=%d)",
					name, i, dec.Master, sum, lo, hi, dec.c0, dec.d0, dec.c1, dec.d1)
			}
		}
	}
	// Invariant 2, final cut: after quiescence every coherent view must
	// report zero load everywhere — total load is conserved and all
	// work is gone.
	for r, view := range res.finalViews {
		for p, l := range view {
			if math.Abs(l[core.Workload]) > eps {
				t.Errorf("%s: final view of rank %d sees %v workload on %d, want 0", name, r, l[core.Workload], p)
			}
		}
	}
}

func workloads(view []core.Load) []float64 {
	out := make([]float64, len(view))
	for i, l := range view {
		out[i] = l[core.Workload]
	}
	return out
}

// ---- live and net drivers ------------------------------------------------
//
// Both clusters expose the same shape (they both return core.Decision),
// so one generic driver runs them.

type eqCluster interface {
	DecideObserved(master int, totalWork float64, slaves int, spin time.Duration) (core.Decision, error)
	AssignedItems() int64
	ExecutedItems() int64
	Executed(r int) int64
	AcquireView(r int) ([]core.Load, error)
	View(r int) []core.Load
	Stats(r int) core.Stats
	Drain(timeout time.Duration) error
	Stop()
}

func runEqLive(t *testing.T, mech core.Mech) *eqResult {
	t.Helper()
	cl, err := live.NewCluster(eqProcs, mech, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	return driveEq(t, "live", mech, cl)
}

func runEqNet(t *testing.T, mech core.Mech) *eqResult {
	t.Helper()
	cl, err := NewCluster(eqProcs, mech, core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	return driveEq(t, "net", mech, cl)
}

// driveEq runs the workload on a live-or-net cluster: eqMasters
// goroutines each take eqDecisions decisions, sampling the conservation
// window around each.
func driveEq(t *testing.T, name string, mech core.Mech, cl eqCluster) *eqResult {
	t.Helper()
	res := &eqResult{}
	decCh := make(chan eqDecision, eqMasters*eqDecisions)
	errCh := make(chan error, eqMasters)
	for master := 0; master < eqMasters; master++ {
		go func(m int) {
			for i := 0; i < eqDecisions; i++ {
				c0, d0 := cl.AssignedItems(), cl.ExecutedItems()
				dec, err := cl.DecideObserved(m, eqWork, eqSlaves, 200*time.Microsecond)
				if err != nil {
					errCh <- err
					return
				}
				rec := eqDecision{Decision: dec, c0: c0, d0: d0}
				rec.c1, rec.d1 = cl.AssignedItems(), cl.ExecutedItems()
				decCh <- rec
			}
			errCh <- nil
		}(master)
	}
	for m := 0; m < eqMasters; m++ {
		if err := <-errCh; err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	close(decCh)
	for dec := range decCh {
		res.decisions = append(res.decisions, dec)
	}
	if err := cl.Drain(10 * time.Second); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for r := 0; r < eqProcs; r++ {
		res.executed = append(res.executed, cl.Executed(r))
	}
	for m := 0; m < eqMasters; m++ {
		st := cl.Stats(m)
		res.reserved += st.ReservationsSent
		res.snapshots += st.SnapshotsInitiated
	}
	// Final coherent views. The snapshot mechanism only refreshes views
	// inside a snapshot, so acquire one per rank; the maintained
	// mechanisms (zero threshold: every change broadcast) converge once
	// the trailing updates land, so poll briefly before reading.
	if mech == core.MechSnapshot {
		for r := 0; r < eqProcs; r++ {
			view, err := cl.AcquireView(r)
			if err != nil {
				t.Fatalf("%s: final acquire on %d: %v", name, r, err)
			}
			res.finalViews = append(res.finalViews, view)
		}
	} else {
		waitViewsZero(t, cl.View, eqProcs, 5*time.Second)
		for r := 0; r < eqProcs; r++ {
			res.finalViews = append(res.finalViews, cl.View(r))
		}
	}
	return res
}

// ---- sim driver ----------------------------------------------------------

// eqSimApp drives the same workload through the discrete-event
// simulator: masters start decisions from TryStart, work items travel
// the data channel and execute as simulated compute tasks.
type eqSimApp struct {
	rt       *sim.Runtime
	exs      []core.Exchanger
	started  []int
	inflight []bool
	executed []int64
	assigned int64
	done     int64
	res      *eqResult
	t        *testing.T
}

const eqKindWork = 1000 // data-channel message kind for work items

type eqWorkPayload struct {
	Load core.Load
	Dur  sim.Duration
}

// eqSimCtx adapts the sim runtime to core.Context for one rank.
type eqSimCtx struct {
	app  *eqSimApp
	rank int
}

func (c eqSimCtx) Rank() int    { return c.rank }
func (c eqSimCtx) N() int       { return len(c.app.exs) }
func (c eqSimCtx) Now() float64 { return float64(c.app.rt.Now()) }
func (c eqSimCtx) Send(to int, kind int, payload any, bytes float64) {
	c.app.rt.Send(&sim.Message{
		From: c.rank, To: to, Channel: sim.StateChannel,
		Kind: kind, Payload: payload, Bytes: bytes,
	})
}
func (c eqSimCtx) Broadcast(kind int, payload any, bytes float64) {
	for to := 0; to < len(c.app.exs); to++ {
		if to != c.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

func (a *eqSimApp) HandleState(p *sim.Proc, m *sim.Message) {
	a.exs[p.ID].HandleMessage(eqSimCtx{a, p.ID}, m.From, m.Kind, m.Payload)
}

func (a *eqSimApp) HandleData(p *sim.Proc, m *sim.Message) {
	w := m.Payload.(eqWorkPayload)
	ctx := eqSimCtx{a, p.ID}
	a.exs[p.ID].LocalChange(ctx, w.Load, true)
	a.rt.Compute(p, w.Dur, func() {
		neg := w.Load
		for i := range neg {
			neg[i] = -neg[i]
		}
		a.exs[p.ID].LocalChange(ctx, neg, true)
		a.executed[p.ID]++
		a.done++
	})
}

func (a *eqSimApp) Blocked(p *sim.Proc) bool { return a.exs[p.ID].Busy() }

func (a *eqSimApp) TryStart(p *sim.Proc) bool {
	r := p.ID
	if r >= eqMasters || a.started[r] >= eqDecisions || a.inflight[r] {
		return false
	}
	a.inflight[r] = true
	ctx := eqSimCtx{a, r}
	dec := eqDecision{c0: a.assigned, d0: a.done}
	a.exs[r].Acquire(ctx, func() {
		dec.c1, dec.d1 = a.assigned, a.done
		dec.Decision = core.PlanDecision(a.exs[r].View(), r, eqSlaves, eqWork)
		a.assigned += int64(len(dec.Assignments))
		a.exs[r].Commit(ctx, dec.Assignments)
		for _, asg := range dec.Assignments {
			a.rt.Send(&sim.Message{
				From: r, To: int(asg.Proc), Channel: sim.DataChannel,
				Kind: eqKindWork, Payload: eqWorkPayload{Load: asg.Delta, Dur: 3 * sim.Millisecond},
				Bytes: 64,
			})
		}
		a.started[r]++
		a.inflight[r] = false
		a.res.decisions = append(a.res.decisions, dec)
		// A committed decision may enable the next one; the engine has
		// no pending event for an idle master, so request a wakeup.
		a.rt.Wake(r)
	})
	return true
}

func runEqSim(t *testing.T, mech core.Mech) *eqResult {
	t.Helper()
	res := &eqResult{}
	eng := sim.NewEngine()
	app := &eqSimApp{
		started:  make([]int, eqProcs),
		inflight: make([]bool, eqProcs),
		executed: make([]int64, eqProcs),
		res:      res,
		t:        t,
	}
	app.rt = sim.NewRuntime(eng, eqProcs, sim.DefaultNetwork(), app)
	for r := 0; r < eqProcs; r++ {
		exch, err := core.New(mech, eqProcs, r, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		app.exs = append(app.exs, exch)
		exch.Init(eqSimCtx{app, r}, core.Load{})
	}
	app.rt.Start()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	res.executed = app.executed
	for m := 0; m < eqMasters; m++ {
		st := app.exs[m].Stats()
		res.reserved += st.ReservationsSent
		res.snapshots += st.SnapshotsInitiated
	}
	// Final coherent views, post-quiescence (the engine drained: all
	// work executed, all messages delivered).
	for r := 0; r < eqProcs; r++ {
		var view []core.Load
		got := false
		app.exs[r].Acquire(eqSimCtx{app, r}, func() {
			view = app.exs[r].View().Snapshot()
			app.exs[r].Commit(eqSimCtx{app, r}, nil)
			got = true
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatalf("sim: final acquire on rank %d never completed", r)
		}
		res.finalViews = append(res.finalViews, view)
	}
	return res
}

// TestCrossRuntimeEquivalenceScale is a heavier confidence pass over
// the in-process TCP runtime only; skipped in -short mode.
func TestCrossRuntimeEquivalenceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy TCP workload")
	}
	for _, mech := range core.Mechanisms() {
		cl, err := NewCluster(8, mech, core.Config{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 4)
		for master := 0; master < 4; master++ {
			go func(m int) {
				for i := 0; i < 5; i++ {
					dec, err := cl.DecideObserved(m, 120, 4, 100*time.Microsecond)
					if err == nil {
						sel := core.LeastLoaded(core.ViewOf(dec.View), core.Workload, m, 4)
						for j, a := range dec.Assignments {
							if int(a.Proc) != sel[j] {
								err = fmt.Errorf("mech %s master %d: selection %v diverges from view", mech, m, dec.Assignments)
								break
							}
						}
					}
					if err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}(master)
		}
		for i := 0; i < 4; i++ {
			if err := <-errCh; err != nil {
				t.Error(err)
			}
		}
		if err := cl.Drain(20 * time.Second); err != nil {
			t.Error(err)
		}
		cl.Stop()
	}
}
