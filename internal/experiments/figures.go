package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tree"
)

// ---- Figure 1 ------------------------------------------------------------

// fig1Fabric is a minimal deterministic in-memory fabric used to replay
// the Figure 1 scenario outside the full solver.
type fig1Fabric struct {
	n     int
	exs   []core.Exchanger
	queue []fig1Msg
	now   float64
}

type fig1Msg struct {
	from, to, kind int
	payload        any
}

type fig1Ctx struct {
	f    *fig1Fabric
	rank int
}

func (c *fig1Ctx) Rank() int    { return c.rank }
func (c *fig1Ctx) N() int       { return c.f.n }
func (c *fig1Ctx) Now() float64 { return c.f.now }
func (c *fig1Ctx) Send(to int, kind int, payload any, bytes float64) {
	c.f.queue = append(c.f.queue, fig1Msg{c.rank, to, kind, payload})
}
func (c *fig1Ctx) Broadcast(kind int, payload any, bytes float64) {
	for to := 0; to < c.f.n; to++ {
		if to != c.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

func (f *fig1Fabric) drain() {
	for len(f.queue) > 0 {
		m := f.queue[0]
		f.queue = f.queue[1:]
		f.now += 0.001
		f.exs[m.to].HandleMessage(&fig1Ctx{f, m.to}, m.from, m.kind, m.payload)
	}
}

// Figure1 replays the paper's Figure 1 scenario for one mechanism and
// reports what P1 believed about P2's load at its own decision time,
// after P0 had already assigned work to the busy P2. Under the naive
// mechanism the belief is stale; under increments the Master_To_All has
// corrected it; under snapshots the sequentialized snapshot observes it.
func Figure1(w io.Writer, mech core.Mech) error {
	const n = 3
	f := &fig1Fabric{n: n, exs: make([]core.Exchanger, n)}
	for r := 0; r < n; r++ {
		x, err := core.New(mech, n, r, core.Config{Threshold: core.Load{core.Workload: 1}})
		if err != nil {
			return err
		}
		f.exs[r] = x
		x.Init(&fig1Ctx{f, r}, core.Load{})
	}
	fmt.Fprintf(w, "Figure 1 scenario, mechanism = %s\n", mech)
	fmt.Fprintln(w, "  t1: P2 starts a long task (treats no further message until done)")
	fmt.Fprintln(w, "  t2: P0 selects slaves and assigns 100 units of work to P2")

	assign := []core.Assignment{{Proc: 2, Delta: core.Load{core.Workload: 100}}}
	done0 := false
	f.exs[0].Acquire(&fig1Ctx{f, 0}, func() {
		done0 = true
		f.exs[0].Commit(&fig1Ctx{f, 0}, assign)
	})
	f.drain()
	if !done0 {
		return fmt.Errorf("experiments: P0's decision never completed")
	}

	fmt.Fprintln(w, "  t3: P1 takes its own decision and consults its view of P2:")
	var seen float64
	done1 := false
	f.exs[1].Acquire(&fig1Ctx{f, 1}, func() {
		done1 = true
		seen = f.exs[1].View().Metric(2, core.Workload)
		f.exs[1].Commit(&fig1Ctx{f, 1}, nil)
	})
	f.drain()
	if !done1 {
		return fmt.Errorf("experiments: P1's decision never completed")
	}
	verdict := "STALE: P1 would select the already-loaded P2 again (the Figure 1 flaw)"
	if seen >= 100 {
		verdict = "COHERENT: P1 sees P0's assignment and avoids double-booking P2"
	}
	fmt.Fprintf(w, "      P1's view of P2 = %.0f (true load: 100) → %s\n", seen, verdict)
	return nil
}

// ---- Figure 2 ------------------------------------------------------------

// Figure2 renders the assembly-tree distribution of a small problem over
// four processes, in the spirit of the paper's Figure 2: node types
// (T1/T2/T3), masters and sequential subtrees.
func (l *Lab) Figure2(w io.Writer, name string) error {
	m, err := l.Mapping(name, 4)
	if err != nil {
		return err
	}
	t := m.Tree
	fmt.Fprintf(w, "Assembly tree of %s over 4 processes (Figure 2 style)\n", name)
	fmt.Fprintf(w, "nodes=%d  subtrees=%d  type2=%d\n", len(t.Nodes), len(m.SubtreeRoots), m.NumType2)
	t.RenderASCII(w, func(id int32) string {
		n := &t.Nodes[id]
		switch {
		case n.Subtree >= 0:
			return fmt.Sprintf("subtree %d on P%d", n.Subtree, m.Master[id])
		case n.Type == tree.Type2:
			return fmt.Sprintf("master P%d, slaves dynamic", m.Master[id])
		case n.Type == tree.Type3:
			return "2D static over all processes"
		default:
			return fmt.Sprintf("P%d", m.Master[id])
		}
	}, 8)
	return nil
}
