package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/workload"
)

// itemKind classifies entries of a process's local ready queue.
type itemKind uint8

const (
	itemNode   itemKind = iota // Type 1 / subtree node, fully local
	itemType2                  // Type 2 node ready on its master: acquire view + select
	itemMaster                 // Type 2 master part, selection already committed
	itemSlave                  // Type 2 slave share
	itemType3                  // share of the 2D root
)

// item is one unit of local ready work. flops is the remaining work of
// the task; cont marks a continuation of a task whose earlier panels
// already ran (its activation — memory allocation — already happened);
// pieces is the total contribution-piece count of the node (slave
// items: carried in the subtask message, since the selection's share
// list lives only on the master).
type item struct {
	kind    itemKind
	node    int32
	rows    int32
	pieces  int32
	flops   float64
	entries float64
	cont    bool
}

// procState is the per-process application state.
type procState struct {
	exch      core.Exchanger
	ctx       core.Context
	ready     []item
	activeMem float64
	peakMem   float64
	// mastersLeft counts Type 2 selections this process still has to
	// perform; reaching zero triggers No_more_master (§2.3).
	mastersLeft int
	// executed counts completed tasks; flops accumulates the executed
	// floating-point work (panel chunks as they finish).
	executed int64
	flops    float64
}

// piece is a contribution block stacked on its producer, awaiting the
// parent's selection.
type piece struct {
	producer int32
	entries  float64
}

// nodeState tracks the distributed progress of one assembly-tree node.
type nodeState struct {
	missing    int32   // children whose contributions are incomplete
	piecesGot  int32   // pieces received for THIS node at its parent's master
	piecesNeed int32   // pieces this node produces (known lazily)
	cbStacked  float64 // entries stacked at a Type 1 parent's owner
	pieces     []piece // producer-side stack for a parallel parent
	shares     []sched.Share
	slavesDone int32
	masterDone bool
	done       bool
	type3Done  int32
}

// app implements workload.App: the Algorithm 1 behaviours of every
// process, expressed against the transport-neutral application port.
// Any runtime's AppRunner (sim, live, net) can host it — in-process
// (all ranks in one instance) or forked (one instance per OS process,
// hosting a single local rank). The application keeps no cross-rank
// shared bookkeeping: assembly-tree progress lives at each node's
// master and every cross-rank effect — contributions, subtasks, and
// the slave-done / Type 3 completion notifications — travels as an
// explicit DataMsg.
type app struct {
	m    *mapping.Mapping
	prm  Params
	host workload.AppHost

	procs []*procState // nil entries for ranks this host does not run
	nodes []nodeState
	// doneCount counts completions observed locally (each node
	// completes at its master); expectedDone is the number of
	// locally-mastered nodes, so Done is doneCount == expectedDone in
	// every deployment.
	doneCount    int
	expectedDone int
	decisions    int
	assignments  int
	counters     core.Counters // decision counts + acquire-to-ready latency
}

// newApp builds the application for a normalized parameter set; the
// mechanisms and per-process state are created when a host attaches.
func newApp(m *mapping.Mapping, prm Params) *app {
	return &app{m: m, prm: prm}
}

// emit sends a trace event when tracing is enabled.
func (a *app) emit(rank int, ty trace.Type, node int32, value float64, note string) {
	if a.prm.Tracer == nil {
		return
	}
	a.prm.Tracer.Emit(trace.Event{
		At: a.host.Now(), Proc: rank, Type: ty,
		Node: node, Value: value, Note: note,
	})
}

// Attach implements workload.App: wire the host, create the mechanisms
// and seed the ready queues.
func (a *app) Attach(host workload.AppHost) error {
	a.host = host
	return a.init()
}

func (a *app) init() error {
	np := a.m.Config.NProcs
	t := a.m.Tree
	a.procs = make([]*procState, np)
	a.nodes = make([]nodeState, len(t.Nodes))

	initial := make([]core.Load, np)
	for p := 0; p < np; p++ {
		initial[p] = core.Load{core.Workload: a.m.InitialLoad[p]}
	}
	// Per-rank state exists only for the ranks this host instance runs:
	// everything (mechanisms, ready queues, memory accounting) for
	// in-process hosting, a single rank's share under fork.
	for p := 0; p < np; p++ {
		if !a.host.Local(p) {
			continue
		}
		exch, err := core.New(a.prm.Mech, np, p, a.prm.MechConfig)
		if err != nil {
			return err
		}
		ps := &procState{exch: exch, ctx: a.host.Context(p)}
		a.procs[p] = ps
		exch.Init(ps.ctx, initial[p])
		// The static mapping is global knowledge: everyone starts with
		// everyone's initial load in view.
		for q := 0; q < np; q++ {
			exch.View().Set(q, initial[q])
		}
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		a.nodes[i].missing = int32(len(n.Children))
		master := int(a.m.Master[i])
		if n.Type == tree.Type2 {
			if ps := a.procs[master]; ps != nil {
				ps.mastersLeft++
			}
		}
		if a.host.Local(master) {
			a.expectedDone++
		}
	}
	// Processes that will never be master can say so immediately.
	for p := 0; p < np; p++ {
		if ps := a.procs[p]; ps != nil && ps.mastersLeft == 0 {
			ps.exch.NoMoreMaster(ps.ctx)
		}
	}
	// Leaves are ready from the start, each on its master.
	for _, l := range t.Leaves() {
		if a.host.Local(int(a.m.Master[l])) {
			a.nodeReady(l)
		}
	}
	return nil
}

// ---- workload.App implementation --------------------------------------

// HandleState treats one state-information message (Algorithm 1 line 3).
func (a *app) HandleState(rank, from, kind int, payload any) {
	ps := a.procs[rank]
	ps.exch.HandleMessage(ps.ctx, from, kind, payload)
}

// HandleData treats one application message (Algorithm 1 line 5).
func (a *app) HandleData(rank, from int, m workload.DataMsg) {
	ps := a.procs[rank]
	switch int(m.Kind) {
	case KindSubtask:
		n := &a.m.Tree.Nodes[m.Node]
		work := tree.SlaveFlops(n.Nfront, n.Npiv, m.Count, a.m.Tree.Sym)
		mem := tree.SlaveBlockEntries(n.Nfront, n.Npiv, m.Count, a.m.Tree.Sym)
		a.addMem(rank, mem)
		ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: work, core.Memory: mem}, true)
		ps.ready = append(ps.ready, item{kind: itemSlave, node: m.Node, rows: m.Count, pieces: m.Peer})
	case KindCB:
		a.deliverPiece(rank, m)
	case KindType3Start:
		ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: m.Work}, false)
		ps.ready = append(ps.ready, item{kind: itemType3, node: m.Node, flops: m.Work, entries: m.Size})
	case KindShipReq:
		a.shipPiece(rank, m.Size, int(m.Peer))
	case KindCBData:
		// Assembly into storage already counted with the consumer's
		// block: bandwidth only.
	case KindSlaveDone:
		// A slave share of a Type 2 node completed elsewhere; this rank
		// is the node's master and tracks its progress.
		a.nodes[m.Node].slavesDone++
		a.checkType2Done(m.Node)
	case KindType3Done:
		// One process's share of the 2D root completed; this rank is
		// the root's master.
		a.type3ShareDone(m.Node)
	default:
		panic(fmt.Sprintf("solver: unknown data message kind %d", m.Kind))
	}
}

// shipPiece frees a stacked contribution piece on its producer and sends
// the data to the consumer chosen by the parent's selection.
func (a *app) shipPiece(rank int, entries float64, consumer int) {
	ps := a.procs[rank]
	a.addMem(rank, -entries)
	ps.exch.LocalChange(ps.ctx, core.Load{core.Memory: -entries}, false)
	if consumer == rank {
		return
	}
	a.host.SendData(rank, consumer, workload.DataMsg{
		Kind: KindCBData, Bytes: entries * 8,
	})
}

// Blocked implements workload.App: a process participating in a
// snapshot must not treat data messages or start tasks.
func (a *app) Blocked(rank int) bool { return a.procs[rank].exch.Busy() }

// Done implements workload.App: every locally-mastered assembly-tree
// node completed (all nodes for in-process hosting; the local rank's
// share under fork — global quiescence is the detector's call).
func (a *app) Done() bool { return a.doneCount == a.expectedDone }

// TryStart implements workload.App (Algorithm 1 line 7): pick a local
// ready task, applying the memory-aware task selection of §4.2.1.
func (a *app) TryStart(rank int) bool {
	ps := a.procs[rank]
	if len(ps.ready) == 0 {
		return false
	}
	idx := a.pickItem(rank)
	it := ps.ready[idx]
	ps.ready = append(ps.ready[:idx], ps.ready[idx+1:]...)

	t := a.m.Tree
	switch it.kind {
	case itemNode:
		n := &t.Nodes[it.node]
		ns := &a.nodes[it.node]
		if it.flops == 0 { // first panel: activate the front
			it.flops = n.Cost
			front := tree.FrontEntries(n.Nfront, t.Sym)
			a.addMem(rank, front-ns.cbStacked)
			ps.exch.LocalChange(ps.ctx, core.Load{core.Memory: front - ns.cbStacked}, false)
			ns.cbStacked = 0
		}
		node := it.node
		a.computeChunk(rank, it, func() { a.completeNode(rank, node) })
	case itemType2:
		node := it.node
		a.emit(rank, trace.EvSnapshotStart, node, 0, "")
		acquireAt := a.host.Now()
		ready := func() {
			a.counters.AddDecision(a.host.Now() - acquireAt)
			a.selectAndCommit(rank, node)
		}
		if a.prm.PartialSnapshots {
			if sx, ok := ps.exch.(core.ScopedExchanger); ok {
				sx.AcquireScoped(ps.ctx, a.m.Candidates[node], ready)
				return true
			}
		}
		ps.exch.Acquire(ps.ctx, ready)
	case itemMaster:
		n := &t.Nodes[it.node]
		node := it.node
		if it.flops == 0 {
			it.flops = tree.MasterFlops(n.Nfront, n.Npiv, t.Sym)
		}
		a.computeChunk(rank, it, func() { a.completeMaster(rank, node) })
	case itemSlave:
		n := &t.Nodes[it.node]
		node, rows, pieces := it.node, it.rows, it.pieces
		if it.flops == 0 {
			it.flops = tree.SlaveFlops(n.Nfront, n.Npiv, rows, t.Sym)
		}
		a.computeChunk(rank, it, func() { a.completeSlave(rank, node, rows, pieces) })
	case itemType3:
		node, entries := it.node, it.entries
		if !it.cont {
			a.addMem(rank, entries)
			ps.exch.LocalChange(ps.ctx, core.Load{core.Memory: entries}, false)
		}
		totalFlops := t.Nodes[it.node].Cost / float64(len(a.procs))
		a.computeChunk(rank, it, func() { a.completeType3(rank, node, totalFlops, entries) })
	}
	return true
}

// computeChunk runs one panel of the item's remaining work (at most
// MaxChunkSeconds of application time) and either re-queues the
// continuation at the head of the ready queue or completes the task.
// Between panels the Algorithm 1 loop treats pending messages — dense
// kernels poll their queues between panel updates, so a long front
// never makes the process deaf for its full duration.
func (a *app) computeChunk(rank int, it item, complete func()) {
	speed := a.prm.FlopsPerSecond
	maxChunk := a.prm.MaxChunkSeconds * speed
	if maxChunk <= 0 {
		maxChunk = it.flops
	}
	chunk := it.flops
	if chunk > maxChunk {
		chunk = maxChunk
	}
	rest := it.flops - chunk
	if !it.cont {
		a.emit(rank, trace.EvTaskStart, it.node, it.flops, "")
	}
	a.host.Compute(rank, chunk/speed, func() {
		ps := a.procs[rank]
		ps.flops += chunk
		if rest > 0 {
			cont := it
			cont.flops = rest
			cont.cont = true
			ps.ready = append([]item{cont}, ps.ready...)
			return
		}
		ps.executed++
		a.emit(rank, trace.EvTaskEnd, it.node, 0, "")
		complete()
	})
}

// pickItem applies the memory-aware task selection: the first ready item
// whose activation the strategy accepts; if none passes, the smallest
// activation is taken anyway (liveness).
func (a *app) pickItem(rank int) int {
	ps := a.procs[rank]
	if len(ps.ready) == 1 {
		return 0
	}
	best, bestEntries := -1, 0.0
	for i, it := range ps.ready {
		e := a.activationEntries(it)
		if it.cont {
			// A started task: its memory is live, finish it first.
			return i
		}
		switch it.kind {
		case itemSlave, itemMaster:
			// Memory already committed (data arrived / selection done):
			// postponing cannot help; run them first.
			return i
		}
		if ps.exch != nil && a.prm.Strategy.CanActivate(ps.exch.View(), rank, e) {
			return i
		}
		if best < 0 || e < bestEntries {
			best, bestEntries = i, e
		}
	}
	return best
}

// activationEntries estimates the active-memory increase of starting an
// item.
func (a *app) activationEntries(it item) float64 {
	t := a.m.Tree
	n := &t.Nodes[it.node]
	switch it.kind {
	case itemNode:
		return tree.FrontEntries(n.Nfront, t.Sym)
	case itemType2:
		return tree.MasterBlockEntries(n.Nfront, n.Npiv, t.Sym)
	case itemType3:
		return it.entries
	}
	return 0
}

// ---- node lifecycle -----------------------------------------------------

// nodeReady fires when all children contributed: the node enters its
// master's ready queue (Algorithm 1's "local ready task"). It always
// runs on the master's own hosting context (contributions are routed to
// the parent's master before this is called).
func (a *app) nodeReady(node int32) {
	t := a.m.Tree
	n := &t.Nodes[node]
	master := int(a.m.Master[node])
	ps := a.procs[master]
	switch n.Type {
	case tree.Type2:
		// The master part becomes activatable: account its cost.
		mf := tree.MasterFlops(n.Nfront, n.Npiv, t.Sym)
		ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: mf}, false)
		ps.ready = append(ps.ready, item{kind: itemType2, node: node})
	case tree.Type3:
		a.startType3(node)
	default:
		if n.Subtree < 0 {
			// Upper Type 1 nodes: cost counted when activatable;
			// subtree nodes are already in the initial load.
			ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: n.Cost}, false)
		}
		ps.ready = append(ps.ready, item{kind: itemNode, node: node})
	}
	a.host.Wake(master)
}

// startType3 launches the 2D static root: every process computes an equal
// share (ScaLAPACK-like block-cyclic work, no dynamic decision).
func (a *app) startType3(node int32) {
	t := a.m.Tree
	n := &t.Nodes[node]
	np := len(a.procs)
	master := int(a.m.Master[node])
	flops := n.Cost / float64(np)
	entries := tree.FrontEntries(n.Nfront, t.Sym) / float64(np)
	bytes := entries * 8 / 4 // a 2D panel redistribution, much smaller than the front
	for p := 0; p < np; p++ {
		if p == master {
			continue
		}
		a.host.SendData(master, p, workload.DataMsg{
			Kind: KindType3Start, Node: node, Work: flops, Size: entries, Bytes: bytes,
		})
	}
	// The master's own share, locally; the children contributions get
	// redistributed over the whole 2D grid.
	ps := a.procs[master]
	all := make([]int32, np)
	for p := range all {
		all[p] = int32(p)
	}
	a.redistributePieces(master, node, all)
	ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: flops}, false)
	ps.ready = append(ps.ready, item{kind: itemType3, node: node, flops: flops, entries: entries})
}

// selectAndCommit is the dynamic decision of a Type 2 master: runs once
// the mechanism's view is ready (synchronously for maintained views, at
// snapshot completion otherwise).
func (a *app) selectAndCommit(rank int, node int32) {
	t := a.m.Tree
	n := &t.Nodes[node]
	ns := &a.nodes[node]
	ps := a.procs[rank]

	var candidates []int32
	if a.prm.PartialSnapshots {
		candidates = a.m.Candidates[node]
	}
	shares := a.prm.Strategy.SelectSlavesAmong(ps.exch.View(), rank, candidates, n.Nfront, n.Npiv, t.Sym)
	if err := sched.ValidateShares(shares, n.Nfront, n.Npiv, rank); err != nil && len(shares) > 0 {
		panic("solver: invalid selection: " + err.Error())
	}
	ns.shares = shares
	a.decisions++
	a.assignments += len(shares)
	a.emit(rank, trace.EvDecision, node, float64(len(shares)), "")

	// Activation on the master: allocate the pivot block. The children's
	// contributions, stacked on their producers, are redistributed to
	// the selected slaves below.
	mb := tree.MasterBlockEntries(n.Nfront, n.Npiv, t.Sym)
	a.addMem(rank, mb)
	ps.exch.LocalChange(ps.ctx, core.Load{core.Memory: mb}, false)

	// Publish the decision through the mechanism (Master_To_All for
	// increments, master_to_slave + end_snp for snapshots).
	asg := make([]core.Assignment, len(shares))
	for i, sh := range shares {
		asg[i] = core.Assignment{
			Proc: sh.Proc,
			Delta: core.Load{
				core.Workload: tree.SlaveFlops(n.Nfront, n.Npiv, sh.Rows, t.Sym),
				core.Memory:   tree.SlaveBlockEntries(n.Nfront, n.Npiv, sh.Rows, t.Sym),
			},
		}
	}
	ps.exch.Commit(ps.ctx, asg)
	if ps.mastersLeft--; ps.mastersLeft == 0 {
		ps.exch.NoMoreMaster(ps.ctx)
	}

	// Ship the subtasks (the actual rows: large data messages) and
	// redistribute the stacked children contributions to the slaves.
	// Each subtask carries the selection's total piece count (Peer
	// field): the slave needs it to tag its contribution piece, and the
	// share list itself lives only on the master.
	consumers := make([]int32, len(shares))
	for i, sh := range shares {
		rows := sh.Rows
		consumers[i] = sh.Proc
		bytes := float64(rows) * float64(n.Nfront) * 8
		a.host.SendData(rank, int(sh.Proc), workload.DataMsg{
			Kind: KindSubtask, Node: node, Count: rows, Peer: int32(len(shares)), Bytes: bytes,
		})
	}
	a.redistributePieces(rank, node, consumers)
	ps.ready = append(ps.ready, item{kind: itemMaster, node: node})
	a.host.Wake(rank)
}

// completeNode finishes a Type 1 / subtree node.
func (a *app) completeNode(rank int, node int32) {
	t := a.m.Tree
	n := &t.Nodes[node]
	ps := a.procs[rank]
	front := tree.FrontEntries(n.Nfront, t.Sym)
	cb := tree.CBEntries(n.Nfront, n.Npiv, t.Sym)
	a.markDone(node)
	stays := a.routePiece(rank, node, 1, cb)
	freed := front
	if stays {
		freed = front - cb // the contribution block remains stacked here
	}
	a.addMem(rank, -freed)
	ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: -n.Cost, core.Memory: -freed}, false)
}

// completeMaster finishes the master part of a Type 2 node.
func (a *app) completeMaster(rank int, node int32) {
	t := a.m.Tree
	n := &t.Nodes[node]
	ns := &a.nodes[node]
	ps := a.procs[rank]
	mb := tree.MasterBlockEntries(n.Nfront, n.Npiv, t.Sym)
	mf := tree.MasterFlops(n.Nfront, n.Npiv, t.Sym)
	a.addMem(rank, -mb)
	ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: -mf, core.Memory: -mb}, false)
	ns.masterDone = true
	if len(ns.shares) == 0 {
		// No slaves (degenerate): the master emits the completion piece.
		cb := tree.CBEntries(n.Nfront, n.Npiv, t.Sym)
		if a.routePiece(rank, node, 1, cb) && cb > 0 {
			a.addMem(rank, cb)
			ps.exch.LocalChange(ps.ctx, core.Load{core.Memory: cb}, false)
		}
	}
	a.checkType2Done(node)
}

// completeSlave finishes one slave share of a Type 2 node. The piece
// count comes from the subtask message; progress is reported to the
// node's master with a KindSlaveDone notification (the master tracks
// slavesDone — no shared bookkeeping).
func (a *app) completeSlave(rank int, node int32, rows, pieces int32) {
	t := a.m.Tree
	n := &t.Nodes[node]
	ps := a.procs[rank]
	work := tree.SlaveFlops(n.Nfront, n.Npiv, rows, t.Sym)
	block := tree.SlaveBlockEntries(n.Nfront, n.Npiv, rows, t.Sym)
	cbPc := tree.SlaveCBEntries(n.Nfront, n.Npiv, rows, t.Sym)
	stays := a.routePiece(rank, node, pieces, cbPc)
	freed := block
	if stays {
		freed = block - cbPc
	}
	a.addMem(rank, -freed)
	ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: -work, core.Memory: -freed}, true)
	master := int(a.m.Master[node])
	if master == rank {
		// Defensive: selections never include the master today.
		a.nodes[node].slavesDone++
		a.checkType2Done(node)
		return
	}
	a.host.SendData(rank, master, workload.DataMsg{Kind: KindSlaveDone, Node: node, Bytes: NotifyBytes})
}

func (a *app) checkType2Done(node int32) {
	ns := &a.nodes[node]
	if ns.masterDone && int(ns.slavesDone) == len(ns.shares) && !ns.done {
		a.markDone(node)
	}
}

// completeType3 finishes one share of the 2D root: release the memory
// and report completion to the root's master (a KindType3Done
// notification when the share ran elsewhere).
func (a *app) completeType3(rank int, node int32, flops, entries float64) {
	ps := a.procs[rank]
	a.addMem(rank, -entries)
	ps.exch.LocalChange(ps.ctx, core.Load{core.Workload: -flops, core.Memory: -entries}, false)
	master := int(a.m.Master[node])
	if master == rank {
		a.type3ShareDone(node)
		return
	}
	a.host.SendData(rank, master, workload.DataMsg{Kind: KindType3Done, Node: node, Bytes: NotifyBytes})
}

// type3ShareDone runs on the 2D root's master: count one completed
// share, mark the root done when all processes finished theirs.
func (a *app) type3ShareDone(node int32) {
	ns := &a.nodes[node]
	ns.type3Done++
	if int(ns.type3Done) == len(a.procs) && !ns.done {
		a.markDone(node)
	}
}

// routePiece sends one contribution piece of `node` toward its parent.
// For a Type 1 parent the data travels to the owner immediately; for a
// parallel (Type 2/3) parent only a notification is sent and the data
// stays stacked on the producer until the parent's selection chooses the
// consumers. It reports whether the piece's memory remains on rank.
func (a *app) routePiece(rank int, node int32, pieces int32, entries float64) bool {
	parent := a.m.Tree.Nodes[node].Parent
	if parent < 0 {
		return false // root: the contribution is discarded
	}
	pm := int(a.m.Master[parent])
	parallel := a.m.Tree.Nodes[parent].Type != tree.Type1
	pl := workload.DataMsg{
		Kind: KindCB, Node: node, Count: pieces, Size: entries, Peer: int32(rank),
	}
	if pm == rank {
		a.deliverPiece(rank, pl)
		return true // stacked locally (either cbStacked or producer-side)
	}
	pl.Bytes = entries * 8
	if parallel {
		pl.Bytes = 32 // notification only
	}
	a.host.SendData(rank, pm, pl)
	return parallel
}

// deliverPiece runs on the parent's master: account the contribution
// (stacking it locally for Type 1 parents, registering the producer for
// parallel parents) and check readiness.
func (a *app) deliverPiece(rank int, pl workload.DataMsg) {
	child := pl.Node
	cs := &a.nodes[child]
	cs.piecesNeed = pl.Count
	cs.piecesGot++
	parent := a.m.Tree.Nodes[child].Parent
	pns := &a.nodes[parent]
	if a.m.Tree.Nodes[parent].Type == tree.Type1 {
		pns.cbStacked += pl.Size
		if int(pl.Peer) != rank {
			// Data arrived over the network: it now occupies the owner.
			a.addMem(rank, pl.Size)
			ps := a.procs[rank]
			ps.exch.LocalChange(ps.ctx, core.Load{core.Memory: pl.Size}, false)
		}
	} else {
		pns.pieces = append(pns.pieces, piece{producer: pl.Peer, entries: pl.Size})
	}
	if cs.piecesGot == cs.piecesNeed {
		if pns.missing--; pns.missing == 0 {
			a.nodeReady(parent)
		}
	}
}

// redistributePieces runs at a parallel parent's activation: every
// stacked piece is shipped from its producer to a consumer of the
// selection (weighted round-robin), freeing the producer's stack.
func (a *app) redistributePieces(rank int, node int32, consumers []int32) {
	ns := &a.nodes[node]
	ci := 0
	for _, pc := range ns.pieces {
		consumer := int32(rank)
		if len(consumers) > 0 {
			consumer = consumers[ci%len(consumers)]
			ci++
		}
		if int(pc.producer) == rank {
			a.shipPiece(rank, pc.entries, int(consumer))
			continue
		}
		a.host.SendData(rank, int(pc.producer), workload.DataMsg{
			Kind: KindShipReq, Size: pc.entries, Peer: consumer, Bytes: 32,
		})
	}
	ns.pieces = nil
}

func (a *app) markDone(node int32) {
	ns := &a.nodes[node]
	if ns.done {
		panic("solver: node completed twice")
	}
	ns.done = true
	a.doneCount++
}

// addMem adjusts a process's active memory and records the peak.
func (a *app) addMem(rank int, delta float64) {
	ps := a.procs[rank]
	ps.activeMem += delta
	if ps.activeMem > ps.peakMem {
		ps.peakMem = ps.activeMem
	}
}

// Outcome implements workload.App: package the application-level
// results, verifying the post-run invariants (every locally-mastered
// node completed, every local memory allocation released). Under
// forked hosting the per-rank slices carry zero values for the ranks
// other processes ran; the cluster parent merges the STATS reports.
func (a *app) Outcome(hr *workload.AppReport) workload.AppOutcome {
	out := workload.AppOutcome{
		Decisions: a.decisions,
		Counters:  a.counters.Clone(),
	}
	for _, ps := range a.procs {
		if ps == nil {
			out.Executed = append(out.Executed, 0)
			out.Stats = append(out.Stats, core.Stats{})
			out.FinalViews = append(out.FinalViews, nil)
			continue
		}
		out.Executed = append(out.Executed, ps.executed)
		out.Stats = append(out.Stats, ps.exch.Stats())
		out.FinalViews = append(out.FinalViews, ps.exch.View().Snapshot())
	}
	out.Result = a.result(hr)
	if a.doneCount != a.expectedDone {
		out.Err = fmt.Errorf("solver: deadlock, only %d/%d locally-mastered nodes completed", a.doneCount, a.expectedDone)
		return out
	}
	for p, ps := range a.procs {
		if ps == nil {
			continue
		}
		if ps.activeMem > 1e-3 || ps.activeMem < -1e-3 {
			out.Err = fmt.Errorf("solver: process %d ends with active memory %v (accounting bug)", p, ps.activeMem)
			return out
		}
	}
	return out
}

// result gathers the metrics after the run from the application state
// and the host's report.
func (a *app) result(hr *workload.AppReport) *Result {
	res := &Result{
		Time:          hr.Time,
		PeakMem:       make([]float64, len(a.procs)),
		ExecutedFlops: make([]float64, len(a.procs)),
		Decisions:     a.decisions,
		Assignments:   a.assignments,
		Steps:         hr.Steps,
		PausedTime:    hr.PausedTime,
		StateMsgs:     hr.Counters.StateMsgs,
		StateBytes:    hr.Counters.StateBytes,
		DataMsgs:      hr.Counters.DataMsgs,
		CtrlMsgs:      hr.Counters.CtrlMsgs,
		CtrlBytes:     hr.Counters.CtrlBytes,
		MsgsByKind:    map[string]int64{},
	}
	for p, ps := range a.procs {
		if ps == nil {
			continue
		}
		res.PeakMem[p] = ps.peakMem
		res.ExecutedFlops[p] = ps.flops
		if ps.peakMem > res.MaxPeakMem {
			res.MaxPeakMem = ps.peakMem
		}
		st := ps.exch.Stats()
		res.SnapshotTime += st.SnapshotTime
		res.SnapshotCount += st.SnapshotsInitiated
		res.SnapshotRestarts += st.SnapshotRestarts
		if st.MaxConcurrentSnapshots > res.MaxConcurrentSnapshots {
			res.MaxConcurrentSnapshots = st.MaxConcurrentSnapshots
		}
	}
	for kind := core.KindUpdate; kind <= core.KindMasterToSlave; kind++ {
		if t := hr.Counters.Kind(kind); t.Msgs > 0 {
			res.MsgsByKind[core.KindName(kind)] = t.Msgs
		}
	}
	return res
}
