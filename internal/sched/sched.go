// Package sched implements the dynamic scheduling strategies of §4.2: the
// slave selections taken by Type 2 masters based on the view provided by a
// load-exchange mechanism.
//
//   - the workload-based strategy (§4.2.2) selects the slaves giving the
//     best balance of remaining floating-point work, with an irregular 1D
//     row blocking and granularity constraints (minimum share for
//     performance, maximum share for communication-buffer size);
//   - the memory-based strategy (§4.2.1) selects slaves for the best
//     balance of active memory and adds a memory-aware task selection
//     that postpones ready tasks whose activation would hurt the balance.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/tree"
)

// Share is one slave's part of a Type 2 front: Rows rows of the Schur
// complement.
type Share struct {
	Proc int32
	Rows int32
}

// Strategy is a slave-selection policy. The two paper strategies share the
// machinery and differ in the balanced metric and the task-selection
// constraint.
type Strategy struct {
	// Metric is the load quantity being balanced.
	Metric core.Metric
	// MinRows is the granularity floor: a slave receives at least this
	// many rows (performance / buffer constraints, §4.2.2).
	MinRows int32
	// MaxRows caps one slave's share (internal communication buffers).
	MaxRows int32
	// MaxSlaves caps the number of selected slaves (0 = no cap).
	MaxSlaves int
	// TaskGamma, for the memory strategy, bounds how far above the mean
	// memory a processor may go by activating a task (§4.2.1's
	// memory-aware task selection). Zero disables the constraint.
	TaskGamma float64
}

// Workload returns the §4.2.2 strategy.
func Workload() *Strategy {
	return &Strategy{Metric: core.Workload, MinRows: 16, MaxRows: 4096}
}

// Memory returns the §4.2.1 strategy.
func Memory() *Strategy {
	return &Strategy{Metric: core.Memory, MinRows: 16, MaxRows: 4096, TaskGamma: 1.6}
}

// Name returns "workload" or "memory".
func (s *Strategy) Name() string { return s.Metric.String() }

// rowCost returns the per-row increase of the balanced metric when a
// slave takes one Schur row of the front.
func (s *Strategy) rowCost(nfront, npiv int32, sym bool) float64 {
	if s.Metric == core.Memory {
		return tree.SlaveBlockEntries(nfront, npiv, 1, sym)
	}
	return tree.SlaveFlops(nfront, npiv, 1, sym)
}

// SelectSlaves chooses slaves and row counts for a Type 2 front mastered
// by master, using the view's estimates of the balanced metric. The
// returned shares cover exactly the Schur rows (Nfront-Npiv), each within
// [MinRows, MaxRows] (the last slave may exceed MinRows slack when the
// front is small). The selection is the irregular 1D row blocking of the
// paper: slaves with lower estimated load receive more rows
// (water-filling toward a common level).
func (s *Strategy) SelectSlaves(view *core.View, master int, nfront, npiv int32, sym bool) []Share {
	return s.SelectSlavesAmong(view, master, nil, nfront, npiv, sym)
}

// SelectSlavesAmong restricts the selection to the given candidate ranks
// (nil = all processes but the master). Candidate lists come from the
// static mapping's proportional intervals and enable the partial-snapshot
// extension: only processes that can be selected need to be consulted.
func (s *Strategy) SelectSlavesAmong(view *core.View, master int, candidates []int32, nfront, npiv int32, sym bool) []Share {
	rows := nfront - npiv
	if rows <= 0 {
		return nil
	}
	n := view.N()
	if n <= 1 {
		return nil // no other process: the master factors the whole front
	}
	type cand struct {
		proc int32
		load float64
	}
	var cands []cand
	if candidates == nil {
		cands = make([]cand, 0, n-1)
		for p := 0; p < n; p++ {
			if p == master {
				continue
			}
			cands = append(cands, cand{int32(p), view.Metric(p, s.Metric)})
		}
	} else {
		cands = make([]cand, 0, len(candidates))
		for _, p := range candidates {
			if int(p) == master || p < 0 || int(p) >= n {
				continue
			}
			cands = append(cands, cand{p, view.Metric(int(p), s.Metric)})
		}
		if len(cands) == 0 {
			return nil
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].proc < cands[j].proc
	})

	// Number of slaves: enough to respect MaxRows, few enough to respect
	// MinRows, bounded by MaxSlaves and the candidate count.
	k := int((rows + s.MaxRows - 1) / s.MaxRows) // floor for buffer limit
	if k < 1 {
		k = 1
	}
	if balanceK := int(rows / maxI32(s.MinRows, 1)); balanceK < len(cands) {
		// Use as many slaves as granularity admits: best balance.
		if balanceK > k {
			k = balanceK
		}
	} else {
		k = len(cands)
	}
	if s.MaxSlaves > 0 && k > s.MaxSlaves {
		k = s.MaxSlaves
	}
	if k > len(cands) {
		k = len(cands)
	}
	if k < 1 {
		k = 1
	}

	rc := s.rowCost(nfront, npiv, sym)
	if rc <= 0 {
		rc = 1
	}
	// Water-fill toward the common level T = (Σ load + rows·rc) / k.
	var sum float64
	for i := 0; i < k; i++ {
		sum += cands[i].load
	}
	level := (sum + float64(rows)*rc) / float64(k)
	shares := make([]Share, 0, k)
	assigned := int32(0)
	for i := 0; i < k; i++ {
		want := int32((level - cands[i].load) / rc)
		if want < 0 {
			want = 0
		}
		if want > s.MaxRows {
			want = s.MaxRows
		}
		if rem := rows - assigned; want > rem {
			want = rem
		}
		shares = append(shares, Share{Proc: cands[i].proc, Rows: want})
		assigned += want
	}
	// Distribute any remainder to the least-loaded slaves, respecting
	// MaxRows; overflow beyond all caps goes to the least loaded anyway
	// (the buffer constraint is soft in the paper's sense).
	for rem := rows - assigned; rem > 0; {
		progressed := false
		for i := 0; i < k && rem > 0; i++ {
			if shares[i].Rows < s.MaxRows {
				add := minI32(rem, s.MaxRows-shares[i].Rows)
				shares[i].Rows += add
				rem -= add
				progressed = true
			}
		}
		if !progressed {
			shares[0].Rows += rem
			rem = 0
		}
	}
	// Enforce MinRows: fold slaves with tiny shares into their
	// predecessors (deterministically: give to the least loaded).
	out := shares[:0]
	var orphan int32
	for _, sh := range shares {
		if sh.Rows == 0 {
			continue
		}
		if sh.Rows < s.MinRows && len(out) > 0 {
			orphan += sh.Rows
			continue
		}
		out = append(out, sh)
	}
	if len(out) == 0 {
		// Degenerate: everything was tiny; give all rows to the least
		// loaded candidate.
		return []Share{{Proc: cands[0].proc, Rows: rows}}
	}
	out[0].Rows += orphan
	return out
}

// CanActivate implements the memory-aware task selection of §4.2.1: a
// ready task whose front would push this processor's active memory too
// far above the mean is postponed (the solver falls back to activating it
// anyway when nothing else can make progress, to preserve liveness).
func (s *Strategy) CanActivate(view *core.View, rank int, frontEntries float64) bool {
	if s.TaskGamma <= 0 || s.Metric != core.Memory {
		return true
	}
	n := view.N()
	var sum float64
	for p := 0; p < n; p++ {
		sum += view.Metric(p, core.Memory)
	}
	mean := sum / float64(n)
	if mean == 0 {
		return true // idle system: nothing to balance against yet
	}
	// Compare against the post-activation mean: activating the front
	// raises the system mean by frontEntries/n too.
	projected := view.Metric(rank, core.Memory) + frontEntries
	return projected <= s.TaskGamma*(mean+frontEntries/float64(n))
}

// Validate checks a selection against the front it was made for.
func ValidateShares(shares []Share, nfront, npiv int32, master int) error {
	var total int32
	seen := map[int32]bool{}
	for _, sh := range shares {
		if sh.Rows <= 0 {
			return fmt.Errorf("sched: empty share for proc %d", sh.Proc)
		}
		if sh.Proc == int32(master) {
			return fmt.Errorf("sched: master %d selected as its own slave", master)
		}
		if seen[sh.Proc] {
			return fmt.Errorf("sched: proc %d selected twice", sh.Proc)
		}
		seen[sh.Proc] = true
		total += sh.Rows
	}
	if want := nfront - npiv; total != want {
		return fmt.Errorf("sched: shares cover %d rows, want %d", total, want)
	}
	return nil
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
