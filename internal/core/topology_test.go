package core

import (
	"strings"
	"testing"
)

// checkTopology asserts structural sanity: symmetry, sortedness, no
// self-loops or duplicates, and Edge/Neighbors agreement.
func checkTopology(t *testing.T, topo *Topology) {
	t.Helper()
	n := topo.N()
	for r := 0; r < n; r++ {
		last := -1
		for _, p := range topo.Neighbors(r) {
			if p == r {
				t.Fatalf("%s/%d: rank %d is its own neighbor", topo.Name(), n, r)
			}
			if p <= last {
				t.Fatalf("%s/%d: rank %d neighbors not strictly ascending: %v", topo.Name(), n, r, topo.Neighbors(r))
			}
			last = p
			if !topo.Edge(r, p) || !topo.Edge(p, r) {
				t.Fatalf("%s/%d: edge (%d,%d) not symmetric", topo.Name(), n, r, p)
			}
			found := false
			for _, q := range topo.Neighbors(p) {
				if q == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s/%d: %d lists %d but not vice versa", topo.Name(), n, r, p)
			}
		}
		if topo.Degree(r) != len(topo.Neighbors(r)) {
			t.Fatalf("%s/%d: degree mismatch on rank %d", topo.Name(), n, r)
		}
	}
	if topo.Edge(0, 0) {
		t.Fatalf("%s: self-loop reported as edge", topo.Name())
	}
}

// connected reports whether the graph is connected (every generator
// must produce a connected graph or dissemination cannot reach
// everyone).
func connected(topo *Topology) bool {
	n := topo.N()
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range topo.Neighbors(r) {
			if !seen[p] {
				seen[p] = true
				count++
				stack = append(stack, p)
			}
		}
	}
	return count == n
}

func TestTopologyGenerators(t *testing.T) {
	for _, name := range []string{"full", "ring", "grid2d", "torus", "random-2", "random-3"} {
		for _, n := range []int{1, 2, 3, 4, 6, 7, 9, 12, 16, 31} {
			topo, err := NewTopology(name, n)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, n, err)
			}
			checkTopology(t, topo)
			if n > 1 && !connected(topo) {
				t.Fatalf("%s/%d: not connected", name, n)
			}
		}
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		topo, err := NewTopology("hypercube", n)
		if err != nil {
			t.Fatalf("hypercube/%d: %v", n, err)
		}
		checkTopology(t, topo)
		if n > 1 && !connected(topo) {
			t.Fatalf("hypercube/%d: not connected", n)
		}
	}
}

func TestTopologyFullMatchesBroadcastOrder(t *testing.T) {
	// The refactor's byte-identity hinge: on full, every rank's
	// neighbor list is every other rank ascending — the exact visit
	// order of the old `for to := 0; to < n; to++` broadcast loops.
	topo, err := NewTopology("full", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.IsFull() || (*Topology)(nil).IsFull() == false {
		t.Fatal("full/nil topology must report IsFull")
	}
	want := [][]int{{1, 2, 3, 4}, {0, 2, 3, 4}, {0, 1, 3, 4}, {0, 1, 2, 4}, {0, 1, 2, 3}}
	for r := 0; r < 5; r++ {
		got := topo.Neighbors(r)
		if len(got) != len(want[r]) {
			t.Fatalf("rank %d: %v, want %v", r, got, want[r])
		}
		for i := range got {
			if got[i] != want[r][i] {
				t.Fatalf("rank %d: %v, want %v", r, got, want[r])
			}
		}
	}
}

func TestTopologyShapes(t *testing.T) {
	ring, _ := NewTopology("ring", 6)
	for r := 0; r < 6; r++ {
		if ring.Degree(r) != 2 {
			t.Fatalf("ring degree(%d) = %d, want 2", r, ring.Degree(r))
		}
	}
	if !ring.Edge(0, 5) || !ring.Edge(0, 1) || ring.Edge(0, 3) {
		t.Fatal("ring edges wrong")
	}
	two, _ := NewTopology("ring", 2)
	if two.Degree(0) != 1 || two.Degree(1) != 1 {
		t.Fatalf("2-ring must collapse to one edge, degrees %d/%d", two.Degree(0), two.Degree(1))
	}
	hc, _ := NewTopology("hypercube", 8)
	for r := 0; r < 8; r++ {
		if hc.Degree(r) != 3 {
			t.Fatalf("hypercube(8) degree(%d) = %d, want 3", r, hc.Degree(r))
		}
	}
	torus, _ := NewTopology("torus", 6) // 2 × 3
	for r := 0; r < 6; r++ {
		if torus.Degree(r) < 2 {
			t.Fatalf("torus degree(%d) = %d", r, torus.Degree(r))
		}
	}
	rk, _ := NewTopology("random-3", 10)
	for r := 0; r < 10; r++ {
		if rk.Degree(r) < 3 {
			t.Fatalf("random-3 degree(%d) = %d, want ≥ 3", r, rk.Degree(r))
		}
	}
	// Deterministic across constructions (forked processes must agree).
	rk2, _ := NewTopology("random-3", 10)
	for r := 0; r < 10; r++ {
		a, b := rk.Neighbors(r), rk2.Neighbors(r)
		if len(a) != len(b) {
			t.Fatalf("random-3 not deterministic at rank %d", r)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("random-3 not deterministic at rank %d", r)
			}
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology("moebius", 4); err == nil || !strings.Contains(err.Error(), "available") {
		t.Fatalf("unknown topology must list the registry, got %v", err)
	}
	if _, err := NewTopology("hypercube", 6); err == nil {
		t.Fatal("hypercube on non-power-of-two accepted")
	}
	if _, err := NewTopology("random-0", 4); err == nil {
		t.Fatal("random-0 accepted")
	}
	if _, err := NewTopology("random-x", 4); err == nil {
		t.Fatal("random-x accepted")
	}
	if _, err := New(MechNaive, 4, 0, Config{Topo: mustTopo(t, "ring", 6)}); err == nil {
		t.Fatal("mechanism accepted a topology generated for a different n")
	}
	if len(TopologyInfos()) != len(TopologyNames()) {
		t.Fatal("registry listing out of sync")
	}
}

func mustTopo(t *testing.T, name string, n int) *Topology {
	t.Helper()
	topo, err := NewTopology(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestLeastLoadedAmong(t *testing.T) {
	v := ViewOf([]Load{{Workload: 5}, {Workload: 1}, {Workload: 3}, {Workload: 1}, {Workload: 0}})
	// Restricted to {1,2,3}: rank 4's zero load is invisible; the tie
	// between 1 and 3 breaks toward the lower rank.
	got := LeastLoadedAmong(v, Workload, 0, 2, []int{1, 2, 3})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
	// Excluding self, candidates including self.
	got = LeastLoadedAmong(v, Workload, 1, 2, []int{1, 2, 3})
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("got %v, want [3 2]", got)
	}
	// On the full candidate set it agrees with LeastLoaded.
	all := []int{0, 1, 2, 3, 4}
	a := LeastLoaded(v, Workload, 0, 3)
	b := LeastLoadedAmong(v, Workload, 0, 3, all)
	if len(a) != len(b) {
		t.Fatalf("full-candidate mismatch: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("full-candidate mismatch: %v vs %v", a, b)
		}
	}
}

func TestPlanDecisionOnRestrictsToNeighbors(t *testing.T) {
	topo := mustTopo(t, "ring", 6)
	v := ViewOf([]Load{{}, {Workload: 9}, {}, {}, {}, {Workload: 4}})
	d := PlanDecisionOn(topo, v, 0, 2, 100)
	if len(d.Assignments) != 2 {
		t.Fatalf("want 2 assignments, got %+v", d.Assignments)
	}
	for _, a := range d.Assignments {
		if int(a.Proc) != 1 && int(a.Proc) != 5 {
			t.Fatalf("assignment to non-neighbor %d of master 0 on ring", a.Proc)
		}
		if a.Delta[Workload] != 50 {
			t.Fatalf("share = %v, want 50", a.Delta[Workload])
		}
	}
	// Full topology must be exactly PlanDecision.
	full := PlanDecisionOn(nil, v, 0, 2, 100)
	ref := PlanDecision(v, 0, 2, 100)
	if len(full.Assignments) != len(ref.Assignments) {
		t.Fatalf("full PlanDecisionOn diverged: %+v vs %+v", full, ref)
	}
	for i := range ref.Assignments {
		if full.Assignments[i] != ref.Assignments[i] {
			t.Fatalf("full PlanDecisionOn diverged: %+v vs %+v", full, ref)
		}
	}
}
