package main

// loadex node: one process of a TCP cluster. Normally forked by
// `loadex cluster`, which drives the stdio handshake:
//
//	node   → parent:  ADDR <rank> <host:port>   (after binding)
//	parent → node:    PEERS <addr0>,<addr1>,…   (once all ranks bound)
//	node   → parent:  STATS <json>              (after quiescence)
//
// A node whose rank is below -masters takes -decisions dynamic
// decisions, each distributing -work units over the -slaves least-loaded
// peers per its coherent view. Masters announce Done after draining
// their own assignments; every node exits once all masters announced,
// plus a settle delay for trailing state messages.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	xnet "repro/internal/net"
)

// nodeStats is the per-rank report a node prints and the cluster parent
// aggregates.
type nodeStats struct {
	Rank      int                 `json:"rank"`
	Executed  int64               `json:"executed"`
	Decisions int                 `json:"decisions"`
	Mech      core.Stats          `json:"mech"`
	Transport xnet.TransportStats `json:"transport"`
}

// nodeParams collects the workload flags shared by `loadex node` and
// `loadex cluster`.
type nodeParams struct {
	procs     int
	mech      string
	threshold float64
	noMore    bool
	codec     string
	masters   int
	decisions int
	work      float64
	slaves    int
	spin      time.Duration
	settle    time.Duration
}

func (p *nodeParams) register(fs *flag.FlagSet) {
	fs.IntVar(&p.procs, "n", 8, "number of processes in the cluster")
	fs.StringVar(&p.mech, "mech", "snapshot", "mechanism: naive|increments|snapshot")
	fs.Float64Var(&p.threshold, "threshold", 5, "maintained-mechanism broadcast threshold (workload units)")
	fs.BoolVar(&p.noMore, "nomore", true, "enable the No_more_master optimization (§2.3)")
	fs.StringVar(&p.codec, "codec", "binary", "wire codec: binary|json")
	fs.IntVar(&p.masters, "masters", 3, "ranks [0,masters) take dynamic decisions")
	fs.IntVar(&p.decisions, "decisions", 4, "decisions per master")
	fs.Float64Var(&p.work, "work", 120, "work units distributed per decision")
	fs.IntVar(&p.slaves, "slaves", 3, "slaves selected per decision")
	fs.DurationVar(&p.spin, "spin", time.Millisecond, "execution time per work item")
	fs.DurationVar(&p.settle, "settle", 50*time.Millisecond, "delay for trailing state messages before exit")
}

func (p *nodeParams) config() core.Config {
	return core.Config{
		Threshold:       core.Load{core.Workload: p.threshold},
		NoMoreMasterOpt: p.noMore,
	}
}

func (p *nodeParams) validate() error {
	if p.procs < 2 {
		return fmt.Errorf("need at least 2 processes, got %d", p.procs)
	}
	if p.masters < 1 || p.masters > p.procs {
		return fmt.Errorf("masters %d out of range [1,%d]", p.masters, p.procs)
	}
	if p.slaves < 1 {
		return fmt.Errorf("need at least 1 slave per decision")
	}
	return nil
}

func runNode(args []string) error {
	fs := flag.NewFlagSet("loadex node", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	rank := fs.Int("rank", 0, "this process's rank")
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := p.validate(); err != nil {
		return err
	}
	codec, err := xnet.NewCodec(p.codec)
	if err != nil {
		return err
	}
	mech := core.Mech(p.mech)
	nd, err := xnet.NewNode(*rank, p.procs, mech, p.config(), xnet.Options{
		Codec: codec,
		Logf:  func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	addr, err := nd.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("ADDR %d %s\n", *rank, addr)

	// The parent answers with every rank's address once all bound.
	sc := bufio.NewScanner(os.Stdin)
	var addrs []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "PEERS "); ok {
			addrs = strings.Split(rest, ",")
			break
		}
	}
	if addrs == nil {
		return fmt.Errorf("node %d: stdin closed before PEERS line", *rank)
	}
	if len(addrs) != p.procs {
		return fmt.Errorf("node %d: got %d peer addresses, want %d", *rank, len(addrs), p.procs)
	}
	if err := nd.Start(addrs); err != nil {
		return err
	}

	stats, err := runNodeWorkload(nd, &p)
	if err != nil {
		return err
	}
	b, err := json.Marshal(stats)
	if err != nil {
		return err
	}
	fmt.Printf("STATS %s\n", b)
	return nd.Close()
}

// runNodeWorkload drives one node through the scripted workload until
// cluster quiescence and returns its report.
func runNodeWorkload(nd *xnet.Node, p *nodeParams) (nodeStats, error) {
	st := nodeStats{Rank: nd.Rank()}
	isMaster := nd.Rank() < p.masters
	if isMaster {
		for i := 0; i < p.decisions; i++ {
			if _, err := nd.Decide(p.work, p.slaves, p.spin); err != nil {
				return st, err
			}
			st.Decisions++
		}
		if err := nd.DrainOwn(60 * time.Second); err != nil {
			return st, err
		}
		nd.AnnounceDone()
	}
	// Quiescence: every master announced Done after draining its own
	// assignments, so once all announcements arrived no application
	// work remains anywhere.
	waitFor := int64(p.masters)
	if isMaster {
		waitFor--
	}
	deadline := time.Now().Add(120 * time.Second)
	for nd.DonesReceived() < waitFor {
		if time.Now().After(deadline) {
			return st, fmt.Errorf("node %d: only %d/%d done announcements after 120s",
				nd.Rank(), nd.DonesReceived(), waitFor)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(p.settle) // let trailing updates land before reporting
	st.Executed = nd.Executed()
	st.Mech = nd.MechStats()
	st.Transport = nd.Transport()
	return st, nil
}
