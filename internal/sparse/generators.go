package sparse

import (
	"fmt"

	"repro/internal/sim"
)

// Stencil selects the connectivity of grid generators.
type Stencil uint8

const (
	// Star is the 5-point (2D) / 7-point (3D) stencil.
	Star Stencil = iota
	// Box is the 9-point (2D) / 27-point (3D) stencil, producing the
	// denser rows of higher-order discretizations (e.g. the ULTRASOUND
	// problems).
	Box
)

// Grid3D generates the pattern of a finite-difference/element operator on
// an nx×ny×nz grid with the given stencil, with dof unknowns per grid
// point (dof > 1 models vector problems such as elasticity, giving the
// denser rows of the PARASOL structural matrices). Coordinates are
// attached for geometric nested dissection.
func Grid3D(nx, ny, nz, dof int, st Stencil, kind Kind) (*Pattern, *Graph) {
	if nx < 1 || ny < 1 || nz < 1 || dof < 1 {
		panic("sparse: invalid grid dimensions")
	}
	n := nx * ny * nz * dof
	b := NewBuilder(n, kind)
	idx := func(x, y, z, d int) int { return ((z*ny+y)*nx+x)*dof + d }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				// Diagonal block: all dofs of a point are coupled.
				for d1 := 0; d1 < dof; d1++ {
					for d2 := d1; d2 < dof; d2++ {
						b.AddSym(idx(x, y, z, d1), idx(x, y, z, d2))
					}
				}
				// Neighbour coupling: only "forward" neighbours so each
				// undirected edge is generated once.
				emit := func(x2, y2, z2 int) {
					if x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 < 0 || z2 >= nz {
						return
					}
					for d1 := 0; d1 < dof; d1++ {
						for d2 := 0; d2 < dof; d2++ {
							b.AddSym(idx(x, y, z, d1), idx(x2, y2, z2, d2))
						}
					}
				}
				if st == Star {
					emit(x+1, y, z)
					emit(x, y+1, z)
					emit(x, y, z+1)
				} else {
					for dz := 0; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							for dx := -1; dx <= 1; dx++ {
								if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
									continue
								}
								emit(x+dx, y+dy, z+dz)
							}
						}
					}
				}
			}
		}
	}
	p := b.Build()
	g := p.ToGraph()
	g.Coords = make([][3]float64, n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				for d := 0; d < dof; d++ {
					g.Coords[idx(x, y, z, d)] = [3]float64{float64(x), float64(y), float64(z)}
				}
			}
		}
	}
	return p, g
}

// Grid2D generates a 2D grid operator (nz = 1 layer of Grid3D).
func Grid2D(nx, ny, dof int, st Stencil, kind Kind) (*Pattern, *Graph) {
	return Grid3D(nx, ny, 1, dof, st, kind)
}

// RandomSym generates a random symmetric pattern with n vertices and
// roughly avgDeg off-diagonal entries per row, using a short-range plus
// long-range mix: frac of the edges connect to nearby indices (banded
// structure, as in discretized problems after some ordering) and the rest
// are uniform (the irregular coupling of circuit or LP matrices).
func RandomSym(n, avgDeg int, frac float64, rng *sim.RNG, kind Kind) *Pattern {
	b := NewBuilder(n, kind)
	for i := 0; i < n; i++ {
		b.AddSym(i, i)
	}
	edges := n * avgDeg / 2
	width := n/50 + 2
	for e := 0; e < edges; e++ {
		i := rng.Intn(n)
		var j int
		if rng.Float64() < frac {
			off := rng.Intn(2*width+1) - width
			j = i + off
			if j < 0 || j >= n {
				j = rng.Intn(n)
			}
		} else {
			j = rng.Intn(n)
		}
		if i == j {
			continue
		}
		b.AddSym(i, j)
	}
	return b.Build()
}

// PowerLawSym generates a symmetric pattern with a few very dense rows on
// top of a sparse background, mimicking normal-equation matrices such as
// GUPTA3 (A·Aᵀ of a linear program): nDense rows are connected to a
// random denseDeg vertices each; the background has avgDeg entries/row.
func PowerLawSym(n, avgDeg, nDense, denseDeg int, rng *sim.RNG) *Pattern {
	if denseDeg >= n {
		denseDeg = n - 1
	}
	b := NewBuilder(n, Sym)
	for i := 0; i < n; i++ {
		b.AddSym(i, i)
	}
	for e := 0; e < n*avgDeg/2; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddSym(i, j)
		}
	}
	for d := 0; d < nDense; d++ {
		hub := rng.Intn(n)
		for k := 0; k < denseDeg; k++ {
			j := rng.Intn(n)
			if j != hub {
				b.AddSym(hub, j)
			}
		}
	}
	return b.Build()
}

// GridPerturbed generates a 2D grid operator with a sprinkling of random
// long-range edges (fracExtra per vertex). Circuit matrices (TWOTONE,
// PRE2) are dominated by a near-planar structure plus a few global
// couplings (supply rails, harmonics); this generator reproduces that
// class and keeps coordinates for geometric nested dissection.
func GridPerturbed(nx, ny int, fracExtra float64, rng *sim.RNG, kind Kind) (*Pattern, *Graph) {
	n := nx * ny
	b := NewBuilder(n, kind)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			b.AddSym(idx(x, y), idx(x, y))
			if x+1 < nx {
				b.AddSym(idx(x, y), idx(x+1, y))
			}
			if y+1 < ny {
				b.AddSym(idx(x, y), idx(x, y+1))
			}
		}
	}
	extra := int(float64(n) * fracExtra)
	for e := 0; e < extra; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddSym(i, j)
		}
	}
	p := b.Build()
	g := p.ToGraph()
	g.Coords = make([][3]float64, n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			g.Coords[idx(x, y)] = [3]float64{float64(x), float64(y), 0}
		}
	}
	return p, g
}

// CliqueOverlay generates the normal-equation structure of a linear
// program (GUPTA3 = A·Aᵀ): each of the k cliques couples a random subset
// of `cliqueSize` unknowns (rows sharing a column of A form a clique of
// A·Aᵀ), over a sparse banded background.
func CliqueOverlay(n, k, cliqueSize, bgDeg int, rng *sim.RNG) *Pattern {
	b := NewBuilder(n, Sym)
	for i := 0; i < n; i++ {
		b.AddSym(i, i)
		for d := 1; d <= bgDeg/2; d++ {
			if i+d < n {
				b.AddSym(i, i+d)
			}
		}
	}
	members := make([]int, cliqueSize)
	for c := 0; c < k; c++ {
		// A clique anchored around a random center with a mix of local
		// and global members, so cliques overlap.
		center := rng.Intn(n)
		for m := range members {
			if rng.Float64() < 0.7 {
				members[m] = (center + rng.Intn(cliqueSize*3)) % n
			} else {
				members[m] = rng.Intn(n)
			}
		}
		for a := 0; a < len(members); a++ {
			for bIdx := a + 1; bIdx < len(members); bIdx++ {
				if members[a] != members[bIdx] {
					b.AddSym(members[a], members[bIdx])
				}
			}
		}
	}
	return b.Build()
}

// Banded generates a banded symmetric pattern of half-bandwidth bw.
func Banded(n, bw int, kind Kind) *Pattern {
	b := NewBuilder(n, kind)
	for i := 0; i < n; i++ {
		for j := i; j <= i+bw && j < n; j++ {
			b.AddSym(i, j)
		}
	}
	return b.Build()
}

// String summarizes a pattern like the rows of Tables 1-2.
func (p *Pattern) String() string {
	return fmt.Sprintf("n=%d nnz=%d %s", p.N, p.NNZ(), p.Kind)
}
