package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("loadex_test_total", "a counter").Add(7)
	srv, err := ServeHTTP("127.0.0.1:0", func() []Sample { return r.Gather() }, func() Health {
		return Health{Rank: 3, Procs: 4, Mech: "snapshot", Detector: "ds", Links: []Link{{Peer: 0, State: "up"}}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "loadex_test_total 7") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	code, body := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz: code %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if h.Rank != 3 || h.Mech != "snapshot" || len(h.Links) != 1 || h.UptimeS < 0 {
		t.Fatalf("/healthz content: %+v", h)
	}
	// pprof index must answer — the profile handlers hang off the
	// same mux.
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
}

func TestValidateAddr(t *testing.T) {
	for _, ok := range []string{":0", ":9090", "127.0.0.1:8080", "localhost:0"} {
		if err := ValidateAddr(ok); err != nil {
			t.Errorf("ValidateAddr(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "9090", "host:", "host:notaport", "host:70000", ":-1", "a b:80"} {
		err := ValidateAddr(bad)
		if err == nil {
			t.Errorf("ValidateAddr(%q) accepted", bad)
			continue
		}
		// The -mech/-chaos UX contract: errors list what IS accepted.
		if !strings.Contains(err.Error(), "accepted forms") {
			t.Errorf("ValidateAddr(%q) error lacks the accepted-forms listing: %v", bad, err)
		}
	}
}
