package obs

// The static catalog: every metric and span kind the layer emits, in
// one place. `loadex list` prints it, the README table is generated
// from the same data, and the CI smoke lane greps for names listed
// here — so a rename that misses a call site fails loudly.

// MetricDef describes one catalog metric.
type MetricDef struct {
	Name     string
	Kind     Kind
	Labels   string // comma-separated label names
	Runtimes string // which layers emit it
	Help     string
}

// Catalog returns the metric catalog, stable order.
func Catalog() []MetricDef {
	return []MetricDef{
		{"loadex_state_msgs_total", KindCounter, "rank", "sim,live,net", "state-channel messages sent (load information exchange)"},
		{"loadex_state_bytes_total", KindCounter, "rank", "sim,live,net", "state-channel bytes sent"},
		{"loadex_data_msgs_total", KindCounter, "rank", "sim,live,net", "data-channel messages sent (work transfer)"},
		{"loadex_data_bytes_total", KindCounter, "rank", "sim,live,net", "data-channel bytes sent"},
		{"loadex_ctrl_msgs_total", KindCounter, "rank", "sim,live,net", "control-channel messages sent (termination detection)"},
		{"loadex_ctrl_bytes_total", KindCounter, "rank", "sim,live,net", "control-channel bytes sent"},
		{"loadex_decisions_total", KindCounter, "rank", "sim,live,net,service", "committed dynamic scheduling decisions"},
		{"loadex_decision_latency_seconds_total", KindCounter, "rank", "sim,live,net,service", "summed view-acquire-to-decision latency"},
		{"loadex_busy_seconds_total", KindCounter, "rank", "net", "wall-clock time the exchanger was busy (snapshot rounds in flight)"},
		{"loadex_executed_total", KindCounter, "rank", "net", "work items completed"},
		{"loadex_frames_in_total", KindCounter, "rank", "net", "wire frames received"},
		{"loadex_frames_out_total", KindCounter, "rank", "net", "wire frames sent"},
		{"loadex_wire_bytes_in_total", KindCounter, "rank", "net", "wire bytes received"},
		{"loadex_wire_bytes_out_total", KindCounter, "rank", "net", "wire bytes sent"},
		{"loadex_links_up", KindGauge, "rank", "net", "peer links currently connected"},
		{"loadex_jobs_admitted_total", KindCounter, "", "service", "jobs admitted to the queue"},
		{"loadex_jobs_completed_total", KindCounter, "", "service", "jobs completed successfully"},
		{"loadex_jobs_failed_total", KindCounter, "", "service", "jobs that failed"},
		{"loadex_jobs_canceled_total", KindCounter, "", "service", "jobs canceled"},
		{"loadex_jobs_running", KindGauge, "", "service", "jobs currently running"},
		{"loadex_jobs_queued", KindGauge, "", "service", "jobs waiting in the admission queue"},
		{"loadex_job_makespan_seconds", KindHistogram, "", "service", "per-job submit-to-finish makespan"},
		{"loadex_job_queue_wait_seconds", KindHistogram, "", "service", "per-job admission-queue wait"},
	}
}

// SpanDef describes one decision-span kind recorded in chaos traces.
type SpanDef struct {
	Name     string
	Track    string // timeline row the reporter draws it on
	Runtimes string
	Help     string
}

// SpanKinds returns the registered span kinds, stable order. The
// "compute" track is synthesized by the reporter from the existing
// start/done compute events rather than span begin/end pairs.
func SpanKinds() []SpanDef {
	return []SpanDef{
		{"decision", "decision", "net,service", "whole dynamic decision: view acquire through work transfer"},
		{"decision.acquire", "decision", "net,service", "waiting for a coherent view (the paper's decision latency)"},
		{"decision.plan", "decision", "net,service", "least-loaded selection and work split"},
		{"decision.transfer", "decision", "net,service", "handing assigned work to the selected slaves"},
		{"snapshot.round", "snapshot", "sim,net", "one snapshot round in flight (exchanger busy interval)"},
		{"termdet.idle", "termdet", "sim,live,net", "rank passive in the termination detector, waiting for work or term"},
		{"job.queued", "job", "service", "job admitted, waiting for a run slot"},
		{"job.run", "job", "service", "job running on the mesh"},
		{"compute", "compute", "sim,live,net", "one compute interval (synthesized from start/done events)"},
	}
}

// SpanTrack returns the timeline track a span kind draws on: the
// catalog's entry when registered, else the prefix before the first
// dot. The validator's LIFO-nesting check applies per (rank, track).
func SpanTrack(kind string) string {
	for _, d := range SpanKinds() {
		if d.Name == kind {
			return d.Track
		}
	}
	for i := 0; i < len(kind); i++ {
		if kind[i] == '.' {
			return kind[:i]
		}
	}
	return kind
}
