package net

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestClusterBasicWorkflow(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			cl, err := NewCluster(4, mech, core.Config{Threshold: core.Load{core.Workload: 1}}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			dec, err := cl.DecideObserved(0, 300, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec.Assignments) != 3 {
				t.Fatalf("assignments %v, want 3", dec.Assignments)
			}
			if err := cl.Drain(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			var executed int64
			for r := 0; r < 4; r++ {
				executed += cl.Executed(r)
			}
			if executed != 3 {
				t.Fatalf("executed %d work items, want 3", executed)
			}
			tr := cl.Transport(0)
			if tr.MsgsOut == 0 || tr.MsgsIn == 0 {
				t.Fatalf("no wire traffic recorded: %+v", tr)
			}
		})
	}
}

// TestClusterConcurrentDecisions is the package's race-detector stress
// test, mirroring internal/live's: several masters decide
// simultaneously over real TCP, so state traffic, data traffic and (for
// the snapshot mechanism) leader elections race end to end. Run with
// -race; -short keeps it in CI budget.
func TestClusterConcurrentDecisions(t *testing.T) {
	rounds := 5
	if testing.Short() {
		rounds = 3
	}
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			const n, masters = 6, 3
			cl, err := NewCluster(n, mech, core.Config{Threshold: core.Load{core.Workload: 10}}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			var wg sync.WaitGroup
			for master := 0; master < masters; master++ {
				wg.Add(1)
				go func(m int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						if err := cl.Decide(m, 100, 2, time.Millisecond); err != nil {
							t.Error(err)
							return
						}
					}
				}(master)
			}
			wg.Wait()
			if err := cl.Drain(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			var executed int64
			for r := 0; r < n; r++ {
				executed += cl.Executed(r)
			}
			if want := int64(masters * rounds * 2); executed != want {
				t.Fatalf("executed %d work items, want %d", executed, want)
			}
			if mech == core.MechSnapshot {
				var initiated int64
				for m := 0; m < masters; m++ {
					initiated += cl.Stats(m).SnapshotsInitiated
				}
				if want := int64(masters * rounds); initiated != want {
					t.Fatalf("snapshots initiated %d, want %d", initiated, want)
				}
			}
		})
	}
}

func TestClusterViewsConvergeAfterQuiescence(t *testing.T) {
	// Zero threshold: every change is broadcast, so after quiescence all
	// views must return to zero.
	cl, err := NewCluster(4, core.MechIncrements, core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for i := 0; i < 4; i++ {
		if err := cl.Decide(i, 40, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitViewsZero(t, func(r int) []core.Load { return cl.View(r) }, 4, 2*time.Second)
}

// waitViewsZero polls until every node's view is all-zero (trailing
// updates are still on the wire right after drain).
func waitViewsZero(t *testing.T, view func(r int) []core.Load, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		clean := true
		for r := 0; r < n && clean; r++ {
			for _, l := range view(r) {
				if l[core.Workload] != 0 {
					clean = false
					break
				}
			}
		}
		if clean {
			return
		}
		if time.Now().After(deadline) {
			for r := 0; r < n; r++ {
				t.Logf("node %d view: %v", r, view(r))
			}
			t.Fatal("views did not converge to zero")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClusterJSONCodec(t *testing.T) {
	cl, err := NewCluster(3, core.MechSnapshot, core.Config{}, Options{Codec: JSONCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.Decide(0, 60, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := cl.Executed(1) + cl.Executed(2); got != 2 {
		t.Fatalf("executed %d, want 2", got)
	}
}

func TestNodeDoneProtocol(t *testing.T) {
	// The multi-process termination handshake: masters announce Done
	// after draining; every node observes all announcements.
	cl, err := NewCluster(3, core.MechNaive, core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.Decide(0, 30, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Node(0).DrainOwn(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cl.Node(0).AnnounceDone()
	deadline := time.Now().Add(2 * time.Second)
	for r := 1; r < 3; r++ {
		for cl.Node(r).DonesReceived() < 1 {
			if time.Now().After(deadline) {
				t.Fatalf("node %d never saw the done announcement", r)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(5, 3, core.MechNaive, core.Config{}, Options{}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := NewNode(0, 1, "bogus", core.Config{}, Options{}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if _, err := NewCodec("bogus"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
