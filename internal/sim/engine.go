package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback in virtual time. Events at equal times fire
// in scheduling order (seq), which makes runs fully deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventHandle identifies a scheduled event so it can be canceled.
// The zero value is invalid.
type EventHandle struct{ e *event }

// Valid reports whether the handle refers to a scheduled event.
func (h EventHandle) Valid() bool { return h.e != nil }

// Engine is the discrete-event simulation core: a virtual clock and a
// priority queue of timed callbacks. Engine is not safe for concurrent use;
// all application code runs inside event callbacks on a single goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64

	// MaxSteps, when non-zero, bounds the number of events processed by Run
	// and RunUntil; exceeding it is reported as an error. It guards against
	// accidental livelock in protocol bugs.
	MaxSteps uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, non-canceled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would violate causality.
func (e *Engine) At(t Time, fn func()) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return EventHandle{ev}
}

// After schedules fn to run d seconds of virtual time from now.
func (e *Engine) After(d Duration, fn func()) EventHandle {
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired (or was already canceled) is a no-op.
func (e *Engine) Cancel(h EventHandle) {
	if h.e != nil {
		h.e.canceled = true
	}
}

// Run processes events until none remain. It returns an error if MaxSteps
// is exceeded.
func (e *Engine) Run() error {
	return e.RunUntil(Time(maxFloat))
}

const maxFloat = 1.7976931348623157e308

// RunUntil processes events with timestamps <= deadline, advancing the
// clock. Events scheduled during processing are themselves processed if
// they fall within the deadline.
func (e *Engine) RunUntil(deadline Time) error {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > deadline {
			return nil
		}
		heap.Pop(&e.events)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.steps++
		if e.MaxSteps > 0 && e.steps > e.MaxSteps {
			return fmt.Errorf("sim: exceeded MaxSteps=%d at t=%v (possible livelock)", e.MaxSteps, e.now)
		}
		ev.fn()
	}
	return nil
}
