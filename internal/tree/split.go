package tree

import "math"

// SplitParams tunes node splitting.
type SplitParams struct {
	// MaxPivFrac is the target ratio Npiv/Nfront for split pieces: a
	// node is split so each piece eliminates at most MaxPivFrac of its
	// front.
	MaxPivFrac float64
	// MinPiv is the smallest pivot block worth a separate node.
	MinPiv int32
	// MinFront: nodes with smaller fronts are never split.
	MinFront int32
}

// DefaultSplit returns the splitting used by the experiments.
func DefaultSplit() SplitParams {
	return SplitParams{MaxPivFrac: 0.125, MinPiv: 32, MinFront: 96}
}

// Split applies MUMPS-style node splitting: an upper node with a thick
// pivot block (Npiv large relative to Nfront) is replaced by a chain of
// nodes each eliminating a thin block. The master of a parallel (future
// Type 2) node then holds only a thin row panel, the Schur complement —
// distributed dynamically over slaves — dominates the node's memory, and
// each chain piece is a separate dynamic decision, as in MUMPS.
//
// The returned tree is freshly numbered in topological order; the input
// is not modified.
func Split(t *Tree, prm SplitParams) *Tree {
	if prm.MaxPivFrac <= 0 || prm.MaxPivFrac >= 1 {
		prm = DefaultSplit()
	}
	out := &Tree{Sym: t.Sym, N: t.N}
	bottom := make([]int32, len(t.Nodes))
	top := make([]int32, len(t.Nodes))

	emit := func(npiv, nfront int32) int32 {
		id := int32(len(out.Nodes))
		out.Nodes = append(out.Nodes, Node{
			ID: id, Parent: -1, Npiv: npiv, Nfront: nfront, Subtree: -1,
			Cost: FrontFlops(nfront, npiv, t.Sym),
		})
		out.TotalCost += out.Nodes[id].Cost
		return id
	}

	for i := range t.Nodes {
		n := &t.Nodes[i]
		pieces := splitSizes(n.Npiv, n.Nfront, prm)
		// Emit the chain bottom-up.
		var prev int32 = -1
		front := n.Nfront
		for k, np := range pieces {
			id := emit(np, front)
			front -= np
			if k == 0 {
				bottom[i] = id
			} else {
				out.Nodes[prev].Parent = id
				out.Nodes[id].Children = []int32{prev}
			}
			prev = id
		}
		top[i] = prev
		// Attach the original children to the chain bottom.
		b := bottom[i]
		for _, c := range n.Children {
			out.Nodes[top[c]].Parent = b
			out.Nodes[b].Children = append(out.Nodes[b].Children, top[c])
		}
	}
	for i := range out.Nodes {
		nd := &out.Nodes[i]
		nd.SubtreeCost += nd.Cost
		if nd.Parent >= 0 {
			out.Nodes[nd.Parent].SubtreeCost += nd.SubtreeCost
		} else {
			out.Roots = append(out.Roots, nd.ID)
		}
	}
	return out
}

// splitSizes returns the pivot-block sizes of the chain, bottom first.
func splitSizes(npiv, nfront int32, prm SplitParams) []int32 {
	target := int32(math.Round(prm.MaxPivFrac * float64(nfront)))
	if target < prm.MinPiv {
		target = prm.MinPiv
	}
	if nfront < prm.MinFront || npiv <= 2*target {
		return []int32{npiv}
	}
	var sizes []int32
	remain := npiv
	front := nfront
	for remain > 0 {
		np := int32(math.Round(prm.MaxPivFrac * float64(front)))
		if np < prm.MinPiv {
			np = prm.MinPiv
		}
		if remain-np < prm.MinPiv {
			np = remain // fold the tail into the last piece
		}
		sizes = append(sizes, np)
		remain -= np
		front -= np
	}
	return sizes
}
