package symbolic

import "fmt"

// AmalgParams tunes relaxed supernode amalgamation (the analysis knob that
// controls assembly-tree granularity, as in MUMPS).
type AmalgParams struct {
	// SmallPiv: a child whose merged pivot count with its parent stays
	// below this is always absorbed (tiny fronts are never worth a task).
	SmallPiv int32
	// FillTol: otherwise merge when the extra (logical) fill introduced
	// by the merge is below this fraction of the merged front area.
	FillTol float64
	// MaxPiv caps the pivot count of an amalgamated node; 0 = no cap.
	MaxPiv int32
}

// DefaultAmalg returns the parameters used by the experiments.
func DefaultAmalg() AmalgParams {
	return AmalgParams{SmallPiv: 16, FillTol: 0.02, MaxPiv: 0}
}

// SNode is one assembly-tree node after amalgamation: a set of Npiv pivot
// variables eliminated within a frontal matrix of order Nfront.
type SNode struct {
	ID       int32
	Parent   int32 // -1 for roots
	Children []int32
	FirstPiv int32 // first pivot in postorder (for fundamental chains)
	Npiv     int32
	Nfront   int32
}

// SchurSize returns the order of the contribution block produced by the
// node (Nfront - Npiv).
func (s *SNode) SchurSize() int32 { return s.Nfront - s.Npiv }

// Supernodes builds fundamental supernodes from a postordered etree and
// its column counts, then applies relaxed amalgamation. Nodes are returned
// in topological order (children before parents) with consistent
// Parent/Children links.
func Supernodes(parent []int32, counts []int32, prm AmalgParams) []SNode {
	n := len(parent)
	if n == 0 {
		return nil
	}
	// Count children to detect chain merges.
	nchild := make([]int32, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			nchild[parent[v]]++
		}
	}
	// Fundamental supernodes: v and parent v+1 merge when v is the only
	// child and the column structures nest exactly.
	snOf := make([]int32, n)
	var sn []SNode
	for v := 0; v < n; v++ {
		if v > 0 && parent[v-1] == int32(v) && nchild[v] == 1 &&
			counts[v] == counts[v-1]-1 {
			id := snOf[v-1]
			snOf[v] = id
			sn[id].Npiv++
			continue
		}
		id := int32(len(sn))
		snOf[v] = id
		sn = append(sn, SNode{ID: id, FirstPiv: int32(v), Npiv: 1, Nfront: counts[v]})
	}
	// Link the supernode tree through the last pivot of each supernode.
	for i := range sn {
		lastPiv := sn[i].FirstPiv + sn[i].Npiv - 1
		if p := parent[lastPiv]; p >= 0 {
			sn[i].Parent = snOf[p]
		} else {
			sn[i].Parent = -1
		}
	}

	// Relaxed amalgamation, bottom-up: absorb a child into its parent
	// when the node is tiny or the extra fill is acceptable. Nfront of the
	// merged node is the standard upper bound npiv_child + nfront_parent
	// (the child's border is contained in the parent's front plus the
	// child's own pivots).
	alive := make([]bool, len(sn))
	for i := range alive {
		alive[i] = true
	}
	// Process in topological (increasing FirstPiv ⇒ children first) order.
	for ci := range sn {
		c := &sn[ci]
		if !alive[ci] || c.Parent < 0 {
			continue
		}
		p := &sn[c.Parent]
		mergedPiv := c.Npiv + p.Npiv
		mergedFront := c.Npiv + p.Nfront
		if mergedFront < c.Nfront {
			mergedFront = c.Nfront
		}
		// Merging pads the child's pivot rows from width Nfront_c to the
		// merged front width: that is the (logical) fill the merge
		// introduces.
		extra := float64(c.Npiv) * float64(mergedFront-c.Nfront)
		area := float64(mergedFront) * float64(mergedFront)
		small := mergedPiv <= prm.SmallPiv
		okFill := extra <= prm.FillTol*area
		capped := prm.MaxPiv > 0 && mergedPiv > prm.MaxPiv
		if capped || (!small && !okFill) {
			continue
		}
		// Absorb c into p.
		p.Npiv = mergedPiv
		p.Nfront = mergedFront
		if c.FirstPiv < p.FirstPiv {
			p.FirstPiv = c.FirstPiv
		}
		alive[ci] = false
		snOfMerge(sn, int32(ci), c.Parent)
	}

	// Compact: renumber live nodes in topological order and rebuild links.
	newID := make([]int32, len(sn))
	for i := range newID {
		newID[i] = -1
	}
	var out []SNode
	for i := range sn {
		if !alive[i] {
			continue
		}
		id := int32(len(out))
		newID[i] = id
		node := sn[i]
		node.ID = id
		node.Children = nil
		out = append(out, node)
	}
	resolve := func(old int32) int32 {
		for old >= 0 && newID[old] < 0 {
			old = sn[old].Parent
		}
		if old < 0 {
			return -1
		}
		return newID[old]
	}
	for i := range out {
		// out[i].Parent still refers to old IDs (possibly dead): chase
		// through dead nodes to the live ancestor.
		out[i].Parent = resolve(out[i].Parent)
		if out[i].Parent == out[i].ID {
			panic("symbolic: node became its own parent")
		}
	}
	for i := range out {
		if p := out[i].Parent; p >= 0 {
			out[p].Children = append(out[p].Children, out[i].ID)
		}
	}
	// Topological sanity: children must precede parents.
	for i := range out {
		if p := out[i].Parent; p >= 0 && p <= int32(i) {
			panic(fmt.Sprintf("symbolic: tree not topological (node %d parent %d)", i, p))
		}
	}
	return out
}

// snOfMerge redirects the dead node's parent pointer so later resolution
// chases into the absorbing parent. (Children of the dead node resolve
// through it.)
func snOfMerge(sn []SNode, dead, into int32) {
	sn[dead].Parent = into
}
