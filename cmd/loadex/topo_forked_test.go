package main

import (
	"testing"
	"time"
)

// TestForkedClusterSparseTopology runs the dissemination mechanisms
// over a forked ring cluster: one OS process per rank, TCP links dialed
// only along ring edges, quiescence decided by done announcements over
// those links. The run must execute every assigned work item — on the
// ring each master's 2 slaves are exactly its 2 neighbors.
func TestForkedClusterSparseTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a multi-process TCP cluster")
	}
	exe := buildLoadex(t)

	for _, mech := range []string{"gossip", "diffusion"} {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			p := nodeParams{
				procs: 6, scenario: "quickstart", mech: mech, topo: "ring",
				threshold: 5, noMore: true, codec: "binary", term: "ds",
				masters: 2, decisions: 2, work: 60, slaves: 2,
				spin: 200 * time.Microsecond, settle: 10 * time.Millisecond,
			}
			stats, err := runClusterForkedWith(exe, &p)
			if err != nil {
				t.Fatal(err)
			}
			var executed, decisions int64
			for _, s := range stats {
				executed += s.Executed
				decisions += int64(s.Decisions)
			}
			if want := int64(p.masters * p.decisions); decisions != want {
				t.Errorf("decisions %d, want %d", decisions, want)
			}
			if want := int64(p.masters * p.decisions * p.slaves); executed != want {
				t.Errorf("executed %d, want %d", executed, want)
			}
		})
	}
}
