package tree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func TestSplitPreservesPivotsAndOrder(t *testing.T) {
	tr := analyzeGrid(t, 8, 8, 8)
	split := Split(tr, DefaultSplit())
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	var before, after int64
	for i := range tr.Nodes {
		before += int64(tr.Nodes[i].Npiv)
	}
	for i := range split.Nodes {
		after += int64(split.Nodes[i].Npiv)
	}
	if before != after {
		t.Fatalf("pivot count changed: %d -> %d", before, after)
	}
	if split.N != tr.N {
		t.Fatal("matrix order changed")
	}
	if len(split.Nodes) < len(tr.Nodes) {
		t.Fatal("splitting cannot reduce the node count")
	}
}

func TestSplitThinsPivotBlocks(t *testing.T) {
	tr := analyzeGrid(t, 10, 10, 10)
	prm := DefaultSplit()
	split := Split(tr, prm)
	for i := range split.Nodes {
		n := &split.Nodes[i]
		if n.Nfront < prm.MinFront {
			continue
		}
		limit := int32(math.Round(prm.MaxPivFrac*float64(n.Nfront))) + prm.MinPiv
		if n.Npiv > 2*limit {
			t.Fatalf("node %d still thick: npiv=%d nfront=%d (limit %d)", n.ID, n.Npiv, n.Nfront, 2*limit)
		}
	}
}

func TestSplitChainStructure(t *testing.T) {
	// A single thick node becomes a chain: each piece has exactly one
	// child (the previous piece) and fronts shrink by npiv along the
	// chain.
	one := &Tree{
		Nodes: []Node{{ID: 0, Parent: -1, Npiv: 200, Nfront: 400, Subtree: -1}},
		Roots: []int32{0},
		N:     200,
	}
	one.Nodes[0].Cost = FrontFlops(400, 200, false)
	one.Nodes[0].SubtreeCost = one.Nodes[0].Cost
	one.TotalCost = one.Nodes[0].Cost
	split := Split(one, DefaultSplit())
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(split.Nodes) < 3 {
		t.Fatalf("thick node not split: %d pieces", len(split.Nodes))
	}
	for i := 0; i < len(split.Nodes)-1; i++ {
		if split.Nodes[i].Parent != int32(i+1) {
			t.Fatalf("not a chain at %d", i)
		}
		if split.Nodes[i+1].Nfront != split.Nodes[i].Nfront-split.Nodes[i].Npiv {
			t.Fatal("front sizes do not telescope")
		}
	}
	if split.Nodes[0].Nfront != 400 {
		t.Fatal("chain bottom must keep the original front")
	}
}

func TestSplitLeavesSmallNodesAlone(t *testing.T) {
	small := &Tree{
		Nodes: []Node{{ID: 0, Parent: -1, Npiv: 20, Nfront: 50, Subtree: -1}},
		Roots: []int32{0},
		N:     20,
	}
	small.Nodes[0].Cost = FrontFlops(50, 20, false)
	small.TotalCost = small.Nodes[0].Cost
	split := Split(small, DefaultSplit())
	if len(split.Nodes) != 1 {
		t.Fatalf("small node split into %d pieces", len(split.Nodes))
	}
}

func TestSplitCostConserved(t *testing.T) {
	// Splitting changes the per-node costs (more, smaller fronts) but
	// the total stays within the telescoping identity: the summed flops
	// of the chain equal the original front's flops (partial
	// factorization composes exactly).
	f := func(nfRaw, npRaw uint16) bool {
		nf := int32(nfRaw%2000) + 200
		np := nf/2 + int32(npRaw)%(nf/2)
		one := &Tree{
			Nodes: []Node{{ID: 0, Parent: -1, Npiv: np, Nfront: nf, Subtree: -1}},
			Roots: []int32{0},
			N:     int(np),
		}
		one.Nodes[0].Cost = FrontFlops(nf, np, false)
		one.TotalCost = one.Nodes[0].Cost
		split := Split(one, DefaultSplit())
		var total float64
		for i := range split.Nodes {
			total += split.Nodes[i].Cost
		}
		return math.Abs(total-one.TotalCost) < 1e-9*one.TotalCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSizesCoverExactly(t *testing.T) {
	f := func(nfRaw, npRaw uint16) bool {
		nf := int32(nfRaw%4000) + 10
		np := int32(npRaw)%nf + 1
		sizes := splitSizes(np, nf, DefaultSplit())
		var sum int32
		for _, s := range sizes {
			if s <= 0 {
				return false
			}
			sum += s
		}
		return sum == np
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitOnRealProblem(t *testing.T) {
	pr, err := sparse.ByName("AUDIKW_1")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pr.Generate(0.01, 3)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := Build(a)
	split := Split(tr, DefaultSplit())
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(split.TotalCost-tr.TotalCost) > 0.02*tr.TotalCost {
		t.Fatalf("splitting distorted total cost: %.4g -> %.4g", tr.TotalCost, split.TotalCost)
	}
}
