package net

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Driver implements workload.Driver over an in-process localhost TCP
// cluster: the same sockets, codec and node loops a multi-process
// deployment uses, minus the fork. Multi-process deployments walk the
// same rank programs through `loadex node` (workload.RunRank over
// *Node).
type Driver struct {
	// Opts is the node option template; per-rank initial loads and
	// speed factors are filled in from the compiled programs.
	Opts Options
	// Drive tunes DriveCluster (Spin is always taken from the run's
	// Params; the rest applies as given).
	Drive workload.DriveOptions
}

// NewDriver returns a TCP runtime driver using opts as the node option
// template.
func NewDriver(opts Options) Driver { return Driver{Opts: opts} }

// Runtime implements workload.Driver.
func (Driver) Runtime() string { return "net" }

// Run implements workload.Driver.
func (d Driver) Run(w workload.Workload, mech core.Mech, cfg core.Config, p workload.Params) (*workload.Report, error) {
	if as, ok := w.(workload.AppScenario); ok {
		// Application scenarios (the solver) are hosted through the
		// application port: the same TCP mesh and codec, one node per
		// rank, in-process (see the execution model in workload/app.go).
		return workload.RunAppScenario(&AppRunner{Opts: d.Opts}, as, mech, cfg, p)
	}
	progs, err := w.Programs(p)
	if err != nil {
		return nil, err
	}
	cl, err := NewCluster(len(progs), mech, cfg, ProgramOptions(d.Opts, progs))
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	opts := d.Drive
	opts.Spin = p.Spin
	rep, err := workload.DriveCluster(cl, mech, progs, opts)
	if err != nil {
		return nil, err
	}
	rep.Scenario, rep.Runtime = w.Name(), "net"
	for r := 0; r < cl.N(); r++ {
		tr := cl.Transport(r)
		rep.WireMsgs += tr.MsgsIn
		rep.WireBytes += tr.BytesIn
	}
	return rep, nil
}

// ProgramOptions returns opts with the per-rank initial loads and speed
// factors of a compiled program set filled in. Both the in-process
// driver and the forked `loadex node` path use it, so the two
// deployments seed identical state.
func ProgramOptions(opts Options, progs []workload.Program) Options {
	opts.Initial, opts.Speed = workload.Setup(progs)
	return opts
}
