package sim

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
)

// NetworkConfig describes the interconnect of the simulated platform.
//
// The paper's platform (IBM SP at IDRIS) is a cluster of SMP nodes: either
// 4-way or 32-way nodes, with a fast intra-node fabric and a slower
// inter-node network. ProcsPerNode models that grouping; processes p and q
// are on the same node when p/ProcsPerNode == q/ProcsPerNode.
type NetworkConfig struct {
	// Latency is the one-way latency between processes on different nodes.
	Latency Duration
	// IntraLatency is the one-way latency within a node. Zero means
	// "same as Latency".
	IntraLatency Duration
	// Bandwidth is the per-link bandwidth in bytes per second of virtual
	// time. Zero means infinite (messages incur latency only).
	Bandwidth float64
	// IntraBandwidth is the intra-node per-link bandwidth; zero means
	// "same as Bandwidth".
	IntraBandwidth float64
	// ProcsPerNode groups processes into SMP nodes; zero or one means
	// every process is its own node.
	ProcsPerNode int
	// IngressBandwidth, when non-zero, serializes all traffic entering a
	// process at this rate (bytes/second). This models NIC/receive-side
	// contention: when many processes restart communication simultaneously
	// (e.g. after a snapshot completes, §4.5) their messages queue at the
	// receiver.
	IngressBandwidth float64
	// Chaos, when non-nil, injects delivery faults (delay jitter,
	// reordering, loss, slow rank, rank crash) per the plan, in virtual
	// time. A pointer so NetworkConfig stays ==-comparable.
	Chaos *chaos.Plan
	// Topo, when non-nil, is the neighbor graph the state channel must
	// respect: a state message between non-neighbors is a seam bug, and
	// Send panics on one. A pointer so NetworkConfig stays ==-comparable.
	Topo *core.Topology
}

// Normalized returns the config with the zero value replaced by
// DefaultNetwork, preserving an attached chaos plan and topology: a
// config that only names a fault plan or a neighbor graph still means
// "the default platform" with those attached.
func (c NetworkConfig) Normalized() NetworkConfig {
	base := c
	base.Chaos = nil
	base.Topo = nil
	if base == (NetworkConfig{}) {
		base = DefaultNetwork()
	}
	base.Chaos = c.Chaos
	base.Topo = c.Topo
	return base
}

// DefaultNetwork returns a configuration resembling a early-2000s cluster
// with a high-bandwidth/low-latency interconnect (the paper notes the IDRIS
// network is "very high bandwidth / low latency").
func DefaultNetwork() NetworkConfig {
	return NetworkConfig{
		Latency:          10 * Microsecond,
		IntraLatency:     3 * Microsecond,
		Bandwidth:        800e6, // 800 MB/s
		IntraBandwidth:   2e9,
		ProcsPerNode:     32,
		IngressBandwidth: 1.2e9,
	}
}

// HighLatencyNetwork returns a configuration for the paper's closing
// discussion: links with high latency / low bandwidth, where the cost of
// maintaining the view with many small messages becomes visible.
func HighLatencyNetwork() NetworkConfig {
	return NetworkConfig{
		Latency:          500 * Microsecond,
		IntraLatency:     5 * Microsecond,
		Bandwidth:        40e6,
		IntraBandwidth:   1e9,
		ProcsPerNode:     4,
		IngressBandwidth: 80e6,
	}
}

// MessageCount aggregates per-channel message statistics.
type MessageCount struct {
	Messages int64
	Bytes    float64
}

// Network models point-to-point FIFO links between n processes. Each
// ordered pair (from, to) is an independent link: messages on it are
// serialized (bandwidth) and delivered in order, which the snapshot
// algorithm of §3 requires (Chandy–Lamport assumes FIFO channels).
type Network struct {
	eng     *Engine
	cfg     NetworkConfig
	n       int
	deliver func(*Message)

	// linkFree[from*n+to] is the time the link becomes available.
	linkFree []Time
	// ingressFree[to] is the time the receiver NIC becomes available.
	ingressFree []Time

	// Counters, indexed by channel.
	counts [NumChannels]MessageCount
	// PerKind counts messages and bytes by (channel, kind) for the
	// experiment harness (Table 6 reports mechanism messages only; the
	// PR-3 counters report per-kind volume too). Entries are pointers so
	// the hot path hashes the key once per message, not twice.
	perKind map[[2]int]*MessageCount

	// Delivery batching: messages scheduled back to back for the same
	// virtual instant share one engine event (a broadcast fan-out lands
	// as a handful of events instead of n-1). pending is the open batch;
	// it accepts another message only while pendingSeq still equals the
	// engine's next sequence number, which proves no other event was
	// scheduled in between — so batched delivery is observably identical
	// to one event per message. Records and their closures are pooled.
	pending     *delivery
	pendingAt   Time
	pendingSeq  uint64
	freeBatches []*delivery

	// Fault-injection state (nil/empty without an active chaos plan).
	chaosRNG *chaos.RNG
	// lastArrive[from*n+to] keeps delivery FIFO per link under delay
	// jitter unless the plan permits reordering.
	lastArrive []Time
	// dropped counts chaos-discarded messages, indexed by channel.
	dropped [NumChannels]int64
}

// NewNetwork creates a network of n processes delivering messages through
// deliver (typically Runtime.Arrive).
func NewNetwork(eng *Engine, n int, cfg NetworkConfig, deliver func(*Message)) *Network {
	if n <= 0 {
		panic("sim: network needs at least one process")
	}
	nw := &Network{
		eng:         eng,
		cfg:         cfg,
		n:           n,
		deliver:     deliver,
		linkFree:    make([]Time, n*n),
		ingressFree: make([]Time, n),
		perKind:     make(map[[2]int]*MessageCount),
	}
	if cfg.Chaos.Active() {
		nw.chaosRNG = cfg.Chaos.RNGFor(n)
		if cfg.Chaos.Delay > 0 && !cfg.Chaos.Reorder {
			nw.lastArrive = make([]Time, n*n)
		}
	}
	return nw
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.n }

// sameNode reports whether two ranks share an SMP node.
func (nw *Network) sameNode(a, b int) bool {
	p := nw.cfg.ProcsPerNode
	if p <= 1 {
		return a == b
	}
	return a/p == b/p
}

// Send transmits m asynchronously. Delivery time accounts for link
// occupancy (FIFO per ordered pair), latency, transfer time and receiver
// ingress serialization. Sending to self delivers after the intra latency.
func (nw *Network) Send(m *Message) {
	if m.To < 0 || m.To >= nw.n || m.From < 0 || m.From >= nw.n {
		panic(fmt.Sprintf("sim: send with bad ranks from=%d to=%d n=%d", m.From, m.To, nw.n))
	}
	if m.Channel == StateChannel && m.From != m.To && !nw.cfg.Topo.Edge(m.From, m.To) {
		panic(fmt.Sprintf("sim: state message kind %d from %d to %d crosses a non-edge of %s",
			m.Kind, m.From, m.To, nw.cfg.Topo.Name()))
	}
	now := nw.eng.Now()
	m.Sent = now
	plan := nw.cfg.Chaos
	faulted := nw.chaosRNG != nil && m.From != m.To

	// Nothing leaves a crashed rank, and lossy links drop eligible
	// messages before they occupy any bandwidth. Local delivery
	// (From == To) is never faulted: a process does not lose messages
	// to itself.
	if faulted {
		if plan.CrashedAt(float64(now), m.From, m.From) || plan.Drops(chaosClass(m.Channel), nw.chaosRNG) {
			nw.dropped[m.Channel]++
			return
		}
	}

	lat := nw.cfg.Latency
	bw := nw.cfg.Bandwidth
	if nw.sameNode(m.From, m.To) {
		if nw.cfg.IntraLatency > 0 {
			lat = nw.cfg.IntraLatency
		}
		if nw.cfg.IntraBandwidth > 0 {
			bw = nw.cfg.IntraBandwidth
		}
	}
	xfer := Duration(0)
	if bw > 0 {
		xfer = Duration(m.Bytes / bw)
	}
	if faulted && plan.SlowsLink(m.From, m.To) && plan.SlowFactor > 1 {
		lat = Duration(float64(lat) * plan.SlowFactor)
		xfer = Duration(float64(xfer) * plan.SlowFactor)
	}

	li := m.From*nw.n + m.To
	start := now
	if nw.linkFree[li] > start {
		start = nw.linkFree[li]
	}
	linkDone := start + xfer
	nw.linkFree[li] = linkDone

	arrive := linkDone + lat
	if nw.cfg.IngressBandwidth > 0 {
		ing := Duration(m.Bytes / nw.cfg.IngressBandwidth)
		if nw.ingressFree[m.To] > arrive {
			arrive = nw.ingressFree[m.To]
		}
		arrive += ing
		nw.ingressFree[m.To] = arrive
	}

	if faulted {
		// Delay jitter, FIFO-clamped per link unless the plan permits
		// reordering; then the receive-side crash cut — nothing arrives
		// at a crashed rank.
		arrive += Duration(plan.DelayFor(nw.chaosRNG))
		if nw.lastArrive != nil {
			if nw.lastArrive[li] > arrive {
				arrive = nw.lastArrive[li]
			}
			nw.lastArrive[li] = arrive
		}
		if plan.CrashedAt(float64(arrive), m.To, m.To) {
			nw.dropped[m.Channel]++
			return
		}
	}

	m.Arrived = arrive
	nw.counts[m.Channel].Messages++
	nw.counts[m.Channel].Bytes += m.Bytes
	key := [2]int{int(m.Channel), m.Kind}
	pk := nw.perKind[key]
	if pk == nil {
		pk = &MessageCount{}
		nw.perKind[key] = pk
	}
	pk.Messages++
	pk.Bytes += m.Bytes

	nw.schedule(m, arrive)
}

// delivery is a reusable batch of messages arriving at one virtual
// instant, with a closure built once so scheduling a delivery allocates
// nothing in steady state.
type delivery struct {
	msgs []*Message
	fn   func()
}

// schedule hands m to the engine for delivery at arrive, joining the open
// batch when that is provably order-preserving (same instant, consecutive
// engine sequence numbers).
func (nw *Network) schedule(m *Message, arrive Time) {
	if d := nw.pending; d != nil && nw.pendingAt == arrive && nw.eng.Seq() == nw.pendingSeq {
		d.msgs = append(d.msgs, m)
		return
	}
	var d *delivery
	if n := len(nw.freeBatches); n > 0 {
		d = nw.freeBatches[n-1]
		nw.freeBatches[n-1] = nil
		nw.freeBatches = nw.freeBatches[:n-1]
	} else {
		d = &delivery{}
		d.fn = func() { nw.fire(d) }
	}
	d.msgs = append(d.msgs, m)
	nw.eng.At(arrive, d.fn)
	nw.pending, nw.pendingAt, nw.pendingSeq = d, arrive, nw.eng.Seq()
}

// fire delivers a batch and recycles the record.
func (nw *Network) fire(d *delivery) {
	if nw.pending == d {
		nw.pending = nil
	}
	msgs := d.msgs
	for i, m := range msgs {
		msgs[i] = nil
		nw.deliver(m)
	}
	d.msgs = msgs[:0]
	nw.freeBatches = append(nw.freeBatches, d)
}

// Broadcast sends a copy of the template message to every rank except from.
// It returns the number of messages sent. Payload is shared across copies;
// payloads must therefore be treated as immutable by receivers.
func (nw *Network) Broadcast(from int, template Message) int {
	sent := 0
	for to := 0; to < nw.n; to++ {
		if to == from {
			continue
		}
		m := template
		m.From = from
		m.To = to
		nw.Send(&m)
		sent++
	}
	return sent
}

// chaosClass maps a simulator channel onto the chaos traffic classes.
func chaosClass(c Channel) chaos.Class {
	switch c {
	case StateChannel:
		return chaos.ClassState
	case DataChannel:
		return chaos.ClassData
	case CtrlChannel:
		return chaos.ClassCtrl
	}
	return chaos.ClassOther
}

// Dropped returns how many messages on a channel the chaos plan
// discarded (loss or crash); always zero without an active plan.
func (nw *Network) Dropped(c Channel) int64 { return nw.dropped[c] }

// DroppedTotal sums the chaos-discarded messages over all channels.
func (nw *Network) DroppedTotal() int64 {
	var total int64
	for _, d := range nw.dropped {
		total += d
	}
	return total
}

// Count returns the aggregate counters for a channel.
func (nw *Network) Count(c Channel) MessageCount { return nw.counts[c] }

// KindCount returns how many messages of the given channel and kind were
// sent.
func (nw *Network) KindCount(c Channel, kind int) int64 {
	if pk := nw.perKind[[2]int{int(c), kind}]; pk != nil {
		return pk.Messages
	}
	return 0
}

// KindTally returns the message and byte totals of one (channel, kind).
func (nw *Network) KindTally(c Channel, kind int) MessageCount {
	if pk := nw.perKind[[2]int{int(c), kind}]; pk != nil {
		return *pk
	}
	return MessageCount{}
}

// Kinds returns the kinds seen on a channel, in unspecified order.
func (nw *Network) Kinds(c Channel) []int {
	var kinds []int
	for key := range nw.perKind {
		if key[0] == int(c) {
			kinds = append(kinds, key[1])
		}
	}
	return kinds
}

// TotalOnChannelExcept returns the number of messages on channel c whose
// kind is not in excluded. It is used to count "messages related to the
// load exchange mechanism" (Table 6).
func (nw *Network) TotalOnChannelExcept(c Channel, excluded ...int) int64 {
	skip := map[int]bool{}
	for _, k := range excluded {
		skip[k] = true
	}
	var total int64
	for key, v := range nw.perKind {
		if key[0] == int(c) && !skip[key[1]] {
			total += v.Messages
		}
	}
	return total
}
