package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Link is one peer connection's state for /healthz.
type Link struct {
	Peer  int    `json:"peer"`
	State string `json:"state"` // "up" | "down"
}

// Health is the /healthz document: who this process is in the mesh and
// whether its seams are alive.
type Health struct {
	Rank       int     `json:"rank"`
	Procs      int     `json:"procs,omitempty"`
	Mech       string  `json:"mech,omitempty"`
	Term       string  `json:"term,omitempty"`
	Detector   string  `json:"detector,omitempty"` // protocol name
	Terminated bool    `json:"terminated"`
	Links      []Link  `json:"links,omitempty"`
	UptimeS    float64 `json:"uptime_s"`
}

// Server is one process's observability endpoint: /metrics (Prometheus
// text format), /healthz (JSON), and the stdlib pprof handlers under
// /debug/pprof/.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// ServeHTTP starts the endpoint on addr (":0" picks a free port).
// gather supplies the scrape samples — typically reg.Gather, or a
// closure merging several per-rank registries; health supplies the
// /healthz document (nil serves a bare uptime). The server runs until
// Close.
func ServeHTTP(addr string, gather func() []Sample, health func() Health) (*Server, error) {
	if err := ValidateAddr(addr); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var samples []Sample
		if gather != nil {
			samples = gather()
		}
		WriteProm(w, samples)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var h Health
		if health != nil {
			h = health()
		} else {
			h.Rank = -1
		}
		h.UptimeS = time.Since(s.start).Seconds()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
	// pprof on an explicit mux: the endpoint is opt-in, so the default
	// mux (which other packages could extend) stays out of it.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (resolved port for ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// ValidateAddr rejects malformed -obs addresses up front, with the
// same listing-style error shape as -mech/-chaos validation: the
// accepted forms are spelled out in the message.
func ValidateAddr(addr string) error {
	forms := `accepted forms: ":9090", "127.0.0.1:9090", "host:0"`
	if addr == "" {
		return fmt.Errorf("empty -obs address (%s)", forms)
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("malformed -obs address %q: %v (%s)", addr, err, forms)
	}
	if port == "" {
		return fmt.Errorf("malformed -obs address %q: missing port (%s)", addr, forms)
	}
	if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("malformed -obs address %q: port %q is not in [0, 65535] (%s)", addr, port, forms)
	}
	if strings.ContainsAny(host, " \t") {
		return fmt.Errorf("malformed -obs address %q: host contains whitespace (%s)", addr, forms)
	}
	return nil
}
