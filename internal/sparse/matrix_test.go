package sparse

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBuilderDedupAndSort(t *testing.T) {
	b := NewBuilder(4, Unsym)
	b.Add(2, 1)
	b.Add(0, 1)
	b.Add(2, 1) // duplicate
	b.Add(3, 3)
	b.Add(1, 0)
	p := b.Build()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Stored() != 4 {
		t.Fatalf("stored = %d, want 4 after dedup", p.Stored())
	}
}

func TestBuilderSymmetricMirrorsToLower(t *testing.T) {
	b := NewBuilder(3, Sym)
	b.Add(0, 2) // upper entry: must be stored as (2,0)
	b.Add(1, 1)
	p := b.Build()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	found := false
	for q := p.ColPtr[0]; q < p.ColPtr[1]; q++ {
		if p.RowIdx[q] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("upper entry not mirrored to lower triangle")
	}
}

func TestNNZSymmetricCountsMirror(t *testing.T) {
	// 3x3 with full diagonal and one off-diagonal pair.
	b := NewBuilder(3, Sym)
	for i := 0; i < 3; i++ {
		b.Add(i, i)
	}
	b.Add(2, 0)
	p := b.Build()
	if p.NNZ() != 5 { // 3 diagonal + 2 mirrored off-diagonal
		t.Fatalf("NNZ = %d, want 5", p.NNZ())
	}
}

func TestGrid3DStructure(t *testing.T) {
	p, g := Grid3D(3, 3, 3, 1, Star, Sym)
	if p.N != 27 {
		t.Fatalf("n = %d, want 27", p.N)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior vertex (1,1,1) = index 13 has 6 neighbours.
	if d := g.Degree(13); d != 6 {
		t.Fatalf("interior degree = %d, want 6", d)
	}
	// Corner vertex 0 has 3 neighbours.
	if d := g.Degree(0); d != 3 {
		t.Fatalf("corner degree = %d, want 3", d)
	}
	if len(g.Coords) != 27 {
		t.Fatal("coordinates missing")
	}
}

func TestGrid3DBoxStencil(t *testing.T) {
	_, g := Grid3D(3, 3, 3, 1, Box, Sym)
	if d := g.Degree(13); d != 26 {
		t.Fatalf("interior 27-point degree = %d, want 26", d)
	}
}

func TestGrid3DMultiDOF(t *testing.T) {
	p, g := Grid3D(2, 2, 2, 3, Star, Sym)
	if p.N != 24 {
		t.Fatalf("n = %d, want 24", p.N)
	}
	// Each vertex couples to 2 same-point dofs + 3 neighbours × 3 dofs.
	if d := g.Degree(0); d != 2+9 {
		t.Fatalf("degree = %d, want 11", d)
	}
}

func TestGraphSymmetryProperty(t *testing.T) {
	// Property: ToGraph always produces a symmetric adjacency with no
	// self-loops and no duplicates, for any generator output.
	f := func(seed uint64, nRaw uint8, degRaw uint8) bool {
		n := int(nRaw)%200 + 10
		deg := int(degRaw)%8 + 1
		rng := sim.NewRNG(seed)
		p := RandomSym(n, deg, 0.5, rng, Unsym)
		if p.Validate() != nil {
			return false
		}
		g := p.ToGraph()
		seen := map[[2]int32]bool{}
		for v := 0; v < g.N; v++ {
			prev := int32(-1)
			for _, u := range g.AdjOf(v) {
				if u == int32(v) || u <= prev {
					return false // self-loop or unsorted/dup
				}
				prev = u
				seen[[2]int32{int32(v), u}] = true
			}
		}
		for e := range seen {
			if !seen[[2]int32{e[1], e[0]}] {
				return false // asymmetric
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawSymHasDenseRows(t *testing.T) {
	rng := sim.NewRNG(3)
	p := PowerLawSym(1000, 6, 10, 200, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := p.ToGraph()
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 100 {
		t.Fatalf("max degree = %d, want dense hub rows", maxDeg)
	}
}

func TestBandedPattern(t *testing.T) {
	p := Banded(10, 2, Sym)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := p.ToGraph()
	if d := g.Degree(5); d != 4 {
		t.Fatalf("banded degree = %d, want 4", d)
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Registry) != 11 {
		t.Fatalf("registry has %d problems, want 11 (8 in Table 1, 3 in Table 2)", len(Registry))
	}
	if len(Set1()) != 8 || len(Set2()) != 3 {
		t.Fatalf("Set1=%d Set2=%d, want 8 and 3", len(Set1()), len(Set2()))
	}
	for _, pr := range Registry {
		p, g := pr.Generate(0.02, 1)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", pr.Name, err)
		}
		if g.N != p.N {
			t.Fatalf("%s: graph size mismatch", pr.Name)
		}
		if p.N < 100 {
			t.Fatalf("%s: scaled matrix too small (n=%d)", pr.Name, p.N)
		}
	}
}

func TestRegistryKindsMatchPaper(t *testing.T) {
	want := map[string]Kind{
		"BMWCRA_1": Sym, "GUPTA3": Sym, "MSDOOR": Sym, "SHIP_003": Sym,
		"PRE2": Unsym, "TWOTONE": Unsym, "ULTRASOUND3": Unsym, "XENON2": Unsym,
		"AUDIKW_1": Sym, "CONV3D64": Unsym, "ULTRASOUND80": Unsym,
	}
	for name, kind := range want {
		pr, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Kind != kind {
			t.Fatalf("%s kind = %v, want %v", name, pr.Kind, kind)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("ByName accepted unknown problem")
	}
}

func TestRegistryScaleMonotone(t *testing.T) {
	pr, _ := ByName("AUDIKW_1")
	small, _ := pr.Generate(0.01, 1)
	big, _ := pr.Generate(0.05, 1)
	if small.N >= big.N {
		t.Fatalf("scale not monotone: %d >= %d", small.N, big.N)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := sim.NewRNG(9)
	orig := RandomSym(50, 4, 0.5, rng, Sym)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != orig.N || got.Stored() != orig.Stored() {
		t.Fatalf("round trip mismatch: n %d/%d stored %d/%d", got.N, orig.N, got.Stored(), orig.Stored())
	}
	for i := range got.RowIdx {
		if got.RowIdx[i] != orig.RowIdx[i] {
			t.Fatal("row indices differ after round trip")
		}
	}
	if got.Kind != Sym {
		t.Fatal("symmetry lost in round trip")
	}
}

func TestMatrixMarketRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n5 1\n",
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d: bad input accepted", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := Banded(5, 1, Sym)
	p.RowIdx[0] = 100
	if p.Validate() == nil {
		t.Fatal("out-of-range row not caught")
	}
	p = Banded(5, 1, Sym)
	p.ColPtr[2] = 0
	if p.Validate() == nil {
		t.Fatal("non-monotone ColPtr not caught")
	}
}
