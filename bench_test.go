// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// (symbolic analysis, static mapping, simulated factorization under each
// mechanism) and reports the headline quantities through b.ReportMetric;
// the full rows — in the paper's layout, with the paper's values
// alongside — are printed by `go run ./cmd/loadex <table>` and archived in
// EXPERIMENTS.md.
//
// The benchmarks use a reduced matrix scale so the whole suite stays
// laptop-friendly; cmd/loadex runs the calibrated default scale.
package main

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

// benchLab builds a Lab at bench scale, shared analyses per benchmark.
func benchLab() *experiments.Lab {
	cfg := experiments.DefaultConfig()
	cfg.ScalePerProcs = map[int]float64{
		32:  0.08,
		64:  0.16,
		128: 0.24,
	}
	return experiments.NewLab(cfg)
}

func BenchmarkTable1Matrices(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Matrices(32)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 11 {
			b.Fatalf("want 11 problems, got %d", len(rows))
		}
	}
}

func BenchmarkTable3Decisions(b *testing.B) {
	lab := benchLab()
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := lab.Table3()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Measured
		}
	}
	b.ReportMetric(float64(total), "decisions")
}

func BenchmarkTable4MemoryPeaks(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Table4([]int{32, 64})
		if err != nil {
			b.Fatal(err)
		}
		// Report the aggregate mechanism comparison: mean peak ratio
		// naive/increments (the paper's Table 4 headline is that naive
		// is generally worse).
		var rn, rs float64
		for _, r := range rows {
			rn += r.Measured.Naive / r.Measured.Increments
			rs += r.Measured.Snapshot / r.Measured.Increments
		}
		b.ReportMetric(rn/float64(len(rows)), "naive/incr-peak")
		b.ReportMetric(rs/float64(len(rows)), "snap/incr-peak")
	}
}

func BenchmarkTable5Time(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Table567([]int{64}, false)
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, r := range rows {
			ratio += r.Time.Snapshot / r.Time.Increments
		}
		b.ReportMetric(ratio/float64(len(rows)), "snap/incr-time")
	}
}

func BenchmarkTable6Messages(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Table567([]int{64}, false)
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, r := range rows {
			ratio += float64(r.Msgs.Increments) / float64(r.Msgs.Snapshot)
		}
		b.ReportMetric(ratio/float64(len(rows)), "incr/snap-msgs")
	}
}

func BenchmarkTable7Threaded(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Table567([]int{64}, true)
		if err != nil {
			b.Fatal(err)
		}
		var speedup float64
		for _, r := range rows {
			speedup += r.SnapshotOpsTime / maxF(r.ThreadedSnapshotOpsTime, 1e-9)
		}
		b.ReportMetric(speedup/float64(len(rows)), "snap-ops-speedup")
	}
}

func BenchmarkFigure1Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mech := range core.Mechanisms() {
			if err := experiments.Figure1(io.Discard, mech); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigure2TreeRender(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		if err := lab.Figure2(io.Discard, "BMWCRA_1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoMoreMaster(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.AblationNoMoreMaster(64)
		if err != nil {
			b.Fatal(err)
		}
		var f float64
		for _, r := range rows {
			f += r.ReductionFactor
		}
		b.ReportMetric(f/float64(len(rows)), "msg-reduction")
	}
}

func BenchmarkAblationLeaderElection(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.AblationLeaderElection(64)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			spread := maxF(r.MinRank, maxF(r.MaxRank, r.ByLoadKey)) /
				minF(r.MinRank, minF(r.MaxRank, r.ByLoadKey))
			if spread > worst {
				worst = spread
			}
		}
		b.ReportMetric(worst, "election-spread")
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rows, err := lab.AblationThreshold("AUDIKW_1", 64, []float64{0.25, 1, 8})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Msgs <= rows[len(rows)-1].Msgs {
			b.Fatalf("threshold sweep not monotone in messages: %+v", rows)
		}
	}
}

// BenchmarkSoloFactorization measures the raw simulator throughput on a
// single mechanism run (events per second of wall time).
func BenchmarkSoloFactorization(b *testing.B) {
	lab := benchLab()
	for _, mech := range core.Mechanisms() {
		mech := mech
		b.Run(string(mech), func(b *testing.B) {
			var steps uint64
			for i := 0; i < b.N; i++ {
				res, err := lab.RunOne("AUDIKW_1", 64, mech, sched.Workload(), nil)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "sim-events")
		})
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
