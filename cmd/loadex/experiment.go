package main

// loadex experiment: the measured version of `loadex run`. It sweeps
// any subset of the scenario × mechanism × runtime matrix, repeats each
// cell, aggregates the per-cell counters (messages, bytes per kind,
// decision latency, busy time, snapshot rounds) and emits paper-shaped
// markdown tables plus a machine-readable benchmark record:
//
//	loadex experiment -scenario all -mech all -runtime sim -repeat 3 -json BENCH_pr3.json
//	loadex experiment -scenario burst -mech all -runtime net -inproc
//
// Cells that fail do not abort the sweep: every cell is visited, the
// failures are listed at the end, and the exit status is non-zero if
// any cell failed.
//
// -service switches to the sustained-throughput bench of the scheduler
// service (internal/service): per mechanism, one resident mesh admits a
// stream of -jobs synthetic jobs at concurrency -conc, and the cell
// records jobs/s and p50/p99 makespan beside the counter totals:
//
//	loadex experiment -service -mech all -jobs 24 -conc 4 -json BENCH_pr7.json -label pr7

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/termdet"
	"repro/internal/workload"
)

func runExperiment(args []string) (retErr error) {
	fs := flag.NewFlagSet("loadex experiment", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	var prof profileFlags
	prof.register(fs)
	procs := fs.Int("procs", 0, "number of processes (alias for -n)")
	runtime := fs.String("runtime", "sim", "runtime: "+strings.Join(runtimeNames(), "|")+"|all")
	inproc := fs.Bool("inproc", true, "net runtime: run the nodes in-process (same TCP sockets, no fork; default true here — unlike `loadex run` — so repeated cells stay cheap; -inproc=false forks one OS process per rank)")
	repeat := fs.Int("repeat", 1, "runs per cell (aggregated as mean/min/max)")
	jsonPath := fs.String("json", "", "write the machine-readable benchmark record to this file")
	label := fs.String("label", "pr3", "label stored in the benchmark record")
	svc := fs.Bool("service", false, "run the scheduler-service sustained-throughput bench instead of the cell matrix")
	jobs := fs.Int("jobs", 24, "service bench: jobs streamed per mechanism")
	conc := fs.Int("conc", 4, "service bench: concurrently running jobs (offered load)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		p.procs = *procs
	}
	if p.masters > p.procs {
		p.masters = p.procs
	}
	if err := p.validate(true); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	if *svc {
		return runServiceBench(&p, *jobs, *conc, *jsonPath, *label)
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1, got %d", *repeat)
	}
	runtimes, scenarios, mechs, err := expandAxes(*runtime, &p)
	if err != nil {
		return err
	}
	// The termination-protocol axis applies to application scenarios
	// only (experiments.Cells drops it from program cells); "-term all"
	// fans it out, producing the mechanism × protocol control-overhead
	// table.
	terms := []string{p.term}
	if p.term == "all" {
		terms = termdet.Names()
	}
	// The chaos axis is a comma-list of plan names ("-chaos
	// none,delay,crash" compares the fault-free cells against the
	// faulted ones); a single name pins every cell to that plan. The
	// topology axis works the same way ("-topo full,ring,grid2d"
	// measures state traffic per neighbor graph).
	plans := strings.Split(p.chaos, ",")
	topos := strings.Split(p.topo, ",")

	cells := experiments.Cells(scenarios, mechs, runtimes, terms, plans, topos)
	results, failed := experiments.Sweep(cells, *repeat, func(c experiments.Cell) (*workload.Report, error) {
		q := p
		if c.Term != "" {
			q.term = c.Term
		} else if q.term == "all" {
			q.term = termdet.Default
		}
		q.chaos = c.Chaos
		q.topo = c.Topo
		if q.topo == "" {
			q.topo = core.TopoFull
		}
		return runCell(c.Scenario, core.Mech(c.Mech), c.Runtime, *inproc, &q)
	}, nil)

	experiments.WriteSweepMarkdown(os.Stdout, results)

	if *jsonPath != "" {
		bench := experiments.Bench{
			Label:  *label,
			Repeat: *repeat,
			Params: p.params(),
			Cells:  results,
		}
		for _, f := range failed {
			bench.Failed = append(bench.Failed, f.Error())
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		werr := experiments.WriteBenchJSON(f, bench)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %d cell(s) to %s\n", len(results), *jsonPath)
	}
	return failedCellsError(failed)
}

// runServiceBench runs the sustained-throughput service bench: one
// resident mesh per mechanism (× protocol, if "-term all"), a stream of
// identical synthetic jobs, and a bench record whose cells carry jobs/s
// and p50/p99 makespan beside the usual counter totals.
func runServiceBench(p *nodeParams, jobs, conc int, jsonPath, label string) error {
	if jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1, got %d", jobs)
	}
	if conc < 1 {
		return fmt.Errorf("-conc must be at least 1, got %d", conc)
	}
	mechs := []core.Mech{core.Mech(p.mech)}
	if p.mech == "all" {
		mechs = core.AllMechanisms()
	}
	terms := []string{p.term}
	if p.term == "all" {
		terms = termdet.Names()
	}
	var results []experiments.CellResult
	var failed []experiments.CellError
	for _, term := range terms {
		cfg := experiments.ServiceBenchConfig{
			Procs:     p.procs,
			Jobs:      jobs,
			Conc:      conc,
			Decisions: p.decisions,
			Work:      p.work,
			Slaves:    p.slaves,
			Spin:      p.spin,
			Term:      term,
			Mechs:     mechs,
		}
		res, fail := experiments.ServiceSweep(cfg, func(m core.Mech) {
			fmt.Printf("service-stream %s term=%s: %d jobs at conc %d on %d ranks\n",
				m, term, jobs, conc, p.procs)
		})
		results = append(results, res...)
		failed = append(failed, fail...)
	}

	experiments.WriteSweepMarkdown(os.Stdout, results)

	if jsonPath != "" {
		bench := experiments.Bench{
			Label:  label,
			Repeat: 1,
			Params: p.params(),
			Cells:  results,
		}
		for _, f := range failed {
			bench.Failed = append(bench.Failed, f.Error())
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		werr := experiments.WriteBenchJSON(f, bench)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %d cell(s) to %s\n", len(results), jsonPath)
	}
	return failedCellsError(failed)
}

// expandAxes resolves the three matrix axes, fanning out "all".
func expandAxes(runtime string, p *nodeParams) (runtimes, scenarios []string, mechs []core.Mech, err error) {
	runtimes = []string{runtime}
	if runtime == "all" {
		runtimes = runtimeNames()
	} else if !isRuntime(runtime) {
		return nil, nil, nil, fmt.Errorf("unknown runtime %q (available: %s, all)",
			runtime, strings.Join(runtimeNames(), ", "))
	}
	scenarios = []string{p.scenario}
	if p.scenario == "all" {
		scenarios = workload.Names()
	}
	mechs = []core.Mech{core.Mech(p.mech)}
	if p.mech == "all" {
		mechs = core.AllMechanisms()
	}
	return runtimes, scenarios, mechs, nil
}

// failedCellsError folds a sweep's failures into one error naming every
// failed cell, or nil — `all` sweeps must not let one broken cell mask
// the rest, and must still exit non-zero.
func failedCellsError(failed []experiments.CellError) error {
	if len(failed) == 0 {
		return nil
	}
	lines := make([]string, 0, len(failed))
	for _, f := range failed {
		lines = append(lines, "  "+f.Error())
	}
	return fmt.Errorf("%d cell(s) failed:\n%s", len(failed), strings.Join(lines, "\n"))
}
