package tree

import (
	"fmt"
	"io"
	"strings"
)

// RenderASCII writes an indented view of the tree (Figure 2 style):
// one line per node with type, sizes and — when labels is non-nil —
// an application label such as the mapped processor(s). Large trees are
// elided below maxDepth.
func (t *Tree) RenderASCII(w io.Writer, labels func(id int32) string, maxDepth int) {
	var walk func(id int32, depth int)
	walk = func(id int32, depth int) {
		n := &t.Nodes[id]
		indent := strings.Repeat("  ", depth)
		lbl := ""
		if labels != nil {
			lbl = "  " + labels(id)
		}
		fmt.Fprintf(w, "%s[%d] %s npiv=%d nfront=%d%s\n", indent, n.ID, n.Type, n.Npiv, n.Nfront, lbl)
		if maxDepth > 0 && depth+1 >= maxDepth {
			if len(n.Children) > 0 {
				fmt.Fprintf(w, "%s  … %d subtree node(s)\n", indent, countBelow(t, id))
			}
			return
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
}

func countBelow(t *Tree, id int32) int {
	total := 0
	var walk func(int32)
	walk = func(v int32) {
		for _, c := range t.Nodes[v].Children {
			total++
			walk(c)
		}
	}
	walk(id)
	return total
}

// RenderDOT writes the tree in Graphviz DOT format, colouring nodes by
// type (Type 1 plain, Type 2 boxed, Type 3 double circle), for the
// tree-visualization example.
func (t *Tree) RenderDOT(w io.Writer, labels func(id int32) string) {
	fmt.Fprintln(w, "digraph assemblytree {")
	fmt.Fprintln(w, "  rankdir=BT;")
	for i := range t.Nodes {
		n := &t.Nodes[i]
		shape := "ellipse"
		switch n.Type {
		case Type2:
			shape = "box"
		case Type3:
			shape = "doublecircle"
		}
		lbl := fmt.Sprintf("%d\\n%s %dx%d", n.ID, n.Type, n.Npiv, n.Nfront)
		if labels != nil {
			lbl += "\\n" + labels(n.ID)
		}
		fmt.Fprintf(w, "  n%d [shape=%s,label=\"%s\"];\n", n.ID, shape, lbl)
		if n.Parent >= 0 {
			fmt.Fprintf(w, "  n%d -> n%d;\n", n.ID, n.Parent)
		}
	}
	fmt.Fprintln(w, "}")
}
