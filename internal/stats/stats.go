// Package stats provides the small summary-statistics toolkit the
// experiment harness uses to describe distributions (per-process memory
// peaks, task durations, snapshot latencies): min/max/mean, percentiles,
// imbalance factors and fixed-width histograms, plus CSV export of table
// rows.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of a sorted sample,
// with linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Imbalance returns max/mean of the sample — the load-balance factor the
// scheduling literature reports (1.0 = perfectly balanced). An empty or
// all-zero sample returns 0.
func Imbalance(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Max / s.Mean
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g mean=%.4g p90=%.4g p99=%.4g max=%.4g σ=%.3g",
		s.N, s.Min, s.P50, s.Mean, s.P90, s.P99, s.Max, s.StdDev)
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	// Under and Over count out-of-range samples.
	Under, Over int
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, buckets)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) {
			i--
		}
		h.Buckets[i]++
	}
}

// Render writes an ASCII bar chart, one row per bucket.
func (h *Histogram) Render(w io.Writer, width int) {
	if width <= 0 {
		width = 40
	}
	max := 1
	for _, c := range h.Buckets {
		if c > max {
			max = c
		}
	}
	step := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(w, "%12.4g ┤%-*s %d\n", h.Lo+float64(i)*step, width, bar, c)
	}
	if h.Under > 0 || h.Over > 0 {
		fmt.Fprintf(w, "(under=%d over=%d)\n", h.Under, h.Over)
	}
}

// CSV writes rows of named columns; all rows must share the header
// length. It is the export format of the experiment harness.
func CSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("stats: row %d has %d columns, header has %d", i, len(row), len(header))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
