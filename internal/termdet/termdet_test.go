package termdet

import (
	"testing"
	"testing/quick"
)

// fabric is a deterministic in-memory network for detector tests. It
// simulates an application where processes forward "work" messages and
// the detector tracks engagement.
type fabric struct {
	n    int
	dets []*Detector
	// queues: work messages and acks, one global FIFO each (per-pair
	// FIFO is preserved).
	work []msg
	acks []int // destination ranks
	done bool
}

type msg struct{ from, to int }

type fctx struct {
	f    *fabric
	rank int
}

func (c fctx) Rank() int { return c.rank }
func (c fctx) SendAck(to int) {
	c.f.acks = append(c.f.acks, packAck(c.rank, to))
}

func packAck(from, to int) int { return from*1000 + to }

func newFabric(n int) *fabric {
	f := &fabric{n: n}
	for r := 0; r < n; r++ {
		r := r
		var onTerm func()
		if r == 0 {
			onTerm = func() { f.done = true }
		}
		f.dets = append(f.dets, New(r, r == 0, onTerm))
	}
	return f
}

// send issues an application message from -> to.
func (f *fabric) send(from, to int) {
	f.dets[from].OnSend(fctx{f, from}, to)
	f.work = append(f.work, msg{from, to})
}

// step delivers one queued item (acks first, then work). Returns false
// when quiescent.
func (f *fabric) step(processWork func(to int)) bool {
	if len(f.acks) > 0 {
		a := f.acks[0]
		f.acks = f.acks[1:]
		to := a % 1000
		f.dets[to].OnAck(fctx{f, to})
		return true
	}
	if len(f.work) > 0 {
		m := f.work[0]
		f.work = f.work[1:]
		f.dets[m.to].OnReceive(fctx{f, m.to}, m.from)
		if processWork != nil {
			processWork(m.to)
		}
		f.dets[m.to].Passive(fctx{f, m.to})
		return true
	}
	return false
}

func (f *fabric) drain(processWork func(to int)) {
	for i := 0; i < 1_000_000; i++ {
		if !f.step(processWork) {
			return
		}
	}
	panic("termdet fabric: livelock")
}

func TestRootOnlyTerminatesImmediately(t *testing.T) {
	f := newFabric(3)
	// Root does its work and goes passive without sending anything.
	f.dets[0].Passive(fctx{f, 0})
	if !f.done {
		t.Fatal("root alone must terminate at once")
	}
}

func TestSimpleDiffusion(t *testing.T) {
	f := newFabric(3)
	// Root sends work to 1 and 2, then goes passive.
	f.send(0, 1)
	f.send(0, 2)
	f.dets[0].Passive(fctx{f, 0})
	if f.done {
		t.Fatal("terminated with messages in flight")
	}
	f.drain(nil)
	if !f.done {
		t.Fatal("termination not detected after all work done")
	}
	for r := 0; r < 3; r++ {
		if f.dets[r].Deficit() != 0 {
			t.Fatalf("process %d ends with deficit %d", r, f.dets[r].Deficit())
		}
		if r > 0 && f.dets[r].Engaged() {
			t.Fatalf("process %d still engaged", r)
		}
	}
}

func TestForwardingChainAndReengagement(t *testing.T) {
	f := newFabric(4)
	// Root → 1; when 1 processes, it forwards to 2; 2 forwards to 3.
	f.send(0, 1)
	f.dets[0].Passive(fctx{f, 0})
	hops := map[int]int{1: 2, 2: 3}
	f.drain(func(to int) {
		if next, ok := hops[to]; ok {
			f.send(to, next)
			delete(hops, to)
		}
	})
	if !f.done {
		t.Fatal("chain termination not detected")
	}
	// Re-engagement: a second wave must work after the first terminated
	// ... but Dijkstra-Scholten is single-shot from the root; verify the
	// root's terminated flag latched exactly once.
	if !f.dets[0].Terminated() {
		t.Fatal("root flag lost")
	}
}

func TestNoFalseTermination(t *testing.T) {
	f := newFabric(3)
	f.send(0, 1)
	f.dets[0].Passive(fctx{f, 0})
	// Process 1 receives the work but forwards to 2 before going
	// passive; the root must not terminate while 2's work is pending.
	f.dets[1].OnReceive(fctx{f, 1}, 0)
	f.work = f.work[1:] // consumed manually
	f.send(1, 2)
	if f.done {
		t.Fatal("false termination: message to 2 in flight")
	}
	f.dets[1].Passive(fctx{f, 1})
	if f.done {
		t.Fatal("false termination: 1 has nonzero deficit")
	}
	f.drain(nil)
	if !f.done {
		t.Fatal("termination missed")
	}
}

func TestPanicsOnProtocolViolation(t *testing.T) {
	f := newFabric(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ack with zero deficit accepted")
			}
		}()
		f.dets[1].OnAck(fctx{f, 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("send while passive+disengaged accepted")
			}
		}()
		f.dets[1].OnSend(fctx{f, 1}, 0)
	}()
}

func TestRandomDiffusionProperty(t *testing.T) {
	// Whatever the random forwarding pattern, the detector terminates
	// exactly when all work is done, with all deficits zero and all
	// non-roots disengaged.
	f := func(seed uint64, nRaw, fanRaw uint8) bool {
		n := int(nRaw)%6 + 2
		fan := int(fanRaw)%3 + 1
		fb := newFabric(n)
		rng := seed
		budget := 50 // total forwards allowed
		for i := 0; i < fan; i++ {
			rng = rng*6364136223846793005 + 1
			fb.send(0, 1+int(rng>>33)%(n-1))
		}
		fb.dets[0].Passive(fctx{fb, 0})
		fb.drain(func(to int) {
			if budget <= 0 {
				return
			}
			rng = rng*6364136223846793005 + 1
			if rng>>62 == 0 { // 25%: forward more work
				budget--
				rng = rng*6364136223846793005 + 1
				fb.send(to, int(rng>>33)%n)
			}
		})
		if !fb.done {
			return false
		}
		for r := 0; r < n; r++ {
			if fb.dets[r].Deficit() != 0 {
				return false
			}
			if r > 0 && fb.dets[r].Engaged() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
