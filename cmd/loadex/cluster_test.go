package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

func testParams(scenario, mech string) nodeParams {
	return nodeParams{
		procs: 5, scenario: scenario, mech: mech, threshold: 5, noMore: true, codec: "binary",
		term: "ds", masters: 2, decisions: 2, work: 60, slaves: 2,
		spin: 100 * time.Microsecond, settle: 10 * time.Millisecond,
	}
}

func TestClusterInProcAllMechanisms(t *testing.T) {
	for _, mech := range mechNames() {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			p := testParams("quickstart", mech)
			stats, err := runClusterInProc(&p)
			if err != nil {
				t.Fatal(err)
			}
			var executed, decisions int64
			for _, s := range stats {
				executed += s.Executed
				decisions += int64(s.Decisions)
			}
			if want := int64(p.masters * p.decisions * p.slaves); executed != want {
				t.Fatalf("executed %d, want %d", executed, want)
			}
			if want := int64(p.masters * p.decisions); decisions != want {
				t.Fatalf("decisions %d, want %d", decisions, want)
			}
			var report strings.Builder
			writeClusterReport(&report, &p, true, stats)
			for _, want := range []string{"mechanism " + mech, "scenario quickstart", "quiescent"} {
				if !strings.Contains(report.String(), want) {
					t.Fatalf("report missing %q:\n%s", want, report.String())
				}
			}
		})
	}
}

// TestClusterInProcScenarios smokes the non-default scenarios over real
// in-process TCP under one mechanism each.
func TestClusterInProcScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP scenario sweep")
	}
	for _, tc := range []struct{ scenario, mech string }{
		{"burst", "increments"},
		{"ramp", "naive"},
		{"hetero", "snapshot"},
		{"straggler", "snapshot"},
	} {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			p := testParams(tc.scenario, tc.mech)
			stats, err := runClusterInProc(&p)
			if err != nil {
				t.Fatal(err)
			}
			var decisions int
			for _, s := range stats {
				decisions += s.Decisions
			}
			if decisions == 0 {
				t.Fatalf("scenario %s took no decisions", tc.scenario)
			}
		})
	}
}

func TestNodeParamsValidate(t *testing.T) {
	good := testParams("quickstart", "snapshot")
	if err := good.validate(false); err != nil {
		t.Fatal(err)
	}
	matrix := testParams("all", "all")
	if err := matrix.validate(true); err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		mutate  func(*nodeParams)
		mention string
	}{
		{func(p *nodeParams) { p.procs = 1 }, "at least 2 processes"},
		{func(p *nodeParams) { p.masters = 0 }, "masters"},
		{func(p *nodeParams) { p.masters = 9 }, "masters"},
		{func(p *nodeParams) { p.slaves = 0 }, "slave"},
		{func(p *nodeParams) { p.decisions = 0 }, "decision"},
		{func(p *nodeParams) { p.mech = "telepathy" }, "unknown mechanism"},
		{func(p *nodeParams) { p.topo = "moebius" }, "unknown topology"},
		{func(p *nodeParams) { p.scenario = "nope" }, "unknown scenario"},
		{func(p *nodeParams) { p.codec = "xml" }, "unknown codec"},
		{func(p *nodeParams) { p.term = "heartbeat" }, "unknown termination protocol"},
	}
	for _, tc := range bad {
		p := testParams("quickstart", "snapshot")
		tc.mutate(&p)
		err := p.validate(false)
		if err == nil {
			t.Fatalf("params %+v validated", p)
		}
		if !strings.Contains(err.Error(), tc.mention) {
			t.Errorf("error %q does not mention %q", err, tc.mention)
		}
	}

	// Unknown-name errors must list the registered names so the usage
	// message is self-updating.
	p := testParams("nope", "snapshot")
	err := p.validate(false)
	if err == nil || !strings.Contains(err.Error(), "quickstart") {
		t.Errorf("unknown-scenario error %v does not list registered scenarios", err)
	}
	p = testParams("quickstart", "telepathy")
	err = p.validate(false)
	if err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("unknown-mechanism error %v does not list registered mechanisms", err)
	}
	p = testParams("quickstart", "snapshot")
	p.topo = "moebius"
	err = p.validate(false)
	if err == nil || !strings.Contains(err.Error(), "ring") {
		t.Errorf("unknown-topology error %v does not list registered topologies", err)
	}
	// The hypercube constrains -n; the builder's error must surface.
	p = testParams("quickstart", "snapshot")
	p.topo = "hypercube" // procs = 5, not a power of two
	if err := p.validate(false); err == nil {
		t.Error("hypercube on 5 ranks validated")
	}
	// An application scenario needs the complete graph.
	p = testParams("solver-wl", "snapshot")
	p.topo = "ring"
	err = p.validate(false)
	if err == nil || !strings.Contains(err.Error(), "full topology") {
		t.Errorf("app scenario on a sparse topology validated: %v", err)
	}
	p.topo = "full"
	if err := p.validate(false); err != nil {
		t.Errorf("app scenario on the full topology rejected: %v", err)
	}
	p = testParams("quickstart", "snapshot")
	p.term = "heartbeat"
	err = p.validate(false)
	for _, name := range termdet.Names() {
		if err == nil || !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-protocol error %v does not list %q", err, name)
		}
	}
	// "all" is matrix-only for -term as well.
	p = testParams("quickstart", "snapshot")
	p.term = "all"
	if err := p.validate(false); err == nil {
		t.Error("-term all validated for a single node")
	}
	if err := p.validate(true); err != nil {
		t.Errorf("-term all rejected for matrix commands: %v", err)
	}
	// "all" is a matrix-only value.
	p = testParams("all", "snapshot")
	if err := p.validate(false); err == nil {
		t.Error("-scenario all validated for a single node")
	}
}

// TestRunCellSim drives every scenario × mechanism cell through the
// deterministic sim runtime — the `loadex run` hot path without
// sockets.
func TestRunCellSim(t *testing.T) {
	p := testParams("quickstart", "snapshot")
	for _, scenario := range workload.Names() {
		for _, mech := range core.Mechanisms() {
			rep, err := runCell(scenario, mech, "sim", false, &p)
			if err != nil {
				t.Fatalf("%s × %s: %v", scenario, mech, err)
			}
			if rep.DecisionsTaken == 0 || rep.TotalExecuted() == 0 {
				t.Errorf("%s × %s: empty report (%d decisions, %d executed)",
					scenario, mech, rep.DecisionsTaken, rep.TotalExecuted())
			}
			if rep.Runtime != "sim" || rep.Scenario != scenario {
				t.Errorf("%s × %s: mislabeled report %s/%s", scenario, mech, rep.Scenario, rep.Runtime)
			}
		}
	}
}
