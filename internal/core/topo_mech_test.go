package core

import "testing"

// mkTopoMech builds one mechanism per rank over the given topology and
// wires them through the deterministic fake fabric, recording every
// send's endpoints so tests can assert no state message ever crosses a
// non-edge.
func mkTopoMech(t *testing.T, mech Mech, topo *Topology, thr float64) (*fakeNet, []Exchanger) {
	t.Helper()
	n := topo.N()
	net := newFakeNet(n)
	for r := 0; r < n; r++ {
		x, err := New(mech, n, r, Config{Threshold: Load{Workload: thr}, Topo: topo})
		if err != nil {
			t.Fatal(err)
		}
		net.exs[r] = x
		x.Init(net.ctx(r), Load{})
	}
	return net, net.exs
}

// drainOnEdges drains the fabric, asserting every delivered message
// travels a topology edge.
func drainOnEdges(t *testing.T, net *fakeNet, topo *Topology, limit int) {
	t.Helper()
	for steps := 0; len(net.queue) > 0; steps++ {
		if steps > limit {
			t.Fatal("message storm")
		}
		m := net.queue[0]
		if !topo.Edge(m.from, m.to) {
			t.Fatalf("%s sent %d→%d across a non-edge of %s", KindName(m.kind), m.from, m.to, topo.Name())
		}
		net.step()
	}
}

func TestMechanismsStayOnTopologyEdges(t *testing.T) {
	for _, mech := range AllMechanisms() {
		for _, topoName := range []string{"ring", "grid2d", "hypercube"} {
			topo := mustTopo(t, topoName, 8)
			net, exs := mkTopoMech(t, mech, topo, 0)
			// Exercise every send path: spontaneous changes, a decision
			// (Acquire/Commit) from two masters, and No_more_master.
			for r := 0; r < 8; r++ {
				exs[r].LocalChange(net.ctx(r), Load{Workload: float64(r + 1)}, false)
			}
			drainOnEdges(t, net, topo, 10000)
			for _, master := range []int{0, 5} {
				done := false
				exs[master].Acquire(net.ctx(master), func() { done = true })
				drainOnEdges(t, net, topo, 10000)
				if !done {
					t.Fatalf("%s on %s: Acquire never became ready", mech, topoName)
				}
				d := PlanDecisionOn(topo, exs[master].View(), master, 2, 60)
				for _, a := range d.Assignments {
					if !topo.Edge(master, int(a.Proc)) {
						t.Fatalf("%s on %s: master %d selected non-neighbor %d", mech, topoName, master, a.Proc)
					}
				}
				exs[master].Commit(net.ctx(master), d.Assignments)
				drainOnEdges(t, net, topo, 10000)
			}
			exs[3].NoMoreMaster(net.ctx(3))
			drainOnEdges(t, net, topo, 10000)
		}
	}
}

func TestGossipSpreadsOverSparseGraph(t *testing.T) {
	// A rumor from rank 0 must reach every rank of a ring: fanout 2
	// covers both neighbors at each hop and the TTL default spans the
	// diameter.
	topo := mustTopo(t, "ring", 8)
	net := newFakeNet(8)
	for r := 0; r < 8; r++ {
		x := NewGossip(8, r, Config{Topo: topo, GossipTTL: 8})
		net.exs[r] = x
		x.Init(net.ctx(r), Load{})
	}
	net.exs[0].LocalChange(net.ctx(0), Load{Workload: 42}, false)
	net.drain(10000)
	for r := 1; r < 8; r++ {
		if got := net.exs[r].View().Metric(0, Workload); got != 42 {
			t.Fatalf("rank %d sees %v for origin 0, want 42", r, got)
		}
	}
}

func TestGossipDropsStaleRumors(t *testing.T) {
	topo := mustTopo(t, "ring", 4)
	net := newFakeNet(4)
	for r := 0; r < 4; r++ {
		x := NewGossip(4, r, Config{Topo: topo})
		net.exs[r] = x
		x.Init(net.ctx(r), Load{})
	}
	x1 := net.exs[1].(*Gossip)
	x1.HandleMessage(net.ctx(1), 0, KindGossip, GossipPayload{Origin: 0, Seq: 3, TTL: 1, Load: Load{Workload: 30}})
	if got := x1.View().Metric(0, Workload); got != 30 {
		t.Fatalf("fresh rumor not applied: %v", got)
	}
	x1.HandleMessage(net.ctx(1), 3, KindGossip, GossipPayload{Origin: 0, Seq: 2, TTL: 5, Load: Load{Workload: 20}})
	if got := x1.View().Metric(0, Workload); got != 30 {
		t.Fatalf("stale rumor applied: %v", got)
	}
	if len(net.queue) != 0 {
		t.Fatal("stale or TTL-expired rumor was re-forwarded")
	}
}

func TestGossipForwardingIsDeterministic(t *testing.T) {
	// Two identical runs must produce the identical delivery trace —
	// the per-rank RNG streams are pure functions of (rank, n), which
	// is what keeps sim runs reproducible and forked processes aligned.
	run := func() []fakeMsg {
		topo := mustTopo(t, "random-3", 9)
		net := newFakeNet(9)
		for r := 0; r < 9; r++ {
			x := NewGossip(9, r, Config{Topo: topo})
			net.exs[r] = x
			x.Init(net.ctx(r), Load{})
		}
		net.exs[4].LocalChange(net.ctx(4), Load{Workload: 7}, false)
		var log []fakeMsg
		for steps := 0; len(net.queue) > 0; steps++ {
			if steps > 10000 {
				t.Fatal("message storm")
			}
			log = append(log, net.queue[0])
			net.step()
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].from != b[i].from || a[i].to != b[i].to || a[i].kind != b[i].kind {
			t.Fatalf("delivery traces diverge at step %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDiffusionAveragesNeighborEstimates(t *testing.T) {
	topo := mustTopo(t, "ring", 4) // 0-1-2-3-0
	net, exs := mkTopoMech(t, MechDiffusion, topo, 0)
	// Rank 0 loads up: neighbors 1 and 3 learn the exact value.
	exs[0].LocalChange(net.ctx(0), Load{Workload: 8}, false)
	net.drain(100)
	if got := exs[1].View().Metric(0, Workload); got != 8 {
		t.Fatalf("direct neighbor sees %v, want 8 (sender's own entry is exact)", got)
	}
	if got := exs[2].View().Metric(0, Workload); got != 0 {
		t.Fatalf("non-neighbor sees %v before any relay, want 0", got)
	}
	// Rank 1 now changes: its view (holding the exact 8) diffuses to
	// rank 2, which averages 0 and 8.
	exs[1].LocalChange(net.ctx(1), Load{Workload: 2}, false)
	net.drain(100)
	if got := exs[2].View().Metric(0, Workload); got != 4 {
		t.Fatalf("two-hop estimate = %v, want 4 ((0+8)/2)", got)
	}
	// A neighbor's stale estimate of rank 2 itself must never leak in.
	if got := exs[2].View().Metric(2, Workload); got != 0 {
		t.Fatalf("rank 2's own entry drifted to %v", got)
	}
}

func TestDiffusionIgnoresMalformedVector(t *testing.T) {
	topo := mustTopo(t, "ring", 4)
	net, exs := mkTopoMech(t, MechDiffusion, topo, 0)
	exs[1].HandleMessage(net.ctx(1), 0, KindDiffuse, DiffusePayload{Loads: []Load{{Workload: 9}}})
	for r := 0; r < 4; r++ {
		if got := exs[1].View().Metric(r, Workload); got != 0 {
			t.Fatalf("malformed vector applied: rank %d = %v", r, got)
		}
	}
}

func TestGossipDiffusionRegistryAndDefaults(t *testing.T) {
	if len(Mechanisms()) != 3 {
		t.Fatal("the paper's mechanism set must stay at 3 (goldens iterate it)")
	}
	if len(AllMechanisms()) != 5 {
		t.Fatalf("AllMechanisms = %v, want the paper's 3 + gossip + diffusion", AllMechanisms())
	}
	for _, m := range []Mech{MechGossip, MechDiffusion} {
		x, err := New(m, 4, 0, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if x.Name() != string(m) {
			t.Fatalf("Name() = %q, want %q", x.Name(), m)
		}
		if x.Busy() {
			t.Fatal("dissemination mechanisms never block")
		}
	}
	if ttl := defaultGossipTTL(8); ttl != 5 {
		t.Fatalf("default TTL(8) = %d, want ⌈log2 8⌉+2 = 5", ttl)
	}
}
