package main

// loadex node: one process of a TCP cluster. Normally forked by
// `loadex cluster` / `loadex run -runtime net`, which drive the stdio
// handshake:
//
//	node   → parent:  ADDR <rank> <host:port>   (after binding)
//	parent → node:    PEERS <addr0>,<addr1>,…   (once all ranks bound)
//	node   → parent:  STATS <json>              (after quiescence)
//
// Program scenarios: every rank compiles the scenario's per-rank
// programs locally (deterministic in the shared flags), walks its own
// program, drains the work it assigned and announces Done; the cluster
// is quiescent once every rank's announcement arrived, plus a settle
// delay for trailing state messages.
//
// Application scenarios (solver-wl, solver-mem, solver-hetero): every
// rank builds the same application instance deterministically and runs
// exactly one rank of it over the TCP mesh; quiescence is decided by
// the distributed termination detector (-term, internal/termdet), not
// by host-side counters.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	xnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// nodeStats is the per-rank report a node prints and the cluster parent
// aggregates. Flops and PeakMem are filled by application-scenario
// nodes (the solver), so the parent can check executed-flops
// conservation against the sim reference without a shared process.
type nodeStats struct {
	Rank      int                 `json:"rank"`
	Executed  int64               `json:"executed"`
	Decisions int                 `json:"decisions"`
	Mech      core.Stats          `json:"mech"`
	Transport xnet.TransportStats `json:"transport"`
	Counters  core.Counters       `json:"counters"`
	Flops     float64             `json:"flops,omitempty"`
	PeakMem   float64             `json:"peak_mem,omitempty"`
}

// nodeParams collects the scenario-shaping flags shared by `loadex
// node`, `loadex cluster` and `loadex run`.
type nodeParams struct {
	procs     int
	scenario  string
	mech      string
	threshold float64
	noMore    bool
	codec     string
	term      string
	topo      string
	masters   int
	decisions int
	work      float64
	slaves    int
	spin      time.Duration
	settle    time.Duration
	timeout   time.Duration
	// statsTimeout is the parent watchdog's slack for forked clusters
	// (the ADDR-phase deadline, and the padding the STATS deadline adds
	// on top of timeout + settle). It is a `loadex cluster` flag, not a
	// per-node one: only the parent runs the watchdog.
	statsTimeout time.Duration
	chaos        string
	traceDir     string
	obsAddr      string
	tele         time.Duration
}

func (p *nodeParams) register(fs *flag.FlagSet) {
	fs.IntVar(&p.procs, "n", 8, "number of processes in the cluster")
	fs.StringVar(&p.scenario, "scenario", "quickstart",
		"workload scenario: "+strings.Join(workload.Names(), "|"))
	fs.StringVar(&p.mech, "mech", "snapshot", "mechanism: "+strings.Join(mechNames(), "|"))
	fs.Float64Var(&p.threshold, "threshold", 5, "maintained-mechanism broadcast threshold (workload units)")
	fs.BoolVar(&p.noMore, "nomore", true, "enable the No_more_master optimization (§2.3)")
	fs.StringVar(&p.codec, "codec", "binary", "wire codec: "+strings.Join(xnet.CodecNames(), "|"))
	fs.StringVar(&p.term, "term", termdet.Default,
		"termination-detection protocol for application scenarios: "+strings.Join(termdet.Names(), "|"))
	fs.StringVar(&p.topo, "topo", "full",
		"neighbor topology state messages travel: "+strings.Join(core.TopologyNames(), "|"))
	fs.IntVar(&p.masters, "masters", 3, "ranks [0,masters) take dynamic decisions (scenarios may widen)")
	fs.IntVar(&p.decisions, "decisions", 4, "decisions per master")
	fs.Float64Var(&p.work, "work", 120, "work units distributed per decision")
	fs.IntVar(&p.slaves, "slaves", 3, "slaves selected per decision")
	fs.DurationVar(&p.spin, "spin", time.Millisecond, "nominal execution time per work item")
	fs.DurationVar(&p.settle, "settle", 50*time.Millisecond, "delay for trailing state messages before exit")
	fs.DurationVar(&p.timeout, "timeout", 2*time.Minute, "per-node quiescence deadline (raise for large forked solver cells)")
	fs.StringVar(&p.chaos, "chaos", "",
		"fault-injection plan: "+strings.Join(chaos.Names(), "|")+" (empty = none; `loadex list` describes them)")
	fs.StringVar(&p.traceDir, "trace", "",
		"record per-rank JSONL trace events under this directory for `loadex validate` and `loadex report`")
	fs.StringVar(&p.obsAddr, "obs", "",
		"serve Prometheus /metrics, /healthz and /debug/pprof on this address (e.g. :9090; empty = off)")
	fs.DurationVar(&p.tele, "tele", 0,
		"print a TELE <json> telemetry line every period (0 = off; `loadex cluster` forwards it to forked ranks)")
}

// mechNames lists the registered mechanism names: the paper's three
// first, in the order its tables use, then the dissemination tenants
// (gossip, diffusion) the topology seam hosts.
func mechNames() []string {
	names := make([]string, 0, len(core.AllMechanisms()))
	for _, m := range core.AllMechanisms() {
		names = append(names, string(m))
	}
	return names
}

func (p *nodeParams) config() core.Config {
	return core.Config{
		Threshold:       core.Load{core.Workload: p.threshold},
		NoMoreMasterOpt: p.noMore,
		Topo:            p.topology(),
	}
}

// topology resolves the -topo flag. The default "full" (and the empty
// value of test-built literals) maps to nil — the complete graph every
// layer assumes when no neighbor graph is named — so the default path
// is byte-identical to a build without the seam. validate() has already
// rejected bad names, so a construction error here is a programming
// error.
func (p *nodeParams) topology() *core.Topology {
	if p.topo == "" || p.topo == core.TopoFull {
		return nil
	}
	t, err := core.NewTopology(p.topo, p.procs)
	if err != nil {
		panic(fmt.Sprintf("loadex: -topo %q passed validation but did not build: %v", p.topo, err))
	}
	return t
}

// driveOptions maps the flag values onto DriveCluster's options; an
// explicit -settle 0 means "don't wait for views", not "use the
// default".
func (p *nodeParams) driveOptions() workload.DriveOptions {
	opts := workload.DriveOptions{Spin: p.spin, Settle: p.settle}
	if p.settle <= 0 {
		opts.Settle = -1
	}
	return opts
}

func (p *nodeParams) params() workload.Params {
	return workload.Params{
		Procs:     p.procs,
		Masters:   p.masters,
		Decisions: p.decisions,
		Work:      p.work,
		Slaves:    p.slaves,
		Spin:      p.spin,
		Term:      p.term,
	}
}

// validate rejects unusable flag combinations with messages listing the
// registered names. matrix commands (`cluster`, `run`) accept the
// special value "all" for -mech and -scenario; a single node does not.
func (p *nodeParams) validate(matrix bool) error {
	if p.procs < 2 {
		return fmt.Errorf("need at least 2 processes, got -procs %d", p.procs)
	}
	if p.masters < 1 || p.masters > p.procs {
		return fmt.Errorf("masters %d out of range [1,%d]", p.masters, p.procs)
	}
	if p.slaves < 1 {
		return fmt.Errorf("need at least 1 slave per decision, got -slaves %d", p.slaves)
	}
	if p.decisions < 1 {
		return fmt.Errorf("need at least 1 decision per master, got -decisions %d", p.decisions)
	}
	// Work and spin reach workload.Params verbatim; reject the values
	// Normalize would otherwise silently replace or Validate reject
	// after the fork.
	if p.work <= 0 {
		return fmt.Errorf("work per decision must be positive, got -work %g", p.work)
	}
	if p.spin < 0 {
		return fmt.Errorf("negative -spin %s", p.spin)
	}
	if !(matrix && p.mech == "all") {
		if _, err := core.New(core.Mech(p.mech), 2, 0, core.Config{}); err != nil {
			avail := strings.Join(mechNames(), ", ")
			if matrix {
				avail += ", all"
			}
			return fmt.Errorf("unknown mechanism %q (available: %s)", p.mech, avail)
		}
	}
	if !(matrix && p.scenario == "all") {
		if _, err := workload.Get(p.scenario); err != nil {
			avail := strings.Join(workload.Names(), ", ")
			if matrix {
				avail += ", all"
			}
			return fmt.Errorf("unknown scenario %q (available: %s)", p.scenario, avail)
		}
	}
	if _, err := xnet.NewCodec(p.codec); err != nil {
		return fmt.Errorf("unknown codec %q (available: %s)", p.codec, strings.Join(xnet.CodecNames(), ", "))
	}
	if !(matrix && p.term == "all") && !termdet.Valid(p.term) {
		avail := strings.Join(termdet.Names(), ", ")
		if matrix {
			avail += ", all"
		}
		return fmt.Errorf("unknown termination protocol %q (available: %s)", p.term, avail)
	}
	// `loadex experiment` sweeps a comma-list of topologies; every entry
	// must build for this -n (hypercube, for one, constrains it).
	topos := []string{p.topo}
	if matrix && strings.Contains(p.topo, ",") {
		topos = strings.Split(p.topo, ",")
	}
	for _, name := range topos {
		if name == "" {
			continue
		}
		if _, err := core.NewTopology(name, p.procs); err != nil {
			return err
		}
		if name != core.TopoFull && workload.IsAppScenario(p.scenario) {
			return fmt.Errorf("application scenario %q needs the full topology (its solver addresses arbitrary ranks); got -topo %s",
				p.scenario, name)
		}
	}
	if p.obsAddr != "" {
		if err := obs.ValidateAddr(p.obsAddr); err != nil {
			return err
		}
	}
	if p.tele < 0 {
		return fmt.Errorf("negative -tele period %s", p.tele)
	}
	if !(matrix && strings.Contains(p.chaos, ",")) {
		if _, err := chaos.Get(p.chaos); err != nil {
			return err
		}
	} else {
		// `loadex experiment` sweeps a comma-list of plans.
		for _, name := range strings.Split(p.chaos, ",") {
			if _, err := chaos.Get(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// chaosPlan resolves the -chaos flag (already validated; nil when no
// plan is selected).
func (p *nodeParams) chaosPlan() *chaos.Plan {
	plan, _ := chaos.Get(p.chaos)
	return plan
}

// singleTerm rejects the "-term all" sweep value for commands that run
// one protocol per invocation (`loadex run`, `loadex cluster`); only
// `loadex experiment` fans the protocol axis out.
func (p *nodeParams) singleTerm(command string) error {
	if p.term != "all" {
		return nil
	}
	return fmt.Errorf("-term all is an experiment-sweep value; pick one protocol for `%s` (available: %s), or use `loadex experiment -term all` for the mechanism × protocol overhead table",
		command, strings.Join(termdet.Names(), ", "))
}

// singleTopo rejects a comma-list of topologies for commands that run
// one neighbor graph per invocation; only `loadex experiment` fans the
// topology axis out.
func (p *nodeParams) singleTopo(command string) error {
	if !strings.Contains(p.topo, ",") {
		return nil
	}
	return fmt.Errorf("-topo takes one topology for `%s` (available: %s); `loadex experiment` sweeps a comma-list",
		command, strings.Join(core.TopologyNames(), ", "))
}

// singleChaos rejects a comma-list of chaos plans for commands that run
// one plan per invocation; only `loadex experiment` fans the plan axis
// out.
func (p *nodeParams) singleChaos(command string) error {
	if !strings.Contains(p.chaos, ",") {
		return nil
	}
	return fmt.Errorf("-chaos takes one plan for `%s` (available: %s); `loadex experiment` sweeps a comma-list",
		command, strings.Join(chaos.Names(), ", "))
}

// quiesceTimeout normalizes the per-node quiescence deadline (tests
// build nodeParams literals without it).
func (p *nodeParams) quiesceTimeout() time.Duration {
	if p.timeout <= 0 {
		return 2 * time.Minute
	}
	return p.timeout
}

// watchdogSlack normalizes the forked-cluster stats-collection slack
// (tests build nodeParams literals without it).
func (p *nodeParams) watchdogSlack() time.Duration {
	if p.statsTimeout <= 0 {
		return defaultStatsTimeout
	}
	return p.statsTimeout
}

// programs compiles the scenario for these params.
func (p *nodeParams) programs() ([]workload.Program, error) {
	w, err := workload.Get(p.scenario)
	if err != nil {
		return nil, err
	}
	return w.Programs(p.params())
}

func runNode(args []string) error {
	fs := flag.NewFlagSet("loadex node", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	rank := fs.Int("rank", 0, "this process's rank")
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := p.validate(false); err != nil {
		return err
	}
	if *rank < 0 || *rank >= p.procs {
		return fmt.Errorf("rank %d out of range [0,%d)", *rank, p.procs)
	}
	rec, err := p.openNodeRecorder(*rank)
	if err != nil {
		return err
	}
	defer rec.Close()
	if workload.IsAppScenario(p.scenario) {
		return runAppScenarioNode(&p, *rank, *listen, rec)
	}
	progs, err := p.programs()
	if err != nil {
		return err
	}
	codec, err := xnet.NewCodec(p.codec)
	if err != nil {
		return err
	}
	opts := xnet.ProgramOptions(xnet.Options{
		Codec: codec,
		Logf:  nodeLogf,
		Chaos: p.chaosPlan(),
		Rec:   rec,
	}, progs)
	nd, err := xnet.NewNode(*rank, p.procs, core.Mech(p.mech), p.config(), opts)
	if err != nil {
		return err
	}
	addr, err := nd.Listen(*listen)
	if err != nil {
		return err
	}
	addrs, err := stdioHandshake(*rank, addr, p.procs)
	if err != nil {
		return err
	}
	if err := nd.Start(addrs); err != nil {
		return err
	}
	stopObs, err := startNodeObs(nd, &p)
	if err != nil {
		return err
	}
	defer stopObs()
	armCrash(p.chaosPlan(), *rank, rec)

	stats, err := runNodeProgram(nd, progs[*rank], &p)
	if err != nil {
		return err
	}
	rec.Record(chaos.Event{Ev: chaos.EvFinal, Rank: *rank, Executed: stats.Executed})
	return emitStats(nd, stats)
}

// openNodeRecorder opens this rank's trace file (nil recorder when
// tracing is off) and stamps the opening meta event.
func (p *nodeParams) openNodeRecorder(rank int) (*chaos.Recorder, error) {
	if p.traceDir == "" {
		return nil, nil
	}
	rec, err := chaos.OpenRecorder(filepath.Join(p.traceDir, fmt.Sprintf("rank-%d.jsonl", rank)))
	if err != nil {
		return nil, err
	}
	rec.Record(chaos.Event{
		Ev: chaos.EvMeta, Rank: rank, N: p.procs,
		Scenario: p.scenario, Mech: p.mech, Term: p.term, Plan: p.chaos, Topo: p.topo,
	})
	return rec, nil
}

// openInProcRecorder opens the single trace file an in-process run of
// every rank shares (nil recorder when tracing is off); events carry
// their rank, so one file per run suffices.
func (p *nodeParams) openInProcRecorder() (*chaos.Recorder, error) {
	if p.traceDir == "" {
		return nil, nil
	}
	rec, err := chaos.OpenRecorder(filepath.Join(p.traceDir, "inproc.jsonl"))
	if err != nil {
		return nil, err
	}
	rec.Record(chaos.Event{
		Ev: chaos.EvMeta, N: p.procs,
		Scenario: p.scenario, Mech: p.mech, Term: p.term, Plan: p.chaos, Topo: p.topo,
	})
	return rec, nil
}

// armCrash schedules this process's chaos crash: a genuine process
// death (not a simulated one) at the plan's crash time, so the parent's
// watchdog — not cooperative shutdown — must notice it. The recorder is
// closed first so the truncated trace (no final event) survives for the
// validator to diagnose.
func armCrash(plan *chaos.Plan, rank int, rec *chaos.Recorder) {
	if !plan.Crashes(rank) {
		return
	}
	time.AfterFunc(time.Duration(plan.CrashAfter*float64(time.Second)), func() {
		fmt.Fprintf(os.Stderr, "node %d: chaos plan %q: crashing now\n", rank, plan.Name)
		rec.Close()
		os.Exit(3)
	})
}

// nodeLogf routes transport diagnostics to stderr (stdout carries the
// handshake).
func nodeLogf(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }

// stdioHandshake prints this node's bound address and waits for the
// parent's PEERS answer listing every rank's address.
func stdioHandshake(rank int, addr string, procs int) ([]string, error) {
	fmt.Printf("ADDR %d %s\n", rank, addr)
	sc := bufio.NewScanner(os.Stdin)
	var addrs []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "PEERS "); ok {
			addrs = strings.Split(rest, ",")
			break
		}
	}
	if addrs == nil {
		return nil, fmt.Errorf("node %d: stdin closed before PEERS line", rank)
	}
	if len(addrs) != procs {
		return nil, fmt.Errorf("node %d: got %d peer addresses, want %d", rank, len(addrs), procs)
	}
	return addrs, nil
}

// emitStats prints the STATS line and closes the node.
func emitStats(nd *xnet.Node, stats nodeStats) error {
	b, err := json.Marshal(stats)
	if err != nil {
		return err
	}
	fmt.Printf("STATS %s\n", b)
	return nd.Close()
}

// runAppScenarioNode is the forked application-scenario path: build the
// application instance deterministically from the shared flags, bind
// this rank to one TCP node, and run the Algorithm 1 loop until the
// termination detector announces global quiescence. Every process runs
// exactly one rank; the solver's cross-rank bookkeeping travels as
// data messages, and the detector's control frames (TypeCtrl) release
// every process once rank 0's detector concludes.
func runAppScenarioNode(p *nodeParams, rank int, listen string, rec *chaos.Recorder) error {
	w, err := workload.Get(p.scenario)
	if err != nil {
		return err
	}
	as := w.(workload.AppScenario)
	params := p.params()
	app, opts, err := as.NewApp(core.Mech(p.mech), p.config(), params)
	if err != nil {
		return err
	}
	app = workload.Recorded(app, rec)
	if params.Term != "" {
		opts.Term = params.Term
	}
	codec, err := xnet.NewCodec(p.codec)
	if err != nil {
		return err
	}
	nd, err := xnet.NewNode(rank, p.procs, core.Mech(p.mech), p.config(), xnet.Options{
		Codec: codec,
		Logf:  nodeLogf,
		Chaos: p.chaosPlan(),
		Rec:   rec,
	})
	if err != nil {
		return err
	}
	an, err := xnet.NewAppNode(nd, app, opts, 1)
	if err != nil {
		return err
	}
	addr, err := nd.Listen(listen)
	if err != nil {
		return err
	}
	addrs, err := stdioHandshake(rank, addr, p.procs)
	if err != nil {
		return err
	}
	if err := nd.Start(addrs); err != nil {
		return err
	}
	stopObs, err := startNodeObs(nd, p)
	if err != nil {
		return err
	}
	defer stopObs()
	armCrash(p.chaosPlan(), rank, rec)
	hr, err := an.Run(p.quiesceTimeout())
	if err != nil {
		return err
	}
	out := app.Outcome(hr)
	if out.Err != nil {
		return out.Err
	}
	st := nodeStats{
		Rank:      rank,
		Executed:  out.Executed[rank],
		Decisions: out.Decisions,
		Mech:      out.Stats[rank],
		Transport: nd.Transport(),
		Counters:  workload.CountersFromApp(hr, out),
	}
	if res, ok := out.Result.(*solver.Result); ok {
		st.Flops = res.ExecutedFlops[rank]
		st.PeakMem = res.PeakMem[rank]
	}
	return emitStats(nd, st)
}

// runNodeProgram walks this rank's compiled program until cluster
// quiescence and returns its report. Every rank announces Done after
// draining its own assignments, so once all announcements arrived no
// application work remains anywhere.
func runNodeProgram(nd *xnet.Node, prog workload.Program, p *nodeParams) (nodeStats, error) {
	st := nodeStats{Rank: nd.Rank()}
	decisions, err := workload.RunRank(nd, prog, p.spin)
	if err != nil {
		return st, err
	}
	st.Decisions = decisions
	timeout := p.quiesceTimeout()
	if err := nd.DrainOwn(timeout); err != nil {
		return st, err
	}
	nd.AnnounceDone()
	// Done announcements only travel live links: on a sparse mesh a rank
	// hears from its neighbors, not from every other rank.
	waitFor := int64(nd.Links())
	deadline := time.Now().Add(timeout)
	for nd.DonesReceived() < waitFor {
		if time.Now().After(deadline) {
			return st, fmt.Errorf("node %d: only %d/%d done announcements after %s",
				nd.Rank(), nd.DonesReceived(), waitFor, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(p.settle) // let trailing updates land before reporting
	st.Executed = nd.Executed()
	st.Mech = nd.MechStats()
	st.Transport = nd.Transport()
	st.Counters = nd.Counters()
	return st, nil
}
