package main

// loadex list: print every sweep axis of the scenario × mechanism ×
// runtime matrix — the registered workload scenarios (with their kind:
// program scenarios compile to per-rank step scripts, application
// scenarios host a real distributed application through the
// application port), the load-exchange mechanisms, the runtimes and
// the wire codecs — so the axes are discoverable without reading
// source.

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/chaos"
	"repro/internal/core"
	xnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/termdet"
	"repro/internal/workload"
)

func runList(args []string) error {
	fs := flag.NewFlagSet("loadex list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadex list takes no arguments, got %q", fs.Args())
	}
	w := os.Stdout

	fmt.Fprintln(w, "scenarios (-scenario; \"all\" sweeps them):")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	for _, wl := range workload.All() {
		kind := "program"
		if _, ok := wl.(workload.AppScenario); ok {
			kind = "app"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", wl.Name(), kind, wl.Describe())
	}
	tw.Flush()
	fmt.Fprintln(w, "  (app scenarios run on every runtime; `loadex cluster` forks them one OS process per rank)")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "mechanisms (-mech; \"all\" sweeps them — the paper's three, then the dissemination tenants):")
	for _, m := range core.AllMechanisms() {
		fmt.Fprintf(w, "  %s\n", m)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "topologies (-topo; neighbor graph state messages travel — `loadex experiment` sweeps a comma-list):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	for _, inf := range core.TopologyInfos() {
		params := inf.Params
		if params == "none" {
			params = ""
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", inf.Name, params, inf.Desc)
	}
	tw.Flush()
	fmt.Fprintln(w)

	fmt.Fprintln(w, "termination protocols (-term, app scenarios; \"all\" sweeps them in `loadex experiment`):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	for _, name := range termdet.Names() {
		fmt.Fprintf(tw, "  %s\t%s\n", name, termdet.Describe(name))
	}
	tw.Flush()
	fmt.Fprintln(w)

	fmt.Fprintln(w, "chaos plans (-chaos; fault injection on any runtime, validated offline by `loadex validate`):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	for _, name := range chaos.Names() {
		fmt.Fprintf(tw, "  %s\t%s\n", name, chaos.Describe(name))
	}
	tw.Flush()
	fmt.Fprintln(w)

	fmt.Fprintln(w, "runtimes (-runtime; \"all\" sweeps them):")
	fmt.Fprintln(w, "  sim \tdeterministic discrete-event simulator")
	fmt.Fprintln(w, "  live\tgoroutines + channels (race-detector friendly)")
	fmt.Fprintln(w, "  net \tlocalhost TCP (forked processes; -inproc: in-process)")
	fmt.Fprintln(w)

	fmt.Fprintf(w, "codecs (-codec, net runtime): %s\n", strings.Join(xnet.CodecNames(), ", "))
	fmt.Fprintln(w)

	fmt.Fprintln(w, "metrics (-obs on node/serve/run exposes /metrics; per-rank series merge mesh-wide when the `rank` label drops):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	for _, m := range obs.Catalog() {
		labels := m.Labels
		if labels == "" {
			labels = "-"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\n", m.Name, m.Kind, labels, m.Runtimes, m.Help)
	}
	tw.Flush()
	fmt.Fprintln(w)

	fmt.Fprintln(w, "span kinds (-trace records them; `loadex report` draws the timeline, `loadex validate` checks nesting):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	for _, s := range obs.SpanKinds() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\n", s.Name, s.Track, s.Runtimes, s.Help)
	}
	tw.Flush()
	return nil
}
