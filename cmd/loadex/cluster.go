package main

// loadex cluster: run a registered workload scenario over a real
// localhost TCP cluster and report per-rank message and selection
// statistics.
//
// By default the command forks one `loadex node` process per rank (the
// binary re-executes itself), wires them through the ADDR/PEERS stdio
// handshake and aggregates each node's STATS line. With -inproc the
// same nodes run as goroutines inside this process — same sockets, no
// fork — which is what CI uses. Application scenarios (the solver) fork
// too: each process hosts one rank of the application and quiescence is
// decided by the distributed termination detector (-term). The scenario
// × mechanism × runtime matrix lives in `loadex run`; cluster is the
// per-rank TCP view of one scenario.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	xnet "repro/internal/net"
	"repro/internal/workload"
)

func runCluster(args []string) error {
	fs := flag.NewFlagSet("loadex cluster", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	procs := fs.Int("procs", 0, "number of processes (alias for -n)")
	inproc := fs.Bool("inproc", false, "run the nodes in-process (same TCP sockets, no fork)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		p.procs = *procs
	}
	if p.masters > p.procs {
		p.masters = p.procs
	}
	if err := p.validate(true); err != nil {
		return err
	}
	if err := p.singleTerm("loadex cluster"); err != nil {
		return err
	}
	mechs := []string{p.mech}
	if p.mech == "all" {
		mechs = mechNames()
	}
	scenarios := []string{p.scenario}
	if p.scenario == "all" {
		scenarios = scenarios[:0]
		for _, name := range workload.Names() {
			// Application scenarios run forked like any other (one app
			// instance per OS process, detector-driven quiescence), but
			// have no per-rank program for the in-process driver here;
			// `loadex run -runtime net -inproc` hosts those.
			if *inproc && workload.IsAppScenario(name) {
				continue
			}
			scenarios = append(scenarios, name)
		}
	} else if *inproc && workload.IsAppScenario(p.scenario) {
		return fmt.Errorf("scenario %q is an application scenario; drop -inproc to fork it (one process per rank, detector-driven quiescence) or host it in-process with `loadex run -scenario %s -runtime net -inproc`", p.scenario, p.scenario)
	}
	for _, scenario := range scenarios {
		for _, mech := range mechs {
			q := p
			q.scenario, q.mech = scenario, mech
			var (
				stats []nodeStats
				err   error
			)
			if *inproc {
				stats, err = runClusterInProc(&q)
			} else {
				stats, err = runClusterForked(&q)
			}
			if err != nil {
				return fmt.Errorf("scenario %s, mechanism %s: %w", scenario, mech, err)
			}
			writeClusterReport(os.Stdout, &q, *inproc, stats)
		}
	}
	return nil
}

// runClusterInProc compiles the scenario and drives it on an in-process
// TCP cluster, keeping the per-rank transport counters the report
// needs.
func runClusterInProc(p *nodeParams) ([]nodeStats, error) {
	progs, err := p.programs()
	if err != nil {
		return nil, err
	}
	codec, err := xnet.NewCodec(p.codec)
	if err != nil {
		return nil, err
	}
	mech := core.Mech(p.mech)
	cl, err := xnet.NewCluster(len(progs), mech, p.config(), xnet.ProgramOptions(xnet.Options{Codec: codec}, progs))
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	rep, err := workload.DriveCluster(cl, mech, progs, p.driveOptions())
	if err != nil {
		return nil, err
	}
	stats := make([]nodeStats, len(progs))
	for r := range stats {
		stats[r] = nodeStats{
			Rank:      r,
			Executed:  rep.Executed[r],
			Mech:      rep.Stats[r],
			Transport: cl.Transport(r),
		}
	}
	for _, rec := range rep.Records {
		stats[rec.Master].Decisions++
	}
	return stats, nil
}

// runClusterForked forks one `loadex node` per rank (re-executing this
// binary) and shepherds the stdio handshake.
func runClusterForked(p *nodeParams) ([]nodeStats, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	return runClusterForkedWith(exe, p)
}

// runClusterForkedWith is runClusterForked against an explicit loadex
// binary (tests build one: the test binary cannot re-execute itself as
// `loadex node`).
func runClusterForkedWith(exe string, p *nodeParams) ([]nodeStats, error) {
	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Scanner
	}
	children := make([]*child, p.procs)
	defer func() {
		for _, c := range children {
			if c != nil {
				c.stdin.Close()
				c.cmd.Process.Kill()
				c.cmd.Wait()
			}
		}
	}()
	for r := 0; r < p.procs; r++ {
		cmd := exec.Command(exe, "node",
			"-rank", strconv.Itoa(r),
			"-n", strconv.Itoa(p.procs),
			"-scenario", p.scenario,
			"-mech", p.mech,
			"-threshold", fmt.Sprint(p.threshold),
			"-nomore="+strconv.FormatBool(p.noMore),
			"-codec", p.codec,
			"-term", p.term,
			"-masters", strconv.Itoa(p.masters),
			"-decisions", strconv.Itoa(p.decisions),
			"-work", fmt.Sprint(p.work),
			"-slaves", strconv.Itoa(p.slaves),
			"-spin", p.spin.String(),
			"-settle", p.settle.String(),
			"-timeout", p.quiesceTimeout().String(),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("forking node %d: %w", r, err)
		}
		children[r] = &child{cmd: cmd, stdin: stdin, out: bufio.NewScanner(stdout)}
	}
	// Collect every node's bound address…
	addrs := make([]string, p.procs)
	for r, c := range children {
		line, err := scanPrefix(c.out, "ADDR ")
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != strconv.Itoa(r) {
			return nil, fmt.Errorf("node %d: malformed address line %q", r, line)
		}
		addrs[r] = fields[1]
	}
	// …broadcast the full list…
	peers := "PEERS " + strings.Join(addrs, ",") + "\n"
	for r, c := range children {
		if _, err := io.WriteString(c.stdin, peers); err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
	}
	// …and gather each node's report.
	stats := make([]nodeStats, p.procs)
	for r, c := range children {
		line, err := scanPrefix(c.out, "STATS ")
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
		if err := json.Unmarshal([]byte(line), &stats[r]); err != nil {
			return nil, fmt.Errorf("node %d: bad stats line: %w", r, err)
		}
	}
	for r, c := range children {
		if err := c.cmd.Wait(); err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
		children[r] = nil
	}
	return stats, nil
}

// scanPrefix reads lines until one starts with prefix, returning the
// remainder; other lines pass through to stderr (node diagnostics).
func scanPrefix(sc *bufio.Scanner, prefix string) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			return rest, nil
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("stream ended before %q line", strings.TrimSpace(prefix))
}

// writeClusterReport prints the per-rank table the paper-style
// experiments report: selections, mechanism messages, wire traffic.
func writeClusterReport(w io.Writer, p *nodeParams, inproc bool, stats []nodeStats) {
	mode := "forked processes"
	if inproc {
		mode = "in-process"
	}
	fmt.Fprintf(w, "== scenario %s × mechanism %s — %d procs over localhost TCP (%s, codec %s) ==\n",
		p.scenario, p.mech, p.procs, mode, p.codec)
	fmt.Fprintf(w, "base workload: %d masters × %d decisions × %g work units over %d least-loaded slaves (spin %s)\n",
		p.masters, p.decisions, p.work, p.slaves, p.spin)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\texecuted\tdecisions\tupdates\treservations\tsnapshots\trestarts\tstate_in\tmsgs_in\tmsgs_out\tbytes_in\tbytes_out")
	var tot nodeStats
	for _, s := range stats {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Rank, s.Executed, s.Decisions,
			s.Mech.UpdatesSent, s.Mech.ReservationsSent,
			s.Mech.SnapshotsInitiated, s.Mech.SnapshotRestarts,
			s.Transport.StateIn, s.Transport.MsgsIn, s.Transport.MsgsOut,
			s.Transport.BytesIn, s.Transport.BytesOut)
		tot.Executed += s.Executed
		tot.Decisions += s.Decisions
		tot.Mech.UpdatesSent += s.Mech.UpdatesSent
		tot.Mech.ReservationsSent += s.Mech.ReservationsSent
		tot.Mech.SnapshotsInitiated += s.Mech.SnapshotsInitiated
		tot.Mech.SnapshotRestarts += s.Mech.SnapshotRestarts
		tot.Transport.StateIn += s.Transport.StateIn
		tot.Transport.MsgsIn += s.Transport.MsgsIn
		tot.Transport.MsgsOut += s.Transport.MsgsOut
		tot.Transport.BytesIn += s.Transport.BytesIn
		tot.Transport.BytesOut += s.Transport.BytesOut
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		tot.Executed, tot.Decisions,
		tot.Mech.UpdatesSent, tot.Mech.ReservationsSent,
		tot.Mech.SnapshotsInitiated, tot.Mech.SnapshotRestarts,
		tot.Transport.StateIn, tot.Transport.MsgsIn, tot.Transport.MsgsOut,
		tot.Transport.BytesIn, tot.Transport.BytesOut)
	tw.Flush()
	if workload.IsAppScenario(p.scenario) {
		fmt.Fprintf(w, "quiescent: %d tasks executed, termination detected by the %s protocol\n\n", tot.Executed, p.term)
		return
	}
	fmt.Fprintf(w, "quiescent: all %d work items executed and acknowledged\n\n", tot.Executed)
}
