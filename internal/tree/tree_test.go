package tree

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func analyzeGrid(t *testing.T, nx, ny, nz int) *Tree {
	t.Helper()
	p, _ := sparse.Grid3D(nx, ny, nz, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Build(a)
}

func TestBuildComputesCosts(t *testing.T) {
	tr := analyzeGrid(t, 5, 5, 5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.TotalCost <= 0 {
		t.Fatal("no total cost")
	}
	var sum float64
	for i := range tr.Nodes {
		if tr.Nodes[i].Cost < 0 {
			t.Fatal("negative node cost")
		}
		sum += tr.Nodes[i].Cost
	}
	if math.Abs(sum-tr.TotalCost) > 1e-6*tr.TotalCost {
		t.Fatal("total cost mismatch")
	}
	// Subtree cost of a root covers everything under it.
	var rootSum float64
	for _, r := range tr.Roots {
		rootSum += tr.Nodes[r].SubtreeCost
	}
	if math.Abs(rootSum-tr.TotalCost) > 1e-6*tr.TotalCost {
		t.Fatalf("root subtree cost %v != total %v", rootSum, tr.TotalCost)
	}
}

func TestFlopDecomposition(t *testing.T) {
	// Master + slave flops must equal total flops for any front split.
	f := func(nfRaw, npRaw uint16, sym bool) bool {
		nf := int32(nfRaw%2000) + 2
		np := int32(npRaw)%nf + 1
		total := FrontFlops(nf, np, sym)
		master := MasterFlops(nf, np, sym)
		slave := SlaveFlops(nf, np, nf-np, sym)
		return math.Abs(total-master-slave) < 1e-6*math.Max(total, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryDecomposition(t *testing.T) {
	// Factor + CB = front, for both symmetries.
	f := func(nfRaw, npRaw uint16, sym bool) bool {
		nf := int32(nfRaw%3000) + 2
		np := int32(npRaw)%nf + 1
		front := FrontEntries(nf, sym)
		cb := CBEntries(nf, np, sym)
		factor := FactorEntries(nf, np, sym)
		return math.Abs(front-cb-factor) < 1e-6*front && cb >= 0 && factor > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlaveCostsScaleWithRows(t *testing.T) {
	a := SlaveFlops(100, 20, 10, false)
	b := SlaveFlops(100, 20, 20, false)
	if math.Abs(b-2*a) > 1e-9 {
		t.Fatalf("slave flops not linear in rows: %v vs %v", a, b)
	}
	if SlaveBlockEntries(100, 20, 10, false) != 1000 {
		t.Fatal("slave block entries wrong")
	}
	if SlaveCBEntries(100, 20, 10, false) != 800 {
		t.Fatal("slave CB entries wrong")
	}
}

func TestSymmetricCostsHalved(t *testing.T) {
	if FrontFlops(100, 30, true)*2 != FrontFlops(100, 30, false) {
		t.Fatal("symmetric flops not half of unsymmetric")
	}
}

func TestComputeSeconds(t *testing.T) {
	if ComputeSeconds(2e9, 1e9) != 2 {
		t.Fatal("ComputeSeconds wrong")
	}
	if ComputeSeconds(1, 0) != 0 {
		t.Fatal("zero speed must yield zero")
	}
}

func TestLeaves(t *testing.T) {
	tr := analyzeGrid(t, 4, 4, 4)
	leaves := tr.Leaves()
	if len(leaves) == 0 {
		t.Fatal("no leaves")
	}
	for _, l := range leaves {
		if len(tr.Nodes[l].Children) != 0 {
			t.Fatal("leaf has children")
		}
	}
}

func TestRenderASCIIAndDOT(t *testing.T) {
	tr := analyzeGrid(t, 4, 4, 2)
	var buf bytes.Buffer
	tr.RenderASCII(&buf, func(id int32) string { return "P0" }, 3)
	out := buf.String()
	if !strings.Contains(out, "npiv=") || !strings.Contains(out, "P0") {
		t.Fatalf("ASCII render missing content:\n%s", out)
	}
	buf.Reset()
	tr.RenderDOT(&buf, nil)
	if !strings.Contains(buf.String(), "digraph assemblytree") {
		t.Fatal("DOT render missing header")
	}
}
