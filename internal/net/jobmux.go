package net

// Job multiplexing: the service layer (internal/service) keeps one
// resident mesh up across many jobs, so several termination-detection
// scopes and data streams share each per-peer TCP connection. A JobPort
// is one rank's endpoint of one such job — it posts job-tagged frames
// through the node's existing writer goroutines (preserving the
// per-pair FIFO order the detectors rely on) and receives the frames
// readLoop routes to it by job id.
//
// The port deliberately does not touch the node's own measurement state
// (nd.est is node-goroutine-owned); each port keeps its own
// mutex-guarded core.Counters so concurrent jobs stay accountable in
// isolation.

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// JobState is one inbound job-scoped state message.
type JobState struct {
	From    int
	Kind    int
	Payload any
}

// JobData is one inbound job-scoped application data message.
type JobData struct {
	From int
	Msg  workload.DataMsg
}

// JobCtrl is one inbound job-scoped termination-detection control
// frame.
type JobCtrl struct {
	From int
	Ctrl termdet.Ctrl
}

// JobPort is one rank's endpoint of one multiplexed job. The job's
// per-rank driver goroutine owns the receive side (drain CtrlCh before
// DataCh, mirroring the node loops); any goroutine may send.
type JobPort struct {
	nd *Node
	id int32

	// StateCh carries job-scoped state messages (solver assembly
	// traffic), CtrlCh detector control frames, DataCh application data,
	// WakeCh local main-loop wakeups (never crosses the wire).
	StateCh chan JobState
	DataCh  chan JobData
	CtrlCh  chan JobCtrl
	WakeCh  chan struct{}

	mu  sync.Mutex
	cnt core.Counters
}

// Rank returns the hosting node's rank.
func (jp *JobPort) Rank() int { return jp.nd.rank }

// N returns the mesh size.
func (jp *JobPort) N() int { return jp.nd.n }

// ID returns the job id this port serves.
func (jp *JobPort) ID() int32 { return jp.id }

// RegisterJob creates this rank's port for job id. buf sizes the
// inbound channels; it must exceed the largest burst a peer can send
// before the job's driver drains (the service sizes it from the job
// spec). Registering an id twice is an error — job ids are
// service-global and start at 1.
func (nd *Node) RegisterJob(id int32, buf int) (*JobPort, error) {
	if id <= 0 {
		return nil, fmt.Errorf("net: job id %d out of range (ids start at 1)", id)
	}
	if buf < 1 {
		buf = 1
	}
	jp := &JobPort{
		nd:      nd,
		id:      id,
		StateCh: make(chan JobState, buf),
		DataCh:  make(chan JobData, buf),
		CtrlCh:  make(chan JobCtrl, buf),
		WakeCh:  make(chan struct{}, 1),
	}
	nd.jobMu.Lock()
	defer nd.jobMu.Unlock()
	if nd.jobs == nil {
		nd.jobs = make(map[int32]*JobPort)
	}
	if nd.jobs[id] != nil {
		return nil, fmt.Errorf("net: rank %d job %d already registered", nd.rank, id)
	}
	nd.jobs[id] = jp
	return jp, nil
}

// UnregisterJob removes this rank's port for job id. Frames still in
// flight for the id are dropped by readLoop from then on — by the time
// a job's termination detector has fired on every rank, no peer has
// more of its frames to send, so the drop path only sees stragglers of
// canceled jobs.
func (nd *Node) UnregisterJob(id int32) {
	nd.jobMu.Lock()
	delete(nd.jobs, id)
	nd.jobMu.Unlock()
}

// routeJob delivers one inbound job-tagged frame to its registered
// port, blocking (against quit) if the port's channel is full so
// per-pair FIFO order survives backpressure. It reports false when no
// port holds the id.
func (nd *Node) routeJob(m Message) bool {
	nd.jobMu.RLock()
	jp := nd.jobs[m.Job]
	nd.jobMu.RUnlock()
	if jp == nil {
		return false
	}
	switch m.Type {
	case TypeJobState:
		select {
		case jp.StateCh <- JobState{From: int(m.From), Kind: int(m.Kind), Payload: m.StatePayload()}:
		case <-nd.quit:
		}
	case TypeJobData:
		select {
		case jp.DataCh <- JobData{From: int(m.From), Msg: m.Data}:
		case <-nd.quit:
		}
	case TypeJobCtrl:
		select {
		case jp.CtrlCh <- JobCtrl{From: int(m.From), Ctrl: m.Ctrl}:
		case <-nd.quit:
		}
	}
	return true
}

// SendState ships one job-scoped state message to rank `to` (or
// delivers locally for the own rank) and charges the job's counters
// with the core byte hint for the kind.
func (jp *JobPort) SendState(to, kind int, payload any, bytes float64) error {
	jp.mu.Lock()
	jp.cnt.AddState(kind, bytes)
	jp.mu.Unlock()
	if to == jp.nd.rank {
		select {
		case jp.StateCh <- JobState{From: to, Kind: kind, Payload: payload}:
		case <-jp.nd.quit:
		}
		return nil
	}
	m, err := JobStateMessage(jp.id, jp.nd.rank, kind, payload)
	if err != nil {
		return err
	}
	jp.nd.post(to, m)
	return nil
}

// SendData ships one job-scoped application data message, charging the
// application's modeled byte size (the writer goroutine tallies the
// real encoded frame into the node's wire stats).
func (jp *JobPort) SendData(to int, m workload.DataMsg) {
	jp.mu.Lock()
	jp.cnt.AddData(m.Bytes)
	jp.mu.Unlock()
	if to == jp.nd.rank {
		select {
		case jp.DataCh <- JobData{From: to, Msg: m}:
		case <-jp.nd.quit:
		}
		return
	}
	jp.nd.post(to, JobDataMessage(jp.id, jp.nd.rank, m))
}

// SendCtrl ships one job-scoped detector control frame.
func (jp *JobPort) SendCtrl(to int, c termdet.Ctrl) {
	jp.mu.Lock()
	jp.cnt.AddCtrl(core.BytesCtrl)
	jp.mu.Unlock()
	if to == jp.nd.rank {
		select {
		case jp.CtrlCh <- JobCtrl{From: to, Ctrl: c}:
		case <-jp.nd.quit:
		}
		return
	}
	jp.nd.post(to, JobCtrlMessage(jp.id, jp.nd.rank, c))
}

// Wake nudges the port's driver loop without payload (local only).
func (jp *JobPort) Wake() {
	select {
	case jp.WakeCh <- struct{}{}:
	default:
	}
}

// AddDecision records one committed decision this job took against the
// mesh's shared view.
func (jp *JobPort) AddDecision(latency float64) {
	jp.mu.Lock()
	jp.cnt.AddDecision(latency)
	jp.mu.Unlock()
}

// AddBusy adds snapshot-blocked (or otherwise stalled) seconds to the
// job's tally.
func (jp *JobPort) AddBusy(sec float64) {
	jp.mu.Lock()
	jp.cnt.BusyTime += sec
	jp.mu.Unlock()
}

// Counters returns a snapshot of the job's per-rank counters.
func (jp *JobPort) Counters() core.Counters {
	jp.mu.Lock()
	defer jp.mu.Unlock()
	return jp.cnt.Clone()
}

// Quit exposes the node's shutdown channel so job drivers can abort
// blocking receives when the mesh tears down mid-job.
func (jp *JobPort) Quit() <-chan struct{} { return jp.nd.quit }
