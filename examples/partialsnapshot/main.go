// Partialsnapshot demonstrates the paper's §5 perspective, implemented in
// this repository: demand-driven snapshots scoped to the master's
// candidate slaves instead of all processes. It runs the same
// factorization with full and partial snapshots and prints both run
// reports — fewer messages, weaker synchronization, same decisions.
//
// The solver targets the transport-neutral application port, so the
// comparison runs on any runtime: `sim` (default), `live` (goroutines)
// or `net` (localhost TCP).
//
//	go run ./examples/partialsnapshot [matrix] [procs] [sim|live|net]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/solver"
)

func main() {
	name := "ULTRASOUND80"
	procs := 64
	runtime := "sim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		p, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad processor count %q", os.Args[2])
		}
		procs = p
	}
	if len(os.Args) > 3 {
		runtime = os.Args[3]
	}
	runner, err := experiments.AppRunnerFor(runtime, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	lab := experiments.NewLab(experiments.DefaultConfig())
	for _, partial := range []bool{false, true} {
		label := "full snapshots (§3)"
		if partial {
			label = "partial snapshots (§5 extension)"
		}
		res, err := lab.RunOneOn(name, procs, core.MechSnapshot, sched.Workload(), runner, func(p *solver.Params) {
			p.PartialSnapshots = partial
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s on %s over %d processes (%s runtime) ===\n", label, name, procs, runtime)
		res.WriteReport(os.Stdout)
		fmt.Println()
	}
}
