package service

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// TestAPIRoundTrip drives the full client surface over real TCP frames:
// submit, status, result, metrics, cancel, and error responses.
func TestAPIRoundTrip(t *testing.T) {
	s := newTestServer(t, core.MechNaive, 4)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go s.Serve(ln)

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	id, err := c.Submit(JobSpec{Decisions: 2, Work: 40, Slaves: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if id <= 0 {
		t.Fatalf("job id %d, want positive", id)
	}
	st, err := c.Result(id, 30*time.Second)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Err)
	}
	if st2, err := c.Status(id); err != nil || st2.State != StateDone {
		t.Fatalf("status after done: %v (state %v)", err, st2)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Completed < 1 || m.Procs != 4 || m.Mech != "naive" {
		t.Errorf("metrics %+v inconsistent", m)
	}

	// A slow job canceled through the API goes terminal as canceled.
	id2, err := c.Submit(JobSpec{Decisions: 100, Work: 50, Slaves: 2, Spin: 0.02})
	if err != nil {
		t.Fatalf("submit slow: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := c.Cancel(id2); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if st, err = c.Result(id2, 30*time.Second); err != nil {
		t.Fatalf("result after cancel: %v", err)
	}
	if st.State != StateCanceled {
		t.Errorf("state %s after cancel, want canceled", st.State)
	}

	// Unknown job ids are named errors, not dead connections.
	if _, err := c.Status(9999); err == nil {
		t.Errorf("status of unknown job succeeded")
	}
	// The connection survives the error response.
	if _, err := c.Metrics(); err != nil {
		t.Errorf("metrics after error response: %v", err)
	}
}
