package termdet

import "fmt"

// ds is the Dijkstra–Scholten engagement tree, extended from the
// classic single-source diffusing computation to the port's
// multi-source start: Attach seeds ready work on every rank, so the
// computation does not diffuse from one root. The standard fix is a
// virtual initial diffusion — rank 0 (the root) is charged one
// unacknowledged message per peer, and every other rank starts engaged
// under the root — after which the classic rules apply unchanged:
//
//   - every application message increments the sender's deficit and
//     must eventually be acknowledged;
//   - the first message a disengaged process receives engages it under
//     the sender (its parent in the engagement tree); messages received
//     while engaged are acknowledged at once;
//   - a process detaches — sends its parent the deferred
//     acknowledgment — only when passive with zero deficit;
//   - the root is passive with zero deficit exactly when the
//     computation has terminated globally.
//
// Detection cost: one CtrlAck per application message, plus the n-1
// CtrlTerm announcement. Detection latency: one ack chain up the
// engagement tree — typically the fastest of the protocols here,
// bought with per-message overhead (the increments-vs-snapshot
// trade-off of the load mechanisms, replayed for quiescence).
type ds struct {
	n, rank int
	root    bool
	// parent is the engagement parent, -1 when disengaged.
	parent int
	// deficit counts messages sent (incl. the root's virtual initial
	// diffusion) that are unacknowledged. selfDeficit is the slice of
	// deficit owed by in-flight self-sends; those acknowledge
	// internally on receipt instead of generating control frames.
	deficit     int
	selfDeficit int
	active      bool
	terminated  bool
}

func newDS(n, rank int) *ds {
	d := &ds{n: n, rank: rank, active: true}
	if rank == 0 {
		d.root = true
		d.parent = -1
		// Virtual initial diffusion: one conceptual message to every
		// peer, matching their initial engagement below.
		d.deficit = n - 1
	} else {
		d.parent = 0
	}
	return d
}

// Name implements Protocol.
func (d *ds) Name() string { return ProtocolDS }

// Terminated implements Protocol.
func (d *ds) Terminated() bool { return d.terminated }

// engaged reports whether the process is part of the engagement tree.
func (d *ds) engaged() bool { return d.root || d.parent >= 0 }

// OnSend implements Protocol.
func (d *ds) OnSend(ctx Context, to int) {
	if !d.active && !d.engaged() {
		panic(fmt.Sprintf("termdet: ds: process %d sent while passive and disengaged", d.rank))
	}
	d.deficit++
	if to == d.rank {
		d.selfDeficit++
	}
}

// OnReceive implements Protocol.
func (d *ds) OnReceive(ctx Context, from int) {
	d.active = true
	if from == d.rank {
		// Self-send: acknowledge internally. The process was engaged
		// when it sent (deficit > 0 kept it engaged since), so no
		// engagement can transfer.
		if d.selfDeficit <= 0 || d.deficit <= 0 {
			panic(fmt.Sprintf("termdet: ds: process %d received unsent self message", d.rank))
		}
		d.selfDeficit--
		d.deficit--
		return
	}
	if !d.engaged() {
		d.parent = from
		return
	}
	// Already engaged: acknowledge at once.
	ctx.SendCtrl(from, Ctrl{Kind: CtrlAck})
}

// OnCtrl implements Protocol.
func (d *ds) OnCtrl(ctx Context, from int, c Ctrl) {
	switch c.Kind {
	case CtrlAck:
		if d.deficit <= 0 {
			panic(fmt.Sprintf("termdet: ds: process %d received ack with zero deficit", d.rank))
		}
		d.deficit--
		d.maybeDetach(ctx)
	case CtrlTerm:
		d.terminated = true
	default:
		panic(fmt.Sprintf("termdet: ds: process %d received %s frame", d.rank, CtrlName(c.Kind)))
	}
}

// Passive implements Protocol.
func (d *ds) Passive(ctx Context) {
	d.active = false
	d.maybeDetach(ctx)
}

// maybeDetach sends the deferred acknowledgment to the parent (or
// declares termination on the root) once passive with zero deficit.
// Idempotent: a detached process stays detached until re-engaged by a
// message.
func (d *ds) maybeDetach(ctx Context) {
	if d.active || d.deficit != 0 {
		return
	}
	if d.root {
		if !d.terminated {
			d.terminated = true
			announce(ctx)
		}
		return
	}
	if d.parent >= 0 {
		p := d.parent
		d.parent = -1
		ctx.SendCtrl(p, Ctrl{Kind: CtrlAck})
	}
}
