package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestFullTopologyReproducesGoldens is the refactor's strict no-op
// guarantee: running the golden scenario with an explicit `full`
// topology must reproduce the nil-topology run bit-for-bit — identical
// per-kind message counts and byte volumes, records, final views and
// mechanism stats — for every one of the paper's mechanisms. The
// neighbor seam only changes behaviour when a sparse graph is named.
func TestFullTopologyReproducesGoldens(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		w, cfg, p := goldenParams()
		base, err := NewWorkloadDriver().Run(w, mech, cfg, p)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		topo, err := core.NewTopology("full", p.Procs)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Topo = topo
		full, err := NewWorkloadDriver().Run(w, mech, cfg, p)
		if err != nil {
			t.Fatalf("%s on full: %v", mech, err)
		}
		base.Elapsed, full.Elapsed = 0, 0 // wall clock, not part of the identity
		if !reflect.DeepEqual(base.Counters, full.Counters) {
			t.Errorf("%s: counters moved under full topology:\n nil:  %+v\n full: %+v",
				mech, base.Counters, full.Counters)
		}
		if !reflect.DeepEqual(base.Records, full.Records) {
			t.Errorf("%s: decision records moved under full topology", mech)
		}
		if !reflect.DeepEqual(base.FinalViews, full.FinalViews) {
			t.Errorf("%s: final views moved under full topology", mech)
		}
		if !reflect.DeepEqual(base.Stats, full.Stats) {
			t.Errorf("%s: mechanism stats moved under full topology", mech)
		}
		if !reflect.DeepEqual(base.Executed, full.Executed) {
			t.Errorf("%s: executed counts moved under full topology", mech)
		}
	}
}

// TestSparseTopologyRunsGoldenScenario drives the golden scenario over
// sparse graphs with every mechanism (the paper's three restricted to
// neighbors, plus the two dissemination tenants): the runs must
// complete — with the network panicking on any state message that
// crosses a non-edge — and still execute all work, since quickstart's
// masters assign only to ranks the decision plan reaches.
func TestSparseTopologyRunsGoldenScenario(t *testing.T) {
	for _, mech := range core.AllMechanisms() {
		for _, name := range []string{"ring", "grid2d"} {
			w, cfg, p := goldenParams()
			topo, err := core.NewTopology(name, p.Procs)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Topo = topo
			rep, err := NewWorkloadDriver().Run(w, mech, cfg, p)
			if err != nil {
				t.Fatalf("%s on %s: %v", mech, name, err)
			}
			if rep.DecisionsTaken != 6 {
				t.Errorf("%s on %s: %d decisions, want 6", mech, name, rep.DecisionsTaken)
			}
			if got := rep.TotalExecuted(); got != 12 {
				t.Errorf("%s on %s: executed %d items, want 12", mech, name, got)
			}
			// Every assignment of every decision stayed on an edge.
			for _, rec := range rep.Records {
				for _, a := range rec.Assignments {
					if !topo.Edge(rec.Master, int(a.Proc)) {
						t.Errorf("%s on %s: master %d assigned to non-neighbor %d",
							mech, name, rec.Master, a.Proc)
					}
				}
			}
		}
	}
}
