package core

import (
	"testing"
)

func mkMaintained(t *testing.T, mech Mech, n int, thr float64) (*fakeNet, []Exchanger) {
	t.Helper()
	net := newFakeNet(n)
	exs := make([]Exchanger, n)
	for r := 0; r < n; r++ {
		x, err := New(mech, n, r, Config{Threshold: Load{Workload: thr}, NoMoreMasterOpt: true})
		if err != nil {
			t.Fatal(err)
		}
		net.exs[r] = x
		exs[r] = x
		x.Init(net.ctx(r), Load{})
	}
	return net, exs
}

func TestNaiveThresholdSuppresssSmallChanges(t *testing.T) {
	net, exs := mkMaintained(t, MechNaive, 3, 10)
	exs[0].LocalChange(net.ctx(0), Load{Workload: 5}, false)
	if len(net.queue) != 0 {
		t.Fatal("sub-threshold change broadcast")
	}
	exs[0].LocalChange(net.ctx(0), Load{Workload: 6}, false) // total 11 > 10
	if len(net.queue) != 2 {
		t.Fatalf("queued %d, want 2 (one per peer)", len(net.queue))
	}
	net.drain(100)
	if got := exs[1].View().Metric(0, Workload); got != 11 {
		t.Fatalf("peer view = %v, want 11 (absolute)", got)
	}
}

func TestNaiveViewIsAbsoluteNotCumulative(t *testing.T) {
	net, exs := mkMaintained(t, MechNaive, 2, 1)
	exs[0].LocalChange(net.ctx(0), Load{Workload: 5}, false)
	net.drain(100)
	exs[0].LocalChange(net.ctx(0), Load{Workload: 5}, false)
	net.drain(100)
	if got := exs[1].View().Metric(0, Workload); got != 10 {
		t.Fatalf("view = %v, want 10", got)
	}
	// A lost/reordered absolute update cannot double-count: re-sending
	// the same absolute value leaves the view unchanged.
	exs[1].HandleMessage(net.ctx(1), 0, KindUpdate, UpdatePayload{Load: Load{Workload: 10}})
	if got := exs[1].View().Metric(0, Workload); got != 10 {
		t.Fatalf("view = %v after duplicate absolute, want 10", got)
	}
}

func TestNaiveCommitOnlyLocal(t *testing.T) {
	// Naive Commit must not send anything (no reservation mechanism) but
	// must update the master's own estimates.
	net, exs := mkMaintained(t, MechNaive, 3, 1)
	exs[0].Commit(net.ctx(0), []Assignment{{Proc: 1, Delta: Load{Workload: 50}}})
	if len(net.queue) != 0 {
		t.Fatal("naive Commit sent messages")
	}
	if got := exs[0].View().Metric(1, Workload); got != 50 {
		t.Fatalf("master's own view = %v, want 50", got)
	}
	if got := exs[2].View().Metric(1, Workload); got != 0 {
		t.Fatalf("bystander view = %v, want 0 (uninformed: the Figure 1 flaw)", got)
	}
}

func TestFigure1ScenarioNaiveVsIncrements(t *testing.T) {
	// Figure 1: P2 is busy with a long task. P0 selects P2 as slave, then
	// P1 performs its own selection before P2 ever runs again. Under the
	// naive mechanism P1's view of P2 is stale (it still sees 0); under
	// increments the Master_To_All from P0 has already informed P1.
	for _, mech := range []Mech{MechNaive, MechIncrements} {
		net, exs := mkMaintained(t, mech, 3, 1)
		// P0 decides: assigns 100 units to P2.
		asg := []Assignment{{Proc: 2, Delta: Load{Workload: 100}}}
		exs[0].Acquire(net.ctx(0), func() {})
		exs[0].Commit(net.ctx(0), asg)
		// All state messages are delivered (P2 computes, but state
		// messages are treated before P1's decision per Algorithm 1).
		net.drain(100)
		got := exs[1].View().Metric(2, Workload)
		switch mech {
		case MechNaive:
			if got != 0 {
				t.Fatalf("naive: P1 sees %v for P2, want stale 0", got)
			}
		case MechIncrements:
			if got != 100 {
				t.Fatalf("increments: P1 sees %v for P2, want 100 (reserved)", got)
			}
			// And P2 itself was credited by the Master_To_All.
			if self := exs[2].Local(); self[Workload] != 100 {
				t.Fatalf("increments: P2 self load = %v, want 100", self[Workload])
			}
		}
	}
}

func TestIncrementsDeltaAccumulation(t *testing.T) {
	net, exs := mkMaintained(t, MechIncrements, 2, 10)
	for i := 0; i < 5; i++ {
		exs[0].LocalChange(net.ctx(0), Load{Workload: 3}, false)
	}
	// 15 > 10 at the 4th change: one flush happened, remainder pending.
	net.drain(100)
	if got := exs[1].View().Metric(0, Workload); got != 12 {
		t.Fatalf("view = %v, want 12 (flush at 12, 3 pending)", got)
	}
	if got := exs[0].Local()[Workload]; got != 15 {
		t.Fatalf("local = %v, want 15", got)
	}
}

func TestIncrementsNegativeDeltasBroadcast(t *testing.T) {
	net, exs := mkMaintained(t, MechIncrements, 2, 10)
	exs[0].LocalChange(net.ctx(0), Load{Workload: -20}, false)
	net.drain(100)
	if got := exs[1].View().Metric(0, Workload); got != -20 {
		t.Fatalf("view = %v, want -20 (|Δ| crosses threshold)", got)
	}
}

func TestIncrementsSlavePositiveSkipped(t *testing.T) {
	net, exs := mkMaintained(t, MechIncrements, 3, 1)
	// Master P0 reserves 100 on P1.
	exs[0].Commit(net.ctx(0), []Assignment{{Proc: 1, Delta: Load{Workload: 100}}})
	net.drain(100)
	if got := exs[1].Local()[Workload]; got != 100 {
		t.Fatalf("slave local = %v, want 100 from reservation", got)
	}
	// The subtask arrives: the positive slave-side variation must be
	// skipped (already accounted).
	exs[1].LocalChange(net.ctx(1), Load{Workload: 100}, true)
	if got := exs[1].Local()[Workload]; got != 100 {
		t.Fatalf("slave local = %v after subtask arrival, want still 100", got)
	}
	// Finishing the work (negative, as slave) must flow normally.
	exs[1].LocalChange(net.ctx(1), Load{Workload: -100}, true)
	net.drain(100)
	if got := exs[1].Local()[Workload]; got != 0 {
		t.Fatalf("slave local = %v after completion, want 0", got)
	}
	if got := exs[2].View().Metric(1, Workload); got != 0 {
		t.Fatalf("bystander sees %v, want 0 (reservation 100 then -100)", got)
	}
}

func TestIncrementsViewsConvergeWithZeroThreshold(t *testing.T) {
	net, exs := mkMaintained(t, MechIncrements, 4, 0)
	changes := []struct {
		rank int
		d    float64
	}{{0, 10}, {1, -3}, {2, 7}, {0, 5}, {3, 2}, {1, 8}}
	want := map[int]float64{}
	for _, c := range changes {
		exs[c.rank].LocalChange(net.ctx(c.rank), Load{Workload: c.d}, false)
		want[c.rank] += c.d
	}
	net.drain(1000)
	for viewer := 0; viewer < 4; viewer++ {
		for target := 0; target < 4; target++ {
			if got := exs[viewer].View().Metric(target, Workload); got != want[target] {
				t.Fatalf("proc %d sees %v for %d, want %v", viewer, got, target, want[target])
			}
		}
	}
}

func TestNoMoreMasterPrunesUpdates(t *testing.T) {
	net, exs := mkMaintained(t, MechIncrements, 3, 0)
	// P2 announces it will never be master again.
	exs[2].NoMoreMaster(net.ctx(2))
	net.drain(100)
	before := net.sent[KindUpdate]
	exs[0].LocalChange(net.ctx(0), Load{Workload: 5}, false)
	sent := net.sent[KindUpdate] - before
	if sent != 1 {
		t.Fatalf("update sent to %d peers, want 1 (P2 pruned)", sent)
	}
	net.drain(100)
	// But a Master_To_All that selects P2 still reaches it.
	exs[0].Commit(net.ctx(0), []Assignment{{Proc: 2, Delta: Load{Workload: 9}}})
	net.drain(100)
	if got := exs[2].Local()[Workload]; got != 9 {
		t.Fatalf("pruned slave local = %v, want 9 (still receives its reservation)", got)
	}
}

func TestMaintainedMechanismsNeverBusy(t *testing.T) {
	net, exs := mkMaintained(t, MechIncrements, 2, 0)
	exs[0].Acquire(net.ctx(0), func() {})
	if exs[0].Busy() || exs[1].Busy() {
		t.Fatal("maintained mechanism reported Busy")
	}
	net2, exs2 := mkMaintained(t, MechNaive, 2, 0)
	exs2[0].Acquire(net2.ctx(0), func() {})
	if exs2[0].Busy() {
		t.Fatal("naive reported Busy")
	}
}

func TestAcquireIsSynchronousForMaintained(t *testing.T) {
	net, exs := mkMaintained(t, MechIncrements, 2, 0)
	called := false
	exs[0].Acquire(net.ctx(0), func() { called = true })
	if !called {
		t.Fatal("maintained Acquire must call ready synchronously")
	}
}

func TestMultiMetricThreshold(t *testing.T) {
	net := newFakeNet(2)
	for r := 0; r < 2; r++ {
		x := NewIncrements(2, r, Config{Threshold: Load{Workload: 100, Memory: 10}})
		net.exs[r] = x
		x.Init(net.ctx(r), Load{})
	}
	x0 := net.exs[0].(*Increments)
	// Memory crosses its threshold even though workload does not.
	x0.LocalChange(net.ctx(0), Load{Workload: 1, Memory: 11}, false)
	net.drain(10)
	if got := net.exs[1].View().Metric(0, Memory); got != 11 {
		t.Fatalf("memory view = %v, want 11", got)
	}
	if got := net.exs[1].View().Metric(0, Workload); got != 1 {
		t.Fatalf("workload rides along = %v, want 1", got)
	}
}

func TestNewRejectsUnknownMechanism(t *testing.T) {
	if _, err := New(Mech("bogus"), 2, 0, Config{}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if len(Mechanisms()) != 3 {
		t.Fatal("want 3 mechanisms")
	}
}
