package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingKeepsRecentEvents(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{At: float64(i), Proc: i, Node: -1})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Proc != 6+i {
			t.Fatalf("wrong retention order: %+v", evs)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Proc: 1, Node: -1})
	r.Emit(Event{Proc: 2, Node: -1})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Proc != 1 || evs[1].Proc != 2 {
		t.Fatalf("partial fill wrong: %+v", evs)
	}
}

func TestRingOrderProperty(t *testing.T) {
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw)%32 + 1
		n := int(nRaw) % 200
		r := NewRing(capacity)
		for i := 0; i < n; i++ {
			r.Emit(Event{At: float64(i), Node: -1})
		}
		evs := r.Events()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].At != evs[i-1].At+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingFilterAndDump(t *testing.T) {
	r := NewRing(16)
	r.Emit(Event{Type: EvSend, Proc: 0, Node: -1})
	r.Emit(Event{Type: EvDecision, Proc: 1, Node: 7, Value: 3})
	r.Emit(Event{Type: EvSend, Proc: 2, Node: -1})
	decisions := r.Filter(func(e Event) bool { return e.Type == EvDecision })
	if len(decisions) != 1 || decisions[0].Node != 7 {
		t.Fatalf("filter wrong: %+v", decisions)
	}
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "decide") {
		t.Fatalf("dump missing decision:\n%s", buf.String())
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	for i := 0; i < 5; i++ {
		c.Emit(Event{Type: EvTaskStart})
	}
	c.Emit(Event{Type: EvTaskEnd})
	if c.Count(EvTaskStart) != 5 || c.Count(EvTaskEnd) != 1 || c.Count(EvSend) != 0 {
		t.Fatal("counter wrong")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewCounter(), NewRing(4)
	m := Multi{a, b}
	m.Emit(Event{Type: EvMemory, Node: -1})
	if a.Count(EvMemory) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Emit(Event{Node: -1})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", r.Total())
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1.5, Proc: 3, Type: EvDecision, Node: 42, Value: 2, Note: "x"}
	s := e.String()
	for _, want := range []string{"P3", "decide", "node=42", "value=2", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	if Type(250).String() != "?" {
		t.Fatal("unknown type string")
	}
}
