package main

// loadex run: the scenario × mechanism × runtime matrix. Every
// registered workload scenario runs unchanged on any runtime with any
// mechanism:
//
//	loadex run -scenario burst -mech snapshot -runtime sim
//	loadex run -scenario all -mech all -runtime net -inproc
//	loadex run -scenario all -mech all -runtime all
//
// Each cell prints one row of message/selection statistics. The sim
// runtime is the deterministic discrete-event simulator, live is
// goroutines+channels, net is localhost TCP (forked OS processes by
// default, -inproc for goroutine-hosted sockets).

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/live"
	xnet "repro/internal/net"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runtimeNames lists the runtimes `loadex run` can target.
func runtimeNames() []string { return []string{"sim", "live", "net"} }

func runRun(args []string) error {
	fs := flag.NewFlagSet("loadex run", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	procs := fs.Int("procs", 0, "number of processes (alias for -n)")
	runtime := fs.String("runtime", "sim", "runtime: "+strings.Join(runtimeNames(), "|")+"|all")
	inproc := fs.Bool("inproc", false, "net runtime: run the nodes in-process (same TCP sockets, no fork)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		p.procs = *procs
	}
	if p.masters > p.procs {
		p.masters = p.procs
	}
	if err := p.validate(true); err != nil {
		return err
	}
	if err := p.singleTerm("loadex run"); err != nil {
		return err
	}
	runtimes, scenarios, mechs, err := expandAxes(*runtime, &p)
	if err != nil {
		return err
	}

	// Visit every cell even when one fails: an `all` sweep must report
	// which cells broke, not abort on (or worse, report only) the last
	// one, and must exit non-zero if any did.
	var failed []experiments.CellError
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tmech\truntime\tprocs\tdecisions\texecuted\tupdates\treservations\tsnapshots\trestarts\twire_msgs\twire_bytes\telapsed")
	for _, scenario := range scenarios {
		for _, mech := range mechs {
			for _, rt := range runtimes {
				rep, err := runCell(scenario, mech, rt, *inproc, &p)
				if err != nil {
					cell := experiments.Cell{Scenario: scenario, Mech: string(mech), Runtime: rt}
					failed = append(failed, experiments.CellError{Cell: cell, Err: err})
					fmt.Fprintf(tw, "%s\t%s\t%s\tFAILED: %v\n", scenario, mech, rt, err)
					continue
				}
				writeRunRow(tw, rep)
			}
		}
	}
	tw.Flush()
	return failedCellsError(failed)
}

func isRuntime(name string) bool {
	for _, r := range runtimeNames() {
		if r == name {
			return true
		}
	}
	return false
}

// runCell executes one scenario × mechanism × runtime cell.
func runCell(scenario string, mech core.Mech, rt string, inproc bool, p *nodeParams) (*workload.Report, error) {
	w, err := workload.Get(scenario)
	if err != nil {
		return nil, err
	}
	drive := p.driveOptions()
	switch rt {
	case "sim":
		return sim.NewWorkloadDriver().Run(w, mech, p.config(), p.params())
	case "live":
		return live.Driver{Drive: drive}.Run(w, mech, p.config(), p.params())
	case "net":
		if inproc {
			codec, err := xnet.NewCodec(p.codec)
			if err != nil {
				return nil, err
			}
			return xnet.Driver{Opts: xnet.Options{Codec: codec}, Drive: drive}.Run(w, mech, p.config(), p.params())
		}
		// Forked: one OS process per rank — program scenarios walk their
		// compiled programs, application scenarios host one rank of the
		// app each with detector-driven quiescence.
		return runCellForked(scenario, mech, p)
	}
	return nil, fmt.Errorf("unknown runtime %q", rt)
}

// runCellForked runs one net cell as forked OS processes, folding the
// per-rank STATS reports into a matrix report.
func runCellForked(scenario string, mech core.Mech, p *nodeParams) (*workload.Report, error) {
	q := *p
	q.scenario, q.mech = scenario, string(mech)
	start := time.Now()
	stats, err := runClusterForked(&q)
	if err != nil {
		return nil, err
	}
	rep := &workload.Report{
		Scenario: scenario,
		Runtime:  "net",
		Mech:     mech,
		Procs:    q.procs,
		Elapsed:  time.Since(start),
	}
	for _, s := range stats {
		rep.DecisionsTaken += s.Decisions
		rep.Executed = append(rep.Executed, s.Executed)
		rep.Stats = append(rep.Stats, s.Mech)
		rep.Counters.Merge(s.Counters)
		rep.WireMsgs += s.Transport.MsgsIn
		rep.WireBytes += s.Transport.BytesIn
	}
	return rep, nil
}

// writeRunRow prints one matrix cell.
func writeRunRow(tw *tabwriter.Writer, rep *workload.Report) {
	st := rep.TotalStats()
	fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
		rep.Scenario, rep.Mech, rep.Runtime, rep.Procs,
		rep.DecisionsTaken, rep.TotalExecuted(),
		st.UpdatesSent, st.ReservationsSent,
		st.SnapshotsInitiated, st.SnapshotRestarts,
		rep.WireMsgs, rep.WireBytes,
		rep.Elapsed.Round(time.Millisecond))
}
