package workload_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	xnet "repro/internal/net"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The scenario-matrix equivalence suite is the generalization of the
// original cross-runtime test: every registered scenario runs under
// every mechanism on all three drivers of the core state machines —
// sim (deterministic discrete events), live (goroutines+channels) and
// net (real localhost TCP) — and the mechanism-level invariants must
// agree:
//
//  1. selection coherence — every slave selection targets exactly the
//     processes the master believed least-loaded per its recorded view
//     (re-derived independently with core.LeastLoaded), with equal
//     positive shares;
//  2. snapshot conservation — for scenarios with a constant per-item
//     share and no spontaneous local changes, the total load a snapshot
//     view reports lies within the committed-minus-completed window
//     spanned by the acquire..ready samples, offset by the total
//     initial load; and every final coherent view sees exactly the
//     expected per-rank final loads;
//  3. count equivalence — executed work items, reservations and
//     snapshots initiated are identical across the three runtimes.
var matrixParams = workload.Params{
	Procs: 6, Masters: 2, Decisions: 2, Work: 90, Slaves: 3,
	Spin: 200 * time.Microsecond,
}

// matrixDrivers returns the runtimes to cover; -short drops the TCP
// runtime (the race-detector CI lane runs short mode).
func matrixDrivers(short bool) []workload.Driver {
	drive := workload.DriveOptions{Settle: 10 * time.Second}
	ds := []workload.Driver{
		sim.NewWorkloadDriver(),
		live.Driver{Drive: drive},
	}
	if !short {
		ds = append(ds, xnet.Driver{Drive: drive})
	}
	return ds
}

func TestScenarioMatrixEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		for _, mech := range core.Mechanisms() {
			w, mech := w, mech
			t.Run(w.Name()+"/"+string(mech), func(t *testing.T) {
				progs, err := w.Programs(matrixParams)
				if err != nil {
					t.Fatal(err)
				}
				reports := map[string]*workload.Report{}
				for _, d := range matrixDrivers(testing.Short()) {
					rep, err := d.Run(w, mech, core.Config{}, matrixParams)
					if err != nil {
						t.Fatalf("%s: %v", d.Runtime(), err)
					}
					reports[d.Runtime()] = rep
					checkMatrixInvariants(t, rep, progs)
				}
				// Count equivalence across runtimes.
				want := reports["sim"]
				for name, got := range reports {
					if name == "sim" {
						continue
					}
					if a, b := got.TotalExecuted(), want.TotalExecuted(); a != b {
						t.Errorf("%s executed %d items, sim executed %d", name, a, b)
					}
					gs, ws := got.TotalStats(), want.TotalStats()
					if gs.ReservationsSent != ws.ReservationsSent {
						t.Errorf("%s sent %d reservations, sim sent %d", name, gs.ReservationsSent, ws.ReservationsSent)
					}
					if gs.SnapshotsInitiated != ws.SnapshotsInitiated {
						t.Errorf("%s initiated %d snapshots, sim initiated %d", name, gs.SnapshotsInitiated, ws.SnapshotsInitiated)
					}
				}
			})
		}
	}
}

// TestRampNoMoreMasterOpt exercises the §2.3 recipient pruning the ramp
// scenario exists for: every rank declares No_more_master with the
// optimization enabled, so trailing updates are pruned and views may
// legitimately go stale — selection coherence and count equivalence
// must still hold (final-view equality is not asserted: staleness is
// the feature under test).
func TestRampNoMoreMasterOpt(t *testing.T) {
	w, err := workload.Get("ramp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{NoMoreMasterOpt: true}
	progs, err := w.Programs(matrixParams)
	if err != nil {
		t.Fatal(err)
	}
	// Pruned views never settle, so don't wait for them.
	drive := workload.DriveOptions{Settle: -1}
	drivers := []workload.Driver{sim.NewWorkloadDriver(), live.Driver{Drive: drive}}
	if !testing.Short() {
		drivers = append(drivers, xnet.Driver{Drive: drive})
	}
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			var prev *workload.Report
			for _, d := range drivers {
				rep, err := d.Run(w, mech, cfg, matrixParams)
				if err != nil {
					t.Fatalf("%s: %v", d.Runtime(), err)
				}
				if got, want := len(rep.Records), workload.DecisionCount(progs); got != want {
					t.Fatalf("%s: recorded %d decisions, want %d", d.Runtime(), got, want)
				}
				for i, rec := range rep.Records {
					sel := core.LeastLoaded(core.ViewOf(rec.View), core.Workload, rec.Master, len(rec.Assignments))
					for j, a := range rec.Assignments {
						if int(a.Proc) != sel[j] {
							t.Errorf("%s decision %d: assignment %d targets %d, least-loaded per view is %d",
								d.Runtime(), i, j, a.Proc, sel[j])
						}
					}
				}
				if prev != nil {
					if a, b := rep.TotalExecuted(), prev.TotalExecuted(); a != b {
						t.Errorf("%s executed %d items, %s executed %d", d.Runtime(), a, prev.Runtime, b)
					}
				}
				prev = rep
			}
		})
	}
}

// expectedItems counts the work items the programs will spawn: one per
// selected slave per decision.
func expectedItems(progs []workload.Program) int64 {
	n := len(progs)
	var total int64
	for _, prog := range progs {
		for _, st := range prog.Steps {
			if st.Op != workload.OpDecide {
				continue
			}
			k := st.Slaves
			if k > n-1 {
				k = n - 1
			}
			total += int64(k)
		}
	}
	return total
}

// checkMatrixInvariants asserts the per-runtime invariants on one
// report.
func checkMatrixInvariants(t *testing.T, rep *workload.Report, progs []workload.Program) {
	t.Helper()
	const eps = 1e-9
	name := rep.Runtime
	if got, want := len(rep.Records), workload.DecisionCount(progs); got != want {
		t.Fatalf("%s: recorded %d decisions, want %d", name, got, want)
	}
	if got, want := rep.TotalExecuted(), expectedItems(progs); got != want {
		t.Errorf("%s: executed %d work items, want %d", name, got, want)
	}

	share, constShare := workload.ConstantShare(progs)
	windowOK := constShare && !workload.HasLocalChanges(progs)
	initialTotal := workload.TotalInitial(progs)[core.Workload]

	for i, rec := range rep.Records {
		// Invariant 1: the assignment targets re-derive from the view.
		sel := core.LeastLoaded(core.ViewOf(rec.View), core.Workload, rec.Master, len(rec.Assignments))
		if len(sel) != len(rec.Assignments) {
			t.Fatalf("%s decision %d: %d assignments, %d least-loaded", name, i, len(rec.Assignments), len(sel))
		}
		var firstShare float64
		for j, a := range rec.Assignments {
			if int(a.Proc) != sel[j] {
				t.Errorf("%s decision %d (master %d): assignment %d targets %d, least-loaded per view is %d",
					name, i, rec.Master, j, a.Proc, sel[j])
			}
			if j == 0 {
				firstShare = a.Delta[core.Workload]
				if firstShare <= 0 {
					t.Errorf("%s decision %d: non-positive share %v", name, i, firstShare)
				}
			} else if math.Abs(a.Delta[core.Workload]-firstShare) > eps {
				t.Errorf("%s decision %d: unequal shares %v vs %v", name, i, a.Delta[core.Workload], firstShare)
			}
		}
		// Invariant 2 (snapshot, constant-share scenarios): the view
		// total lies in the committed-minus-completed window of the
		// acquire..ready interval, offset by the initial total. Counter
		// placement (assigned leads Commit, executed trails the load
		// decrement) makes these bounds sound under live concurrency.
		if rep.Mech == core.MechSnapshot && windowOK {
			var sum float64
			for _, l := range rec.View {
				sum += l[core.Workload]
			}
			lo := initialTotal + float64(rec.AssignedAtAcquire-rec.ExecutedAtReady)*share
			hi := initialTotal + float64(rec.AssignedAtReady-rec.ExecutedAtAcquire)*share
			if sum < lo-eps || sum > hi+eps {
				t.Errorf("%s decision %d (master %d): snapshot total %v outside conservation window [%v, %v] (a0=%d d0=%d a1=%d d1=%d)",
					name, i, rec.Master, sum, lo, hi,
					rec.AssignedAtAcquire, rec.ExecutedAtAcquire, rec.AssignedAtReady, rec.ExecutedAtReady)
			}
		}
	}

	// Invariant 2, final cut: after quiescence every coherent view must
	// report exactly the expected final loads — total load is conserved
	// and all slave work is gone.
	want := workload.ExpectedFinals(progs)
	if got := len(rep.FinalViews); got != len(progs) {
		t.Fatalf("%s: %d final views for %d ranks", name, got, len(progs))
	}
	for r, view := range rep.FinalViews {
		for p, l := range view {
			for m := core.Metric(0); m < core.NumMetrics; m++ {
				if math.Abs(l[m]-want[p][m]) > eps {
					t.Errorf("%s: final view of rank %d sees %v %s on %d, want %v",
						name, r, l[m], m, p, want[p][m])
				}
			}
		}
	}
}
