package termdet

import "fmt"

// safra is Safra's termination-detection probe (the token algorithm of
// EWD 998, as used by distributed model checkers and MPI runtimes):
//
//   - every process i keeps a message-count balance count_i (sends
//     minus receives) and a color; receiving an application message
//     makes the process black (it may have been reactivated behind the
//     token's back);
//   - rank 0 launches a probe when it becomes passive: a white token
//     with count 0 travels the ring 0 → 1 → … → n-1 → 0. A process
//     holds the token while active and forwards it when passive,
//     adding its balance, blackening the token if it is black itself,
//     and whitening itself;
//   - when the token returns, rank 0 concludes termination iff it is
//     itself passive and white, the token is white, and the token's
//     count plus rank 0's balance is zero. Otherwise the probe failed
//     (activity crossed the cut) and a fresh one departs as soon as
//     rank 0 is passive again.
//
// Detection cost: n control hops per probe round and nothing per
// application message — the snapshot-flavoured end of the trade-off,
// where DS is the increments-flavoured one. Probe rounds are throttled
// by activity (a busy process simply holds the token), so a running
// computation sees at most one token in flight, not a probe storm.
type safra struct {
	n, rank int
	// count is the send/receive balance; self-sends cancel out but are
	// tracked symmetrically (send ++, receive --) for uniformity.
	count int32
	black bool
	// hasToken / tokenCount / tokenBlack hold the probe while the
	// process is active (it forwards at the next Passive).
	hasToken   bool
	tokenCount int32
	tokenBlack bool
	// probing is rank 0's "a token is in flight" latch.
	probing    bool
	active     bool
	terminated bool
}

func newSafra(n, rank int) *safra {
	return &safra{n: n, rank: rank, active: true}
}

// Name implements Protocol.
func (s *safra) Name() string { return ProtocolSafra }

// Terminated implements Protocol.
func (s *safra) Terminated() bool { return s.terminated }

// OnSend implements Protocol.
func (s *safra) OnSend(ctx Context, to int) { s.count++ }

// OnReceive implements Protocol.
func (s *safra) OnReceive(ctx Context, from int) {
	s.count--
	s.black = true
	s.active = true
}

// OnCtrl implements Protocol.
func (s *safra) OnCtrl(ctx Context, from int, c Ctrl) {
	switch c.Kind {
	case CtrlToken:
		s.hasToken = true
		s.tokenCount = c.Count
		s.tokenBlack = c.Black
		if !s.active {
			s.handOff(ctx)
		}
	case CtrlTerm:
		s.terminated = true
	default:
		panic(fmt.Sprintf("termdet: safra: process %d received %s frame", s.rank, CtrlName(c.Kind)))
	}
}

// Passive implements Protocol.
func (s *safra) Passive(ctx Context) {
	s.active = false
	if s.terminated {
		return
	}
	if s.rank == 0 && !s.probing && !s.hasToken {
		s.launch(ctx)
		return
	}
	if s.hasToken {
		s.handOff(ctx)
	}
}

// launch departs a fresh probe from rank 0: whiten, send a white
// zero-count token to rank 1 (or conclude immediately when alone).
func (s *safra) launch(ctx Context) {
	if s.n == 1 {
		// Alone: passive with a zero balance means nothing is in
		// flight (a pending self-send keeps count positive; its
		// receipt reactivates us and a later Passive re-evaluates).
		if s.count == 0 {
			s.conclude(ctx)
		}
		return
	}
	s.probing = true
	s.black = false
	ctx.SendCtrl((s.rank+1)%s.n, Ctrl{Kind: CtrlToken})
}

// handOff is a passive process's token action: rank 0 evaluates the
// returned probe, everyone else forwards it around the ring.
func (s *safra) handOff(ctx Context) {
	if s.rank == 0 {
		s.hasToken = false
		s.probing = false
		if !s.black && !s.tokenBlack && s.tokenCount+s.count == 0 {
			s.conclude(ctx)
			return
		}
		// Failed probe (activity crossed the cut): relaunch at once —
		// the caller guarantees we are passive, and the new round
		// starts from a whitened rank 0.
		s.launch(ctx)
		return
	}
	s.hasToken = false
	c := Ctrl{Kind: CtrlToken, Count: s.tokenCount + s.count, Black: s.tokenBlack || s.black}
	s.black = false
	ctx.SendCtrl((s.rank+1)%s.n, c)
}

// conclude latches termination on rank 0 and announces it.
func (s *safra) conclude(ctx Context) {
	if s.terminated {
		return
	}
	s.terminated = true
	announce(ctx)
}
