package stats

// Streaming histogram: constant-space quantile sketches that merge
// exactly. The obs registry records latency samples into one per
// instrument; the service keeps one per makespan/queue-wait series so
// the metrics API can report p50/p95/p99 over every sample ever taken,
// not just the ones still buffered.
//
// Buckets are log-linear: each power-of-two octave of the positive
// reals splits into histSub equal sub-buckets, so relative bucket
// width is 1/histSub (12.5%) everywhere — quantile error is bounded by
// that ratio regardless of the value range. Merging adds bucket counts
// element-wise, which is exactly associative and commutative; only the
// float Sum accumulates rounding.

import (
	"fmt"
	"math"
)

const (
	// histSub sub-buckets per power-of-two octave.
	histSub = 8
	// Octave exponents covered: math.Frexp exponents in
	// [histMinExp, histMaxExp). 2^-32 s ≈ 0.2 ns and 2^32 s ≈ 136
	// years bracket every duration or size this repo measures;
	// values outside clamp to the edge buckets.
	histMinExp = -32
	histMaxExp = 32
	// histBuckets: one underflow bucket (index 0, values ≤ 0 or
	// below range) plus the log-linear grid.
	histBuckets = (histMaxExp-histMinExp)*histSub + 1
)

// bucketIndex maps a sample to its bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac ∈ [0.5, 1)
	if exp < histMinExp {
		return 0
	}
	sub := int((frac - 0.5) * (2 * histSub))
	if sub >= histSub {
		sub = histSub - 1
	}
	if exp >= histMaxExp {
		exp, sub = histMaxExp-1, histSub-1
	}
	return 1 + (exp-histMinExp)*histSub + sub
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 0
	}
	k := i - 1
	exp := histMinExp + k/histSub
	sub := k % histSub
	scale := math.Ldexp(1, exp) // 2^exp
	lo = (0.5 + float64(sub)/(2*histSub)) * scale
	hi = lo + scale/(2*histSub)
	return lo, hi
}

// StreamHist is a mergeable streaming histogram. The zero value is
// ready to use. Not safe for concurrent mutation — the obs registry
// wraps it with its own synchronization.
type StreamHist struct {
	counts [histBuckets]int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// Add records one sample.
func (h *StreamHist) Add(v float64) {
	h.counts[bucketIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge folds o into h. Bucket counts add element-wise, so merging is
// associative and commutative up to float rounding in Sum.
func (h *StreamHist) Merge(o *StreamHist) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// AddBucket adds c samples directly to the bucket holding
// representative value v, without touching sum/min/max beyond the
// count-weighted contribution. Used to rebuild a hist from a
// concurrent bucket array.
func (h *StreamHist) AddBucket(v float64, c int64) {
	if c <= 0 {
		return
	}
	h.counts[bucketIndex(v)] += c
	h.n += c
	h.sum += v * float64(c)
	if h.n == c || v < h.min {
		h.min = v
	}
	if h.n == c || v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *StreamHist) Count() int64 { return h.n }

// Sum returns the sum of all recorded samples.
func (h *StreamHist) Sum() float64 { return h.sum }

// Mean returns the mean sample, 0 when empty.
func (h *StreamHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the extreme samples seen (exact, not bucketed).
func (h *StreamHist) Min() float64 { return h.min }
func (h *StreamHist) Max() float64 { return h.max }

// Quantile returns the p-quantile (p in [0,1]) with linear
// interpolation inside the landing bucket. Relative error is bounded
// by the bucket width (1/histSub). Empty hist returns 0.
func (h *StreamHist) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		return h.max
	}
	// Rank of the target sample (0-based, same convention as
	// stats.Percentile over a sorted slice).
	rank := p * float64(h.n-1)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		// Bucket i holds samples with 0-based ranks [cum, cum+c).
		if rank < float64(cum+c) {
			if i == 0 {
				return h.min
			}
			lo, hi := bucketBounds(i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.max
}

// HistSummary is the JSON-friendly digest of a StreamHist, used by the
// service metrics API and the obs exposition.
type HistSummary struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary digests the histogram.
func (h *StreamHist) Summary() HistSummary {
	return HistSummary{
		Count: h.n,
		Min:   h.min,
		Max:   h.max,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

func (s HistSummary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g mean=%.4g",
		s.Count, s.Min, s.P50, s.P95, s.P99, s.Max, s.Mean)
}

// Equal reports whether two hists hold identical bucket counts and
// extremes (sums may differ by float rounding across merge orders).
func (h *StreamHist) Equal(o *StreamHist) bool {
	if h.n != o.n || h.min != o.min || h.max != o.max {
		return false
	}
	return h.counts == o.counts
}
