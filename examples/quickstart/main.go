// Quickstart: run the three load-information exchange mechanisms of
// Guermouche & L'Excellent (RR-5478, 2005) over real goroutines and
// channels, take a few dynamic scheduling decisions, and watch how
// coherent each mechanism's view of the system is.
//
// The workload is the registered "quickstart" scenario from
// internal/workload; swap the name below (burst, ramp, hetero,
// straggler) and the same driver runs it unchanged — that is the point
// of the Workload/Driver split. `loadex run` exposes the full
// scenario × mechanism × runtime matrix on the command line.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/workload"
)

func main() {
	w, err := workload.Get("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	params := workload.Params{
		Procs: 8, Masters: 3, Decisions: 4, Work: 120, Slaves: 3,
		Spin: 2 * time.Millisecond,
	}
	cfg := core.Config{
		Threshold:       core.Load{core.Workload: 5},
		NoMoreMasterOpt: true,
	}
	// Threshold-based mechanisms leave views slightly stale by design;
	// don't wait long for them to settle before reading the report.
	drv := live.Driver{Drive: workload.DriveOptions{Settle: 50 * time.Millisecond}}
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		fmt.Printf("=== mechanism: %s ===\n", mech)
		rep, err := drv.Run(w, mech, cfg, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("work items executed per node:")
		for r, n := range rep.Executed {
			fmt.Printf("  node %d: %d\n", r, n)
		}
		if mech == core.MechSnapshot {
			st := rep.Stats[0]
			fmt.Printf("node 0 snapshot stats: initiated=%d restarts=%d\n",
				st.SnapshotsInitiated, st.SnapshotRestarts)
		}
	}
	fmt.Println("done — see `go run ./cmd/loadex run` for the scenario × mechanism × runtime matrix")
}
