package core

// Test fabric: an in-memory message-passing network with per-pair FIFO
// guarantees and deterministic global delivery order, so protocol
// scenarios (including the paper's 3-process asynchronism example) can be
// scripted precisely.

type fakeMsg struct {
	from, to int
	kind     int
	payload  any
}

type fakeNet struct {
	n     int
	exs   []Exchanger
	queue []fakeMsg // global FIFO (preserves per-pair FIFO)
	now   float64
	sent  map[int]int // per-kind counters
}

func newFakeNet(n int) *fakeNet {
	return &fakeNet{n: n, exs: make([]Exchanger, n), sent: map[int]int{}}
}

type fakeCtx struct {
	net  *fakeNet
	rank int
}

func (c *fakeCtx) Rank() int    { return c.rank }
func (c *fakeCtx) N() int       { return c.net.n }
func (c *fakeCtx) Now() float64 { return c.net.now }

func (c *fakeCtx) Send(to int, kind int, payload any, bytes float64) {
	c.net.sent[kind]++
	c.net.queue = append(c.net.queue, fakeMsg{c.rank, to, kind, payload})
}

func (c *fakeCtx) Broadcast(kind int, payload any, bytes float64) {
	for to := 0; to < c.net.n; to++ {
		if to != c.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

func (f *fakeNet) ctx(rank int) *fakeCtx { return &fakeCtx{net: f, rank: rank} }

// step delivers the first queued message; returns false when empty.
func (f *fakeNet) step() bool {
	if len(f.queue) == 0 {
		return false
	}
	m := f.queue[0]
	f.queue = f.queue[1:]
	f.now += 0.001
	f.exs[m.to].HandleMessage(f.ctx(m.to), m.from, m.kind, m.payload)
	return true
}

// drain delivers messages until quiescence (bounded, to catch livelock).
func (f *fakeNet) drain(limit int) int {
	steps := 0
	for f.step() {
		steps++
		if steps > limit {
			panic("fakeNet: message storm, protocol livelock?")
		}
	}
	return steps
}

// deliverNext delivers the first queued message matching the filter,
// keeping the rest in order; returns false if none matches.
func (f *fakeNet) deliverNext(match func(fakeMsg) bool) bool {
	for i, m := range f.queue {
		if match(m) {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			f.now += 0.001
			f.exs[m.to].HandleMessage(f.ctx(m.to), m.from, m.kind, m.payload)
			return true
		}
	}
	return false
}
