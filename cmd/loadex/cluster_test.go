package main

import (
	"strings"
	"testing"
	"time"
)

func TestClusterInProcAllMechanisms(t *testing.T) {
	for _, mech := range []string{"naive", "increments", "snapshot"} {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			p := nodeParams{
				procs: 5, mech: mech, threshold: 5, noMore: true, codec: "binary",
				masters: 2, decisions: 2, work: 60, slaves: 2,
				spin: 100 * time.Microsecond, settle: 10 * time.Millisecond,
			}
			stats, err := runClusterInProc(&p)
			if err != nil {
				t.Fatal(err)
			}
			var executed, decisions int64
			for _, s := range stats {
				executed += s.Executed
				decisions += int64(s.Decisions)
			}
			if want := int64(p.masters * p.decisions * p.slaves); executed != want {
				t.Fatalf("executed %d, want %d", executed, want)
			}
			if want := int64(p.masters * p.decisions); decisions != want {
				t.Fatalf("decisions %d, want %d", decisions, want)
			}
			var report strings.Builder
			writeClusterReport(&report, &p, true, stats)
			for _, want := range []string{"mechanism: " + mech, "quiescent"} {
				if !strings.Contains(report.String(), want) {
					t.Fatalf("report missing %q:\n%s", want, report.String())
				}
			}
		})
	}
}

func TestNodeParamsValidate(t *testing.T) {
	good := nodeParams{procs: 4, masters: 2, slaves: 1}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []nodeParams{
		{procs: 1, masters: 1, slaves: 1},
		{procs: 4, masters: 0, slaves: 1},
		{procs: 4, masters: 5, slaves: 1},
		{procs: 4, masters: 2, slaves: 0},
	} {
		if err := bad.validate(); err == nil {
			t.Fatalf("params %+v validated", bad)
		}
	}
}
