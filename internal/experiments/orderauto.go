package experiments

import (
	"repro/internal/ordering"
	"repro/internal/sparse"
)

// orderAuto picks the ordering exactly as Analyze's auto mode does, kept
// separate so Lab can work from a pre-built graph (with coordinates).
func orderAuto(g *sparse.Graph) (ordering.Perm, error) {
	return ordering.Order(g, ordering.MethodAuto)
}
