package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// leastLoadedRef is the original O(n²) selection-sort implementation,
// kept as the oracle for the heap-based partial selection.
func leastLoadedRef(v *View, m Metric, exclude, k int) []int {
	type cand struct {
		p int
		l float64
	}
	cands := make([]cand, 0, v.N())
	for p := 0; p < v.N(); p++ {
		if p != exclude {
			cands = append(cands, cand{p, v.Metric(p, m)})
		}
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].l < cands[i].l || (cands[j].l == cands[i].l && cands[j].p < cands[i].p) {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].p
	}
	return out
}

func TestLeastLoadedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		v := NewView(n)
		for p := 0; p < n; p++ {
			// Quantized loads force plenty of ties, exercising the
			// lower-rank-wins tie-break.
			v.Set(p, Load{Workload: float64(rng.Intn(5)), Memory: rng.Float64()})
		}
		k := rng.Intn(n + 2)
		exclude := rng.Intn(n+1) - 1 // -1 .. n-1
		metric := Metric(rng.Intn(int(NumMetrics)))
		got := LeastLoaded(v, metric, exclude, k)
		want := leastLoadedRef(v, metric, exclude, k)
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d exclude=%d: got %v, want %v", n, k, exclude, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d exclude=%d metric=%v: got %v, want %v", n, k, exclude, metric, got, want)
			}
		}
	}
}

func TestLeastLoadedEdgeCases(t *testing.T) {
	v := NewView(4)
	for p := 0; p < 4; p++ {
		v.Set(p, Load{Workload: float64(p)})
	}
	if got := LeastLoaded(v, Workload, -1, 0); len(got) != 0 {
		t.Errorf("k=0: got %v, want empty", got)
	}
	if got := LeastLoaded(v, Workload, -1, -3); len(got) != 0 {
		t.Errorf("k<0: got %v, want empty", got)
	}
	if got, want := LeastLoaded(v, Workload, 0, 10), []int{1, 2, 3}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("k>n: got %v, want %v", got, want)
	}
	// All-equal loads: pure rank tie-break.
	for p := 0; p < 4; p++ {
		v.Set(p, Load{Workload: 7})
	}
	if got, want := LeastLoaded(v, Workload, 2, 2), []int{0, 1}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ties: got %v, want %v", got, want)
	}
}

// TestViewMinCacheCoherence drives a view through a random Set/AddTo
// mutation stream interleaved with k=1 selections and checks every
// answer against the O(n²) oracle: the incremental minimum cache must
// never serve a stale rank, whatever order updates and queries arrive
// in.
func TestViewMinCacheCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		v := NewView(n)
		for op := 0; op < 60; op++ {
			p := rng.Intn(n)
			// Quantized loads force ties; negative deltas force the
			// cached minimum to move both ways.
			l := Load{Workload: float64(rng.Intn(4)), Memory: float64(rng.Intn(4))}
			if rng.Intn(2) == 0 {
				v.Set(p, l)
			} else {
				v.AddTo(p, Load{Workload: float64(rng.Intn(5) - 2), Memory: float64(rng.Intn(5) - 2)})
			}
			exclude := rng.Intn(n+1) - 1
			metric := Metric(rng.Intn(int(NumMetrics)))
			got := LeastLoaded(v, metric, exclude, 1)
			want := leastLoadedRef(v, metric, exclude, 1)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d op %d n=%d exclude=%d metric=%v: got %v, want %v",
					trial, op, n, exclude, metric, got, want)
			}
		}
	}
}

// BenchmarkLeastLoaded covers the dynamic-decision hot path at and far
// beyond the paper's 128-process scale, up to million-entry views. k=1
// is the PlanDecision fast path served by the view's incremental
// minimum; the mutate variant interleaves an update per selection so
// the cache is exercised under churn rather than answering from a
// frozen view.
func BenchmarkLeastLoaded(b *testing.B) {
	for _, n := range []int{64, 1024, 16384, 1 << 20} {
		v := NewView(n)
		rng := rand.New(rand.NewSource(1))
		for p := 0; p < n; p++ {
			v.Set(p, Load{Workload: rng.Float64() * 1000})
		}
		for _, k := range []int{1, 3, 16} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sel := LeastLoaded(v, Workload, 0, k)
					if len(sel) != k {
						b.Fatalf("selected %d, want %d", len(sel), k)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("n=%d/k=1/mutate", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v.AddTo(i%n, Load{Workload: float64(i%64) - 32})
				sel := LeastLoaded(v, Workload, 0, 1)
				if len(sel) != 1 {
					b.Fatalf("selected %d, want 1", len(sel))
				}
			}
		})
	}
}
