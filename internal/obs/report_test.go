package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func TestBuildTimeline(t *testing.T) {
	events := []chaos.Event{
		{Ev: chaos.EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
		{Ev: chaos.EvSpanBegin, Rank: 0, Span: "decision.acquire", Sid: 2, T: 1.0},
		{Ev: chaos.EvSpanEnd, Rank: 0, Span: "decision.acquire", Sid: 2, T: 1.5},
		{Ev: chaos.EvSpanEnd, Rank: 0, Span: "decision", Sid: 1, T: 2.0},
		{Ev: chaos.EvStart, Rank: 1, T: 0.5},
		{Ev: chaos.EvDone, Rank: 1, T: 0.75},
		// Span on another rank with the same sid numbering: must not
		// collide (pairing is per rank).
		{Ev: chaos.EvSpanBegin, Rank: 1, Span: "termdet.idle", Sid: 1, T: 3.0},
		{Ev: chaos.EvSpanEnd, Rank: 1, Span: "termdet.idle", Sid: 1, T: 4.0},
	}
	tl := BuildTimeline(events)
	if tl.Spans != 4 {
		t.Fatalf("spans = %d, want 4", tl.Spans)
	}
	if tl.Unmatched != 0 {
		t.Fatalf("unmatched = %d, want 0", tl.Unmatched)
	}
	if got := tl.SpanTotal("decision.acquire"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("decision.acquire total = %g, want 0.5", got)
	}
	if got := tl.SpanTotal("compute"); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("compute total = %g, want 0.25", got)
	}

	var b strings.Builder
	if err := tl.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	// The output must be loadable Chrome trace JSON: an object with a
	// traceEvents array of ph/ts/pid records.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("complete event without ts: %v", ev)
			}
		case "M":
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 4 {
		t.Fatalf("chrome JSON has %d complete events, want 4", complete)
	}

	var md strings.Builder
	tl.WriteMarkdown(&md)
	for _, want := range []string{"| span |", "decision.acquire", "compute", "termdet.idle"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown breakdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestBuildTimelineUnmatched(t *testing.T) {
	events := []chaos.Event{
		{Ev: chaos.EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
		{Ev: chaos.EvSpanEnd, Rank: 0, Span: "decision", Sid: 99, T: 2.0},
	}
	tl := BuildTimeline(events)
	if tl.Spans != 0 || tl.Unmatched != 2 {
		t.Fatalf("spans=%d unmatched=%d, want 0/2", tl.Spans, tl.Unmatched)
	}
}
