package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// AppRunner implements workload.AppRunner on the deterministic
// discrete-event simulator: the sim side of the application port. It
// reproduces exactly the runtime surface the solver used before the
// port existed — state sends become StateChannel messages, SendData
// becomes DataChannel messages carrying the flattened workload.DataMsg,
// Compute schedules a simulated task — plus the quiescence subsystem:
// one termination detector (internal/termdet) per rank whose control
// frames travel the simulated CtrlChannel with real modeled sizes, so
// the event queue drains exactly when the detector announces global
// termination.
type AppRunner struct {
	// Network configures the simulated interconnect. The zero value
	// means DefaultNetwork().
	Network NetworkConfig
}

// Runtime implements workload.AppRunner.
func (*AppRunner) Runtime() string { return "sim" }

// RunApp implements workload.AppRunner: it drives the application's
// Algorithm 1 loops through the engine until the event queue drains,
// and verifies the drain coincides with detector-announced termination.
func (r *AppRunner) RunApp(n int, app workload.App, opts workload.AppRunOptions) (*workload.AppReport, error) {
	net := r.Network.Normalized()
	eng := NewEngine()
	eng.MaxSteps = opts.MaxSteps
	h := &appHost{
		app: app, opts: opts, busySince: make([]float64, n), termAt: -1,
		busySid: make([]int64, n), idleSid: make([]int64, n),
	}
	for i := range h.busySince {
		h.busySince[i] = -1
	}
	h.dets = make([]termdet.Protocol, n)
	for rank := 0; rank < n; rank++ {
		det, err := termdet.New(opts.Term, n, rank)
		if err != nil {
			return nil, err
		}
		h.dets[rank] = det
	}
	h.rt = NewRuntime(eng, n, net, h)
	h.rt.Threaded = opts.Threaded
	if opts.PollPeriod > 0 {
		h.rt.PollPeriod = Duration(opts.PollPeriod)
	}
	if err := app.Attach(h); err != nil {
		return nil, err
	}
	h.rt.Start()
	if err := eng.Run(); err != nil {
		return nil, err
	}
	// The event queue drained: the detector must have concluded — a
	// drain without detection means the computation deadlocked with the
	// detector still waiting (the application's Outcome diagnoses the
	// specifics).
	if !h.dets[0].Terminated() {
		return h.report(), fmt.Errorf("sim: event queue drained without termination detection (%s): application deadlock", h.dets[0].Name())
	}
	if !h.app.Done() {
		return h.report(), fmt.Errorf("sim: detector (%s) announced termination before the application was done", h.dets[0].Name())
	}
	return h.report(), nil
}

// appHost adapts the simulator to workload.AppHost and the hosted
// application to sim.App (+ sim.CtrlApp for the detector frames).
type appHost struct {
	rt   *Runtime
	app  workload.App
	opts workload.AppRunOptions
	dets []termdet.Protocol

	// busySince[r] is the virtual time rank r became Blocked, -1 when
	// it is not; busyTime accumulates the closed intervals.
	busySince []float64
	busyTime  float64

	// lastDone is the virtual time of the latest Compute completion;
	// termAt is the virtual time the detector first broadcast CtrlTerm
	// (-1 until it does). Their difference is the run's detection
	// latency: how long the cluster sat finished before the detector
	// noticed and said so.
	lastDone float64
	termAt   float64

	// busySid/idleSid are each rank's open snapshot.round and
	// termdet.idle trace spans (0 = none); the simulator is
	// single-threaded, so plain slices suffice.
	busySid []int64
	idleSid []int64
}

// ---- workload.AppHost ---------------------------------------------------

func (h *appHost) N() int                        { return len(h.rt.Procs) }
func (h *appHost) Local(rank int) bool           { return true }
func (h *appHost) Now() float64                  { return float64(h.rt.Now()) }
func (h *appHost) Context(rank int) core.Context { return appCtx{h, rank} }
func (h *appHost) Wake(rank int)                 { h.rt.Wake(rank) }

func (h *appHost) SendData(from, to int, m workload.DataMsg) {
	h.dets[from].OnSend(detCtx{h, from}, to)
	h.rt.Send(&Message{
		From: from, To: to, Channel: DataChannel,
		Kind: int(m.Kind), Payload: m, Bytes: m.Bytes,
	})
}

func (h *appHost) Compute(rank int, seconds float64, done func()) {
	h.rt.Compute(h.rt.Procs[rank], Duration(seconds*h.opts.SpeedOf(rank)), func() {
		h.lastDone = float64(h.rt.Now())
		done()
	})
}

// appCtx is one rank's core.Context: mechanism sends on the prioritized
// state channel, exactly as the pre-port solver wired them.
type appCtx struct {
	h    *appHost
	rank int
}

func (c appCtx) Rank() int    { return c.rank }
func (c appCtx) N() int       { return c.h.N() }
func (c appCtx) Now() float64 { return c.h.Now() }

func (c appCtx) Send(to int, kind int, payload any, bytes float64) {
	c.h.rt.Send(&Message{
		From: c.rank, To: to, Channel: StateChannel,
		Kind: kind, Payload: payload, Bytes: bytes,
	})
}

func (c appCtx) Broadcast(kind int, payload any, bytes float64) {
	c.h.rt.Broadcast(c.rank, Message{
		Channel: StateChannel, Kind: kind, Payload: payload, Bytes: bytes,
	})
}

// detCtx is one rank's termdet.Context: control frames travel the
// simulated CtrlChannel at their real modeled size.
type detCtx struct {
	h    *appHost
	rank int
}

func (c detCtx) Rank() int { return c.rank }
func (c detCtx) N() int    { return c.h.N() }

func (c detCtx) SendCtrl(to int, ct termdet.Ctrl) {
	if ct.Kind == termdet.CtrlTerm && c.h.termAt < 0 {
		c.h.termAt = float64(c.h.rt.Now())
	}
	c.h.rt.Send(&Message{
		From: c.rank, To: to, Channel: CtrlChannel,
		Kind: int(ct.Kind), Payload: ct, Bytes: core.BytesCtrl,
	})
}

// ---- sim.App ------------------------------------------------------------

func (h *appHost) HandleState(p *Proc, m *Message) {
	h.app.HandleState(p.ID, m.From, m.Kind, m.Payload)
	h.busyCheck(p.ID)
}

func (h *appHost) HandleData(p *Proc, m *Message) {
	h.endIdle(p.ID)
	h.dets[p.ID].OnReceive(detCtx{h, p.ID}, m.From)
	h.app.HandleData(p.ID, m.From, m.Payload.(workload.DataMsg))
}

// HandleCtrl implements sim.CtrlApp: detector control frames bypass the
// application entirely.
func (h *appHost) HandleCtrl(p *Proc, m *Message) {
	h.dets[p.ID].OnCtrl(detCtx{h, p.ID}, m.From, m.Payload.(termdet.Ctrl))
}

func (h *appHost) TryStart(p *Proc) bool {
	started := h.app.TryStart(p.ID)
	h.busyCheck(p.ID)
	if started {
		h.endIdle(p.ID)
	} else if !h.app.Blocked(p.ID) {
		// The loop is about to park with empty queues, no running task
		// and no startable work: this rank is passive (the detector
		// reactivates it on the next data-message receipt).
		if rec := h.opts.Rec; rec != nil && h.idleSid[p.ID] == 0 {
			h.idleSid[p.ID] = rec.SpanBegin(p.ID, "termdet.idle", h.Now())
		}
		h.dets[p.ID].Passive(detCtx{h, p.ID})
	}
	return started
}

// endIdle closes the rank's open termdet.idle span: the rank is active
// again (a data message arrived or a task started).
func (h *appHost) endIdle(r int) {
	if h.idleSid[r] != 0 {
		h.opts.Rec.SpanEnd(r, "termdet.idle", h.idleSid[r], h.Now())
		h.idleSid[r] = 0
	}
}

func (h *appHost) Blocked(p *Proc) bool { return h.app.Blocked(p.ID) }

// busyCheck accumulates Blocked (snapshot-participation) time across
// state transitions, in virtual seconds. It schedules no event, so it
// never perturbs the simulation.
func (h *appHost) busyCheck(r int) {
	blocked := h.app.Blocked(r)
	if blocked && h.busySince[r] < 0 {
		h.busySince[r] = float64(h.rt.Now())
		if rec := h.opts.Rec; rec != nil {
			h.busySid[r] = rec.SpanBegin(r, "snapshot.round", h.busySince[r])
		}
	} else if !blocked && h.busySince[r] >= 0 {
		h.busyTime += float64(h.rt.Now()) - h.busySince[r]
		h.busySince[r] = -1
		if rec := h.opts.Rec; rec != nil && h.busySid[r] != 0 {
			rec.SpanEnd(r, "snapshot.round", h.busySid[r], float64(h.rt.Now()))
			h.busySid[r] = 0
		}
	}
}

// report samples the network's exact per-kind tallies into the uniform
// counters, plus the engine and threading metrics only the simulator
// has.
func (h *appHost) report() *workload.AppReport {
	if rec := h.opts.Rec; rec != nil {
		// Balance any spans still open at quiescence.
		now := h.Now()
		for r := range h.idleSid {
			if h.idleSid[r] != 0 {
				rec.SpanEnd(r, "termdet.idle", h.idleSid[r], now)
				h.idleSid[r] = 0
			}
			if h.busySid[r] != 0 {
				rec.SpanEnd(r, "snapshot.round", h.busySid[r], now)
				h.busySid[r] = 0
			}
		}
	}
	rep := &workload.AppReport{
		Time:  float64(h.rt.Now()),
		Steps: h.rt.Eng.Steps(),
	}
	if h.termAt >= h.lastDone && h.termAt >= 0 {
		rep.DetectLatency = h.termAt - h.lastDone
	}
	for _, p := range h.rt.Procs {
		rep.PausedTime += float64(p.PausedTime())
	}
	c := &rep.Counters
	state := h.rt.Net.Count(StateChannel)
	data := h.rt.Net.Count(DataChannel)
	ctrl := h.rt.Net.Count(CtrlChannel)
	c.StateMsgs, c.StateBytes = state.Messages, state.Bytes
	c.DataMsgs, c.DataBytes = data.Messages, data.Bytes
	c.CtrlMsgs, c.CtrlBytes = ctrl.Messages, ctrl.Bytes
	c.BusyTime = h.busyTime
	for _, kind := range h.rt.Net.Kinds(StateChannel) {
		t := h.rt.Net.KindTally(StateChannel, kind)
		if c.PerKind == nil {
			c.PerKind = make(map[string]core.KindTally)
		}
		c.PerKind[core.KindName(kind)] = core.KindTally{Msgs: t.Messages, Bytes: t.Bytes}
	}
	return rep
}
