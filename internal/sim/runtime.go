package sim

import "fmt"

// App is the application executed by every process. The Runtime drives the
// main loop of the paper's Algorithm 1; the App supplies the three
// behaviours the loop dispatches to, plus the Blocked predicate that lets a
// load-exchange mechanism suspend a process (snapshot participation).
//
// Handlers run in event context and must not block; long-running work is
// expressed by calling Runtime.Compute.
type App interface {
	// HandleState treats one state-information message (Algorithm 1,
	// line 3): load updates, increments, snapshot protocol messages.
	HandleState(p *Proc, m *Message)
	// HandleData treats one other message (Algorithm 1, line 5): tasks,
	// contribution blocks.
	HandleData(p *Proc, m *Message)
	// TryStart attempts to start a new local ready task (Algorithm 1,
	// line 7), typically by calling Runtime.Compute, possibly after a
	// dynamic slave selection. It returns false if no task can start.
	TryStart(p *Proc) bool
	// Blocked reports whether the process must not treat data messages or
	// start tasks (it is participating in a snapshot, §3). State messages
	// are still delivered while blocked.
	Blocked(p *Proc) bool
}

// CtrlApp is the optional control-channel extension of App: hosts of
// the application port implement it to receive termination-detection
// control frames (internal/termdet), which are treated with the highest
// priority and bypass Blocked gating — a snapshot-blocked process still
// acknowledges and forwards. Apps that do not implement it never see
// CtrlChannel traffic.
type CtrlApp interface {
	// HandleCtrl treats one control frame.
	HandleCtrl(p *Proc, m *Message)
}

// Runtime owns the processes and drives the Algorithm 1 loop on each.
//
// Threading model: with Threaded=false a process treats no message while a
// task computes (the paper's base assumption, §1: "a process cannot treat a
// message and compute simultaneously"). With Threaded=true, a helper thread
// wakes every PollPeriod and treats all pending state-information messages;
// if the application becomes Blocked (snapshot started) the running task is
// paused and resumed when the application unblocks (§4.5).
type Runtime struct {
	Eng      *Engine
	Net      *Network
	Procs    []*Proc
	app      App
	ctrlApp  CtrlApp // non-nil when app implements CtrlApp
	Threaded bool
	// PollPeriod is the helper-thread sleep period (paper: 50 µs).
	PollPeriod Duration
	// PollCost is the overhead charged to a poll tick that treats at
	// least one message; it models lock acquisition around MPI calls.
	PollCost Duration
}

// NewRuntime creates a runtime with n processes running app.
func NewRuntime(eng *Engine, n int, cfg NetworkConfig, app App) *Runtime {
	rt := &Runtime{
		Eng:        eng,
		app:        app,
		PollPeriod: 50 * Microsecond,
	}
	rt.ctrlApp, _ = app.(CtrlApp)
	rt.Net = NewNetwork(eng, n, cfg, rt.arrive)
	rt.Procs = make([]*Proc, n)
	for i := range rt.Procs {
		p := &Proc{ID: i}
		// The engine callbacks of p are built once here: scheduling a
		// wake, poll tick or completion on the hot path reuses these
		// closures instead of allocating a capture per event.
		p.wakeFn = func() {
			p.wakePending = false
			rt.step(p)
		}
		p.pollFn = func() {
			p.pollPending = false
			rt.pollTick(p)
		}
		p.completeFn = func() { rt.completeTask(p) }
		rt.Procs[i] = p
	}
	return rt
}

// Start schedules the first main-loop iteration of every process at t=0.
func (rt *Runtime) Start() {
	for _, p := range rt.Procs {
		rt.wake(p)
	}
}

// Send transmits a message on behalf of the application.
func (rt *Runtime) Send(m *Message) { rt.Net.Send(m) }

// Broadcast sends template to every other rank.
func (rt *Runtime) Broadcast(from int, template Message) int {
	return rt.Net.Broadcast(from, template)
}

// Compute starts a task of the given duration on p; onDone runs at
// completion (in event context), after which the main loop resumes. It
// panics if p is already busy: the model is strictly one task at a time.
func (rt *Runtime) Compute(p *Proc, d Duration, onDone func()) {
	if p.busy {
		panic(fmt.Sprintf("sim: process %d started a task while busy", p.ID))
	}
	if d < 0 {
		panic("sim: negative compute duration")
	}
	p.busy = true
	p.paused = false
	p.state = Computing
	p.remaining = d
	p.startedAt = rt.Eng.Now()
	p.onDone = onDone
	p.completion = rt.Eng.After(d, p.completeFn)
}

func (rt *Runtime) completeTask(p *Proc) {
	p.computeTime += rt.Eng.Now() - p.startedAt
	p.busy = false
	p.paused = false
	p.state = Idle
	done := p.onDone
	p.onDone = nil
	if done != nil {
		done()
	}
	rt.step(p)
}

// pause suspends the running task of p (threaded model, snapshot started).
func (rt *Runtime) pause(p *Proc) {
	if !p.busy || p.paused {
		return
	}
	elapsed := rt.Eng.Now() - p.startedAt
	p.computeTime += elapsed
	p.remaining -= elapsed
	if p.remaining < 0 {
		p.remaining = 0
	}
	rt.Eng.Cancel(p.completion)
	p.paused = true
	p.pausedAtMark(rt.Eng.Now())
	p.state = Blocked
}

func (p *Proc) pausedAtMark(t Time) { p.idleSince = t }

// resume restarts a paused task.
func (rt *Runtime) resume(p *Proc) {
	if !p.busy || !p.paused {
		return
	}
	p.pausedTotal += rt.Eng.Now() - p.idleSince
	p.paused = false
	p.state = Computing
	p.startedAt = rt.Eng.Now()
	p.completion = rt.Eng.After(p.remaining, p.completeFn)
}

// arrive is the network delivery callback.
func (rt *Runtime) arrive(m *Message) {
	p := rt.Procs[m.To]
	switch m.Channel {
	case StateChannel:
		p.stateQ.push(m)
	case DataChannel:
		p.dataQ.push(m)
	case CtrlChannel:
		p.ctrlQ.push(m)
	}
	if rt.Threaded {
		// While a task computes, the helper thread treats state messages
		// (and detector control frames) at its next poll tick; when the
		// process is idle, paused or blocked it reacts immediately (a
		// blocking receive, not a sleep). Data messages always wait for
		// the main loop.
		if m.Channel == StateChannel || m.Channel == CtrlChannel {
			if p.busy && !p.paused {
				rt.schedulePoll(p)
			} else {
				rt.wake(p)
			}
		} else if !p.busy {
			rt.wake(p)
		}
		return
	}
	// Single-threaded model: nothing is treated while computing; the
	// completion callback will re-enter the loop.
	if p.state != Computing {
		rt.wake(p)
	}
}

// wake coalesces main-loop wakeups for p at the current instant.
func (rt *Runtime) wake(p *Proc) {
	if p.wakePending {
		return
	}
	p.wakePending = true
	rt.Eng.At(rt.Eng.Now(), p.wakeFn)
}

// schedulePoll arranges the next helper-thread tick for p. Ticks land on
// the global PollPeriod grid, modelling a thread that sleeps for the period
// between checks.
func (rt *Runtime) schedulePoll(p *Proc) {
	if p.pollPending {
		return
	}
	p.pollPending = true
	now := rt.Eng.Now()
	period := rt.PollPeriod
	if period <= 0 {
		period = 50 * Microsecond
	}
	// Next grid point strictly in the future (the thread is asleep now).
	k := Time(int64(now/period) + 1)
	tick := k * period
	rt.Eng.At(tick, p.pollFn)
}

// pollTick is one helper-thread iteration (§4.5 algorithm): treat every
// pending state message; block the compute thread if the application is now
// Blocked (a snapshot started); restart it when unblocked.
func (rt *Runtime) pollTick(p *Proc) {
	treated := false
	for rt.ctrlApp != nil {
		m := p.ctrlQ.pop()
		if m == nil {
			break
		}
		treated = true
		rt.ctrlApp.HandleCtrl(p, m)
	}
	for {
		m := p.stateQ.pop()
		if m == nil {
			break
		}
		treated = true
		rt.app.HandleState(p, m)
	}
	if treated && rt.PollCost > 0 {
		// Charge lock/poll overhead by delaying the block/unblock
		// decision; compute continues meanwhile, so this is a small
		// perturbation, intentionally mild.
		_ = treated
	}
	blocked := rt.app.Blocked(p)
	if p.busy {
		if blocked && !p.paused {
			rt.pause(p)
		} else if !blocked && p.paused {
			rt.resume(p)
		}
		return
	}
	// Not computing: let the main loop react (it may unblock, treat data,
	// start tasks).
	rt.wake(p)
}

// step runs the main loop of Algorithm 1 for p until it computes, blocks
// or has nothing to do.
func (rt *Runtime) step(p *Proc) {
	for {
		if p.busy && !p.paused {
			// Actively computing; the loop resumes at completion (or, in
			// the threaded model, state messages flow via poll ticks).
			return
		}
		// Priority 0: termination-detection control frames — exempt from
		// Blocked gating (a snapshot-blocked process still acknowledges
		// and forwards).
		if rt.ctrlApp != nil {
			if m := p.ctrlQ.pop(); m != nil {
				rt.ctrlApp.HandleCtrl(p, m)
				continue
			}
		}
		// Priority 1: state-information messages. In the threaded model
		// the helper thread owns that channel, but treating them here too
		// is harmless (the queue is shared) and models the main thread
		// noticing its own channel between tasks.
		if m := p.stateQ.pop(); m != nil {
			rt.app.HandleState(p, m)
			continue
		}
		if rt.app.Blocked(p) {
			p.state = Blocked
			return
		}
		if p.paused {
			// The snapshot that paused the task is over: resume it.
			rt.resume(p)
			return
		}
		p.state = Idle
		// Priority 2: other messages.
		if m := p.dataQ.pop(); m != nil {
			rt.app.HandleData(p, m)
			continue
		}
		// Priority 3: local ready tasks.
		if !rt.app.TryStart(p) {
			return
		}
	}
}

// Wake requests a main-loop iteration for rank r at the current time. The
// application uses it when an internal state change (not tied to a message)
// may enable progress, e.g. a task became ready locally.
func (rt *Runtime) Wake(r int) { rt.wake(rt.Procs[r]) }

// Now returns the current virtual time.
func (rt *Runtime) Now() Time { return rt.Eng.Now() }
