package net

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// This file is the net side of the application port (workload.App /
// workload.AppHost): hosting a real distributed application — the
// multifrontal solver — over the same TCP mesh, codec and peer loops
// the synthetic workloads use. Each rank is one Node whose main loop
// runs the application's Algorithm 1 instead of the built-in workload
// loop; state messages and application data messages (TypeData frames
// carrying workload.DataMsg) genuinely travel the sockets, while
// application callbacks are serialized by the binding's lock per the
// port's execution model. Application clusters are therefore hosted
// in-process (one mesh of localhost nodes), not forked.

// appMsg is one inbound application data-channel message.
type appMsg struct {
	from int
	m    workload.DataMsg
}

// appCompute is one deferred compute interval.
type appCompute struct {
	seconds float64
	done    func()
}

// appBinding is the hosting state shared by every node of one
// application cluster.
type appBinding struct {
	app   workload.App
	opts  workload.AppRunOptions
	scale float64

	// mu serializes every application callback across ranks.
	mu sync.Mutex
	// ready is closed once Attach ran; node loops park on it so the
	// application never sees a callback before its host is wired.
	ready chan struct{}

	// dataSent / dataDone track outstanding application data messages
	// cluster-wide: quiescence is Done() plus an empty data channel.
	dataSent, dataDone atomic.Int64
	doneCh             chan struct{}
	doneOnce           sync.Once
}

// checkQuiet closes doneCh once the application reports Done and every
// data message sent has been handled. Callers hold mu.
func (b *appBinding) checkQuiet() {
	if b.app.Done() && b.dataSent.Load() == b.dataDone.Load() {
		b.doneOnce.Do(func() { close(b.doneCh) })
	}
}

// runApp is the node main loop in app mode: the hosted application's
// Algorithm 1 — pending compute first (a task the application just
// started runs immediately), then the prioritized state channel,
// Blocked gating, application data messages, TryStart, and blocking
// when idle.
func (nd *Node) runApp() {
	defer close(nd.done)
	b := nd.appB
	select {
	case <-b.ready:
	case <-nd.quit:
		return
	}
	r := nd.rank
	for {
		select {
		case <-nd.quit:
			return
		default:
		}
		if p := nd.appPend; p != nil {
			nd.appPend = nil
			nd.appSleep(p.seconds)
			b.mu.Lock()
			p.done()
			b.checkQuiet()
			b.mu.Unlock()
			continue
		}
		// Priority 1: state-information messages.
		select {
		case m := <-nd.stateCh:
			nd.appHandleState(m)
			continue
		default:
		}
		b.mu.Lock()
		blocked := b.app.Blocked(r)
		b.mu.Unlock()
		if blocked {
			// Snapshot in progress: treat only state messages.
			select {
			case m := <-nd.stateCh:
				nd.appHandleState(m)
			case <-nd.quit:
				return
			}
			continue
		}
		// Priority 2: application data messages.
		select {
		case m := <-nd.appCh:
			nd.appHandleData(m)
			continue
		default:
		}
		// Priority 3: local ready tasks. TryStart can open a snapshot
		// (Acquire broadcast → Blocked), so the busy meter observes
		// here too — otherwise the request-to-first-reply interval
		// would be dropped from BusyTime (the simulator host meters
		// this transition as well).
		b.mu.Lock()
		started := b.app.TryStart(r)
		nd.busy.Observe(b.app.Blocked(r))
		b.mu.Unlock()
		if started {
			continue
		}
		select {
		case m := <-nd.stateCh:
			nd.appHandleState(m)
		case m := <-nd.appCh:
			nd.appHandleData(m)
		case <-nd.wakeCh:
		case <-nd.quit:
			return
		}
	}
}

// appHandleState treats one state-channel item in app mode. Control
// closures (Invoke: counter sampling) bypass the application.
func (nd *Node) appHandleState(m inMsg) {
	if m.ctl != nil {
		m.ctl()
		return
	}
	b := nd.appB
	b.mu.Lock()
	b.app.HandleState(nd.rank, m.from, m.kind, m.payload)
	nd.busy.Observe(b.app.Blocked(nd.rank))
	b.checkQuiet()
	b.mu.Unlock()
}

// appHandleData treats one application data message.
func (nd *Node) appHandleData(m appMsg) {
	b := nd.appB
	b.mu.Lock()
	b.app.HandleData(nd.rank, m.from, m.m)
	b.dataDone.Add(1)
	b.checkQuiet()
	b.mu.Unlock()
}

// appSleep spends one compute interval of wall clock, bounded by quit
// so shutdown is prompt.
func (nd *Node) appSleep(seconds float64) {
	d := time.Duration(seconds * nd.appB.scale * float64(time.Second))
	if d <= 0 {
		return
	}
	select {
	case <-time.After(d):
	case <-nd.quit:
	}
}

// netAppHost implements workload.AppHost over a mesh of nodes.
type netAppHost struct {
	b     *appBinding
	nodes []*Node
	start time.Time
}

func (h *netAppHost) N() int                        { return len(h.nodes) }
func (h *netAppHost) Now() float64                  { return time.Since(h.start).Seconds() }
func (h *netAppHost) Context(rank int) core.Context { return nodeCtx{h.nodes[rank]} }

func (h *netAppHost) SendData(from, to int, m workload.DataMsg) {
	nd := h.nodes[from]
	// The estimate tallies charge the application's modeled byte size;
	// the writer goroutine tallies the real encoded frame.
	nd.est.AddData(m.Bytes)
	h.b.dataSent.Add(1)
	if to == from {
		// Applications do not normally self-send; deliver locally.
		nd.appCh <- appMsg{from: from, m: m}
		return
	}
	nd.post(to, DataMessage(from, m))
}

func (h *netAppHost) Compute(rank int, seconds float64, done func()) {
	nd := h.nodes[rank]
	if nd.appPend != nil {
		panic(fmt.Sprintf("net: rank %d started a task while busy", rank))
	}
	nd.appPend = &appCompute{seconds: seconds * h.b.opts.SpeedOf(rank), done: done}
}

func (h *netAppHost) Wake(rank int) {
	select {
	case h.nodes[rank].wakeCh <- struct{}{}:
	default:
	}
}

// AppRunner implements workload.AppRunner over localhost TCP: the same
// mesh, codec and graceful-shutdown machinery as Cluster, with the node
// main loops running a hosted application. State and data tallies in
// the report are real encoded frame-body sizes counted at the writers.
type AppRunner struct {
	// Opts is the node option template (codec, timeouts, logging);
	// Initial and Speed are ignored — application state comes from the
	// App itself.
	Opts Options
	// TimeScale is the wall-clock duration of one application second of
	// compute (default 1).
	TimeScale float64
	// Timeout bounds the whole run (default 120s).
	Timeout time.Duration
}

// Runtime implements workload.AppRunner.
func (*AppRunner) Runtime() string { return "net" }

// RunApp implements workload.AppRunner.
func (r *AppRunner) RunApp(n int, app workload.App, opts workload.AppRunOptions) (*workload.AppReport, error) {
	scale := r.TimeScale
	if scale <= 0 {
		scale = 1
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	b := &appBinding{
		app:    app,
		opts:   opts,
		scale:  scale,
		ready:  make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	nodeOpts := r.Opts
	nodeOpts.Initial, nodeOpts.Speed = nil, nil

	nodes := make([]*Node, 0, n)
	stop := func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *Node) {
				defer wg.Done()
				nd.Close()
			}(nd)
		}
		wg.Wait()
	}
	addrs := make([]string, n)
	for rank := 0; rank < n; rank++ {
		// The node's own exchanger is unused in app mode (the
		// application owns its mechanisms); any registered mechanism
		// satisfies the constructor.
		nd, err := NewNode(rank, n, core.MechNaive, core.Config{}, nodeOpts)
		if err != nil {
			stop()
			return nil, err
		}
		nd.appB = b
		nodes = append(nodes, nd)
		if addrs[rank], err = nd.Listen("127.0.0.1:0"); err != nil {
			stop()
			return nil, err
		}
	}
	// Start the whole mesh concurrently: rank r's Start blocks until
	// every higher rank has dialed it.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = nodes[rank].Start(addrs)
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			stop()
			return nil, err
		}
	}

	host := &netAppHost{b: b, nodes: nodes, start: time.Now()}
	b.mu.Lock()
	err := app.Attach(host)
	if err == nil {
		b.checkQuiet()
	}
	b.mu.Unlock()
	if err != nil {
		stop()
		return nil, err
	}
	close(b.ready)

	var runErr error
	select {
	case <-b.doneCh:
	case <-time.After(timeout):
		// Diagnose from the atomics only: a wedged callback may hold
		// b.mu forever, and the timeout guard must still report.
		runErr = fmt.Errorf("net: application not quiescent after %s (data %d sent / %d handled)",
			timeout, b.dataSent.Load(), b.dataDone.Load())
	}
	// Sample the makespan at quiescence, before the mesh teardown
	// (graceful Close — writer flushes, FIN exchanges — can take as
	// long as a small run itself).
	elapsed := time.Since(host.start).Seconds()
	stop()

	rep := &workload.AppReport{Time: elapsed}
	for _, nd := range nodes {
		// Every goroutine is quiesced after Close: sample directly.
		rep.Counters.Merge(nd.sampleCounters())
		tr := nd.Transport()
		rep.WireMsgs += tr.MsgsIn
		rep.WireBytes += tr.BytesIn
	}
	return rep, runErr
}
