package service

// The client API: JSON request/response bodies in the same 4-byte
// length-prefixed frames the mesh speaks (net.WriteFrame / ReadFrame),
// one response per request, many requests per connection. `loadex
// serve` listens with Serve; `loadex submit` and `loadex job` talk
// through Client.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	xnet "repro/internal/net"
)

// API operations.
const (
	OpSubmit  = "submit"
	OpStatus  = "status"
	OpResult  = "result"
	OpCancel  = "cancel"
	OpMetrics = "metrics"
	OpTop     = "top"
)

// Request is one client API frame.
type Request struct {
	Op string `json:"op"`
	// ID addresses status/result/cancel.
	ID int32 `json:"id,omitempty"`
	// Spec is the submitted job (submit only).
	Spec *JobSpec `json:"spec,omitempty"`
	// TimeoutSec bounds a result wait server-side (0 = server default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// Response is one server API frame.
type Response struct {
	OK      bool       `json:"ok"`
	Err     string     `json:"err,omitempty"`
	ID      int32      `json:"id,omitempty"`
	Job     *JobStatus `json:"job,omitempty"`
	Metrics *Metrics   `json:"metrics,omitempty"`
	// Ranks is the per-rank telemetry snapshot (top only).
	Ranks []xnet.Telemetry `json:"ranks,omitempty"`
}

// Serve accepts API connections until the listener closes (Close the
// listener to stop; in-flight requests finish). It blocks, so run it
// in its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one client connection: frames in, frames out.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var buf []byte
	for {
		body, err := xnet.ReadFrame(br, buf)
		if err != nil {
			return // EOF or a broken client; nothing to answer
		}
		buf = body
		var req Request
		resp := Response{OK: true}
		if err := json.Unmarshal(body, &req); err != nil {
			resp = Response{Err: fmt.Sprintf("bad request frame: %v", err)}
		} else {
			resp = s.handle(req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := xnet.WriteFrame(bw, out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// handle dispatches one API request.
func (s *Server) handle(req Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	switch req.Op {
	case OpSubmit:
		if req.Spec == nil {
			return fail(fmt.Errorf("submit without a job spec"))
		}
		id, err := s.Submit(*req.Spec)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id}
	case OpStatus:
		st, err := s.Status(req.ID)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: req.ID, Job: &st}
	case OpResult:
		timeout := time.Duration(req.TimeoutSec * float64(time.Second))
		if timeout <= 0 {
			timeout = 2 * time.Minute
		}
		st, err := s.Result(req.ID, timeout)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: req.ID, Job: &st}
	case OpCancel:
		if err := s.Cancel(req.ID); err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: req.ID}
	case OpMetrics:
		m := s.Metrics()
		return Response{OK: true, Metrics: &m}
	case OpTop:
		return Response{OK: true, Ranks: s.Top()}
	}
	return fail(fmt.Errorf("unknown op %q", req.Op))
}

// Client is one API connection. Methods serialize on it, so a client is
// safe for concurrent use (each request owns the connection for its
// round trip).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	buf  []byte
}

// Dial connects to a serving `loadex serve` instance.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip performs one request/response exchange.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := json.Marshal(req)
	if err != nil {
		return Response{}, err
	}
	if err := xnet.WriteFrame(c.conn, body); err != nil {
		return Response{}, fmt.Errorf("service: send %s: %w", req.Op, err)
	}
	in, err := xnet.ReadFrame(c.br, c.buf)
	if err != nil {
		return Response{}, fmt.Errorf("service: read %s response: %w", req.Op, err)
	}
	c.buf = in
	var resp Response
	if err := json.Unmarshal(in, &resp); err != nil {
		return Response{}, fmt.Errorf("service: decode %s response: %w", req.Op, err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("service: %s: %s", req.Op, resp.Err)
	}
	return resp, nil
}

// Submit admits one job and returns its id.
func (c *Client) Submit(spec JobSpec) (int32, error) {
	resp, err := c.roundTrip(Request{Op: OpSubmit, Spec: &spec})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Status fetches the job's current state.
func (c *Client) Status(id int32) (*JobStatus, error) {
	resp, err := c.roundTrip(Request{Op: OpStatus, ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Result blocks (server-side, bounded by timeout) until the job is
// terminal and returns its final state.
func (c *Client) Result(id int32, timeout time.Duration) (*JobStatus, error) {
	resp, err := c.roundTrip(Request{Op: OpResult, ID: id, TimeoutSec: timeout.Seconds()})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Cancel requests job cancellation.
func (c *Client) Cancel(id int32) error {
	_, err := c.roundTrip(Request{Op: OpCancel, ID: id})
	return err
}

// Metrics fetches the service metrics.
func (c *Client) Metrics() (*Metrics, error) {
	resp, err := c.roundTrip(Request{Op: OpMetrics})
	if err != nil {
		return nil, err
	}
	return resp.Metrics, nil
}

// Top fetches the per-rank telemetry snapshot.
func (c *Client) Top() ([]xnet.Telemetry, error) {
	resp, err := c.roundTrip(Request{Op: OpTop})
	if err != nil {
		return nil, err
	}
	return resp.Ranks, nil
}
