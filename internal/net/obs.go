package net

import (
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
)

// Observability bridge: the node's existing atomic tallies register
// into an obs.Registry as sampled instruments (zero cost between
// scrapes), and the same atomics back the periodic Telemetry snapshot
// that `loadex top` and the forked-cluster TELE dashboard print.

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// RegisterObs registers this node's tallies into reg under its rank
// label. Every instrument is a sampled func over an existing atomic —
// the node's hot paths are untouched.
func (nd *Node) RegisterObs(reg *obs.Registry) {
	lbl := obs.L("rank", strconv.Itoa(nd.rank))
	stateTally := func(bytes bool) func() float64 {
		return func() float64 {
			var sum int64
			for k := core.KindUpdate; k <= core.KindMax; k++ {
				if bytes {
					sum += nd.stateKindBytes[k].Load()
				} else {
					sum += nd.stateKindMsgs[k].Load()
				}
			}
			return float64(sum)
		}
	}
	reg.CounterFunc("loadex_state_msgs_total", "state-channel messages sent", stateTally(false), lbl...)
	reg.CounterFunc("loadex_state_bytes_total", "state-channel bytes sent", stateTally(true), lbl...)
	reg.CounterFunc("loadex_data_msgs_total", "data-channel messages sent", func() float64 { return float64(nd.workMsgsOut.Load()) }, lbl...)
	reg.CounterFunc("loadex_data_bytes_total", "data-channel bytes sent", func() float64 { return float64(nd.workBytesOut.Load()) }, lbl...)
	reg.CounterFunc("loadex_ctrl_msgs_total", "control-channel messages sent", func() float64 { return float64(nd.ctrlMsgsOut.Load()) }, lbl...)
	reg.CounterFunc("loadex_ctrl_bytes_total", "control-channel bytes sent", func() float64 { return float64(nd.ctrlBytesOut.Load()) }, lbl...)
	reg.CounterFunc("loadex_decisions_total", "committed dynamic decisions", func() float64 { return float64(nd.decisions.Load()) }, lbl...)
	reg.CounterFunc("loadex_decision_latency_seconds_total", "summed acquire-to-decision latency", func() float64 { return floatFromBits(nd.decLatencyBits.Load()) }, lbl...)
	reg.CounterFunc("loadex_busy_seconds_total", "exchanger-busy wall-clock time", func() float64 { return floatFromBits(nd.busySecBits.Load()) }, lbl...)
	reg.CounterFunc("loadex_executed_total", "work items completed", func() float64 { return float64(nd.executed.Load()) }, lbl...)
	reg.CounterFunc("loadex_frames_in_total", "wire frames received", func() float64 { return float64(nd.msgsIn.Load()) }, lbl...)
	reg.CounterFunc("loadex_frames_out_total", "wire frames sent", func() float64 { return float64(nd.msgsOut.Load()) }, lbl...)
	reg.CounterFunc("loadex_wire_bytes_in_total", "wire bytes received", func() float64 { return float64(nd.bytesIn.Load()) }, lbl...)
	reg.CounterFunc("loadex_wire_bytes_out_total", "wire bytes sent", func() float64 { return float64(nd.bytesOut.Load()) }, lbl...)
	reg.GaugeFunc("loadex_links_up", "peer links currently connected", func() float64 { return float64(nd.Links()) }, lbl...)
}

// Health reports this node's /healthz document: identity, peer link
// states, and — when the node hosts an application rank — the
// termination detector's phase.
func (nd *Node) Health() obs.Health {
	h := obs.Health{Rank: nd.rank, Procs: nd.n, Mech: string(nd.mech)}
	for r, p := range nd.peers {
		if r == nd.rank || !nd.edge(r) {
			continue
		}
		state := "down"
		if p != nil {
			state = "up"
		}
		h.Links = append(h.Links, obs.Link{Peer: r, State: state})
	}
	// The detector is owned by the node goroutine; sample it there.
	// On a stopped node Invoke returns without running fn — the
	// zero detector phase is correct then too.
	if nd.appDet != nil {
		nd.Invoke(func(core.Context, core.Exchanger) {
			h.Detector = nd.appDet.Name()
			h.Terminated = nd.appDet.Terminated()
		})
	}
	return h
}

// Telemetry is one rank's periodic snapshot line: everything `loadex
// top` prints per rank. All fields come from atomics, so sampling is
// safe from any goroutine at any time.
type Telemetry struct {
	Rank             int     `json:"rank"`
	Links            int     `json:"links"`
	Executed         int64   `json:"executed"`
	Decisions        int64   `json:"decisions"`
	DecisionLatencyS float64 `json:"decision_latency_s"`
	BusyS            float64 `json:"busy_s"`
	MsgsIn           int64   `json:"msgs_in"`
	MsgsOut          int64   `json:"msgs_out"`
	BytesIn          int64   `json:"bytes_in"`
	BytesOut         int64   `json:"bytes_out"`
	UptimeS          float64 `json:"uptime_s"`
}

// Telemetry samples the node's atomic tallies.
func (nd *Node) Telemetry() Telemetry {
	return Telemetry{
		Rank:             nd.rank,
		Links:            nd.Links(),
		Executed:         nd.executed.Load(),
		Decisions:        nd.decisions.Load(),
		DecisionLatencyS: floatFromBits(nd.decLatencyBits.Load()),
		BusyS:            floatFromBits(nd.busySecBits.Load()),
		MsgsIn:           nd.msgsIn.Load(),
		MsgsOut:          nd.msgsOut.Load(),
		BytesIn:          nd.bytesIn.Load(),
		BytesOut:         nd.bytesOut.Load(),
		UptimeS:          nodeCtx{nd}.Now(),
	}
}
