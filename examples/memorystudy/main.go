// Memorystudy reproduces a slice of the paper's Table 4 on one matrix:
// the peak of active memory reached by the memory-based dynamic
// scheduling strategy under each load-exchange mechanism, on the
// multifrontal solver.
//
// The solver is transport-neutral (it targets the application port,
// workload.AppHost), so the same study runs on any runtime: pass `sim`
// (deterministic simulator, the default and the paper's reference),
// `live` (goroutines) or `net` (localhost TCP sockets) as the third
// argument.
//
//	go run ./examples/memorystudy [matrix] [procs] [sim|live|net]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

func main() {
	name := "ULTRASOUND3"
	procs := 32
	runtime := "sim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		p, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad processor count %q", os.Args[2])
		}
		procs = p
	}
	if len(os.Args) > 3 {
		runtime = os.Args[3]
	}
	runner, err := experiments.AppRunnerFor(runtime, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	lab := experiments.NewLab(experiments.DefaultConfig())
	fmt.Printf("memory-based scheduling on %s over %d processes (%s runtime)\n", name, procs, runtime)
	fmt.Printf("%-12s %16s %14s %12s\n", "mechanism", "peak(10^6 entr.)", "time(s)", "state msgs")
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		res, err := lab.RunOneOn(name, procs, mech, sched.Memory(), runner, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %16.3f %14.2f %12d\n",
			mech, res.MaxPeakMem/1e6, res.Time, res.StateMsgs)
	}
	fmt.Println("\nthe naive mechanism's stale views generally give the worst peak (§4.4)")
}
