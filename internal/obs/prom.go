package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteProm renders gathered samples in the Prometheus text exposition
// format (version 0.0.4). Histograms render as summaries: one
// quantile series per p50/p95/p99 plus _sum and _count. HELP/TYPE
// headers emit once per metric name, before its first sample.
func WriteProm(w io.Writer, samples []Sample) error {
	headered := map[string]bool{}
	for _, s := range samples {
		if !headered[s.Name] {
			headered[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, promType(s.Kind))
		}
		if s.Kind == KindHistogram {
			if s.Hist == nil {
				continue
			}
			for _, q := range []struct {
				p float64
				s string
			}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
				ls := append(append([]Label(nil), s.Labels...), Label{"quantile", q.s})
				fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(ls), promFloat(s.Hist.Quantile(q.p)))
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Hist.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Hist.Count())
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func promType(k Kind) string {
	if k == KindHistogram {
		return "summary"
	}
	return string(k)
}

func promLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	// Integral values print without exponent noise; counters stay
	// readable in scrapes and tests.
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
