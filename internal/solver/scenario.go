package solver

// The solver as first-class workload scenarios: `solver-wl` drives the
// workload-based strategy (§4.2.2) and `solver-mem` the memory-based
// one (§4.2.1) over a generated elimination tree, so `loadex run` and
// `loadex experiment` sweep the paper's real application across the
// scenario × mechanism × runtime matrix exactly like the synthetic
// load programs. The problem is a deterministic 3D grid sized from the
// cluster (larger grid at 16+ processes); the static mapping is rebuilt
// per run (it sets node types in place) from a cached symbolic
// analysis.
//
// Scenario parameters: only Procs is honored — masters, decisions,
// work and slaves are determined by the assembly tree, and the
// -threshold flag (synthetic work units) is replaced by the threshold
// derived from the tree's task granularity (§2.3). The No_more_master
// switch applies as given.

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
	"repro/internal/workload"
)

// appScenario implements workload.AppScenario for one strategy.
type appScenario struct {
	name     string
	describe string
	strat    func() *sched.Strategy
	// speed, when set, derives the per-rank execution-speed factors for
	// a cluster size (heterogeneous scenarios; nil = homogeneous).
	speed func(procs int) []float64

	mu    sync.Mutex
	cache map[string]*symbolic.Analysis
}

// Name implements workload.Workload.
func (s *appScenario) Name() string { return s.name }

// Describe implements workload.Workload.
func (s *appScenario) Describe() string { return s.describe }

// Programs implements workload.Workload: application scenarios have no
// per-rank program form.
func (s *appScenario) Programs(workload.Params) ([]workload.Program, error) {
	return workload.AppPrograms(s.name)
}

// gridFor sizes the generated 3D problem from the cluster: enough tree
// above the subtree layer for a healthy number of Type 2 decisions,
// small enough that a cell stays fast on every runtime. The 1024/4096
// tiers exist for the engine-throughput scale runs: at those ranks the
// smaller grids leave most of the cluster idle, while these keep a few
// hundred Type 2 decisions in flight and still complete in seconds on
// the pooled/batched simulator.
func gridFor(procs int) int {
	switch {
	case procs >= 4096:
		return 14
	case procs >= 1024:
		return 12
	case procs >= 16:
		return 10
	}
	return 8
}

// analysis returns the (cached) symbolic analysis of the grid problem.
// The analysis is read-only; trees and mappings are rebuilt per run.
func (s *appScenario) analysis(nx int) (*symbolic.Analysis, error) {
	key := fmt.Sprintf("grid%d", nx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.cache[key]; ok {
		return a, nil
	}
	p, _ := sparse.Grid3D(nx, nx, nx, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if s.cache == nil {
		s.cache = map[string]*symbolic.Analysis{}
	}
	s.cache[key] = a
	return a, nil
}

// NewApp implements workload.AppScenario.
func (s *appScenario) NewApp(mech core.Mech, cfg core.Config, p workload.Params) (workload.App, workload.AppRunOptions, error) {
	p.Normalize()
	if err := p.Validate(); err != nil {
		return nil, workload.AppRunOptions{}, err
	}
	a, err := s.analysis(gridFor(p.Procs))
	if err != nil {
		return nil, workload.AppRunOptions{}, err
	}
	tr := tree.Split(tree.Build(a), tree.DefaultSplit())
	m, err := mapping.Map(tr, mapping.DefaultConfig(p.Procs))
	if err != nil {
		return nil, workload.AppRunOptions{}, err
	}
	prm := DefaultParams(mech, s.strat())
	// cfg.Threshold is in synthetic work units; the solver's threshold
	// is derived from the tree instead (prepare fills it). Only the
	// No_more_master optimization carries over.
	prm.MechConfig.NoMoreMasterOpt = cfg.NoMoreMasterOpt
	app, err := prepare(m, prm)
	if err != nil {
		return nil, workload.AppRunOptions{}, err
	}
	opts := prm.runOptions()
	if s.speed != nil {
		opts.Speed = s.speed(p.Procs)
	}
	return app, opts, nil
}

// heteroSpeed is solver-hetero's deterministic speed gradient: rank 0
// runs at nominal speed and the last rank is 1.75× slower, modeling a
// cluster of mixed generations. The port's hosts scale every Compute
// interval by the executing rank's factor, so the dynamic decisions
// see genuinely skewed progress.
func heteroSpeed(procs int) []float64 {
	speed := make([]float64, procs)
	for r := range speed {
		speed[r] = 1 + 0.75*float64(r)/float64(max(procs-1, 1))
	}
	return speed
}

func init() {
	workload.Register(&appScenario{
		name:     "solver-wl",
		describe: "the paper's multifrontal solver under the workload-based strategy (§4.2.2) on a generated elimination tree",
		strat:    sched.Workload,
	})
	workload.Register(&appScenario{
		name:     "solver-mem",
		describe: "the paper's multifrontal solver under the memory-based strategy (§4.2.1) on a generated elimination tree",
		strat:    sched.Memory,
	})
	workload.Register(&appScenario{
		name:     "solver-hetero",
		describe: "the workload-based solver on a heterogeneous cluster: per-rank speed factors ramp to 1.75× slower, exercising the port's speed-factor carriage",
		strat:    sched.Workload,
		speed:    heteroSpeed,
	})
}
