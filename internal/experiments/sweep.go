package experiments

// The scenario × mechanism × runtime sweep behind `loadex experiment`:
// run any subset of the matrix, repeat each cell, aggregate every
// measurement the runtimes' counters expose (messages sent, volume
// exchanged, time spent acquiring coherent views — the paper's table
// axes) with the stats toolkit, and emit both paper-shaped markdown
// tables (mechanism rows, per-metric columns) and a machine-readable
// benchmark record for the perf trajectory.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Cell is one scenario × mechanism × runtime (× termination protocol ×
// chaos plan) coordinate of the matrix. Term is set only for
// application-scenario cells — program scenarios quiesce through their
// own Done announcements, so a protocol axis would just repeat
// identical runs. Chaos names the fault-injection plan (empty or
// "none" = fault-free); the live runtime only supports it for
// application scenarios, so live program cells carry an empty Chaos.
type Cell struct {
	Scenario string `json:"scenario"`
	Mech     string `json:"mech"`
	Runtime  string `json:"runtime"`
	Term     string `json:"term,omitempty"`
	Chaos    string `json:"chaos,omitempty"`
	// Topo names the neighbor topology state messages travel (empty =
	// the complete graph, the paper's implicit all-to-all mesh).
	Topo string `json:"topo,omitempty"`
}

// String names the cell the way error messages and logs refer to it.
func (c Cell) String() string {
	s := c.Scenario + " × " + c.Mech + " × " + c.Runtime
	if c.Term != "" {
		s += " × " + c.Term
	}
	if c.Chaos != "" {
		s += " × chaos:" + c.Chaos
	}
	if c.Topo != "" {
		s += " × topo:" + c.Topo
	}
	return s
}

// Cells expands the scenario, mechanism, runtime, termination protocol,
// chaos-plan and topology axes into the cell list of their cross
// product, in table order (scenario-major, mechanisms in paper order).
// The protocol axis applies only to application scenarios and the chaos
// axis skips live program cells (the live runtime injects faults
// through the application host only); application scenarios keep only
// the full topology (their solvers address arbitrary ranks).
// Inapplicable axes collapse to one cell with the field empty. Passing
// no terms, plans or topos (or only "") yields the plain matrix.
func Cells(scenarios []string, mechs []core.Mech, runtimes []string, terms, plans, topos []string) []Cell {
	if len(terms) == 0 {
		terms = []string{""}
	}
	if len(plans) == 0 {
		plans = []string{""}
	}
	if len(topos) == 0 {
		topos = []string{""}
	}
	var cells []Cell
	for _, s := range scenarios {
		ts := terms
		if !workload.IsAppScenario(s) {
			ts = []string{""}
		}
		tps := topos
		if workload.IsAppScenario(s) {
			tps = fullOnly(topos)
		}
		for _, m := range mechs {
			for _, r := range runtimes {
				ps := plans
				if r == "live" && !workload.IsAppScenario(s) {
					ps = []string{""}
				}
				for _, tm := range ts {
					for _, pl := range ps {
						for _, tp := range tps {
							cells = append(cells, Cell{Scenario: s, Mech: string(m), Runtime: r, Term: tm, Chaos: pl, Topo: tp})
						}
					}
				}
			}
		}
	}
	return cells
}

// fullOnly collapses a topology axis for scenarios that only run on the
// complete graph: keep the full/default entries, or one empty entry if
// the sweep named only sparse graphs (the scenario still runs once).
func fullOnly(topos []string) []string {
	var kept []string
	for _, tp := range topos {
		if tp == "" || tp == string(core.TopoFull) {
			kept = append(kept, tp)
		}
	}
	if len(kept) == 0 {
		kept = []string{""}
	}
	return kept
}

// CellRunner executes one repetition of one cell.
type CellRunner func(Cell) (*workload.Report, error)

// CellResult aggregates the repeated runs of one cell: one summary per
// metric over the per-run totals.
type CellResult struct {
	Cell
	Procs   int                      `json:"procs"`
	Repeats int                      `json:"repeats"`
	Metrics map[string]stats.Summary `json:"metrics"`
}

// Metric returns the summary for a named metric (zero Summary when the
// metric was not recorded).
func (r CellResult) Metric(name string) stats.Summary { return r.Metrics[name] }

// CellError is one failed cell of a sweep.
type CellError struct {
	Cell
	Err error
}

func (e CellError) Error() string { return e.Cell.String() + ": " + e.Err.Error() }

// The headline metric names, in report order. Per-kind breakdowns are
// additionally recorded as "msgs[<kind>]" and "bytes[<kind>]".
const (
	MetricDecisions       = "decisions"
	MetricExecuted        = "executed"
	MetricStateMsgs       = "state_msgs"
	MetricStateBytes      = "state_bytes"
	MetricDataMsgs        = "data_msgs"
	MetricDataBytes       = "data_bytes"
	MetricCtrlMsgs        = "ctrl_msgs"
	MetricCtrlBytes       = "ctrl_bytes"
	MetricUpdates         = "updates_sent"
	MetricReservations    = "reservations_sent"
	MetricSnapshots       = "snapshots_initiated"
	MetricRestarts        = "snapshot_restarts"
	MetricSnapshotRounds  = "snapshot_rounds"
	MetricSnapshotTime    = "snapshot_time_s"
	MetricDecisionLatency = "decision_latency_s"
	MetricBusyTime        = "busy_time_s"
	MetricWireMsgs        = "wire_msgs"
	MetricWireBytes       = "wire_bytes"
	MetricElapsed         = "elapsed_s"
	// MetricEventsPerSec is the simulator's fired-event throughput
	// (engine events / wall-clock elapsed; sim cells only).
	MetricEventsPerSec = "events_per_sec"
	// MetricFramesPerSec is the transport's inbound frame throughput
	// (wire messages / wall-clock elapsed; net cells only).
	MetricFramesPerSec = "frames_per_sec"
	// MetricDetectLatency is the gap between the last work completion
	// and the termination detector's broadcast, in application seconds —
	// the per-protocol cost of noticing a finished cluster.
	MetricDetectLatency = "detect_latency_s"
)

// MetricNames lists the headline metrics in report order.
func MetricNames() []string {
	return []string{
		MetricDecisions, MetricExecuted,
		MetricStateMsgs, MetricStateBytes, MetricDataMsgs, MetricDataBytes,
		MetricCtrlMsgs, MetricCtrlBytes,
		MetricUpdates, MetricReservations,
		MetricSnapshots, MetricRestarts, MetricSnapshotRounds, MetricSnapshotTime,
		MetricDecisionLatency, MetricBusyTime,
		MetricWireMsgs, MetricWireBytes, MetricElapsed,
		MetricEventsPerSec, MetricFramesPerSec, MetricDetectLatency,
	}
}

// metricsOf flattens one report into named samples.
func metricsOf(rep *workload.Report) map[string]float64 {
	st := rep.TotalStats()
	c := rep.Counters
	m := map[string]float64{
		MetricDecisions:       float64(rep.DecisionsTaken),
		MetricExecuted:        float64(rep.TotalExecuted()),
		MetricStateMsgs:       float64(c.StateMsgs),
		MetricStateBytes:      c.StateBytes,
		MetricDataMsgs:        float64(c.DataMsgs),
		MetricDataBytes:       c.DataBytes,
		MetricCtrlMsgs:        float64(c.CtrlMsgs),
		MetricCtrlBytes:       c.CtrlBytes,
		MetricUpdates:         float64(st.UpdatesSent),
		MetricReservations:    float64(st.ReservationsSent),
		MetricSnapshots:       float64(st.SnapshotsInitiated),
		MetricRestarts:        float64(st.SnapshotRestarts),
		MetricSnapshotRounds:  float64(c.SnapshotRounds),
		MetricSnapshotTime:    st.SnapshotTime,
		MetricDecisionLatency: c.DecisionLatency,
		MetricBusyTime:        c.BusyTime,
		MetricWireMsgs:        float64(rep.WireMsgs),
		MetricWireBytes:       float64(rep.WireBytes),
		MetricElapsed:         rep.Elapsed.Seconds(),
		MetricDetectLatency:   rep.DetectLatency,
	}
	if el := rep.Elapsed.Seconds(); el > 0 {
		if rep.SimEvents > 0 {
			m[MetricEventsPerSec] = float64(rep.SimEvents) / el
		}
		if rep.WireMsgs > 0 {
			m[MetricFramesPerSec] = float64(rep.WireMsgs) / el
		}
	}
	for kind, t := range c.PerKind {
		m["msgs["+kind+"]"] = float64(t.Msgs)
		m["bytes["+kind+"]"] = t.Bytes
	}
	return m
}

// Aggregate summarizes the repeated reports of one cell. A metric
// absent from some runs (a per-kind tally for a kind that run never
// sent) counts as zero there, not as a missing sample — otherwise an
// intermittent kind's mean would be inflated by only averaging over the
// runs that sent it.
func Aggregate(cell Cell, reps []*workload.Report) CellResult {
	res := CellResult{Cell: cell, Repeats: len(reps), Metrics: map[string]stats.Summary{}}
	perRun := make([]map[string]float64, len(reps))
	names := map[string]bool{}
	for i, rep := range reps {
		res.Procs = rep.Procs
		perRun[i] = metricsOf(rep)
		for name := range perRun[i] {
			names[name] = true
		}
	}
	for name := range names {
		xs := make([]float64, len(reps))
		for i := range reps {
			xs[i] = perRun[i][name] // zero when this run lacks the metric
		}
		res.Metrics[name] = stats.Summarize(xs)
	}
	return res
}

// Sweep runs every cell repeat times through run and aggregates per
// cell. Cells that fail (on any repetition) are skipped in the results
// and reported in failed — the sweep always visits every cell, so one
// broken cell cannot hide the state of the rest of the matrix.
func Sweep(cells []Cell, repeat int, run CellRunner, progress func(Cell, int)) (results []CellResult, failed []CellError) {
	if repeat < 1 {
		repeat = 1
	}
	for _, cell := range cells {
		var reps []*workload.Report
		var cellErr error
		for i := 0; i < repeat; i++ {
			if progress != nil {
				progress(cell, i)
			}
			rep, err := run(cell)
			if err != nil {
				cellErr = err
				break
			}
			reps = append(reps, rep)
		}
		if cellErr != nil {
			failed = append(failed, CellError{Cell: cell, Err: cellErr})
			continue
		}
		results = append(results, Aggregate(cell, reps))
	}
	return results, failed
}

// Bench is the machine-readable record of one sweep — the benchmark
// trajectory format CI uploads so successive PRs can be compared.
type Bench struct {
	// Label identifies the sweep (e.g. "pr3").
	Label   string          `json:"label"`
	Repeat  int             `json:"repeat"`
	Params  workload.Params `json:"params"`
	Cells   []CellResult    `json:"cells"`
	Failed  []string        `json:"failed,omitempty"`
	Version int             `json:"version"`
}

// BenchVersion is the current Bench schema version.
const BenchVersion = 1

// WriteBenchJSON writes the sweep record as indented JSON.
func WriteBenchJSON(w io.Writer, b Bench) error {
	b.Version = BenchVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBenchJSON parses a sweep record.
func ReadBenchJSON(r io.Reader) (Bench, error) {
	var b Bench
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return Bench{}, err
	}
	return b, nil
}

// markdownColumns are the paper-shaped table columns: the three
// quantities the paper compares mechanisms by (messages, volume, time
// to a coherent view) plus the mechanism-specific counts that explain
// them.
var markdownColumns = []struct{ header, metric string }{
	{"decisions", MetricDecisions},
	{"state msgs", MetricStateMsgs},
	{"state bytes", MetricStateBytes},
	{"ctrl msgs", MetricCtrlMsgs},
	{"updates", MetricUpdates},
	{"reservations", MetricReservations},
	{"snp rounds", MetricSnapshotRounds},
	{"acquire latency (s)", MetricDecisionLatency},
	{"busy (s)", MetricBusyTime},
	{"events/s", MetricEventsPerSec},
	{"frames/s", MetricFramesPerSec},
	{"detect (s)", MetricDetectLatency},
}

// WriteSweepMarkdown writes one paper-shaped table per scenario ×
// runtime group: mechanism rows in the order the paper's tables use,
// per-metric columns, mean over the repeats (with min–max when the runs
// disagree).
func WriteSweepMarkdown(w io.Writer, results []CellResult) {
	type group struct{ scenario, runtime string }
	groups := []group{}
	byGroup := map[group][]CellResult{}
	for _, res := range results {
		g := group{res.Scenario, res.Runtime}
		if _, ok := byGroup[g]; !ok {
			groups = append(groups, g)
		}
		byGroup[g] = append(byGroup[g], res)
	}
	for _, g := range groups {
		cells := byGroup[g]
		sort.SliceStable(cells, func(i, j int) bool {
			if a, b := mechOrder(cells[i].Mech), mechOrder(cells[j].Mech); a != b {
				return a < b
			}
			if cells[i].Term != cells[j].Term {
				return cells[i].Term < cells[j].Term
			}
			if cells[i].Chaos != cells[j].Chaos {
				return cells[i].Chaos < cells[j].Chaos
			}
			return topoOrder(cells[i].Topo) < topoOrder(cells[j].Topo)
		})
		fmt.Fprintf(w, "### %s — %s runtime (%d procs, %d run(s) per cell)\n\n",
			g.scenario, g.runtime, cells[0].Procs, cells[0].Repeats)
		headers := make([]string, 0, len(markdownColumns)+1)
		headers = append(headers, "mechanism")
		for _, col := range markdownColumns {
			headers = append(headers, col.header)
		}
		fmt.Fprintln(w, "| "+strings.Join(headers, " | ")+" |")
		fmt.Fprintln(w, "|"+strings.Repeat("---|", len(headers)))
		for _, res := range cells {
			label := res.Mech
			if res.Term != "" {
				label += " × " + res.Term
			}
			if res.Chaos != "" {
				label += " × " + res.Chaos
			}
			if res.Topo != "" {
				label += " × " + res.Topo
			}
			row := []string{label}
			for _, col := range markdownColumns {
				row = append(row, formatSummary(res.Metrics[col.metric]))
			}
			fmt.Fprintln(w, "| "+strings.Join(row, " | ")+" |")
		}
		fmt.Fprintln(w)
	}
}

// mechOrder ranks mechanisms in the paper's table order, with the
// dissemination tenants after the paper's three.
func mechOrder(mech string) int {
	for i, m := range core.AllMechanisms() {
		if string(m) == mech {
			return i
		}
	}
	return len(core.AllMechanisms())
}

// topoOrder ranks topologies densest-first: the full graph (the
// paper's baseline) leads, then the registered sparse graphs in
// registry order, then ad-hoc names.
func topoOrder(topo string) int {
	if topo == "" || topo == string(core.TopoFull) {
		return 0
	}
	for i, name := range core.TopologyNames() {
		if name == topo {
			return i + 1
		}
	}
	return len(core.TopologyNames()) + 1
}

// formatSummary renders a metric summary compactly: the mean, plus the
// min–max spread when the repeated runs disagree.
func formatSummary(s stats.Summary) string {
	if s.N == 0 {
		return "-"
	}
	if s.Min == s.Max {
		return formatValue(s.Mean)
	}
	return fmt.Sprintf("%s (%s–%s)", formatValue(s.Mean), formatValue(s.Min), formatValue(s.Max))
}

// formatValue renders a number without trailing noise: integers
// verbatim, small reals with enough precision to compare runs.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
