package service

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestConcurrentAdmissionIsolation is the race-lane check for the
// multiplexed mesh: N jobs submitted simultaneously share the resident
// mesh, and each must keep an isolated detector instance and
// non-interfering counters. Isolation is asserted through the
// Dijkstra–Scholten identity — every data message of a job is
// acknowledged within that job's control stream, plus one initial
// detach ack and one termination announcement per non-root rank, so
// CtrlMsgs == DataMsgs + 2(n-1) holds PER JOB. A single frame delivered
// across jobs (data or ctrl) breaks the identity on both jobs.
func TestConcurrentAdmissionIsolation(t *testing.T) {
	const (
		procs = 4
		jobs  = 8
	)
	s, err := New(Config{Procs: procs, Mech: core.MechIncrements, MaxConcurrent: jobs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	statuses := make([]JobStatus, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.Submit(JobSpec{Decisions: 3, Work: 90, Slaves: 2, Masters: 3})
			if err != nil {
				errs[i] = err
				return
			}
			statuses[i], errs[i] = s.Result(id, time.Minute)
		}(i)
	}
	wg.Wait()

	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		st := statuses[i]
		if st.State != StateDone {
			t.Fatalf("job %d state %s: %s", i, st.State, st.Err)
		}
		// 3 decisions x 2 slaves, no self-sends (the planner excludes
		// the master): exactly 6 shares executed, 6 data messages.
		if st.Executed != 6 {
			t.Errorf("job %d executed %d, want 6 (cross-job delivery?)", i, st.Executed)
		}
		if st.Counters.DataMsgs != 6 {
			t.Errorf("job %d data msgs %d, want 6", i, st.Counters.DataMsgs)
		}
		if want := st.Counters.DataMsgs + 2*(procs-1); st.Counters.CtrlMsgs != want {
			t.Errorf("job %d DS identity broken: ctrl %d, data %d + 2(n-1) = %d",
				i, st.Counters.CtrlMsgs, st.Counters.DataMsgs, want)
		}
		if st.Counters.Decisions != 3 {
			t.Errorf("job %d decisions %d, want 3", i, st.Counters.Decisions)
		}
	}
}
