package main

// Observability wiring shared by the loadex subcommands: the per-node
// HTTP endpoint (-obs) and the periodic TELE telemetry line (-tele)
// that `loadex cluster` renders as a live per-rank dashboard.

import (
	"encoding/json"
	"fmt"
	"time"

	xnet "repro/internal/net"
	"repro/internal/obs"
)

// startNodeObs starts the node's observability surfaces per the flags:
// an HTTP endpoint serving Prometheus /metrics, /healthz and
// /debug/pprof (printing an `OBS <addr>` handshake line so parents and
// scripts learn the bound port), and a ticker printing `TELE <json>`
// lines from the node's telemetry snapshot. The returned stop function
// tears both down; it is safe to call when neither flag is set.
func startNodeObs(nd *xnet.Node, p *nodeParams) (func(), error) {
	stop := func() {}
	if p.obsAddr != "" {
		reg := obs.NewRegistry()
		nd.RegisterObs(reg)
		srv, err := obs.ServeHTTP(p.obsAddr, reg.Gather, nd.Health)
		if err != nil {
			return nil, err
		}
		fmt.Printf("OBS %s\n", srv.Addr())
		stop = func() { srv.Close() }
	}
	if p.tele > 0 {
		done := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			tick := time.NewTicker(p.tele)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					emitTele(nd)
				}
			}
		}()
		prev := stop
		stop = func() {
			close(done)
			<-exited
			prev()
		}
	}
	return stop, nil
}

// emitTele prints one TELE line: the node's telemetry snapshot as JSON
// on stdout, where the cluster parent's reader picks it up alongside
// the ADDR/STATS handshake lines.
func emitTele(nd *xnet.Node) {
	b, err := json.Marshal(nd.Telemetry())
	if err != nil {
		return
	}
	fmt.Printf("TELE %s\n", b)
}

// printTele renders one forked rank's TELE payload as a dashboard line
// on the cluster parent's stdout. A payload that does not decode (a
// newer node build, say) passes through raw rather than vanishing.
func printTele(rank int, payload string) {
	var t xnet.Telemetry
	if err := json.Unmarshal([]byte(payload), &t); err != nil {
		fmt.Printf("TELE rank=%d %s\n", rank, payload)
		return
	}
	fmt.Printf("TELE rank=%d up=%.1fs links=%d executed=%d decisions=%d busy=%.3fs msgs=%d/%d bytes=%d/%d\n",
		t.Rank, t.UptimeS, t.Links, t.Executed, t.Decisions, t.BusyS,
		t.MsgsIn, t.MsgsOut, t.BytesIn, t.BytesOut)
}
