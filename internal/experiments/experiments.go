// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.3-4.5): workload construction, parameter choices, runs
// and formatted output, with the paper's reported values alongside for
// comparison.
//
// Absolute values are not comparable — the paper ran MUMPS on an IBM SP,
// this repository runs a calibrated simulator on synthetic analogues —
// but the shapes the paper argues from are: which mechanism wins, by
// roughly what factor, and where the exceptions sit.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/mapping"
	xnet "repro/internal/net"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
	"repro/internal/workload"
)

// Config tunes the whole experiment suite.
type Config struct {
	// Seed drives all synthetic generators.
	Seed uint64
	// Scale is the base matrix scale; per-processor-count factors keep
	// the machine as utilized as the paper's runs (Scale32 etc. multiply
	// Scale).
	Scale float64
	// ScalePerProcs maps a processor count to the scale multiplier used
	// when running at that count.
	ScalePerProcs map[int]float64
	// Verbose enables progress output.
	Verbose bool
}

// DefaultConfig returns the configuration used by the benchmarks: small
// enough for a laptop, utilized enough for the paper's contrasts.
func DefaultConfig() Config {
	return Config{
		Seed:  1,
		Scale: 1.0,
		ScalePerProcs: map[int]float64{
			32:  0.20,
			64:  0.40,
			128: 0.60,
		},
	}
}

// scaleFor returns the matrix scale for a processor count.
func (c *Config) scaleFor(nprocs int) float64 {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	if f, ok := c.ScalePerProcs[nprocs]; ok {
		return s * f
	}
	return s * 0.2
}

// Lab runs experiments with cached symbolic analyses (the analysis is by
// far the most expensive part and is identical across mechanisms).
type Lab struct {
	Cfg Config

	mu    sync.Mutex
	cache map[string]*symbolic.Analysis
}

// NewLab creates an experiment runner.
func NewLab(cfg Config) *Lab {
	return &Lab{Cfg: cfg, cache: map[string]*symbolic.Analysis{}}
}

// analysis returns the (cached) symbolic analysis of a problem at the
// scale for nprocs.
func (l *Lab) analysis(name string, nprocs int) (*symbolic.Analysis, error) {
	scale := l.Cfg.scaleFor(nprocs)
	key := fmt.Sprintf("%s@%.4f", name, scale)
	l.mu.Lock()
	a, ok := l.cache[key]
	l.mu.Unlock()
	if ok {
		return a, nil
	}
	pr, err := sparse.ByName(name)
	if err != nil {
		return nil, err
	}
	p, g := pr.Generate(scale, l.Cfg.Seed)
	perm, err := orderAuto(g)
	if err != nil {
		return nil, err
	}
	a, err = symbolic.AnalyzeGraph(g, perm, p.Kind == sparse.Sym, symbolic.DefaultAmalg())
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cache[key] = a
	l.mu.Unlock()
	return a, nil
}

// Mapping builds a fresh split tree and static mapping for a problem at a
// processor count. A fresh tree is needed per run: the mapping sets node
// types in place.
func (l *Lab) Mapping(name string, nprocs int) (*mapping.Mapping, error) {
	a, err := l.analysis(name, nprocs)
	if err != nil {
		return nil, err
	}
	tr := tree.Split(tree.Build(a), tree.DefaultSplit())
	return mapping.Map(tr, mapping.DefaultConfig(nprocs))
}

// RunOne executes a single (problem, nprocs, mechanism, strategy) cell
// on the deterministic simulator with the default interconnect.
func (l *Lab) RunOne(name string, nprocs int, mech core.Mech, strat *sched.Strategy, mutate func(*solver.Params)) (*solver.Result, error) {
	return l.RunOneOn(name, nprocs, mech, strat, &sim.AppRunner{}, mutate)
}

// AppRunnerFor builds the application runner for a runtime name
// ("sim", "live", "net"; empty means sim). timeScale is the wall-clock
// duration of one application second on the wall-clock runtimes
// (ignored by the simulator; 0 means real time) — the experiment
// matrices have virtual makespans of tens of seconds, so interactive
// callers typically compress by ~100x (timeScale 0.01).
func AppRunnerFor(runtime string, timeScale float64) (workload.AppRunner, error) {
	switch runtime {
	case "", "sim":
		return &sim.AppRunner{}, nil
	case "live":
		return &live.AppRunner{TimeScale: timeScale}, nil
	case "net":
		return &xnet.AppRunner{TimeScale: timeScale}, nil
	}
	return nil, fmt.Errorf("unknown runtime %q (sim, live, net)", runtime)
}

// RunOneOn executes the cell on an explicit application runner — the
// hook for a non-default interconnect model (sim.AppRunner{Network:
// sim.HighLatencyNetwork()}) or a different runtime altogether.
func (l *Lab) RunOneOn(name string, nprocs int, mech core.Mech, strat *sched.Strategy, rt workload.AppRunner, mutate func(*solver.Params)) (*solver.Result, error) {
	m, err := l.Mapping(name, nprocs)
	if err != nil {
		return nil, err
	}
	prm := solver.DefaultParams(mech, strat)
	if mutate != nil {
		mutate(&prm)
	}
	res, err := solver.Run(m, prm, rt)
	if err != nil {
		return nil, fmt.Errorf("%s@%dp/%s: %w", name, nprocs, mech, err)
	}
	return res, nil
}
