package sim

import (
	"testing"
)

// scriptApp is a configurable App for runtime tests.
type scriptApp struct {
	stateLog []int // kinds of treated state messages
	dataLog  []int
	order    []string // interleaved log: "state", "data", "task"
	tasks    []Duration
	next     int
	blocked  map[int]bool
	onState  func(p *Proc, m *Message)
	onDone   func(p *Proc)
}

func (a *scriptApp) HandleState(p *Proc, m *Message) {
	a.stateLog = append(a.stateLog, m.Kind)
	a.order = append(a.order, "state")
	if a.onState != nil {
		a.onState(p, m)
	}
}
func (a *scriptApp) HandleData(p *Proc, m *Message) {
	a.dataLog = append(a.dataLog, m.Kind)
	a.order = append(a.order, "data")
}
func (a *scriptApp) TryStart(p *Proc) bool { return false }
func (a *scriptApp) Blocked(p *Proc) bool  { return a.blocked[p.ID] }

func newTestRuntime(n int, app App) *Runtime {
	eng := NewEngine()
	eng.MaxSteps = 1_000_000
	return NewRuntime(eng, n, NetworkConfig{Latency: 1 * Microsecond}, app)
}

func TestRuntimeStatePriorityOverData(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(2, app)
	// Deliver one data then one state message at the same instant; the
	// loop must treat state first (Algorithm 1).
	rt.Eng.At(1, func() {
		p := rt.Procs[1]
		p.dataQ.push(&Message{Kind: 1, Channel: DataChannel})
		p.stateQ.push(&Message{Kind: 2, Channel: StateChannel})
		rt.Wake(1)
	})
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(app.order) != 2 || app.order[0] != "state" || app.order[1] != "data" {
		t.Fatalf("treatment order = %v, want state before data", app.order)
	}
}

func TestRuntimeSingleThreadedDefersMessagesDuringCompute(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(2, app)
	var treatedAt Time
	app.onState = func(p *Proc, m *Message) { treatedAt = rt.Now() }

	rt.Eng.At(0, func() {
		rt.Compute(rt.Procs[1], 10, nil) // busy until t=10
	})
	rt.Eng.At(1, func() {
		rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 5})
	})
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if treatedAt != 10 {
		t.Fatalf("state message treated at %v, want 10 (after compute)", treatedAt)
	}
}

func TestRuntimeThreadedTreatsStateDuringCompute(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(2, app)
	rt.Threaded = true
	rt.PollPeriod = 50 * Microsecond
	var treatedAt Time
	app.onState = func(p *Proc, m *Message) { treatedAt = rt.Now() }

	rt.Eng.At(0, func() { rt.Compute(rt.Procs[1], 1, nil) }) // busy until t=1s
	rt.Eng.At(100*Microsecond, func() {
		rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 5})
	})
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if treatedAt <= 100*Microsecond || treatedAt >= 1 {
		t.Fatalf("state message treated at %v, want during compute at a poll tick", treatedAt)
	}
	// Must land on the 50µs grid.
	k := float64(treatedAt) / float64(50*Microsecond)
	if diff := k - float64(int64(k+0.5)); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("poll tick %v not on 50µs grid", treatedAt)
	}
}

func TestRuntimeThreadedPausesComputeWhileBlocked(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(2, app)
	rt.Threaded = true
	// The state handler blocks the process on kind=1 and unblocks on 2,
	// mimicking start_snp / end_snp.
	app.onState = func(p *Proc, m *Message) {
		switch m.Kind {
		case 1:
			app.blocked[p.ID] = true
		case 2:
			app.blocked[p.ID] = false
		}
	}
	var doneAt Time
	rt.Eng.At(0, func() {
		rt.Compute(rt.Procs[1], 1, func() { doneAt = rt.Now() })
	})
	// Block from ~0.2 to ~0.5: task should finish ~0.3s late.
	rt.Eng.At(0.2, func() { rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 1}) })
	rt.Eng.At(0.5, func() { rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 2}) })
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt < 1.29 || doneAt > 1.31 {
		t.Fatalf("task completed at %v, want ≈1.3 (paused ~0.3s)", doneAt)
	}
	if p := rt.Procs[1].PausedTime(); p < 0.29 || p > 0.31 {
		t.Fatalf("paused time %v, want ≈0.3", p)
	}
}

func TestRuntimeBlockedProcessStillTreatsState(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{1: true}}
	rt := newTestRuntime(2, app)
	unblockedAt := Time(-1)
	app.onState = func(p *Proc, m *Message) {
		if m.Kind == 2 {
			app.blocked[p.ID] = false
			unblockedAt = rt.Now()
		}
	}
	// A data message must NOT be treated while blocked; after unblocking
	// it must be.
	rt.Eng.At(1, func() { rt.Send(&Message{From: 0, To: 1, Channel: DataChannel, Kind: 9}) })
	rt.Eng.At(2, func() { rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 2}) })
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if unblockedAt < 2 {
		t.Fatalf("unblocked at %v", unblockedAt)
	}
	if len(app.dataLog) != 1 {
		t.Fatalf("data message not treated after unblock: %v", app.dataLog)
	}
	if len(app.order) >= 2 && app.order[0] == "data" {
		t.Fatal("data message treated while blocked")
	}
}

func TestRuntimeComputeWhileBusyPanics(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(1, app)
	rt.Eng.At(0, func() {
		rt.Compute(rt.Procs[0], 5, nil)
		defer func() {
			if recover() == nil {
				t.Error("double Compute did not panic")
			}
		}()
		rt.Compute(rt.Procs[0], 5, nil)
	})
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// taskApp starts a fixed list of tasks one after another.
type taskApp struct {
	scriptApp
	rt        *Runtime
	durations []Duration
	started   int
	completed int
}

func (a *taskApp) TryStart(p *Proc) bool {
	if a.started >= len(a.durations) {
		return false
	}
	d := a.durations[a.started]
	a.started++
	a.rt.Compute(p, d, func() { a.completed++ })
	return true
}

func TestRuntimeRunsTasksBackToBack(t *testing.T) {
	app := &taskApp{scriptApp: scriptApp{blocked: map[int]bool{}}, durations: []Duration{1, 2, 3}}
	rt := newTestRuntime(1, app)
	app.rt = rt
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if app.completed != 3 {
		t.Fatalf("completed %d tasks, want 3", app.completed)
	}
	if rt.Now() != 6 {
		t.Fatalf("finished at %v, want 6", rt.Now())
	}
	if ct := rt.Procs[0].ComputeTime(); ct != 6 {
		t.Fatalf("compute time %v, want 6", ct)
	}
}

func TestRuntimeDeterminism(t *testing.T) {
	run := func() (Time, []int) {
		app := &scriptApp{blocked: map[int]bool{}}
		rt := newTestRuntime(4, app)
		for i := 0; i < 20; i++ {
			i := i
			rt.Eng.At(Time(i)*Millisecond, func() {
				rt.Send(&Message{From: i % 4, To: (i + 1) % 4, Channel: StateChannel, Kind: i})
			})
		}
		rt.Start()
		if err := rt.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Now(), app.stateLog
	}
	t1, log1 := run()
	t2, log2 := run()
	if t1 != t2 || len(log1) != len(log2) {
		t.Fatal("nondeterministic run")
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatal("nondeterministic message treatment order")
		}
	}
}

func TestRuntimePollCoalescing(t *testing.T) {
	// Many state arrivals during one poll interval produce a single
	// batched treatment at the next tick.
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(2, app)
	rt.Threaded = true
	rt.PollPeriod = 100 * Microsecond
	var treatTimes []Time
	app.onState = func(p *Proc, m *Message) { treatTimes = append(treatTimes, rt.Now()) }
	rt.Eng.At(0, func() { rt.Compute(rt.Procs[1], 1, nil) })
	for i := 0; i < 5; i++ {
		i := i
		rt.Eng.At(Time(10+i)*Microsecond, func() {
			rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: i})
		})
	}
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(treatTimes) != 5 {
		t.Fatalf("treated %d messages, want 5", len(treatTimes))
	}
	for _, at := range treatTimes {
		if at != treatTimes[0] {
			t.Fatalf("messages not batched at one tick: %v", treatTimes)
		}
	}
}

func TestRuntimeThreadedIdleTreatsImmediately(t *testing.T) {
	// When the process is idle, state messages are treated on arrival
	// even in threaded mode (a blocking receive, not a poll).
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(2, app)
	rt.Threaded = true
	rt.PollPeriod = 10 * Millisecond
	var treatedAt Time
	app.onState = func(p *Proc, m *Message) { treatedAt = rt.Now() }
	rt.Eng.At(1*Microsecond, func() {
		rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 1})
	})
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Network latency is 1µs: arrival at 2µs, treated right there, far
	// before the 10ms poll tick.
	if treatedAt >= 10*Millisecond {
		t.Fatalf("idle threaded treatment waited for a poll tick: %v", treatedAt)
	}
}

func TestQueueCompaction(t *testing.T) {
	var q queue
	for i := 0; i < 500; i++ {
		q.push(&Message{Kind: i})
	}
	for i := 0; i < 400; i++ {
		m := q.pop()
		if m.Kind != i {
			t.Fatalf("FIFO broken at %d", i)
		}
	}
	if q.len() != 100 {
		t.Fatalf("len = %d, want 100", q.len())
	}
	// Compaction must have happened (head reset), and order preserved.
	for i := 400; i < 500; i++ {
		if m := q.pop(); m.Kind != i {
			t.Fatalf("order lost after compaction at %d", i)
		}
	}
	if q.pop() != nil {
		t.Fatal("empty queue returned a message")
	}
}

func TestRuntimeComputeTimeExcludesPauses(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(2, app)
	rt.Threaded = true
	app.onState = func(p *Proc, m *Message) {
		app.blocked[p.ID] = m.Kind == 1
	}
	rt.Eng.At(0, func() { rt.Compute(rt.Procs[1], 1, nil) })
	rt.Eng.At(0.2, func() { rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 1}) })
	rt.Eng.At(0.7, func() { rt.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 2}) })
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	ct := rt.Procs[1].ComputeTime()
	if ct < 0.99 || ct > 1.01 {
		t.Fatalf("compute time %v, want ≈1 (pause excluded)", ct)
	}
}

func TestRuntimeNegativeComputePanics(t *testing.T) {
	app := &scriptApp{blocked: map[int]bool{}}
	rt := newTestRuntime(1, app)
	rt.Eng.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("negative duration accepted")
			}
		}()
		rt.Compute(rt.Procs[0], -1, nil)
	})
	rt.Start()
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}
