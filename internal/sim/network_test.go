package sim

import (
	"testing"
	"testing/quick"
)

func collectNet(n int, cfg NetworkConfig) (*Engine, *Network, *[]*Message) {
	eng := NewEngine()
	var got []*Message
	nw := NewNetwork(eng, n, cfg, func(m *Message) { got = append(got, m) })
	return eng, nw, &got
}

func TestNetworkDeliversWithLatency(t *testing.T) {
	eng, nw, got := collectNet(2, NetworkConfig{Latency: 1 * Millisecond})
	nw.Send(&Message{From: 0, To: 1, Channel: DataChannel, Bytes: 100})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(*got))
	}
	m := (*got)[0]
	if m.Arrived != 1*Millisecond {
		t.Fatalf("arrived at %v, want 1ms", m.Arrived)
	}
}

func TestNetworkTransferTime(t *testing.T) {
	eng, nw, got := collectNet(2, NetworkConfig{Latency: 0, Bandwidth: 1000})
	nw.Send(&Message{From: 0, To: 1, Bytes: 500}) // 0.5 s transfer
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m := (*got)[0]; m.Arrived != 0.5 {
		t.Fatalf("arrived at %v, want 0.5s", m.Arrived)
	}
}

func TestNetworkLinkFIFOAndSerialization(t *testing.T) {
	eng, nw, got := collectNet(2, NetworkConfig{Latency: 1 * Millisecond, Bandwidth: 1000})
	// Two messages on the same link: the second waits for the first.
	nw.Send(&Message{From: 0, To: 1, Kind: 1, Bytes: 1000}) // 1s transfer
	nw.Send(&Message{From: 0, To: 1, Kind: 2, Bytes: 1000})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("want 2 deliveries")
	}
	if (*got)[0].Kind != 1 || (*got)[1].Kind != 2 {
		t.Fatal("FIFO violated on a link")
	}
	if a := (*got)[1].Arrived; a != 2+1*Millisecond {
		t.Fatalf("second message arrived at %v, want 2.001s", a)
	}
}

func TestNetworkFIFOProperty(t *testing.T) {
	// Property: per ordered pair, messages arrive in send order whatever
	// the sizes; required by the snapshot algorithm (Chandy-Lamport).
	f := func(sizes []uint16) bool {
		eng, nw, got := collectNet(3, DefaultNetwork())
		for i, s := range sizes {
			nw.Send(&Message{From: 0, To: 1, Kind: i, Bytes: float64(s)})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		for i, m := range *got {
			if m.Kind != i {
				return false
			}
		}
		return len(*got) == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkIntraVsInterNode(t *testing.T) {
	cfg := NetworkConfig{
		Latency:      1 * Millisecond,
		IntraLatency: 10 * Microsecond,
		ProcsPerNode: 2,
	}
	eng, nw, got := collectNet(4, cfg)
	nw.Send(&Message{From: 0, To: 1}) // same node (0,1)
	nw.Send(&Message{From: 0, To: 2}) // different node
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var intra, inter Time
	for _, m := range *got {
		if m.To == 1 {
			intra = m.Arrived
		} else {
			inter = m.Arrived
		}
	}
	if intra != 10*Microsecond || inter != 1*Millisecond {
		t.Fatalf("intra=%v inter=%v", intra, inter)
	}
}

func TestNetworkIngressContention(t *testing.T) {
	cfg := NetworkConfig{Latency: 0, IngressBandwidth: 1000}
	eng, nw, got := collectNet(3, cfg)
	// Two senders hit the same receiver: ingress serializes them.
	nw.Send(&Message{From: 0, To: 2, Bytes: 1000})
	nw.Send(&Message{From: 1, To: 2, Bytes: 1000})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if a := (*got)[1].Arrived; a != 2 {
		t.Fatalf("second arrival %v, want 2s (ingress-serialized)", a)
	}
}

func TestNetworkBroadcastSkipsSender(t *testing.T) {
	eng, nw, got := collectNet(5, NetworkConfig{Latency: 1 * Microsecond})
	n := nw.Broadcast(2, Message{Channel: StateChannel, Kind: 7, Bytes: 8})
	if n != 4 {
		t.Fatalf("broadcast sent %d, want 4", n)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, m := range *got {
		if m.To == 2 {
			t.Fatal("broadcast delivered to sender")
		}
		if m.From != 2 || m.Kind != 7 {
			t.Fatalf("bad broadcast copy: %+v", m)
		}
	}
	if len(*got) != 4 {
		t.Fatalf("delivered %d, want 4", len(*got))
	}
}

func TestNetworkCounters(t *testing.T) {
	eng, nw, _ := collectNet(2, NetworkConfig{})
	nw.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 3, Bytes: 16})
	nw.Send(&Message{From: 0, To: 1, Channel: StateChannel, Kind: 3, Bytes: 16})
	nw.Send(&Message{From: 0, To: 1, Channel: DataChannel, Kind: 9, Bytes: 1024})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c := nw.Count(StateChannel); c.Messages != 2 || c.Bytes != 32 {
		t.Fatalf("state counter = %+v", c)
	}
	if c := nw.Count(DataChannel); c.Messages != 1 || c.Bytes != 1024 {
		t.Fatalf("data counter = %+v", c)
	}
	if nw.KindCount(StateChannel, 3) != 2 {
		t.Fatal("kind counter wrong")
	}
	if nw.TotalOnChannelExcept(StateChannel, 99) != 2 {
		t.Fatal("TotalOnChannelExcept wrong")
	}
	if nw.TotalOnChannelExcept(StateChannel, 3) != 0 {
		t.Fatal("exclusion not applied")
	}
}

func TestNetworkSelfSendPanicsOnBadRank(t *testing.T) {
	eng, nw, _ := collectNet(2, NetworkConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("bad rank did not panic")
		}
	}()
	nw.Send(&Message{From: 0, To: 5})
	_ = eng
}
