package core

import "testing"

// Regression tests for the leader-election restart path (§3): an
// initiator that answers a better leader re-broadcasts with a fresh
// request id, stale replies to the superseded round must be discarded,
// and the restart statistics must count each event exactly once.

// TestSnapshotRestartStaleReplyDiscarded scripts the exact interleaving
// where a reply to the initiator's superseded round arrives after the
// restart: P2 initiates, P1 answers P2's round 1, P2 then loses the
// election to P0 and restarts — so P1's round-1 reply reaches P2 with a
// stale request id and must not advance the new collection, and the
// restart and snapshot-time counters must not double-count.
func TestSnapshotRestartStaleReplyDiscarded(t *testing.T) {
	net, exs := mkSnapshot(t, 3, nil)
	p0Ready, p2Ready := 0, 0
	t0 := net.now
	var tReady float64
	exs[2].Acquire(net.ctx(2), func() {
		p2Ready++
		tReady = net.now
		// P2's snapshot runs after P0's, so it must observe P0's
		// assignment of 100 to P1 (10 initial + 100).
		if got := exs[2].View().Metric(1, Workload); got != 110 {
			t.Fatalf("P2's view of P1 = %v, want 110", got)
		}
		exs[2].Commit(net.ctx(2), nil)
	})
	exs[0].Acquire(net.ctx(0), func() {
		p0Ready++
		exs[0].Commit(net.ctx(0), []Assignment{{Proc: 1, Delta: Load{Workload: 100}}})
	})

	// P1 answers P2's round 1: the reply that will go stale.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 2 && m.to == 1 }) {
		t.Fatal("missing start_snp 2→1")
	}
	// P2 receives P0's start, answers the better leader and restarts.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 0 && m.to == 2 }) {
		t.Fatal("missing start_snp 0→2")
	}
	if st := exs[2].Stats(); st.SnapshotRestarts != 1 {
		t.Fatalf("after answering the better leader: restarts = %d, want 1", st.SnapshotRestarts)
	}
	// The stale round-1 reply lands after the restart: discarded.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindSnp && m.from == 1 && m.to == 2 }) {
		t.Fatal("missing stale snp 1→2")
	}
	if p2Ready != 0 {
		t.Fatal("stale reply completed the superseded round")
	}
	if exs[2].nbMsgs != 0 {
		t.Fatalf("stale reply was counted: nbMsgs = %d, want 0", exs[2].nbMsgs)
	}

	net.drain(10000)
	if p0Ready != 1 || p2Ready != 1 {
		t.Fatalf("ready counts: P0=%d P2=%d, want 1 and 1", p0Ready, p2Ready)
	}
	st := exs[2].Stats()
	if st.SnapshotsInitiated != 1 || st.SnapshotRestarts != 1 {
		t.Fatalf("P2 stats = %+v, want 1 initiated, 1 restart", st)
	}
	// SnapshotTime covers the whole Acquire→ready span once — a
	// double-count (e.g. one add per round) would exceed the wall span.
	if want := tReady - t0; st.SnapshotTime != want {
		t.Fatalf("P2 SnapshotTime = %v, want exactly %v (counted once)", st.SnapshotTime, want)
	}
	for r := 0; r < 3; r++ {
		if exs[r].Busy() {
			t.Fatalf("P%d busy after completion", r)
		}
	}
}

// TestSnapshotDelayedReplyAfterRestart scripts the other stale-id path:
// P1 owes P2 a delayed reply, the current leader P0 finishes, and P1's
// postponed answer goes out with the request id of P2's superseded
// round (P2's re-broadcast has not reached P1 yet). P2 must discard it,
// and P1 must answer again — with the fresh id — once the re-broadcast
// arrives, so the restarted snapshot still completes with a coherent
// view.
func TestSnapshotDelayedReplyAfterRestart(t *testing.T) {
	net, exs := mkSnapshot(t, 3, nil)
	p0Ready, p2Ready := 0, 0
	exs[2].Acquire(net.ctx(2), func() {
		p2Ready++
		if got := exs[2].View().Metric(1, Workload); got != 110 {
			t.Fatalf("P2's view of P1 = %v, want 110", got)
		}
		exs[2].Commit(net.ctx(2), nil)
	})
	exs[0].Acquire(net.ctx(0), func() {
		p0Ready++
		exs[0].Commit(net.ctx(0), []Assignment{{Proc: 1, Delta: Load{Workload: 100}}})
	})

	// P1 hears the leader P0 first, then P2's round 1: it answers P0 and
	// owes P2 a delayed reply recorded under P2's round-1 id.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 0 && m.to == 1 }) {
		t.Fatal("missing start_snp 0→1")
	}
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 2 && m.to == 1 }) {
		t.Fatal("missing start_snp 2→1")
	}
	// P2 answers the better leader and restarts (round 2) — but the
	// re-broadcast stays in flight for now.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 0 && m.to == 2 }) {
		t.Fatal("missing start_snp 0→2")
	}
	// P0 collects both replies and finishes; per-pair FIFO: the
	// master_to_slave to P1 precedes P0's end_snp.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindSnp && m.to == 0 && m.from == 1 }) {
		t.Fatal("missing snp 1→0")
	}
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindSnp && m.to == 0 && m.from == 2 }) {
		t.Fatal("missing snp 2→0")
	}
	if p0Ready != 1 {
		t.Fatal("P0's snapshot should be ready")
	}
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindMasterToSlave && m.from == 0 && m.to == 1 }) {
		t.Fatal("missing master_to_slave 0→1")
	}
	// P0's end_snp reaches P1 before P2's re-broadcast: P1's delayed
	// reply goes out under the superseded round-1 id.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindEndSnp && m.from == 0 && m.to == 1 }) {
		t.Fatal("missing end_snp 0→1")
	}
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindSnp && m.from == 1 && m.to == 2 }) {
		t.Fatal("P1 did not flush its delayed reply after the leader's end_snp")
	}
	if p2Ready != 0 {
		t.Fatal("stale delayed reply completed P2's restarted round")
	}
	if exs[2].nbMsgs != 0 {
		t.Fatalf("stale delayed reply was counted: nbMsgs = %d, want 0", exs[2].nbMsgs)
	}
	// P2's round-2 broadcast finally reaches P1: it must answer afresh
	// under the new id and the snapshot must complete.
	if !net.deliverNext(func(m fakeMsg) bool { return m.kind == KindStartSnp && m.from == 2 && m.to == 1 }) {
		t.Fatal("missing re-broadcast start_snp 2→1")
	}
	net.drain(10000)
	if p0Ready != 1 || p2Ready != 1 {
		t.Fatalf("ready counts: P0=%d P2=%d, want 1 and 1", p0Ready, p2Ready)
	}
	if st := exs[2].Stats(); st.SnapshotRestarts != 1 {
		t.Fatalf("P2 restarts = %d, want exactly 1", st.SnapshotRestarts)
	}
	for r := 0; r < 3; r++ {
		if exs[r].Busy() {
			t.Fatalf("P%d busy after completion", r)
		}
	}
}
