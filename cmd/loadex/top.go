package main

// loadex top: a textual dashboard over a serving `loadex serve`
// instance — the mesh-wide job metrics header plus one telemetry row
// per resident rank, sampled through the service API's `top` op. One
// shot by default; -interval/-count poll.

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/service"
)

func runTop(args []string) error {
	fs := flag.NewFlagSet("loadex top", flag.ExitOnError)
	addr := fs.String("addr", "", "service API address (the `SERVE <addr>` line)")
	interval := fs.Duration("interval", 2*time.Second, "refresh period when sampling more than once")
	count := fs.Int("count", 1, "samples to print (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("loadex top needs -addr (the `SERVE <addr>` line `loadex serve` printed)")
	}
	if *interval <= 0 {
		return fmt.Errorf("refresh period must be positive, got -interval %s", *interval)
	}
	c, err := service.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		if err := printTop(c); err != nil {
			return err
		}
	}
	return nil
}

// printTop fetches one metrics + telemetry sample and renders it.
func printTop(c *service.Client) error {
	m, err := c.Metrics()
	if err != nil {
		return err
	}
	ranks, err := c.Top()
	if err != nil {
		return err
	}
	fmt.Printf("jobs: %d running, %d queued | %d admitted, %d completed, %d failed, %d canceled\n",
		m.Running, m.Queue, m.Admitted, m.Completed, m.Failed, m.Canceled)
	if m.Makespan.Count > 0 {
		fmt.Printf("makespan: p50 %.3fs p95 %.3fs p99 %.3fs | queue wait: p50 %.3fs p95 %.3fs p99 %.3fs\n",
			m.Makespan.P50, m.Makespan.P95, m.Makespan.P99,
			m.QueueWait.P50, m.QueueWait.P95, m.QueueWait.P99)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tup\tlinks\texecuted\tdecisions\tbusy\tmsgs in/out\tbytes in/out")
	for _, t := range ranks {
		fmt.Fprintf(tw, "%d\t%.1fs\t%d\t%d\t%d\t%.3fs\t%d/%d\t%d/%d\n",
			t.Rank, t.UptimeS, t.Links, t.Executed, t.Decisions, t.BusyS,
			t.MsgsIn, t.MsgsOut, t.BytesIn, t.BytesOut)
	}
	tw.Flush()
	fmt.Println()
	return nil
}
