package chaos

import (
	"path/filepath"
	"strings"
	"testing"
)

func spanBase(extra ...Event) []Event {
	evs := []Event{
		{Ev: EvMeta, Rank: 0, N: 1, Scenario: "t", Mech: "snapshot"},
		{Ev: EvFinal, Rank: 0},
	}
	return append(evs, extra...)
}

func violations(r *Report, check string) []string {
	var out []string
	for _, v := range r.Violations {
		if v.Check == check {
			out = append(out, v.Detail)
		}
	}
	return out
}

func TestValidateSpansClean(t *testing.T) {
	rep := Validate(spanBase(
		Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
		Event{Ev: EvSpanBegin, Rank: 0, Span: "decision.acquire", Sid: 2, T: 1.0},
		Event{Ev: EvSpanEnd, Rank: 0, Span: "decision.acquire", Sid: 2, T: 1.5},
		Event{Ev: EvSpanBegin, Rank: 0, Span: "decision.plan", Sid: 3, T: 1.5},
		Event{Ev: EvSpanEnd, Rank: 0, Span: "decision.plan", Sid: 3, T: 1.6},
		Event{Ev: EvSpanEnd, Rank: 0, Span: "decision", Sid: 1, T: 2.0},
	))
	if !rep.OK() {
		t.Fatalf("clean nested spans flagged: %v", rep.Violations)
	}
	if rep.SpanBegins != 3 || rep.SpanEnds != 3 {
		t.Fatalf("tallies %d/%d, want 3/3", rep.SpanBegins, rep.SpanEnds)
	}
	if rep.SpanKinds["decision.acquire"] != 1 {
		t.Fatalf("span kinds %v", rep.SpanKinds)
	}
}

func TestValidateSpansCrossTrackInterleaving(t *testing.T) {
	// A snapshot-round busy interval genuinely overlaps a decision
	// span without being nested inside it — that must stay legal.
	rep := Validate(spanBase(
		Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
		Event{Ev: EvSpanBegin, Rank: 0, Span: "snapshot.round", Sid: 2, T: 1.2},
		Event{Ev: EvSpanEnd, Rank: 0, Span: "decision", Sid: 1, T: 1.5},
		Event{Ev: EvSpanEnd, Rank: 0, Span: "snapshot.round", Sid: 2, T: 1.8},
	))
	if !rep.OK() {
		t.Fatalf("cross-track interleaving flagged: %v", rep.Violations)
	}
}

func TestValidateSpanViolations(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"unbalanced begin", spanBase(
			Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
		), "never ended"},
		{"end without begin", spanBase(
			Event{Ev: EvSpanEnd, Rank: 0, Span: "decision", Sid: 7, T: 1.0},
		), "never began"},
		{"negative duration", spanBase(
			Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 2.0},
			Event{Ev: EvSpanEnd, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
		), "before it began"},
		{"same-track LIFO breach", spanBase(
			Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
			Event{Ev: EvSpanBegin, Rank: 0, Span: "decision.acquire", Sid: 2, T: 1.1},
			Event{Ev: EvSpanEnd, Rank: 0, Span: "decision", Sid: 1, T: 1.5},
			Event{Ev: EvSpanEnd, Rank: 0, Span: "decision.acquire", Sid: 2, T: 1.6},
		), "LIFO"},
		{"kind mismatch", spanBase(
			Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
			Event{Ev: EvSpanEnd, Rank: 0, Span: "job.run", Sid: 1, T: 1.5},
		), "began as"},
		{"sid reuse", spanBase(
			Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.0},
			Event{Ev: EvSpanBegin, Rank: 0, Span: "decision", Sid: 1, T: 1.1},
			Event{Ev: EvSpanEnd, Rank: 0, Span: "decision", Sid: 1, T: 1.5},
		), "reused"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Validate(tc.events)
			vs := violations(rep, "span")
			if len(vs) == 0 {
				t.Fatalf("no span violation; all: %v", rep.Violations)
			}
			found := false
			for _, d := range vs {
				if strings.Contains(d, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no span violation mentioning %q: %v", tc.want, vs)
			}
		})
	}
}

func TestValidateSpansPerRankIndependent(t *testing.T) {
	// Two ranks using the same sid numbering must not cross-pair.
	rep := Validate([]Event{
		{Ev: EvMeta, Rank: 0, N: 2, Scenario: "t", Mech: "snapshot"},
		{Ev: EvSpanBegin, Rank: 0, Span: "termdet.idle", Sid: 1, T: 1.0},
		{Ev: EvSpanBegin, Rank: 1, Span: "termdet.idle", Sid: 1, T: 1.0},
		{Ev: EvSpanEnd, Rank: 0, Span: "termdet.idle", Sid: 1, T: 2.0},
		{Ev: EvSpanEnd, Rank: 1, Span: "termdet.idle", Sid: 1, T: 2.0},
		{Ev: EvFinal, Rank: 0},
		{Ev: EvFinal, Rank: 1},
	})
	if !rep.OK() {
		t.Fatalf("per-rank sid reuse flagged: %v", rep.Violations)
	}
}

func TestSpanRecorderRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r0.jsonl")
	rec, err := OpenRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	sid := rec.SpanBegin(0, "decision", 1.25)
	if sid == 0 {
		t.Fatal("live recorder returned sid 0")
	}
	rec.SpanEnd(0, "decision", sid, 2.5)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	if evs[0].Ev != EvSpanBegin || evs[0].T != 1.25 || evs[0].Sid != sid || evs[0].Span != "decision" {
		t.Fatalf("begin event %+v", evs[0])
	}
	if evs[1].Ev != EvSpanEnd || evs[1].T != 2.5 {
		t.Fatalf("end event %+v", evs[1])
	}
	// Nil recorder: whole span API is a no-op.
	var nilRec *Recorder
	if sid := nilRec.SpanBegin(0, "decision", 1); sid != 0 {
		t.Fatalf("nil recorder allocated sid %d", sid)
	}
	nilRec.SpanEnd(0, "decision", 0, 2)
}

func TestSpanTrack(t *testing.T) {
	for kind, want := range map[string]string{
		"decision":         "decision",
		"decision.acquire": "decision",
		"snapshot.round":   "snapshot",
		"compute":          "compute",
	} {
		if got := spanTrack(kind); got != want {
			t.Errorf("spanTrack(%q) = %q, want %q", kind, got, want)
		}
	}
}
