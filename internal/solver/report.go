package solver

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// WriteReport prints a human-readable summary of a run: the quantities
// the paper's tables report plus distribution diagnostics (per-process
// peak spread, message breakdown, snapshot behaviour).
func (r *Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "factorization time     %12.3f s (virtual)\n", r.Time)
	fmt.Fprintf(w, "dynamic decisions      %12d\n", r.Decisions)
	fmt.Fprintf(w, "peak active memory     %12.3f Mentries (max over processes)\n", r.MaxPeakMem/1e6)
	s := stats.Summarize(r.PeakMem)
	fmt.Fprintf(w, "peak distribution      %s\n", s)
	fmt.Fprintf(w, "peak imbalance         %12.2f (max/mean)\n", stats.Imbalance(r.PeakMem))
	fmt.Fprintf(w, "state messages         %12d (%.2f MB)\n", r.StateMsgs, r.StateBytes/1e6)
	fmt.Fprintf(w, "data messages          %12d\n", r.DataMsgs)
	if len(r.MsgsByKind) > 0 {
		kinds := make([]string, 0, len(r.MsgsByKind))
		for k := range r.MsgsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "state messages by kind:\n")
		for _, k := range kinds {
			fmt.Fprintf(w, "    %-16s %12d\n", k, r.MsgsByKind[k])
		}
	}
	if r.SnapshotCount > 0 {
		fmt.Fprintf(w, "snapshots              %12d (restart rounds: %d, max concurrent: %d)\n",
			r.SnapshotCount, r.SnapshotRestarts, r.MaxConcurrentSnapshots)
		fmt.Fprintf(w, "snapshot-ops time      %12.3f s\n", r.SnapshotTime)
	}
	if r.PausedTime > 0 {
		fmt.Fprintf(w, "compute paused         %12.3f s (threaded snapshots)\n", r.PausedTime)
	}
	fmt.Fprintf(w, "simulation events      %12d\n", r.Steps)
}
