package workload_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRegistry(t *testing.T) {
	want := []string{"burst", "hetero", "quickstart", "ramp", "straggler"}
	got := workload.Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registered scenarios %v, want %v", got, want)
	}
	for _, name := range want {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, w.Name())
		}
		if w.Describe() == "" {
			t.Errorf("scenario %q has no description", name)
		}
	}
	_, err := workload.Get("nope")
	if err == nil {
		t.Fatal("Get of unknown scenario succeeded")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-scenario error %q does not list %q", err, name)
		}
	}
}

func TestProgramsDeterministicAndShaped(t *testing.T) {
	p := workload.DefaultParams()
	for _, w := range workload.All() {
		a, err := w.Programs(p)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		b, err := w.Programs(p)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: programs are not deterministic", w.Name())
		}
		if len(a) != p.Procs {
			t.Errorf("%s: %d programs for %d procs", w.Name(), len(a), p.Procs)
		}
		if workload.DecisionCount(a) == 0 {
			t.Errorf("%s: no decisions", w.Name())
		}
		for r, prog := range a {
			if prog.SpeedFactor() <= 0 {
				t.Errorf("%s rank %d: speed factor %v", w.Name(), r, prog.SpeedFactor())
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := workload.DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*workload.Params){
		func(p *workload.Params) { p.Procs = 1 },
		func(p *workload.Params) { p.Masters = 0 },
		func(p *workload.Params) { p.Masters = p.Procs + 1 },
		func(p *workload.Params) { p.Decisions = -1 },
		func(p *workload.Params) { p.Slaves = -1 },
		func(p *workload.Params) { p.Work = -5 },
		func(p *workload.Params) { p.Spin = -time.Second },
	}
	for i, mutate := range bad {
		p := workload.DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: params %+v validated", i, p)
		}
	}
	// Normalize fills zeros and clamps masters.
	p := workload.Params{Procs: 3, Masters: 9}
	p.Normalize()
	if p.Masters != 3 {
		t.Errorf("Normalize left masters %d, want clamped to 3", p.Masters)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("normalized params invalid: %v", err)
	}
}

// TestScenariosTerminateUnderSim is the registry liveness gate: every
// registered scenario must run to completion on the deterministic sim
// runtime with every mechanism, within a deadline. A scenario whose
// programs can stall (a rank waiting forever on a decision) fails here
// before it can rot in the matrix.
func TestScenariosTerminateUnderSim(t *testing.T) {
	p := workload.Params{Procs: 6, Masters: 2, Decisions: 2, Work: 90, Slaves: 3, Spin: 200 * time.Microsecond}
	for _, w := range workload.All() {
		for _, mech := range core.Mechanisms() {
			w, mech := w, mech
			t.Run(w.Name()+"/"+string(mech), func(t *testing.T) {
				progs, err := w.Programs(p)
				if err != nil {
					t.Fatal(err)
				}
				type result struct {
					rep *workload.Report
					err error
				}
				ch := make(chan result, 1)
				go func() {
					rep, err := sim.NewWorkloadDriver().Run(w, mech, core.Config{}, p)
					ch <- result{rep, err}
				}()
				select {
				case res := <-ch:
					if res.err != nil {
						t.Fatal(res.err)
					}
					if got, want := res.rep.DecisionsTaken, workload.DecisionCount(progs); got != want {
						t.Errorf("took %d decisions, programs script %d", got, want)
					}
				case <-time.After(60 * time.Second):
					t.Fatal("scenario did not terminate under sim within 60s")
				}
			})
		}
	}
}
