package solver_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

// buildMapping analyzes a small grid problem and maps it.
func buildMapping(t testing.TB, nx, ny, nz, nprocs int) *mapping.Mapping {
	t.Helper()
	p, _ := sparse.Grid3D(nx, ny, nz, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Build(a)
	m, err := mapping.Map(tr, mapping.DefaultConfig(nprocs))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// onSim returns a fresh default simulator host — the reference runtime
// for the paper's measurements.
func onSim() *sim.AppRunner { return &sim.AppRunner{} }

func runMech(t testing.TB, m *mapping.Mapping, mech core.Mech, strat *sched.Strategy) *solver.Result {
	t.Helper()
	res, err := solver.Run(m, solver.DefaultParams(mech, strat), onSim())
	if err != nil {
		t.Fatalf("%s: %v", mech, err)
	}
	return res
}

func TestRunCompletesAllMechanisms(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		m := buildMapping(t, 8, 8, 8, 8)
		res := runMech(t, m, mech, sched.Workload())
		if res.Time <= 0 {
			t.Fatalf("%s: no simulated time elapsed", mech)
		}
		if res.Decisions != m.NumType2 {
			t.Fatalf("%s: %d decisions, want %d (one per Type 2 node)", mech, res.Decisions, m.NumType2)
		}
		if res.MaxPeakMem <= 0 {
			t.Fatalf("%s: no memory tracked", mech)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		m1 := buildMapping(t, 7, 7, 7, 6)
		m2 := buildMapping(t, 7, 7, 7, 6)
		r1 := runMech(t, m1, mech, sched.Workload())
		r2 := runMech(t, m2, mech, sched.Workload())
		if r1.Time != r2.Time || r1.StateMsgs != r2.StateMsgs || r1.MaxPeakMem != r2.MaxPeakMem {
			t.Fatalf("%s: nondeterministic run: %+v vs %+v", mech, r1, r2)
		}
	}
}

func TestSnapshotUsesFewerMessages(t *testing.T) {
	// Table 6 shape: the snapshot algorithm exchanges far fewer state
	// messages than the increments mechanism.
	mi := buildMapping(t, 9, 9, 9, 12)
	ms := buildMapping(t, 9, 9, 9, 12)
	ri := runMech(t, mi, core.MechIncrements, sched.Workload())
	rs := runMech(t, ms, core.MechSnapshot, sched.Workload())
	if rs.StateMsgs >= ri.StateMsgs {
		t.Fatalf("snapshot msgs %d >= increments msgs %d", rs.StateMsgs, ri.StateMsgs)
	}
	if rs.SnapshotCount == 0 || rs.SnapshotTime <= 0 {
		t.Fatalf("snapshot stats empty: %+v", rs)
	}
}

func TestSnapshotSlowerThanIncrements(t *testing.T) {
	// Table 5 shape: snapshot synchronization costs time.
	mi := buildMapping(t, 9, 9, 9, 12)
	ms := buildMapping(t, 9, 9, 9, 12)
	ri := runMech(t, mi, core.MechIncrements, sched.Workload())
	rs := runMech(t, ms, core.MechSnapshot, sched.Workload())
	if rs.Time <= ri.Time {
		t.Fatalf("snapshot time %v <= increments time %v, expected slower", rs.Time, ri.Time)
	}
}

func TestThreadedReducesSnapshotCost(t *testing.T) {
	// Table 7 shape: the threaded model cuts the snapshot penalty.
	m1 := buildMapping(t, 9, 9, 9, 12)
	m2 := buildMapping(t, 9, 9, 9, 12)
	prm := solver.DefaultParams(core.MechSnapshot, sched.Workload())
	// The default PollPeriod is calibrated for experiment-scale runs;
	// this small test uses the paper's nominal 50 µs.
	prm.PollPeriod = 50e-6
	single, err := solver.Run(m1, prm, onSim())
	if err != nil {
		t.Fatal(err)
	}
	prm.Threaded = true
	threaded, err := solver.Run(m2, prm, onSim())
	if err != nil {
		t.Fatal(err)
	}
	if threaded.Time >= single.Time {
		t.Fatalf("threaded %v >= single %v, expected speedup", threaded.Time, single.Time)
	}
	if threaded.SnapshotTime >= single.SnapshotTime {
		t.Fatalf("threaded snapshot time %v >= single %v", threaded.SnapshotTime, single.SnapshotTime)
	}
}

func TestMemoryStrategyRuns(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		m := buildMapping(t, 8, 8, 8, 8)
		res := runMech(t, m, mech, sched.Memory())
		if res.MaxPeakMem <= 0 {
			t.Fatalf("%s/memory: no peak recorded", mech)
		}
	}
}

func TestWorkloadConservation(t *testing.T) {
	// After the run every process's own workload estimate returns to ~0:
	// all accounted work was executed. (Memory conservation is asserted
	// inside Run.)
	m := buildMapping(t, 7, 7, 7, 6)
	prm := solver.DefaultParams(core.MechIncrements, sched.Workload())
	res, err := solver.Run(m, prm, onSim())
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestSingleProcessRun(t *testing.T) {
	m := buildMapping(t, 6, 6, 6, 1)
	res := runMech(t, m, core.MechIncrements, sched.Workload())
	if res.Decisions != 0 {
		t.Fatal("single process cannot take dynamic decisions")
	}
	if res.DataMsgs != 0 {
		t.Fatalf("single process sent %d data messages", res.DataMsgs)
	}
}

func TestNoMoreMasterReducesMessages(t *testing.T) {
	// §2.3: pruning Update recipients should cut the increments message
	// count substantially (the paper observed ≈2x on MUMPS).
	mOn := buildMapping(t, 9, 9, 9, 16)
	mOff := buildMapping(t, 9, 9, 9, 16)
	prmOn := solver.DefaultParams(core.MechIncrements, sched.Workload())
	prmOff := solver.DefaultParams(core.MechIncrements, sched.Workload())
	prmOff.MechConfig.NoMoreMasterOpt = false
	on, err := solver.Run(mOn, prmOn, onSim())
	if err != nil {
		t.Fatal(err)
	}
	off, err := solver.Run(mOff, prmOff, onSim())
	if err != nil {
		t.Fatal(err)
	}
	if on.StateMsgs >= off.StateMsgs {
		t.Fatalf("No_more_master did not reduce messages: %d vs %d", on.StateMsgs, off.StateMsgs)
	}
}

func TestNaiveMemoryWorseOrEqual(t *testing.T) {
	// Table 4 tendency: with the memory-based strategy the naive
	// mechanism's stale views give a (usually strictly) worse peak than
	// increments/snapshot. Tested as >= to tolerate benign cases on a
	// small problem, with the aggregate strict check in the experiments.
	mn := buildMapping(t, 10, 10, 10, 16)
	mi := buildMapping(t, 10, 10, 10, 16)
	rn := runMech(t, mn, core.MechNaive, sched.Memory())
	ri := runMech(t, mi, core.MechIncrements, sched.Memory())
	if rn.MaxPeakMem < ri.MaxPeakMem*0.95 {
		t.Fatalf("naive peak %v clearly better than increments %v — reservation mechanism broken?",
			rn.MaxPeakMem, ri.MaxPeakMem)
	}
}

func TestResultMessageBreakdown(t *testing.T) {
	m := buildMapping(t, 8, 8, 8, 8)
	res := runMech(t, m, core.MechSnapshot, sched.Workload())
	if res.MsgsByKind["start_snp"] == 0 || res.MsgsByKind["snp"] == 0 || res.MsgsByKind["end_snp"] == 0 {
		t.Fatalf("snapshot kinds missing: %v", res.MsgsByKind)
	}
	if res.MsgsByKind["update"] != 0 {
		t.Fatalf("snapshot run should send no updates: %v", res.MsgsByKind)
	}
	m2 := buildMapping(t, 8, 8, 8, 8)
	res2 := runMech(t, m2, core.MechIncrements, sched.Workload())
	if res2.MsgsByKind["update"] == 0 || res2.MsgsByKind["master_to_all"] == 0 {
		t.Fatalf("increments kinds missing: %v", res2.MsgsByKind)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	m := buildMapping(t, 5, 5, 5, 4)
	if _, err := solver.Run(m, solver.Params{}, onSim()); err == nil {
		t.Fatal("nil strategy accepted")
	}
}

func TestPeakMemoryScalesDown(t *testing.T) {
	// More processes → per-process peak never grows (a single Type 1
	// front can dominate the peak at any count; it must not get worse).
	m4 := buildMapping(t, 10, 10, 10, 4)
	m32 := buildMapping(t, 10, 10, 10, 32)
	r4 := runMech(t, m4, core.MechIncrements, sched.Memory())
	r32 := runMech(t, m32, core.MechIncrements, sched.Memory())
	if r32.MaxPeakMem > r4.MaxPeakMem {
		t.Fatalf("peak at 32p (%v) > peak at 4p (%v)", r32.MaxPeakMem, r4.MaxPeakMem)
	}
}

func TestTimeScalesWithProblemSize(t *testing.T) {
	small := buildMapping(t, 6, 6, 6, 8)
	big := buildMapping(t, 10, 10, 10, 8)
	rs := runMech(t, small, core.MechIncrements, sched.Workload())
	rb := runMech(t, big, core.MechIncrements, sched.Workload())
	if rb.Time <= rs.Time {
		t.Fatalf("bigger problem not slower: %v vs %v", rb.Time, rs.Time)
	}
	if math.IsNaN(rb.Time) || math.IsInf(rb.Time, 0) {
		t.Fatal("non-finite time")
	}
}

func TestPartialSnapshotsReduceMessages(t *testing.T) {
	// §5 extension: scoping snapshots to the candidate slaves must cut
	// the snapshot message volume while the run still completes.
	mFull := buildMapping(t, 10, 10, 10, 24)
	mPart := buildMapping(t, 10, 10, 10, 24)
	full, err := solver.Run(mFull, solver.DefaultParams(core.MechSnapshot, sched.Workload()), onSim())
	if err != nil {
		t.Fatal(err)
	}
	prm := solver.DefaultParams(core.MechSnapshot, sched.Workload())
	prm.PartialSnapshots = true
	part, err := solver.Run(mPart, prm, onSim())
	if err != nil {
		t.Fatal(err)
	}
	if part.StateMsgs >= full.StateMsgs {
		t.Fatalf("partial snapshots did not reduce messages: %d vs %d", part.StateMsgs, full.StateMsgs)
	}
	if part.Decisions != full.Decisions {
		t.Fatalf("decision counts differ: %d vs %d", part.Decisions, full.Decisions)
	}
}

func TestPartialSnapshotsSelectWithinCandidates(t *testing.T) {
	m := buildMapping(t, 9, 9, 9, 16)
	prm := solver.DefaultParams(core.MechSnapshot, sched.Memory())
	prm.PartialSnapshots = true
	if _, err := solver.Run(m, prm, onSim()); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedComputeMatchesUnchunkedWork(t *testing.T) {
	// Panel chunking changes interleaving but not completion: all nodes
	// finish and total simulated time stays in the same ballpark.
	m1 := buildMapping(t, 8, 8, 8, 8)
	m2 := buildMapping(t, 8, 8, 8, 8)
	prmBig := solver.DefaultParams(core.MechIncrements, sched.Workload())
	prmBig.MaxChunkSeconds = 1e12 // effectively unchunked
	big, err := solver.Run(m1, prmBig, onSim())
	if err != nil {
		t.Fatal(err)
	}
	prmSmall := solver.DefaultParams(core.MechIncrements, sched.Workload())
	prmSmall.MaxChunkSeconds = 0.05
	small, err := solver.Run(m2, prmSmall, onSim())
	if err != nil {
		t.Fatal(err)
	}
	if small.Time > big.Time*1.5 || big.Time > small.Time*1.5 {
		t.Fatalf("chunking distorted the makespan: %v vs %v", small.Time, big.Time)
	}
}

func TestHighLatencyNetworkRuns(t *testing.T) {
	for _, mech := range []core.Mech{core.MechIncrements, core.MechSnapshot} {
		m := buildMapping(t, 7, 7, 7, 8)
		prm := solver.DefaultParams(mech, sched.Workload())
		res, err := solver.Run(m, prm, &sim.AppRunner{Network: sim.HighLatencyNetwork()})
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%s: empty run", mech)
		}
	}
}

func TestThresholdScaleChangesTraffic(t *testing.T) {
	m1 := buildMapping(t, 8, 8, 8, 8)
	m2 := buildMapping(t, 8, 8, 8, 8)
	lo := solver.DefaultParams(core.MechIncrements, sched.Workload())
	lo.ThresholdScale = 0.1
	hi := solver.DefaultParams(core.MechIncrements, sched.Workload())
	hi.ThresholdScale = 10
	rl, err := solver.Run(m1, lo, onSim())
	if err != nil {
		t.Fatal(err)
	}
	rh, err := solver.Run(m2, hi, onSim())
	if err != nil {
		t.Fatal(err)
	}
	if rl.StateMsgs <= rh.StateMsgs {
		t.Fatalf("threshold scaling had no effect: %d vs %d", rl.StateMsgs, rh.StateMsgs)
	}
}

func TestWriteReportContainsKeyLines(t *testing.T) {
	m := buildMapping(t, 8, 8, 8, 8)
	res := runMech(t, m, core.MechSnapshot, sched.Workload())
	var buf strings.Builder
	res.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{
		"factorization time", "dynamic decisions", "peak active memory",
		"state messages", "snapshots", "snapshot-ops time", "start_snp",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMemoryAwareTaskSelectionEffect(t *testing.T) {
	// Disabling the §4.2.1 task-selection constraint must not break the
	// run; with it enabled the peak should not be (much) worse.
	mOn := buildMapping(t, 10, 10, 10, 8)
	mOff := buildMapping(t, 10, 10, 10, 8)
	stratOn := sched.Memory()
	stratOff := sched.Memory()
	stratOff.TaskGamma = 0 // constraint disabled
	on, err := solver.Run(mOn, solver.DefaultParams(core.MechIncrements, stratOn), onSim())
	if err != nil {
		t.Fatal(err)
	}
	off, err := solver.Run(mOff, solver.DefaultParams(core.MechIncrements, stratOff), onSim())
	if err != nil {
		t.Fatal(err)
	}
	if on.MaxPeakMem > off.MaxPeakMem*1.3 {
		t.Fatalf("task selection made the peak much worse: %v vs %v", on.MaxPeakMem, off.MaxPeakMem)
	}
}
